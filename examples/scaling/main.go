// Scaling: sweep processor counts over the three interconnects and print
// speedups — the question the paper poses ("which number of processors can
// be assigned to a single calculation until we reach the limits of
// scalability?").
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

func main() {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	const steps = 5

	var rows [][]string
	for _, net := range netmodel.All() {
		var seq float64
		for _, p := range []int{1, 2, 4, 8, 16} {
			res, err := pmd.Run(
				cluster.Config{Nodes: p, CPUsPerNode: 1, Net: net, Seed: 1},
				cluster.PentiumIII1GHz(),
				pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: pmd.MiddlewareMPI},
			)
			if err != nil {
				log.Fatal(err)
			}
			c, pm := res.PhaseTotals()
			total := c.Wall + pm.Wall
			if p == 1 {
				seq = total
			}
			rows = append(rows, []string{
				net.Name,
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%.2f", total),
				fmt.Sprintf("%.2f", seq/total),
				fmt.Sprintf("%.0f%%", 100*seq/total/float64(p)),
			})
		}
	}
	fmt.Printf("Scalability of the %d-atom PME calculation (%d steps)\n\n", sys.N(), steps)
	if err := report.Table(os.Stdout,
		[]string{"network", "procs", "total (s)", "speedup", "efficiency"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe paper's conclusion is visible in the efficiency column: classic")
	fmt.Println("CHARMM parallelism survives to ~32 processors only with better")
	fmt.Println("communication software (SCore) or hardware (Myrinet); on plain")
	fmt.Println("TCP/IP the PME calculation stops scaling almost immediately.")
}
