// Gridext: the paper's closing extrapolation (§5) — what happens to the
// breakdown when the "cluster" becomes a widely distributed platform?
// We sweep the interconnect latency from SAN (µs) to campus and wide-area
// (ms) levels while keeping bandwidth fixed, and watch the parallel
// CHARMM calculation stop paying off.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

func main() {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	const steps = 3
	const procs = 8

	levels := []struct {
		name    string
		latency float64
	}{
		{"SAN (Myrinet-class)", 11e-6},
		{"LAN (switched Ethernet)", 60e-6},
		{"campus backbone", 500e-6},
		{"metro grid", 5e-3},
		{"wide-area grid", 30e-3},
	}

	var seq float64
	{
		res, err := pmd.Run(
			cluster.Config{Nodes: 1, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1},
			cluster.PentiumIII1GHz(),
			pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: pmd.MiddlewareMPI},
		)
		if err != nil {
			log.Fatal(err)
		}
		c, pm := res.PhaseTotals()
		seq = c.Wall + pm.Wall
	}

	var rows [][]string
	for _, lv := range levels {
		net := netmodel.TCPGigE()
		net.Name = lv.name
		net.Latency = lv.latency
		res, err := pmd.Run(
			cluster.Config{Nodes: procs, CPUsPerNode: 1, Net: net, Seed: 1},
			cluster.PentiumIII1GHz(),
			pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: pmd.MiddlewareMPI},
		)
		if err != nil {
			log.Fatal(err)
		}
		c, pm := res.PhaseTotals()
		total := c.Wall + pm.Wall
		verdict := "parallel pays off"
		if total >= seq {
			verdict = "slower than one CPU"
		}
		rows = append(rows, []string{
			lv.name,
			fmt.Sprintf("%.0f µs", lv.latency*1e6),
			fmt.Sprintf("%.2f", total),
			fmt.Sprintf("%.2f", seq/total),
			verdict,
		})
	}
	fmt.Printf("Latency extrapolation: %d-processor PME run vs %.2f s sequential\n\n", procs, seq)
	if err := report.Table(os.Stdout,
		[]string{"platform", "latency", "total (s)", "speedup", "verdict"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe detailed comp/comm/sync figures of the study allow exactly this")
	fmt.Println("kind of estimate for novel platforms (paper §5): data-parallel")
	fmt.Println("CHARMM with PME has no useful parallelism on grid-latency links;")
	fmt.Println("only task parallelism (independent calculations) survives there.")
}
