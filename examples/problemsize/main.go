// Problemsize: the §5 extrapolation the paper makes verbally — larger
// problems amortize the communication better, so scalability improves
// with system size. We sweep solvated systems from 1k to 10k atoms at 8
// processors and watch the parallel efficiency recover on every network.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

func main() {
	const procs = 8
	const steps = 3

	var rows [][]string
	for _, natoms := range []int{1000, 3552, 10000} {
		sys, k := topol.NewSolvatedBox(natoms, 1)
		md.Relax(sys, 60)
		cfg := md.ClampCutoffs(md.PMEDefaultConfig(), sys.Box)
		cfg.PME = md.PMEConfig{Beta: 0.34, K1: k, K2: k, K3: k, Order: 4}
		cfg.FF.Beta = cfg.PME.Beta
		cfg.Temperature = 300

		for _, net := range []string{"tcp", "myrinet"} {
			params, _ := netmodel.ByName(net)
			var seq, par float64
			for _, p := range []int{1, procs} {
				res, err := pmd.Run(
					cluster.Config{Nodes: p, CPUsPerNode: 1, Net: params, Seed: 1},
					cluster.PentiumIII1GHz(),
					pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: pmd.MiddlewareMPI},
				)
				if err != nil {
					log.Fatal(err)
				}
				c, pm := res.PhaseTotals()
				if p == 1 {
					seq = c.Wall + pm.Wall
				} else {
					par = c.Wall + pm.Wall
				}
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", sys.N()),
				params.Name,
				fmt.Sprintf("%.2f", seq),
				fmt.Sprintf("%.2f", par),
				fmt.Sprintf("%.2f", seq/par),
				fmt.Sprintf("%.0f%%", 100*seq/par/procs),
			})
		}
	}
	fmt.Printf("Problem-size scaling at p=%d (%d steps, PME water boxes)\n\n", procs, steps)
	if err := report.Table(os.Stdout,
		[]string{"atoms", "network", "seq (s)", "p=8 (s)", "speedup", "efficiency"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEfficiency grows with system size on every network (§5: \"good")
	fmt.Println("scalability for larger problems and larger clusters\"), but the gap")
	fmt.Println("between TCP/IP and Myrinet persists at every size.")
}
