// Quickstart: build the paper's 3552-atom workload, run it sequentially,
// then on a simulated 8-processor cluster, and print the classic/PME
// timing decomposition — the study's core measurement in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/topol"
)

func main() {
	// The molecular system: synthetic myoglobin + CO + 337 waters + sulfate.
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80) // settle the synthetic geometry before dynamics
	fmt.Printf("workload: %d atoms in a %.0f×%.0f×%.0f Å cell\n",
		sys.N(), sys.Box.L.X, sys.Box.L.Y, sys.Box.L.Z)

	// Sequential MD with PME — the physics baseline.
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	engine := md.NewEngine(sys, cfg)
	reports := engine.Run(3, nil, nil)
	for i, r := range reports {
		fmt.Printf("step %d: potential %.1f kcal/mol (classic %.1f, PME %.1f)\n",
			i+1, r.Potential(), r.Classic(), r.PME())
	}

	// The same computation on a simulated 8-node cluster with MPICH over
	// TCP/IP on Gigabit Ethernet (the paper's reference platform).
	res, err := pmd.Run(
		cluster.Config{Nodes: 8, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1},
		cluster.PentiumIII1GHz(),
		pmd.Config{System: sys, MD: cfg, Steps: 3, Middleware: pmd.MiddlewareMPI},
	)
	if err != nil {
		log.Fatal(err)
	}
	classic, pme := res.PhaseTotals()
	fmt.Printf("\n8 processors, TCP/IP on Ethernet, %d steps:\n", 3)
	fmt.Printf("  classic: %.3f s  (comp %.3f, comm %.3f, sync %.3f)\n",
		classic.Wall, classic.Comp, classic.Comm, classic.Sync)
	fmt.Printf("  PME:     %.3f s  (comp %.3f, comm %.3f, sync %.3f)\n",
		pme.Wall, pme.Comp, pme.Comm, pme.Sync)
	fmt.Printf("  parallel energies match the sequential run: step-1 total %.3f vs %.3f\n",
		res.Energies[0].Total(), reports[0].Total())
}
