// Faults: the resilience counterpart of the paper's §4 sensitivity
// question — what does a *degraded* platform cost, and does the answer
// depend on the middleware? Part 1 sweeps a single straggler CPU:
// because replicated-data MD synchronizes globally every step, neither
// MPI's trees nor CMPI's nearest-neighbour shifts can route around it,
// and both pay the same absolute price. Part 2 degrades one node's
// *link* instead: now the damage is middleware-shaped — CMPI's ring
// pushes every block through the bad node's NIC in each of its p-1
// stages and its 1-byte sync rounds eat the boosted stall probability,
// so it absorbs several times MPI's absolute excess. Part 3 crashes a
// rank mid-run and finishes on the survivors via checkpoint rewind.
// Part 4 kills the whole job mid-flight and restarts it from the
// durable on-disk checkpoint ring, accounting for the lost work.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

func main() {
	const procs = 8
	const steps = 3

	net, _ := netmodel.ByName("tcp")
	cost := cluster.PentiumIII1GHz()

	sys, k := topol.NewSolvatedBox(1000, 1)
	md.Relax(sys, 60)
	cfg := md.ClampCutoffs(md.PMEDefaultConfig(), sys.Box)
	cfg.PME = md.PMEConfig{Beta: 0.34, K1: k, K2: k, K3: k, Order: 4}
	cfg.FF.Beta = cfg.PME.Beta
	cfg.Temperature = 300

	clCfg := cluster.Config{Nodes: procs, CPUsPerNode: 1, Net: net, Seed: 1}

	run := func(mw pmd.MiddlewareKind, sc *fault.Scenario) *pmd.ResilientResult {
		res, err := pmd.RunResilient(clCfg, cost, pmd.ResilientConfig{
			Config:      pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: mw},
			Scenario:    sc,
			RestartCost: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	sweep := func(title, spec string, label func(sev float64) string) {
		sc, err := fault.ParseSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", title)
		var rows [][]string
		for _, mw := range []pmd.MiddlewareKind{pmd.MiddlewareMPI, pmd.MiddlewareCMPI} {
			healthy := run(mw, nil)
			for _, sev := range []float64{0, 0.5, 1} {
				res := run(mw, sc.Scale(sev))
				rows = append(rows, []string{
					mw.String(),
					label(sev),
					report.Seconds(res.Wall),
					fmt.Sprintf("%.2fx", res.Wall/healthy.Wall),
					report.Seconds(res.Wall - healthy.Wall),
				})
			}
		}
		if err := report.Table(os.Stdout, []string{"mw", "fault", "wall(s)", "slowdown", "excess(s)"}, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Printf("fault sweeps on one node among %d, %d atoms, %d steps, %s\n\n",
		procs, sys.N(), steps, net.Name)

	sweep("single straggler CPU (node 1)", "straggler@0,node=1,slow=8",
		func(sev float64) string { return fmt.Sprintf("cpu x%.2g", 1+7*sev) })
	fmt.Println("Every step ends in a global exchange, so one slow CPU stalls all p")
	fmt.Println("ranks under either middleware: the absolute excess is the same.")
	fmt.Println()

	sweep("single degraded link (node 1)", "link@0,node=1,bw=8,lat=4,stall=3",
		func(sev float64) string { return fmt.Sprintf("bw /%.2g", 1+7*sev) })
	fmt.Println("A sick NIC is middleware-shaped damage: CMPI's p-1 ring stages all")
	fmt.Println("cross the bad link and its 1-byte sync rounds eat the boosted stall")
	fmt.Println("probability, so CMPI absorbs several times MPI's absolute excess.")

	// Part 3: kill a rank mid-run and finish on the survivors.
	fmt.Println("\n--- crash and recover ---")
	crash, err := fault.ParseSpec("crash@0.08,rank=3")
	if err != nil {
		log.Fatal(err)
	}
	res := run(pmd.MiddlewareMPI, crash)
	for _, rec := range res.Recoveries {
		fmt.Printf("rank %d crashed at t=%.3f s; rewound to step %d on %d survivors, %.3f s of work lost\n",
			rec.CrashedRank, rec.DetectedAt, rec.RewindStep, res.Ranks, rec.Lost)
	}
	last := res.Energies[len(res.Energies)-1]
	fmt.Printf("completed all %d steps through the crash: final energy %.3f kcal/mol, wall %.3f s (%.3f s lost)\n",
		steps, last.Total(), res.Wall, res.LostTotal())

	// Part 4: kill the *entire job* mid-flight (not just one rank) and
	// restart it from the durable checkpoint ring on disk. The restart
	// resumes at the newest valid checkpoint; work done past it by the
	// killed process is charged to Lost, so the accounting stays honest.
	fmt.Println("\n--- kill and restart from disk ---")
	ckptDir, err := os.MkdirTemp("", "faults-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	// Checkpoint every other step and kill between checkpoints: step 3's
	// work exists only in the dead process, so the restart must redo it
	// and charge it to Lost.
	const dSteps, kill = 4, 3
	durable := func(halt int) (*pmd.ResilientResult, error) {
		return pmd.RunResilient(clCfg, cost, pmd.ResilientConfig{
			Config:          pmd.Config{System: sys, MD: cfg, Steps: dSteps, Middleware: pmd.MiddlewareMPI},
			RestartCost:     5,
			CheckpointDir:   ckptDir,
			CheckpointEvery: 2,
			HaltAfterStep:   halt,
		})
	}

	halted, err := durable(kill)
	if !errors.Is(err, pmd.ErrHalted) {
		log.Fatalf("expected the simulated kill, got %v", err)
	}
	fmt.Printf("killed after step %d of %d; %d steps run, checkpoints on disk in %s\n",
		kill, dSteps, len(halted.Energies), ckptDir)

	resumed, err := durable(0)
	if err != nil {
		log.Fatal(err)
	}
	if resumed.Resumed == nil {
		log.Fatal("restart did not pick up the on-disk checkpoint")
	}
	if resumed.LostTotal() <= 0 {
		log.Fatal("restart accounted no lost work for the killed process")
	}
	final := resumed.Energies[len(resumed.Energies)-1]
	fmt.Printf("restarted from checkpoint at step %d (skipped %d corrupt), finished step %d: energy %.3f kcal/mol\n",
		resumed.Resumed.Step, resumed.Resumed.SkippedCheckpoints, dSteps, final.Total())
	fmt.Printf("lost to the kill: %.3f s on disk, %.3f s total across the run\n",
		resumed.Resumed.LostOnDisk, resumed.LostTotal())
}
