// Middleware: compare raw MPI against the CMPI portability layer on the
// reference network (the paper's Fig. 8 experiment) and break the loss
// down into communication and synchronization.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

func main() {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	const steps = 5

	var rows [][]string
	for _, mw := range []pmd.MiddlewareKind{pmd.MiddlewareMPI, pmd.MiddlewareCMPI} {
		for _, p := range []int{1, 2, 4, 8} {
			res, err := pmd.Run(
				cluster.Config{Nodes: p, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1},
				cluster.PentiumIII1GHz(),
				pmd.Config{System: sys, MD: cfg, Steps: steps, Middleware: mw},
			)
			if err != nil {
				log.Fatal(err)
			}
			c, pm := res.PhaseTotals()
			rows = append(rows, []string{
				mw.String(),
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%.2f", c.Wall+pm.Wall),
				fmt.Sprintf("%.2f", c.Comm+pm.Comm),
				fmt.Sprintf("%.2f", c.Sync+pm.Sync),
			})
		}
	}
	fmt.Println("MPI vs CMPI middleware on TCP/IP over Gigabit Ethernet")
	fmt.Println()
	if err := report.Table(os.Stdout,
		[]string{"middleware", "procs", "total (s)", "comm (s)", "sync (s)"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCMPI synchronizes with p−1 rounds of one-byte neighbour exchanges")
	fmt.Println("(paper §4.2); on a network with per-message overheads this destroys")
	fmt.Println("scalability — the total *increases* from 4 to 8 processors.")
}
