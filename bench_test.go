package repro

import (
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ewald"
	"repro/internal/ff"
	"repro/internal/fft"
	"repro/internal/figures"
	"repro/internal/kernels"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/vec"
)

// The figure benchmarks share one suite running the paper's full protocol
// (10 MD steps of the 3552-atom system, p ∈ {1, 2, 4, 8}). The first
// benchmark touching a cell pays its cost; the per-figure model metrics
// reported below are the reproduction deliverable, the wall-clock ns/op of
// cached re-reads is not meaningful.
var (
	suiteOnce  sync.Once
	benchSuite *figures.Suite
)

func suite() *figures.Suite {
	suiteOnce.Do(func() {
		benchSuite = figures.NewSuite(figures.Default())
	})
	return benchSuite
}

// report emits a modeled-seconds metric for the largest processor count.
func reportModel(b *testing.B, name string, v float64) {
	b.Helper()
	b.ReportMetric(v, name)
}

// BenchmarkFig3ReferenceWallClock regenerates Fig. 3: total energy
// calculation wall time on the reference platform.
func BenchmarkFig3ReferenceWallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig3()
		if err != nil {
			b.Fatal(err)
		}
		reportModel(b, "model_total_p1_s", rows[0].Total())
		reportModel(b, "model_total_p8_s", rows[len(rows)-1].Total())
		reportModel(b, "model_pme_p2_s", rows[1].PME)
	}
}

// BenchmarkFig4ReferenceBreakdown regenerates Fig. 4: comp/comm/sync
// percentages of the classic and PME parts.
func BenchmarkFig4ReferenceBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig4()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		_, cm, cs := last.Classic.Percent()
		_, pm, ps := last.PME.Percent()
		reportModel(b, "classic_overhead_p8_pct", cm+cs)
		reportModel(b, "pme_overhead_p8_pct", pm+ps)
	}
}

// BenchmarkFig5NetworkWallClock regenerates Fig. 5: the network sweep.
func BenchmarkFig5NetworkWallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nets, err := suite().Fig56()
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range nets {
			last := n.Rows[len(n.Rows)-1]
			key := "total_p8_tcp_s"
			switch n.Network {
			case "SCore on Ethernet":
				key = "total_p8_score_s"
			case "Myrinet":
				key = "total_p8_myrinet_s"
			}
			reportModel(b, key, last.Classic.Total()+last.PME.Total())
		}
	}
}

// BenchmarkFig6NetworkBreakdown regenerates Fig. 6 from the same sweep.
func BenchmarkFig6NetworkBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nets, err := suite().Fig56()
		if err != nil {
			b.Fatal(err)
		}
		last := nets[0].Rows[len(nets[0].Rows)-1] // TCP
		_, pm, ps := last.PME.Percent()
		reportModel(b, "tcp_pme_overhead_p8_pct", pm+ps)
	}
}

// BenchmarkFig7CommSpeed regenerates Fig. 7: per-node communication speed
// with its variability.
func BenchmarkFig7CommSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.P != 8 {
				continue
			}
			switch r.Network {
			case "TCP/IP on Ethernet":
				reportModel(b, "tcp_avg_mbs", r.AvgMBs)
				reportModel(b, "tcp_spread_mbs", r.MaxMBs-r.MinMBs)
			case "Myrinet":
				reportModel(b, "myrinet_avg_mbs", r.AvgMBs)
			}
		}
	}
}

// BenchmarkFig8Middleware regenerates Fig. 8: MPI vs CMPI.
func BenchmarkFig8Middleware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.P != 8 {
				continue
			}
			if r.Middleware == "CMPI" {
				reportModel(b, "cmpi_total_p8_s", r.Classic+r.PME)
			} else {
				reportModel(b, "mpi_total_p8_s", r.Classic+r.PME)
			}
		}
	}
}

// BenchmarkFig9DualProcessor regenerates Fig. 9: uni vs dual CPUs/node.
func BenchmarkFig9DualProcessor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.P != 8 {
				continue
			}
			switch {
			case r.Network == "TCP/IP on Ethernet" && r.CPUs == 2:
				reportModel(b, "tcp_dual_total_p8_s", r.Classic+r.PME)
			case r.Network == "TCP/IP on Ethernet" && r.CPUs == 1:
				reportModel(b, "tcp_uni_total_p8_s", r.Classic+r.PME)
			case r.Network == "Myrinet" && r.CPUs == 2:
				reportModel(b, "myrinet_dual_total_p8_s", r.Classic+r.PME)
			}
		}
	}
}

// BenchmarkFactorialDesign regenerates the full 12-cell factorial table of
// §3.1.
func BenchmarkFactorialDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suite().Factorial()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("factorial cells = %d", len(rows))
		}
	}
}

// BenchmarkStudyAllFigures renders the entire text report through the
// public façade (what cmd/charmmbench -figure all does).
func BenchmarkStudyAllFigures(b *testing.B) {
	study := &core.Study{Suite: suite()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := study.All(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Kernel benchmarks with meaningful ns/op: the real computation.

// BenchmarkSequentialMDStep measures one real MD step of the full
// 3552-atom PME workload on the host machine.
func BenchmarkSequentialMDStep(b *testing.B) {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 40)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	e := md.NewEngine(sys, cfg)
	e.ComputeForces(nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(nil, nil)
	}
}

// exactKernelBench reports whether the micro-benchmarks below should run
// the reference (pre-optimization) kernels instead of the fast ones — set
// REPRO_EXACT_KERNELS=1 to measure the legacy paths (that is how the
// checked-in bench/baseline_kernels.txt numbers were captured).
func exactKernelBench() bool { return os.Getenv("REPRO_EXACT_KERNELS") == "1" }

// BenchmarkFFT3D measures one forward+inverse 3-D transform of the paper's
// 80×36×48 PME charge grid: half-spectrum r2c/c2r by default, the complex
// reference plan under REPRO_EXACT_KERNELS=1.
func BenchmarkFFT3D(b *testing.B) {
	const nx, ny, nz = 80, 36, 48
	r := rng.New(9)
	if exactKernelBench() {
		p := fft.NewPlan3D(nx, ny, nz)
		x := make([]complex128, nx*ny*nz)
		for i := range x {
			x[i] = complex(r.Range(-1, 1), 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(x)
			p.Inverse(x)
		}
		return
	}
	p, err := fft.NewRealPlan3D(nx, ny, nz)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, nx*ny*nz)
	for i := range x {
		x[i] = r.Range(-1, 1)
	}
	spec := make([]complex128, p.SpectrumLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
		p.Inverse(spec, x)
	}
}

// BenchmarkPMEReciprocal measures one full reciprocal-space evaluation
// (spread → FFT → influence → FFT → interpolate) on the paper mesh with a
// myoglobin-sized charge set.
func BenchmarkPMEReciprocal(b *testing.B) {
	box := space.NewBox(56.702, 25.181, 33.575)
	r := rng.New(10)
	const n = 3552
	pos := make([]vec.V, n)
	charges := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(r.Range(0, box.L.X), r.Range(0, box.L.Y), r.Range(0, box.L.Z))
		charges[i] = r.Range(-0.8, 0.8)
	}
	p := ewald.NewPME(box, 0.34, 80, 36, 48, 4)
	p.ExactFFT = exactKernelBench()
	frc := make([]vec.V, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Recip(pos, charges, frc, nil)
	}
}

// BenchmarkNonbondedKernel measures the short-range pair loop over the
// relaxed myoglobin neighbour list: the SoA table kernel by default, the
// exact-math reference loop under REPRO_EXACT_KERNELS=1.
func BenchmarkNonbondedKernel(b *testing.B) {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 40)
	opts := ff.PMEOptions()
	opts.ExactKernels = exactKernelBench()
	f := ff.New(sys, opts)
	pairs := f.BuildPairs(sys.Pos, nil)
	k := f.NewNonbondedKernel()
	frc := make([]vec.V, sys.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Compute(sys.Pos, pairs, frc, nil)
	}
}

// ---------------------------------------------------------------------------
// Pooled-kernel variants: the same workloads with the physics kernels
// spread over GOMAXPROCS host cores (kernels.Pool). Run them with
// `-cpu 1,4` to get 1-worker and 4-worker entries under one name — the
// pool is sized per iteration-independent setup from the GOMAXPROCS the
// benchmark harness set, so the -cpu list directly sets the worker count.

// benchPoolWorkers is the kernel pool width for the *Parallel
// benchmarks: the GOMAXPROCS of this benchmark invocation.
func benchPoolWorkers() int { return runtime.GOMAXPROCS(0) }

// BenchmarkSequentialMDStepParallel measures one real MD step of the full
// 3552-atom PME workload with the pooled multi-core kernels.
func BenchmarkSequentialMDStepParallel(b *testing.B) {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 40)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	cfg.KernelWorkers = benchPoolWorkers()
	e := md.NewEngine(sys, cfg)
	e.ComputeForces(nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(nil, nil)
	}
}

// BenchmarkFFT3DParallel measures the pooled half-spectrum 3-D transform
// on the paper's PME grid.
func BenchmarkFFT3DParallel(b *testing.B) {
	const nx, ny, nz = 80, 36, 48
	r := rng.New(9)
	p, err := fft.NewRealPlan3D(nx, ny, nz)
	if err != nil {
		b.Fatal(err)
	}
	p.SetPool(kernels.NewPool(benchPoolWorkers()))
	x := make([]float64, nx*ny*nz)
	for i := range x {
		x[i] = r.Range(-1, 1)
	}
	spec := make([]complex128, p.SpectrumLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
		p.Inverse(spec, x)
	}
}

// BenchmarkPMEReciprocalParallel measures the pooled reciprocal-space
// evaluation (chunked spread → pooled FFT → pooled interpolate).
func BenchmarkPMEReciprocalParallel(b *testing.B) {
	box := space.NewBox(56.702, 25.181, 33.575)
	r := rng.New(10)
	const n = 3552
	pos := make([]vec.V, n)
	charges := make([]float64, n)
	for i := range pos {
		pos[i] = vec.New(r.Range(0, box.L.X), r.Range(0, box.L.Y), r.Range(0, box.L.Z))
		charges[i] = r.Range(-0.8, 0.8)
	}
	p := ewald.NewPME(box, 0.34, 80, 36, 48, 4)
	p.SetPool(kernels.NewPool(benchPoolWorkers()))
	frc := make([]vec.V, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Recip(pos, charges, frc, nil)
	}
}

// BenchmarkNonbondedKernelParallel measures the sharded short-range pair
// loop over the relaxed myoglobin neighbour list.
func BenchmarkNonbondedKernelParallel(b *testing.B) {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 40)
	f := ff.New(sys, ff.PMEOptions())
	pairs := f.BuildPairs(sys.Pos, nil)
	k := f.NewNonbondedKernel()
	k.SetPool(kernels.NewPool(benchPoolWorkers()))
	frc := make([]vec.V, sys.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Compute(sys.Pos, pairs, frc, nil)
	}
}

// BenchmarkParallelStepSimulated measures one simulated 8-rank parallel
// step end to end (physics execution + discrete-event transport).
func BenchmarkParallelStepSimulated(b *testing.B) {
	benchParallelStep(b, 8, pmd.DecompReplicated)
}

// BenchmarkParallelStepDomain measures one simulated 16-rank parallel
// step under the spatial domain decomposition with the pencil PME — the
// past-the-slab-ceiling configuration the replicated path cannot reach
// efficiently.
func BenchmarkParallelStepDomain(b *testing.B) {
	benchParallelStep(b, 16, pmd.DecompDomain)
}

func benchParallelStep(b *testing.B, ranks int, decomp pmd.DecompKind) {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 40)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := pmd.Run(
			cluster.Config{Nodes: ranks, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1},
			cluster.PentiumIII1GHz(),
			pmd.Config{System: sys, MD: cfg, Steps: 1, Middleware: pmd.MiddlewareMPI, Decomp: decomp},
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}
