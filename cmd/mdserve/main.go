// Command mdserve runs the simulation job service: a persistent HTTP
// server that accepts run, sweep, analysis and figure jobs on the
// deterministic engine, with multi-tenant admission control, a durable
// content-addressed result store and graceful checkpoint-parking
// shutdown.
//
// Quickstart:
//
//	mdserve -addr 127.0.0.1:8080 -state /var/tmp/mdserve &
//	curl -s -XPOST localhost:8080/v1/jobs \
//	    -d '{"tenant":"alice","spec":{"kind":"run","atoms":120,"steps":8}}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/result
//
// SIGINT/SIGTERM shut down gracefully: in-flight short jobs drain, long
// runs park at a checkpoint boundary, and restarting with the same
// -state resumes everything that was accepted but unfinished.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		state      = flag.String("state", "mdserve-state", "state directory (store, journal, parked checkpoints)")
		storeMax   = flag.Int64("store-max-bytes", 64<<20, "result store size bound before LRU eviction")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		queueDepth = flag.Int("queue-depth", 8, "per-tenant queue bound before load shedding")
		deadline   = flag.Duration("deadline", 2*time.Minute, "default per-job deadline")
		retries    = flag.Int("max-retries", 2, "bounded retries for retryable job failures")
		quantum    = flag.Duration("quantum", 0, "preempt long runs at their next checkpoint boundary after this much execution (0 disables)")
		weights    = flag.String("weights", "", "fair-queue tenant weights, e.g. alice=2,bob=1")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
		kernelW    = flag.Int("kernel-workers", 0, "spread each job's physics kernels over this many host cores (0 = legacy serial; results identical for any value >= 1, but differ at roundoff from 0 — use a fresh -state when changing)")
	)
	flag.Parse()

	die := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, append([]interface{}{"mdserve:"}, args...)...)
		os.Exit(1)
	}

	tw := map[string]float64{}
	if *weights != "" {
		for _, pair := range strings.Split(*weights, ",") {
			name, val, ok := strings.Cut(pair, "=")
			if !ok {
				die("bad -weights entry:", pair)
			}
			w, err := strconv.ParseFloat(val, 64)
			if err != nil || w <= 0 {
				die("bad -weights value:", pair)
			}
			tw[name] = w
		}
	}

	srv, err := serve.Open(serve.Config{
		Addr:            *addr,
		StateDir:        *state,
		StoreMaxBytes:   *storeMax,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		TenantWeights:   tw,
		DefaultDeadline: *deadline,
		MaxRetries:      *retries,
		PreemptQuantum:  *quantum,
		KernelWorkers:   *kernelW,
		Obs:             obs.NewRegistry(),
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("mdserve: listening on %s (state %s)\n", srv.Addr(), *state)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("mdserve: %s, draining (budget %s)\n", got, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mdserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("mdserve: drained cleanly; journaled work resumes on restart")
}
