// tracer runs one parallel MD configuration under full event tracing and
// renders the per-rank timeline; optionally it writes a Chrome trace-event
// JSON file for chrome://tracing / Perfetto.
//
// Usage:
//
//	tracer -net tcp -p 4 -steps 2 -width 140 -o trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/topol"
	"repro/internal/trace"
)

func main() {
	netName := flag.String("net", "tcp", "network: tcp, score, myrinet, fast")
	procs := flag.Int("p", 4, "processors")
	cpus := flag.Int("cpus", 1, "CPUs per node (1 or 2)")
	steps := flag.Int("steps", 2, "MD steps")
	useCMPI := flag.Bool("cmpi", false, "use the CMPI middleware")
	width := flag.Int("width", 120, "timeline width in characters")
	out := flag.String("o", "", "write Chrome trace JSON to this file")
	flag.Parse()

	net, ok := netmodel.ByName(*netName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracer: unknown network %q\n", *netName)
		os.Exit(2)
	}
	mw := pmd.MiddlewareMPI
	if *useCMPI {
		mw = pmd.MiddlewareCMPI
	}

	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300

	col := &trace.Collector{}
	res, err := pmd.Run(
		cluster.Config{Nodes: *procs / *cpus, CPUsPerNode: *cpus, Net: net, Seed: 1},
		cluster.PentiumIII1GHz(),
		pmd.Config{System: sys, MD: cfg, Steps: *steps, Middleware: mw, Tracer: col},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}

	c, pm := res.PhaseTotals()
	fmt.Printf("%s, p=%d (%d CPU/node), %d steps, %s middleware: classic %.3f s, pme %.3f s\n\n",
		net.Name, *procs, *cpus, *steps, mw, c.Wall, pm.Wall)
	if err := col.RenderTimeline(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
	busy := col.Busy(trace.KindCompute)
	fmt.Printf("\n%d events collected; rank-0 compute occupancy %.1f%%\n",
		col.Len(), 100*busy[0]/res.Wall)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := col.WriteChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
