// tracer runs one parallel MD configuration under full event tracing and
// renders the per-rank timeline; optionally it writes a Chrome trace-event
// JSON file for chrome://tracing / Perfetto. With -faults, a fault
// scenario is injected and its windows appear as 'X' lanes on the
// timeline.
//
// Usage:
//
//	tracer -net tcp -p 4 -steps 2 -width 140 -o trace.json
//	tracer -net tcp -p 4 -steps 4 -faults 'straggler@0.1:0.4,node=1,slow=4'
//	tracer -net tcp -p 4 -steps 2 -kinds compute,sync -min-dur 0.001
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/topol"
	"repro/internal/trace"
)

func main() {
	netName := flag.String("net", "tcp", "network: tcp, score, myrinet, fast")
	procs := flag.Int("p", 4, "processors")
	cpus := flag.Int("cpus", 1, "CPUs per node (1 or 2)")
	steps := flag.Int("steps", 2, "MD steps")
	useCMPI := flag.Bool("cmpi", false, "use the CMPI middleware")
	width := flag.Int("width", 120, "timeline width in characters")
	out := flag.String("o", "", "write Chrome trace JSON to this file")
	faultSpec := flag.String("faults", "", "fault scenario DSL (see internal/fault.ParseSpec) or @file.json")
	kindsFlag := flag.String("kinds", "", "comma-separated interval kinds to keep (compute,send,recv,sync,phase,fault,guard); empty keeps all")
	minDur := flag.Float64("min-dur", 0, "drop intervals shorter than this (virtual seconds)")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "tracer: "+format+"\n", args...)
		os.Exit(2)
	}
	net, ok := netmodel.ByName(*netName)
	if !ok {
		fail("unknown network %q", *netName)
	}
	if *cpus != 1 && *cpus != 2 {
		fail("-cpus must be 1 or 2 (got %d)", *cpus)
	}
	if *procs < 1 {
		fail("-p must be >= 1 (got %d)", *procs)
	}
	if *procs%*cpus != 0 {
		fail("-p (%d) must be a multiple of -cpus (%d)", *procs, *cpus)
	}
	if *steps < 1 {
		fail("-steps must be >= 1 (got %d)", *steps)
	}
	mw := pmd.MiddlewareMPI
	if *useCMPI {
		mw = pmd.MiddlewareCMPI
	}
	if *minDur < 0 {
		fail("-min-dur must be >= 0 (got %g)", *minDur)
	}
	var kinds []trace.Kind
	if *kindsFlag != "" {
		for _, s := range strings.Split(*kindsFlag, ",") {
			s = strings.TrimSpace(s)
			if !trace.KnownKind(s) {
				fail("unknown trace kind %q (known: compute,send,recv,sync,phase,fault,guard)", s)
			}
			kinds = append(kinds, trace.Kind(s))
		}
	}

	var inj *fault.Injector
	if *faultSpec != "" {
		var sc *fault.Scenario
		var err error
		if (*faultSpec)[0] == '@' {
			sc, err = fault.LoadFile((*faultSpec)[1:])
		} else {
			sc, err = fault.ParseSpec(*faultSpec)
		}
		if err != nil {
			fail("%v", err)
		}
		if inj, err = fault.NewInjector(sc, fault.Options{}); err != nil {
			fail("%v", err)
		}
	}

	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	md.Relax(sys, 80)
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300

	col := &trace.Collector{}
	pcfg := pmd.Config{System: sys, MD: cfg, Steps: *steps, Middleware: mw, Tracer: col}
	if inj != nil {
		pcfg.Faults = inj
		pcfg.Watchdog = mpi.DefaultWatchdog()
	}
	nodes := *procs / *cpus
	res, err := pmd.Run(
		cluster.Config{Nodes: nodes, CPUsPerNode: *cpus, Net: net, Seed: 1},
		cluster.PentiumIII1GHz(),
		pcfg,
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}

	if inj != nil {
		for _, e := range inj.Events(nodes, *cpus, res.Wall) {
			if err := col.Add(e); err != nil {
				fmt.Fprintln(os.Stderr, "tracer:", err)
				os.Exit(1)
			}
		}
	}

	// The filtered view (kinds, minimum duration) drives the rendering and
	// the export; the unfiltered collector keeps the full recording.
	view := col
	if len(kinds) > 0 || *minDur > 0 {
		view = col.Filter(kinds, *minDur)
	}

	c, pm := res.PhaseTotals()
	fmt.Printf("%s, p=%d (%d CPU/node), %d steps, %s middleware: classic %.3f s, pme %.3f s\n\n",
		net.Name, *procs, *cpus, *steps, mw, c.Wall, pm.Wall)
	if err := view.RenderTimeline(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
	busy := view.Busy(trace.KindCompute)
	fmt.Printf("\n%d of %d events shown; rank-0 compute occupancy %.1f%%\n",
		view.Len(), col.Len(), 100*busy[0]/res.Wall)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := view.WriteChromeJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "tracer:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
