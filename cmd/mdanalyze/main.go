// mdanalyze computes standard analyses from an XYZ trajectory written by
// mdrun: O–O radial distribution function and mean-square displacement.
//
// Usage:
//
//	mdrun -steps 200 -xyz traj.xyz -every 10
//	mdanalyze -xyz traj.xyz -rdf -box 80,36,48
//	mdanalyze -xyz traj.xyz -msd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/vec"
)

func main() {
	xyz := flag.String("xyz", "", "XYZ trajectory file (required)")
	doRDF := flag.Bool("rdf", false, "O–O radial distribution function")
	doMSD := flag.Bool("msd", false, "mean-square displacement of the oxygens")
	boxSpec := flag.String("box", "80,36,48", "periodic box edges Lx,Ly,Lz (Å)")
	rmax := flag.Float64("rmax", 0, "RDF range (default: minimum-image limit)")
	dr := flag.Float64("dr", 0.1, "RDF bin width (Å)")
	flag.Parse()

	if *xyz == "" || (!*doRDF && !*doMSD) {
		fmt.Fprintln(os.Stderr, "mdanalyze: need -xyz FILE and at least one of -rdf, -msd")
		os.Exit(2)
	}
	box, err := parseBox(*boxSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdanalyze:", err)
		os.Exit(2)
	}

	f, err := os.Open(*xyz)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdanalyze:", err)
		os.Exit(1)
	}
	defer f.Close()

	var elements []string
	var frames [][]vec.V
	xr := topol.NewXYZReader(f)
	for {
		el, pos, _, err := xr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdanalyze:", err)
			os.Exit(1)
		}
		if elements == nil {
			elements = el
		}
		frames = append(frames, pos)
	}
	if len(frames) == 0 {
		fmt.Fprintln(os.Stderr, "mdanalyze: no frames in", *xyz)
		os.Exit(1)
	}
	oxy := analysis.SelectByName(elements, "O")
	fmt.Printf("%d frames, %d atoms, %d oxygens\n\n", len(frames), len(elements), len(oxy))

	if *doRDF {
		lim := *rmax
		if lim <= 0 {
			lim = box.MaxCutoff()
		}
		r, g, err := analysis.RDFFrames(box, frames, oxy, oxy, lim, *dr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdanalyze:", err)
			os.Exit(1)
		}
		fmt.Println("O–O radial distribution function")
		var rows [][]string
		for i := range r {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", r[i]),
				fmt.Sprintf("%.3f", g[i]),
				report.Bar(g[i], 4, 40),
			})
		}
		if err := report.Table(os.Stdout, []string{"r (Å)", "g(r)", ""}, rows); err != nil {
			fmt.Fprintln(os.Stderr, "mdanalyze:", err)
			os.Exit(1)
		}
	}

	if *doMSD {
		msd, err := analysis.MSD(frames, oxy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdanalyze:", err)
			os.Exit(1)
		}
		fmt.Println("Mean-square displacement of the oxygens")
		var rows [][]string
		for t, v := range msd {
			rows = append(rows, []string{
				fmt.Sprintf("%d", t),
				fmt.Sprintf("%.4f", v),
				report.Bar(v, msd[len(msd)-1]+1e-12, 40),
			})
		}
		if err := report.Table(os.Stdout, []string{"frame", "MSD (Å²)", ""}, rows); err != nil {
			fmt.Fprintln(os.Stderr, "mdanalyze:", err)
			os.Exit(1)
		}
	}
}

func parseBox(spec string) (space.Box, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return space.Box{}, fmt.Errorf("bad -box %q (want Lx,Ly,Lz)", spec)
	}
	var l [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return space.Box{}, fmt.Errorf("bad -box component %q", p)
		}
		l[i] = v
	}
	return space.NewBox(l[0], l[1], l[2]), nil
}
