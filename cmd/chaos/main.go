// chaos is the soak harness: it draws seeded random fault scenarios,
// runs the resilient parallel MD under each, and checks the invariants a
// production run must never violate (termination, finite energies,
// bitwise determinism across host-worker counts, checkpoint/restart
// equivalence through the durable on-disk path). The first violation is
// shrunk to a minimal DSL reproducer and the full scenario is written as
// JSON for replay.
//
// Usage:
//
//	chaos -runs 20 -seed 1
//	chaos -runs 100 -p 8 -cpus 2 -net score -fail-dir failures -v
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pmd"
)

// obsDrainTimeout bounds how long exit paths wait for in-flight /metrics
// and /runz scrapes to finish before force-closing the obs server.
const obsDrainTimeout = 2 * time.Second

func main() {
	runs := flag.Int("runs", 20, "number of random scenarios to soak")
	seed := flag.Uint64("seed", 1, "base seed (run i uses a derived stream)")
	steps := flag.Int("steps", 4, "MD steps per run")
	procs := flag.Int("p", 4, "processors")
	cpus := flag.Int("cpus", 1, "CPUs per node (1 or 2)")
	netName := flag.String("net", "tcp", "network: tcp, score, myrinet, fast")
	atoms := flag.Int("atoms", 300, "solvated-box size in atoms")
	workersList := flag.String("workers", "1,4", "comma-separated host-worker counts cross-checked bitwise")
	mwName := flag.String("mw", "mpi", "middleware: mpi or cmpi")
	decompFlag := flag.String("decomp", "replicated", "decomposition: replicated or domain")
	recoveryFlag := flag.String("recovery", "global", "crash recovery strategy: global (checkpoint rewind) or local (buddy-restore; needs -decomp domain)")
	ckptEvery := flag.Int("ckpt-every", 2, "checkpoint cadence in steps")
	failDir := flag.String("fail-dir", "", "write the failing scenario JSON here")
	verbose := flag.Bool("v", false, "per-run progress")
	obsAddr := flag.String("obs-addr", "", "serve live introspection (/metrics, /runz, /debug/pprof) on this address")
	obsManifest := flag.String("obs-manifest", "", "write the JSON run manifest (provenance + final metrics) to this file")
	flag.Parse()

	obsDrain := func() {}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
		obsDrain()
		os.Exit(2)
	}
	// die drains the obs server before exiting so a collector mid-scrape
	// still gets a complete exposition of the failed soak.
	die := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, append([]interface{}{"chaos:"}, args...)...)
		obsDrain()
		os.Exit(1)
	}
	if *runs < 1 {
		fail("-runs must be >= 1 (got %d)", *runs)
	}
	net, ok := netmodel.ByName(*netName)
	if !ok {
		fail("unknown network %q", *netName)
	}
	if *cpus != 1 && *cpus != 2 {
		fail("-cpus must be 1 or 2 (got %d)", *cpus)
	}
	if *procs < 2**cpus || *procs%*cpus != 0 {
		fail("-p (%d) must be a multiple of -cpus (%d) spanning at least 2 nodes", *procs, *cpus)
	}
	var mw pmd.MiddlewareKind
	switch *mwName {
	case "mpi":
		mw = pmd.MiddlewareMPI
	case "cmpi":
		mw = pmd.MiddlewareCMPI
	default:
		fail("-mw must be mpi or cmpi (got %q)", *mwName)
	}
	dk, err := pmd.ParseDecomp(*decompFlag)
	if err != nil {
		fail("%v", err)
	}
	rk, err := pmd.ParseRecovery(*recoveryFlag)
	if err != nil {
		fail("%v", err)
	}
	var workers []int
	for _, s := range strings.Split(*workersList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			fail("bad -workers entry %q", s)
		}
		workers = append(workers, w)
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
		}
	}

	reg := obs.NewRegistry()
	if *obsAddr != "" {
		srv, err := obs.NewServer(*obsAddr, reg, obs.ServeOptions{
			Status: func() []string { return []string{fmt.Sprintf("chaos: soaking %d scenarios", *runs)} },
		})
		if err != nil {
			die(err)
		}
		obsDrain = func() {
			ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
			defer cancel()
			_ = srv.Close(ctx)
		}
		defer obsDrain()
		fmt.Fprintf(os.Stderr, "obs: http://%s/{metrics,runz,debug/pprof}\n", srv.Addr())
	}
	writeManifest := func() {
		if *obsManifest == "" {
			return
		}
		m := obs.NewManifest()
		m.Seeds["base"] = *seed
		m.Config["runs"] = *runs
		m.Config["steps"] = *steps
		m.Config["procs"] = *procs
		m.Config["net"] = *netName
		m.Config["decomp"] = dk.String()
		m.Config["recovery"] = rk.String()
		m.Attach(reg)
		if err := m.WriteFile(*obsManifest); err != nil {
			die("manifest:", err)
		}
		fmt.Fprintln(os.Stderr, "obs: manifest written to", *obsManifest)
	}

	h, err := chaos.NewHarness(chaos.Config{
		Seed:            *seed,
		Steps:           *steps,
		Nodes:           *procs / *cpus,
		CPUsPerNode:     *cpus,
		Net:             net,
		Middleware:      mw,
		Decomp:          dk,
		Recovery:        rk,
		Atoms:           *atoms,
		Workers:         workers,
		CheckpointEvery: *ckptEvery,
		Obs:             reg,
		Logf:            logf,
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("soaking %d scenarios: p=%d (%d CPU/node) on %s, %s/%s, %d atoms, %d steps, workers %v, horizon %.3gs\n",
		*runs, *procs, *cpus, net.Name, dk, rk, *atoms, *steps, workers, h.Horizon())

	reports, failure, err := h.Soak(*runs)
	if err != nil {
		die("harness error:", err)
	}
	if failure == nil {
		var faults, recoveries int
		for _, r := range reports {
			faults += r.Faults
			recoveries += r.Recoveries
		}
		fmt.Printf("PASS: %d runs, %d faults injected, %d crash recoveries, 0 invariant violations\n",
			len(reports), faults, recoveries)
		writeManifest()
		return
	}

	fmt.Printf("FAIL: run %d (seed %d) violated invariant %q\n", failure.Index, failure.Seed, failure.Err.Name)
	fmt.Printf("  detail:   %s\n", failure.Err.Detail)
	fmt.Printf("  scenario: %s\n", failure.Scenario.DSL())
	fmt.Printf("  minimal:  %s\n", failure.Minimal.DSL())
	fmt.Printf("  reproduce: %s\n", chaos.Repro{
		DSL: failure.Minimal.DSL(), Seed: failure.Seed, Procs: *procs, CPUs: *cpus,
		Net: *netName, Steps: *steps, Atoms: *atoms, Decomp: dk, Recovery: rk,
	}.Line())
	if *failDir != "" {
		if err := os.MkdirAll(*failDir, 0o755); err != nil {
			die(err)
		}
		path := filepath.Join(*failDir, fmt.Sprintf("scenario-%d.json", failure.Seed))
		buf, err := json.MarshalIndent(failure.Scenario, "", "  ")
		if err == nil {
			err = os.WriteFile(path, buf, 0o644)
		}
		if err != nil {
			die(err)
		}
		fmt.Printf("  scenario JSON written to %s\n", path)
	}
	writeManifest()
	// A FAIL exit still drains the obs endpoint: the final counters cover
	// the run that violated the invariant, exactly what a collector wants.
	obsDrain()
	os.Exit(1)
}
