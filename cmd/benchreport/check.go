// The -check regression gate: compare two benchreport JSON reports and
// decide whether the newer one regressed. It never runs a benchmark —
// both sides were measured elsewhere (ideally with -count 5 medians).
//
// Exit codes:
//
//	0  every compared entry is within its gate
//	1  at least one regression beyond the gate
//	2  usage error (wrong arguments, unreadable or malformed report)
//	3  the reports are not comparable: different hosts, suites, kernel
//	   plans (exact_kernels), entry sets, CPU counts or GOMAXPROCS —
//	   comparing them would gate on hardware, not on code
//
// CI treats 3 as "skip" rather than failure: a checked-in baseline from
// one host cannot veto a change measured on another.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// gate returns the allowed fractional slowdown for a baseline cost.
// Millisecond-and-up entries are stable enough for a 10% gate; faster
// entries jitter with scheduling noise, so the gate widens to 25% rather
// than flagging the weather.
func gate(baselineNs float64) float64 {
	if baselineNs >= 1e6 {
		return 0.10
	}
	return 0.25
}

// wallGate is the allowed slowdown of the -figure all wall measurement,
// wider than the per-op gates because a single wall sample is noisy.
const wallGate = 0.15

// serveGate is the allowed slowdown for serve-suite entries (loadgen's
// submit-to-done percentiles). One load phase yields a handful of
// latency samples per kind, and queueing percentiles from a randomized
// workload routinely swing 2x between identical binaries — this gate
// exists to catch catastrophic regressions (a scheduler bug turning a
// 10 ms p99 into seconds), not to referee noise.
const serveGate = 2.0

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// provenanceMismatch reports a reason the two reports must not be gated
// against each other, or "" when they may.
func provenanceMismatch(old, cur *Report) string {
	switch {
	case old.GOOS != cur.GOOS || old.GOARCH != cur.GOARCH:
		return fmt.Sprintf("platform differs: %s/%s vs %s/%s", old.GOOS, old.GOARCH, cur.GOOS, cur.GOARCH)
	case old.NumCPU != cur.NumCPU:
		return fmt.Sprintf("host CPU count differs: %d vs %d", old.NumCPU, cur.NumCPU)
	case old.Suite != cur.Suite:
		return fmt.Sprintf("suite differs: %q vs %q", old.Suite, cur.Suite)
	case old.ExactKernels != cur.ExactKernels:
		return fmt.Sprintf("exact_kernels differs: %v vs %v (different kernel plans measure different code)", old.ExactKernels, cur.ExactKernels)
	}
	byKey := map[entryKey]BenchEntry{}
	for _, e := range cur.Benchmarks {
		byKey[entryKey{e.Name, e.Workers}] = e
	}
	if len(old.Benchmarks) != len(cur.Benchmarks) {
		return fmt.Sprintf("entry sets differ: %d vs %d benchmarks", len(old.Benchmarks), len(cur.Benchmarks))
	}
	for _, oe := range old.Benchmarks {
		ne, ok := byKey[entryKey{oe.Name, oe.Workers}]
		if !ok {
			return fmt.Sprintf("entry %s (workers %d) missing from the new report", oe.Name, oe.Workers)
		}
		if oe.NumCPU != ne.NumCPU {
			return fmt.Sprintf("entry %s: num_cpu differs: %d vs %d", oe.Name, oe.NumCPU, ne.NumCPU)
		}
	}
	return ""
}

// entryKey identifies one gated entry: a benchmark name measured at one
// GOMAXPROCS value (multi-cpu reports carry several entries per name).
type entryKey struct {
	name    string
	workers int
}

// entryLabel renders an entry for the comparison table; single-proc
// entries keep the bare name so old reports render unchanged.
func entryLabel(e BenchEntry) string {
	if e.Workers <= 1 {
		return e.Name
	}
	return fmt.Sprintf("%s-%d", e.Name, e.Workers)
}

// runCheck implements `benchreport -check old.json new.json` and returns
// the process exit code.
func runCheck(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "benchreport: -check needs exactly two arguments: old.json new.json")
		return 2
	}
	old, err := loadReport(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 2
	}
	cur, err := loadReport(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 2
	}
	if reason := provenanceMismatch(old, cur); reason != "" {
		fmt.Fprintf(stderr, "benchreport: reports not comparable: %s\n", reason)
		return 3
	}

	byKey := map[entryKey]BenchEntry{}
	for _, e := range cur.Benchmarks {
		byKey[entryKey{e.Name, e.Workers}] = e
	}
	regressions := 0
	fmt.Fprintf(stdout, "%-34s %14s %14s %8s %6s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "gate", "verdict")
	for _, oe := range old.Benchmarks {
		ne := byKey[entryKey{oe.Name, oe.Workers}]
		g := gate(oe.Current.NsPerOp)
		if old.Suite == "serve" {
			g = serveGate
		}
		delta := (ne.Current.NsPerOp - oe.Current.NsPerOp) / oe.Current.NsPerOp
		verdict := "ok"
		if delta > g {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-34s %14.0f %14.0f %+7.1f%% %5.0f%%  %s\n",
			entryLabel(oe), oe.Current.NsPerOp, ne.Current.NsPerOp, 100*delta, 100*g, verdict)
	}
	if old.FigureAllWallS > 0 && cur.FigureAllWallS > 0 {
		delta := (cur.FigureAllWallS - old.FigureAllWallS) / old.FigureAllWallS
		verdict := "ok"
		if delta > wallGate {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-32s %13.2fs %13.2fs %+7.1f%% %5.0f%%  %s\n",
			"figure-all wall", old.FigureAllWallS, cur.FigureAllWallS, 100*delta, 100*wallGate, verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchreport: %d regression(s) beyond the gate\n", regressions)
		return 1
	}
	fmt.Fprintln(stdout, "benchreport: no regressions")
	return 0
}
