package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureReport builds a minimal comparable report with ms-scale entries
// (so the 10% gate applies).
func fixtureReport(scale float64) Report {
	mk := func(ns float64) Measurement {
		return Measurement{NsPerOp: ns, BytesPerOp: 1024, AllocsPerOp: 10}
	}
	return Report{
		GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
		NumCPU: 8, Suite: "quick", Samples: 5,
		Benchmarks: []BenchEntry{
			{Name: "BenchmarkFFT3D", NumCPU: 8, Workers: 8, Current: mk(20e6 * scale)},
			{Name: "BenchmarkPMEReciprocal", NumCPU: 8, Workers: 8, Current: mk(30e6 * scale)},
			{Name: "BenchmarkNonbondedKernel", NumCPU: 8, Workers: 8, Current: mk(10e6)},
		},
	}
}

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func check(t *testing.T, oldRep, newRep Report) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", oldRep)
	newPath := writeReport(t, dir, "new.json", newRep)
	var stdout, stderr bytes.Buffer
	code := runCheck([]string{oldPath, newPath}, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCheckIdenticalPasses(t *testing.T) {
	code, out, _ := check(t, fixtureReport(1), fixtureReport(1))
	if code != 0 {
		t.Fatalf("identical reports: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("missing pass line in output:\n%s", out)
	}
}

func TestCheckTwentyPercentRegressionFails(t *testing.T) {
	// The synthetic fixture: two entries 20% slower than the baseline.
	// The 10% gate for ms-scale entries must trip.
	code, out, errOut := check(t, fixtureReport(1), fixtureReport(1.2))
	if code != 1 {
		t.Fatalf("20%% regression: exit %d, want 1\n%s%s", code, out, errOut)
	}
	if n := strings.Count(out, "REGRESSION"); n != 2 {
		t.Errorf("want 2 REGRESSION verdicts, got %d:\n%s", n, out)
	}
	if !strings.Contains(errOut, "2 regression(s)") {
		t.Errorf("stderr should count regressions, got: %s", errOut)
	}
}

func TestCheckImprovementPasses(t *testing.T) {
	if code, out, _ := check(t, fixtureReport(1.2), fixtureReport(1)); code != 0 {
		t.Fatalf("improvement: exit %d, want 0\n%s", code, out)
	}
}

func TestCheckNoiseAwareGateForFastEntries(t *testing.T) {
	// A microsecond-scale entry 15% slower is inside the widened 25%
	// gate; the same slowdown on a ms-scale entry would trip the 10% one.
	oldRep, newRep := fixtureReport(1), fixtureReport(1)
	for i := range oldRep.Benchmarks {
		oldRep.Benchmarks[i].Current.NsPerOp = 1e3
		newRep.Benchmarks[i].Current.NsPerOp = 1.15e3
	}
	if code, out, _ := check(t, oldRep, newRep); code != 0 {
		t.Fatalf("15%% on µs-scale entries: exit %d, want 0\n%s", code, out)
	}
}

func TestCheckProvenanceMismatch(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"num_cpu", func(r *Report) { r.NumCPU = 4 }, "CPU count"},
		{"goarch", func(r *Report) { r.GOARCH = "arm64" }, "platform"},
		{"suite", func(r *Report) { r.Suite = "full" }, "suite"},
		{"exact_kernels", func(r *Report) { r.ExactKernels = true }, "exact_kernels"},
		{"workers", func(r *Report) { r.Benchmarks[0].Workers = 2 }, "workers"},
		{"entry_num_cpu", func(r *Report) { r.Benchmarks[1].NumCPU = 2 }, "num_cpu"},
		{"missing_entry", func(r *Report) { r.Benchmarks = r.Benchmarks[:2] }, "entry sets"},
		{"renamed_entry", func(r *Report) { r.Benchmarks[2].Name = "BenchmarkOther" }, "missing from the new report"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newRep := fixtureReport(1)
			tc.mutate(&newRep)
			code, _, errOut := check(t, fixtureReport(1), newRep)
			if code != 3 {
				t.Fatalf("exit %d, want 3 (stderr: %s)", code, errOut)
			}
			if !strings.Contains(errOut, tc.want) {
				t.Errorf("stderr %q should mention %q", errOut, tc.want)
			}
		})
	}
}

func TestCheckWallRegression(t *testing.T) {
	oldRep, newRep := fixtureReport(1), fixtureReport(1)
	oldRep.FigureAllWallS, newRep.FigureAllWallS = 60, 75 // +25% > 15% gate
	code, out, _ := check(t, oldRep, newRep)
	if code != 1 {
		t.Fatalf("wall regression: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "figure-all wall") {
		t.Errorf("wall row missing:\n%s", out)
	}
}

func TestCheckUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runCheck([]string{"only-one.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := runCheck([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeReport(t, dir, "good.json", fixtureReport(1))
	if code := runCheck([]string{bad, good}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed JSON: exit %d, want 2", code)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}

func TestParseBenchOutputStillMatches(t *testing.T) {
	// The -check pipeline depends on the same parser the measuring path
	// uses; pin the shape of a typical `go test -bench` line.
	out, err := parseBenchOutput(strings.NewReader(
		"BenchmarkFFT3D-8   50   21500000 ns/op   1024 B/op   10 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := out[benchKey{"BenchmarkFFT3D", 8}]
	if !ok {
		t.Fatal("BenchmarkFFT3D not parsed under its GOMAXPROCS key")
	}
	if r.NsPerOp != 21500000 || r.BytesPerOp != 1024 || r.AllocsPerOp != 10 {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseBenchOutputMultiCPU(t *testing.T) {
	// `go test -cpu 1,4` emits the same name at two GOMAXPROCS values;
	// both must survive as distinct entries (a name-only key would let the
	// last line win).
	out, err := parseBenchOutput(strings.NewReader(
		"BenchmarkFFT3D     50   40000000 ns/op   0 B/op   0 allocs/op\n" +
			"BenchmarkFFT3D-4   50   12000000 ns/op   0 B/op   0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d entries, want 2: %+v", len(out), out)
	}
	if out[benchKey{"BenchmarkFFT3D", 1}].NsPerOp != 40000000 {
		t.Errorf("procs=1 entry: %+v", out[benchKey{"BenchmarkFFT3D", 1}])
	}
	if out[benchKey{"BenchmarkFFT3D", 4}].NsPerOp != 12000000 {
		t.Errorf("procs=4 entry: %+v", out[benchKey{"BenchmarkFFT3D", 4}])
	}
}

func TestBaselineFallsBackToSerialLine(t *testing.T) {
	baseline := map[benchKey]Measurement{
		{"BenchmarkFFT3D", 1}: {NsPerOp: 100},
		{"BenchmarkFFT3D", 4}: {NsPerOp: 40},
	}
	if m, ok := baselineFor(baseline, benchKey{"BenchmarkFFT3D", 4}); !ok || m.NsPerOp != 40 {
		t.Errorf("exact procs match: %v %v", m, ok)
	}
	// procs=2 not captured: fall back to the serial line.
	if m, ok := baselineFor(baseline, benchKey{"BenchmarkFFT3D", 2}); !ok || m.NsPerOp != 100 {
		t.Errorf("fallback: %v %v", m, ok)
	}
	if _, ok := baselineFor(baseline, benchKey{"BenchmarkOther", 1}); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestCheckServeSuiteUsesWideGate(t *testing.T) {
	serveRep := func(scale float64) Report {
		return Report{
			GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 8, Suite: "serve", Samples: 1,
			Benchmarks: []BenchEntry{
				{Name: "Serve/run/p99latency", NumCPU: 8, Workers: 2,
					Current: Measurement{NsPerOp: 10e6 * scale}},
			},
		}
	}
	// +150% is routine queueing noise for single-sample percentiles.
	if code, out, _ := check(t, serveRep(1), serveRep(2.5)); code != 0 {
		t.Fatalf("+150%% serve latency: exit %d, want 0\n%s", code, out)
	}
	// +250% is beyond even the wide gate.
	if code, out, _ := check(t, serveRep(1), serveRep(3.6)); code != 1 {
		t.Fatalf("+250%% serve latency: exit %d, want 1\n%s", code, out)
	}
}

func TestCheckMultiWorkerEntriesGateIndependently(t *testing.T) {
	multi := func(ns1, ns4 float64) Report {
		rep := fixtureReport(1)
		rep.Benchmarks = []BenchEntry{
			{Name: "BenchmarkFFT3D", NumCPU: 8, Workers: 1, Current: Measurement{NsPerOp: ns1}},
			{Name: "BenchmarkFFT3D", NumCPU: 8, Workers: 4, Current: Measurement{NsPerOp: ns4}},
		}
		return rep
	}
	// Only the 4-worker entry regresses.
	code, out, _ := check(t, multi(20e6, 6e6), multi(20e6, 9e6))
	if code != 1 {
		t.Fatalf("multi-worker regression: exit %d, want 1\n%s", code, out)
	}
	if n := strings.Count(out, "REGRESSION"); n != 1 {
		t.Errorf("want exactly 1 REGRESSION verdict, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "BenchmarkFFT3D-4") {
		t.Errorf("4-worker entry should render with its workers suffix:\n%s", out)
	}
}
