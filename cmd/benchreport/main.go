// benchreport measures the repository's host-performance contract and
// emits it as machine-readable JSON (BENCH_host.json): ns/op, B/op and
// allocs/op of the named go benchmarks (the macro step/study benchmarks
// and the FFT/PME/nonbonded kernel micro-benchmarks) plus the wall-clock
// of a full `charmmbench -figure all` regeneration. Each entry records
// the host CPU count and the GOMAXPROCS the benchmark actually ran with.
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_host.json
//	go run ./cmd/benchreport -baseline-bench bench/baseline_kernels.txt \
//	    -baseline-wall 65.9 -out BENCH_host.json
//	go run ./cmd/benchreport -cpu 4 -count 5 -out BENCH_host.json
//	go run ./cmd/benchreport -quick -out quick.json
//	go run ./cmd/benchreport -check bench/baseline.json quick.json
//
// The baseline flags attach previously measured numbers (for example from
// the commit before an optimization) so the report carries before/after
// evidence; they never re-run anything. A baseline file that is missing
// any required benchmark is rejected with the missing names listed.
//
// -count N repeats every benchmark run N times and reports per-entry
// medians, which is what the -check regression gate expects to compare.
// -check old.json new.json runs no benchmarks at all: it compares two
// reports and exits 0 (ok), 1 (regression), 2 (usage) or 3 (the reports
// are not comparable — see check.go).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pmd"
)

// The report schema lives in internal/benchfmt so cmd/loadgen can emit
// serve-latency reports gated by the same -check.
type (
	Measurement = benchfmt.Measurement
	BenchEntry  = benchfmt.BenchEntry
	Report      = benchfmt.Report
)

// benchKey identifies one measured entry: `-cpu 1,4` runs the same
// benchmark name at several GOMAXPROCS values, each its own entry.
type benchKey struct {
	name  string
	procs int
}

var benchLine = regexp.MustCompile(`^(Benchmark[^\s-]+)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBenchOutput(r io.Reader) (map[benchKey]Measurement, error) {
	out := map[benchKey]Measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q", sc.Text())
		}
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out[benchKey{m[1], procs}] = Measurement{NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp}
	}
	return out, sc.Err()
}

// baselineFor looks up a baseline measurement for an entry, falling back
// to the procs=1 line: historical baseline files were captured without
// -cpu and carry one line per name.
func baselineFor(baseline map[benchKey]Measurement, k benchKey) (Measurement, bool) {
	if m, ok := baseline[k]; ok {
		return m, true
	}
	m, ok := baseline[benchKey{k.name, 1}]
	return m, ok
}

func runBench(pattern, benchtime, cpu string) (map[benchKey]Measurement, error) {
	args := []string{"test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime}
	if cpu != "" {
		args = append(args, "-cpu", cpu)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchreport: go test -bench %s: %v", pattern, err)
	}
	return parseBenchOutput(&buf)
}

// requiredBenchmarks is the host-performance contract: every one of these
// must appear in the benchmark output (and in the baseline file when one
// is supplied) or the report is refused.
var requiredBenchmarks = []string{
	"BenchmarkSequentialMDStep",
	"BenchmarkSequentialMDStepParallel",
	"BenchmarkParallelStepSimulated",
	"BenchmarkParallelStepDomain",
	"BenchmarkStudyAllFigures",
	"BenchmarkFFT3D",
	"BenchmarkFFT3DParallel",
	"BenchmarkPMEReciprocal",
	"BenchmarkPMEReciprocalParallel",
	"BenchmarkNonbondedKernel",
	"BenchmarkNonbondedKernelParallel",
}

// quickBenchmarks is the -quick subset: the kernel micro-benchmarks plus
// one simulated step per decomposition, cheap enough to sample several
// times in a CI regression gate.
var quickBenchmarks = []string{
	"BenchmarkParallelStepSimulated",
	"BenchmarkParallelStepDomain",
	"BenchmarkFFT3D",
	"BenchmarkFFT3DParallel",
	"BenchmarkPMEReciprocal",
	"BenchmarkPMEReciprocalParallel",
	"BenchmarkNonbondedKernel",
	"BenchmarkNonbondedKernelParallel",
}

// baselineRequired is the subset a -baseline-bench file must cover: the
// serial entries that existed before the pooled kernels landed, so the
// checked-in bench/baseline_kernels.txt capture stays valid.
var baselineRequired = []string{
	"BenchmarkSequentialMDStep",
	"BenchmarkParallelStepSimulated",
	"BenchmarkStudyAllFigures",
	"BenchmarkFFT3D",
	"BenchmarkPMEReciprocal",
	"BenchmarkNonbondedKernel",
}

func inSet(set []string, name string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

// median destroys its argument's order and returns the middle sample.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	out := flag.String("out", "BENCH_host.json", "output path")
	baseBench := flag.String("baseline-bench", "", "previously saved `go test -bench` output to attach as the baseline")
	baseWall := flag.Float64("baseline-wall", 0, "previously measured -figure all wall seconds to attach as the baseline")
	skipFigures := flag.Bool("skip-figures", false, "skip the -figure all wall measurement")
	cpu := flag.String("cpu", "", "value passed to `go test -cpu` (GOMAXPROCS list); empty uses the go default")
	count := flag.Int("count", 1, "benchmark repetitions; the report carries per-entry medians")
	quick := flag.Bool("quick", false, "measure only the kernel micro-benchmarks and skip the -figure all wall (CI regression suite)")
	check := flag.Bool("check", false, "compare two reports (old.json new.json) instead of measuring; exits 1 on regression, 3 when not comparable")
	obsManifest := flag.String("obs-manifest", "", "write a JSON run manifest (provenance + measured medians as metrics) to this file")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus text snapshot of the measured medians to this file")
	flag.Parse()

	if *check {
		os.Exit(runCheck(flag.Args(), os.Stdout, os.Stderr))
	}
	if *count < 1 {
		fmt.Fprintf(os.Stderr, "benchreport: -count must be >= 1 (got %d)\n", *count)
		os.Exit(2)
	}

	suite := "full"
	required := requiredBenchmarks
	if *quick {
		suite = "quick"
		required = quickBenchmarks
		*skipFigures = true
	}
	rep := Report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Suite:        suite,
		Samples:      *count,
		ExactKernels: os.Getenv("REPRO_EXACT_KERNELS") == "1",
	}

	// Validate the baseline before the expensive measurements: a file
	// missing a required benchmark is a hard error, not a partial report.
	baseline := map[benchKey]Measurement{}
	if *baseBench != "" {
		f, err := os.Open(*baseBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		baseline, err = parseBenchOutput(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		var missing []string
		for _, name := range baselineRequired {
			if !inSet(required, name) {
				continue
			}
			if _, ok := baselineFor(baseline, benchKey{name, 1}); !ok {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr,
				"benchreport: baseline file %s is missing benchmarks: %s\n"+
					"(every required benchmark needs a baseline line; re-capture the file or pass no -baseline-bench)\n",
				*baseBench, strings.Join(missing, ", "))
			os.Exit(1)
		}
	}

	// Step benchmarks at a fixed iteration count high enough to amortize
	// cold caches and reach neighbour-list rebuilds; the whole-study
	// benchmark once (it is tens of seconds of work on its own); the
	// micro kernels at a higher count since each iteration is tens of ms.
	groups := []struct{ pattern, benchtime string }{
		{"BenchmarkSequentialMDStep|BenchmarkParallelStep", "20x"},
		{"BenchmarkStudyAllFigures", "1x"},
		{"BenchmarkFFT3D|BenchmarkPMEReciprocal|BenchmarkNonbondedKernel", "50x"},
	}
	if *quick {
		// The quick gate keeps the simulated-step entries (one per
		// decomposition) at a reduced iteration count alongside the kernels.
		groups = []struct{ pattern, benchtime string }{
			{"BenchmarkParallelStep", "5x"},
			groups[2],
		}
	}
	samples := map[benchKey][]Measurement{}
	for round := 0; round < *count; round++ {
		for _, group := range groups {
			res, err := runBench(group.pattern, group.benchtime, *cpu)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for k, v := range res {
				samples[k] = append(samples[k], v)
			}
		}
	}

	// Emit one entry per (name, GOMAXPROCS) pair, names in required order,
	// procs ascending within a name.
	for _, name := range required {
		var procsSeen []int
		for k := range samples {
			if k.name == name {
				procsSeen = append(procsSeen, k.procs)
			}
		}
		if len(procsSeen) == 0 {
			fmt.Fprintf(os.Stderr, "benchreport: benchmark %s missing from output\n", name)
			os.Exit(1)
		}
		sort.Ints(procsSeen)
		for _, procs := range procsSeen {
			ss := samples[benchKey{name, procs}]
			var ns, bs, as []float64
			for _, s := range ss {
				ns = append(ns, s.NsPerOp)
				bs = append(bs, float64(s.BytesPerOp))
				as = append(as, float64(s.AllocsPerOp))
			}
			e := BenchEntry{
				Name:    name,
				NumCPU:  runtime.NumCPU(),
				Workers: procs,
				Current: Measurement{
					NsPerOp:     median(ns),
					BytesPerOp:  int64(median(bs)),
					AllocsPerOp: int64(median(as)),
				},
			}
			if b, ok := baselineFor(baseline, benchKey{name, procs}); ok {
				e.Baseline = &b
			}
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}

	if !*skipFigures {
		start := time.Now()
		study := core.NewStudy(core.Options{})
		if err := study.All(io.Discard); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.FigureAllWallS = time.Since(start).Seconds()
		st := study.Stats()
		rep.FigureAllRuns = st.Misses
		rep.FigureAllHits = st.Hits
		rep.FigureAllTapes = st.TapeRecords
		rep.FigureAllReplay = st.TapeReplays
	}
	rep.BaselineWallS = *baseWall
	rep.ObsManifest = *obsManifest

	// Per-phase imbalance provenance: one quick 4-rank run per
	// decomposition, read off the run's attribution profile. Deterministic
	// (virtual time), so drift here means the simulation changed.
	imb := core.NewStudy(core.Options{Quick: true})
	for _, decomp := range []string{"replicated", "domain"} {
		dk, err := pmd.ParseDecomp(decomp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		res, err := imb.Suite.RunDecomp(netmodel.TCPGigE(), 4, 1, pmd.MiddlewareMPI, dk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		for _, ph := range res.Profile(nil).Phases {
			rep.PhaseImbalance = append(rep.PhaseImbalance, benchfmt.PhaseImbalance{
				Config:    decomp + "/p=4",
				Phase:     ph.Phase,
				Imbalance: ph.Imbalance,
			})
		}
	}

	if *obsManifest != "" || *metricsOut != "" {
		reg := obs.NewRegistry()
		for _, e := range rep.Benchmarks {
			bl := obs.L("bench", e.Name)
			wl := obs.L("workers", strconv.Itoa(e.Workers))
			reg.Gauge("repro_bench_ns_per_op", "median benchmark cost", bl, wl).Set(e.Current.NsPerOp)
			reg.Gauge("repro_bench_bytes_per_op", "median benchmark allocation volume", bl, wl).Set(float64(e.Current.BytesPerOp))
			reg.Gauge("repro_bench_allocs_per_op", "median benchmark allocation count", bl, wl).Set(float64(e.Current.AllocsPerOp))
		}
		if rep.FigureAllWallS > 0 {
			reg.Gauge("repro_bench_figure_all_wall_seconds", "full -figure all regeneration wall").Set(rep.FigureAllWallS)
		}
		if *obsManifest != "" {
			m := obs.NewManifest()
			m.Config["suite"] = suite
			m.Config["samples"] = *count
			m.Config["exact_kernels"] = rep.ExactKernels
			m.Attach(reg)
			if err := m.WriteFile(*obsManifest); err != nil {
				fmt.Fprintln(os.Stderr, "benchreport:", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			var buf bytes.Buffer
			err := reg.WriteProm(&buf)
			if err == nil {
				err = os.WriteFile(*metricsOut, buf.Bytes(), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport:", err)
				os.Exit(1)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchreport: wrote", *out)
}
