// benchreport measures the repository's host-performance contract and
// emits it as machine-readable JSON (BENCH_host.json): ns/op, B/op and
// allocs/op of the named go benchmarks plus the wall-clock of a full
// `charmmbench -figure all` regeneration.
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_host.json
//	go run ./cmd/benchreport -baseline-bench bench/baseline_prepr.txt \
//	    -baseline-wall 65.9 -out BENCH_host.json
//
// The baseline flags attach previously measured numbers (for example from
// the commit before an optimization) so the report carries before/after
// evidence; they never re-run anything.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Measurement is one benchmark's per-op cost.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchEntry pairs a current measurement with an optional baseline.
type BenchEntry struct {
	Name     string       `json:"name"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
}

// Report is the BENCH_host.json schema.
type Report struct {
	GeneratedAt     string       `json:"generated_at"`
	GoVersion       string       `json:"go_version"`
	GOOS            string       `json:"goos"`
	GOARCH          string       `json:"goarch"`
	NumCPU          int          `json:"num_cpu"`
	FigureAllWallS  float64      `json:"figure_all_wall_s"`
	BaselineWallS   float64      `json:"baseline_figure_all_wall_s,omitempty"`
	FigureAllRuns   int          `json:"figure_all_unique_runs"`
	FigureAllHits   int          `json:"figure_all_cache_hits"`
	FigureAllTapes  int          `json:"figure_all_tape_records"`
	FigureAllReplay int          `json:"figure_all_tape_replays"`
	Benchmarks      []BenchEntry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBenchOutput(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q", sc.Text())
		}
		var bytesOp, allocsOp int64
		if m[3] != "" {
			bytesOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			allocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		out[m[1]] = Measurement{NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp}
	}
	return out, sc.Err()
}

func runBench(pattern, benchtime string) (map[string]Measurement, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, ".")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchreport: go test -bench %s: %v", pattern, err)
	}
	return parseBenchOutput(&buf)
}

func main() {
	out := flag.String("out", "BENCH_host.json", "output path")
	baseBench := flag.String("baseline-bench", "", "previously saved `go test -bench` output to attach as the baseline")
	baseWall := flag.Float64("baseline-wall", 0, "previously measured -figure all wall seconds to attach as the baseline")
	skipFigures := flag.Bool("skip-figures", false, "skip the -figure all wall measurement")
	flag.Parse()

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}

	// Step benchmarks at a fixed iteration count high enough to amortize
	// cold caches and reach neighbour-list rebuilds; the whole-study
	// benchmark once (it is tens of seconds of work on its own).
	steps, err := runBench("BenchmarkSequentialMDStep|BenchmarkParallelStepSimulated", "20x")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	study, err := runBench("BenchmarkStudyAllFigures", "1x")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	current := map[string]Measurement{}
	for k, v := range steps {
		current[k] = v
	}
	for k, v := range study {
		current[k] = v
	}

	baseline := map[string]Measurement{}
	if *baseBench != "" {
		f, err := os.Open(*baseBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		baseline, err = parseBenchOutput(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
	}

	for _, name := range []string{
		"BenchmarkSequentialMDStep",
		"BenchmarkParallelStepSimulated",
		"BenchmarkStudyAllFigures",
	} {
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchreport: benchmark %s missing from output\n", name)
			os.Exit(1)
		}
		e := BenchEntry{Name: name, Current: cur}
		if b, ok := baseline[name]; ok {
			bc := b
			e.Baseline = &bc
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	if !*skipFigures {
		start := time.Now()
		study := core.NewStudy(core.Options{})
		if err := study.All(io.Discard); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.FigureAllWallS = time.Since(start).Seconds()
		st := study.Stats()
		rep.FigureAllRuns = st.Misses
		rep.FigureAllHits = st.Hits
		rep.FigureAllTapes = st.TapeRecords
		rep.FigureAllReplay = st.TapeReplays
	}
	rep.BaselineWallS = *baseWall

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchreport: wrote", *out)
}
