// calib runs the paper workload across the factor space and prints phase
// totals; it exists to calibrate the cost and network models against the
// published figures.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/topol"
)

func main() {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	cfg := md.PMEDefaultConfig()
	cfg.Temperature = 300

	run := func(label string, net netmodel.Params, nodes, cpus int, mw pmd.MiddlewareKind) {
		res, err := pmd.Run(cluster.Config{Nodes: nodes, CPUsPerNode: cpus, Net: net, Seed: 1},
			cluster.PentiumIII1GHz(),
			pmd.Config{System: sys, MD: cfg, Steps: 10, Middleware: mw})
		if err != nil {
			fmt.Println("ERR", err)
			return
		}
		c, pm := res.PhaseTotals()
		fmt.Printf("%-14s p=%d classic=%6.2fs (cmp %5.2f com %5.2f syn %5.2f) pme=%6.2fs (cmp %5.2f com %5.2f syn %5.2f) total=%6.2fs\n",
			label, nodes*cpus, c.Wall, c.Comp, c.Comm, c.Sync, pm.Wall, pm.Comp, pm.Comm, pm.Sync, c.Wall+pm.Wall)
	}

	for _, net := range netmodel.All() {
		for _, p := range []int{1, 2, 4, 8} {
			run(net.Name[:7], net, p, 1, pmd.MiddlewareMPI)
		}
	}
	for _, p := range []int{2, 4, 8} {
		run("TCP dual", netmodel.TCPGigE(), p/2, 2, pmd.MiddlewareMPI)
	}
	for _, p := range []int{2, 4, 8} {
		run("Myri dual", netmodel.MyrinetGM(), p/2, 2, pmd.MiddlewareMPI)
	}
	for _, p := range []int{1, 2, 4, 8} {
		run("TCP CMPI", netmodel.TCPGigE(), p, 1, pmd.MiddlewareCMPI)
	}
}
