// charmmbench regenerates the paper's figures from the simulated cluster
// study.
//
// Usage:
//
//	charmmbench -figure all            # every figure, text tables
//	charmmbench -figure 5 -format csv  # one figure as CSV
//	charmmbench -figure 3 -steps 10 -procs 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
)

func main() {
	figure := flag.String("figure", "all", "experiment to reproduce: 1..9, factorial, effects, ablation, scalelimit, or all")
	format := flag.String("format", "text", "output format: text or csv")
	steps := flag.Int("steps", 0, "MD steps per measurement (default: the paper's 10)")
	procs := flag.String("procs", "", "comma-separated processor counts (default 1,2,4,8)")
	quick := flag.Bool("quick", false, "reduced protocol (2 steps, p ≤ 4) for smoke runs")
	seed := flag.Uint64("seed", 0, "override the deterministic seeds")
	outdir := flag.String("outdir", "", "also write every figure as CSV into this directory")
	flag.Parse()

	opts := core.Options{Quick: *quick, Steps: *steps, SystemSeed: *seed, ClusterSeed: *seed}
	if *procs != "" {
		for _, tok := range strings.Split(*procs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "charmmbench: bad -procs entry %q\n", tok)
				os.Exit(2)
			}
			opts.Procs = append(opts.Procs, v)
		}
	}

	f := core.FormatText
	switch *format {
	case "text":
	case "csv":
		f = core.FormatCSV
	default:
		fmt.Fprintf(os.Stderr, "charmmbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	study := core.NewStudy(opts)
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "charmmbench:", err)
			os.Exit(1)
		}
		for _, id := range core.FigureIDs() {
			if id == "1" || id == "2" {
				continue // diagrams have no data rows
			}
			path := filepath.Join(*outdir, "figure_"+id+".csv")
			out, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "charmmbench:", err)
				os.Exit(1)
			}
			if err := study.Figure(id, out, core.FormatCSV); err != nil {
				fmt.Fprintln(os.Stderr, "charmmbench:", err)
				os.Exit(1)
			}
			if err := out.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "charmmbench:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	}
	var err error
	if *figure == "all" {
		if f == core.FormatCSV {
			fmt.Fprintln(os.Stderr, "charmmbench: -format csv needs a single -figure")
			os.Exit(2)
		}
		err = study.All(os.Stdout)
	} else {
		err = study.Figure(*figure, os.Stdout, f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charmmbench:", err)
		os.Exit(1)
	}
}
