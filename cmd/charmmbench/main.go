// charmmbench regenerates the paper's figures from the simulated cluster
// study.
//
// Usage:
//
//	charmmbench -figure all            # every figure, text tables
//	charmmbench -figure 5 -format csv  # one figure as CSV
//	charmmbench -figure 3 -steps 10 -procs 1,2,4,8
//	charmmbench -figure all -v -workers 4 -cpuprofile cpu.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/md"
	"repro/internal/obs"
	"repro/internal/pmd"
)

// obsDrainTimeout bounds how long exit paths wait for in-flight /metrics
// and /runz scrapes to finish before force-closing the obs server.
const obsDrainTimeout = 2 * time.Second

func main() {
	figure := flag.String("figure", "all", "experiment to reproduce: 1..9, factorial, effects, ablation, scalelimit, ceiling, recovery, attribution, or all")
	format := flag.String("format", "text", "output format: text or csv")
	steps := flag.Int("steps", 0, "MD steps per measurement (default: the paper's 10)")
	procs := flag.String("procs", "", "comma-separated processor counts (default 1,2,4,8)")
	decomp := flag.String("decomp", "replicated", "decomposition for the paper figures: replicated or domain (ceiling sweeps both)")
	quick := flag.Bool("quick", false, "reduced protocol (2 steps, p ≤ 4) for smoke runs")
	seed := flag.Uint64("seed", 0, "override the deterministic seeds")
	outdir := flag.String("outdir", "", "also write every figure as CSV into this directory")
	workers := flag.Int("workers", 0, "host worker goroutines for compute segments (0 = one per CPU, 1 = serial; output is identical)")
	kernelWorkers := flag.Int("kernel-workers", 0, "spread the physics kernels over this many host cores (0 = legacy serial; figure bytes identical for any value >= 1)")
	skin := flag.Float64("skin", 0, "pin the neighbour-list skin width in Å (0 = config default; exclusive with -tune-skin)")
	tuneSkin := flag.Bool("tune-skin", false, "auto-tune the neighbour-list skin on the study workload before any figure runs")
	tuneWindow := flag.Int("tune-window", 0, "timed steps per skin-tuner candidate (0 = default 20)")
	verbose := flag.Bool("v", false, "print run-cache and physics-tape statistics to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	tracefile := flag.String("trace", "", "write a Go execution trace to this file")
	obsAddr := flag.String("obs-addr", "", "serve live introspection (/metrics, /runz, /debug/pprof) on this address")
	obsManifest := flag.String("obs-manifest", "", "write the JSON run manifest (provenance + final metrics) to this file")
	profileOut := flag.String("profile-out", "", "write the per-cell attribution profiles (JSON map keyed network/decomp/p) to this file; requires -figure attribution")
	flag.Parse()

	reg := obs.NewRegistry()
	obsDrain := func() {}
	// die drains the obs server before exiting so a collector mid-scrape
	// still gets a complete exposition of the failed run.
	die := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, append([]interface{}{"charmmbench:"}, args...)...)
		obsDrain()
		os.Exit(1)
	}
	if *obsAddr != "" {
		srv, err := obs.NewServer(*obsAddr, reg, obs.ServeOptions{
			Status: func() []string { return []string{"charmmbench: figure " + *figure} },
		})
		if err != nil {
			die(err)
		}
		obsDrain = func() {
			ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
			defer cancel()
			_ = srv.Close(ctx)
		}
		defer obsDrain()
		fmt.Fprintf(os.Stderr, "obs: http://%s/{metrics,runz,debug/pprof}\n", srv.Addr())
	}

	if *kernelWorkers < 0 {
		fmt.Fprintf(os.Stderr, "charmmbench: -kernel-workers must be >= 0 (got %d)\n", *kernelWorkers)
		obsDrain()
		os.Exit(2)
	}
	if *skin < 0 || (*skin > 0 && *tuneSkin) {
		fmt.Fprintln(os.Stderr, "charmmbench: -skin must be >= 0 and exclusive with -tune-skin")
		obsDrain()
		os.Exit(2)
	}
	if *profileOut != "" && *figure != "attribution" {
		fmt.Fprintln(os.Stderr, "charmmbench: -profile-out requires -figure attribution")
		obsDrain()
		os.Exit(2)
	}
	dk, derr := pmd.ParseDecomp(*decomp)
	if derr != nil {
		fmt.Fprintln(os.Stderr, "charmmbench:", derr)
		obsDrain()
		os.Exit(2)
	}
	opts := core.Options{Quick: *quick, Steps: *steps, SystemSeed: *seed, ClusterSeed: *seed,
		Workers: *workers, KernelWorkers: *kernelWorkers, Obs: reg, Decomp: dk}
	if *procs != "" {
		for _, tok := range strings.Split(*procs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "charmmbench: bad -procs entry %q\n", tok)
				obsDrain()
				os.Exit(2)
			}
			// Reject rank counts the chosen decomposition cannot tile on the
			// paper's PME mesh before any simulation starts.
			if err := pmd.ValidateDecomp(dk, v, md.PaperPME()); err != nil {
				fmt.Fprintln(os.Stderr, "charmmbench:", err)
				obsDrain()
				os.Exit(2)
			}
			opts.Procs = append(opts.Procs, v)
		}
	}

	f := core.FormatText
	switch *format {
	case "text":
	case "csv":
		f = core.FormatCSV
	default:
		fmt.Fprintf(os.Stderr, "charmmbench: unknown format %q\n", *format)
		obsDrain()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		tf, err := os.Create(*tracefile)
		if err != nil {
			die(err)
		}
		if err := trace.Start(tf); err != nil {
			die(err)
		}
		defer trace.Stop()
	}

	start := time.Now()
	study := core.NewStudy(opts)
	// Skin pinning / tuning mutate the suite's MD config before the first
	// figure triggers a simulation; the choice applies to every run.
	if *skin > 0 {
		study.Suite.Cfg.MD.FF.ListCutoff = study.Suite.Cfg.MD.FF.CutOff + *skin
	}
	if *tuneSkin {
		tuning := md.TuneSkin(study.System(), study.Suite.Cfg.MD, md.TuneOptions{Window: *tuneWindow, Log: os.Stderr})
		study.Suite.Cfg.MD = tuning.Apply(study.Suite.Cfg.MD)
		fmt.Fprintf(os.Stderr, "tune-skin: chose %.1f Å (replay with -skin %.1f)\n", tuning.Chosen, tuning.Chosen)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			die(err)
		}
		for _, id := range core.FigureIDs() {
			if id == "1" || id == "2" {
				continue // diagrams have no data rows
			}
			if id == "ceiling" || id == "recovery" || id == "attribution" {
				continue // hundreds-of-ranks sweeps; request them explicitly via -figure
			}
			path := filepath.Join(*outdir, "figure_"+id+".csv")
			out, err := os.Create(path)
			if err != nil {
				die(err)
			}
			if err := study.Figure(id, out, core.FormatCSV); err != nil {
				die(err)
			}
			if err := out.Close(); err != nil {
				die(err)
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	}
	var err error
	if *figure == "all" {
		if f == core.FormatCSV {
			fmt.Fprintln(os.Stderr, "charmmbench: -format csv needs a single -figure")
			obsDrain()
			os.Exit(2)
		}
		err = study.All(os.Stdout)
	} else {
		err = study.Figure(*figure, os.Stdout, f)
	}
	if err != nil {
		die(err)
	}

	// All attribution cells are memoized by the run cache at this point, so
	// re-deriving their profiles costs no extra simulation.
	if *profileOut != "" {
		res, aerr := study.Suite.Attribution()
		if aerr != nil {
			die("profile:", aerr)
		}
		profs, perr := res.Profiles(study.Suite)
		if perr != nil {
			die("profile:", perr)
		}
		buf, jerr := json.MarshalIndent(profs, "", "  ")
		if jerr != nil {
			die("profile:", jerr)
		}
		if werr := os.WriteFile(*profileOut, append(buf, '\n'), 0o644); werr != nil {
			die("profile:", werr)
		}
		fmt.Fprintf(os.Stderr, "profile: %d cell profiles written to %s\n", len(profs), *profileOut)
	}

	if *verbose {
		st := study.Stats()
		fmt.Fprintf(os.Stderr,
			"charmmbench: %s wall, %d unique runs simulated, %d cache hits, %d tapes recorded, %d tape replays\n",
			time.Since(start).Round(time.Millisecond), st.Misses, st.Hits, st.TapeRecords, st.TapeReplays)
	}
	if *obsManifest != "" {
		m := obs.NewManifest()
		m.Seeds["system"] = *seed
		m.Config["figure"] = *figure
		m.Config["steps"] = *steps
		m.Config["quick"] = *quick
		m.Config["workers"] = *workers
		m.Config["kernel_workers"] = *kernelWorkers
		m.Config["decomp"] = dk.String()
		m.Config["skin_angstrom"] = study.Suite.Cfg.MD.FF.ListCutoff - study.Suite.Cfg.MD.FF.CutOff
		m.Config["skin_tuned"] = *tuneSkin
		m.Attach(reg)
		if err := m.WriteFile(*obsManifest); err != nil {
			die(err)
		}
		fmt.Fprintln(os.Stderr, "obs: manifest written to", *obsManifest)
	}
	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			die(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			die(err)
		}
		if err := mf.Close(); err != nil {
			die(err)
		}
	}
}
