// mdrun runs the sequential MD engine on the synthetic myoglobin system
// and prints an energy trace — the physical baseline of the study.
//
// Usage:
//
//	mdrun -steps 50 -minimize 100 -temp 300 -pme
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/md"
	"repro/internal/topol"
	"repro/internal/work"
)

func main() {
	steps := flag.Int("steps", 10, "dynamics steps")
	minimize := flag.Int("minimize", 50, "steepest-descent steps before dynamics")
	temp := flag.Float64("temp", 300, "initial temperature (K)")
	usePME := flag.Bool("pme", true, "particle mesh Ewald electrostatics (false: shift truncation)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	dt := flag.Float64("dt", 1.0, "timestep (fs)")
	xyz := flag.String("xyz", "", "write an XYZ trajectory to this file")
	every := flag.Int("every", 1, "trajectory output interval (steps)")
	flag.Parse()

	if *steps < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -steps must be >= 0 (got %d)\n", *steps)
		flag.Usage()
		os.Exit(2)
	}
	if *every < 1 {
		fmt.Fprintf(os.Stderr, "mdrun: -every must be >= 1 (got %d)\n", *every)
		flag.Usage()
		os.Exit(2)
	}
	if *dt <= 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -dt must be > 0 (got %g)\n", *dt)
		flag.Usage()
		os.Exit(2)
	}

	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: *seed})
	var cfg md.Config
	if *usePME {
		cfg = md.PMEDefaultConfig()
	} else {
		cfg = md.DefaultConfig()
	}
	cfg.Temperature = 0 // heat after minimization
	cfg.TimestepFS = *dt
	cfg.Seed = *seed

	fmt.Printf("system: %d atoms, %d bonds, box %.0f×%.0f×%.0f Å, net charge %+.1f\n",
		sys.N(), len(sys.Bonds), sys.Box.L.X, sys.Box.L.Y, sys.Box.L.Z, sys.TotalCharge())

	engine := md.NewEngine(sys, cfg)
	if *minimize > 0 {
		before := engine.ComputeForces(nil, nil).Potential()
		after := engine.Minimize(*minimize, 0.1)
		fmt.Printf("minimization: %.1f -> %.1f kcal/mol (%d steps)\n", before, after, *minimize)
	}
	if *temp > 0 {
		engine.InitVelocities(*temp, *seed)
	}

	var traj *os.File
	if *xyz != "" {
		var err error
		traj, err = os.Create(*xyz)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(1)
		}
		defer traj.Close()
	}

	var wc, wp work.Counters
	fmt.Printf("%6s %14s %14s %14s %14s %10s\n", "step", "potential", "classic", "pme", "total", "temp(K)")
	engine.ComputeForces(&wc, &wp)
	for s := 1; s <= *steps; s++ {
		rep := engine.Step(&wc, &wp)
		fmt.Printf("%6d %14.3f %14.3f %14.3f %14.3f %10.1f\n",
			s, rep.Potential(), rep.Classic(), rep.PME(), rep.Total(), engine.Temperature())
		if traj != nil && s%*every == 0 {
			if err := sys.WriteXYZ(traj, engine.Pos, fmt.Sprintf("step %d E=%.3f", s, rep.Total())); err != nil {
				fmt.Fprintln(os.Stderr, "mdrun:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("work: %d pair evals, %d list dist evals, %d FFT flops\n",
		wc.PairEvals, wc.ListDistEvals, wp.FFTOps)
}
