// mdrun runs the sequential MD engine on the synthetic myoglobin system
// and prints an energy trace — the physical baseline of the study. It can
// persist a checksummed checkpoint ring (-ckpt-dir) so a killed run
// restarts from the newest valid checkpoint, and run under the numeric
// guardrails (-guard) with exact-kernel fallback on a trip.
//
// Usage:
//
//	mdrun -steps 50 -minimize 100 -temp 300 -pme
//	mdrun -steps 500 -ckpt-dir run1.ckpt -ckpt-every 25
//	mdrun -steps 50 -guard -guard-drift 500
//	mdrun -steps 200 -obs-addr 127.0.0.1:8077 -obs-manifest run.json
//	mdrun -steps 100 -kernel-workers 4 -tune-skin
//	mdrun -steps 10 -ranks 16 -decomp domain   # simulated parallel run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/guard"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pmd"
	"repro/internal/topol"
	"repro/internal/work"
)

// obsDrainTimeout bounds how long exit paths wait for in-flight /metrics
// and /runz scrapes to finish before force-closing the obs server.
const obsDrainTimeout = 2 * time.Second

func main() {
	steps := flag.Int("steps", 10, "dynamics steps")
	minimize := flag.Int("minimize", 50, "steepest-descent steps before dynamics")
	temp := flag.Float64("temp", 300, "initial temperature (K)")
	usePME := flag.Bool("pme", true, "particle mesh Ewald electrostatics (false: shift truncation)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	dt := flag.Float64("dt", 1.0, "timestep (fs)")
	xyz := flag.String("xyz", "", "write an XYZ trajectory to this file")
	every := flag.Int("every", 1, "trajectory output interval (steps)")
	ckptDir := flag.String("ckpt-dir", "", "durable checkpoint ring directory (resumes a killed run found there)")
	ckptEvery := flag.Int("ckpt-every", 10, "checkpoint interval in steps")
	ckptKeep := flag.Int("ckpt-keep", 0, "checkpoint ring depth (0 = default)")
	guardOn := flag.Bool("guard", false, "enable numeric guardrails (NaN/Inf + energy drift)")
	guardPolicy := flag.String("guard-policy", "fallback", "on a guard trip: fallback (redo step on exact kernels) or abort")
	guardDrift := flag.Float64("guard-drift", 0, "energy-drift tolerance in kcal/mol (0 disables drift checks)")
	guardWindow := flag.Int("guard-window", 0, "drift window in steps (0 = default)")
	guardInject := flag.Int("guard-inject", 0, "force a synthetic guard trip at this step (test hook)")
	obsAddr := flag.String("obs-addr", "", "serve live introspection (/metrics, /runz, /debug/pprof) on this address")
	obsManifest := flag.String("obs-manifest", "", "write the JSON run manifest (provenance + final metrics) to this file")
	kernelWorkers := flag.Int("kernel-workers", 0, "spread the physics kernels over this many host cores (0 = legacy serial; results identical for any value >= 1)")
	skin := flag.Float64("skin", 0, "pin the neighbour-list skin width in Å (0 = config default; exclusive with -tune-skin)")
	tuneSkin := flag.Bool("tune-skin", false, "auto-tune the neighbour-list skin before the run (choice recorded in the manifest; replay it with -skin)")
	tuneWindow := flag.Int("tune-window", 0, "timed steps per skin-tuner candidate (0 = default 20)")
	ranks := flag.Int("ranks", 1, "simulated MPI ranks (1 = the plain sequential engine; > 1 runs the simulated cluster over Gigabit TCP)")
	decompFlag := flag.String("decomp", "replicated", "decomposition for -ranks > 1: replicated or domain")
	profileOut := flag.String("profile-out", "", "write the bottleneck-attribution profile (perf.Profile JSON) to this file; requires -ranks > 1")
	flag.Parse()

	if *steps < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -steps must be >= 0 (got %d)\n", *steps)
		flag.Usage()
		os.Exit(2)
	}
	if *every < 1 {
		fmt.Fprintf(os.Stderr, "mdrun: -every must be >= 1 (got %d)\n", *every)
		flag.Usage()
		os.Exit(2)
	}
	if *dt <= 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -dt must be > 0 (got %g)\n", *dt)
		flag.Usage()
		os.Exit(2)
	}
	if *ckptEvery < 1 {
		fmt.Fprintf(os.Stderr, "mdrun: -ckpt-every must be >= 1 (got %d)\n", *ckptEvery)
		flag.Usage()
		os.Exit(2)
	}
	if *ckptKeep < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -ckpt-keep must be >= 0 (got %d)\n", *ckptKeep)
		flag.Usage()
		os.Exit(2)
	}
	if *kernelWorkers < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -kernel-workers must be >= 0 (got %d)\n", *kernelWorkers)
		flag.Usage()
		os.Exit(2)
	}
	if *skin < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -skin must be >= 0 (got %g)\n", *skin)
		flag.Usage()
		os.Exit(2)
	}
	if *skin > 0 && *tuneSkin {
		fmt.Fprintln(os.Stderr, "mdrun: -skin and -tune-skin are mutually exclusive")
		flag.Usage()
		os.Exit(2)
	}
	if *tuneWindow < 0 {
		fmt.Fprintf(os.Stderr, "mdrun: -tune-window must be >= 0 (got %d)\n", *tuneWindow)
		flag.Usage()
		os.Exit(2)
	}
	if *ranks < 1 {
		fmt.Fprintf(os.Stderr, "mdrun: -ranks must be >= 1 (got %d)\n", *ranks)
		flag.Usage()
		os.Exit(2)
	}
	dk, err := pmd.ParseDecomp(*decompFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrun:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *profileOut != "" && *ranks == 1 {
		// Attribution needs the per-rank phase decomposition of the
		// simulated cluster; the sequential engine has nothing to attribute.
		fmt.Fprintln(os.Stderr, "mdrun: -profile-out requires -ranks > 1")
		flag.Usage()
		os.Exit(2)
	}
	if *ranks > 1 {
		// The simulated-cluster path measures the PME workload and reports
		// virtual time; the host-side conveniences below have no meaning (or
		// no implementation) there, so the combination is an error — not a
		// silent ignore.
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{!*usePME, "-pme=false"},
			{*xyz != "", "-xyz"},
			{*ckptDir != "", "-ckpt-dir"},
			{*guardOn, "-guard"},
		} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "mdrun: %s is not supported with -ranks > 1\n", bad.flag)
				flag.Usage()
				os.Exit(2)
			}
		}
		// Reject rank counts the decomposition cannot tile before building
		// the system.
		if err := pmd.ValidateDecomp(dk, *ranks, md.PaperPME()); err != nil {
			fmt.Fprintln(os.Stderr, "mdrun:", err)
			os.Exit(2)
		}
	}
	var policy guard.Policy
	switch *guardPolicy {
	case "fallback":
		policy = guard.PolicyFallback
	case "abort":
		policy = guard.PolicyAbort
	default:
		fmt.Fprintf(os.Stderr, "mdrun: -guard-policy must be fallback or abort (got %q)\n", *guardPolicy)
		flag.Usage()
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	stepGauge := reg.Gauge("repro_run_step", "current MD step of the live run")
	obsDrain := func() {}
	// die drains the obs server before exiting so a collector mid-scrape
	// still gets a complete exposition of the failed run.
	die := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, append([]interface{}{"mdrun:"}, args...)...)
		obsDrain()
		os.Exit(1)
	}
	// The attribution profile is computed after the run; until then the
	// obs server's /profilez answers 503 so a scraper can tell "not yet"
	// from "never" (404 when -profile-out is off entirely).
	var profMu sync.Mutex
	var profJSON []byte
	setProfile := func(buf []byte) {
		profMu.Lock()
		profJSON = buf
		profMu.Unlock()
	}
	if *obsAddr != "" {
		opts := obs.ServeOptions{
			Status: func() []string {
				return []string{fmt.Sprintf("mdrun: step %.0f of %d", stepGauge.Value(), *steps)}
			},
		}
		if *profileOut != "" {
			opts.Profile = func() ([]byte, error) {
				profMu.Lock()
				defer profMu.Unlock()
				if profJSON == nil {
					return nil, fmt.Errorf("run still in progress")
				}
				return profJSON, nil
			}
		}
		srv, err := obs.NewServer(*obsAddr, reg, opts)
		if err != nil {
			die(err)
		}
		obsDrain = func() {
			ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
			defer cancel()
			_ = srv.Close(ctx)
		}
		defer obsDrain()
		fmt.Printf("obs: http://%s/{metrics,runz,debug/pprof}\n", srv.Addr())
	}

	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: *seed})
	var cfg md.Config
	if *usePME {
		cfg = md.PMEDefaultConfig()
	} else {
		cfg = md.DefaultConfig()
	}
	cfg.Temperature = 0 // heat after minimization
	cfg.TimestepFS = *dt
	cfg.Seed = *seed
	cfg.KernelWorkers = *kernelWorkers
	if *skin > 0 {
		cfg.FF.ListCutoff = cfg.FF.CutOff + *skin
	}

	fmt.Printf("system: %d atoms, %d bonds, box %.0f×%.0f×%.0f Å, net charge %+.1f\n",
		sys.N(), len(sys.Bonds), sys.Box.L.X, sys.Box.L.Y, sys.Box.L.Z, sys.TotalCharge())

	if *tuneSkin {
		tuning := md.TuneSkin(sys, cfg, md.TuneOptions{Window: *tuneWindow, Log: os.Stdout})
		cfg = tuning.Apply(cfg)
		fmt.Printf("tune-skin: chose %.1f Å (list cutoff %.1f Å, %d-step windows)\n",
			tuning.Chosen, cfg.FF.ListCutoff, tuning.Window)
	}

	engine := md.NewEngine(sys, cfg)
	if *minimize > 0 {
		before := engine.ComputeForces(nil, nil).Potential()
		after := engine.Minimize(*minimize, 0.1)
		fmt.Printf("minimization: %.1f -> %.1f kcal/mol (%d steps)\n", before, after, *minimize)
	}
	if *temp > 0 {
		engine.InitVelocities(*temp, *seed)
	}
	// Attach the phase timers after minimization so the decomposition
	// covers the measured dynamics only.
	engine.SetObs(reg)

	if *ranks > 1 {
		// Simulated cluster run: the minimized, heated state seeds every
		// rank; the run reports per-step energies plus the virtual wall
		// clock and phase split of the simulated platform.
		rec := obs.NewRecorder(reg)
		var tl *perf.Timeline
		if *profileOut != "" {
			tl = perf.NewTimeline(*ranks, *steps)
		}
		res, err := pmd.Run(
			cluster.Config{Nodes: *ranks, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: *seed},
			cluster.PentiumIII1GHz(),
			pmd.Config{
				System:     sys,
				MD:         cfg,
				Steps:      *steps,
				Middleware: pmd.MiddlewareMPI,
				Decomp:     dk,
				Init:       engine.Snapshot(),
				Obs:        rec,
				Perf:       tl,
			})
		if err != nil {
			die(err)
		}
		rec.Close()
		fmt.Printf("simulated cluster: %d ranks over %s, %s decomposition\n",
			*ranks, netmodel.TCPGigE().Name, dk)
		fmt.Printf("%6s %14s %14s %14s %10s\n", "step", "classic", "pme", "total", "temp(K)")
		for s, rep := range res.Energies {
			stepGauge.Set(float64(s + 1))
			fmt.Printf("%6d %14.3f %14.3f %14.3f %10s\n",
				s+1, rep.Classic(), rep.PME(), rep.Total(), "-")
		}
		c, pm := res.PhaseTotals()
		fmt.Printf("virtual wall: %.3f s | classic comp %.3f comm %.3f sync %.3f | pme comp %.3f comm %.3f sync %.3f\n",
			res.Wall, c.Comp, c.Comm, c.Sync, pm.Comp, pm.Comm, pm.Sync)
		if *profileOut != "" {
			prof := res.Profile(tl)
			prof.RecordObs(reg)
			buf, err := prof.Encode()
			if err != nil {
				die("profile:", err)
			}
			setProfile(buf)
			if err := os.WriteFile(*profileOut, buf, 0o644); err != nil {
				die("profile:", err)
			}
			a := prof.Attribution
			fmt.Printf("attribution: %s-bound | compute %.3f comm %.3f wait %.3f imbalance %.3f recovery %.3f of %.3f s\n",
				a.Dominant, a.ComputeSeconds, a.CommSeconds, a.WaitSeconds, a.ImbalanceSeconds, a.RecoverySeconds, a.WallSeconds)
			fmt.Printf("profile: written to %s\n", *profileOut)
		}
		if *obsManifest != "" {
			m := obs.NewManifest()
			m.Seeds["system"] = *seed
			m.Config["steps"] = *steps
			m.Config["ranks"] = *ranks
			m.Config["decomp"] = dk.String()
			m.Config["kernel_workers"] = *kernelWorkers
			m.Config["profile_out"] = *profileOut
			m.Attach(reg)
			if err := m.WriteFile(*obsManifest); err != nil {
				die("manifest:", err)
			}
			fmt.Printf("obs: manifest written to %s\n", *obsManifest)
		}
		return
	}

	// Durable checkpoint ring: resume from the newest valid on-disk
	// checkpoint if one exists (corrupt newer files are skipped), else
	// start fresh and fill the ring as the run progresses.
	var ring *md.CheckpointRing
	startStep := 0
	if *ckptDir != "" {
		ring = &md.CheckpointRing{Dir: *ckptDir, Keep: *ckptKeep, Obs: reg}
		cp, meta, skipped, err := ring.LoadNewest()
		switch {
		case err == nil:
			if err := engine.Restore(cp); err != nil {
				die(err)
			}
			startStep = meta.Step
			fmt.Printf("resumed from checkpoint at step %d (%d corrupt file(s) skipped)\n", startStep, skipped)
		case errors.Is(err, md.ErrNoCheckpoint):
			// fresh run
		default:
			die(err)
		}
	}
	if startStep >= *steps && *steps > 0 {
		fmt.Printf("checkpoint already at step %d; nothing to do\n", startStep)
		return
	}

	mon := guard.NewMonitor(guard.Config{
		Enabled:     *guardOn,
		Policy:      policy,
		DriftTol:    *guardDrift,
		DriftWindow: *guardWindow,
		InjectStep:  *guardInject,
	}, cfg.FF.ExactKernels)

	var traj *os.File
	if *xyz != "" {
		var err error
		traj, err = os.Create(*xyz)
		if err != nil {
			die(err)
		}
		defer traj.Close()
	}

	var wc, wp work.Counters
	fmt.Printf("%6s %14s %14s %14s %14s %10s\n", "step", "potential", "classic", "pme", "total", "temp(K)")
	engine.ComputeForces(&wc, &wp)
	for s := startStep + 1; s <= *steps; s++ {
		stepGauge.Set(float64(s))
		rep, err := engine.StepGuarded(mon, s, &wc, &wp)
		if err != nil {
			die(err)
		}
		fmt.Printf("%6d %14.3f %14.3f %14.3f %14.3f %10.1f\n",
			s, rep.Potential(), rep.Classic(), rep.PME(), rep.Total(), engine.Temperature())
		if traj != nil && s%*every == 0 {
			if err := sys.WriteXYZ(traj, engine.Pos, fmt.Sprintf("step %d E=%.3f", s, rep.Total())); err != nil {
				die(err)
			}
		}
		if ring != nil && s%*ckptEvery == 0 {
			meta := md.DurableMeta{Step: s, RankAcct: make([][4]float64, 1)}
			if err := ring.Save(engine.Snapshot(), meta); err != nil {
				die("checkpoint:", err)
			}
		}
	}
	for _, ev := range mon.Events() {
		fmt.Println(ev)
	}
	fmt.Printf("work: %d pair evals, %d list dist evals, %d FFT flops\n",
		wc.PairEvals, wc.ListDistEvals, wp.FFTOps)

	// The printed decomposition reads the same registry /metrics serves,
	// so the exposition sums match this report exactly.
	decomp := func(phase, bucket string) float64 {
		return reg.Value("repro_phase_seconds_total",
			obs.L("rank", "0"), obs.L("phase", phase), obs.L("bucket", bucket))
	}
	fmt.Printf("wall decomposition (host s): classic compute %.3f comm %.3f sync %.3f | pme compute %.3f comm %.3f sync %.3f\n",
		decomp("classic", "compute"), decomp("classic", "comm"), decomp("classic", "sync"),
		decomp("pme", "compute"), decomp("pme", "comm"), decomp("pme", "sync"))

	if *obsManifest != "" {
		m := obs.NewManifest()
		m.Seeds["system"] = *seed
		m.Config["steps"] = *steps
		m.Config["pme"] = *usePME
		m.Config["dt_fs"] = *dt
		m.Config["guard"] = *guardOn
		m.Config["kernel_workers"] = *kernelWorkers
		m.Config["skin_angstrom"] = cfg.FF.ListCutoff - cfg.FF.CutOff
		m.Config["skin_tuned"] = *tuneSkin
		m.Attach(reg)
		if err := m.WriteFile(*obsManifest); err != nil {
			die("manifest:", err)
		}
		fmt.Printf("obs: manifest written to %s\n", *obsManifest)
	}
}
