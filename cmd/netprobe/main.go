// netprobe measures the modelled networks with NetPIPE-style
// micro-benchmarks on the simulated cluster: ping-pong latency/bandwidth
// curves, collective costs, and the dual-processor interrupt effect.
//
// Usage:
//
//	netprobe                 # all networks, the standard sweep
//	netprobe -net tcp -p 8   # one network, one job size
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/report"
)

func main() {
	netName := flag.String("net", "", "single network: tcp, score, myrinet, fast (default: all)")
	procs := flag.Int("p", 8, "ranks for the collective benchmarks")
	flag.Parse()

	nets := netmodel.All()
	if *netName != "" {
		n, ok := netmodel.ByName(*netName)
		if !ok {
			fmt.Fprintf(os.Stderr, "netprobe: unknown network %q\n", *netName)
			os.Exit(2)
		}
		nets = []netmodel.Params{n}
	}

	fmt.Println("Ping-pong half-round-trip time and throughput (2 ranks)")
	var rows [][]string
	for _, net := range nets {
		for _, size := range []int{0, 64, 1024, 16 << 10, 128 << 10, 1 << 20} {
			lat, bw := pingpong(net, size)
			rows = append(rows, []string{
				net.Name, fmt.Sprintf("%d", size),
				fmt.Sprintf("%.1f", lat*1e6),
				fmt.Sprintf("%.1f", bw/1e6),
			})
		}
	}
	if err := report.Table(os.Stdout, []string{"network", "bytes", "half-RTT (µs)", "MB/s"}, rows); err != nil {
		fmt.Fprintln(os.Stderr, "netprobe:", err)
		os.Exit(1)
	}

	fmt.Printf("\nCollective costs at p=%d (85 KB force vector)\n", *procs)
	rows = rows[:0]
	for _, net := range nets {
		ar := collective(net, *procs, func(r *mpi.Rank) { r.Allreduce(85248, 10e-6) })
		bar := collective(net, *procs, func(r *mpi.Rank) { r.Barrier() })
		a2a := collective(net, *procs, func(r *mpi.Rank) { r.AlltoallUniform(276480 / *procs) })
		rows = append(rows, []string{
			net.Name,
			fmt.Sprintf("%.2f", ar*1e3),
			fmt.Sprintf("%.2f", bar*1e3),
			fmt.Sprintf("%.2f", a2a*1e3),
		})
	}
	if err := report.Table(os.Stdout, []string{"network", "allreduce (ms)", "barrier (ms)", "alltoall (ms)"}, rows); err != nil {
		fmt.Fprintln(os.Stderr, "netprobe:", err)
		os.Exit(1)
	}
}

// pingpong returns the average half-round-trip time and throughput for the
// given message size.
func pingpong(net netmodel.Params, size int) (latency, bandwidth float64) {
	const iters = 20
	var elapsed float64
	cfg := cluster.Config{Nodes: 2, CPUsPerNode: 1, Net: net, Seed: 1}
	_, err := mpi.Run(cfg, cluster.PentiumIII1GHz(), func(r *mpi.Rank) {
		if r.ID == 0 {
			for i := 0; i < iters; i++ {
				r.Send(1, 1, size)
				r.Recv(1, 2)
			}
			elapsed = r.Now()
		} else {
			for i := 0; i < iters; i++ {
				r.Recv(0, 1)
				r.Send(0, 2, size)
			}
		}
	})
	if err != nil {
		panic(err)
	}
	half := elapsed / (2 * iters)
	if size == 0 {
		return half, 0
	}
	return half, float64(size) / half
}

// collective returns the wall time of one collective invocation.
func collective(net netmodel.Params, p int, op func(*mpi.Rank)) float64 {
	var worst float64
	cfg := cluster.Config{Nodes: p, CPUsPerNode: 1, Net: net, Seed: 1}
	_, err := mpi.Run(cfg, cluster.PentiumIII1GHz(), func(r *mpi.Rank) {
		op(r)
		if r.Now() > worst {
			worst = r.Now()
		}
	})
	if err != nil {
		panic(err)
	}
	return worst
}
