package main

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/benchfmt"
)

// latencyTracker measures the submit-to-done latency of every accepted
// job, bucketed by job kind, plus completion throughput. Submission time
// is stamped at the FIRST acceptance of an id (chaos-mode resubmissions
// of the same id do not reset the clock — the contract is "accepted work
// finishes", so the outage time counts) and completion at the first
// "done" observation.
type latencyTracker struct {
	mu     sync.Mutex
	start  map[string]time.Time
	done   map[string]bool
	byKind map[string][]time.Duration

	firstSubmit time.Time
	lastDone    time.Time
}

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{
		start:  map[string]time.Time{},
		done:   map[string]bool{},
		byKind: map[string][]time.Duration{},
	}
}

// submitted stamps id's acceptance; repeat calls for the same id keep the
// first stamp.
func (l *latencyTracker) submitted(id string) {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.start[id]; ok {
		return
	}
	l.start[id] = now
	if l.firstSubmit.IsZero() {
		l.firstSubmit = now
	}
}

// completed records id's first observed completion under the given kind.
func (l *latencyTracker) completed(id, kind string) {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done[id] {
		return
	}
	t0, ok := l.start[id]
	if !ok {
		return // never saw the acceptance (e.g. pre-restart journal replay)
	}
	l.done[id] = true
	l.byKind[kind] = append(l.byKind[kind], now.Sub(t0))
	l.lastDone = now
}

// percentile returns the q-th percentile (0 ≤ q ≤ 1) of xs by the
// nearest-rank method. xs need not be sorted; it is not modified.
func percentile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// summary renders one human-readable line per kind for the PASS/FAIL
// report.
func (l *latencyTracker) summary() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	span := l.lastDone.Sub(l.firstSubmit).Seconds()
	kinds := make([]string, 0, len(l.byKind))
	for k := range l.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var out []string
	for _, kind := range kinds {
		ls := l.byKind[kind]
		thr := 0.0
		if span > 0 {
			thr = float64(len(ls)) / span
		}
		out = append(out, fmt.Sprintf("latency %s: n=%d p50=%v p99=%v throughput=%.1f jobs/s",
			kind, len(ls), percentile(ls, 0.50).Round(time.Microsecond),
			percentile(ls, 0.99).Round(time.Microsecond), thr))
	}
	return out
}

// report renders the measured latencies in benchreport's JSON shape so
// `benchreport -check bench/baseline_serve.json new.json` gates serve
// latency exactly like kernel cost. Per kind with ≥ 1 completion:
//
//	Serve/<kind>/p50latency   ns/op = median submit-to-done latency
//	Serve/<kind>/p99latency   ns/op = p99 submit-to-done latency
//	Serve/<kind>/throughput   ns/op = measured span / completions
//
// Workers records the server's executor count (the serve analogue of
// GOMAXPROCS). Samples is 1: one load phase, one sample per statistic.
func (l *latencyTracker) report(serveWorkers int) benchfmt.Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := benchfmt.Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Suite:       "serve",
		Samples:     1,
	}
	span := l.lastDone.Sub(l.firstSubmit)
	kinds := make([]string, 0, len(l.byKind))
	for k := range l.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	add := func(name string, ns float64) {
		rep.Benchmarks = append(rep.Benchmarks, benchfmt.BenchEntry{
			Name:    name,
			NumCPU:  runtime.NumCPU(),
			Workers: serveWorkers,
			Current: benchfmt.Measurement{NsPerOp: ns},
		})
	}
	total := 0
	for _, kind := range kinds {
		ls := l.byKind[kind]
		total += len(ls)
		add("Serve/"+kind+"/p50latency", float64(percentile(ls, 0.50)))
		add("Serve/"+kind+"/p99latency", float64(percentile(ls, 0.99)))
		add("Serve/"+kind+"/throughput", float64(span)/float64(len(ls)))
	}
	if total > 0 && span > 0 {
		add("Serve/all/throughput", float64(span)/float64(total))
	}
	return rep
}
