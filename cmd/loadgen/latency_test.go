package main

import (
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	xs := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 3},
		{0.99, 5},
		{0.0, 1},
		{1.0, 5},
	}
	for _, tc := range cases {
		if got := percentile(xs, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
	// percentile must not reorder its input.
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestLatencyTrackerFirstStampWins(t *testing.T) {
	l := newLatencyTracker()
	l.submitted("a")
	first := l.start["a"]
	time.Sleep(2 * time.Millisecond)
	l.submitted("a") // chaos resubmission: clock must not reset
	if l.start["a"] != first {
		t.Error("resubmission reset the acceptance stamp")
	}
	l.completed("a", "run")
	n := len(l.byKind["run"])
	l.completed("a", "run") // second done observation: no double count
	if len(l.byKind["run"]) != n {
		t.Error("repeat completion double-counted")
	}
	l.completed("ghost", "run") // never accepted: ignored
	if len(l.byKind["run"]) != 1 {
		t.Errorf("ghost completion recorded; byKind=%v", l.byKind)
	}
}

func TestLatencyReportShape(t *testing.T) {
	l := newLatencyTracker()
	for _, id := range []string{"r1", "r2", "s1"} {
		l.submitted(id)
	}
	l.completed("r1", "run")
	l.completed("r2", "run")
	l.completed("s1", "sweep")
	rep := l.report(2)
	if rep.Suite != "serve" || rep.Samples != 1 {
		t.Errorf("suite/samples: %q/%d", rep.Suite, rep.Samples)
	}
	// Two kinds × three stats + the aggregate throughput row.
	want := []string{
		"Serve/run/p50latency", "Serve/run/p99latency", "Serve/run/throughput",
		"Serve/sweep/p50latency", "Serve/sweep/p99latency", "Serve/sweep/throughput",
		"Serve/all/throughput",
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for i, e := range rep.Benchmarks {
		if e.Name != want[i] {
			t.Errorf("entry %d: %q, want %q", i, e.Name, want[i])
		}
		if e.Workers != 2 {
			t.Errorf("entry %s: workers %d, want 2", e.Name, e.Workers)
		}
		if e.Current.NsPerOp < 0 {
			t.Errorf("entry %s: negative ns/op", e.Name)
		}
	}
}
