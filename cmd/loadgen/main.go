// Command loadgen drives a serve.Server with concurrent multi-tenant
// load and verifies the service's contract end to end:
//
//   - every job the server ACCEPTED (202) eventually completes, and its
//     result bytes equal an independent direct computation of the same
//     spec — across crashes and restarts;
//   - every shed submission carries a clean 429 with a Retry-After hint;
//   - with a preemption quantum configured, long runs demonstrably park
//     and resume from their checkpoint (resume_step > 0) instead of
//     restarting;
//   - a corrupted store entry is never served: it reads as a miss and the
//     result is recomputed.
//
// In -chaos mode the harness additionally kills the server mid-load
// (simulated crash: connections drop, nothing flushes), flips bytes in
// random store files while it is down, and reopens the same state
// directory on a fresh port. Clients ride through the outage by
// resubmitting — submission is idempotent by spec — and the acceptance
// bar stays the same: nothing accepted is lost, nothing corrupt is
// served.
//
// Exits 0 and prints PASS when every check holds; prints FAIL and exits 1
// otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "load phase length")
		chaos    = flag.Bool("chaos", false, "kill/corrupt/restart the server mid-load")
		clients  = flag.Int("clients", 4, "concurrent client goroutines")
		seed     = flag.Int64("seed", 1, "workload randomization seed")
		state    = flag.String("state", "", "state directory (default: a temp dir)")
		quantum  = flag.Duration("quantum", 5*time.Millisecond, "server preemption quantum (0 disables; >0 required for the resume check)")
		benchOut = flag.String("bench-out", "", "write per-kind p50/p99 latency + throughput as a benchreport JSON report (gate with benchreport -check)")
	)
	flag.Parse()

	dir := *state
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "loadgen-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}

	h := &harness{
		stateDir: dir,
		quantum:  *quantum,
		env:      serve.NewEnv(),
		refs:     map[string][]byte{},
		accepted: map[string]serve.JobSpec{},
		verified: map[string]bool{},
		lat:      newLatencyTracker(),
	}
	if err := h.start(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h.client(c, rand.New(rand.NewSource(*seed+int64(c))), stop)
		}(c)
	}
	// One extra bursty client to provoke load shedding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.burst(rand.New(rand.NewSource(*seed+1000)), stop)
	}()

	if *chaos {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.chaos(rand.New(rand.NewSource(*seed+2000)), *duration, stop)
		}()
	}

	time.Sleep(*duration)
	close(stop)
	wg.Wait()

	// Settle phase: drive every accepted job to a verified result on the
	// final server incarnation. This is where "no accepted job is lost"
	// is actually proven.
	ok := h.settle(2 * time.Minute)
	h.shutdown()
	passed := h.report(ok, *chaos, *quantum)
	if *benchOut != "" {
		if err := h.writeBenchReport(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			passed = false
		}
	}
	if !passed {
		os.Exit(1)
	}
}

// writeBenchReport renders the measured latencies in benchreport's JSON
// shape so serve latency can be gated against bench/baseline_serve.json
// with the same -check machinery as the kernel benchmarks.
func (h *harness) writeBenchReport(path string) error {
	rep := h.lat.report(h.cfg().Workers)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// harness owns the server lifecycle, the reference results and the
// verification ledger.
type harness struct {
	stateDir string
	quantum  time.Duration

	mu       sync.Mutex
	srv      *serve.Server
	base     string
	env      *serve.Env
	refs     map[string][]byte        // spec key -> reference bytes
	accepted map[string]serve.JobSpec // job id -> spec, every 202/200 ever seen
	verified map[string]bool          // job id -> bytes matched reference
	failures []string
	lat      *latencyTracker // submit-to-done latency per job kind

	submitted, sheds, coalesced, resumes, restarts, corrupted, badShed int64
	sseStreams, sseSteps, sseTerminals, sseReconnects                  int64
}

func (h *harness) cfg() serve.Config {
	return serve.Config{
		Addr:            "127.0.0.1:0",
		StateDir:        h.stateDir,
		StoreMaxBytes:   1 << 20, // small: force evictions under load
		Workers:         2,
		QueueDepth:      4, // small: force shedding under burst
		DefaultDeadline: 5 * time.Minute,
		MaxRetries:      2,
		PreemptQuantum:  h.quantum,
		Obs:             obs.NewRegistry(),
	}
}

func (h *harness) start() error {
	srv, err := serve.Open(h.cfg())
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.srv = srv
	h.base = "http://" + srv.Addr()
	h.mu.Unlock()
	return nil
}

func (h *harness) baseURL() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base
}

func (h *harness) fail(format string, args ...interface{}) {
	h.mu.Lock()
	h.failures = append(h.failures, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// corpus is the deterministic workload: a small set of distinct specs so
// references are cheap to compute and coalescing/caching actually occur.
func corpus(rng *rand.Rand) serve.JobSpec {
	switch rng.Intn(10) {
	case 0, 1, 2: // long-ish runs: the preemption targets
		return serve.JobSpec{Kind: serve.KindRun, Atoms: 48, Steps: 8 + 8*rng.Intn(3), Procs: 4, Seed: 1 + uint64(rng.Intn(2))}
	case 3, 4:
		return serve.JobSpec{Kind: serve.KindSweep, Atoms: 48, Steps: 1, Procs: 4,
			Nets: []string{"tcp", "score"}, Seed: 1 + uint64(rng.Intn(2))}
	default:
		obsv := "rdf"
		if rng.Intn(2) == 0 {
			obsv = "msd"
		}
		return serve.JobSpec{Kind: serve.KindAnalysis, Atoms: 48, Steps: 2,
			Observable: obsv, Seed: 1 + uint64(rng.Intn(4))}
	}
}

func tenantFor(c int) string { return []string{"alice", "bob", "carol"}[c%3] }

func (h *harness) reference(spec serve.JobSpec) ([]byte, error) {
	key := specKey(spec)
	h.mu.Lock()
	ref, ok := h.refs[key]
	h.mu.Unlock()
	if ok {
		return ref, nil
	}
	ref, err := h.env.ComputeReference(spec)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.refs[key] = ref
	h.mu.Unlock()
	return ref, nil
}

func specKey(spec serve.JobSpec) string {
	s := spec
	if err := s.Normalize(); err != nil {
		return "invalid"
	}
	return s.Key()
}

// client submits corpus jobs and verifies each accepted one to completion
// (or leaves it for the settle phase when the clock runs out).
func (h *harness) client(c int, rng *rand.Rand, stop <-chan struct{}) {
	tenant := tenantFor(c)
	for {
		select {
		case <-stop:
			return
		default:
		}
		spec := corpus(rng)
		id, admitted := h.submit(tenant, spec)
		if !admitted {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		h.mu.Lock()
		h.accepted[id] = spec
		h.mu.Unlock()
		// A third of the run jobs are followed over the SSE stream instead
		// of the polling loop; settle re-verifies anything left unfinished.
		if spec.Kind == serve.KindRun && rng.Intn(3) == 0 {
			h.sseVerify(id, spec, stop)
		} else {
			h.verify(id, spec, stop)
		}
		time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
	}
}

// burst floods one tenant with distinct slow jobs far faster than the
// workers drain them, forcing admission to shed; every accepted one still
// joins the verification ledger. Step counts cycle so the key set (and
// the reference work in settle) stays bounded.
func (h *harness) burst(rng *rand.Rand, stop <-chan struct{}) {
	n := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		n++
		spec := serve.JobSpec{Kind: serve.KindRun, Atoms: 48,
			Steps: 5 + n%32, Procs: 4, Seed: 1}
		if id, admitted := h.submit("burst", spec); admitted {
			h.mu.Lock()
			h.accepted[id] = spec
			h.mu.Unlock()
		}
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
	}
}

// submit POSTs one job. Returns (id, true) when the server took
// responsibility for it (202 accepted/coalesced or 200 cached); false on
// shed, drain or outage. A 429 without a positive Retry-After is a
// contract violation.
func (h *harness) submit(tenant string, spec serve.JobSpec) (string, bool) {
	atomic.AddInt64(&h.submitted, 1)
	body, _ := json.Marshal(map[string]interface{}{"tenant": tenant, "spec": spec})
	resp, err := http.Post(h.baseURL()+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false // outage window; caller retries later
	}
	defer resp.Body.Close()
	var jr struct {
		ID        string `json:"id"`
		Status    string `json:"status"`
		Coalesced bool   `json:"coalesced"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&jr)
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		if jr.Coalesced {
			atomic.AddInt64(&h.coalesced, 1)
		}
		h.lat.submitted(jr.ID)
		return jr.ID, true
	case http.StatusTooManyRequests:
		atomic.AddInt64(&h.sheds, 1)
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || sec < 1 {
			atomic.AddInt64(&h.badShed, 1)
			h.fail("429 without positive Retry-After (got %q)", resp.Header.Get("Retry-After"))
		}
		return "", false
	case http.StatusServiceUnavailable:
		return "", false // draining
	default:
		h.fail("unexpected submit status %d for %s", resp.StatusCode, specKey(spec))
		return "", false
	}
}

// verify polls id to completion and byte-compares the served result with
// the independent reference. Rides through restarts: an unknown id is
// resubmitted (idempotent), a Gone result recomputed. Gives up only on
// stop — the settle phase finishes the job.
func (h *harness) verify(id string, spec serve.JobSpec, stop <-chan struct{}) bool {
	for {
		select {
		case <-stop:
			return false
		default:
		}
		st, code := h.status(id)
		switch {
		case code == 0: // outage
			time.Sleep(50 * time.Millisecond)
			continue
		case code == http.StatusNotFound:
			// Restarted server only remembers journaled (unfinished) jobs;
			// finished ones answer from the store on resubmission.
			if _, ok := h.submit("replay", spec); !ok {
				time.Sleep(50 * time.Millisecond)
			}
			continue
		case st.Status == "done":
			if st.ResumeStep > 0 {
				atomic.AddInt64(&h.resumes, 1)
			}
			h.lat.completed(id, string(spec.Kind))
			return h.check(id, spec)
		case st.Status == "failed":
			h.fail("accepted job %s failed: %+v", id, st.Error)
			return false
		default: // queued, running, parked
			if st.ResumeStep > 0 {
				atomic.AddInt64(&h.resumes, 1)
			}
			time.Sleep(15 * time.Millisecond)
		}
	}
}

// sseVerify follows one run job on GET /v1/jobs/<id>/events and checks
// the streaming contract: event ids strictly ascend, step frames parse
// and carry id step+1, exactly one terminal frame arrives, and for a done
// job its data bytes equal the independent reference (hence the polled
// result, which check compares against the same reference). A dropped
// stream — a chaos kill, typically — reconnects with Last-Event-ID and
// must see nothing it already saw; an unknown id after a restart is
// resubmitted first (submission is idempotent).
func (h *harness) sseVerify(id string, spec serve.JobSpec, stop <-chan struct{}) bool {
	lastID := 0
	sawTerminal := false
	var terminalStatus string
	var terminalData []byte
	for !sawTerminal {
		select {
		case <-stop:
			return false
		default:
		}
		req, err := http.NewRequest("GET", h.baseURL()+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			return false
		}
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
			atomic.AddInt64(&h.sseReconnects, 1)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil { // outage window
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			resp.Body.Close()
			if _, ok := h.submit("sse", spec); !ok {
				time.Sleep(50 * time.Millisecond)
			}
			continue
		default:
			resp.Body.Close()
			h.fail("events for %s: status %d", id, resp.StatusCode)
			return false
		}
		atomic.AddInt64(&h.sseStreams, 1)
		ok := h.consumeSSE(resp.Body, id, &lastID, &sawTerminal, &terminalStatus, &terminalData)
		resp.Body.Close()
		if !ok {
			return false
		}
	}
	if terminalStatus != "done" {
		h.fail("sse %s: terminal status %q", id, terminalStatus)
		return false
	}
	atomic.AddInt64(&h.sseTerminals, 1)
	want, err := h.reference(spec)
	if err != nil {
		h.fail("reference computation for %s: %v", specKey(spec), err)
		return false
	}
	if !bytes.Equal(terminalData, want) {
		h.fail("sse %s: terminal bytes differ from direct computation of %s", id, specKey(spec))
		return false
	}
	h.lat.completed(id, string(spec.Kind))
	return h.check(id, spec)
}

// consumeSSE parses one text/event-stream connection until it ends —
// the server closes it after the terminal frame, or it drops on a crash
// (the caller then reconnects). Returns false on a contract violation.
func (h *harness) consumeSSE(r io.Reader, id string, lastID *int, sawTerminal *bool, status *string, data *[]byte) bool {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evID, evType string
	var evData []string
	flush := func() bool {
		defer func() { evID, evType, evData = "", "", nil }()
		if evID == "" && evType == "" && len(evData) == 0 {
			return true
		}
		if evID != "" {
			n, err := strconv.Atoi(evID)
			if err != nil || n <= *lastID {
				h.fail("sse %s: id %q not ascending past %d", id, evID, *lastID)
				return false
			}
			*lastID = n
		}
		payload := []byte(strings.Join(evData, "\n"))
		switch evType {
		case "progress": // lifecycle frames carry no id and are not replayed
		case "step":
			var s struct {
				Step int `json:"step"`
			}
			if err := json.Unmarshal(payload, &s); err != nil {
				h.fail("sse %s: unparseable step frame: %v", id, err)
				return false
			}
			if evID == "" || s.Step+1 != *lastID {
				h.fail("sse %s: step %d under event id %d", id, s.Step, *lastID)
				return false
			}
			atomic.AddInt64(&h.sseSteps, 1)
		default: // terminal: the event type is the job's final status
			if *sawTerminal {
				h.fail("sse %s: second terminal frame %q", id, evType)
				return false
			}
			*sawTerminal = true
			*status = evType
			*data = append([]byte(nil), payload...)
		}
		return true
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if !flush() {
				return false
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			evID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			evData = append(evData, strings.TrimPrefix(line, "data: "))
		}
	}
	return flush()
}

type statusResp struct {
	Status     string          `json:"status"`
	ResumeStep int             `json:"resume_step"`
	Error      *serve.JobError `json:"error"`
}

func (h *harness) status(id string) (statusResp, int) {
	resp, err := http.Get(h.baseURL() + "/v1/jobs/" + id)
	if err != nil {
		return statusResp{}, 0
	}
	defer resp.Body.Close()
	var st statusResp
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

// check fetches id's result and compares against the reference.
func (h *harness) check(id string, spec serve.JobSpec) bool {
	resp, err := http.Get(h.baseURL() + "/v1/jobs/" + id + "/result")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone: // evicted: resubmit recomputes; settle retries
		return false
	default:
		return false
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		return false
	}
	want, err := h.reference(spec)
	if err != nil {
		h.fail("reference computation for %s: %v", specKey(spec), err)
		return false
	}
	if !bytes.Equal(got, want) {
		h.fail("job %s served bytes differing from direct computation of %s", id, specKey(spec))
		return false
	}
	h.mu.Lock()
	h.verified[id] = true
	h.mu.Unlock()
	return true
}

// chaos periodically crashes the server, corrupts random store files
// while it is down, and reopens the same state directory.
func (h *harness) chaos(rng *rand.Rand, duration time.Duration, stop <-chan struct{}) {
	interval := duration / 4
	if interval < 2*time.Second {
		interval = 2 * time.Second
	}
	for {
		select {
		case <-stop:
			return
		case <-time.After(interval):
		}
		h.mu.Lock()
		srv := h.srv
		h.mu.Unlock()
		srv.Abort()
		h.corruptStore(rng)
		atomic.AddInt64(&h.restarts, 1)
		if err := h.start(); err != nil {
			h.fail("reopen after crash: %v", err)
			return
		}
	}
}

// corruptStore flips a byte in up to three store files — the CRC layer
// must turn every one into a miss, never a wrong result.
func (h *harness) corruptStore(rng *rand.Rand) {
	dir := filepath.Join(h.stateDir, "store")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || n >= 3 || rng.Intn(2) == 0 {
			continue
		}
		path := filepath.Join(dir, e.Name())
		buf, err := os.ReadFile(path)
		if err != nil || len(buf) == 0 {
			continue
		}
		buf[rng.Intn(len(buf))] ^= 1 << uint(rng.Intn(8))
		if os.WriteFile(path, buf, 0o644) == nil {
			n++
			atomic.AddInt64(&h.corrupted, 1)
		}
	}
}

// settle drives every accepted job to a verified result on the final
// server incarnation: the "no accepted job lost" proof.
func (h *harness) settle(budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	never := make(chan struct{}) // settle ignores stop; it has its own budget
	for time.Now().Before(deadline) {
		h.mu.Lock()
		var todo []string
		for id := range h.accepted {
			if !h.verified[id] {
				todo = append(todo, id)
			}
		}
		h.mu.Unlock()
		if len(todo) == 0 {
			break
		}
		for _, id := range todo {
			h.mu.Lock()
			spec := h.accepted[id]
			h.mu.Unlock()
			if !h.verify(id, spec, never) {
				// Evicted or mid-restart: resubmit and loop.
				h.submit("settle", spec)
				time.Sleep(20 * time.Millisecond)
			}
			if time.Now().After(deadline) {
				break
			}
		}
	}
	// One guaranteed end-to-end SSE pass on a finished run: even when this
	// server incarnation answered from the store, the events stream must
	// deliver exactly one terminal whose bytes match the polled result.
	h.mu.Lock()
	var sseID string
	var sseSpec serve.JobSpec
	for id, spec := range h.accepted {
		if spec.Kind == serve.KindRun && h.verified[id] {
			sseID, sseSpec = id, spec
			break
		}
	}
	h.mu.Unlock()
	if sseID != "" {
		h.sseVerify(sseID, sseSpec, never)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	unverified := 0
	for id := range h.accepted {
		if !h.verified[id] {
			unverified++
		}
	}
	if unverified > 0 {
		h.failures = append(h.failures,
			fmt.Sprintf("%d accepted jobs never reached a verified result", unverified))
	}
	return len(h.failures) == 0
}

func (h *harness) shutdown() {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		h.fail("final close: %v", err)
	}
}

func (h *harness) report(ok bool, chaos bool, quantum time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Printf("loadgen: submitted=%d accepted=%d verified=%d sheds=%d coalesced=%d resumes=%d restarts=%d corrupted=%d\n",
		h.submitted, len(h.accepted), len(h.verified), h.sheds, h.coalesced,
		h.resumes, h.restarts, h.corrupted)
	fmt.Printf("loadgen: sse streams=%d steps=%d terminals=%d reconnects=%d\n",
		h.sseStreams, h.sseSteps, h.sseTerminals, h.sseReconnects)
	for _, line := range h.lat.summary() {
		fmt.Println("loadgen:", line)
	}
	// Contract checks that require the load to have actually exercised the
	// machinery, not just survived it.
	if len(h.accepted) == 0 {
		ok = false
		h.failures = append(h.failures, "no job was ever accepted")
	}
	if h.sheds == 0 {
		ok = false
		h.failures = append(h.failures, "burst tenant never shed: admission control unexercised")
	}
	if h.sseTerminals == 0 {
		ok = false
		h.failures = append(h.failures, "SSE leg never reached a terminal event")
	}
	if quantum > 0 && h.resumes == 0 {
		ok = false
		h.failures = append(h.failures, "no checkpoint resume observed despite a preemption quantum")
	}
	if chaos && h.restarts == 0 {
		ok = false
		h.failures = append(h.failures, "chaos mode never crashed the server")
	}
	for _, f := range h.failures {
		fmt.Println("loadgen: FAIL:", f)
	}
	if ok && len(h.failures) == 0 {
		fmt.Println("loadgen: PASS")
		return true
	}
	fmt.Println("loadgen: FAIL")
	return false
}
