// faultbench quantifies the slowdown of the parallel MD under injected
// platform faults: for each severity level it runs the fault scenario
// (scaled to that severity) against a healthy baseline and reports wall
// time, slowdown, the comp/comm/sync/lost breakdown and any
// checkpoint-restart recoveries. Comparing -mw mpi against -mw cmpi
// exposes how CMPI's nearest-neighbour synchronization amplifies
// single-node damage.
//
// Usage:
//
//	faultbench -spec 'straggler@0,node=1,slow=4' -severity 0.5,1,2
//	faultbench -scenario faults.json -mw both -p 8 -net tcp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pmd"
	"repro/internal/report"
	"repro/internal/topol"
)

// obsDrainTimeout bounds how long exit paths wait for in-flight /metrics
// and /runz scrapes to finish before force-closing the obs server.
const obsDrainTimeout = 2 * time.Second

func main() {
	scenarioFile := flag.String("scenario", "", "JSON fault scenario file")
	spec := flag.String("spec", "", "fault scenario DSL (see internal/fault.ParseSpec)")
	sevList := flag.String("severity", "1", "comma-separated severity multipliers")
	netName := flag.String("net", "tcp", "network: tcp, score, myrinet, fast")
	procs := flag.Int("p", 4, "processors")
	cpus := flag.Int("cpus", 1, "CPUs per node (1 or 2)")
	steps := flag.Int("steps", 4, "MD steps")
	mwName := flag.String("mw", "both", "middleware: mpi, cmpi or both")
	decompFlag := flag.String("decomp", "replicated", "decomposition: replicated or domain")
	recoveryFlag := flag.String("recovery", "global", "crash recovery strategy: global (checkpoint rewind) or local (buddy-restore; needs -decomp domain)")
	tuneCkpt := flag.Bool("tune-ckpt", false, "retune the checkpoint cadence from the observed failure rate (Young/Daly)")
	ckptCost := flag.Float64("ckpt-cost", 0, "virtual seconds one checkpoint costs, the C in the Young/Daly formula (needed by -tune-ckpt)")
	atoms := flag.Int("atoms", 600, "solvated-box size in atoms")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	wdTimeout := flag.Float64("timeout", 30, "watchdog timeout (virtual s); 0 disables")
	wdRetries := flag.Int("retries", 2, "watchdog retry budget")
	wdBackoff := flag.Float64("backoff", 2, "watchdog backoff multiplier")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint every k steps (0 = default)")
	ckptDir := flag.String("ckpt-dir", "", "durable checkpoint directory (resumes a killed run found there)")
	ckptKeep := flag.Int("ckpt-keep", 0, "on-disk checkpoint ring depth (0 = default)")
	restartCost := flag.Float64("restart-cost", 10, "virtual seconds charged per recovery")
	format := flag.String("format", "text", "output format: text or csv")
	obsAddr := flag.String("obs-addr", "", "serve live introspection (/metrics, /runz, /debug/pprof) on this address")
	obsManifest := flag.String("obs-manifest", "", "write the JSON run manifest (provenance + final metrics) to this file")
	profileOut := flag.String("profile-out", "", "write the newest faulted run's bottleneck-attribution profile (perf.Profile JSON, recovery bucket included) to this file")
	flag.Parse()

	obsDrain := func() {}
	fail := func(formatStr string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "faultbench: "+formatStr+"\n", args...)
		obsDrain()
		os.Exit(2)
	}
	// die drains the obs server before exiting so a collector mid-scrape
	// still gets a complete exposition of the failed run.
	die := func(args ...interface{}) {
		fmt.Fprintln(os.Stderr, append([]interface{}{"faultbench:"}, args...)...)
		obsDrain()
		os.Exit(1)
	}
	net, ok := netmodel.ByName(*netName)
	if !ok {
		fail("unknown network %q", *netName)
	}
	if *cpus != 1 && *cpus != 2 {
		fail("-cpus must be 1 or 2 (got %d)", *cpus)
	}
	if *procs < 1 || *procs%*cpus != 0 {
		fail("-p (%d) must be a positive multiple of -cpus (%d)", *procs, *cpus)
	}
	if *steps < 1 {
		fail("-steps must be >= 1 (got %d)", *steps)
	}
	if *ckptEvery < 0 {
		fail("-ckpt-every must be >= 0, 0 meaning the default (got %d)", *ckptEvery)
	}
	if *ckptKeep < 0 {
		fail("-ckpt-keep must be >= 0, 0 meaning the default (got %d)", *ckptKeep)
	}
	if *ckptKeep > 0 && *ckptDir == "" {
		fail("-ckpt-keep needs -ckpt-dir")
	}
	if *format != "text" && *format != "csv" {
		fail("-format must be text or csv (got %q)", *format)
	}
	if *scenarioFile != "" && *spec != "" {
		fail("-scenario and -spec are mutually exclusive")
	}
	var sc *fault.Scenario
	var err error
	switch {
	case *scenarioFile != "":
		sc, err = fault.LoadFile(*scenarioFile)
	case *spec != "":
		sc, err = fault.ParseSpec(*spec)
	default:
		fail("need -scenario or -spec")
	}
	if err != nil {
		fail("%v", err)
	}
	if sc.Seed == 0 {
		sc.Seed = *seed
	}
	var sevs []float64
	for _, s := range strings.Split(*sevList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 {
			fail("bad severity %q", s)
		}
		sevs = append(sevs, v)
	}
	var mws []pmd.MiddlewareKind
	switch *mwName {
	case "mpi":
		mws = []pmd.MiddlewareKind{pmd.MiddlewareMPI}
	case "cmpi":
		mws = []pmd.MiddlewareKind{pmd.MiddlewareCMPI}
	case "both":
		mws = []pmd.MiddlewareKind{pmd.MiddlewareMPI, pmd.MiddlewareCMPI}
	default:
		fail("-mw must be mpi, cmpi or both (got %q)", *mwName)
	}

	dk, err := pmd.ParseDecomp(*decompFlag)
	if err != nil {
		fail("%v", err)
	}
	rk, err := pmd.ParseRecovery(*recoveryFlag)
	if err != nil {
		fail("%v", err)
	}
	if *tuneCkpt && *ckptCost <= 0 {
		fail("-tune-ckpt needs a positive -ckpt-cost (the Young/Daly formula prices a checkpoint)")
	}

	sys, k := topol.NewSolvatedBox(*atoms, *seed)
	md.Relax(sys, 60)
	mdCfg := md.ClampCutoffs(md.PMEDefaultConfig(), sys.Box)
	mdCfg.PME = md.PMEConfig{Beta: 0.34, K1: k, K2: k, K3: k, Order: 4}
	mdCfg.FF.Beta = mdCfg.PME.Beta
	mdCfg.Temperature = 300
	mdCfg.Seed = *seed
	// The PME mesh depends on the solvated-box size, so the tiling check
	// has to wait until the mesh is known.
	if err := pmd.ValidateDecomp(dk, *procs, mdCfg.PME); err != nil {
		fail("%v", err)
	}

	clCfg := cluster.Config{Nodes: *procs / *cpus, CPUsPerNode: *cpus, Net: net, Seed: *seed}
	wd := mpi.Watchdog{Timeout: *wdTimeout, Retries: *wdRetries, Backoff: *wdBackoff}
	cost := cluster.PentiumIII1GHz()

	// Observability is opt-in here: recording every transport interval of a
	// severity sweep costs memory, so the recorder only exists when an
	// introspection endpoint or manifest was asked for.
	reg := obs.NewRegistry()
	var rec *obs.Recorder
	if *obsAddr != "" || *obsManifest != "" {
		rec = obs.NewRecorder(reg)
	}
	if *obsAddr != "" {
		srv, err := obs.NewServer(*obsAddr, reg, obs.ServeOptions{
			Status: func() []string { return []string{"faultbench: scenario " + sc.Name} },
		})
		if err != nil {
			die(err)
		}
		obsDrain = func() {
			ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
			defer cancel()
			_ = srv.Close(ctx)
		}
		defer obsDrain()
		fmt.Fprintf(os.Stderr, "obs: http://%s/{metrics,runz,debug/pprof}\n", srv.Addr())
	}

	// The durable directory identifies ONE run's checkpoint ring, so it
	// only applies to the single faulted run of a 1-severity invocation —
	// the healthy baseline and severity sweeps stay in-memory.
	if *ckptDir != "" && (len(sevs) != 1 || len(mws) != 1) {
		fail("-ckpt-dir needs exactly one severity and one middleware (the ring identifies one run)")
	}
	run := func(mw pmd.MiddlewareKind, scenario *fault.Scenario, dir string) *pmd.ResilientResult {
		res, err := pmd.RunResilient(clCfg, cost, pmd.ResilientConfig{
			Config: pmd.Config{
				System:     sys,
				MD:         mdCfg,
				Steps:      *steps,
				Middleware: mw,
				Decomp:     dk,
				Watchdog:   wd,
				Obs:        rec,
			},
			Scenario:        scenario,
			CheckpointEvery: *ckptEvery,
			CheckpointDir:   dir,
			KeepCheckpoints: *ckptKeep,
			RestartCost:     *restartCost,
			Recovery:        rk,
			TuneCheckpoint:  *tuneCkpt,
			CheckpointCost:  *ckptCost,
		})
		if err != nil {
			die(err)
		}
		if res.Resumed != nil {
			fmt.Fprintf(os.Stderr, "faultbench: resumed from on-disk checkpoint at step %d (%d corrupt skipped, %.3gs lost)\n",
				res.Resumed.Step, res.Resumed.SkippedCheckpoints, res.Resumed.LostOnDisk)
		}
		if rec != nil && res.Final != nil {
			res.Final.RecordObs(reg)
		}
		return res
	}

	headers := []string{"mw", "severity", "wall(s)", "slowdown", "excess(s)", "comp", "comm", "sync", "lost", "recoveries", "profile"}
	var rows [][]string
	var last *pmd.ResilientResult // newest faulted run, feeds the manifest
	for _, mw := range mws {
		healthy := run(mw, nil, "")
		for _, sev := range sevs {
			res := run(mw, sc.Scale(sev), *ckptDir)
			last = res
			if res.IntervalTuned {
				fmt.Fprintf(os.Stderr, "faultbench: Young/Daly retuned the checkpoint cadence to every %d step(s)\n",
					res.CheckpointInterval)
			}
			var tot mpi.Accounting
			for _, a := range res.Acct {
				tot.Add(a)
			}
			sum := tot.Total()
			compPct := 100 * tot.Comp / sum
			commPct := 100 * tot.Comm / sum
			syncPct := 100 * tot.Sync / sum
			lostPct := 100 * tot.Lost / sum
			rows = append(rows, []string{
				mw.String(),
				fmt.Sprintf("%.2g", sev),
				report.Seconds(res.Wall),
				fmt.Sprintf("%.2fx", res.Wall/healthy.Wall),
				report.Seconds(res.Wall - healthy.Wall),
				report.Pct(compPct),
				report.Pct(commPct),
				report.Pct(syncPct),
				report.Pct(lostPct),
				strconv.Itoa(len(res.Recoveries)),
				report.StackedBarLost(compPct, commPct, syncPct, lostPct, 24),
			})
		}
	}

	fmt.Printf("scenario %q on %s, p=%d (%d CPU/node), %d atoms, %d steps\n",
		sc.Name, net.Name, *procs, *cpus, sys.N(), *steps)
	var werr error
	if *format == "csv" {
		werr = report.CSV(os.Stdout, headers, rows)
	} else {
		werr = report.Table(os.Stdout, headers, rows)
	}
	if werr != nil {
		die(werr)
	}

	// The attribution view of the newest faulted run: same buckets as the
	// table above plus the recovery detail (rewinds, lost work, restarts).
	if *profileOut != "" {
		if last == nil {
			die("profile: no faulted run to profile")
		}
		buf, perr := last.Profile(nil).Encode()
		if perr != nil {
			die("profile:", perr)
		}
		if werr := os.WriteFile(*profileOut, buf, 0o644); werr != nil {
			die("profile:", werr)
		}
		fmt.Fprintln(os.Stderr, "profile: written to", *profileOut)
	}

	if *obsManifest != "" {
		rec.Close()
		m := obs.NewManifest()
		m.Seeds["system"] = *seed
		m.Config["scenario"] = sc.Name
		m.Config["severities"] = sevs
		m.Config["procs"] = *procs
		m.Config["steps"] = *steps
		m.Config["net"] = net.Name
		m.Config["decomp"] = dk.String()
		m.Config["recovery"] = rk.String()
		if last != nil {
			m.Config["checkpoint_interval"] = last.CheckpointInterval
			m.Config["interval_tuned"] = last.IntervalTuned
		}
		m.Attach(reg)
		if err := m.WriteFile(*obsManifest); err != nil {
			die(err)
		}
		fmt.Fprintln(os.Stderr, "obs: manifest written to", *obsManifest)
	}
}
