package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pmd"
)

// maxJobWait caps the ?wait= long-poll on job status: a poller asking
// for more still gets an answer within this bound and simply polls
// again, so a stuck client can never pin a connection indefinitely.
const maxJobWait = 30 * time.Second

// Job lifecycle states surfaced by the status endpoint.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
	// StatusParked marks a job checkpointed to disk by a graceful
	// shutdown; reopening the same StateDir resumes it.
	StatusParked = "parked"
)

// jobState is the in-memory lifecycle of one accepted job.
type jobState struct {
	id       string
	tenant   string
	key      string
	spec     JobSpec
	vtag     float64 // fair-queue virtual finish tag
	deadline time.Time
	created  time.Time

	mu         sync.Mutex
	status     string
	attempts   int
	resumeStep int // newest step a resumed attempt started from
	jerr       *JobError

	cancelOnce sync.Once
	cancelCh   chan struct{}
	done       chan struct{} // closed at terminal states

	hub *eventHub // SSE fan-out; terminal exactly once, steps monotone
}

func newJobState(id, tenant, key string, spec JobSpec, deadline time.Time) *jobState {
	return &jobState{
		id: id, tenant: tenant, key: key, spec: spec,
		deadline: deadline, created: time.Now(),
		status:   StatusQueued,
		cancelCh: make(chan struct{}),
		done:     make(chan struct{}),
		hub:      newEventHub(),
	}
}

// terminalEventID is the id of a job's terminal SSE event: one past the
// largest possible step id (step N carries id N+1), and a pure function
// of the spec — a server reopened after a crash re-derives the same id,
// which is what lets Last-Event-ID resume across process lives.
func (j *jobState) terminalEventID() int { return j.spec.Steps + 1 }

func (j *jobState) setStatus(st string) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

// announce publishes the job's current lifecycle snapshot as a progress
// event.
func (j *jobState) announce() {
	st, attempts, resume, _ := j.snapshot()
	j.hub.progress(st, attempts, resume)
}

func (j *jobState) snapshot() (status string, attempts, resumeStep int, jerr *JobError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.attempts, j.resumeStep, j.jerr
}

func (j *jobState) cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

func (j *jobState) cancelled() bool {
	select {
	case <-j.cancelCh:
		return true
	default:
		return false
	}
}

func (j *jobState) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Server is the simulation job service. Open starts it; Close shuts it
// down gracefully (draining short jobs, checkpoint-parking long ones);
// Abort simulates a crash for chaos testing.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	env   *Env
	store *Store
	jnl   *journal
	queue *fairQueue

	ln   net.Listener
	hsrv *http.Server

	mu      sync.Mutex
	jobs    map[string]*jobState
	closing bool
	aborted bool

	quitOnce sync.Once
	quit     chan struct{}
	wg       sync.WaitGroup

	busy    *obs.Gauge
	jobSecs *obs.Histogram
}

// Open starts a server: it opens the state directory, replays the
// accepted-job journal (jobs whose results already reached the store
// complete instantly; the rest re-enter the queue), binds cfg.Addr and
// starts the workers. The server owns StateDir exclusively until Close
// or Abort returns.
func Open(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	store, err := OpenStore(filepath.Join(c.StateDir, "store"), c.StoreMaxBytes, c.Obs)
	if err != nil {
		return nil, err
	}
	jnl, err := openJournal(filepath.Join(c.StateDir, "jobs"))
	if err != nil {
		return nil, err
	}
	env := NewEnv()
	env.KernelWorkers = c.KernelWorkers
	s := &Server{
		cfg:   c,
		reg:   c.Obs,
		env:   env,
		store: store,
		jnl:   jnl,
		queue: newFairQueue(c.QueueDepth, c.TenantWeights),
		jobs:  map[string]*jobState{},
		quit:  make(chan struct{}),
		busy:  c.Obs.Gauge("repro_serve_workers_busy", "workers currently executing a job"),
		jobSecs: c.Obs.Histogram("repro_serve_job_seconds",
			"accepted-to-terminal job latency", obs.ExpBuckets(0.001, 2, 16)),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", c.Addr, err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statz", s.handleStatz)
	s.hsrv = &http.Server{Handler: mux}
	go func() { _ = s.hsrv.Serve(ln) }()

	for i := 0; i < c.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// replay re-admits every journaled job from a previous life. A job whose
// result already reached the store (crash between Put and journal delete)
// completes instantly; the rest are force-enqueued — they were accepted
// once, shedding them now would lose them.
func (s *Server) replay() error {
	entries, skipped, err := s.jnl.replay()
	if err != nil {
		return err
	}
	if skipped > 0 {
		s.reg.Counter("repro_serve_journal_skipped_total",
			"damaged journal files skipped on replay").Add(float64(skipped))
	}
	replayed := 0
	for _, e := range entries {
		spec := e.Spec
		if err := spec.Normalize(); err != nil || spec.Key() != e.Key || JobID(e.Key) != e.ID {
			// A journal whose spec no longer reproduces its own key is from
			// an incompatible format; dropping it is the only safe move.
			s.jnl.remove(e.ID)
			continue
		}
		budget := time.Duration(e.Deadline) * time.Millisecond
		if budget <= 0 {
			budget = s.cfg.DefaultDeadline
		}
		j := newJobState(e.ID, e.Tenant, e.Key, spec, time.Now().Add(budget))
		if payload, ok := s.store.Get(e.Key); ok {
			j.setStatus(StatusDone)
			close(j.done)
			j.hub.terminal(j.terminalEventID(), StatusDone, payload)
			s.jnl.remove(e.ID)
			s.cleanupCkpt(j)
		} else {
			_ = s.queue.enqueue(e.Tenant, j, true)
			replayed++
		}
		s.jobs[j.id] = j
	}
	if replayed > 0 {
		s.reg.Counter("repro_serve_replayed_total",
			"journaled jobs re-enqueued on reopen").Add(float64(replayed))
	}
	return nil
}

func (s *Server) ckptDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "ckpt", id)
}

func (s *Server) cleanupCkpt(j *jobState) {
	if j.spec.Kind == KindRun {
		_ = os.RemoveAll(s.ckptDir(j.id))
	}
}

func (s *Server) stopRequested() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing || s.aborted
}

func (s *Server) isAborted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

// ---------------------------------------------------------------------------
// Worker side

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.next()
		s.refreshDepthGauges()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// finish moves j to a terminal state: journal entry and checkpoints are
// released, waiters are woken, metrics recorded, and the single terminal
// SSE event goes out. For StatusDone the result was already Put to the
// store by the caller — that ordering is the durability contract —
// and payload carries those exact bytes so the stream's terminal event is
// byte-identical to what the polling result endpoint serves.
func (s *Server) finish(j *jobState, status string, jerr *JobError, payload []byte) {
	j.mu.Lock()
	j.status = status
	j.jerr = jerr
	j.mu.Unlock()
	s.jnl.remove(j.id)
	s.cleanupCkpt(j)
	close(j.done)
	if status == StatusDone && payload == nil {
		payload, _ = s.store.Get(j.key)
	}
	if status != StatusDone {
		payload, _ = json.Marshal(jobResponse{ID: j.id, Status: status, Kind: j.spec.Kind, Error: jerr})
	}
	j.hub.terminal(j.terminalEventID(), status, payload)
	s.reg.Counter("repro_serve_jobs_total", "terminal jobs by kind and outcome",
		obs.L("kind", string(j.spec.Kind)), obs.L("outcome", status)).Add(1)
	s.jobSecs.Observe(time.Since(j.created).Seconds())
}

// execute runs one dequeued job to a terminal state, a parked state, or a
// quantum-preempted requeue. Retryable failures loop in place with
// backoff; everything a worker does is panic-isolated in attempt().
func (s *Server) execute(j *jobState) {
	for {
		if j.terminal() {
			return // cancelled while queued
		}
		if j.cancelled() {
			s.finish(j, StatusCanceled, Errf(KindCanceled, "cancelled before start"), nil)
			return
		}
		if s.stopRequested() {
			s.park(j)
			return
		}
		if time.Now().After(j.deadline) {
			s.finish(j, StatusFailed, Errf(KindDeadline, "deadline expired after %s in queue", time.Since(j.created).Round(time.Millisecond)), nil)
			return
		}

		j.mu.Lock()
		j.status = StatusRunning
		j.attempts++
		attempt := j.attempts
		j.mu.Unlock()
		j.announce()
		s.busy.Add(1)
		start := time.Now()
		payload, profile, resumed, err := s.attempt(j, attempt, start)
		s.busy.Add(-1)
		if resumed != nil && resumed.Step > 0 {
			j.mu.Lock()
			if resumed.Step > j.resumeStep {
				j.resumeStep = resumed.Step
			}
			j.mu.Unlock()
			s.reg.Counter("repro_serve_resumed_total",
				"attempts resumed from a parked checkpoint").Add(1)
		}

		if s.isAborted() {
			// Simulated crash: discard everything not already on disk. The
			// journal entry survives, so reopening replays this job.
			return
		}

		if err == nil {
			if profile != nil {
				// Telemetry, best-effort: an eviction-pressure failure here
				// must not fail a correctly computed job.
				_ = s.store.Put(profileKey(j.key), profile)
			}
			if perr := s.store.Put(j.key, payload); perr != nil {
				err = perr // classified transient; falls through to retry
			} else {
				s.finish(j, StatusDone, nil, payload)
				return
			}
		}

		if err != nil && errIsPreempted(err) {
			switch {
			case j.cancelled():
				s.finish(j, StatusCanceled, Errf(KindCanceled, "cancelled mid-run"), nil)
			case time.Now().After(j.deadline):
				s.finish(j, StatusFailed, Errf(KindDeadline, "deadline expired at step boundary"), nil)
			case s.stopRequested():
				s.park(j)
			default:
				// Quantum expired: back to the queue at the head of this
				// tenant's line. Attempts are not consumed — preemption is
				// scheduling, not failure.
				j.mu.Lock()
				j.status = StatusQueued
				j.attempts--
				j.mu.Unlock()
				j.announce()
				s.queue.requeueFront(j.tenant, j)
				s.refreshDepthGauges()
				s.reg.Counter("repro_serve_preempted_total",
					"runs parked at a checkpoint boundary by the quantum").Add(1)
			}
			return
		}

		if err != nil {
			var je *JobError
			if !errors.As(err, &je) {
				je = Errf(KindInternal, "%v", err)
			}
			if je.Kind.Retryable() && attempt <= s.cfg.MaxRetries {
				s.reg.Counter("repro_serve_retries_total",
					"retryable job failures re-executed").Add(1)
				if !s.backoff(j, attempt) {
					continue // interrupted: loop re-checks cancel/close
				}
				continue
			}
			s.finish(j, StatusFailed, je, nil)
			return
		}
	}
}

// profileKey derives the store key of a run job's attribution profile
// from its canonical result key. The suffix cannot collide with a spec
// key: those end in structured field=value pairs, never in "#profile".
func profileKey(key string) string { return key + " #profile" }

// attempt executes one try of j with full panic isolation: a crashing
// worker fails the one job with KindWorkerCrash and the server lives on.
func (s *Server) attempt(j *jobState, attempt int, start time.Time) (payload, profile []byte, resumed *pmd.ResumeInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Errf(KindWorkerCrash, "panic in attempt %d: %v", attempt, r)
		}
	}()
	if s.cfg.FaultInject != nil {
		if ferr := s.cfg.FaultInject(j.spec, attempt); ferr != nil {
			return nil, nil, nil, ferr
		}
	}
	ckptDir := ""
	var preempt func() bool
	var onStep StepFunc
	if j.spec.Kind == KindRun {
		ckptDir = s.ckptDir(j.id)
		quantum := s.cfg.PreemptQuantum
		preempt = func() bool {
			if j.cancelled() || s.stopRequested() {
				return true
			}
			if time.Now().After(j.deadline) {
				return true
			}
			return quantum > 0 && time.Since(start) > quantum
		}
		onStep = j.hub.step
	}
	return s.env.Execute(j.spec, ckptDir, preempt, onStep)
}

// park records that j's work is safely on disk (journal entry, plus the
// preemption checkpoint for run jobs) and will resume when the StateDir
// is reopened. Parked is not terminal: waiters are not woken, because the
// job has not finished — this process just cannot finish it.
func (s *Server) park(j *jobState) {
	j.setStatus(StatusParked)
	j.announce()
	s.reg.Counter("repro_serve_parked_total",
		"jobs checkpoint-parked by shutdown").Add(1)
}

// backoff sleeps the exponential, jittered retry delay for attempt.
// The jitter is a deterministic function of (job id, attempt) so reruns
// of the same failure schedule identically. Returns false when
// interrupted by cancellation or shutdown.
func (s *Server) backoff(j *jobState, attempt int) bool {
	d := s.cfg.RetryBaseDelay << uint(attempt-1)
	if max := 5 * time.Second; d > max {
		d = max
	}
	h := fnv.New32a()
	io.WriteString(h, j.id)
	fmt.Fprintf(h, "/%d", attempt)
	// Jitter in [0.5, 1.5): desynchronizes retry storms without a global
	// randomness source.
	d = time.Duration(float64(d) * (0.5 + float64(h.Sum32()%1000)/1000))
	select {
	case <-time.After(d):
		return true
	case <-j.cancelCh:
		return false
	case <-s.quit:
		return false
	}
}

func (s *Server) refreshDepthGauges() {
	for tenant, depth := range s.queue.depths() {
		s.reg.Gauge("repro_serve_queue_depth", "queued jobs per tenant",
			obs.L("tenant", tenant)).Set(float64(depth))
	}
}

// ---------------------------------------------------------------------------
// HTTP side

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Tenant     string  `json:"tenant"`
	Spec       JobSpec `json:"spec"`
	DeadlineMS int64   `json:"deadline_ms"` // 0 = server default
}

// jobResponse is the JSON shape of both submit responses and status
// reads.
type jobResponse struct {
	ID            string    `json:"id"`
	Status        string    `json:"status"`
	Kind          JobKind   `json:"kind"`
	Attempts      int       `json:"attempts,omitempty"`
	ResumeStep    int       `json:"resume_step,omitempty"`
	Coalesced     bool      `json:"coalesced,omitempty"`
	Cached        bool      `json:"cached,omitempty"`
	Error         *JobError `json:"error,omitempty"`
	RetryAfterSec int       `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, &JobError{KindBadRequest, "POST only"})
		return
	}
	if s.stopRequested() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &JobError{KindOverloaded, "shutting down"})
		return
	}
	var req submitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, Errf(KindBadRequest, "body: %v", err))
		return
	}
	if req.Tenant == "" {
		req.Tenant = "anon"
	}
	if err := req.Spec.Normalize(); err != nil {
		writeJSON(w, http.StatusBadRequest, err)
		return
	}
	key := req.Spec.Key()
	id := JobID(key)
	budget := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		budget = time.Duration(req.DeadlineMS) * time.Millisecond
	}

	// In-flight dedup first: a live lifecycle wins over the store (its
	// result may not exist yet) and over resubmission. Inserting the new
	// jobState under the same lock as the check makes the dedup airtight:
	// a concurrent identical POST coalesces onto the reservation.
	j := newJobState(id, req.Tenant, key, req.Spec, time.Now().Add(budget))
	s.mu.Lock()
	if exist, ok := s.jobs[id]; ok {
		st, _, _, _ := exist.snapshot()
		switch st {
		case StatusDone:
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, jobResponse{ID: id, Status: StatusDone, Kind: req.Spec.Kind, Cached: true})
			return
		case StatusFailed, StatusCanceled:
			// Terminal failure: fall through and start a fresh lifecycle.
		default:
			s.mu.Unlock()
			s.reg.Counter("repro_serve_coalesced_total",
				"submissions coalesced onto an in-flight identical job").Add(1)
			writeJSON(w, http.StatusAccepted, jobResponse{ID: id, Status: st, Kind: req.Spec.Kind, Coalesced: true})
			return
		}
	}
	s.jobs[id] = j
	s.mu.Unlock()

	unreserve := func() {
		s.mu.Lock()
		if s.jobs[id] == j {
			delete(s.jobs, id)
		}
		s.mu.Unlock()
	}

	// Store hit: the work is already done — no queueing, no journal.
	if payload, ok := s.store.Get(key); ok {
		j.setStatus(StatusDone)
		close(j.done)
		j.hub.terminal(j.terminalEventID(), StatusDone, payload)
		writeJSON(w, http.StatusOK, jobResponse{ID: id, Status: StatusDone, Kind: req.Spec.Kind, Cached: true})
		return
	}

	// Durability before acknowledgement: journal, then queue, then 202.
	// A crash after the journal write replays the job; a shed removes it.
	if err := s.jnl.append(journalEntry{
		ID: id, Tenant: req.Tenant, Key: key, Spec: req.Spec,
		Deadline: budget.Milliseconds(), Accepted: j.created,
	}); err != nil {
		unreserve()
		writeJSON(w, http.StatusInternalServerError, err)
		return
	}
	if err := s.queue.enqueue(req.Tenant, j, false); err != nil {
		s.jnl.remove(id)
		unreserve()
		var shed *errShed
		if errors.As(err, &shed) {
			s.reg.Counter("repro_serve_shed_total", "submissions shed by admission control",
				obs.L("tenant", req.Tenant)).Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", shed.retryAfterSec))
			writeJSON(w, http.StatusTooManyRequests, jobResponse{
				ID: id, Status: "shed", Kind: req.Spec.Kind,
				Error:         &JobError{KindOverloaded, "tenant queue full"},
				RetryAfterSec: shed.retryAfterSec,
			})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, err)
		return
	}
	s.refreshDepthGauges()
	s.reg.Counter("repro_serve_accepted_total", "jobs accepted into the queue",
		obs.L("tenant", req.Tenant)).Add(1)
	writeJSON(w, http.StatusAccepted, jobResponse{ID: id, Status: StatusQueued, Kind: req.Spec.Kind})
}

func (s *Server) lookup(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	j := s.lookup(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, Errf(KindBadRequest, "unknown job %q", id))
		return
	}
	switch {
	case r.Method == http.MethodGet && sub == "":
		// ?wait=<dur> long-polls: block until the job reaches a terminal
		// state or the (bounded) wait expires, then answer with the usual
		// snapshot. A poller gets the same response shape either way — the
		// wait only trades HTTP round-trips for one parked connection.
		if wv := r.URL.Query().Get("wait"); wv != "" {
			d, err := time.ParseDuration(wv)
			if err != nil || d < 0 {
				writeJSON(w, http.StatusBadRequest,
					Errf(KindBadRequest, "bad wait %q: want a non-negative duration like 5s", wv))
				return
			}
			if d > maxJobWait {
				d = maxJobWait
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-j.done: // terminal: done, failed or canceled
			case <-t.C: // wait expired: report the in-flight status
			case <-s.quit: // shutdown (parking is not terminal): don't hold the drain
			case <-r.Context().Done(): // client gave up
			}
		}
		st, attempts, resume, jerr := j.snapshot()
		writeJSON(w, http.StatusOK, jobResponse{
			ID: j.id, Status: st, Kind: j.spec.Kind,
			Attempts: attempts, ResumeStep: resume, Error: jerr,
		})
	case r.Method == http.MethodGet && sub == "result":
		st, _, _, jerr := j.snapshot()
		if st != StatusDone {
			writeJSON(w, http.StatusConflict, jobResponse{ID: j.id, Status: st, Kind: j.spec.Kind, Error: jerr})
			return
		}
		payload, ok := s.store.Get(j.key)
		if !ok {
			// Evicted or damaged since completion: an honest miss. The
			// client resubmits the spec and the engine recomputes the
			// identical bytes — the store never serves a wrong result.
			writeJSON(w, http.StatusGone, Errf(KindTransient, "result evicted; resubmit to recompute"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(payload)
	case r.Method == http.MethodGet && sub == "events":
		s.handleEvents(w, r, j)
	case r.Method == http.MethodGet && sub == "profile":
		s.handleProfile(w, j)
	case r.Method == http.MethodDelete && sub == "":
		j.cancel()
		st, _, _, _ := j.snapshot()
		if st == StatusQueued || st == StatusParked {
			// Not on a worker: terminate immediately; a worker that later
			// dequeues it sees the terminal state and skips.
			if !j.terminal() {
				s.finish(j, StatusCanceled, Errf(KindCanceled, "cancelled while queued"), nil)
			}
		}
		st, _, _, _ = j.snapshot()
		writeJSON(w, http.StatusAccepted, jobResponse{ID: j.id, Status: st, Kind: j.spec.Kind})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, Errf(KindBadRequest, "unsupported %s %s", r.Method, r.URL.Path))
	}
}

// handleEvents streams the job's lifecycle as server-sent events:
// progress transitions, one id-carrying step event per completed MD step
// (monotone, never duplicated even when a rank crash rewinds the
// engine), heartbeat comments while idle, and exactly one terminal event
// whose data for a done job is byte-identical to the polling result. A
// client that reconnects with Last-Event-ID — to this process or to a
// reopened server recomputing the same job — resumes after the id it
// names.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *jobState) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, Errf(KindInternal, "streaming unsupported"))
		return
	}
	lastID := 0
	if v := strings.TrimSpace(r.Header.Get("Last-Event-ID")); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, Errf(KindBadRequest, "bad Last-Event-ID %q: want a non-negative integer", v))
			return
		}
		lastID = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := j.hub.subscribe(lastID)
	defer cancel()
	for _, e := range replay {
		writeSSE(w, e)
	}
	fl.Flush()
	if ch == nil {
		return // already terminal: the replay ended the story
	}
	hb := time.NewTicker(s.cfg.EventHeartbeat)
	defer hb.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // hub closed after its terminal event
			}
			writeSSE(w, e)
			fl.Flush()
		case <-hb.C:
			// Comment-only keepalive: ignored by SSE parsers, defeats idle
			// connection reapers between steps of a slow run.
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-s.quit:
			return // shutdown: the client reconnects with Last-Event-ID
		case <-r.Context().Done():
			return
		}
	}
}

// handleProfile serves the stored bottleneck-attribution profile of a
// completed run job.
func (s *Server) handleProfile(w http.ResponseWriter, j *jobState) {
	if j.spec.Kind != KindRun {
		writeJSON(w, http.StatusBadRequest,
			Errf(KindBadRequest, "profiles exist for run jobs only (job kind %q)", j.spec.Kind))
		return
	}
	st, _, _, jerr := j.snapshot()
	if st != StatusDone {
		writeJSON(w, http.StatusConflict, jobResponse{ID: j.id, Status: st, Kind: j.spec.Kind, Error: jerr})
		return
	}
	payload, ok := s.store.Get(profileKey(j.key))
	if !ok {
		// Evicted, or the result predates the profiler: an honest miss,
		// same contract as the result endpoint.
		writeJSON(w, http.StatusGone, Errf(KindTransient, "profile evicted or not recorded; resubmit to recompute"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.stopRequested() {
		http.Error(w, "closing", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	byStatus := map[string]int{}
	s.mu.Lock()
	for _, j := range s.jobs {
		st, _, _, _ := j.snapshot()
		byStatus[st]++
	}
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"jobs":         jobs,
		"by_status":    byStatus,
		"queue_depths": s.queue.depths(),
		"workers_busy": s.busy.Value(),
		"store": map[string]interface{}{
			"entries": s.store.Len(),
			"bytes":   s.store.Bytes(),
		},
	})
}

// ---------------------------------------------------------------------------
// Lifecycle

// Close shuts the server down gracefully: admission stops (new POSTs get
// 503), workers drain their current short jobs, long runs park at their
// next checkpoint boundary, still-queued jobs stay journaled, and the
// HTTP server drains in-flight requests. When ctx expires first the
// remaining connections are force-closed and ctx's error is returned;
// the state directory is safe to reopen either way.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closing || s.aborted {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	s.quitOnce.Do(func() { close(s.quit) })
	s.queue.close()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var werr error
	select {
	case <-workersDone:
	case <-ctx.Done():
		werr = ctx.Err()
	}
	for _, j := range s.queue.drain() {
		if !j.terminal() {
			s.park(j)
		}
	}
	if err := s.hsrv.Shutdown(ctx); err != nil {
		_ = s.hsrv.Close()
		if werr == nil {
			werr = err
		}
	}
	return werr
}

// Abort simulates a crash for chaos testing: the listener and every
// connection drop immediately and no further state is persisted — the
// journal, store and parked checkpoints stay exactly as the crash found
// them. Unlike a real kill -9, Abort waits for worker goroutines to
// notice and exit (long runs stop at their next step boundary) before
// returning, because a reopened server must be the only writer of the
// state directory; everything those workers would have persisted after
// the abort flag is discarded, which is the part that matters for
// crash-consistency testing.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.closing || s.aborted {
		s.mu.Unlock()
		return
	}
	s.aborted = true
	s.mu.Unlock()
	s.quitOnce.Do(func() { close(s.quit) })
	_ = s.hsrv.Close()
	s.queue.close()
	s.wg.Wait()
}
