package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func testConfig(dir string) Config {
	return Config{
		Addr:            "127.0.0.1:0",
		StateDir:        dir,
		Workers:         2,
		QueueDepth:      8,
		DefaultDeadline: time.Minute,
		Obs:             obs.NewRegistry(),
	}
}

func testServer(t *testing.T, mut func(*Config)) (*Server, string) {
	t.Helper()
	cfg := testConfig(t.TempDir())
	if mut != nil {
		mut(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, "http://" + s.Addr()
}

func postJob(t *testing.T, base, tenant string, spec JobSpec, deadlineMS int64) (int, jobResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Tenant: tenant, Spec: spec, DeadlineMS: deadlineMS})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	_ = json.NewDecoder(resp.Body).Decode(&jr)
	return resp.StatusCode, jr, resp.Header
}

func getStatus(t *testing.T, base, id string) jobResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return jr
}

func waitStatus(t *testing.T, base, id, want string, timeout time.Duration) jobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jr := getStatus(t, base, id)
		if jr.Status == want {
			return jr
		}
		if jr.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("job %s failed waiting for %s: %+v", id, want, jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, jr.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET result: %d %s", resp.StatusCode, body)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return buf
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	return string(buf)
}

// small job specs shared across tests (48 atoms keeps system builds fast;
// each server caches its relaxed box across jobs).
func runSpec(steps int) JobSpec {
	return JobSpec{Kind: KindRun, Atoms: 48, Steps: steps, Procs: 4}
}

func analysisSpec() JobSpec {
	return JobSpec{Kind: KindAnalysis, Atoms: 48, Steps: 2, Observable: "rdf"}
}

func sweepSpec() JobSpec {
	return JobSpec{Kind: KindSweep, Atoms: 48, Steps: 1, Procs: 4, Nets: []string{"score", "tcp"}}
}

// TestServeStatusLongPoll: GET /v1/jobs/<id>?wait=<dur> blocks until the
// job reaches a terminal state or the bounded wait expires, and answers
// with the same 200 + snapshot shape as an immediate poll.
func TestServeStatusLongPoll(t *testing.T) {
	_, base := testServer(t, func(c *Config) { c.Workers = 1 })

	// A poll whose wait covers the job's runtime returns the terminal
	// state in one round-trip, woken by completion rather than the timer.
	code, jr, _ := postJob(t, base, "a", runSpec(2), 0)
	if code != http.StatusAccepted {
		t.Fatalf("POST: got %d, want 202", code)
	}
	start := time.Now()
	resp, err := http.Get(base + "/v1/jobs/" + jr.ID + "?wait=20s")
	if err != nil {
		t.Fatalf("GET ?wait: %v", err)
	}
	var got jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long poll: got %d, want 200", resp.StatusCode)
	}
	if got.Status != StatusDone {
		t.Fatalf("long poll ended in %q, want %q", got.Status, StatusDone)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("long poll was not woken by completion (took %v)", elapsed)
	}

	// An expired wait reports the in-flight status instead of blocking:
	// with the lone worker parked on a longer run, a fresh job is still
	// queued or running when a 1ms wait runs out — and the response is
	// still a 200. (Parking the worker first makes this deterministic:
	// a relaxed-box-cached 3-step run alone can finish inside 1ms.)
	_, blocker, _ := postJob(t, base, "a", runSpec(40), 0)
	_, slow, _ := postJob(t, base, "a", runSpec(3), 0)
	resp, err = http.Get(base + "/v1/jobs/" + slow.ID + "?wait=1ms")
	if err != nil {
		t.Fatalf("GET short wait: %v", err)
	}
	got = jobResponse{}
	_ = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("short wait: got %d, want 200", resp.StatusCode)
	}
	if got.Status == StatusDone || got.Status == StatusFailed {
		t.Fatalf("1ms wait outlived a multi-step run: status %q", got.Status)
	}
	waitStatus(t, base, blocker.ID, StatusDone, 30*time.Second)
	waitStatus(t, base, slow.ID, StatusDone, 30*time.Second)

	// Malformed and negative waits are rejected before any blocking.
	for _, wv := range []string{"bogus", "-5s"} {
		resp, err := http.Get(base + "/v1/jobs/" + slow.ID + "?wait=" + wv)
		if err != nil {
			t.Fatalf("GET wait=%s: %v", wv, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait=%s: got %d, want 400", wv, resp.StatusCode)
		}
	}
}

// TestServeRunByteIdentity: the core contract — bytes served for an
// accepted run equal a direct computation of the same spec, and an
// identical resubmission is answered from the store without requeueing.
func TestServeRunByteIdentity(t *testing.T) {
	_, base := testServer(t, nil)
	spec := runSpec(3)

	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %+v, want 202", code, jr)
	}
	waitStatus(t, base, jr.ID, StatusDone, 60*time.Second)
	got := getResult(t, base, jr.ID)

	want, err := NewEnv().ComputeReference(spec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served bytes differ from direct computation:\n got  %s\n want %s", got, want)
	}

	// Idempotent resubmission (even from another tenant) hits the cache.
	code, jr2, _ := postJob(t, base, "bob", spec, 0)
	if code != http.StatusOK || !jr2.Cached || jr2.ID != jr.ID {
		t.Fatalf("resubmit = %d %+v, want 200 cached with same id", code, jr2)
	}
}

func TestServeAnalysisAndSweep(t *testing.T) {
	_, base := testServer(t, nil)
	env := NewEnv()
	for _, spec := range []JobSpec{analysisSpec(), sweepSpec()} {
		code, jr, _ := postJob(t, base, "alice", spec, 0)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d, want 202", spec.Kind, code)
		}
		waitStatus(t, base, jr.ID, StatusDone, 60*time.Second)
		got := getResult(t, base, jr.ID)
		want, err := env.ComputeReference(spec)
		if err != nil {
			t.Fatalf("reference %s: %v", spec.Kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s bytes differ from direct computation", spec.Kind)
		}
	}
}

// blockingFault returns a FaultInject hook that parks matching jobs on a
// channel — the test's handle on "a worker is busy right now".
func blockingFault(kind JobKind) (func(JobSpec, int) error, chan struct{}) {
	release := make(chan struct{})
	return func(spec JobSpec, attempt int) error {
		if spec.Kind == kind {
			<-release
		}
		return nil
	}, release
}

func TestServeCoalesceInflight(t *testing.T) {
	hook, release := blockingFault(KindAnalysis)
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.FaultInject = hook
	})
	t.Cleanup(unblock)

	spec := analysisSpec()
	code, jr1, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	waitStatus(t, base, jr1.ID, StatusRunning, 10*time.Second)

	// Identical spec from a different tenant coalesces onto the running job.
	code, jr2, _ := postJob(t, base, "bob", spec, 0)
	if code != http.StatusAccepted || !jr2.Coalesced || jr2.ID != jr1.ID {
		t.Fatalf("dup submit = %d %+v, want 202 coalesced onto %s", code, jr2, jr1.ID)
	}

	unblock()
	waitStatus(t, base, jr1.ID, StatusDone, 30*time.Second)
	if txt := metricsText(t, base); !strings.Contains(txt, "repro_serve_coalesced_total") {
		t.Error("coalesced counter missing from /metrics")
	}
}

func TestServeShedWithRetryAfter(t *testing.T) {
	hook, release := blockingFault(KindAnalysis)
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.FaultInject = hook
	})
	t.Cleanup(func() { close(release) })

	// Distinct specs so nothing coalesces: seed varies.
	mk := func(seed uint64) JobSpec {
		s := analysisSpec()
		s.Seed = seed
		return s
	}
	code, _, _ := postJob(t, base, "alice", mk(1), 0) // occupies the worker
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", code)
	}
	// The worker may not have dequeued job 1 yet, so admit up to depth and
	// expect the shed within a couple of extra submissions.
	shedAt := 0
	var hdr http.Header
	var jr jobResponse
	for i := uint64(2); i <= 4; i++ {
		code, jr, hdr = postJob(t, base, "alice", mk(i), 0)
		if code == http.StatusTooManyRequests {
			shedAt = int(i)
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202 or 429", i, code)
		}
	}
	if shedAt == 0 {
		t.Fatal("no submission shed despite depth 1")
	}
	ra := hdr.Get("Retry-After")
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	if jr.Error == nil || jr.Error.Kind != KindOverloaded {
		t.Fatalf("shed body error = %+v, want overloaded", jr.Error)
	}
	// Other tenants are isolated from alice's backlog.
	if code, _, _ := postJob(t, base, "bob", mk(9), 0); code != http.StatusAccepted {
		t.Fatalf("bob shed by alice's queue: %d", code)
	}
}

func TestServeRetryTransientThenSucceed(t *testing.T) {
	fails := 2
	_, base := testServer(t, func(c *Config) {
		c.MaxRetries = 3
		c.RetryBaseDelay = time.Millisecond
		c.FaultInject = func(spec JobSpec, attempt int) error {
			if spec.Kind == KindAnalysis && attempt <= fails {
				return Errf(KindTransient, "injected fault, attempt %d", attempt)
			}
			return nil
		}
	})
	code, jr, _ := postJob(t, base, "alice", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitStatus(t, base, jr.ID, StatusDone, 30*time.Second)
	if final.Attempts != fails+1 {
		t.Fatalf("attempts = %d, want %d", final.Attempts, fails+1)
	}
	if txt := metricsText(t, base); !strings.Contains(txt, "repro_serve_retries_total") {
		t.Error("retries counter missing from /metrics")
	}
}

// TestServePanicIsolation: a worker panic fails only that job; the server
// keeps serving and keeps computing other jobs.
func TestServePanicIsolation(t *testing.T) {
	_, base := testServer(t, func(c *Config) {
		c.MaxRetries = 0
		c.FaultInject = func(spec JobSpec, attempt int) error {
			if spec.Kind == KindSweep {
				panic("injected worker crash")
			}
			return nil
		}
	})
	code, jr, _ := postJob(t, base, "alice", sweepSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitStatus(t, base, jr.ID, StatusFailed, 30*time.Second)
	if final.Error == nil || final.Error.Kind != KindWorkerCrash {
		t.Fatalf("error = %+v, want worker_crash", final.Error)
	}
	// The server survived: health is green and new work completes.
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v %v", resp, err)
	}
	resp.Body.Close()
	code, jr2, _ := postJob(t, base, "alice", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit = %d", code)
	}
	waitStatus(t, base, jr2.ID, StatusDone, 30*time.Second)
}

// TestServeWorkerCrashRetries: a crash on the first attempt is retryable;
// the job succeeds on the second.
func TestServeWorkerCrashRetries(t *testing.T) {
	_, base := testServer(t, func(c *Config) {
		c.MaxRetries = 2
		c.RetryBaseDelay = time.Millisecond
		c.FaultInject = func(spec JobSpec, attempt int) error {
			if spec.Kind == KindAnalysis && attempt == 1 {
				panic("first-attempt crash")
			}
			return nil
		}
	})
	code, jr, _ := postJob(t, base, "alice", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitStatus(t, base, jr.ID, StatusDone, 30*time.Second)
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", final.Attempts)
	}
}

func TestServeDeadlineExpiresInQueue(t *testing.T) {
	hook, release := blockingFault(KindAnalysis)
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.FaultInject = hook
	})
	t.Cleanup(unblock)

	blocker := analysisSpec()
	code, _, _ := postJob(t, base, "alice", blocker, 0)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", code)
	}
	tight := sweepSpec()
	code, jr, _ := postJob(t, base, "alice", tight, 50)
	if code != http.StatusAccepted {
		t.Fatalf("tight submit = %d", code)
	}
	time.Sleep(80 * time.Millisecond)
	unblock()
	final := waitStatus(t, base, jr.ID, StatusFailed, 30*time.Second)
	if final.Error == nil || final.Error.Kind != KindDeadline {
		t.Fatalf("error = %+v, want deadline", final.Error)
	}
}

func TestServeCancelQueued(t *testing.T) {
	hook, release := blockingFault(KindAnalysis)
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.FaultInject = hook
	})
	t.Cleanup(func() { close(release) })

	code, _, _ := postJob(t, base, "alice", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", code)
	}
	code, jr, _ := postJob(t, base, "alice", sweepSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("victim submit = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+jr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	final := waitStatus(t, base, jr.ID, StatusCanceled, 10*time.Second)
	if final.Error == nil || final.Error.Kind != KindCanceled {
		t.Fatalf("error = %+v, want canceled", final.Error)
	}
}

// TestServePreemptQuantumResume: with a vanishingly small quantum every
// attempt parks at a checkpoint boundary and requeues, so the run crosses
// several preempt/resume cycles — and still serves bytes identical to an
// uninterrupted computation, with the resume visible in resume_step.
func TestServePreemptQuantumResume(t *testing.T) {
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.PreemptQuantum = time.Nanosecond
	})
	spec := runSpec(6)
	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitStatus(t, base, jr.ID, StatusDone, 120*time.Second)
	if final.ResumeStep <= 0 {
		t.Fatalf("resume_step = %d, want > 0 (job must have resumed mid-run, not restarted)", final.ResumeStep)
	}
	got := getResult(t, base, jr.ID)
	want, err := NewEnv().ComputeReference(spec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted run differs from uninterrupted computation:\n got  %s\n want %s", got, want)
	}
	if txt := metricsText(t, base); !strings.Contains(txt, "repro_serve_preempted_total") {
		t.Error("preempted counter missing from /metrics")
	}
}

// TestServeAbortReplay: a simulated crash loses no accepted job — after
// reopening the state directory every journaled job completes with bytes
// identical to direct computation.
func TestServeAbortReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Workers = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := "http://" + s.Addr()

	long := runSpec(96)
	code, jrRun, _ := postJob(t, base, "alice", long, 0)
	if code != http.StatusAccepted {
		t.Fatalf("run submit = %d", code)
	}
	code, jrA, _ := postJob(t, base, "bob", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("analysis submit = %d", code)
	}
	code, jrS, _ := postJob(t, base, "bob", sweepSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	// Crash once the run has been picked up (usually mid-run; if the
	// machine is fast enough that it already finished, the two queued jobs
	// still exercise the replay path).
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, base, jrRun.ID).Status == StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("run never dequeued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	s.Abort()
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still reachable after Abort")
	}

	cfg2 := testConfig(dir)
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close(context.Background())
	base2 := "http://" + s2.Addr()

	env := NewEnv()
	for _, tc := range []struct {
		id   string
		spec JobSpec
	}{{jrRun.ID, long}, {jrA.ID, analysisSpec()}, {jrS.ID, sweepSpec()}} {
		waitStatus(t, base2, tc.id, StatusDone, 120*time.Second)
		got := getResult(t, base2, tc.id)
		want, err := env.ComputeReference(tc.spec)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %s (%s) differs from direct computation after crash+replay", tc.id, tc.spec.Kind)
		}
	}
	// Every journal entry was released once its job completed.
	files, err := os.ReadDir(cfg2.StateDir + "/jobs")
	if err != nil {
		t.Fatalf("read journal dir: %v", err)
	}
	if len(files) != 0 {
		t.Fatalf("journal not empty after all jobs completed: %d files", len(files))
	}
}

// TestServeGracefulCloseParksAndResumes: Close parks a mid-flight run
// (checkpoint + journal stay on disk), and reopening the state directory
// finishes it from the parked step — bytes still identical to an
// uninterrupted computation.
func TestServeGracefulCloseParksAndResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Workers = 1
	cfg.PreemptQuantum = time.Nanosecond // guarantees partial progress + requeues
	// Let the first two attempts through (≥1 resume cycle), then hold the
	// third until Close is underway — the run provably cannot complete
	// before the shutdown parks it.
	var attempts int32
	gate := make(chan struct{})
	cfg.FaultInject = func(spec JobSpec, attempt int) error {
		if spec.Kind == KindRun && atomic.AddInt32(&attempts, 1) >= 3 {
			<-gate
		}
		return nil
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := "http://" + s.Addr()

	spec := runSpec(10)
	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	// Wait until at least one preempt/resume cycle proves partial progress
	// is parked on disk.
	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, base, jr.ID).ResumeStep == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no resume observed before close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	closeErr := make(chan error, 1)
	go func() { closeErr <- s.Close(ctx) }()
	// Release the held attempt only after Close has flagged the drain, so
	// it immediately parks at its next checkpoint boundary.
	for !s.stopRequested() {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	err = <-closeErr
	cancel()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}

	cfg2 := testConfig(dir) // no quantum: finishes in one attempt
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close(context.Background())
	base2 := "http://" + s2.Addr()

	final := waitStatus(t, base2, jr.ID, StatusDone, 120*time.Second)
	if final.ResumeStep <= 0 {
		t.Fatalf("resume_step = %d after reopen, want > 0 (parked progress must be reused)", final.ResumeStep)
	}
	got := getResult(t, base2, jr.ID)
	want, rerr := NewEnv().ComputeReference(spec)
	if rerr != nil {
		t.Fatalf("reference: %v", rerr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("parked+resumed run differs from uninterrupted computation")
	}
}

// TestServeReplayStoreHit: a crash in the window between store.Put and
// journal removal must not recompute on replay — the store answers.
func TestServeReplayStoreHit(t *testing.T) {
	dir := t.TempDir()
	spec := analysisSpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	payload, err := NewEnv().ComputeReference(spec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	// Stage the crash window by hand: result in the store, journal entry
	// still present.
	store, err := OpenStore(dir+"/store", 1<<20, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(spec.Key(), payload); err != nil {
		t.Fatal(err)
	}
	jnl, err := openJournal(dir + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	id := JobID(spec.Key())
	if err := jnl.append(journalEntry{
		ID: id, Tenant: "alice", Key: spec.Key(), Spec: spec,
		Deadline: 60_000, Accepted: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(dir)
	// Any recomputation would fail loudly.
	cfg.FaultInject = func(JobSpec, int) error {
		return Errf(KindInternal, "replay recomputed a stored result")
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close(context.Background())
	base := "http://" + s.Addr()

	final := waitStatus(t, base, id, StatusDone, 10*time.Second)
	if final.Status != StatusDone {
		t.Fatalf("replayed job status %q", final.Status)
	}
	if got := getResult(t, base, id); !bytes.Equal(got, payload) {
		t.Fatal("replayed result differs from stored payload")
	}
}

func TestServeValidationAndRouting(t *testing.T) {
	s, base := testServer(t, nil)

	code, jr, _ := postJob(t, base, "alice", JobSpec{Kind: "banana"}, 0)
	if code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d %+v, want 400", code, jr)
	}
	resp, err := http.Get(base + "/v1/jobs/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}

	// Submissions during drain are refused with a clean 503 + Retry-After.
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	code, _, hdr := postJob(t, base, "alice", analysisSpec(), 0)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("submit while closing = %d (Retry-After %q), want 503 with Retry-After", code, hdr.Get("Retry-After"))
	}
	s.mu.Lock()
	s.closing = false
	s.mu.Unlock()

	// statz is live JSON.
	resp, err = http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	for _, k := range []string{"jobs", "queue_depths", "store"} {
		if _, ok := statz[k]; !ok {
			t.Errorf("statz missing %q: %v", k, statz)
		}
	}
}

// TestServeResultEvictedIsHonestMiss: a done job whose result was evicted
// answers 410, never stale or wrong bytes; resubmitting recomputes.
func TestServeResultEvictedIsHonestMiss(t *testing.T) {
	srv, base := testServer(t, nil)
	spec := analysisSpec()
	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitStatus(t, base, jr.ID, StatusDone, 30*time.Second)
	// Nuke the stored entry out from under the done job.
	if err := os.Remove(srv.store.path(jr.ID)); err != nil {
		t.Fatalf("remove stored result: %v", err)
	}
	resp, err := http.Get(base + "/v1/jobs/" + jr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted result = %d, want 410", resp.StatusCode)
	}
}

// TestServeFairnessUnderBurst: a bursting tenant cannot starve a light
// one — the light tenant's job finishes while most of the burst is still
// queued.
func TestServeFairnessUnderBurst(t *testing.T) {
	gate := make(chan struct{})
	_, base := testServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 32
		c.FaultInject = func(spec JobSpec, attempt int) error {
			<-gate // serialize: each execution waits for the test's tick
			return nil
		}
	})
	burst := func(seed uint64) JobSpec {
		s := analysisSpec()
		s.Seed = seed
		return s
	}
	var burstIDs []string
	for i := uint64(1); i <= 6; i++ {
		code, jr, _ := postJob(t, base, "heavy", burst(i), 0)
		if code != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d", i, code)
		}
		burstIDs = append(burstIDs, jr.ID)
	}
	code, light, _ := postJob(t, base, "light", burst(100), 0)
	if code != http.StatusAccepted {
		t.Fatalf("light submit = %d", code)
	}
	// Tick executions through one at a time until the light job is done.
	countDone := func() int {
		n := 0
		for _, id := range append(append([]string(nil), burstIDs...), light.ID) {
			if getStatus(t, base, id).Status == StatusDone {
				n++
			}
		}
		return n
	}
	lightDone := false
	for tick := 1; tick <= 4 && !lightDone; tick++ {
		gate <- struct{}{}
		deadline := time.Now().Add(20 * time.Second)
		for countDone() < tick && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		lightDone = getStatus(t, base, light.ID).Status == StatusDone
	}
	// Count the still-queued burst BEFORE opening the gate: afterwards the
	// tiny jobs drain instantly.
	remaining := 0
	for _, id := range burstIDs {
		if getStatus(t, base, id).Status != StatusDone {
			remaining++
		}
	}
	close(gate) // release the rest of the burst
	if !lightDone {
		t.Fatal("light tenant's job not served within the first few slots despite heavy's 6-job head start")
	}
	if remaining == 0 {
		t.Fatal("entire burst already done; fairness unobservable (test raced)")
	}
	for _, id := range burstIDs {
		waitStatus(t, base, id, StatusDone, 60*time.Second)
	}
}

func init() {
	// Keep test HTTP clients from reusing pooled conns into dead servers
	// across Abort tests.
	http.DefaultTransport.(*http.Transport).DisableKeepAlives = true
}
