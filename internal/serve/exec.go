package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"math"
	"os"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/perf"
	"repro/internal/pmd"
	"repro/internal/topol"
	"repro/internal/vec"
)

// Env executes job specs on the deterministic engine. It caches the
// expensive immutable inputs — relaxed solvated systems and figure
// studies — across jobs; the caches affect speed only, never results.
// Safe for concurrent use.
type Env struct {
	// KernelWorkers is threaded into every built md.Config and study
	// (md.Config.KernelWorkers). Set before first use; caches key on the
	// job inputs only, so flipping it mid-life would hand out configs
	// built under the old setting.
	KernelWorkers int

	mu      sync.Mutex
	systems map[sysCacheKey]*sysEntry
	studies map[studyCacheKey]*studyEntry
}

// NewEnv builds an empty executor environment.
func NewEnv() *Env {
	return &Env{
		systems: map[sysCacheKey]*sysEntry{},
		studies: map[studyCacheKey]*studyEntry{},
	}
}

type sysCacheKey struct {
	atoms int
	seed  uint64
}

// sysEntry is one relaxed solvated box. Relax mutates positions in place,
// so the build runs exactly once; afterwards the system is read-only and
// shared by every concurrent run (pmd treats System as shared read-only
// topology, and the sequential path copies positions into its Engine).
type sysEntry struct {
	once  sync.Once
	sys   *topol.System
	mdCfg md.Config
}

type studyCacheKey struct {
	quick bool
	steps int
	seed  uint64
}

// studyEntry is one figures study. The Suite's run cache is not safe for
// concurrent use, so executions of the same study serialize on mu;
// distinct studies run in parallel.
type studyEntry struct {
	once  sync.Once
	mu    sync.Mutex
	study *core.Study
}

// system returns the relaxed solvated box for (atoms, seed), building it
// on first use. The recipe matches the chaos harness: relax, clamp the
// cutoffs to the box and put the PME mesh at the builder's recommended
// dimension — so serve results are comparable with the soak corpus.
func (e *Env) system(atoms int, seed uint64) (*topol.System, md.Config) {
	k := sysCacheKey{atoms: atoms, seed: seed}
	e.mu.Lock()
	ent, ok := e.systems[k]
	if !ok {
		ent = &sysEntry{}
		e.systems[k] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		sys, mesh := topol.NewSolvatedBox(atoms, seed+1)
		md.Relax(sys, 60)
		cfg := md.ClampCutoffs(md.PMEDefaultConfig(), sys.Box)
		cfg.PME = md.PMEConfig{Beta: 0.34, K1: mesh, K2: mesh, K3: mesh, Order: 4}
		cfg.FF.Beta = cfg.PME.Beta
		cfg.Temperature = 300
		cfg.Seed = seed + 1
		cfg.KernelWorkers = e.KernelWorkers
		ent.sys, ent.mdCfg = sys, cfg
	})
	return ent.sys, ent.mdCfg
}

// study returns the shared figure study for the key, building its
// 3552-atom system on first use.
func (e *Env) study(k studyCacheKey) *studyEntry {
	e.mu.Lock()
	ent, ok := e.studies[k]
	if !ok {
		ent = &studyEntry{}
		e.studies[k] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.study = core.NewStudy(core.Options{
			Quick: k.quick, Steps: k.steps, SystemSeed: k.seed, ClusterSeed: k.seed,
			KernelWorkers: e.KernelWorkers,
		})
	})
	return ent
}

func middleware(name string) pmd.MiddlewareKind {
	if name == "cmpi" {
		return pmd.MiddlewareCMPI
	}
	return pmd.MiddlewareMPI
}

// decompFor resolves the spec's decomposition and checks it can tile the
// requested ranks on the job's actual PME mesh. Normalize already vetted
// the name, but the mesh depends on the solvated-box size, so the tiling
// check can only happen here — a failure is the client's request asking
// for impossible geometry, hence KindBadRequest, not an internal error.
func decompFor(spec JobSpec, mdCfg md.Config) (pmd.DecompKind, error) {
	dk, err := pmd.ParseDecomp(spec.Decomp)
	if err != nil {
		return 0, Errf(KindBadRequest, "%v", err)
	}
	if err := pmd.ValidateDecomp(dk, spec.Procs, mdCfg.PME); err != nil {
		return 0, Errf(KindBadRequest, "%v", err)
	}
	return dk, nil
}

func clusterFor(spec JobSpec) cluster.Config {
	net, _ := netmodel.ByName(spec.Net)
	return cluster.Config{
		Nodes: spec.Procs / spec.CPUs, CPUsPerNode: spec.CPUs, Net: net, Seed: spec.Seed,
	}
}

// posDigest hashes positions bitwise (little-endian float64 triples): two
// runs agree on the digest iff they agree on every position bit.
func posDigest(pos []vec.V) string {
	h := sha256.New()
	var buf [24]byte
	for _, p := range pos {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Y))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(p.Z))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runPayload is the result of a KindRun job. Every field is invariant
// under checkpoint resume (PR 4's bitwise-restart guarantee covers the
// final state; wall clocks and per-attempt traces are NOT invariant and
// are deliberately absent), so a job computed across any number of
// preemption cycles emits bytes identical to an uninterrupted one.
type runPayload struct {
	Kind   string `json:"kind"`
	Atoms  int    `json:"atoms"`
	Steps  int    `json:"steps"`
	P      int    `json:"p"`
	Energy struct {
		Classic float64 `json:"classic"`
		PME     float64 `json:"pme"`
		Kinetic float64 `json:"kinetic"`
		Total   float64 `json:"total"`
	} `json:"energy"`
	FinalPosSHA256 string `json:"final_pos_sha256"`
}

// StepFunc observes one completed MD step of a run job: the global step
// index, its timing split and its energy report. Called on the engine's
// scheduler thread — keep it fast and never block.
type StepFunc func(step int, timing pmd.StepTiming, energy md.EnergyReport)

// ExecRun runs the resilient parallel MD for spec. ckptDir, when
// non-empty, durably checkpoints the run there (resuming any parked state
// found); preempt, when non-nil, gracefully parks the run at a checkpoint
// boundary (the returned error is pmd.ErrPreempted); onStep, when
// non-nil, streams each completed step. The returned ResumeInfo reports
// whether this invocation resumed from disk. The second payload is the
// encoded bottleneck-attribution profile of the successful run —
// telemetry about this execution (wall clocks, restarts), deliberately
// separate from the resume-invariant result bytes.
func (e *Env) ExecRun(spec JobSpec, ckptDir string, preempt func() bool, onStep StepFunc) ([]byte, []byte, *pmd.ResumeInfo, error) {
	sys, mdCfg := e.system(spec.Atoms, spec.Seed)
	dk, derr := decompFor(spec, mdCfg)
	if derr != nil {
		return nil, nil, nil, derr
	}

	if ckptDir != "" {
		// Completion-crash edge: the run finished and checkpointed its last
		// step, but the crash hit before the result reached the store. A
		// resume would have zero steps to run, so wipe and recompute — the
		// recomputation is bitwise identical.
		ring := &md.CheckpointRing{Dir: ckptDir}
		if _, meta, _, err := ring.LoadNewest(); err == nil && meta.Step >= spec.Steps {
			if err := os.RemoveAll(ckptDir); err != nil {
				return nil, nil, nil, Errf(KindTransient, "reset completed checkpoint dir: %v", err)
			}
		}
	}

	tl := perf.NewTimeline(spec.Procs, spec.Steps)
	res, err := pmd.RunResilient(clusterFor(spec), cluster.PentiumIII1GHz(), pmd.ResilientConfig{
		Config: pmd.Config{
			System:     sys,
			MD:         mdCfg,
			Steps:      spec.Steps,
			Middleware: middleware(spec.MW),
			Decomp:     dk,
			Perf:       tl,
			OnStep:     onStep,
		},
		CheckpointEvery: 1,
		CheckpointDir:   ckptDir,
		Preempt:         preempt,
	})
	if err != nil {
		var resumed *pmd.ResumeInfo
		if res != nil {
			resumed = res.Resumed
		}
		return nil, nil, resumed, err
	}

	var p runPayload
	p.Kind = string(KindRun)
	p.Atoms, p.Steps, p.P = spec.Atoms, spec.Steps, res.Ranks
	last := res.Energies[len(res.Energies)-1]
	p.Energy.Classic = last.Classic()
	p.Energy.PME = last.PME()
	p.Energy.Kinetic = last.Kinetic
	p.Energy.Total = last.Total()
	p.FinalPosSHA256 = posDigest(res.Final.FinalPos)
	buf, merr := json.Marshal(p)
	if merr != nil {
		return nil, nil, res.Resumed, Errf(KindInternal, "marshal run payload: %v", merr)
	}
	prof, perr := res.Profile(tl).Encode()
	if perr != nil {
		prof = nil // provenance only; never fail the job over it
	}
	return buf, prof, res.Resumed, nil
}

// sweepPayload is the result of a KindSweep job: the same short run
// compared across interconnects, in the paper's comp/comm/sync split
// (virtual seconds, deterministic).
type sweepPayload struct {
	Kind string `json:"kind"`
	Rows []struct {
		Net  string  `json:"net"`
		Wall float64 `json:"wall_s"`
		Comp float64 `json:"comp_s"`
		Comm float64 `json:"comm_s"`
		Sync float64 `json:"sync_s"`
	} `json:"rows"`
}

func (e *Env) execSweep(spec JobSpec) ([]byte, error) {
	sys, mdCfg := e.system(spec.Atoms, spec.Seed)
	dk, derr := decompFor(spec, mdCfg)
	if derr != nil {
		return nil, derr
	}
	var p sweepPayload
	p.Kind = string(KindSweep)
	for _, name := range spec.Nets {
		net, _ := netmodel.ByName(name)
		cl := cluster.Config{
			Nodes: spec.Procs / spec.CPUs, CPUsPerNode: spec.CPUs, Net: net, Seed: spec.Seed,
		}
		res, err := pmd.Run(cl, cluster.PentiumIII1GHz(), pmd.Config{
			System:     sys,
			MD:         mdCfg,
			Steps:      spec.Steps,
			Middleware: middleware(spec.MW),
			Decomp:     dk,
		})
		if err != nil {
			return nil, Errf(KindInternal, "sweep %s: %v", name, err)
		}
		row := struct {
			Net  string  `json:"net"`
			Wall float64 `json:"wall_s"`
			Comp float64 `json:"comp_s"`
			Comm float64 `json:"comm_s"`
			Sync float64 `json:"sync_s"`
		}{Net: name, Wall: res.Wall}
		for _, a := range res.Acct {
			row.Comp += a.Comp
			row.Comm += a.Comm
			row.Sync += a.Sync
		}
		p.Rows = append(p.Rows, row)
	}
	buf, err := json.Marshal(p)
	if err != nil {
		return nil, Errf(KindInternal, "marshal sweep payload: %v", err)
	}
	return buf, nil
}

// analysisPayload is the result of a KindAnalysis job.
type analysisPayload struct {
	Kind       string    `json:"kind"`
	Observable string    `json:"observable"`
	R          []float64 `json:"r,omitempty"`   // rdf bin centers (Å)
	G          []float64 `json:"g,omitempty"`   // rdf values
	MSD        []float64 `json:"msd,omitempty"` // per-lag mean square displacement (Å²)
}

func (e *Env) execAnalysis(spec JobSpec) ([]byte, error) {
	sys, mdCfg := e.system(spec.Atoms, spec.Seed)
	eng := md.NewEngine(sys, mdCfg)
	eng.InitVelocities(mdCfg.Temperature, mdCfg.Seed)
	frames := make([][]vec.V, 0, spec.Steps+1)
	frames = append(frames, append([]vec.V(nil), eng.Pos...))
	for s := 0; s < spec.Steps; s++ {
		eng.Step(nil, nil)
		frames = append(frames, append([]vec.V(nil), eng.Pos...))
	}

	names := make([]string, sys.N())
	for i, a := range sys.Atoms {
		names[i] = a.Name
	}
	sel := analysis.SelectByName(names, "OW")

	p := analysisPayload{Kind: string(KindAnalysis), Observable: spec.Observable}
	switch spec.Observable {
	case "rdf":
		rmax := math.Min(6.0, sys.Box.MaxCutoff())
		r, g, err := analysis.RDFFrames(sys.Box, frames, sel, sel, rmax, 0.25)
		if err != nil {
			return nil, Errf(KindInternal, "rdf: %v", err)
		}
		p.R, p.G = r, g
	case "msd":
		msd, err := analysis.MSD(frames, sel)
		if err != nil {
			return nil, Errf(KindInternal, "msd: %v", err)
		}
		p.MSD = msd
	}
	buf, err := json.Marshal(p)
	if err != nil {
		return nil, Errf(KindInternal, "marshal analysis payload: %v", err)
	}
	return buf, nil
}

// execFigure renders one paper figure as CSV bytes. Executions of the
// same study serialize (the Suite's run cache is single-threaded) but
// benefit from its cell cache across jobs.
func (e *Env) execFigure(spec JobSpec) ([]byte, error) {
	ent := e.study(studyCacheKey{quick: spec.Quick, steps: spec.Steps, seed: spec.Seed})
	ent.mu.Lock()
	defer ent.mu.Unlock()
	var buf bytes.Buffer
	if err := ent.study.Figure(spec.Figure, &buf, core.FormatCSV); err != nil {
		return nil, Errf(KindInternal, "figure %s: %v", spec.Figure, err)
	}
	return buf.Bytes(), nil
}

// Execute dispatches spec to its executor. Only KindRun jobs use the
// checkpoint directory, the preempt hook and the step callback, and only
// they return an attribution profile; the other kinds are short and
// atomic.
func (e *Env) Execute(spec JobSpec, ckptDir string, preempt func() bool, onStep StepFunc) (payload, profile []byte, resumed *pmd.ResumeInfo, err error) {
	switch spec.Kind {
	case KindRun:
		return e.ExecRun(spec, ckptDir, preempt, onStep)
	case KindSweep:
		buf, err := e.execSweep(spec)
		return buf, nil, nil, err
	case KindAnalysis:
		buf, err := e.execAnalysis(spec)
		return buf, nil, nil, err
	case KindFigure:
		buf, err := e.execFigure(spec)
		return buf, nil, nil, err
	}
	return nil, nil, nil, Errf(KindInternal, "unknown kind %q", spec.Kind)
}

// ComputeReference computes spec's result directly, outside any server —
// the ground truth the chaos harness compares served bytes against. The
// spec is normalized first; the computation never touches disk.
func (e *Env) ComputeReference(spec JobSpec) ([]byte, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	buf, _, _, err := e.Execute(spec, "", nil, nil)
	return buf, err
}

// errIsPreempted reports whether err is the graceful-preemption sentinel.
func errIsPreempted(err error) bool { return errors.Is(err, pmd.ErrPreempted) }
