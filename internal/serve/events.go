package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/md"
	"repro/internal/pmd"
)

// SSE event types emitted on /v1/jobs/<id>/events. Step and terminal
// events carry deterministic ids (step N → id N+1; the terminal event is
// always id spec.Steps+1, above every possible step id), so a client that
// reconnects with Last-Event-ID resumes exactly where it left off — even
// across a server crash, because a reopened server re-derives the same
// ids while it recomputes the identical steps. Progress events and
// heartbeats carry no id: they describe this process's lifecycle, not the
// job's deterministic content, and are never replayed.
const (
	EventProgress = "progress"
	EventStep     = "step"
)

// event is one buffered or broadcast SSE frame. id 0 means "no id".
type event struct {
	id   int
	typ  string
	data []byte
}

// stepEventData is the JSON payload of a step event: the step's energy
// decomposition plus the classic/PME phase split of its virtual wall
// time — the live view of the same numbers the attribution profiler
// aggregates after the run.
type stepEventData struct {
	Step     int     `json:"step"`
	Total    float64 `json:"total"`
	Classic  float64 `json:"classic"`
	PME      float64 `json:"pme"`
	Kinetic  float64 `json:"kinetic"`
	ClassicS float64 `json:"classic_wall_s"`
	PMES     float64 `json:"pme_wall_s"`
}

// progressEventData is the JSON payload of a progress event.
type progressEventData struct {
	Status     string `json:"status"`
	Attempts   int    `json:"attempts,omitempty"`
	ResumeStep int    `json:"resume_step,omitempty"`
}

// eventHub fans one job's event stream out to any number of SSE
// subscribers. Id-carrying events (steps, terminal) are buffered for
// Last-Event-ID replay; the buffer is bounded by the spec's step cap.
// Rewound steps re-fire from the engine after a rank crash; the hub's
// monotone filter drops them so subscribers see each step exactly once
// and strictly in order.
type eventHub struct {
	mu       sync.Mutex
	events   []event            // id-carrying only, ascending ids
	lastStep int                // newest step broadcast, -1 before the first
	closed   bool               // terminal event emitted
	subs     map[chan event]int // value: the subscriber's Last-Event-ID
}

func newEventHub() *eventHub {
	return &eventHub{lastStep: -1, subs: map[chan event]int{}}
}

// broadcast delivers e to every live subscriber without blocking: a
// subscriber whose buffer is full misses the frame and recovers it on
// reconnect from the replay buffer. Id-carrying events at or below a
// subscriber's Last-Event-ID are skipped — after a crash the reopened
// server recomputes (and re-publishes) steps the client already has.
func (h *eventHub) broadcast(e event) {
	for ch, lastID := range h.subs {
		if e.id > 0 && e.id <= lastID {
			continue
		}
		select {
		case ch <- e:
		default:
		}
	}
}

// step publishes one completed MD step. Steps arriving out of monotone
// order (checkpoint-rewind replays) are dropped.
func (h *eventHub) step(step int, timing pmd.StepTiming, energy md.EnergyReport) {
	data, err := json.Marshal(stepEventData{
		Step:     step,
		Total:    energy.Total(),
		Classic:  energy.Classic(),
		PME:      energy.PME(),
		Kinetic:  energy.Kinetic,
		ClassicS: timing.Classic.Wall,
		PMES:     timing.PME.Wall,
	})
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || step <= h.lastStep {
		return
	}
	h.lastStep = step
	e := event{id: step + 1, typ: EventStep, data: data}
	h.events = append(h.events, e)
	h.broadcast(e)
}

// progress publishes a lifecycle transition (queued, running, parked, …).
// Not buffered, not replayed.
func (h *eventHub) progress(status string, attempts, resumeStep int) {
	data, err := json.Marshal(progressEventData{
		Status: status, Attempts: attempts, ResumeStep: resumeStep,
	})
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.broadcast(event{typ: EventProgress, data: data})
}

// terminal publishes the job's single terminal event and closes the hub:
// every subscriber channel is closed after the frame so streams end. The
// event type is the terminal status; for a done run the data is the exact
// result payload the polling endpoint serves.
func (h *eventHub) terminal(id int, status string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	e := event{id: id, typ: status, data: data}
	h.events = append(h.events, e)
	h.broadcast(e)
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// subscribe registers a stream resuming after lastID: buffered events
// with greater ids are returned for immediate replay, and live events
// follow on the channel. ch is nil when the hub is already closed — the
// replay then already ends with the terminal event (or is empty if the
// client saw it). cancel is safe to call in every case.
func (h *eventHub) subscribe(lastID int) (replay []event, ch chan event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.events {
		if e.id > lastID {
			replay = append(replay, e)
		}
	}
	if h.closed {
		return replay, nil, func() {}
	}
	ch = make(chan event, 1024)
	h.subs[ch] = lastID
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// writeSSE renders one frame in text/event-stream format. Multi-line data
// is split over data: lines per the SSE spec (a consumer joins them with
// a single newline).
func writeSSE(w io.Writer, e event) {
	if e.id > 0 {
		fmt.Fprintf(w, "id: %d\n", e.id)
	}
	fmt.Fprintf(w, "event: %s\n", e.typ)
	for _, line := range strings.Split(string(e.data), "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	fmt.Fprint(w, "\n")
}
