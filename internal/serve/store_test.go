package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func newTestStore(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir(), maxBytes, obs.NewRegistry())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := newTestStore(t, 1<<20)
	key := "serve/v1 run atoms=48 steps=2 seed=1 p=4 cpus=1 net=tcp mw=mpi"
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get("serve/v1 run atoms=49 steps=2 seed=1 p=4 cpus=1 net=tcp mw=mpi"); ok {
		t.Fatal("Get of absent key hit")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1<<20, obs.NewRegistry())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s2, err := OpenStore(dir, 1<<20, obs.NewRegistry())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok := s2.Get("k1")
	if !ok || string(got) != "v1" {
		t.Fatalf("after reopen Get = %q, %v; want v1, true", got, ok)
	}
}

// mutateStoredFile applies mutate to key's on-disk entry.
func mutateStoredFile(t *testing.T, s *Store, key string, mutate func([]byte) []byte) {
	t.Helper()
	path := s.path(JobID(key))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stored file: %v", err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatalf("write mutated file: %v", err)
	}
}

// TestStoreCorruptionMatrix is the satellite corruption matrix: every way
// an entry can be damaged must read as a miss (with the damaged file
// deleted so recomputation heals it) — never as wrong bytes.
func TestStoreCorruptionMatrix(t *testing.T) {
	key := "serve/v1 analysis atoms=48 steps=2 seed=1 obs=rdf"
	payload := []byte(`{"kind":"analysis","g":[1,2,3]}`)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:8] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"flipped-payload-bit", func(b []byte) []byte {
			b[len(b)-8] ^= 0x10 // inside the payload region
			return b
		}},
		{"flipped-crc", func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}},
		{"bad-magic", func(b []byte) []byte {
			copy(b, "NOPE")
			return b
		}},
		{"future-version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], storeVersion+1)
			return b
		}},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAB, 0xCD) }},
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestStore(t, 1<<20)
			if err := s.Put(key, payload); err != nil {
				t.Fatalf("Put: %v", err)
			}
			mutateStoredFile(t, s, key, tc.mutate)
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if _, err := os.Stat(s.path(JobID(key))); !os.IsNotExist(err) {
				t.Fatalf("damaged file not deleted: stat err = %v", err)
			}
			// The slot heals: a fresh Put round-trips again.
			if err := s.Put(key, payload); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed Get = %q, %v", got, ok)
			}
		})
	}
}

// TestStoreKeyMismatch plants a validly-encoded entry for key A under key
// B's filename (a renamed or mixed-up file): it must miss, not serve A's
// payload as B's.
func TestStoreKeyMismatch(t *testing.T) {
	s := newTestStore(t, 1<<20)
	keyA, keyB := "serve/v1 figure id=3 steps=2 seed=1 quick=true", "serve/v1 figure id=4 steps=2 seed=1 quick=true"
	if err := s.Put(keyA, []byte("payload-A")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	buf, err := os.ReadFile(s.path(JobID(keyA)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(s.path(JobID(keyB)), buf, 0o644); err != nil {
		t.Fatalf("plant: %v", err)
	}
	if got, ok := s.Get(keyB); ok {
		t.Fatalf("key-mismatched file served: %q", got)
	}
	if got, ok := s.Get(keyA); !ok || string(got) != "payload-A" {
		t.Fatalf("original entry damaged: %q, %v", got, ok)
	}
}

// TestStorePartialRename models a crash between temp-write and rename:
// the .tmp debris must be swept on reopen and never served.
func TestStorePartialRename(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1<<20, obs.NewRegistry())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	key := "serve/v1 sweep atoms=48 steps=2 seed=1 p=4 cpus=1 nets=tcp mw=mpi"
	id := JobID(key)
	debris := filepath.Join(dir, id+"-12345.tmp")
	if err := os.WriteFile(debris, encode(key, []byte("half-written"))[:10], 0o644); err != nil {
		t.Fatalf("plant debris: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("tmp debris served as a result")
	}
	s2, err := OpenStore(dir, 1<<20, obs.NewRegistry())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("reopen did not sweep tmp debris: %v", err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("swept debris served as a result")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// Each entry is ~4+4+4+3+8+64+4 = 91 bytes; cap at 3 entries' worth.
	s := newTestStore(t, 280)
	pay := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), pay); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Touch k00 so k01 becomes the LRU victim.
	if _, ok := s.Get("k00"); !ok {
		t.Fatal("k00 missing before eviction")
	}
	if err := s.Put("k03", pay); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, ok := s.Get("k01"); ok {
		t.Fatal("LRU victim k01 still resident")
	}
	for _, k := range []string{"k00", "k02", "k03"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	if s.Bytes() > 280 {
		t.Fatalf("store over budget: %d bytes", s.Bytes())
	}
}

// TestStoreEvictionRacingReads hammers a tiny store with concurrent
// writers and readers: under constant eviction every Get must return
// either the exact payload for its key or a miss — never another key's
// bytes and never a partial write.
func TestStoreEvictionRacingReads(t *testing.T) {
	s := newTestStore(t, 600) // room for only a handful of entries
	payloadFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i%16)}, 48+i%7)
	}
	keyFor := func(i int) string { return fmt.Sprintf("race-key-%02d", i%24) }

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				n := (w*150 + i) % 24
				if err := s.Put(keyFor(n), payloadFor(n)); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(w)
	}
	errs := make(chan string, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := (r*300 + i) % 24
				got, ok := s.Get(keyFor(n))
				if ok && !bytes.Equal(got, payloadFor(n)) {
					select {
					case errs <- fmt.Sprintf("key %s served wrong bytes %q", keyFor(n), got):
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s.Bytes() > 600 {
		t.Fatalf("store over budget after race: %d bytes", s.Bytes())
	}
}
