package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
)

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	id   int
	typ  string
	data string
}

// parseSSEStream decodes frames from r until EOF, emitting each as soon
// as its blank-line delimiter arrives. Heartbeat comments are dropped;
// multi-line data is rejoined with newlines per the SSE spec.
func parseSSEStream(r io.Reader, emit func(sseEvent)) {
	var cur sseEvent
	var dataLines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" || len(dataLines) > 0 {
				cur.data = strings.Join(dataLines, "\n")
				emit(cur)
			}
			cur, dataLines = sseEvent{}, nil
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			dataLines = append(dataLines, strings.TrimPrefix(line, "data: "))
		}
	}
}

// parseSSE collects every frame from r until EOF.
func parseSSE(r io.Reader) []sseEvent {
	var out []sseEvent
	parseSSEStream(r, func(e sseEvent) { out = append(out, e) })
	return out
}

// streamEvents opens the job's SSE stream (resuming after lastID when
// > 0) and reads it to EOF — the server ends the stream after the
// terminal event.
func streamEvents(t *testing.T, base, id string, lastID int) []sseEvent {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET events: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	return parseSSE(resp.Body)
}

// checkStepInvariants asserts the stream contract over evs: step events
// strictly monotone in step with id = step+1, all ids ascending, and
// exactly one terminal event, which comes last. Returns the terminal.
func checkStepInvariants(t *testing.T, evs []sseEvent) sseEvent {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	lastStep, lastID, terminals := -1, 0, 0
	var term sseEvent
	for i, e := range evs {
		if e.id > 0 {
			if e.id <= lastID {
				t.Fatalf("event ids not ascending: %d after %d", e.id, lastID)
			}
			lastID = e.id
		}
		switch e.typ {
		case EventStep:
			var sd stepEventData
			if err := json.Unmarshal([]byte(e.data), &sd); err != nil {
				t.Fatalf("step event data: %v (%q)", err, e.data)
			}
			if sd.Step <= lastStep {
				t.Fatalf("steps not monotone: %d after %d", sd.Step, lastStep)
			}
			if e.id != sd.Step+1 {
				t.Fatalf("step %d carries id %d, want %d", sd.Step, e.id, sd.Step+1)
			}
			if sd.ClassicS <= 0 {
				t.Fatalf("step %d: empty phase split", sd.Step)
			}
			lastStep = sd.Step
		case EventProgress:
		case StatusDone, StatusFailed, StatusCanceled:
			terminals++
			term = e
			if i != len(evs)-1 {
				t.Fatalf("terminal event %q not last (%d/%d)", e.typ, i, len(evs))
			}
		default:
			t.Fatalf("unknown event type %q", e.typ)
		}
	}
	if terminals != 1 {
		t.Fatalf("got %d terminal events, want exactly 1", terminals)
	}
	return term
}

// TestServeEventsStreamAndProfile: the live SSE stream delivers every
// step exactly once and a terminal event byte-identical to the polling
// result; late subscribers replay the same story from the hub buffer; and
// the profile endpoint serves a valid attribution profile whose buckets
// sum to its wall.
func TestServeEventsStreamAndProfile(t *testing.T) {
	_, base := testServer(t, nil)
	spec := runSpec(3)

	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	// Live subscription opened while the job is queued or running.
	evs := streamEvents(t, base, jr.ID, 0)
	term := checkStepInvariants(t, evs)
	if term.typ != StatusDone {
		t.Fatalf("terminal event %q, want done", term.typ)
	}
	steps := 0
	for _, e := range evs {
		if e.typ == EventStep {
			steps++
		}
	}
	if steps != spec.Steps {
		t.Fatalf("stream delivered %d step events, want %d", steps, spec.Steps)
	}

	polled := getResult(t, base, jr.ID)
	if !bytes.Equal([]byte(term.data), polled) {
		t.Fatalf("terminal data differs from polled result:\n sse  %s\n poll %s", term.data, polled)
	}

	// A subscriber arriving after completion replays the identical
	// id-carrying events from the buffer.
	replay := streamEvents(t, base, jr.ID, 0)
	rterm := checkStepInvariants(t, replay)
	if rterm.data != term.data || rterm.id != term.id {
		t.Fatal("late replay's terminal differs from the live stream's")
	}
	// Resuming from the terminal id yields nothing: the client saw it all.
	if rest := streamEvents(t, base, jr.ID, term.id); len(rest) != 0 {
		t.Fatalf("resume past terminal replayed %d events", len(rest))
	}
	// Resuming mid-stream replays only what follows.
	tail := streamEvents(t, base, jr.ID, 2)
	for _, e := range tail {
		if e.id <= 2 {
			t.Fatalf("resume after id 2 replayed id %d", e.id)
		}
	}

	// The stored attribution profile: parses under the versioned schema,
	// ranks match the spec, buckets sum to the wall.
	resp, err := http.Get(base + "/v1/jobs/" + jr.ID + "/profile")
	if err != nil {
		t.Fatalf("GET profile: %v", err)
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET profile: %d %s", resp.StatusCode, buf)
	}
	prof, err := perf.Parse(buf)
	if err != nil {
		t.Fatalf("parse profile: %v", err)
	}
	if prof.Ranks != spec.Procs || prof.Steps != spec.Steps {
		t.Fatalf("profile shape: ranks=%d steps=%d", prof.Ranks, prof.Steps)
	}
	if sum, wall := prof.Attribution.Sum(), prof.WallSeconds; wall <= 0 || sum < 0.99*wall || sum > 1.01*wall {
		t.Fatalf("profile identity: buckets %g, wall %g", sum, wall)
	}
	if len(prof.Collectives) == 0 {
		t.Fatal("served profile recorded no collectives")
	}
}

// TestServeEventsResumeAcrossCrash: a client that loses its stream to a
// server crash reconnects to the reopened server with Last-Event-ID and
// sees the story continue — ids ascending across the two lives, steps
// monotone, exactly one terminal event, and terminal bytes identical to
// an uninterrupted computation.
func TestServeEventsResumeAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.Workers = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	base := "http://" + s.Addr()

	// Big enough that 96 steps take seconds: the crash must land mid-run,
	// after the stream has delivered a few steps but well before terminal.
	spec := JobSpec{Kind: KindRun, Atoms: 720, Steps: 96, Procs: 4}
	code, jr, _ := postJob(t, base, "alice", spec, 0)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// Stream live; the reader drains until Abort cuts the connection.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jr.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	var mu sync.Mutex
	var before []sseEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		parseSSEStream(resp.Body, func(e sseEvent) {
			mu.Lock()
			before = append(before, e)
			mu.Unlock()
		})
	}()
	stepsSeen := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, e := range before {
			if e.typ == EventStep {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(60 * time.Second)
	for stepsSeen() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("no step events before crash")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.Abort()
	<-done
	resp.Body.Close()

	mu.Lock()
	lastID := 0
	lastStep := -1
	for _, e := range before {
		if e.id > lastID {
			lastID = e.id
		}
		if e.typ == EventStep {
			var sd stepEventData
			if err := json.Unmarshal([]byte(e.data), &sd); err != nil {
				t.Fatalf("pre-crash step data: %v", err)
			}
			if sd.Step <= lastStep {
				t.Fatalf("pre-crash steps not monotone: %d after %d", sd.Step, lastStep)
			}
			lastStep = sd.Step
		}
		if e.typ == StatusDone || e.typ == StatusFailed {
			t.Fatalf("terminal event %q before the crash", e.typ)
		}
	}
	mu.Unlock()

	s2, err := Open(testConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close(context.Background())
	base2 := "http://" + s2.Addr()

	after := streamEvents(t, base2, jr.ID, lastID)
	term := checkStepInvariants(t, after)
	if term.typ != StatusDone {
		t.Fatalf("post-crash terminal %q", term.typ)
	}
	for _, e := range after {
		if e.id > 0 && e.id <= lastID {
			t.Fatalf("resumed stream replayed id %d ≤ Last-Event-ID %d", e.id, lastID)
		}
	}

	want, err := NewEnv().ComputeReference(spec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if term.data != string(want) {
		t.Fatalf("terminal bytes differ from uninterrupted computation:\n sse %s\n ref %s", term.data, want)
	}
	if !bytes.Equal(getResult(t, base2, jr.ID), want) {
		t.Fatal("polled result differs from reference after crash")
	}
}

// TestServeEventsHeartbeatAndProfileRouting: heartbeats flow while a job
// is stalled on a worker; profile requests for non-run jobs are 400 and
// for unfinished jobs 409.
func TestServeEventsHeartbeatAndProfileRouting(t *testing.T) {
	fault, release := blockingFault(KindRun)
	_, base := testServer(t, func(c *Config) {
		c.Workers = 2
		c.EventHeartbeat = 20 * time.Millisecond
		c.FaultInject = fault
	})

	code, jrRun, _ := postJob(t, base, "alice", runSpec(2), 0)
	if code != http.StatusAccepted {
		t.Fatalf("run submit = %d", code)
	}

	// While the run is held by the fault gate, the stream carries only
	// comments — read raw bytes long enough to catch a few.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jrRun.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	readCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 512)
		var acc []byte
		for !strings.Contains(string(acc), ": hb") {
			n, err := resp.Body.Read(buf)
			acc = append(acc, buf[:n]...)
			if err != nil {
				break
			}
		}
		readCh <- string(acc)
	}()
	var got string
	select {
	case got = <-readCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat within 5s")
	}
	if !strings.Contains(got, ": hb") {
		t.Fatalf("expected heartbeat comments, got %q", got)
	}

	// Unfinished run: profile is a 409 conflict with the live status.
	pr, err := http.Get(base + "/v1/jobs/" + jrRun.ID + "/profile")
	if err != nil {
		t.Fatalf("GET profile: %v", err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished profile = %d, want 409", pr.StatusCode)
	}

	close(release)
	resp.Body.Close()
	waitStatus(t, base, jrRun.ID, StatusDone, 60*time.Second)

	// Non-run kinds have no profile: 400, not 404/409.
	code, jrA, _ := postJob(t, base, "bob", analysisSpec(), 0)
	if code != http.StatusAccepted {
		t.Fatalf("analysis submit = %d", code)
	}
	waitStatus(t, base, jrA.ID, StatusDone, 60*time.Second)
	pr, err = http.Get(base + "/v1/jobs/" + jrA.ID + "/profile")
	if err != nil {
		t.Fatalf("GET analysis profile: %v", err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusBadRequest {
		t.Fatalf("analysis profile = %d, want 400", pr.StatusCode)
	}

	// Malformed Last-Event-ID is rejected before streaming starts.
	req2, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jrA.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", "bogus")
	r2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("GET bad Last-Event-ID: %v", err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID = %d, want 400", r2.StatusCode)
	}
}
