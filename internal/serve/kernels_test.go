package serve

import (
	"bytes"
	"testing"
)

// Serve-level face of the kernel determinism contract: the same job spec
// computes byte-identical results at every KernelWorkers ≥ 1.
func TestEnvKernelWorkersBitwiseStable(t *testing.T) {
	spec := JobSpec{Kind: KindRun, Atoms: 200, Steps: 2, Seed: 3, Procs: 2}

	refAt := func(kw int) []byte {
		env := NewEnv()
		env.KernelWorkers = kw
		buf, err := env.ComputeReference(spec)
		if err != nil {
			t.Fatalf("kernel-workers %d: %v", kw, err)
		}
		return buf
	}
	want := refAt(1)
	for _, kw := range []int{2, 4} {
		if got := refAt(kw); !bytes.Equal(got, want) {
			t.Fatalf("kernel-workers %d result differs:\n%s\nvs\n%s", kw, got, want)
		}
	}
}

// Negative KernelWorkers in the server config is clamped to 0 (legacy
// serial kernels) rather than rejected.
func TestConfigKernelWorkersClamped(t *testing.T) {
	c := Config{StateDir: "x", KernelWorkers: -3}
	if got := c.withDefaults().KernelWorkers; got != 0 {
		t.Fatalf("negative KernelWorkers → %d, want 0", got)
	}
}
