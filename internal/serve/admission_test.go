package serve

import (
	"errors"
	"testing"
	"time"
)

func qJob(tenant string, cost float64) *jobState {
	// Analysis cost = atoms*steps/1e3; pick atoms to land the wanted cost.
	spec := JobSpec{Kind: KindAnalysis, Atoms: int(cost * 1e3), Steps: 1, Seed: 1, Observable: "rdf"}
	return &jobState{id: tenant + "-j", tenant: tenant, spec: spec}
}

// TestFairQueueWeightedSharing: a tenant that bursts ten jobs ahead of a
// light tenant must not starve it — the light tenant's single later job
// is tagged near vnow and dequeues before the burst drains.
func TestFairQueueWeightedSharing(t *testing.T) {
	q := newFairQueue(100, nil)
	for i := 0; i < 10; i++ {
		if err := q.enqueue("heavy", qJob("heavy", 1), false); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if err := q.enqueue("light", qJob("light", 1), false); err != nil {
		t.Fatalf("enqueue light: %v", err)
	}
	var order []string
	for i := 0; i < 11; i++ {
		j, ok := q.next()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, j.tenant)
	}
	pos := -1
	for i, tn := range order {
		if tn == "light" {
			pos = i
		}
	}
	// heavy's first job may have dequeued first (it was tagged when vnow
	// was 0) but light must beat the bulk of the backlog.
	if pos < 0 || pos > 2 {
		t.Fatalf("light tenant served at position %d of %v, want within the first 3", pos, order)
	}
}

// TestFairQueueWeights: with weight 2 vs 1 and equal-cost backlogs, the
// heavier-weighted tenant gets roughly two slots for every one.
func TestFairQueueWeights(t *testing.T) {
	q := newFairQueue(100, map[string]float64{"gold": 2, "bronze": 1})
	for i := 0; i < 8; i++ {
		if err := q.enqueue("gold", qJob("gold", 1), false); err != nil {
			t.Fatal(err)
		}
		if err := q.enqueue("bronze", qJob("bronze", 1), false); err != nil {
			t.Fatal(err)
		}
	}
	gold := 0
	for i := 0; i < 6; i++ {
		j, _ := q.next()
		if j.tenant == "gold" {
			gold++
		}
	}
	if gold < 4 {
		t.Fatalf("gold got %d of the first 6 slots, want >= 4 (weight 2:1)", gold)
	}
}

func TestFairQueueShedAndForce(t *testing.T) {
	q := newFairQueue(2, nil)
	if err := q.enqueue("t", qJob("t", 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.enqueue("t", qJob("t", 1), false); err != nil {
		t.Fatal(err)
	}
	err := q.enqueue("t", qJob("t", 1), false)
	var shed *errShed
	if !errors.As(err, &shed) {
		t.Fatalf("third enqueue err = %v, want *errShed", err)
	}
	if shed.retryAfterSec < 1 {
		t.Fatalf("Retry-After hint %d, want >= 1", shed.retryAfterSec)
	}
	// Depth bounds are per-tenant: another tenant still gets in.
	if err := q.enqueue("other", qJob("other", 1), false); err != nil {
		t.Fatalf("other tenant shed by t's backlog: %v", err)
	}
	// force (journal replay) bypasses both the bound and closed.
	if err := q.enqueue("t", qJob("t", 1), true); err != nil {
		t.Fatalf("forced enqueue: %v", err)
	}
	q.close()
	if err := q.enqueue("t", qJob("t", 1), false); err == nil {
		t.Fatal("enqueue after close accepted")
	}
	if err := q.enqueue("t", qJob("t", 1), true); err != nil {
		t.Fatalf("forced enqueue after close: %v", err)
	}
}

func TestFairQueueRequeueFrontAndDrain(t *testing.T) {
	q := newFairQueue(10, nil)
	a, b := qJob("t", 1), qJob("t", 1)
	a.id, b.id = "a", "b"
	if err := q.enqueue("t", a, false); err != nil {
		t.Fatal(err)
	}
	if err := q.enqueue("t", b, false); err != nil {
		t.Fatal(err)
	}
	got, _ := q.next()
	if got.id != "a" {
		t.Fatalf("first dequeue %s, want a", got.id)
	}
	q.requeueFront("t", got)
	got2, _ := q.next()
	if got2.id != "a" {
		t.Fatalf("after requeueFront dequeue %s, want a (head of line)", got2.id)
	}
	q.close()
	left := q.drain()
	if len(left) != 1 || left[0].id != "b" {
		t.Fatalf("drain = %v, want [b]", left)
	}
	if d := q.depths()["t"]; d != 0 {
		t.Fatalf("depth after drain = %d, want 0", d)
	}
	// Workers see closure once the backlog is gone.
	done := make(chan struct{})
	go func() {
		if _, ok := q.next(); ok {
			t.Error("next returned a job after close+drain")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("next did not observe close")
	}
}
