package serve

import (
	"errors"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := JobSpec{Kind: KindRun}
	if err := s.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if s.Atoms != 120 || s.Steps != 4 || s.Seed != 1 || s.Procs != 4 || s.CPUs != 1 || s.Net != "tcp" || s.MW != "mpi" || s.Decomp != "replicated" {
		t.Fatalf("defaults wrong: %+v", s)
	}

	sw := JobSpec{Kind: KindSweep}
	if err := sw.Normalize(); err != nil {
		t.Fatalf("Normalize sweep: %v", err)
	}
	if len(sw.Nets) < 2 {
		t.Fatalf("sweep nets not defaulted: %v", sw.Nets)
	}

	an := JobSpec{Kind: KindAnalysis}
	if err := an.Normalize(); err != nil {
		t.Fatalf("Normalize analysis: %v", err)
	}
	if an.Observable != "rdf" {
		t.Fatalf("observable = %q, want rdf", an.Observable)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		frag string
	}{
		{"unknown-kind", JobSpec{Kind: "banana"}, "kind must be"},
		{"atoms-low", JobSpec{Kind: KindRun, Atoms: 5}, "atoms must be"},
		{"steps-high", JobSpec{Kind: KindRun, Steps: 10_000}, "steps must be"},
		{"bad-cpus", JobSpec{Kind: KindRun, CPUs: 3, Procs: 6}, "cpus must be"},
		{"procs-odd", JobSpec{Kind: KindRun, CPUs: 2, Procs: 7}, "procs must be"},
		{"bad-net", JobSpec{Kind: KindRun, Net: "carrier-pigeon"}, "unknown net"},
		{"bad-mw", JobSpec{Kind: KindRun, MW: "smoke-signals"}, "mw must be"},
		{"bad-decomp", JobSpec{Kind: KindRun, Decomp: "astral"}, "decomp must be"},
		{"bad-sweep-net", JobSpec{Kind: KindSweep, Nets: []string{"tcp", "nope"}}, "unknown net"},
		{"bad-observable", JobSpec{Kind: KindAnalysis, Observable: "vibes"}, "observable must be"},
		{"figure-missing", JobSpec{Kind: KindFigure}, "figure id is required"},
		{"figure-diagram", JobSpec{Kind: KindFigure, Figure: "1"}, "minus the diagrams"},
		{"figure-unknown", JobSpec{Kind: KindFigure, Figure: "99"}, "figure must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted", tc.spec)
			}
			var je *JobError
			if !errors.As(err, &je) || je.Kind != KindBadRequest {
				t.Fatalf("error = %v, want KindBadRequest JobError", err)
			}
			if !strings.Contains(je.Msg, tc.frag) {
				t.Fatalf("message %q missing %q", je.Msg, tc.frag)
			}
		})
	}
}

// TestSpecKeyGolden pins the canonical key renderings: any change here is
// a format break that must come with a SpecKeyVersion bump, or stored
// results from the old scheme could be served for new-scheme requests.
func TestSpecKeyGolden(t *testing.T) {
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Kind: KindRun}, "serve/v2 run atoms=120 steps=4 seed=1 p=4 cpus=1 net=tcp mw=mpi decomp=replicated"},
		{JobSpec{Kind: KindRun, Decomp: "domain"},
			"serve/v2 run atoms=120 steps=4 seed=1 p=4 cpus=1 net=tcp mw=mpi decomp=domain"},
		{JobSpec{Kind: KindAnalysis, Atoms: 48, Steps: 2, Observable: "msd"},
			"serve/v2 analysis atoms=48 steps=2 seed=1 obs=msd"},
		{JobSpec{Kind: KindFigure, Figure: "3", Quick: true, Steps: 2, Seed: 7},
			"serve/v2 figure id=3 quick=true steps=2 seed=7"},
	}
	for _, tc := range cases {
		s := tc.spec
		if err := s.Normalize(); err != nil {
			t.Fatalf("Normalize: %v", err)
		}
		if got := s.Key(); got != tc.want {
			t.Errorf("Key(%+v)\n got  %q\n want %q", tc.spec, got, tc.want)
		}
	}
}

// TestSpecKeyExcludesHostKnobs: tenant, deadline and other host-side
// settings live outside JobSpec entirely, so two tenants asking for the
// same physics share one key — the property that makes cross-tenant
// coalescing and the shared store sound. Differing physics must differ.
func TestSpecKeyDiscriminates(t *testing.T) {
	base := JobSpec{Kind: KindRun, Atoms: 48, Steps: 2}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	variants := []func(*JobSpec){
		func(s *JobSpec) { s.Atoms = 72 },
		func(s *JobSpec) { s.Steps = 3 },
		func(s *JobSpec) { s.Seed = 2 },
		func(s *JobSpec) { s.Procs = 8 },
		func(s *JobSpec) { s.Net = "myrinet" },
		func(s *JobSpec) { s.MW = "cmpi" },
		func(s *JobSpec) { s.Decomp = "domain" },
	}
	seen := map[string]bool{base.Key(): true}
	for i, mod := range variants {
		s := base
		mod(&s)
		if err := s.Normalize(); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		k := s.Key()
		if seen[k] {
			t.Errorf("variant %d collides: %q", i, k)
		}
		seen[k] = true
	}
	if id := JobID(base.Key()); len(id) != 64 {
		t.Fatalf("JobID length = %d, want 64 hex chars", len(id))
	}
}

// TestExecRejectsUntileableDecomp: the tiling check depends on the job's
// actual PME mesh (12³ for the 120-atom default box), so it happens at
// execution time — and surfaces as the client's fault, not the server's.
func TestExecRejectsUntileableDecomp(t *testing.T) {
	e := NewEnv()
	spec := JobSpec{Kind: KindRun, Procs: 16} // replicated, K1=12 < 16 slabs
	if _, err := e.ComputeReference(spec); err == nil {
		t.Fatal("16 replicated ranks accepted on a 12-slab mesh")
	} else {
		var je *JobError
		if !errors.As(err, &je) || je.Kind != KindBadRequest {
			t.Fatalf("error = %v, want KindBadRequest", err)
		}
		if !strings.Contains(je.Msg, "K1=12") {
			t.Fatalf("error %q does not name the violated mesh constraint", je.Msg)
		}
	}
	// The same rank count tiles as a 4×4 pencil grid under domain.
	if _, err := e.ComputeReference(JobSpec{Kind: KindRun, Procs: 16, Decomp: "domain"}); err != nil {
		t.Fatalf("16 domain ranks rejected: %v", err)
	}
}

func TestErrorKindRetryable(t *testing.T) {
	retryable := map[ErrorKind]bool{
		KindBadRequest: false, KindOverloaded: false, KindCanceled: false,
		KindDeadline: false, KindWorkerCrash: true, KindTransient: true,
		KindInternal: false,
	}
	for kind, want := range retryable {
		if got := kind.Retryable(); got != want {
			t.Errorf("%s.Retryable() = %v, want %v", kind, got, want)
		}
	}
}
