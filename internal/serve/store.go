package serve

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Store file format (little-endian), one result per file named by the
// hex SHA-256 of the canonical key:
//
//	[4]byte  magic "MDRS"
//	uint32   format version (storeVersion)
//	uint32   len(key), followed by the canonical key bytes
//	uint64   len(payload), followed by the payload bytes
//	uint32   CRC-32C (Castagnoli) over everything above
//
// Writes are atomic (temp file + fsync + rename, the same discipline as
// the MDCP checkpoint ring); reads validate magic, version, key and CRC
// and treat ANY mismatch as a miss, deleting the damaged file so the
// entry is recomputed. The store can serve stale-but-correct bytes after
// eviction races (a miss), never corrupt ones.
const (
	storeMagic   = "MDRS"
	storeVersion = 1
)

var storeCRC = crc32.MakeTable(crc32.Castagnoli)

// Store is the disk-backed content-addressed result store: bounded in
// bytes with least-recently-used eviction, safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu   sync.Mutex
	lru  *list.List               // front = most recently used
	idx  map[string]*list.Element // id -> lru entry
	size int64

	hits, misses, corrupt, evictions *obs.Counter
	bytes                            *obs.Gauge
}

// lruEntry is one resident result.
type lruEntry struct {
	id   string
	size int64
}

// OpenStore opens (creating if needed) the store rooted at dir. Leftover
// temp files from writes interrupted mid-rename are removed; resident
// entries are indexed by file size and seeded into the LRU in modification
// order. Entries are NOT validated here — validation is lazy, on Get, so
// opening a large store stays cheap and corruption surfaces exactly where
// it can be healed by recomputation.
func OpenStore(dir string, maxBytes int64, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      list.New(),
		idx:      map[string]*list.Element{},
		hits:     reg.Counter("repro_serve_store_hits_total", "result store hits"),
		misses:   reg.Counter("repro_serve_store_misses_total", "result store misses"),
		corrupt:  reg.Counter("repro_serve_store_corrupt_total", "store entries failing validation, deleted"),
		evictions: reg.Counter("repro_serve_store_evictions_total",
			"store entries evicted by the size bound"),
		bytes: reg.Gauge("repro_serve_store_bytes", "resident result store bytes"),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	type seed struct {
		id    string
		size  int64
		mtime int64
	}
	var seeds []seed
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name())) // rename never happened
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{id: e.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime < seeds[j].mtime })
	for _, sd := range seeds {
		s.idx[sd.id] = s.lru.PushFront(&lruEntry{id: sd.id, size: sd.size})
		s.size += sd.size
	}
	s.evict()
	s.bytes.Set(float64(s.size))
	return s, nil
}

// Dir returns the store's root directory (chaos harnesses corrupt files
// under it to prove the CRC protection).
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string { return filepath.Join(s.dir, id) }

// encode renders the store file for (key, payload).
func encode(key string, payload []byte) []byte {
	buf := make([]byte, 0, 4+4+4+len(key)+8+len(payload)+4)
	buf = append(buf, storeMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, storeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, storeCRC))
}

// decode validates a store file and returns its payload; any deviation
// from the format — wrong magic or version, truncation, trailing bytes,
// key mismatch, checksum mismatch — is an error.
func decode(buf []byte, wantKey string) ([]byte, error) {
	if len(buf) < 4+4+4+8+4 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(buf))
	}
	if string(buf[:4]) != storeMagic {
		return nil, fmt.Errorf("bad magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != storeVersion {
		return nil, fmt.Errorf("version %d, want %d", v, storeVersion)
	}
	keyLen := int(binary.LittleEndian.Uint32(buf[8:]))
	if len(buf) < 12+keyLen+8+4 {
		return nil, fmt.Errorf("truncated key (%d bytes for key of %d)", len(buf), keyLen)
	}
	key := string(buf[12 : 12+keyLen])
	if key != wantKey {
		return nil, fmt.Errorf("key mismatch: file holds %q", key)
	}
	off := 12 + keyLen
	payLen := int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if len(buf) != off+payLen+4 {
		return nil, fmt.Errorf("length mismatch: %d bytes, want %d", len(buf), off+payLen+4)
	}
	sum := binary.LittleEndian.Uint32(buf[off+payLen:])
	if got := crc32.Checksum(buf[:off+payLen], storeCRC); got != sum {
		return nil, fmt.Errorf("checksum mismatch: %08x, file says %08x", got, sum)
	}
	return buf[off : off+payLen], nil
}

// Get returns the stored payload for key, or (nil, false) on a miss. A
// resident entry that fails validation is deleted and reported as a miss:
// the caller recomputes, and the recomputation is deterministic, so a
// damaged store can lose work but never serve wrong results.
func (s *Store) Get(key string) ([]byte, bool) {
	id := JobID(key)
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		s.misses.Add(1)
		s.forget(id)
		return nil, false
	}
	payload, err := decode(buf, key)
	if err != nil {
		// Damaged or foreign: remove so the slot heals by recomputation.
		_ = os.Remove(s.path(id))
		s.forget(id)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.idx[id]; ok {
		s.lru.MoveToFront(el)
	} else {
		// Present on disk but unindexed (written by a prior process whose
		// index died with it): adopt.
		s.idx[id] = s.lru.PushFront(&lruEntry{id: id, size: int64(len(buf))})
		s.size += int64(len(buf))
		s.evict()
		s.bytes.Set(float64(s.size))
	}
	s.mu.Unlock()
	s.hits.Add(1)
	return payload, true
}

// Put stores payload under key atomically: the bytes land in a temp file,
// are fsynced, and only then renamed into place — a crash mid-Put leaves
// either the complete old entry or debris that OpenStore removes, never a
// half-written file under the real name.
func (s *Store) Put(key string, payload []byte) error {
	id := JobID(key)
	buf := encode(key, payload)

	tmp, err := os.CreateTemp(s.dir, id+"-*.tmp")
	if err != nil {
		return Errf(KindTransient, "store put: %v", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return Errf(KindTransient, "store put: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Errf(KindTransient, "store put: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return Errf(KindTransient, "store put: %v", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return Errf(KindTransient, "store put: %v", err)
	}

	s.mu.Lock()
	if el, ok := s.idx[id]; ok {
		s.size -= el.Value.(*lruEntry).size
		s.lru.Remove(el)
	}
	s.idx[id] = s.lru.PushFront(&lruEntry{id: id, size: int64(len(buf))})
	s.size += int64(len(buf))
	s.evict()
	s.bytes.Set(float64(s.size))
	s.mu.Unlock()
	return nil
}

// forget drops id from the index (its file is already gone).
func (s *Store) forget(id string) {
	s.mu.Lock()
	if el, ok := s.idx[id]; ok {
		s.size -= el.Value.(*lruEntry).size
		s.lru.Remove(el)
		delete(s.idx, id)
		s.bytes.Set(float64(s.size))
	}
	s.mu.Unlock()
}

// evict removes least-recently-used entries until the store fits its
// bound. Caller holds s.mu. A Get racing the eviction of its entry sees a
// plain miss (the file read fails) and recomputes — correctness never
// depends on residency.
func (s *Store) evict() {
	if s.maxBytes <= 0 {
		return
	}
	for s.size > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*lruEntry)
		_ = os.Remove(s.path(e.id))
		s.lru.Remove(el)
		delete(s.idx, e.id)
		s.size -= e.size
		s.evictions.Add(1)
	}
	s.bytes.Set(float64(s.size))
}

// Len reports resident entries (tests and /statz).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Bytes reports resident bytes (tests and /statz).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}
