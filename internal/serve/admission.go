package serve

import (
	"math"
	"sync"
)

// fairQueue implements weighted fair queueing over per-tenant FIFO
// queues: each accepted job gets a virtual finish tag
//
//	tag = max(tenant.vtime, queue.vnow) + cost/weight
//
// and dequeue always picks the tenant whose head job holds the smallest
// tag. A tenant bursting far ahead of its service rate accumulates vtime
// far past vnow, so its backlog waits while light tenants' fresh jobs
// (tagged near vnow) go first — proportional sharing without starvation.
//
// Each tenant's queue is depth-bounded; enqueue past the bound is
// load-shedding and returns errShed with a Retry-After hint derived from
// the backlog the tenant would have to wait behind anyway.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	weights map[string]float64
	depth   int
	vnow    float64
	queued  int
	closed  bool
}

// tenantQueue is one tenant's FIFO backlog plus its virtual clock.
type tenantQueue struct {
	name   string
	weight float64
	jobs   []*jobState // jobs[0] is the head
	vtime  float64     // finish tag of the last job tagged for this tenant
}

// errShed signals admission refused a submission for lack of queue room.
type errShed struct {
	retryAfterSec int
}

func (e *errShed) Error() string { return "serve: overloaded, queue full" }

func newFairQueue(depth int, weights map[string]float64) *fairQueue {
	q := &fairQueue{
		tenants: map[string]*tenantQueue{},
		weights: weights,
		depth:   depth,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) tenant(name string) *tenantQueue {
	t, ok := q.tenants[name]
	if !ok {
		w := q.weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantQueue{name: name, weight: w}
		q.tenants[name] = t
	}
	return t
}

// enqueue admits j for tenant, or sheds with *errShed when the tenant's
// queue is full. force bypasses both the depth bound and the closed check
// — used for journal replay (the job was already accepted in a previous
// life; shedding it now would lose it) — but not the tagging, so replayed
// backlogs still share fairly.
func (q *fairQueue) enqueue(tenant string, j *jobState, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed && !force {
		return Errf(KindOverloaded, "server shutting down")
	}
	t := q.tenant(tenant)
	if !force && len(t.jobs) >= q.depth {
		// The hint scales with the backlog the tenant is behind: each
		// queued job is one service slot away at best.
		return &errShed{retryAfterSec: 1 + len(t.jobs)/2}
	}
	start := math.Max(t.vtime, q.vnow)
	j.vtag = start + j.spec.Cost()/t.weight
	t.vtime = j.vtag
	t.jobs = append(t.jobs, j)
	q.queued++
	q.cond.Signal()
	return nil
}

// requeueFront puts a preempted job back at the head of its tenant's
// queue, keeping its original virtual tag: it already paid its wait, and
// the depth bound does not apply to work the server previously admitted.
func (q *fairQueue) requeueFront(tenant string, j *jobState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenant(tenant)
	t.jobs = append([]*jobState{j}, t.jobs...)
	q.queued++
	q.cond.Signal()
}

// next blocks until a job is available (returning the fair pick) or the
// queue is closed (returning false). Closing drains nothing: jobs still
// queued stay queued for inspection or parking.
func (q *fairQueue) next() (*jobState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.queued > 0 {
			var best *tenantQueue
			for _, t := range q.tenants {
				if len(t.jobs) == 0 {
					continue
				}
				if best == nil || t.jobs[0].vtag < best.jobs[0].vtag ||
					(t.jobs[0].vtag == best.jobs[0].vtag && t.name < best.name) {
					best = t
				}
			}
			j := best.jobs[0]
			best.jobs = best.jobs[1:]
			q.queued--
			if j.vtag > q.vnow {
				q.vnow = j.vtag
			}
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops admission and wakes every blocked worker. Queued jobs are
// left in place; drain() collects them.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// drain removes and returns every queued job (shutdown parking).
func (q *fairQueue) drain() []*jobState {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*jobState
	for _, t := range q.tenants {
		out = append(out, t.jobs...)
		t.jobs = nil
	}
	q.queued = 0
	return out
}

// depths snapshots per-tenant backlog sizes (/statz and metrics).
func (q *fairQueue) depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, t := range q.tenants {
		out[name] = len(t.jobs)
	}
	return out
}
