package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// journal is the durable accepted-job record: one JSON file per job,
// written atomically BEFORE the 202 response and removed only AFTER the
// job's result reaches the store (or its lifecycle otherwise terminates).
// The window in between is exactly the work a crash can interrupt, and
// replaying the surviving files on reopen re-runs exactly that work —
// which is safe because execution is deterministic and the store is
// idempotent.
type journal struct {
	dir string
}

// journalEntry is one accepted job.
type journalEntry struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	Key      string    `json:"key"`
	Spec     JobSpec   `json:"spec"`
	Deadline int64     `json:"deadline_ms"` // job deadline budget in ms
	Accepted time.Time `json:"accepted"`
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) path(id string) string { return filepath.Join(j.dir, id+".json") }

// append persists one accepted job (atomic temp + rename, like the store).
func (j *journal) append(e journalEntry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return Errf(KindInternal, "journal marshal: %v", err)
	}
	tmp, err := os.CreateTemp(j.dir, e.ID+"-*.tmp")
	if err != nil {
		return Errf(KindTransient, "journal: %v", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return Errf(KindTransient, "journal: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Errf(KindTransient, "journal: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return Errf(KindTransient, "journal: %v", err)
	}
	if err := os.Rename(tmp.Name(), j.path(e.ID)); err != nil {
		return Errf(KindTransient, "journal: %v", err)
	}
	return nil
}

// remove forgets a terminated job. Missing files are fine (idempotent).
func (j *journal) remove(id string) {
	_ = os.Remove(j.path(id))
}

// replay returns every surviving accepted job plus the count of damaged
// files skipped (a torn write can only damage a job the client never got
// a 202 for, so skipping is sound).
func (j *journal) replay() ([]journalEntry, int, error) {
	files, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	var out []journalEntry
	skipped := 0
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		if strings.HasSuffix(f.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(j.dir, f.Name()))
			continue
		}
		buf, err := os.ReadFile(filepath.Join(j.dir, f.Name()))
		if err != nil {
			skipped++
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(buf, &e); err != nil || e.ID == "" || e.ID+".json" != f.Name() {
			skipped++
			_ = os.Remove(filepath.Join(j.dir, f.Name()))
			continue
		}
		out = append(out, e)
	}
	return out, skipped, nil
}
