// Package serve turns the deterministic simulation engine into a
// persistent multi-tenant job service: clients POST study, figure, sweep
// and analysis requests and poll for results, while the server keeps the
// engine's reproducibility guarantees intact under load, crashes and
// restarts.
//
// The pipeline is admission → fair queue → worker → store:
//
//   - Admission validates the spec, coalesces submissions identical to an
//     in-flight job, answers repeats of finished work straight from the
//     content-addressed result store, and sheds load with a clean 429 +
//     Retry-After when a tenant's queue is full.
//   - A weighted fair queue orders accepted jobs by virtual finish time,
//     so a tenant bursting hundreds of cells cannot starve a tenant
//     submitting one.
//   - Workers execute jobs with crash isolation (a panic fails the one
//     job, never the server), bounded retry with exponential backoff for
//     retryable failures, per-job deadlines and cancellation, and
//     graceful quantum preemption of long runs: the MD parks itself at a
//     globally consistent checkpoint boundary (pmd.ErrPreempted) and
//     resumes later from the exact step it stopped at.
//   - The store persists every result under its canonical spec key with a
//     CRC-validated, atomically written file; corrupt or truncated
//     entries are misses that trigger recomputation, never wrong bytes.
//
// Durability: every accepted job is journaled to disk before the 202
// response and the journal entry is removed only after the result reaches
// the store, so a crash anywhere in between replays the job on reopen —
// an accepted job is never lost, it is at worst recomputed (and the
// recomputation is bitwise identical, which is what makes at-least-once
// execution safe here).
//
// # Failure taxonomy
//
// Every job failure carries an ErrorKind that fixes how the server and
// the client should react:
//
//	kind          retryable  meaning
//	bad_request   no         spec invalid; resubmitting the same bytes cannot help
//	overloaded    yes, later admission shed the request; honor Retry-After
//	canceled      no         the client asked for cancellation
//	deadline      no         the job-level deadline expired
//	worker_crash  bounded    the executing worker panicked; isolated and retried
//	transient     bounded    I/O or environment hiccup (store write, checkpoint)
//	internal      no         invariant violation; a bug, not a load condition
//
// "bounded" retries happen server-side with exponential backoff and
// jitter up to Config.MaxRetries; after that the job fails with the last
// error.
package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ErrorKind classifies a job failure (see the package taxonomy table).
type ErrorKind string

// The failure taxonomy. Retryability is a property of the kind, not of
// the individual error: handlers and workers branch on Retryable() only.
const (
	KindBadRequest  ErrorKind = "bad_request"
	KindOverloaded  ErrorKind = "overloaded"
	KindCanceled    ErrorKind = "canceled"
	KindDeadline    ErrorKind = "deadline"
	KindWorkerCrash ErrorKind = "worker_crash"
	KindTransient   ErrorKind = "transient"
	KindInternal    ErrorKind = "internal"
)

// Retryable reports whether the server may re-execute a job that failed
// with this kind. KindOverloaded is retryable by the CLIENT (after
// Retry-After), not by the server — admission already decided there is no
// room, so it is excluded here.
func (k ErrorKind) Retryable() bool {
	return k == KindWorkerCrash || k == KindTransient
}

// JobError is a classified job failure.
type JobError struct {
	Kind ErrorKind `json:"kind"`
	Msg  string    `json:"msg"`
}

func (e *JobError) Error() string { return fmt.Sprintf("serve: %s: %s", e.Kind, e.Msg) }

// Errf builds a classified error.
func Errf(kind ErrorKind, format string, args ...interface{}) *JobError {
	return &JobError{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Config tunes a Server. The zero value of every field selects a sensible
// default (see each field); only StateDir is required.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string

	// StateDir holds everything durable: the result store, the accepted-
	// job journal and parked run checkpoints. A server owns its StateDir
	// exclusively while open; reopening the same directory resumes the
	// journaled work.
	StateDir string

	// StoreMaxBytes bounds the result store; least-recently-used entries
	// are evicted past it. 0 means 64 MiB.
	StoreMaxBytes int64

	// Workers is the number of concurrent job executors. 0 means 2.
	Workers int

	// KernelWorkers spreads each job's physics kernels over host cores
	// (see md.Config.KernelWorkers). 0 keeps the legacy serial kernels;
	// results are byte-identical for every KernelWorkers ≥ 1 but differ
	// at roundoff from 0, and the result store keys on the job spec
	// alone — change this setting only with a fresh StateDir (or accept
	// that cached results keep the bytes of the setting that computed
	// them). Negative values are treated as 0.
	KernelWorkers int

	// QueueDepth bounds each tenant's queue; a submission past it is shed
	// with 429 + Retry-After. 0 means 8.
	QueueDepth int

	// TenantWeights sets relative fair-queue weights (default 1 each).
	// A weight-2 tenant gets twice the service of a weight-1 tenant when
	// both have backlog.
	TenantWeights map[string]float64

	// DefaultDeadline bounds a job's total lifetime (queue wait included)
	// when the submission does not set one. 0 means 2 minutes.
	DefaultDeadline time.Duration

	// MaxRetries bounds server-side re-execution of retryably failed
	// jobs. 0 means 2; negative disables retries.
	MaxRetries int

	// RetryBaseDelay is the first backoff step (doubled per attempt, with
	// deterministic per-job jitter). 0 means 50ms.
	RetryBaseDelay time.Duration

	// EventHeartbeat spaces the keepalive comments on the SSE job event
	// stream (GET /v1/jobs/<id>/events). 0 means 5 seconds.
	EventHeartbeat time.Duration

	// PreemptQuantum, when > 0, bounds how long a run-kind job may hold a
	// worker before it is parked at the next checkpoint boundary and
	// requeued behind waiting work. 0 disables quantum preemption
	// (cancellation, deadlines and shutdown can still preempt).
	PreemptQuantum time.Duration

	// Obs receives the serve metrics (repro_serve_*); nil creates a
	// private registry.
	Obs *obs.Registry

	// FaultInject, when non-nil, is called at the start of every job
	// attempt (spec, attempt number starting at 1) and may return an
	// error or panic to simulate worker failures. Test hook; nil in
	// production.
	FaultInject func(spec JobSpec, attempt int) error
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.StoreMaxBytes == 0 {
		out.StoreMaxBytes = 64 << 20
	}
	if out.Workers == 0 {
		out.Workers = 2
	}
	if out.QueueDepth == 0 {
		out.QueueDepth = 8
	}
	if out.DefaultDeadline == 0 {
		out.DefaultDeadline = 2 * time.Minute
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 2
	} else if out.MaxRetries < 0 {
		out.MaxRetries = 0
	}
	if out.RetryBaseDelay == 0 {
		out.RetryBaseDelay = 50 * time.Millisecond
	}
	if out.EventHeartbeat == 0 {
		out.EventHeartbeat = 5 * time.Second
	}
	if out.KernelWorkers < 0 {
		out.KernelWorkers = 0
	}
	if out.Obs == nil {
		out.Obs = obs.NewRegistry()
	}
	return out
}
