package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/pmd"
)

// SpecKeyVersion is the format version embedded in every canonical spec
// key. Bump it whenever Key()'s rendering (or the meaning of any field
// that feeds it) changes, so store entries written under the old scheme
// can never be mistaken for results of the new one — the same discipline
// as figures.CellKeyVersion, which governs the in-memory run cache this
// store extends onto disk.
const SpecKeyVersion = 2

// JobKind selects what a job computes.
type JobKind string

const (
	// KindRun executes the resilient parallel MD on a solvated water box
	// and reports the final energy decomposition and a position digest.
	// The only long-running kind: it checkpoints, preempts and resumes.
	KindRun JobKind = "run"
	// KindSweep runs one short parallel MD per requested network and
	// reports the virtual wall time and comp/comm/sync split of each.
	KindSweep JobKind = "sweep"
	// KindAnalysis integrates a short sequential trajectory and computes
	// a structural observable (rdf or msd) over it.
	KindAnalysis JobKind = "analysis"
	// KindFigure regenerates one paper figure as CSV from the shared
	// myoglobin study.
	KindFigure JobKind = "figure"
)

// JobSpec is the client-facing description of one computation. The zero
// value of every optional field selects a deterministic default during
// Normalize, so two clients omitting the same fields land on the same
// canonical key.
type JobSpec struct {
	Kind JobKind `json:"kind"`

	// run / sweep / analysis workload knobs.
	Atoms int    `json:"atoms,omitempty"` // solvated-box size
	Steps int    `json:"steps,omitempty"` // MD steps
	Seed  uint64 `json:"seed,omitempty"`  // deterministic stream

	// run / sweep platform knobs.
	Procs  int    `json:"procs,omitempty"`  // ranks
	CPUs   int    `json:"cpus,omitempty"`   // CPUs per node (1 or 2)
	Net    string `json:"net,omitempty"`    // run: tcp, score, myrinet, fast
	MW     string `json:"mw,omitempty"`     // mpi or cmpi
	Decomp string `json:"decomp,omitempty"` // replicated or domain

	// sweep: the networks to compare (default: all four).
	Nets []string `json:"nets,omitempty"`

	// analysis: the observable to compute.
	Observable string `json:"observable,omitempty"` // rdf or msd

	// figure: the experiment id (core.FigureIDs) and protocol.
	Figure string `json:"figure,omitempty"`
	Quick  bool   `json:"quick,omitempty"`
}

// Normalize fills defaults in place and validates; the returned error is
// a *JobError of KindBadRequest listing every problem at once.
func (s *JobSpec) Normalize() error {
	var probs []string
	bad := func(format string, args ...interface{}) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	switch s.Kind {
	case KindRun, KindSweep, KindAnalysis, KindFigure:
	default:
		return Errf(KindBadRequest, "kind must be run, sweep, analysis or figure (got %q)", s.Kind)
	}

	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Kind != KindFigure {
		if s.Atoms == 0 {
			s.Atoms = 120
		}
		if s.Steps == 0 {
			s.Steps = 4
		}
		switch {
		case s.Atoms < 24 || s.Atoms > 4096:
			bad("atoms must be in [24, 4096] (got %d)", s.Atoms)
		case s.Steps < 1 || s.Steps > 512:
			bad("steps must be in [1, 512] (got %d)", s.Steps)
		}
	}

	switch s.Kind {
	case KindRun, KindSweep:
		if s.Procs == 0 {
			s.Procs = 4
		}
		if s.CPUs == 0 {
			s.CPUs = 1
		}
		if s.CPUs != 1 && s.CPUs != 2 {
			bad("cpus must be 1 or 2 (got %d)", s.CPUs)
		} else if s.Procs < 2*s.CPUs || s.Procs > 32 || s.Procs%s.CPUs != 0 {
			bad("procs must be a multiple of cpus spanning 2..32 ranks over at least 2 nodes (got %d)", s.Procs)
		}
		if s.MW == "" {
			s.MW = "mpi"
		}
		if s.MW != "mpi" && s.MW != "cmpi" {
			bad("mw must be mpi or cmpi (got %q)", s.MW)
		}
		if s.Decomp == "" {
			s.Decomp = "replicated"
		}
		if _, err := pmd.ParseDecomp(s.Decomp); err != nil {
			bad("decomp must be replicated or domain (got %q)", s.Decomp)
		}
	}

	switch s.Kind {
	case KindRun:
		if s.Net == "" {
			s.Net = "tcp"
		}
		if _, ok := netmodel.ByName(s.Net); !ok {
			bad("unknown net %q", s.Net)
		}
	case KindSweep:
		if len(s.Nets) == 0 {
			// The paper's factor space, by canonical short name (the
			// display names in netmodel.All are not lookup keys).
			s.Nets = []string{"tcp", "score", "myrinet"}
		}
		sort.Strings(s.Nets)
		for _, n := range s.Nets {
			if _, ok := netmodel.ByName(n); !ok {
				bad("unknown net %q in nets", n)
			}
		}
	case KindAnalysis:
		if s.Observable == "" {
			s.Observable = "rdf"
		}
		if s.Observable != "rdf" && s.Observable != "msd" {
			bad("observable must be rdf or msd (got %q)", s.Observable)
		}
	case KindFigure:
		if s.Figure == "" {
			bad("figure id is required")
		} else {
			found := false
			for _, id := range core.FigureIDs() {
				if id == s.Figure {
					found = true
					break
				}
			}
			// Diagram-only figures have no data rows to serve.
			if !found || s.Figure == "1" || s.Figure == "2" {
				bad("figure must be one of %v minus the diagrams 1 and 2 (got %q)",
					core.FigureIDs(), s.Figure)
			}
		}
		if s.Steps < 0 || s.Steps > 64 {
			bad("figure steps must be in [0, 64], 0 meaning the protocol default (got %d)", s.Steps)
		}
	}

	if len(probs) > 0 {
		return Errf(KindBadRequest, "%s", strings.Join(probs, "; "))
	}
	return nil
}

// Key renders the canonical versioned identity of the computation.
// Deliberately excluded: the submitting tenant, deadlines, and every
// host-side knob — results are bitwise identical across those, which is
// what makes cross-tenant coalescing and the shared store sound.
// Call only after Normalize.
func (s JobSpec) Key() string {
	switch s.Kind {
	case KindRun:
		return fmt.Sprintf("serve/v%d run atoms=%d steps=%d seed=%d p=%d cpus=%d net=%s mw=%s decomp=%s",
			SpecKeyVersion, s.Atoms, s.Steps, s.Seed, s.Procs, s.CPUs, s.Net, s.MW, s.Decomp)
	case KindSweep:
		return fmt.Sprintf("serve/v%d sweep atoms=%d steps=%d seed=%d p=%d cpus=%d mw=%s decomp=%s nets=%s",
			SpecKeyVersion, s.Atoms, s.Steps, s.Seed, s.Procs, s.CPUs, s.MW, s.Decomp, strings.Join(s.Nets, ","))
	case KindAnalysis:
		return fmt.Sprintf("serve/v%d analysis atoms=%d steps=%d seed=%d obs=%s",
			SpecKeyVersion, s.Atoms, s.Steps, s.Seed, s.Observable)
	case KindFigure:
		return fmt.Sprintf("serve/v%d figure id=%s quick=%t steps=%d seed=%d",
			SpecKeyVersion, s.Figure, s.Quick, s.Steps, s.Seed)
	}
	return fmt.Sprintf("serve/v%d invalid", SpecKeyVersion)
}

// JobID derives the job identifier from a canonical key. Identical specs
// map to the identical id — submission is idempotent and concurrent
// identical submissions coalesce onto one execution.
func JobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Cost estimates the job's relative expense for fair-queue accounting
// (virtual service time; only ratios matter).
func (s JobSpec) Cost() float64 {
	switch s.Kind {
	case KindRun:
		return float64(s.Atoms*s.Steps*s.Procs) / 1e3
	case KindSweep:
		return float64(s.Atoms*s.Steps*s.Procs*len(s.Nets)) / 1e3
	case KindAnalysis:
		return float64(s.Atoms*s.Steps) / 1e3
	case KindFigure:
		// A figure sweeps many cells of the 3552-atom study.
		return 100
	}
	return 1
}
