package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomComplex(r *rng.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Range(-1, 1), r.Range(-1, 1))
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Sizes exercised everywhere: powers of two, the paper's grid dimensions
// (80, 36, 48), odd smooth sizes, primes below and above maxRadix
// (Bluestein), and awkward composites.
var testSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 25, 27,
	32, 36, 45, 48, 64, 80, 81, 100, 11, 13, 17, 31, 37, 41, 97, 2 * 37, 3 * 41}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	r := rng.New(1)
	for _, n := range testSizes {
		x := randomComplex(r, n)
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error vs naive DFT = %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, n := range testSizes {
		p := NewPlan(n)
		x := randomComplex(r, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: round-trip error = %g", n, e)
		}
	}
}

func TestLinearity(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{16, 36, 37, 80} {
		p := NewPlan(n)
		x := randomComplex(r, n)
		y := randomComplex(r, n)
		alpha := complex(1.7, -0.3)
		// FFT(x + αy)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = x[i] + alpha*y[i]
		}
		p.Forward(lhs)
		// FFT(x) + αFFT(y)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		p.Forward(fx)
		p.Forward(fy)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = fx[i] + alpha*fy[i]
		}
		if e := maxErr(lhs, rhs); e > 1e-9*float64(n) {
			t.Errorf("n=%d: linearity violated, err=%g", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{8, 36, 48, 80, 97} {
		p := NewPlan(n)
		x := randomComplex(r, n)
		var inE float64
		for _, v := range x {
			inE += real(v)*real(v) + imag(v)*imag(v)
		}
		p.Forward(x)
		var outE float64
		for _, v := range x {
			outE += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(outE/float64(n)-inE) > 1e-9*inE {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, outE/float64(n), inE)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse at 0 is all ones; at position j it is the
	// twiddle ramp.
	for _, n := range []int{5, 36, 41} {
		p := NewPlan(n)
		x := make([]complex128, n)
		x[0] = 1
		p.Forward(x)
		for k, v := range x {
			if cmplx.Abs(v-1) > 1e-10 {
				t.Fatalf("n=%d impulse: X[%d]=%v", n, k, v)
			}
		}
	}
}

func TestConstantInput(t *testing.T) {
	for _, n := range []int{7, 48, 80} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = 2.5
		}
		p.Forward(x)
		if cmplx.Abs(x[0]-complex(2.5*float64(n), 0)) > 1e-9*float64(n) {
			t.Fatalf("n=%d: DC bin = %v", n, x[0])
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(x[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: non-DC bin %d = %v", n, k, x[k])
			}
		}
	}
}

func TestShiftTheoremProperty(t *testing.T) {
	// Circular shift by s multiplies spectrum by exp(-2πi k s / n).
	p := NewPlan(48)
	r := rng.New(5)
	x := randomComplex(r, 48)
	f := func(shiftRaw uint8) bool {
		s := int(shiftRaw) % 48
		shifted := make([]complex128, 48)
		for i := range shifted {
			shifted[i] = x[(i-s+48)%48]
		}
		fx := append([]complex128(nil), x...)
		p.Forward(fx)
		p.Forward(shifted)
		for k := 0; k < 48; k++ {
			phase := cmplx.Exp(complex(0, -2*math.Pi*float64(k*s)/48))
			if cmplx.Abs(shifted[k]-fx[k]*phase) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	p.Forward(make([]complex128, 7))
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		1:  nil,
		2:  {2},
		12: {2, 2, 3},
		80: {2, 2, 2, 2, 5},
		36: {2, 2, 3, 3},
		48: {2, 2, 2, 2, 3},
		97: {97},
		74: {2, 37},
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Fatalf("factorize(%d) = %v", n, got)
		}
		prod := 1
		for i, f := range got {
			if f != want[i] {
				t.Fatalf("factorize(%d) = %v, want %v", n, got, want)
			}
			prod *= f
		}
		if n > 1 && prod != n {
			t.Fatalf("factors of %d do not multiply back", n)
		}
	}
}

func TestOpsPositiveAndMonotone(t *testing.T) {
	prev := int64(0)
	for _, n := range []int{4, 16, 64, 256} {
		ops := NewPlan(n).Ops()
		if ops <= prev {
			t.Fatalf("Ops(%d) = %d not increasing", n, ops)
		}
		prev = ops
	}
	if NewPlan(97).Ops() <= NewPlan(64).Ops() {
		t.Fatal("Bluestein ops should exceed smooth ops of smaller size")
	}
}

func Test3DRoundTrip(t *testing.T) {
	r := rng.New(6)
	dims := [][3]int{{4, 4, 4}, {8, 6, 10}, {16, 9, 5}, {20, 9, 12}}
	for _, d := range dims {
		p := NewPlan3D(d[0], d[1], d[2])
		x := randomComplex(r, p.Len())
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-9 {
			t.Errorf("dims %v: round-trip error %g", d, e)
		}
	}
}

func Test3DMatchesNaive(t *testing.T) {
	// Direct triple-sum DFT on a small grid.
	const nx, ny, nz = 3, 4, 5
	r := rng.New(7)
	p := NewPlan3D(nx, ny, nz)
	x := randomComplex(r, p.Len())
	want := make([]complex128, len(x))
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			for kz := 0; kz < nz; kz++ {
				var sum complex128
				for jx := 0; jx < nx; jx++ {
					for jy := 0; jy < ny; jy++ {
						for jz := 0; jz < nz; jz++ {
							theta := -2 * math.Pi * (float64(kx*jx)/nx + float64(ky*jy)/ny + float64(kz*jz)/nz)
							sum += x[(jx*ny+jy)*nz+jz] * cmplx.Exp(complex(0, theta))
						}
					}
				}
				want[(kx*ny+ky)*nz+kz] = sum
			}
		}
	}
	got := append([]complex128(nil), x...)
	p.Forward(got)
	if e := maxErr(got, want); e > 1e-9 {
		t.Fatalf("3-D vs naive: err %g", e)
	}
}

func Test3DPaperGrid(t *testing.T) {
	// The paper's PME mesh: 80×36×48. Round-trip plus Parseval.
	p := NewPlan3D(80, 36, 48)
	r := rng.New(8)
	x := randomComplex(r, p.Len())
	var inE float64
	for _, v := range x {
		inE += real(v)*real(v) + imag(v)*imag(v)
	}
	y := append([]complex128(nil), x...)
	p.Forward(y)
	var outE float64
	for _, v := range y {
		outE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(outE/float64(p.Len())-inE) > 1e-9*inE {
		t.Fatalf("Parseval on paper grid: %g vs %g", outE/float64(p.Len()), inE)
	}
	p.Inverse(y)
	if e := maxErr(x, y); e > 1e-9 {
		t.Fatalf("paper grid round-trip error %g", e)
	}
}

func Test2DRoundTripAndNaive(t *testing.T) {
	const ny, nz = 6, 5
	r := rng.New(9)
	p := NewPlan2D(ny, nz)
	x := randomComplex(r, ny*nz)
	want := make([]complex128, len(x))
	for ky := 0; ky < ny; ky++ {
		for kz := 0; kz < nz; kz++ {
			var sum complex128
			for jy := 0; jy < ny; jy++ {
				for jz := 0; jz < nz; jz++ {
					theta := -2 * math.Pi * (float64(ky*jy)/ny + float64(kz*jz)/nz)
					sum += x[jy*nz+jz] * cmplx.Exp(complex(0, theta))
				}
			}
			want[ky*nz+kz] = sum
		}
	}
	got := append([]complex128(nil), x...)
	p.Forward(got)
	if e := maxErr(got, want); e > 1e-9 {
		t.Fatalf("2-D vs naive: err %g", e)
	}
	p.Inverse(got)
	if e := maxErr(got, x); e > 1e-10 {
		t.Fatalf("2-D round trip err %g", e)
	}
}

func Test3DOpsConsistent(t *testing.T) {
	p := NewPlan3D(80, 36, 48)
	if p.Ops() <= 0 {
		t.Fatal("non-positive 3-D op count")
	}
	// A 3-D transform must cost more than any single 1-D line.
	if p.Ops() < NewPlan(80).Ops() {
		t.Fatal("3-D ops below 1-D ops")
	}
}

func BenchmarkFFT80(b *testing.B) {
	p := NewPlan(80)
	x := randomComplex(rng.New(1), 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT3DPaperGrid(b *testing.B) {
	p := NewPlan3D(80, 36, 48)
	x := randomComplex(rng.New(1), p.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
