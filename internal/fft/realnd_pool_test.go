package fft

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/kernels"
)

// The pooled real 3-D transform must be bitwise identical to the serial
// one: every output element is written exactly once by arithmetic
// identical to the serial plan's, so not even the last ulp may move —
// at any worker count, including worker counts above the shard count.
func TestRealPlan3DPooledBitwiseEqualsSerial(t *testing.T) {
	dims := [][3]int{{80, 36, 48}, {16, 9, 7}, {32, 11, 13}}
	for _, d := range dims {
		nx, ny, nz := d[0], d[1], d[2]
		serial, err := NewRealPlan3D(nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		x := make([]float64, serial.Len())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		wantSpec := make([]complex128, serial.SpectrumLen())
		serial.Forward(x, wantSpec)
		wantX := make([]float64, serial.Len())
		invSpec := append([]complex128(nil), wantSpec...)
		serial.Inverse(invSpec, wantX)

		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 2, kernels.ShardCount + 5} {
			pooled, err := NewRealPlan3D(nx, ny, nz)
			if err != nil {
				t.Fatal(err)
			}
			pooled.SetPool(kernels.NewPool(workers))
			spec := make([]complex128, pooled.SpectrumLen())
			pooled.Forward(x, spec)
			for i := range spec {
				if spec[i] != wantSpec[i] {
					t.Fatalf("%v workers=%d: spec[%d] = %v, serial %v", d, workers, i, spec[i], wantSpec[i])
				}
			}
			got := make([]float64, pooled.Len())
			pooled.Inverse(spec, got)
			for i := range got {
				if got[i] != wantX[i] {
					t.Fatalf("%v workers=%d: x[%d] = %v, serial %v", d, workers, i, got[i], wantX[i])
				}
			}
		}
	}
}

// SetPool(nil) and a 1-worker pool must both leave the plan on the
// allocation-free serial path.
func TestRealPlan3DSetPoolDetach(t *testing.T) {
	p, err := NewRealPlan3D(16, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPool(kernels.NewPool(4))
	if p.shards == nil {
		t.Fatal("pooled plan has no shard state")
	}
	p.SetPool(nil)
	if p.shards != nil {
		t.Fatal("SetPool(nil) kept shard state")
	}
	p.SetPool(kernels.NewPool(1))
	if p.shards != nil {
		t.Fatal("1-worker pool should use the serial path")
	}
}
