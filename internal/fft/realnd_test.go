package fft

import (
	"math"
	"math/rand"
	"testing"
)

func randRealGrid(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// full3D computes the reference complex 3-D spectrum of a real grid.
func full3D(x []float64, nx, ny, nz int) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	NewPlan3D(nx, ny, nz).Forward(cx)
	return cx
}

func TestRealPlan3DMatchesComplexPlan(t *testing.T) {
	cases := [][3]int{
		{80, 36, 48}, // the paper's PME mesh
		{8, 6, 10},
		{2, 1, 1},
		{4, 5, 3},
		{6, 7, 7},   // odd y/z dims
		{14, 37, 9}, // y through Bluestein (37 is prime > 31)
		{74, 5, 4},  // x/2 = 37 through Bluestein
	}
	for _, c := range cases {
		nx, ny, nz := c[0], c[1], c[2]
		p, err := NewRealPlan3D(nx, ny, nz)
		if err != nil {
			t.Fatalf("NewRealPlan3D(%d,%d,%d): %v", nx, ny, nz, err)
		}
		x := randRealGrid(nx*ny*nz, int64(nx*1000+ny*10+nz))
		want := full3D(x, nx, ny, nz)
		spec := make([]complex128, p.SpectrumLen())
		p.Forward(x, spec)

		scale := 0.0
		for _, v := range want {
			if a := cmplxAbs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-11 * (1 + scale)
		for ix := 0; ix < p.HX(); ix++ {
			for iy := 0; iy < ny; iy++ {
				for iz := 0; iz < nz; iz++ {
					got := spec[(ix*ny+iy)*nz+iz]
					ref := want[(ix*ny+iy)*nz+iz]
					if cmplxAbs(got-ref) > tol {
						t.Fatalf("%d×%d×%d spec[%d,%d,%d] = %v, want %v",
							nx, ny, nz, ix, iy, iz, got, ref)
					}
				}
			}
		}
	}
}

// TestRealPlan3DHermitianReconstruction checks that the discarded
// redundant half of the spectrum really is the conjugate mirror of the
// stored half — the identity the PME energy accumulation relies on.
func TestRealPlan3DHermitianReconstruction(t *testing.T) {
	nx, ny, nz := 12, 5, 6
	p, err := NewRealPlan3D(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	x := randRealGrid(nx*ny*nz, 7)
	want := full3D(x, nx, ny, nz)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(x, spec)
	for ix := p.HX(); ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				mx, my, mz := nx-ix, (ny-iy)%ny, (nz-iz)%nz
				s := spec[(mx*ny+my)*nz+mz]
				mirror := complex(real(s), -imag(s))
				ref := want[(ix*ny+iy)*nz+iz]
				if cmplxAbs(mirror-ref) > 1e-10 {
					t.Fatalf("Hermitian mirror (%d,%d,%d) = %v, want %v", ix, iy, iz, mirror, ref)
				}
			}
		}
	}
}

func TestRealPlan3DRoundTrip(t *testing.T) {
	for _, c := range [][3]int{{80, 36, 48}, {10, 9, 4}, {74, 37, 9}} {
		nx, ny, nz := c[0], c[1], c[2]
		p, err := NewRealPlan3D(nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		x := randRealGrid(nx*ny*nz, 42)
		orig := append([]float64(nil), x...)
		spec := make([]complex128, p.SpectrumLen())
		p.Forward(x, spec)
		for i, v := range x {
			if v != orig[i] {
				t.Fatalf("%v: Forward modified its input at %d", c, i)
			}
		}
		back := make([]float64, len(x))
		p.Inverse(spec, back)
		for i := range back {
			if math.Abs(back[i]-orig[i]) > 1e-11*(1+math.Abs(orig[i])) {
				t.Fatalf("%v: roundtrip[%d] = %g, want %g", c, i, back[i], orig[i])
			}
		}
	}
}

func TestRealPlan3DRejectsOddX(t *testing.T) {
	if _, err := NewRealPlan3D(37, 36, 48); err == nil {
		t.Fatal("odd x dim must be rejected")
	}
	if _, err := NewRealPlan3D(0, 4, 4); err == nil {
		t.Fatal("zero dim must be rejected")
	}
}

func TestRealPlan3DOpsBelowComplex(t *testing.T) {
	p, err := NewRealPlan3D(80, 36, 48)
	if err != nil {
		t.Fatal(err)
	}
	full := NewPlan3D(80, 36, 48).Ops()
	if p.Ops() >= full {
		t.Fatalf("real plan ops %d not below complex plan ops %d", p.Ops(), full)
	}
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}
