package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RealPlan computes DFTs of real sequences of even length n through one
// complex transform of length n/2 plus an untangling pass — the transform
// CHARMM's PME uses on its charge grid (half the work and half the wire
// volume of a complex transform).
type RealPlan struct {
	n    int
	half *Plan
	w    []complex128 // w[k] = exp(−2πi k / n), k = 0..n/2
	buf  []complex128
}

// NewRealPlan returns a plan for real transforms of even length n ≥ 2.
func NewRealPlan(n int) *RealPlan {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("fft: real transform length %d must be even and ≥ 2", n))
	}
	p := &RealPlan{n: n, half: NewPlan(n / 2)}
	p.w = make([]complex128, n/2+1)
	for k := range p.w {
		p.w[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	p.buf = make([]complex128, n/2)
	return p
}

// N returns the transform length.
func (p *RealPlan) N() int { return p.n }

// SpectrumLen returns the half-spectrum length n/2+1.
func (p *RealPlan) SpectrumLen() int { return p.n/2 + 1 }

// Forward computes the half spectrum X[0..n/2] of the real input x:
// X[k] = Σ_j x[j]·exp(−2πi jk/n). The remaining bins follow from
// X[n−k] = conj(X[k]). spec must have length SpectrumLen().
func (p *RealPlan) Forward(x []float64, spec []complex128) {
	m := p.n / 2
	if len(x) != p.n || len(spec) != m+1 {
		panic(fmt.Sprintf("fft: real forward lengths %d/%d for n=%d", len(x), len(spec), p.n))
	}
	z := p.buf
	for k := 0; k < m; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	p.half.Forward(z)
	zAt := func(k int) complex128 {
		if k == m {
			return z[0]
		}
		return z[k]
	}
	for k := 0; k <= m; k++ {
		s := zAt(k)
		t := cmplx.Conj(zAt(m - k))
		spec[k] = 0.5*(s+t) - 0.5i*p.w[k]*(s-t)
	}
}

// Inverse reconstructs the real sequence from its half spectrum,
// including the 1/n normalization, so Inverse(Forward(x)) == x. The
// imaginary parts of spec[0] and spec[n/2] are ignored (they are zero for
// any spectrum of a real sequence).
func (p *RealPlan) Inverse(spec []complex128, x []float64) {
	m := p.n / 2
	if len(x) != p.n || len(spec) != m+1 {
		panic(fmt.Sprintf("fft: real inverse lengths %d/%d for n=%d", len(spec), len(x), p.n))
	}
	z := p.buf
	for k := 0; k < m; k++ {
		a := spec[k]
		b := cmplx.Conj(spec[m-k])
		// W^{−k} = conj(w[k]).
		z[k] = 0.5 * ((a + b) + 1i*cmplx.Conj(p.w[k])*(a-b))
	}
	p.half.Inverse(z)
	for k := 0; k < m; k++ {
		x[2*k] = real(z[k])
		x[2*k+1] = imag(z[k])
	}
}

// Ops returns the analytic flop count (half transform + untangling).
func (p *RealPlan) Ops() int64 {
	return p.half.Ops() + int64(8*(p.n/2+1))
}
