package fft

import "fmt"

// Plan3D computes forward/inverse 3-D DFTs on row-major data indexed
// [x][y][z], i.e. element (ix, iy, iz) lives at (ix·Ny + iy)·Nz + iz.
type Plan3D struct {
	nx, ny, nz int
	px, py, pz *Plan
	line       []complex128 // gather buffer for strided lines
}

// NewPlan3D returns a 3-D plan for an nx×ny×nz grid.
func NewPlan3D(nx, ny, nz int) *Plan3D {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("fft: invalid 3-D dims %d×%d×%d", nx, ny, nz))
	}
	n := nx
	if ny > n {
		n = ny
	}
	if nz > n {
		n = nz
	}
	return &Plan3D{
		nx: nx, ny: ny, nz: nz,
		px: NewPlan(nx), py: NewPlan(ny), pz: NewPlan(nz),
		line: make([]complex128, n),
	}
}

// Dims returns (nx, ny, nz).
func (p *Plan3D) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// Len returns the total number of grid points.
func (p *Plan3D) Len() int { return p.nx * p.ny * p.nz }

// Forward computes the in-place forward 3-D DFT.
func (p *Plan3D) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse 3-D DFT with 1/(Nx·Ny·Nz)
// normalization.
func (p *Plan3D) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan3D) transform(x []complex128, inverse bool) {
	if len(x) != p.Len() {
		panic(fmt.Sprintf("fft: data length %d != %d", len(x), p.Len()))
	}
	apply := func(pl *Plan, v []complex128) {
		if inverse {
			pl.Inverse(v)
		} else {
			pl.Forward(v)
		}
	}
	// Along z: contiguous lines.
	for ix := 0; ix < p.nx; ix++ {
		for iy := 0; iy < p.ny; iy++ {
			off := (ix*p.ny + iy) * p.nz
			apply(p.pz, x[off:off+p.nz])
		}
	}
	// Along y: stride nz.
	for ix := 0; ix < p.nx; ix++ {
		for iz := 0; iz < p.nz; iz++ {
			base := ix*p.ny*p.nz + iz
			p.strided(x, base, p.nz, p.ny, p.py, inverse)
		}
	}
	// Along x: stride ny·nz.
	for iy := 0; iy < p.ny; iy++ {
		for iz := 0; iz < p.nz; iz++ {
			base := iy*p.nz + iz
			p.strided(x, base, p.ny*p.nz, p.nx, p.px, inverse)
		}
	}
}

func (p *Plan3D) strided(x []complex128, base, stride, n int, pl *Plan, inverse bool) {
	line := p.line[:n]
	for j := 0; j < n; j++ {
		line[j] = x[base+j*stride]
	}
	if inverse {
		pl.Inverse(line)
	} else {
		pl.Forward(line)
	}
	for j := 0; j < n; j++ {
		x[base+j*stride] = line[j]
	}
}

// Ops returns the analytic flop count of one full 3-D transform, the
// quantity charged by the performance model.
func (p *Plan3D) Ops() int64 {
	return int64(p.ny*p.nz)*p.px.Ops() +
		int64(p.nx*p.nz)*p.py.Ops() +
		int64(p.nx*p.ny)*p.pz.Ops()
}

// Plan2D computes forward/inverse 2-D DFTs on row-major ny×nz data
// (element (iy, iz) at iy·Nz + iz). The slab-decomposed parallel FFT uses
// it for the per-plane transforms.
type Plan2D struct {
	ny, nz int
	py, pz *Plan
	line   []complex128
}

// NewPlan2D returns a 2-D plan for an ny×nz grid.
func NewPlan2D(ny, nz int) *Plan2D {
	if ny < 1 || nz < 1 {
		panic(fmt.Sprintf("fft: invalid 2-D dims %d×%d", ny, nz))
	}
	n := ny
	if nz > n {
		n = nz
	}
	return &Plan2D{ny: ny, nz: nz, py: NewPlan(ny), pz: NewPlan(nz), line: make([]complex128, n)}
}

// Forward computes the in-place forward 2-D DFT.
func (p *Plan2D) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the in-place inverse 2-D DFT with 1/(Ny·Nz) scaling.
func (p *Plan2D) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan2D) transform(x []complex128, inverse bool) {
	if len(x) != p.ny*p.nz {
		panic(fmt.Sprintf("fft: data length %d != %d", len(x), p.ny*p.nz))
	}
	apply := func(pl *Plan, v []complex128) {
		if inverse {
			pl.Inverse(v)
		} else {
			pl.Forward(v)
		}
	}
	for iy := 0; iy < p.ny; iy++ {
		apply(p.pz, x[iy*p.nz:(iy+1)*p.nz])
	}
	for iz := 0; iz < p.nz; iz++ {
		line := p.line[:p.ny]
		for iy := 0; iy < p.ny; iy++ {
			line[iy] = x[iy*p.nz+iz]
		}
		apply(p.py, line)
		for iy := 0; iy < p.ny; iy++ {
			x[iy*p.nz+iz] = line[iy]
		}
	}
}

// Ops returns the analytic flop count of one 2-D transform.
func (p *Plan2D) Ops() int64 {
	return int64(p.nz)*p.py.Ops() + int64(p.ny)*p.pz.Ops()
}
