// Package fft implements complex discrete Fourier transforms of arbitrary
// length: mixed-radix Cooley–Tukey for smooth sizes and Bluestein's chirp-z
// algorithm for sizes with large prime factors. It provides 1-D, 2-D and 3-D
// plans; the 3-D plan is the engine under the particle-mesh-Ewald grid
// (80×36×48 in the paper's myoglobin system, which factors as 2⁴·5, 2²·3²
// and 2⁴·3).
//
// Plans precompute twiddle tables and scratch space; a Plan is NOT safe for
// concurrent use (each simulated rank owns its own plans).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// maxRadix is the largest prime handled by the direct mixed-radix combine
// step; sizes containing a larger prime factor go through Bluestein.
const maxRadix = 31

// Plan computes forward and inverse DFTs of length N.
type Plan struct {
	n       int
	factors []int        // prime factorization of n, ascending (empty for bluestein path)
	w       []complex128 // w[j] = exp(-2πi j / n), length n
	scratch []complex128
	blu     *bluestein // non-nil when n has a prime factor > maxRadix
}

// NewPlan returns a plan for transforms of length n ≥ 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n}
	f := factorize(n)
	smooth := true
	for _, q := range f {
		if q > maxRadix {
			smooth = false
			break
		}
	}
	if smooth {
		p.factors = f
		p.w = twiddles(n)
		p.scratch = make([]complex128, n)
	} else {
		p.blu = newBluestein(n)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

func twiddles(n int) []complex128 {
	w := make([]complex128, n)
	for j := range w {
		theta := -2 * math.Pi * float64(j) / float64(n)
		w[j] = cmplx.Exp(complex(0, theta))
	}
	return w
}

func factorize(n int) []int {
	var f []int
	for _, q := range []int{2, 3, 5, 7} {
		for n%q == 0 {
			f = append(f, q)
			n /= q
		}
	}
	for q := 11; q*q <= n; q += 2 {
		for n%q == 0 {
			f = append(f, q)
			n /= q
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

// Forward computes the in-place forward DFT of x (len(x) must equal N):
// X[k] = Σ_j x[j]·exp(-2πi jk/N).
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// normalization, so that Inverse(Forward(x)) == x.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length %d does not match plan length %d", len(x), p.n))
	}
	if p.n == 1 {
		return
	}
	if inverse {
		conjAll(x)
	}
	if p.blu != nil {
		p.blu.forward(x)
	} else {
		p.rec(x, p.scratch, p.n, 1, 1, p.factors)
	}
	if inverse {
		scale := 1 / float64(p.n)
		for i := range x {
			x[i] = complex(real(x[i])*scale, -imag(x[i])*scale)
		}
	}
}

func conjAll(x []complex128) {
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
}

// rec computes the length-n DFT of the elements x[0], x[stride],
// x[2·stride], … writing the result densely into x[0..n) — callers at the
// top level pass stride 1 so input and output coincide. tw is the step into
// the global twiddle table for this recursion level (n·tw·twStride == p.n).
//
// Implementation: decimation in time over the smallest remaining factor.
func (p *Plan) rec(x, tmp []complex128, n, stride, tw int, factors []int) {
	if n == 1 {
		return
	}
	r := factors[0] // radix for this level
	m := n / r
	if m == 1 {
		// Base case: direct length-r DFT of x[0], x[stride], ...
		p.smallDFT(x, tmp, r, stride, tw)
		return
	}
	// Recurse on r interleaved subsequences; each result lands strided in x,
	// then the combine pass writes the reordered output through tmp.
	for q := 0; q < r; q++ {
		p.rec(x[q*stride:], tmp, m, stride*r, tw*r, factors[1:])
	}
	// After recursion, subsequence q's DFT occupies x[q*stride + j*stride*r]
	// for j = 0..m-1. Combine into tmp[0..n) densely, then scatter back.
	var acc [maxRadix]complex128
	for k := 0; k < m; k++ {
		for q := 0; q < r; q++ {
			acc[q] = x[(q+k*r)*stride]
		}
		for out := 0; out < r; out++ {
			kk := out*m + k
			sum := acc[0]
			for q := 1; q < r; q++ {
				// twiddle exponent q*kk (mod n) scaled by tw into the
				// global table.
				idx := (q * kk % n) * tw
				sum += p.w[idx] * acc[q]
			}
			tmp[kk] = sum
		}
	}
	for j := 0; j < n; j++ {
		x[j*stride] = tmp[j]
	}
}

// smallDFT computes a direct DFT of prime length r over strided data.
func (p *Plan) smallDFT(x, tmp []complex128, r, stride, tw int) {
	var in [maxRadix]complex128
	for j := 0; j < r; j++ {
		in[j] = x[j*stride]
	}
	for k := 0; k < r; k++ {
		sum := in[0]
		for j := 1; j < r; j++ {
			idx := (j * k % r) * tw
			sum += p.w[idx] * in[j]
		}
		tmp[k] = sum
	}
	for k := 0; k < r; k++ {
		x[k*stride] = tmp[k]
	}
}

// Ops returns the analytic floating-point operation count of one transform,
// used by the performance model: ~5·n·log2(n) for smooth sizes, and the
// cost of the three embedded power-of-two transforms for Bluestein.
func (p *Plan) Ops() int64 {
	if p.blu != nil {
		m := float64(p.blu.m)
		return int64(3*5*m*math.Log2(m) + 8*m)
	}
	n := float64(p.n)
	if n < 2 {
		return 1
	}
	return int64(5 * n * math.Log2(n))
}

// bluestein implements the chirp-z transform: a length-n DFT via cyclic
// convolution of size m = next power of two ≥ 2n−1.
type bluestein struct {
	n, m int
	a    []complex128 // chirp: exp(-πi j²/n)
	bf   []complex128 // FFT of the conjugate chirp, precomputed
	pm   *Plan        // power-of-two sub-plan of length m
	buf  []complex128
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	b := &bluestein{n: n, m: m}
	b.a = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n keeps the argument small for large n.
		e := (int64(j) * int64(j)) % int64(2*n)
		theta := -math.Pi * float64(e) / float64(n)
		b.a[j] = cmplx.Exp(complex(0, theta))
	}
	bvec := make([]complex128, m)
	bvec[0] = complex(real(b.a[0]), -imag(b.a[0]))
	for j := 1; j < n; j++ {
		c := complex(real(b.a[j]), -imag(b.a[j]))
		bvec[j] = c
		bvec[m-j] = c
	}
	b.pm = NewPlan(m)
	b.pm.Forward(bvec)
	b.bf = bvec
	b.buf = make([]complex128, m)
	return b
}

func (b *bluestein) forward(x []complex128) {
	buf := b.buf
	for i := range buf {
		buf[i] = 0
	}
	for j := 0; j < b.n; j++ {
		buf[j] = x[j] * b.a[j]
	}
	b.pm.Forward(buf)
	for i := range buf {
		buf[i] *= b.bf[i]
	}
	b.pm.Inverse(buf)
	for k := 0; k < b.n; k++ {
		x[k] = buf[k] * b.a[k]
	}
}

// NaiveDFT computes the forward DFT by the O(n²) definition. It is the
// ground truth for tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			theta := -2 * math.Pi * float64(j*k%n) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, theta))
		}
		out[k] = sum
	}
	return out
}
