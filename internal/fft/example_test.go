package fft_test

import (
	"fmt"
	"math/cmplx"

	"repro/internal/fft"
)

func ExamplePlan() {
	// Transform a length-8 impulse: the spectrum of δ[0] is all ones.
	p := fft.NewPlan(8)
	x := make([]complex128, 8)
	x[0] = 1
	p.Forward(x)
	fmt.Printf("%.0f %.0f\n", real(x[0]), real(x[7]))
	p.Inverse(x)
	fmt.Println(cmplx.Abs(x[0]-1) < 1e-12, cmplx.Abs(x[1]) < 1e-12)
	// Output:
	// 1 1
	// true true
}

func ExampleNewRealPlan() {
	// Real transforms return the half spectrum (n/2+1 bins).
	p := fft.NewRealPlan(8)
	x := []float64{1, 0, 0, 0, 0, 0, 0, 0}
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(x, spec)
	fmt.Println(len(spec))
	// Output:
	// 5
}
