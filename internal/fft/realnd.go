package fft

import (
	"fmt"

	"repro/internal/kernels"
)

// xposeBlock is the number of (y,z) columns gathered per blocked-transpose
// pass. 32 rows of the largest practical line length (a few hundred
// complex128s) stay well inside L1/L2 while every grid read and write in
// the pass touches contiguous runs of xposeBlock values.
const xposeBlock = 32

// RealPlan3D computes forward/inverse 3-D DFTs of real row-major data
// indexed [x][y][z] (element (ix, iy, iz) at (ix·Ny + iy)·Nz + iz), storing
// only the non-redundant half spectrum kx = 0..Nx/2. For the real charge
// grids of PME this is ~2× less transform work and half the spectrum
// memory of a complex Plan3D; the discarded half follows from Hermitian
// symmetry F(Nx−kx, (Ny−ky) mod Ny, (Nz−kz) mod Nz) = conj(F(kx, ky, kz)).
//
// The x lines (stride Ny·Nz) go through the 1-D RealPlan via cache-blocked
// gather/scatter transposes; the half-spectrum planes are contiguous and
// use a complex Plan2D in place. Like all plans in this package, a
// RealPlan3D is not safe for concurrent use.
type RealPlan3D struct {
	nx, ny, nz int
	hx         int // nx/2 + 1 stored x frequencies
	rpx        *RealPlan
	plane      *Plan2D

	rblk []float64    // blocked transpose scratch: xposeBlock × nx reals
	cblk []complex128 // blocked transpose scratch: xposeBlock × hx bins

	pool   *kernels.Pool  // nil → serial transforms
	shards []*realShard3D // per-shard scratch + plan clones when pooled
}

// realShard3D is one worker shard's private transform state: its own
// transpose scratch plus clones of the 1-D real and 2-D complex plans
// (both hold mutable per-transform buffers, so they cannot be shared
// across goroutines). Clones are built by the same deterministic plan
// constructors, so a line transformed by any shard's plan produces bits
// identical to the primary plan's — which is why the pooled transform is
// bitwise equal to the serial one at every worker count: every output
// element is written exactly once, by identical arithmetic.
type realShard3D struct {
	rblk  []float64
	cblk  []complex128
	rpx   *RealPlan
	plane *Plan2D
}

// NewRealPlan3D returns a plan for an nx×ny×nz real grid. nx must be even
// (the 1-D real transform packs x pairs into a half-length complex
// transform); odd nx returns an error so callers can fall back to a
// complex Plan3D. ny and nz may be any positive size, including ones that
// route through Bluestein.
func NewRealPlan3D(nx, ny, nz int) (*RealPlan3D, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fft: invalid 3-D dims %d×%d×%d", nx, ny, nz)
	}
	if nx%2 != 0 {
		return nil, fmt.Errorf("fft: real 3-D transform needs even x dim, got %d", nx)
	}
	hx := nx/2 + 1
	return &RealPlan3D{
		nx: nx, ny: ny, nz: nz, hx: hx,
		rpx:   NewRealPlan(nx),
		plane: NewPlan2D(ny, nz),
		rblk:  make([]float64, xposeBlock*nx),
		cblk:  make([]complex128, xposeBlock*hx),
	}, nil
}

// Dims returns the real-space dimensions (nx, ny, nz).
func (p *RealPlan3D) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// Len returns the number of real grid points nx·ny·nz.
func (p *RealPlan3D) Len() int { return p.nx * p.ny * p.nz }

// SpectrumLen returns the half-spectrum storage size (nx/2+1)·ny·nz.
func (p *RealPlan3D) SpectrumLen() int { return p.hx * p.ny * p.nz }

// HX returns the number of stored x frequencies, nx/2+1.
func (p *RealPlan3D) HX() int { return p.hx }

// SetPool attaches a kernel pool: Forward/Inverse shard their x-line
// blocks and y×z planes across it. The decomposition is fixed (strided
// over at most kernels.ShardCount shards) and every output element is
// written once, so pooled transforms are bitwise identical to serial
// ones at any worker count. Per-shard scratch and plan clones are
// allocated here, before first use, so the hot path stays allocation-free
// and first-touch race-free. SetPool(nil) restores the serial path.
func (p *RealPlan3D) SetPool(pool *kernels.Pool) {
	p.pool = pool
	if pool == nil || pool.Workers() <= 1 {
		p.shards = nil
		return
	}
	p.shards = make([]*realShard3D, kernels.ShardCount)
	for i := range p.shards {
		p.shards[i] = &realShard3D{
			rblk:  make([]float64, xposeBlock*p.nx),
			cblk:  make([]complex128, xposeBlock*p.hx),
			rpx:   NewRealPlan(p.nx),
			plane: NewPlan2D(p.ny, p.nz),
		}
	}
}

// forwardBlock transforms the xposeBlock-wide column block starting at
// plane offset j0: gather strided x lines, real-transform them, scatter
// the half spectra.
func (p *RealPlan3D) forwardBlock(x []float64, spec []complex128, j0 int, rblk []float64, cblk []complex128, rpx *RealPlan) {
	planeLen := p.ny * p.nz
	w := planeLen - j0
	if w > xposeBlock {
		w = xposeBlock
	}
	for ix := 0; ix < p.nx; ix++ {
		src := x[ix*planeLen+j0 : ix*planeLen+j0+w]
		for b, v := range src {
			rblk[b*p.nx+ix] = v
		}
	}
	for b := 0; b < w; b++ {
		rpx.Forward(rblk[b*p.nx:(b+1)*p.nx], cblk[b*p.hx:(b+1)*p.hx])
	}
	for ix := 0; ix < p.hx; ix++ {
		dst := spec[ix*planeLen+j0 : ix*planeLen+j0+w]
		for b := range dst {
			dst[b] = cblk[b*p.hx+ix]
		}
	}
}

// inverseBlock is forwardBlock's mirror for the spectrum→real direction.
func (p *RealPlan3D) inverseBlock(spec []complex128, x []float64, j0 int, rblk []float64, cblk []complex128, rpx *RealPlan) {
	planeLen := p.ny * p.nz
	w := planeLen - j0
	if w > xposeBlock {
		w = xposeBlock
	}
	for ix := 0; ix < p.hx; ix++ {
		src := spec[ix*planeLen+j0 : ix*planeLen+j0+w]
		for b, v := range src {
			cblk[b*p.hx+ix] = v
		}
	}
	for b := 0; b < w; b++ {
		rpx.Inverse(cblk[b*p.hx:(b+1)*p.hx], rblk[b*p.nx:(b+1)*p.nx])
	}
	for ix := 0; ix < p.nx; ix++ {
		dst := x[ix*planeLen+j0 : ix*planeLen+j0+w]
		for b := range dst {
			dst[b] = rblk[b*p.nx+ix]
		}
	}
}

// Forward computes the half spectrum of the real grid x:
// spec[(kx·Ny + ky)·Nz + kz] = F(kx, ky, kz) for kx = 0..Nx/2. The input
// grid is left intact. len(x) must be Len() and len(spec) SpectrumLen().
func (p *RealPlan3D) Forward(x []float64, spec []complex128) {
	if len(x) != p.Len() || len(spec) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: real 3-D forward lengths %d/%d, want %d/%d",
			len(x), len(spec), p.Len(), p.SpectrumLen()))
	}
	planeLen := p.ny * p.nz
	if p.shards != nil {
		// Pooled: shard the column blocks, then the planes, each strided
		// over a fixed shard count. Disjoint writes per shard.
		nBlocks := (planeLen + xposeBlock - 1) / xposeBlock
		sb := len(p.shards)
		if sb > nBlocks {
			sb = nBlocks
		}
		p.pool.Run(sb, func(s int) {
			sh := p.shards[s]
			for bi := s; bi < nBlocks; bi += sb {
				p.forwardBlock(x, spec, bi*xposeBlock, sh.rblk, sh.cblk, sh.rpx)
			}
		})
		sp := len(p.shards)
		if sp > p.hx {
			sp = p.hx
		}
		p.pool.Run(sp, func(s int) {
			sh := p.shards[s]
			for ix := s; ix < p.hx; ix += sp {
				sh.plane.Forward(spec[ix*planeLen : (ix+1)*planeLen])
			}
		})
		return
	}
	// Real transforms along x: gather blocks of xposeBlock strided lines
	// into contiguous rows, transform, scatter the half spectra.
	for j0 := 0; j0 < planeLen; j0 += xposeBlock {
		p.forwardBlock(x, spec, j0, p.rblk, p.cblk, p.rpx)
	}
	// Complex transforms over the stored (contiguous) y×z planes.
	for ix := 0; ix < p.hx; ix++ {
		p.plane.Forward(spec[ix*planeLen : (ix+1)*planeLen])
	}
}

// Inverse reconstructs the real grid from its half spectrum, including the
// full 1/(Nx·Ny·Nz) normalization, so Inverse(Forward(x)) == x. The
// spectrum buffer is used as workspace and destroyed.
func (p *RealPlan3D) Inverse(spec []complex128, x []float64) {
	if len(x) != p.Len() || len(spec) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: real 3-D inverse lengths %d/%d, want %d/%d",
			len(spec), len(x), p.SpectrumLen(), p.Len()))
	}
	planeLen := p.ny * p.nz
	if p.shards != nil {
		sp := len(p.shards)
		if sp > p.hx {
			sp = p.hx
		}
		p.pool.Run(sp, func(s int) {
			sh := p.shards[s]
			for ix := s; ix < p.hx; ix += sp {
				sh.plane.Inverse(spec[ix*planeLen : (ix+1)*planeLen])
			}
		})
		nBlocks := (planeLen + xposeBlock - 1) / xposeBlock
		sb := len(p.shards)
		if sb > nBlocks {
			sb = nBlocks
		}
		p.pool.Run(sb, func(s int) {
			sh := p.shards[s]
			for bi := s; bi < nBlocks; bi += sb {
				p.inverseBlock(spec, x, bi*xposeBlock, sh.rblk, sh.cblk, sh.rpx)
			}
		})
		return
	}
	for ix := 0; ix < p.hx; ix++ {
		p.plane.Inverse(spec[ix*planeLen : (ix+1)*planeLen])
	}
	for j0 := 0; j0 < planeLen; j0 += xposeBlock {
		p.inverseBlock(spec, x, j0, p.rblk, p.cblk, p.rpx)
	}
}

// Ops returns the analytic flop count of one half-spectrum transform: the
// real x transforms plus the complex transforms of the stored planes. The
// performance model keeps charging the complex Plan3D count (CHARMM-era
// codes were modelled on complex transforms); this count exists for host
// benchmarking only.
func (p *RealPlan3D) Ops() int64 {
	return int64(p.ny*p.nz)*p.rpx.Ops() + int64(p.hx)*p.plane.Ops()
}
