package fft

import "fmt"

// xposeBlock is the number of (y,z) columns gathered per blocked-transpose
// pass. 32 rows of the largest practical line length (a few hundred
// complex128s) stay well inside L1/L2 while every grid read and write in
// the pass touches contiguous runs of xposeBlock values.
const xposeBlock = 32

// RealPlan3D computes forward/inverse 3-D DFTs of real row-major data
// indexed [x][y][z] (element (ix, iy, iz) at (ix·Ny + iy)·Nz + iz), storing
// only the non-redundant half spectrum kx = 0..Nx/2. For the real charge
// grids of PME this is ~2× less transform work and half the spectrum
// memory of a complex Plan3D; the discarded half follows from Hermitian
// symmetry F(Nx−kx, (Ny−ky) mod Ny, (Nz−kz) mod Nz) = conj(F(kx, ky, kz)).
//
// The x lines (stride Ny·Nz) go through the 1-D RealPlan via cache-blocked
// gather/scatter transposes; the half-spectrum planes are contiguous and
// use a complex Plan2D in place. Like all plans in this package, a
// RealPlan3D is not safe for concurrent use.
type RealPlan3D struct {
	nx, ny, nz int
	hx         int // nx/2 + 1 stored x frequencies
	rpx        *RealPlan
	plane      *Plan2D

	rblk []float64    // blocked transpose scratch: xposeBlock × nx reals
	cblk []complex128 // blocked transpose scratch: xposeBlock × hx bins
}

// NewRealPlan3D returns a plan for an nx×ny×nz real grid. nx must be even
// (the 1-D real transform packs x pairs into a half-length complex
// transform); odd nx returns an error so callers can fall back to a
// complex Plan3D. ny and nz may be any positive size, including ones that
// route through Bluestein.
func NewRealPlan3D(nx, ny, nz int) (*RealPlan3D, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fft: invalid 3-D dims %d×%d×%d", nx, ny, nz)
	}
	if nx%2 != 0 {
		return nil, fmt.Errorf("fft: real 3-D transform needs even x dim, got %d", nx)
	}
	hx := nx/2 + 1
	return &RealPlan3D{
		nx: nx, ny: ny, nz: nz, hx: hx,
		rpx:   NewRealPlan(nx),
		plane: NewPlan2D(ny, nz),
		rblk:  make([]float64, xposeBlock*nx),
		cblk:  make([]complex128, xposeBlock*hx),
	}, nil
}

// Dims returns the real-space dimensions (nx, ny, nz).
func (p *RealPlan3D) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// Len returns the number of real grid points nx·ny·nz.
func (p *RealPlan3D) Len() int { return p.nx * p.ny * p.nz }

// SpectrumLen returns the half-spectrum storage size (nx/2+1)·ny·nz.
func (p *RealPlan3D) SpectrumLen() int { return p.hx * p.ny * p.nz }

// HX returns the number of stored x frequencies, nx/2+1.
func (p *RealPlan3D) HX() int { return p.hx }

// Forward computes the half spectrum of the real grid x:
// spec[(kx·Ny + ky)·Nz + kz] = F(kx, ky, kz) for kx = 0..Nx/2. The input
// grid is left intact. len(x) must be Len() and len(spec) SpectrumLen().
func (p *RealPlan3D) Forward(x []float64, spec []complex128) {
	if len(x) != p.Len() || len(spec) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: real 3-D forward lengths %d/%d, want %d/%d",
			len(x), len(spec), p.Len(), p.SpectrumLen()))
	}
	planeLen := p.ny * p.nz
	// Real transforms along x: gather blocks of xposeBlock strided lines
	// into contiguous rows, transform, scatter the half spectra.
	for j0 := 0; j0 < planeLen; j0 += xposeBlock {
		w := planeLen - j0
		if w > xposeBlock {
			w = xposeBlock
		}
		for ix := 0; ix < p.nx; ix++ {
			src := x[ix*planeLen+j0 : ix*planeLen+j0+w]
			for b, v := range src {
				p.rblk[b*p.nx+ix] = v
			}
		}
		for b := 0; b < w; b++ {
			p.rpx.Forward(p.rblk[b*p.nx:(b+1)*p.nx], p.cblk[b*p.hx:(b+1)*p.hx])
		}
		for ix := 0; ix < p.hx; ix++ {
			dst := spec[ix*planeLen+j0 : ix*planeLen+j0+w]
			for b := range dst {
				dst[b] = p.cblk[b*p.hx+ix]
			}
		}
	}
	// Complex transforms over the stored (contiguous) y×z planes.
	for ix := 0; ix < p.hx; ix++ {
		p.plane.Forward(spec[ix*planeLen : (ix+1)*planeLen])
	}
}

// Inverse reconstructs the real grid from its half spectrum, including the
// full 1/(Nx·Ny·Nz) normalization, so Inverse(Forward(x)) == x. The
// spectrum buffer is used as workspace and destroyed.
func (p *RealPlan3D) Inverse(spec []complex128, x []float64) {
	if len(x) != p.Len() || len(spec) != p.SpectrumLen() {
		panic(fmt.Sprintf("fft: real 3-D inverse lengths %d/%d, want %d/%d",
			len(spec), len(x), p.SpectrumLen(), p.Len()))
	}
	planeLen := p.ny * p.nz
	for ix := 0; ix < p.hx; ix++ {
		p.plane.Inverse(spec[ix*planeLen : (ix+1)*planeLen])
	}
	for j0 := 0; j0 < planeLen; j0 += xposeBlock {
		w := planeLen - j0
		if w > xposeBlock {
			w = xposeBlock
		}
		for ix := 0; ix < p.hx; ix++ {
			src := spec[ix*planeLen+j0 : ix*planeLen+j0+w]
			for b, v := range src {
				p.cblk[b*p.hx+ix] = v
			}
		}
		for b := 0; b < w; b++ {
			p.rpx.Inverse(p.cblk[b*p.hx:(b+1)*p.hx], p.rblk[b*p.nx:(b+1)*p.nx])
		}
		for ix := 0; ix < p.nx; ix++ {
			dst := x[ix*planeLen+j0 : ix*planeLen+j0+w]
			for b := range dst {
				dst[b] = p.rblk[b*p.nx+ix]
			}
		}
	}
}

// Ops returns the analytic flop count of one half-spectrum transform: the
// real x transforms plus the complex transforms of the stored planes. The
// performance model keeps charging the complex Plan3D count (CHARMM-era
// codes were modelled on complex transforms); this count exists for host
// benchmarking only.
func (p *RealPlan3D) Ops() int64 {
	return int64(p.ny*p.nz)*p.rpx.Ops() + int64(p.hx)*p.plane.Ops()
}
