package fft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
)

func randomReal(r *rng.Source, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Range(-1, 1)
	}
	return x
}

func TestRealForwardMatchesComplexDFT(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{2, 4, 6, 8, 10, 36, 48, 80, 100} {
		x := randomReal(r, n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := NaiveDFT(cx)

		p := NewRealPlan(n)
		spec := make([]complex128, p.SpectrumLen())
		p.Forward(x, spec)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - want[k]); d > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, spec[k], want[k])
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{2, 8, 36, 48, 80} {
		p := NewRealPlan(n)
		x := randomReal(r, n)
		spec := make([]complex128, p.SpectrumLen())
		back := make([]float64, n)
		p.Forward(x, spec)
		p.Inverse(spec, back)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d element %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRealEdgeBinsAreReal(t *testing.T) {
	r := rng.New(3)
	p := NewRealPlan(48)
	x := randomReal(r, 48)
	spec := make([]complex128, p.SpectrumLen())
	p.Forward(x, spec)
	if math.Abs(imag(spec[0])) > 1e-10 || math.Abs(imag(spec[24])) > 1e-10 {
		t.Fatalf("DC/Nyquist bins not real: %v %v", spec[0], spec[24])
	}
}

func TestRealPlanValidation(t *testing.T) {
	for _, bad := range []int{0, 1, 3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("length %d accepted", bad)
				}
			}()
			NewRealPlan(bad)
		}()
	}
	p := NewRealPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("bad buffer lengths accepted")
		}
	}()
	p.Forward(make([]float64, 8), make([]complex128, 3))
}

func TestRealOpsHalfOfComplex(t *testing.T) {
	// The point of R2C: roughly half the complex-transform flops.
	n := 1024
	real := NewRealPlan(n).Ops()
	cplx := NewPlan(n).Ops()
	if float64(real) > 0.75*float64(cplx) {
		t.Fatalf("real ops %d not clearly below complex ops %d", real, cplx)
	}
}

func BenchmarkRealFFT80(b *testing.B) {
	p := NewRealPlan(80)
	x := randomReal(rng.New(1), 80)
	spec := make([]complex128, p.SpectrumLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
	}
}
