// Package report renders the reproduction results as aligned text tables,
// ASCII stacked bars (for the paper's percentage charts) and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table with a header row and a rule.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes a simple comma-separated file (fields are numeric or plain
// identifiers; no quoting needed by construction).
func CSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// StackedBar renders a three-segment percentage bar of the given width:
// '#' computation, '=' communication, '.' synchronization.
func StackedBar(compPct, commPct, syncPct float64, width int) string {
	if width < 3 {
		width = 3
	}
	nc := int(compPct/100*float64(width) + 0.5)
	nm := int(commPct/100*float64(width) + 0.5)
	if nc > width {
		nc = width
	}
	if nc+nm > width {
		nm = width - nc
	}
	ns := width - nc - nm
	return strings.Repeat("#", nc) + strings.Repeat("=", nm) + strings.Repeat(".", ns)
}

// StackedBarLost renders a four-segment bar: '#' compute, '=' comm,
// '.' sync and 'x' for virtual time lost to crashes and recomputation.
func StackedBarLost(compPct, commPct, syncPct, lostPct float64, width int) string {
	if width < 4 {
		width = 4
	}
	nc := int(compPct/100*float64(width) + 0.5)
	nm := int(commPct/100*float64(width) + 0.5)
	nl := int(lostPct/100*float64(width) + 0.5)
	if lostPct > 0 && nl == 0 {
		nl = 1 // lost time is the point of this bar; never round it away
	}
	if nc > width {
		nc = width
	}
	if nc+nm > width {
		nm = width - nc
	}
	if nc+nm+nl > width {
		nl = width - nc - nm
	}
	ns := width - nc - nm - nl
	return strings.Repeat("#", nc) + strings.Repeat("=", nm) +
		strings.Repeat(".", ns) + strings.Repeat("x", nl)
}

// Bar renders a proportional horizontal bar for value within [0, max].
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value/max*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}

// Seconds formats a duration in seconds with stable precision.
func Seconds(s float64) string { return fmt.Sprintf("%.3f", s) }

// Pct formats a percentage.
func Pct(p float64) string { return fmt.Sprintf("%.1f%%", p) }
