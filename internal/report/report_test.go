package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	// The value column starts at the same offset in every row.
	off := strings.Index(lines[2], "1")
	if idx := strings.Index(lines[3], "22"); idx != off {
		t.Fatalf("misaligned columns: %d vs %d\n%s", off, idx, b.String())
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestStackedBar(t *testing.T) {
	bar := StackedBar(50, 30, 20, 20)
	if len(bar) != 20 {
		t.Fatalf("bar length %d: %q", len(bar), bar)
	}
	if strings.Count(bar, "#") != 10 {
		t.Fatalf("comp segment: %q", bar)
	}
	if strings.Count(bar, "=") != 6 {
		t.Fatalf("comm segment: %q", bar)
	}
	// Over-100% inputs must not overflow the width.
	if got := StackedBar(90, 90, 0, 10); len(got) != 10 {
		t.Fatalf("overflow bar %q", got)
	}
	if got := StackedBar(100, 0, 0, 2); len(got) != 3 {
		t.Fatalf("minimum width bar %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); len([]rune(got)) != 5 {
		t.Fatalf("bar %q", got)
	}
	if Bar(1, 0, 10) != "" {
		t.Fatal("zero max should render empty")
	}
	if got := Bar(20, 10, 10); len([]rune(got)) != 10 {
		t.Fatalf("clamped bar %q", got)
	}
}

func TestFormatters(t *testing.T) {
	if Seconds(1.23456) != "1.235" {
		t.Fatalf("Seconds = %q", Seconds(1.23456))
	}
	if Pct(12.34) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.34))
	}
}
