package cluster

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/work"
)

func machine(nodes, cpus int) *Machine {
	return New(sim.NewEnv(), Config{Nodes: nodes, CPUsPerNode: cpus, Net: netmodel.TCPGigE(), Seed: 1})
}

func TestRankPlacement(t *testing.T) {
	m := machine(4, 2)
	if m.Ranks() != 8 {
		t.Fatalf("ranks = %d", m.Ranks())
	}
	if m.NodeOf(0) != m.NodeOf(1) {
		t.Fatal("ranks 0,1 should share node 0")
	}
	if m.NodeOf(1) == m.NodeOf(2) {
		t.Fatal("ranks 1,2 should be on different nodes")
	}
	if !m.SameNode(6, 7) || m.SameNode(5, 6) {
		t.Fatal("SameNode wrong")
	}
	uni := machine(4, 1)
	for r := 0; r < 4; r++ {
		if uni.NodeOf(r).ID != r {
			t.Fatalf("uni rank %d on node %d", r, uni.NodeOf(r).ID)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Nodes: 0, CPUsPerNode: 1, Net: netmodel.TCPGigE()},
		{Nodes: 2, CPUsPerNode: 3, Net: netmodel.TCPGigE()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			New(sim.NewEnv(), bad)
		}()
	}
}

func TestStallDelayThreshold(t *testing.T) {
	m := machine(8, 1)
	m.ActiveFlows = 1 // at or below threshold: never stalls
	for i := 0; i < 1000; i++ {
		if m.StallDelay() != 0 {
			t.Fatal("stall below flow threshold")
		}
	}
	m.ActiveFlows = 8
	stalls := 0
	var total float64
	for i := 0; i < 5000; i++ {
		if d := m.StallDelay(); d > 0 {
			stalls++
			total += d
		}
	}
	if stalls == 0 {
		t.Fatal("no stalls under congestion")
	}
	mean := total / float64(stalls)
	if mean < 0.5e-3 || mean > 10e-3 {
		t.Fatalf("stall mean %g s implausible", mean)
	}
	// SCore never stalls.
	sc := New(sim.NewEnv(), Config{Nodes: 8, CPUsPerNode: 1, Net: netmodel.SCoreGigE(), Seed: 1})
	sc.ActiveFlows = 8
	for i := 0; i < 1000; i++ {
		if sc.StallDelay() != 0 {
			t.Fatal("SCore stalled")
		}
	}
}

func TestStallDeterministicPerSeed(t *testing.T) {
	draw := func() []float64 {
		m := machine(8, 1)
		m.ActiveFlows = 6
		var out []float64
		for i := 0; i < 100; i++ {
			out = append(out, m.StallDelay())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stall draws differ between identical configs")
		}
	}
}

func TestCostModelSeconds(t *testing.T) {
	cm := PentiumIII1GHz()
	if cm.Seconds(work.Counters{}) != 0 {
		t.Fatal("zero work should cost zero")
	}
	w := work.Counters{PairEvals: 1000, FFTOps: 1000}
	want := 1000*cm.PairEval + 1000*cm.FFTOp
	if got := cm.Seconds(w); got != want {
		t.Fatalf("Seconds = %g, want %g", got, want)
	}
	// Additivity.
	w2 := work.Counters{BondTerms: 5, GridCharges: 7}
	sum := w
	sum.Add(w2)
	if cm.Seconds(sum) != cm.Seconds(w)+cm.Seconds(w2) {
		t.Fatal("cost not additive")
	}
}

// TestCalibrationAnchors pins the calibrated sequential split near the
// paper's Fig. 3 (classic ≈ 3.3 s, PME ≈ 2.8 s per 10 steps). The counter
// values come from cmd/calib measurements of the 3552-atom workload.
func TestCalibrationAnchors(t *testing.T) {
	cm := PentiumIII1GHz()
	classic := work.Counters{
		BondTerms: 35332, AngleTerms: 55165, DihedralTerms: 76769,
		PairEvals: 5230951, ListDistEvals: 28447994, Integrate: 71040,
	}
	pme := work.Counters{
		PairEvals: 90497, GridCharges: 5001216,
		FFTOps: 259573248, RecipPoints: 1520640,
	}
	if s := cm.Seconds(classic); s < 2.5 || s > 4.5 {
		t.Fatalf("classic calibration drifted: %g s (paper ≈ 3.4)", s)
	}
	if s := cm.Seconds(pme); s < 2.0 || s > 3.6 {
		t.Fatalf("PME calibration drifted: %g s (paper ≈ 2.8)", s)
	}
}
