// Package cluster models the experimental platform of the paper: a cluster
// of PC nodes (uni- or dual-processor Pentium III, 1 GHz) joined by one of
// the modelled interconnects. It provides the node resources (NIC transmit/
// receive engines, the interrupt CPU) and the cost model that converts
// counted MD work into virtual CPU seconds.
package cluster

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/work"
)

// Config describes one cluster configuration (one cell of the paper's
// factor space, middleware excluded — that lives in the MPI layer).
type Config struct {
	Nodes       int
	CPUsPerNode int // 1 or 2
	Net         netmodel.Params
	Seed        uint64 // stream for network stall draws
}

// Key returns a canonical content fingerprint of the platform
// configuration — every field of the topology and the full network
// parameter set — for use as a run-memoization cache key: two configs with
// equal keys simulate identically (given equal workload and cost model).
func (c Config) Key() string {
	return fmt.Sprintf("nodes=%d cpus=%d seed=%d net=%+v", c.Nodes, c.CPUsPerNode, c.Seed, c.Net)
}

// Validate checks the configuration. New panics on exactly the conditions
// Validate reports, so callers holding user input (the cmd/ binaries)
// validate first and print a one-line error instead of a panic trace.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node (got %d)", c.Nodes)
	}
	if c.CPUsPerNode != 1 && c.CPUsPerNode != 2 {
		return fmt.Errorf("cluster: unsupported CPUs per node %d (want 1 or 2)", c.CPUsPerNode)
	}
	return nil
}

// FaultModel is the hook the fault-injection layer implements. The machine
// and the MPI transport consult it for time-varying degradation and crash
// schedules; a nil model means a healthy platform. Implementations must be
// deterministic functions of (time, node/rank) — the simulation may query
// them in any order.
type FaultModel interface {
	// ComputeScale returns the compute-time multiplier (> 1 for a
	// straggler) in effect for node at virtual time now.
	ComputeScale(now float64, node int) float64
	// LinkScale returns the bandwidth divisor and latency multiplier in
	// effect for traffic entering or leaving node at now.
	LinkScale(now float64, node int) (bandwidthDiv, latencyMul float64)
	// StallBoost multiplies the TCP stall probability fabric-wide at now.
	StallBoost(now float64) float64
	// CrashTime returns the virtual time at which rank crashes, if ever.
	CrashTime(rank int) (float64, bool)
	// Install attaches machinery that needs the machine itself, e.g.
	// processes that hold NIC resources busy during flap windows.
	Install(m *Machine)
}

// Node holds the shared per-node resources.
type Node struct {
	ID    int
	NicTx *sim.Resource // transmit DMA engine / socket send path
	NicRx *sim.Resource // receive DMA engine
	Intr  *sim.Resource // interrupt CPU (CPU 0) for interrupt-driven nets
}

// Machine is the simulated cluster.
type Machine struct {
	Env   *sim.Env
	Cfg   Config
	Nodes []*Node

	// ActiveFlows counts in-flight transfers fabric-wide; the TCP stall
	// model keys off it.
	ActiveFlows int

	// Faults, when non-nil, degrades the platform (stragglers, link
	// degradation, stall boosts, crash schedules).
	Faults FaultModel

	Rng *rng.Source
}

// New builds a machine inside env.
func New(env *sim.Env, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	m := &Machine{Env: env, Cfg: cfg, Rng: rng.New(cfg.Seed ^ 0x636c7573746572)}
	for i := 0; i < cfg.Nodes; i++ {
		m.Nodes = append(m.Nodes, &Node{
			ID:    i,
			NicTx: sim.NewResource(env, fmt.Sprintf("node%d.tx", i), 1),
			NicRx: sim.NewResource(env, fmt.Sprintf("node%d.rx", i), 1),
			Intr:  sim.NewResource(env, fmt.Sprintf("node%d.intr", i), 1),
		})
	}
	return m
}

// Ranks returns the number of MPI ranks the machine hosts.
func (m *Machine) Ranks() int { return m.Cfg.Nodes * m.Cfg.CPUsPerNode }

// NodeOf maps a rank to its node (block placement: ranks r and r+1 share a
// node in the dual-CPU configuration, like consecutive MPI ranks under
// typical process managers).
func (m *Machine) NodeOf(rank int) *Node {
	return m.Nodes[rank/m.Cfg.CPUsPerNode]
}

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool {
	return a/m.Cfg.CPUsPerNode == b/m.Cfg.CPUsPerNode
}

// StallDelay draws a flow-control stall for one message, or 0. It
// implements the TCP pathology: stalls appear only when the fabric carries
// more concurrent flows than the threshold and grow more likely with
// congestion.
func (m *Machine) StallDelay() float64 {
	p := m.Cfg.Net
	if p.StallProb == 0 || m.ActiveFlows <= p.StallFlowThreshold {
		return 0
	}
	prob := p.StallProb * float64(m.ActiveFlows-p.StallFlowThreshold)
	if m.Faults != nil {
		prob *= m.Faults.StallBoost(m.Env.Now())
	}
	if prob > 0.9 {
		prob = 0.9
	}
	if m.Rng.Float64() >= prob {
		return 0
	}
	return m.Rng.Exponential(p.StallMean)
}

// ComputeScaleAt returns the straggler compute-time multiplier in effect
// for node at virtual time now (1 on a healthy machine). Non-positive
// model outputs are treated as 1 — a fault never makes a node infinitely
// fast.
func (m *Machine) ComputeScaleAt(now float64, node int) float64 {
	if m.Faults == nil {
		return 1
	}
	s := m.Faults.ComputeScale(now, node)
	if s <= 0 {
		return 1
	}
	return s
}

// LinkScaleAt returns the bandwidth divisor and latency multiplier for a
// transfer between nodes a and b at now: the worse of the two endpoints'
// degradations governs the link.
func (m *Machine) LinkScaleAt(now float64, a, b int) (bandwidthDiv, latencyMul float64) {
	if m.Faults == nil {
		return 1, 1
	}
	bwA, latA := m.Faults.LinkScale(now, a)
	bwB, latB := m.Faults.LinkScale(now, b)
	bw, lat := max(bwA, bwB), max(latA, latB)
	if bw < 1 {
		bw = 1
	}
	if lat < 1 {
		lat = 1
	}
	return bw, lat
}

// CostModel converts work counters into CPU seconds on the modelled
// processor. The constants are calibrated once (cmd/calib) so the
// sequential 10-step paper workload lands near the published Fig. 3 wall
// times (classic ≈ 3.4 s, PME ≈ 2.8 s on the 1 GHz Pentium III) and are
// never varied between experiments.
type CostModel struct {
	BondTerm     float64
	AngleTerm    float64
	DihedralTerm float64
	PairEval     float64
	ListDistEval float64
	GridCharge   float64
	FFTOp        float64
	RecipPoint   float64
	Integrate    float64
	Other        float64
}

// PentiumIII1GHz is the calibrated cost model of the paper's cluster nodes.
func PentiumIII1GHz() CostModel {
	return CostModel{
		BondTerm:     0.45e-6,
		AngleTerm:    0.80e-6,
		DihedralTerm: 1.60e-6,
		PairEval:     0.50e-6,
		ListDistEval: 0.032e-6,
		GridCharge:   0.11e-6,
		FFTOp:        7.6e-9,
		RecipPoint:   0.055e-6,
		Integrate:    0.25e-6,
		Other:        0.10e-6,
	}
}

// Seconds converts counters to CPU time.
func (c CostModel) Seconds(w work.Counters) float64 {
	return float64(w.BondTerms)*c.BondTerm +
		float64(w.AngleTerms)*c.AngleTerm +
		float64(w.DihedralTerms)*c.DihedralTerm +
		float64(w.PairEvals)*c.PairEval +
		float64(w.ListDistEvals)*c.ListDistEval +
		float64(w.GridCharges)*c.GridCharge +
		float64(w.FFTOps)*c.FFTOp +
		float64(w.RecipPoints)*c.RecipPoint +
		float64(w.Integrate)*c.Integrate +
		float64(w.Other)*c.Other
}
