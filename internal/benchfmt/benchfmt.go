// Package benchfmt holds the benchreport JSON schema (BENCH_host.json).
// It is shared by cmd/benchreport (which writes and gates kernel reports)
// and cmd/loadgen (which emits serve-latency reports in the same shape so
// one -check gate covers both).
package benchfmt

// Measurement is one benchmark's per-op cost. For latency entries the
// ns/op field carries the measured latency percentile and the allocation
// fields are zero.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchEntry pairs a current measurement with an optional baseline, and
// records the execution environment of this specific entry: the host CPU
// count and the GOMAXPROCS (workers) the benchmark actually ran with.
// One benchmark measured at several -cpu values appears as several
// entries sharing a Name and differing in Workers.
type BenchEntry struct {
	Name     string       `json:"name"`
	NumCPU   int          `json:"num_cpu"`
	Workers  int          `json:"workers"`
	Current  Measurement  `json:"current"`
	Baseline *Measurement `json:"baseline,omitempty"`
}

// PhaseImbalance is one phase's load-imbalance ratio (max/mean of the
// per-rank compute totals) in a named run configuration. Recorded as
// provenance for trend reading; the -check gate ignores it — imbalance is
// a property of the simulated platform, not of host performance.
type PhaseImbalance struct {
	Config    string  `json:"config"` // e.g. "replicated/p=4"
	Phase     string  `json:"phase"`
	Imbalance float64 `json:"imbalance_ratio"`
}

// Report is the BENCH_host.json schema. Suite, Samples and ExactKernels
// are provenance: -check refuses to compare reports that disagree on them
// (different kernel plans or suites measure different code).
type Report struct {
	GeneratedAt     string       `json:"generated_at"`
	GoVersion       string       `json:"go_version"`
	GOOS            string       `json:"goos"`
	GOARCH          string       `json:"goarch"`
	NumCPU          int          `json:"num_cpu"`
	Suite           string       `json:"suite"`
	Samples         int          `json:"samples"`
	ExactKernels    bool         `json:"exact_kernels"`
	ObsManifest     string       `json:"obs_manifest,omitempty"`
	FigureAllWallS  float64      `json:"figure_all_wall_s"`
	BaselineWallS   float64      `json:"baseline_figure_all_wall_s,omitempty"`
	FigureAllRuns   int          `json:"figure_all_unique_runs"`
	FigureAllHits   int          `json:"figure_all_cache_hits"`
	FigureAllTapes  int          `json:"figure_all_tape_records"`
	FigureAllReplay int          `json:"figure_all_tape_replays"`
	Benchmarks      []BenchEntry `json:"benchmarks"`

	// PhaseImbalance carries the per-phase imbalance ratios of one quick
	// simulated run per decomposition (see cmd/benchreport). Provenance
	// only — not compared by -check.
	PhaseImbalance []PhaseImbalance `json:"phase_imbalance,omitempty"`
}
