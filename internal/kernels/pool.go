// Package kernels provides the bounded worker pool the physics kernels
// shard their hot loops over, with a strict determinism contract: the
// result of a pooled computation depends only on the shard decomposition,
// never on the worker count or the scheduler. A kernel splits its work
// into a fixed number of shards (fixed per problem shape, NOT derived
// from the worker count), gives every shard its own scratch and
// accumulators, and merges the per-shard results in ascending shard
// order. Workers only decide which goroutine executes a shard — all
// arithmetic and every cross-shard reduction happens in a fixed order, so
// a pooled kernel produces byte-identical results at 1, 2, or N workers.
//
// Note the pooled decomposition is a *different* deterministic numeric
// path from the legacy serial loops: grouping a floating-point reduction
// into per-shard partial sums changes the association order, so pooled
// results differ from serial results at the usual 1-ulp-per-term level.
// Callers that need today's exact bytes simply do not attach a pool
// (md.Config.KernelWorkers == 0); callers that attach one get bytes that
// are stable across every worker count.
package kernels

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ShardCount is the fixed decomposition width kernels use for
// worker-count-independent sharding of atom ranges and pair blocks. It is
// deliberately a package constant: baking it into the decomposition (and
// not the worker count) is what makes pooled results identical at any
// -kernel-workers value. 16 keeps per-shard accumulator memory small
// while giving useful parallelism up to 16 cores.
const ShardCount = 16

// Pool bounds how many shards of a kernel invocation execute
// concurrently. The zero-cost design: Run spawns at most workers-1
// short-lived helper goroutines per invocation and participates itself,
// with shards claimed off a shared atomic counter. There are no
// persistent goroutines, so a Pool needs no Close and cannot leak — an
// idle pool is just a small struct. The expensive per-worker state
// (per-shard force accumulators, FFT line buffers, spline scratch) lives
// inside the kernels themselves and is reused across steps, which is
// what preserves the steady-state allocation behaviour of the hot path.
//
// A nil *Pool is valid everywhere and means "run serially inline"; a
// pool with Workers()==1 behaves identically. Run may be called
// concurrently from independent goroutines (the per-rank simulated
// engines share one pool); a single Run's fn must not call Run on the
// same pool recursively — kernels never nest.
type Pool struct {
	workers int

	gauge *obs.Gauge     // repro_kernel_workers, when attached
	hist  atomic.Pointer[obs.Histogram] // shard imbalance, when attached
}

// NewPool returns a pool that runs up to workers shards concurrently.
// workers <= 0 is treated as 1 (serial).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the configured concurrency bound. A nil pool reports 0.
func (p *Pool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// SetObs exports the pool's configuration and behaviour into reg:
// repro_kernel_workers (gauge, the concurrency bound) and
// repro_kernel_shard_imbalance_ratio (histogram of max/mean shard wall
// time per pooled invocation — 1.0 is perfect balance). Shard timing is
// only measured while a registry is attached, so unobserved runs pay no
// clock overhead. SetObs(nil) detaches.
func (p *Pool) SetObs(reg *obs.Registry) {
	if p == nil {
		return
	}
	if reg == nil {
		p.hist.Store(nil)
		return
	}
	p.gauge = reg.Gauge("repro_kernel_workers",
		"Configured deterministic kernel pool width (0 = serial legacy kernels).")
	p.gauge.Set(float64(p.workers))
	p.hist.Store(reg.Histogram("repro_kernel_shard_imbalance_ratio",
		"Max/mean shard wall time per pooled kernel invocation (1.0 = perfectly balanced).",
		obs.ExpBuckets(1.0, 1.3, 10)))
}

// Run executes fn(0) … fn(n-1), at most Workers() at a time, and returns
// once every shard has completed. Shards are claimed dynamically (an
// imbalanced shard does not idle the other workers), which is safe
// because shard *assignment* never affects results — each fn(i) owns
// shard i's scratch exclusively and all merging happens in the caller
// afterwards, in index order. With a nil pool, one worker, or n == 1 the
// loop runs inline with zero goroutines and zero allocations.
func (p *Pool) Run(n int, fn func(shard int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var hist *obs.Histogram
	if p != nil {
		hist = p.hist.Load()
	}
	var durs []int64
	if hist != nil {
		durs = make([]int64, n)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain(&next, int64(n), fn, durs)
		}()
	}
	drain(&next, int64(n), fn, durs)
	wg.Wait()
	if hist != nil {
		observeImbalance(hist, durs)
	}
}

func drain(next *atomic.Int64, n int64, fn func(int), durs []int64) {
	for {
		i := next.Add(1) - 1
		if i >= n {
			return
		}
		if durs != nil {
			t0 := time.Now()
			fn(int(i))
			durs[i] = time.Since(t0).Nanoseconds()
		} else {
			fn(int(i))
		}
	}
}

func observeImbalance(h *obs.Histogram, durs []int64) {
	var sum, max int64
	for _, d := range durs {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return
	}
	mean := float64(sum) / float64(len(durs))
	h.Observe(float64(max) / mean)
}

// Partition splits n items into p contiguous blocks as evenly as
// possible and returns the p+1 block offsets, reusing off's backing
// array when it has capacity (callers on hot paths keep the slice
// between invocations so steady state allocates nothing). Offsets are a
// pure function of (n, p) — the same decomposition on every host at
// every worker count.
func Partition(n, p int, off []int) []int {
	if p < 1 {
		p = 1
	}
	if cap(off) < p+1 {
		off = make([]int, p+1)
	}
	off = off[:p+1]
	base, rem := n/p, n%p
	off[0] = 0
	for i := 0; i < p; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}
