package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// Every shard must run exactly once, at every worker count, including
// nil pools, n < workers, and n == 0.
func TestRunCoversEveryShardOnce(t *testing.T) {
	pools := []*Pool{nil, NewPool(0), NewPool(1), NewPool(2), NewPool(7), NewPool(runtime.GOMAXPROCS(0) + 3)}
	for _, p := range pools {
		for _, n := range []int{0, 1, 2, 5, 16, 61} {
			counts := make([]int32, n)
			p.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: shard %d ran %d times", p.Workers(), n, i, c)
				}
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if w := (*Pool)(nil).Workers(); w != 0 {
		t.Fatalf("nil pool Workers = %d, want 0", w)
	}
	if w := NewPool(-3).Workers(); w != 1 {
		t.Fatalf("NewPool(-3).Workers = %d, want 1", w)
	}
	if w := NewPool(6).Workers(); w != 6 {
		t.Fatalf("Workers = %d, want 6", w)
	}
}

// The determinism contract in miniature: a sharded sum whose partials are
// merged in shard order must be bitwise identical at every worker count.
func TestShardedReductionBitwiseStable(t *testing.T) {
	const n = 10_000
	xs := make([]float64, n)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range xs {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		xs[i] = float64(s%1_000_003)/1e6 - 0.5
	}
	sum := func(workers int) float64 {
		p := NewPool(workers)
		off := Partition(n, ShardCount, nil)
		parts := make([]float64, ShardCount)
		p.Run(ShardCount, func(sh int) {
			var acc float64
			for i := off[sh]; i < off[sh+1]; i++ {
				acc += xs[i]
			}
			parts[sh] = acc
		})
		var total float64
		for _, v := range parts {
			total += v
		}
		return total
	}
	want := sum(1)
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0), 13} {
		if got := sum(w); got != want {
			t.Fatalf("workers=%d: sum %x differs from 1-worker sum %x", w, got, want)
		}
	}
}

// Independent engines (pmd ranks) share one pool; concurrent Runs must
// not interfere.
func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				var total atomic.Int64
				p.Run(ShardCount, func(i int) { total.Add(int64(i)) })
				if got := total.Load(); got != ShardCount*(ShardCount-1)/2 {
					t.Errorf("partial run: got %d", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPartition(t *testing.T) {
	cases := []struct{ n, p int }{{0, 4}, {1, 4}, {7, 3}, {16, 16}, {100, 7}, {5, 1}, {3, 0}}
	for _, c := range cases {
		off := Partition(c.n, c.p, nil)
		p := c.p
		if p < 1 {
			p = 1
		}
		if len(off) != p+1 || off[0] != 0 || off[p] != c.n {
			t.Fatalf("Partition(%d,%d) = %v", c.n, c.p, off)
		}
		for i := 0; i < p; i++ {
			sz := off[i+1] - off[i]
			if sz < c.n/p || sz > c.n/p+1 {
				t.Fatalf("Partition(%d,%d) block %d has size %d", c.n, c.p, i, sz)
			}
		}
	}
	// Buffer reuse: a large-enough slice is reused, not reallocated.
	buf := make([]int, 9)
	out := Partition(10, 8, buf)
	if &out[0] != &buf[0] {
		t.Fatal("Partition did not reuse the provided buffer")
	}
}

func TestObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(3)
	p.SetObs(reg)
	p.Run(8, func(int) {})
	if v := reg.Value("repro_kernel_workers"); v != 3 {
		t.Fatalf("repro_kernel_workers = %v, want 3", v)
	}
	h := p.hist.Load()
	if h == nil {
		t.Fatal("imbalance histogram not attached")
	}
	p.SetObs(nil)
	if p.hist.Load() != nil {
		t.Fatal("SetObs(nil) did not detach the histogram")
	}
}
