// Package trace collects timestamped events from simulated runs and
// renders them as per-rank text timelines or Chrome trace-event JSON
// (load chrome://tracing or Perfetto to inspect a run). The paper's
// methodology is exactly this kind of instrumentation — decomposing wall
// time into labelled intervals per processor.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies an interval.
type Kind string

// The interval kinds emitted by the simulated MPI layer and the parallel
// MD engine.
const (
	KindCompute Kind = "compute"
	KindSend    Kind = "send"
	KindRecv    Kind = "recv"
	KindSync    Kind = "sync"
	KindPhase   Kind = "phase"
	KindFault   Kind = "fault" // injected fault window (topmost overlay)
	KindGuard   Kind = "guard" // numeric guard trip (renders above faults)
)

// Event is one labelled interval on one rank's timeline.
type Event struct {
	Rank  int
	Kind  Kind
	Label string
	Start float64 // seconds, virtual time
	End   float64
}

// Duration returns End − Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// KnownKinds lists every interval kind a collector can receive, in render
// order.
func KnownKinds() []Kind {
	return []Kind{KindPhase, KindSync, KindSend, KindRecv, KindCompute, KindFault, KindGuard}
}

// KnownKind reports whether s names one of the emitted interval kinds.
func KnownKind(s string) bool {
	for _, k := range KnownKinds() {
		if Kind(s) == k {
			return true
		}
	}
	return false
}

// Sink receives trace events. *Collector is the plain implementation; the
// obs.Recorder is the richer one (hierarchical spans, metric aggregation)
// — every layer that used to require a *Collector accepts a Sink.
type Sink interface {
	Add(Event) error
}

// Collector accumulates events. The zero value is ready to use. All
// methods are safe for concurrent use: the discrete-event simulation is
// sequential, but the host-parallel worker pool (-workers, see
// internal/sim) may drive instrumented segments from several goroutines.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Add records one event. Intervals with End < Start are rejected.
func (c *Collector) Add(e Event) error {
	if e.End < e.Start {
		return fmt.Errorf("trace: negative interval %+v", e)
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
	return nil
}

// snapshot copies the current event slice under the lock.
func (c *Collector) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Events returns the recorded events sorted by (start, rank).
func (c *Collector) Events() []Event {
	out := c.snapshot()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Span returns the overall [min start, max end] of the trace.
func (c *Collector) Span() (start, end float64) {
	events := c.snapshot()
	if len(events) == 0 {
		return 0, 0
	}
	start, end = events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end
}

// Busy sums, per rank, the time covered by events of the given kind.
func (c *Collector) Busy(kind Kind) map[int]float64 {
	out := map[int]float64{}
	for _, e := range c.snapshot() {
		if e.Kind == kind {
			out[e.Rank] += e.Duration()
		}
	}
	return out
}

// Filter returns a new collector holding only events whose kind is in
// kinds (nil/empty keeps every kind) and whose duration is at least
// minDur. It is how cmd/tracer cuts huge timelines down to the lanes of
// interest.
func (c *Collector) Filter(kinds []Kind, minDur float64) *Collector {
	keep := map[Kind]bool{}
	for _, k := range kinds {
		keep[k] = true
	}
	out := &Collector{}
	for _, e := range c.snapshot() {
		if len(keep) > 0 && !keep[e.Kind] {
			continue
		}
		if e.Duration() < minDur {
			continue
		}
		out.events = append(out.events, e)
	}
	return out
}

// glyphs for the text timeline, one per kind.
var glyph = map[Kind]rune{
	KindCompute: '#',
	KindSend:    '>',
	KindRecv:    '<',
	KindSync:    '.',
	KindPhase:   '-',
	KindFault:   'X',
	KindGuard:   '!',
}

// RenderTimeline writes a per-rank ASCII gantt of the trace, `width`
// characters across the full span. Later events overwrite earlier ones in
// a cell; compute wins ties so the picture shows where CPUs are busy.
func (c *Collector) RenderTimeline(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	events := c.snapshot()
	start, end := c.Span()
	if end <= start {
		_, err := fmt.Fprintln(w, "trace: empty")
		return err
	}
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	ids := make([]int, 0, len(ranks))
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	scale := float64(width) / (end - start)
	lanes := map[int][]rune{}
	for _, r := range ids {
		lanes[r] = []rune(strings.Repeat(" ", width))
	}
	// Order: phases first (background), then comm, then compute; fault
	// windows are an overlay and render topmost so they stay visible.
	order := KnownKinds()
	for _, kind := range order {
		for _, e := range events {
			if e.Kind != kind {
				continue
			}
			lo := int((e.Start - start) * scale)
			hi := int((e.End - start) * scale)
			if hi == lo {
				hi = lo + 1
			}
			lane := lanes[e.Rank]
			for i := lo; i < hi && i < width; i++ {
				lane[i] = glyph[kind]
			}
		}
	}
	fmt.Fprintf(w, "timeline %.6f .. %.6f s  (# compute, > send, < recv, . sync, X fault, ! guard)\n", start, end)
	for _, r := range ids {
		if _, err := fmt.Fprintf(w, "rank %2d |%s|\n", r, string(lanes[r])); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace-event "complete" record.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeJSON emits the trace in the Chrome trace-event array format.
func (c *Collector) WriteChromeJSON(w io.Writer) error {
	out := make([]chromeEvent, 0, c.Len())
	for _, e := range c.Events() {
		out = append(out, chromeEvent{
			Name: e.Label,
			Cat:  string(e.Kind),
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  e.Duration() * 1e6,
			Pid:  0,
			Tid:  e.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
