package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func sample() *Collector {
	c := &Collector{}
	_ = c.Add(Event{Rank: 0, Kind: KindCompute, Label: "work", Start: 0, End: 0.5})
	_ = c.Add(Event{Rank: 0, Kind: KindSend, Label: "send", Start: 0.5, End: 0.6})
	_ = c.Add(Event{Rank: 1, Kind: KindSync, Label: "wait", Start: 0, End: 0.55})
	_ = c.Add(Event{Rank: 1, Kind: KindRecv, Label: "recv", Start: 0.55, End: 0.7})
	return c
}

func TestAddRejectsNegativeInterval(t *testing.T) {
	c := &Collector{}
	if err := c.Add(Event{Start: 2, End: 1}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if c.Len() != 0 {
		t.Fatal("bad event stored")
	}
}

func TestEventsSorted(t *testing.T) {
	c := &Collector{}
	_ = c.Add(Event{Rank: 1, Start: 5, End: 6})
	_ = c.Add(Event{Rank: 0, Start: 1, End: 2})
	_ = c.Add(Event{Rank: 0, Start: 5, End: 7})
	ev := c.Events()
	if ev[0].Start != 1 || ev[1].Rank != 0 || ev[2].Rank != 1 {
		t.Fatalf("ordering wrong: %+v", ev)
	}
}

func TestSpanAndBusy(t *testing.T) {
	c := sample()
	start, end := c.Span()
	if start != 0 || end != 0.7 {
		t.Fatalf("span = [%v, %v]", start, end)
	}
	busy := c.Busy(KindCompute)
	if busy[0] != 0.5 || busy[1] != 0 {
		t.Fatalf("busy = %v", busy)
	}
	if c.Busy(KindSync)[1] != 0.55 {
		t.Fatalf("sync busy = %v", c.Busy(KindSync))
	}
}

func TestRenderTimeline(t *testing.T) {
	c := sample()
	var b strings.Builder
	if err := c.RenderTimeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rank  0") || !strings.Contains(out, "rank  1") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	// Rank 0 computes for the first ~70% of the span.
	lines := strings.Split(out, "\n")
	var lane0 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "rank  0") {
			lane0 = ln
		}
	}
	if !strings.Contains(lane0, "####") {
		t.Fatalf("rank 0 lane has no compute: %q", lane0)
	}
	// Empty collector renders a placeholder without panicking.
	var e strings.Builder
	if err := (&Collector{}).RenderTimeline(&e, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "empty") {
		t.Fatalf("empty render: %q", e.String())
	}
}

func TestChromeJSON(t *testing.T) {
	c := sample()
	var b strings.Builder
	if err := c.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != 4 {
		t.Fatalf("events = %d", len(parsed))
	}
	first := parsed[0]
	if first["ph"] != "X" {
		t.Fatalf("phase field %v", first["ph"])
	}
	if first["dur"].(float64) <= 0 {
		t.Fatal("non-positive duration")
	}
}

// The host-parallel worker pool can drive instrumented segments from
// several goroutines; Add and the readers must tolerate that (run with
// -race).
func TestCollectorConcurrentAdd(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = c.Add(Event{Rank: g, Kind: KindCompute, Label: "w", Start: float64(i), End: float64(i) + 0.5})
				// Interleave reads with writes: these must not race.
				_ = c.Len()
				_ = c.Busy(KindCompute)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got != writers*per {
		t.Fatalf("events = %d, want %d", got, writers*per)
	}
	start, end := c.Span()
	if start != 0 || end != per-1+0.5 {
		t.Fatalf("span = [%g, %g]", start, end)
	}
}
