// Package fault is the scripted, deterministic fault-injection subsystem
// for the simulated cluster. A Scenario is a list of time-windowed fault
// Specs — link degradation, straggler CPUs, NIC flaps, rank crashes —
// loaded from JSON or a compact flag DSL. An Injector materializes a
// scenario (applying seeded jitter once, so runs are bit-reproducible) and
// implements cluster.FaultModel for the transport layers to consult.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// maxFlapCount bounds flap repetition so a hostile Count cannot make the
// injector materialize an unbounded occurrence list.
const maxFlapCount = 10000

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Kind enumerates the fault types.
type Kind string

const (
	// KindLink degrades the wire: bandwidth divided, latency multiplied,
	// TCP stall probability boosted, for every transfer touching Node (or
	// all nodes) inside the window.
	KindLink Kind = "link"
	// KindStraggler multiplies compute time on Node (or all nodes) inside
	// the window — the noisy-neighbor / thermal-throttle model.
	KindStraggler Kind = "straggler"
	// KindFlap holds Node's NIC transmit and receive engines busy for
	// Duration starting at Start, repeated Count times every Period.
	KindFlap Kind = "flap"
	// KindCrash kills Rank at virtual time Start.
	KindCrash Kind = "crash"
)

// Spec is one fault. Which fields matter depends on Kind; zero-valued
// multipliers mean "no change" and are normalized to 1 by Validate.
type Spec struct {
	Kind  Kind    `json:"kind"`
	Start float64 `json:"start"`          // window open / crash or flap time (virtual s)
	End   float64 `json:"end,omitempty"`  // window close; 0 = open-ended
	Node  int     `json:"node"`           // target node; -1 = all nodes
	Rank  int     `json:"rank,omitempty"` // crash target

	Bandwidth float64 `json:"bandwidth,omitempty"` // link: bandwidth divisor (≥ 1)
	Latency   float64 `json:"latency,omitempty"`   // link: latency multiplier (≥ 1)
	Stall     float64 `json:"stall,omitempty"`     // link: stall-probability multiplier (≥ 1)
	Slowdown  float64 `json:"slowdown,omitempty"`  // straggler: compute multiplier (≥ 1)

	Duration float64 `json:"duration,omitempty"` // flap: NIC busy time per occurrence
	Count    int     `json:"count,omitempty"`    // flap: occurrences (default 1)
	Period   float64 `json:"period,omitempty"`   // flap: spacing between occurrences
}

// Scenario is a named, seeded fault script.
type Scenario struct {
	Name   string  `json:"name"`
	Seed   uint64  `json:"seed"`
	Jitter float64 `json:"jitter,omitempty"` // ± window applied to Start times, drawn once per spec
	Faults []Spec  `json:"faults"`
}

// Validate normalizes and checks the scenario in place: zero multipliers
// become 1, flap Count defaults to 1, and impossible specs are rejected.
// Non-finite numbers are rejected everywhere — a NaN start time or an
// infinite window would otherwise reach the discrete-event clock — and
// flap counts are bounded so a malicious count cannot blow up injector
// materialization.
func (s *Scenario) Validate() error {
	if !isFinite(s.Jitter) || s.Jitter < 0 {
		return fmt.Errorf("fault: jitter %g must be finite and >= 0", s.Jitter)
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		for _, v := range []float64{f.Start, f.End, f.Bandwidth, f.Latency, f.Stall, f.Slowdown, f.Duration, f.Period} {
			if !isFinite(v) {
				return fmt.Errorf("fault %d: non-finite numeric field", i)
			}
		}
		if f.Count < 0 {
			return fmt.Errorf("fault %d: negative count %d", i, f.Count)
		}
		if f.Count > maxFlapCount {
			return fmt.Errorf("fault %d: count %d exceeds the limit of %d", i, f.Count, maxFlapCount)
		}
		if f.Bandwidth == 0 {
			f.Bandwidth = 1
		}
		if f.Latency == 0 {
			f.Latency = 1
		}
		if f.Stall == 0 {
			f.Stall = 1
		}
		if f.Slowdown == 0 {
			f.Slowdown = 1
		}
		if f.Count == 0 {
			f.Count = 1
		}
		switch f.Kind {
		case KindLink:
			if f.Bandwidth < 1 || f.Latency < 1 || f.Stall < 1 {
				return fmt.Errorf("fault %d: link multipliers must be >= 1", i)
			}
			if f.End != 0 && f.End <= f.Start {
				return fmt.Errorf("fault %d: window end %g not after start %g", i, f.End, f.Start)
			}
		case KindStraggler:
			if f.Slowdown < 1 {
				return fmt.Errorf("fault %d: straggler slowdown %g must be >= 1", i, f.Slowdown)
			}
			if f.End != 0 && f.End <= f.Start {
				return fmt.Errorf("fault %d: window end %g not after start %g", i, f.End, f.Start)
			}
		case KindFlap:
			if f.Duration <= 0 {
				return fmt.Errorf("fault %d: flap needs a positive duration", i)
			}
			if f.Node < 0 {
				return fmt.Errorf("fault %d: flap needs a specific node", i)
			}
			if f.Count > 1 && f.Period <= 0 {
				return fmt.Errorf("fault %d: repeated flap needs a positive period", i)
			}
		case KindCrash:
			if f.Rank < 0 {
				return fmt.Errorf("fault %d: crash needs a rank", i)
			}
		default:
			return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Start < 0 {
			return fmt.Errorf("fault %d: negative start time %g", i, f.Start)
		}
	}
	return nil
}

// Scale returns a copy of the scenario with every degradation factor
// interpolated toward severity sev: factor' = 1 + (factor-1)*sev, flap
// durations scaled by sev, crashes kept as-is (a crash has no partial
// severity). sev = 0 is a healthy platform, 1 the scenario as written,
// > 1 an amplification.
func (s *Scenario) Scale(sev float64) *Scenario {
	out := &Scenario{Name: s.Name, Seed: s.Seed, Jitter: s.Jitter}
	// Amplifying an already-huge factor can overflow to +Inf, which the
	// event clock must never see; saturate instead.
	clamp := func(v float64) float64 {
		if v > math.MaxFloat64 || math.IsInf(v, 1) {
			return math.MaxFloat64
		}
		return v
	}
	lerp := func(f float64) float64 {
		if f < 1 {
			f = 1
		}
		v := clamp(1 + (f-1)*sev)
		if v < 1 {
			return 1
		}
		return v
	}
	for _, f := range s.Faults {
		g := f
		switch f.Kind {
		case KindLink:
			g.Bandwidth = lerp(f.Bandwidth)
			g.Latency = lerp(f.Latency)
			g.Stall = lerp(f.Stall)
		case KindStraggler:
			g.Slowdown = lerp(f.Slowdown)
		case KindFlap:
			g.Duration = clamp(f.Duration * sev)
			if g.Duration <= 0 {
				continue // severity 0 removes the flap entirely
			}
		}
		out.Faults = append(out.Faults, g)
	}
	return out
}

// Load parses a JSON scenario and validates it.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return &s, nil
}

// LoadFile reads a JSON scenario from disk.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// ParseSpec parses the compact flag DSL: semicolon-separated fault specs
// of the form
//
//	kind@start[:end][,key=value...]
//
// with keys node, rank, bw (bandwidth divisor), lat (latency multiplier),
// stall, slow (straggler slowdown), dur, count, period. Examples:
//
//	straggler@5:25,node=1,slow=4
//	link@0:60,bw=8,lat=4,stall=3
//	flap@10,node=0,dur=0.5,count=3,period=20
//	crash@12,rank=3
//
// Omitted node defaults to -1 (all nodes) for link/straggler faults.
func ParseSpec(dsl string) (*Scenario, error) {
	s := &Scenario{Name: "cli"}
	for _, part := range strings.Split(dsl, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var f Spec
		f.Node = -1
		fields := strings.Split(part, ",")
		head := fields[0]
		at := strings.IndexByte(head, '@')
		if at < 0 {
			return nil, fmt.Errorf("fault: spec %q: want kind@start", head)
		}
		f.Kind = Kind(strings.TrimSpace(head[:at]))
		window := head[at+1:]
		var err error
		if colon := strings.IndexByte(window, ':'); colon >= 0 {
			if f.Start, err = strconv.ParseFloat(window[:colon], 64); err != nil {
				return nil, fmt.Errorf("fault: spec %q: bad start: %v", part, err)
			}
			if f.End, err = strconv.ParseFloat(window[colon+1:], 64); err != nil {
				return nil, fmt.Errorf("fault: spec %q: bad end: %v", part, err)
			}
		} else if f.Start, err = strconv.ParseFloat(window, 64); err != nil {
			return nil, fmt.Errorf("fault: spec %q: bad start: %v", part, err)
		}
		for _, kv := range fields[1:] {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, fmt.Errorf("fault: spec %q: want key=value, got %q", part, kv)
			}
			key, val := strings.TrimSpace(kv[:eq]), strings.TrimSpace(kv[eq+1:])
			switch key {
			case "node", "rank", "count":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: spec %q: bad %s: %v", part, key, err)
				}
				switch key {
				case "node":
					f.Node = n
				case "rank":
					f.Rank = n
				case "count":
					f.Count = n
				}
			case "bw", "lat", "stall", "slow", "dur", "period":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: spec %q: bad %s: %v", part, key, err)
				}
				switch key {
				case "bw":
					f.Bandwidth = x
				case "lat":
					f.Latency = x
				case "stall":
					f.Stall = x
				case "slow":
					f.Slowdown = x
				case "dur":
					f.Duration = x
				case "period":
					f.Period = x
				}
			default:
				return nil, fmt.Errorf("fault: spec %q: unknown key %q", part, key)
			}
		}
		s.Faults = append(s.Faults, f)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("fault: empty spec %q", dsl)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// CrashSpecs returns the indices of crash faults, sorted by start time
// then index (the order a run consumes them).
func (s *Scenario) CrashSpecs() []int {
	var idx []int
	for i, f := range s.Faults {
		if f.Kind == KindCrash {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if s.Faults[idx[a]].Start != s.Faults[idx[b]].Start {
			return s.Faults[idx[a]].Start < s.Faults[idx[b]].Start
		}
		return idx[a] < idx[b]
	})
	return idx
}
