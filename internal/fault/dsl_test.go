package fault

import (
	"testing"
)

func TestDSLFixedPoint(t *testing.T) {
	cases := []string{
		"straggler@5:25,node=1,slow=4",
		"link@0:60,bw=8,lat=4,stall=3",
		"flap@10,node=0,dur=0.5,count=3,period=20",
		"crash@12,rank=3",
		"link@0,bw=2;crash@5,rank=0;straggler@1:2,slow=1.5",
		"crash@0.083,rank=2",
	}
	for _, dsl := range cases {
		s, err := ParseSpec(dsl)
		if err != nil {
			t.Fatalf("%q: %v", dsl, err)
		}
		canon := s.DSL()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q of %q: %v", canon, dsl, err)
		}
		if got := s2.DSL(); got != canon {
			t.Errorf("not a fixed point: %q -> %q -> %q", dsl, canon, got)
		}
	}
}

func TestDSLOmitsDefaults(t *testing.T) {
	s, err := ParseSpec("link@3,bw=2")
	if err != nil {
		t.Fatal(err)
	}
	// Validate normalized lat/stall to 1 — the rendering must not print
	// them, nor the all-nodes default, nor the crash-only rank key.
	if got, want := s.DSL(), "link@3,bw=2"; got != want {
		t.Errorf("DSL() = %q, want %q", got, want)
	}
	s, err = ParseSpec("crash@1,rank=0")
	if err != nil {
		t.Fatal(err)
	}
	// rank 0 IS printed for crashes: omitting it would hide the target.
	if got, want := s.DSL(), "crash@1,rank=0"; got != want {
		t.Errorf("DSL() = %q, want %q", got, want)
	}
}

func TestRandomScenarioDeterministicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := RandomScenario(seed, 10, 4, 1)
		b := RandomScenario(seed, 10, 4, 1)
		if a.DSL() != b.DSL() {
			t.Fatalf("seed %d: generator not deterministic: %q vs %q", seed, a.DSL(), b.DSL())
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid scenario: %v", seed, err)
		}
		if len(a.Faults) < 1 || len(a.Faults) > 4 {
			t.Fatalf("seed %d: %d faults out of range", seed, len(a.Faults))
		}
		crashes := 0
		for _, f := range a.Faults {
			if f.Kind == KindCrash {
				crashes++
				if f.Rank < 0 || f.Rank >= 4 {
					t.Fatalf("seed %d: crash rank %d out of range", seed, f.Rank)
				}
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d: %d crashes (must stay recoverable)", seed, crashes)
		}
		if a.Jitter != 0 {
			t.Fatalf("seed %d: jitter %g not DSL-representable", seed, a.Jitter)
		}
		// Every generated scenario must round-trip through the DSL so the
		// shrinker's reproducer output is always replayable.
		if _, err := ParseSpec(a.DSL()); err != nil {
			t.Fatalf("seed %d: generated DSL %q does not parse: %v", seed, a.DSL(), err)
		}
	}
}

func TestRandomScenarioSingleNodeNeverCrashes(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		s := RandomScenario(seed, 10, 1, 2)
		for _, f := range s.Faults {
			if f.Kind == KindCrash {
				t.Fatalf("seed %d: crash generated on a 1-node cluster", seed)
			}
		}
	}
}

func TestScaleSaturatesInsteadOfOverflowing(t *testing.T) {
	s := &Scenario{Faults: []Spec{
		{Kind: KindStraggler, Start: 0, Node: -1, Slowdown: 1e308},
		{Kind: KindFlap, Start: 0, Node: 0, Duration: 1e308, Count: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Scale(3).Validate(); err != nil {
		t.Fatalf("amplified scenario invalid: %v", err)
	}
}
