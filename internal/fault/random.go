package fault

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

const randomSeedSalt = 0x63686173 // "chas"

// RandomScenario draws a seeded random fault scenario over the DSL
// vocabulary, sized for a cluster of nodes×cpusPerNode ranks and a run of
// roughly horizon virtual seconds. The same (seed, horizon, nodes,
// cpusPerNode) always yields the same scenario, and every scenario
// validates and is recoverable by construction: at most one crash is
// generated, only when a node can be lost (nodes >= 2), so soak runs can
// assert termination. Jitter stays 0 so the scenario is exactly
// representable in the flag DSL (the shrinker prints reproducers there).
func RandomScenario(seed uint64, horizon float64, nodes, cpusPerNode int) *Scenario {
	if horizon <= 0 || nodes < 1 || cpusPerNode < 1 {
		panic(fmt.Sprintf("fault: bad RandomScenario shape (horizon %g, %d nodes, %d cpus)",
			horizon, nodes, cpusPerNode))
	}
	r := rng.New(seed ^ randomSeedSalt)
	s := &Scenario{Name: fmt.Sprintf("random-%d", seed), Seed: seed}

	n := 1 + r.Intn(4)
	crashUsed := false
	for i := 0; i < n; i++ {
		kinds := []Kind{KindLink, KindStraggler, KindFlap}
		if nodes >= 2 && !crashUsed {
			kinds = append(kinds, KindCrash)
		}
		kind := kinds[r.Intn(len(kinds))]
		f := Spec{Kind: kind, Node: -1}
		switch kind {
		case KindLink:
			f.Start = round3(r.Range(0, 0.6*horizon))
			if r.Float64() < 0.7 { // 30% of windows stay open-ended
				f.End = round3(f.Start + r.Range(0.05*horizon, horizon))
			}
			if r.Float64() < 0.5 {
				f.Node = r.Intn(nodes)
			}
			f.Bandwidth = round3(1 + r.Range(0, 8))
			f.Latency = round3(1 + r.Range(0, 4))
			f.Stall = round3(1 + r.Range(0, 3))
		case KindStraggler:
			f.Start = round3(r.Range(0, 0.6*horizon))
			if r.Float64() < 0.7 {
				f.End = round3(f.Start + r.Range(0.05*horizon, horizon))
			}
			if r.Float64() < 0.6 {
				f.Node = r.Intn(nodes)
			}
			f.Slowdown = round3(1 + r.Range(0.5, 6))
		case KindFlap:
			f.Node = r.Intn(nodes)
			f.Start = round3(r.Range(0, 0.8*horizon))
			f.Duration = round3(r.Range(0.01*horizon, 0.1*horizon) + 1e-3)
			f.Count = 1 + r.Intn(3)
			if f.Count > 1 {
				f.Period = round3(f.Duration + r.Range(0.05*horizon, 0.3*horizon))
			}
		case KindCrash:
			crashUsed = true
			f.Rank = r.Intn(nodes * cpusPerNode)
			f.Start = round3(r.Range(0.05*horizon, 0.7*horizon))
		}
		s.Faults = append(s.Faults, f)
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fault: RandomScenario generated an invalid scenario: %v", err))
	}
	return s
}

// round3 rounds to 3 decimals so generated scenarios print compactly in
// the DSL without losing the exact-round-trip property.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
