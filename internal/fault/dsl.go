package fault

import (
	"strconv"
	"strings"
)

// DSL renders the spec in the compact flag syntax ParseSpec accepts,
// omitting fields at their defaults. For a validated spec the rendering
// is a fixed point: ParseSpec(s.DSL()) validates to a spec with the same
// DSL. Keys appear in a fixed order so renderings are canonical.
func (f Spec) DSL() string {
	var b strings.Builder
	b.WriteString(string(f.Kind))
	b.WriteByte('@')
	b.WriteString(ftoa(f.Start))
	if f.End != 0 {
		b.WriteByte(':')
		b.WriteString(ftoa(f.End))
	}
	kv := func(key, val string) {
		b.WriteByte(',')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if f.Node != -1 {
		kv("node", strconv.Itoa(f.Node))
	}
	if f.Rank != 0 || f.Kind == KindCrash {
		kv("rank", strconv.Itoa(f.Rank))
	}
	if f.Bandwidth != 0 && f.Bandwidth != 1 {
		kv("bw", ftoa(f.Bandwidth))
	}
	if f.Latency != 0 && f.Latency != 1 {
		kv("lat", ftoa(f.Latency))
	}
	if f.Stall != 0 && f.Stall != 1 {
		kv("stall", ftoa(f.Stall))
	}
	if f.Slowdown != 0 && f.Slowdown != 1 {
		kv("slow", ftoa(f.Slowdown))
	}
	if f.Duration != 0 {
		kv("dur", ftoa(f.Duration))
	}
	if f.Count != 0 && f.Count != 1 {
		kv("count", strconv.Itoa(f.Count))
	}
	if f.Period != 0 {
		kv("period", ftoa(f.Period))
	}
	return b.String()
}

// DSL renders the scenario's faults as a semicolon-joined spec string.
// Name, Seed and Jitter are not representable in the DSL; reproducer
// output passes the seed separately (ParseSpec scenarios carry Seed 0,
// which the CLIs fill from -seed).
func (s *Scenario) DSL() string {
	parts := make([]string, 0, len(s.Faults))
	for _, f := range s.Faults {
		parts = append(parts, f.DSL())
	}
	return strings.Join(parts, ";")
}

// ftoa formats a float with the minimal digits that round-trip exactly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
