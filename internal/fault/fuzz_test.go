package fault

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzParseSpec drives the flag-DSL parser with arbitrary input. Every
// accepted scenario must be well-formed and its canonical rendering must
// be a fixed point: ParseSpec(s.DSL()) accepts and renders identically.
func FuzzParseSpec(f *testing.F) {
	f.Add("straggler@5:25,node=1,slow=4")
	f.Add("link@0:60,bw=8,lat=4,stall=3")
	f.Add("flap@10,node=0,dur=0.5,count=3,period=20")
	f.Add("crash@12,rank=3")
	f.Add("link@0,bw=2;crash@5,rank=0;straggler@1:2,slow=1.5")
	f.Add("link@1e309")
	f.Add("flap@1,node=0,dur=1,count=99999999")
	f.Add("crash@NaN,rank=1")
	f.Add(";;;")
	f.Add("link@3,node=-7,bw=1.0000000000000002")
	f.Fuzz(func(t *testing.T, dsl string) {
		s, err := ParseSpec(dsl)
		if err != nil {
			return
		}
		if len(s.Faults) == 0 {
			t.Fatalf("accepted %q with no faults", dsl)
		}
		// Accepted means validated: normalization already ran, so a second
		// Validate must agree (idempotence).
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted %q but re-validation fails: %v", dsl, err)
		}
		canon := s.DSL()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not parse: %v", canon, dsl, err)
		}
		if got := s2.DSL(); got != canon {
			t.Fatalf("DSL not a fixed point: %q -> %q -> %q", dsl, canon, got)
		}
	})
}

// FuzzLoad drives the JSON scenario loader. Accepted scenarios must
// survive a marshal/load round trip and scale without panicking.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{"name":"x","seed":7,"faults":[{"kind":"crash","start":5,"node":-1,"rank":2}]}`))
	f.Add([]byte(`{"name":"w","jitter":0.5,"faults":[{"kind":"link","start":0,"end":9,"node":1,"bandwidth":4}]}`))
	f.Add([]byte(`{"faults":[{"kind":"flap","start":1,"node":0,"duration":0.2,"count":3,"period":2}]}`))
	f.Add([]byte(`{"faults":[{"kind":"straggler","start":1e308,"node":-1,"slowdown":1e308}]}`))
	f.Add([]byte(`{"faults":[{"kind":"link","start":0,"node":-1,"bandwidth":-1}]}`))
	f.Add([]byte(`{"faults":null}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		if _, err := Load(bytes.NewReader(buf)); err != nil {
			t.Fatalf("marshal/load round trip rejected: %v\njson: %s", err, buf)
		}
		// Scaling an accepted scenario must stay valid at any severity.
		for _, sev := range []float64{0, 0.5, 1, 3} {
			if err := s.Scale(sev).Validate(); err != nil {
				t.Fatalf("Scale(%g) of accepted scenario invalid: %v", sev, err)
			}
		}
		// The canonical DSL rendering of any accepted scenario reparses
		// (the JSON vocabulary is a superset only through Name/Seed/Jitter,
		// which the DSL drops by design).
		if canon := s.DSL(); canon != "" {
			if _, err := ParseSpec(canon); err != nil {
				t.Fatalf("DSL rendering %q of accepted JSON does not parse: %v", canon, err)
			}
		}
	})
}

// TestFuzzSeedsAreInteresting pins the behaviours the seed corpus is
// chosen to cover, so regressions in the corpus itself get caught.
func TestFuzzSeedsAreInteresting(t *testing.T) {
	if _, err := ParseSpec("link@1e309"); err == nil {
		t.Error("infinite start time accepted")
	}
	if _, err := ParseSpec("flap@1,node=0,dur=1,count=99999999"); err == nil {
		t.Error("unbounded flap count accepted")
	}
	// strconv.ParseFloat accepts "NaN", so the rejection must come from
	// Validate's finiteness check, not the parser.
	if _, err := ParseSpec("crash@NaN,rank=1"); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("NaN start: want non-finite validation error, got %v", err)
	}
	if _, err := ParseSpec(";;;"); err == nil {
		t.Error("empty spec accepted")
	}
}
