package fault

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func TestParseSpecDSL(t *testing.T) {
	sc, err := ParseSpec("straggler@5:25,node=1,slow=4; link@0:60,bw=8,lat=4,stall=3 ;flap@10,node=0,dur=0.5,count=3,period=20;crash@12,rank=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 4 {
		t.Fatalf("want 4 faults, got %d", len(sc.Faults))
	}
	s := sc.Faults[0]
	if s.Kind != KindStraggler || s.Start != 5 || s.End != 25 || s.Node != 1 || s.Slowdown != 4 {
		t.Fatalf("straggler parsed wrong: %+v", s)
	}
	l := sc.Faults[1]
	if l.Kind != KindLink || l.Bandwidth != 8 || l.Latency != 4 || l.Stall != 3 || l.Node != -1 {
		t.Fatalf("link parsed wrong: %+v", l)
	}
	f := sc.Faults[2]
	if f.Kind != KindFlap || f.Duration != 0.5 || f.Count != 3 || f.Period != 20 {
		t.Fatalf("flap parsed wrong: %+v", f)
	}
	c := sc.Faults[3]
	if c.Kind != KindCrash || c.Rank != 3 || c.Start != 12 {
		t.Fatalf("crash parsed wrong: %+v", c)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"wobble@3",
		"crash",
		"straggler@5,slow=0.5",
		"link@10:5",
		"flap@1,node=0",
		"flap@1,node=0,dur=1,count=2",
		"straggler@5,zoom=2",
		"crash@x,rank=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	js := `{"name":"mixed","seed":42,"jitter":0.5,"faults":[
		{"kind":"straggler","start":1,"end":3,"node":0,"slowdown":2},
		{"kind":"crash","start":2,"rank":1}
	]}`
	sc, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mixed" || sc.Seed != 42 || len(sc.Faults) != 2 {
		t.Fatalf("scenario parsed wrong: %+v", sc)
	}
	if _, err := Load(strings.NewReader(`{"faults":[{"kind":"straggler","start":1,"bogus":2}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"faults":[{"kind":"nope","start":1}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestScaleSeverity(t *testing.T) {
	sc, err := ParseSpec("straggler@0:10,node=0,slow=5;link@0:10,bw=9,lat=3;flap@2,node=0,dur=1;crash@4,rank=2")
	if err != nil {
		t.Fatal(err)
	}
	half := sc.Scale(0.5)
	if got := half.Faults[0].Slowdown; got != 3 {
		t.Fatalf("slowdown at sev 0.5 = %g, want 3", got)
	}
	if got := half.Faults[1].Bandwidth; got != 5 {
		t.Fatalf("bandwidth divisor at sev 0.5 = %g, want 5", got)
	}
	if got := half.Faults[2].Duration; got != 0.5 {
		t.Fatalf("flap duration at sev 0.5 = %g, want 0.5", got)
	}
	if half.Faults[3] != sc.Faults[3] {
		t.Fatal("crash spec must not scale")
	}
	zero := sc.Scale(0)
	for _, f := range zero.Faults {
		switch f.Kind {
		case KindStraggler:
			if f.Slowdown != 1 {
				t.Fatalf("sev 0 straggler slowdown = %g", f.Slowdown)
			}
		case KindFlap:
			t.Fatal("sev 0 must drop flaps")
		}
	}
}

func TestInjectorWindowsAndOffset(t *testing.T) {
	sc, err := ParseSpec("straggler@10:20,node=1,slow=3;link@5:15,bw=4,lat=2,stall=6")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := inj.ComputeScale(15, 1); s != 3 {
		t.Fatalf("in-window compute scale = %g, want 3", s)
	}
	if s := inj.ComputeScale(15, 0); s != 1 {
		t.Fatalf("other-node compute scale = %g, want 1", s)
	}
	if s := inj.ComputeScale(25, 1); s != 1 {
		t.Fatalf("post-window compute scale = %g, want 1", s)
	}
	if bw, lat := inj.LinkScale(10, 0); bw != 4 || lat != 2 {
		t.Fatalf("in-window link scale = %g,%g, want 4,2", bw, lat)
	}
	if s := inj.StallBoost(10); s != 6 {
		t.Fatalf("in-window stall boost = %g, want 6", s)
	}

	// With an offset the same scenario times shift: local t=3 is scenario
	// t=15, inside both windows.
	off, err := NewInjector(sc, Options{Offset: 12})
	if err != nil {
		t.Fatal(err)
	}
	if s := off.ComputeScale(3, 1); s != 3 {
		t.Fatalf("offset compute scale = %g, want 3", s)
	}
	if bw, _ := off.LinkScale(13, 0); bw != 1 {
		t.Fatalf("offset link scale past window = %g, want 1", bw)
	}
}

func TestInjectorCrashConsumption(t *testing.T) {
	sc, err := ParseSpec("crash@7,rank=2;crash@11,rank=2")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := inj.CrashTime(2); !ok || at != 7 {
		t.Fatalf("first crash = %g,%v, want 7,true", at, ok)
	}
	spec, ok := inj.CrashSpecAt(2)
	if !ok || spec != 0 {
		t.Fatalf("crash spec = %d,%v, want 0,true", spec, ok)
	}
	if _, ok := inj.CrashTime(0); ok {
		t.Fatal("rank 0 has no crash")
	}

	// After consuming the first crash and offsetting past it, the second
	// remains (translated and clamped).
	next, err := NewInjector(sc, Options{Offset: 9, ConsumedCrashes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := next.CrashTime(2); !ok || at != 2 {
		t.Fatalf("second crash local time = %g,%v, want 2,true", at, ok)
	}
	done, err := NewInjector(sc, Options{ConsumedCrashes: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := done.CrashTime(2); ok {
		t.Fatal("all crashes consumed but CrashTime still fires")
	}
}

func TestJitterDeterministic(t *testing.T) {
	sc := &Scenario{Seed: 99, Jitter: 1, Faults: []Spec{
		{Kind: KindStraggler, Start: 10, End: 20, Node: 0, Slowdown: 2},
		{Kind: KindCrash, Start: 30, Rank: 1},
	}}
	a, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ta, oka := a.CrashTime(1)
	tb, okb := b.CrashTime(1)
	if !oka || !okb || ta != tb {
		t.Fatalf("jittered crash times differ: %g vs %g", ta, tb)
	}
	if ta == 30 {
		t.Fatal("jitter did not move the crash time")
	}
	for tm := 0.0; tm < 25; tm += 0.25 {
		if a.ComputeScale(tm, 0) != b.ComputeScale(tm, 0) {
			t.Fatalf("jittered windows differ at t=%g", tm)
		}
	}
}

func TestFlapHoldsNIC(t *testing.T) {
	sc, err := ParseSpec("flap@1,node=0,dur=2")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnv()
	m := cluster.New(env, cluster.Config{Nodes: 2, CPUsPerNode: 1, Net: netmodel.TCPGigE()})
	inj.Install(m)
	var acquired float64
	env.Spawn("user", func(p *sim.Proc) {
		p.Advance(1.5) // mid-flap
		m.Nodes[0].NicTx.Acquire(p)
		acquired = p.Now()
		m.Nodes[0].NicTx.Release()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acquired != 3 {
		t.Fatalf("NIC acquired at t=%g, want 3 (after the flap releases)", acquired)
	}
}

func TestEventsForTimeline(t *testing.T) {
	sc, err := ParseSpec("straggler@1:3,node=1,slow=2;crash@2,rank=0;flap@0.5,node=0,dur=1")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := inj.Events(2, 2, 10)
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	var sawStraggler, sawCrash, sawFlap bool
	for _, e := range evs {
		switch {
		case strings.HasPrefix(e.Label, "fault:straggler"):
			sawStraggler = true
			if e.Rank != 2 {
				t.Fatalf("straggler on lane %d, want 2 (node 1, 2 cpus)", e.Rank)
			}
		case strings.HasPrefix(e.Label, "fault:crash"):
			sawCrash = true
		case e.Label == "fault:nic-flap":
			sawFlap = true
		}
		if e.End <= e.Start {
			t.Fatalf("event %q has empty span", e.Label)
		}
	}
	if !sawStraggler || !sawCrash || !sawFlap {
		t.Fatalf("missing event kinds: straggler=%v crash=%v flap=%v", sawStraggler, sawCrash, sawFlap)
	}
}
