package fault

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// window is one materialized degradation window (jitter already applied).
type window struct {
	kind       Kind
	start, end float64 // end = +inf encoded as 0 handled at materialize
	node       int     // -1 = all
	bwDiv      float64
	latMul     float64
	stallMul   float64
	compMul    float64
}

func (w window) active(t float64, node int) bool {
	if t < w.start || (w.end > 0 && t >= w.end) {
		return false
	}
	return w.node < 0 || w.node == node
}

// crash is one materialized rank kill.
type crash struct {
	spec int // index into Scenario.Faults, for consumption tracking
	rank int
	at   float64
}

// flap is one materialized NIC-busy occurrence.
type flap struct {
	node     int
	at       float64
	duration float64
}

// Options adapts an injector to a restarted run.
type Options struct {
	// Offset shifts every query: a restarted simulation begins at local
	// time 0 but the scenario clock has already advanced by Offset.
	Offset float64
	// ConsumedCrashes lists Scenario.Faults indices of crashes that
	// already fired in earlier attempts and must not fire again.
	ConsumedCrashes []int
}

// Injector materializes a scenario and implements cluster.FaultModel.
// All randomness (jitter) is drawn at construction from a source seeded by
// the scenario seed, so two injectors built from the same scenario and
// options behave identically.
type Injector struct {
	sc      *Scenario
	opts    Options
	windows []window
	crashes []crash
	flaps   []flap
}

const jitterSeedSalt = 0x6661756c74 // "fault"

// NewInjector validates and materializes the scenario.
func NewInjector(sc *Scenario, opts Options) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	consumed := make(map[int]bool, len(opts.ConsumedCrashes))
	for _, i := range opts.ConsumedCrashes {
		consumed[i] = true
	}
	src := rng.New(sc.Seed ^ jitterSeedSalt)
	inj := &Injector{sc: sc, opts: opts}
	for i, f := range sc.Faults {
		// One jitter draw per spec regardless of use keeps the stream
		// aligned when specs are toggled by severity scaling upstream.
		var dt float64
		if sc.Jitter > 0 {
			dt = src.Range(-sc.Jitter, sc.Jitter)
		}
		start := f.Start + dt
		if start < 0 {
			start = 0
		}
		end := f.End
		if end > 0 {
			end += dt
			if end <= start {
				continue // jittered into nothing
			}
		}
		switch f.Kind {
		case KindLink:
			inj.windows = append(inj.windows, window{
				kind: KindLink, start: start, end: end, node: f.Node,
				bwDiv: f.Bandwidth, latMul: f.Latency, stallMul: f.Stall, compMul: 1,
			})
		case KindStraggler:
			inj.windows = append(inj.windows, window{
				kind: KindStraggler, start: start, end: end, node: f.Node,
				bwDiv: 1, latMul: 1, stallMul: 1, compMul: f.Slowdown,
			})
		case KindFlap:
			for k := 0; k < f.Count; k++ {
				inj.flaps = append(inj.flaps, flap{
					node: f.Node, at: start + float64(k)*f.Period, duration: f.Duration,
				})
			}
		case KindCrash:
			if !consumed[i] {
				inj.crashes = append(inj.crashes, crash{spec: i, rank: f.Rank, at: start})
			}
		}
	}
	return inj, nil
}

// Scenario returns the scenario this injector was built from.
func (in *Injector) Scenario() *Scenario { return in.sc }

// scenarioTime maps local virtual time to the scenario clock.
func (in *Injector) scenarioTime(now float64) float64 { return now + in.opts.Offset }

// ComputeScale implements cluster.FaultModel: the product of all straggler
// multipliers active on node.
func (in *Injector) ComputeScale(now float64, node int) float64 {
	t := in.scenarioTime(now)
	s := 1.0
	for _, w := range in.windows {
		if w.kind == KindStraggler && w.active(t, node) {
			s *= w.compMul
		}
	}
	return s
}

// LinkScale implements cluster.FaultModel: the product of all link
// degradations active on node.
func (in *Injector) LinkScale(now float64, node int) (bandwidthDiv, latencyMul float64) {
	t := in.scenarioTime(now)
	bandwidthDiv, latencyMul = 1, 1
	for _, w := range in.windows {
		if w.kind == KindLink && w.active(t, node) {
			bandwidthDiv *= w.bwDiv
			latencyMul *= w.latMul
		}
	}
	return bandwidthDiv, latencyMul
}

// StallBoost implements cluster.FaultModel: link windows boost the TCP
// stall probability fabric-wide (stalls are a fabric property in the
// model, keyed on total active flows).
func (in *Injector) StallBoost(now float64) float64 {
	t := in.scenarioTime(now)
	s := 1.0
	for _, w := range in.windows {
		if w.kind == KindLink && (t >= w.start && (w.end == 0 || t < w.end)) {
			s *= w.stallMul
		}
	}
	return s
}

// CrashTime implements cluster.FaultModel: the earliest unconsumed crash
// scheduled for rank, translated to local time and clamped at 0 (a crash
// from before a restart's offset fires immediately — it was only skipped
// if explicitly consumed).
func (in *Injector) CrashTime(rank int) (float64, bool) {
	best, found := 0.0, false
	for _, c := range in.crashes {
		if c.rank != rank {
			continue
		}
		local := c.at - in.opts.Offset
		if local < 0 {
			local = 0
		}
		if !found || local < best {
			best, found = local, true
		}
	}
	return best, found
}

// CrashSpecAt returns the Scenario.Faults index of the unconsumed crash
// for rank nearest local time t, for marking it consumed after recovery.
func (in *Injector) CrashSpecAt(rank int) (int, bool) {
	bestT, bestSpec, found := 0.0, -1, false
	for _, c := range in.crashes {
		if c.rank != rank {
			continue
		}
		local := c.at - in.opts.Offset
		if local < 0 {
			local = 0
		}
		if !found || local < bestT {
			bestT, bestSpec, found = local, c.spec, true
		}
	}
	return bestSpec, found
}

// Install implements cluster.FaultModel: spawn one process per NIC-flap
// occurrence that seizes the node's transmit and receive engines for the
// flap duration. Flaps wholly before the offset are skipped; partially
// elapsed ones run for their remainder.
func (in *Injector) Install(m *cluster.Machine) {
	for _, f := range in.flaps {
		if f.node < 0 || f.node >= len(m.Nodes) {
			continue
		}
		at := f.at - in.opts.Offset
		dur := f.duration
		if at < 0 {
			dur += at // clip the already-elapsed part
			at = 0
			if dur <= 0 {
				continue
			}
		}
		node := m.Nodes[f.node]
		start, hold := at, dur
		m.Env.Spawn(fmt.Sprintf("flap node%d", f.node), func(p *sim.Proc) {
			p.Advance(start)
			node.NicTx.Acquire(p)
			node.NicRx.Acquire(p)
			p.Advance(hold)
			node.NicRx.Release()
			node.NicTx.Release()
		})
	}
}

// Events renders the injected faults as trace events so timelines show
// the windows. Node-scoped faults land on the node's first rank lane;
// fabric-wide windows on every node's first lane. Open windows are closed
// at horizon.
func (in *Injector) Events(nodes, cpusPerNode int, horizon float64) []trace.Event {
	var evs []trace.Event
	lane := func(node int) int { return node * cpusPerNode }
	clip := func(start, end float64) (float64, float64, bool) {
		start -= in.opts.Offset
		end -= in.opts.Offset
		if start < 0 {
			start = 0
		}
		if end > horizon {
			end = horizon
		}
		return start, end, end > start
	}
	emit := func(node int, label string, start, end float64) {
		s, e, ok := clip(start, end)
		if !ok {
			return
		}
		evs = append(evs, trace.Event{Rank: lane(node), Kind: trace.KindFault, Label: label, Start: s, End: e})
	}
	for _, w := range in.windows {
		end := w.end
		if end == 0 {
			end = horizon + in.opts.Offset
		}
		var label string
		if w.kind == KindStraggler {
			label = fmt.Sprintf("fault:straggler x%.3g", w.compMul)
		} else {
			label = fmt.Sprintf("fault:link bw/%.3g lat x%.3g", w.bwDiv, w.latMul)
		}
		if w.node >= 0 {
			if w.node < nodes {
				emit(w.node, label, w.start, end)
			}
		} else {
			for n := 0; n < nodes; n++ {
				emit(n, label, w.start, end)
			}
		}
	}
	for _, f := range in.flaps {
		if f.node < nodes {
			emit(f.node, "fault:nic-flap", f.at, f.at+f.duration)
		}
	}
	for _, c := range in.crashes {
		node := c.rank / cpusPerNode
		if node < nodes {
			emit(node, fmt.Sprintf("fault:crash rank%d", c.rank), c.at, c.at+horizon/200+1e-9)
		}
	}
	return evs
}
