// Package guard implements runtime numeric guardrails for MD runs: NaN/Inf
// detection on forces and energies and an energy-drift monitor with a
// configurable tolerance window. A guard trip does not decide policy —
// the engine layer re-evaluates the step on exact kernels (graceful
// degradation) or aborts, per Config.Policy, and records the trip as an
// Event that flows into the tracer timeline next to fault lanes.
//
// The monitor is deliberately cheap and deterministic: checks run on
// replicated data that is bitwise identical on every rank, so in a
// parallel run every rank reaches the same verdict at the same step and
// no collective is needed to agree on it.
package guard

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Cause labels why a guard tripped.
type Cause string

const (
	CauseForceNaN  Cause = "force-nonfinite"  // NaN/Inf component in the force array
	CauseEnergyNaN Cause = "energy-nonfinite" // NaN/Inf total energy
	CauseDrift     Cause = "energy-drift"     // |E − window mean| beyond DriftTol
	CauseInjected  Cause = "injected"         // test-only synthetic trip
)

// Policy decides what the engine does after a trip.
type Policy int

const (
	// PolicyFallback re-evaluates the tripped step with exact kernels and
	// continues the run on exact math.
	PolicyFallback Policy = iota
	// PolicyAbort stops the run with a *TripError.
	PolicyAbort
)

func (p Policy) String() string {
	switch p {
	case PolicyFallback:
		return "fallback"
	case PolicyAbort:
		return "abort"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config enables and tunes the guardrails.
type Config struct {
	Enabled bool
	Policy  Policy
	// DriftTol is the allowed absolute deviation of the total energy from
	// its trailing-window mean, in kcal/mol. Zero disables drift checking
	// (NaN/Inf checks stay on whenever Enabled is set).
	DriftTol float64
	// DriftWindow is the trailing-window length in steps; zero means 16.
	DriftWindow int
	// InjectStep, when > 0, forces one synthetic trip at that 1-based
	// step. Test hook: exercises the fallback path without needing real
	// numeric corruption. Consumed once per Monitor.
	InjectStep int
}

const defaultDriftWindow = 16

// Event records one guard trip.
type Event struct {
	Rank      int
	Step      int // 1-based MD step
	Cause     Cause
	Value     float64 // offending energy, or drift delta for CauseDrift
	Atom      int     // offending atom index for CauseForceNaN, else -1
	Recovered bool    // true when the step was re-run on exact kernels
}

func (e Event) String() string {
	state := "aborted"
	if e.Recovered {
		state = "recovered on exact kernels"
	}
	switch e.Cause {
	case CauseForceNaN:
		return fmt.Sprintf("guard: rank %d step %d: non-finite force on atom %d (%s)",
			e.Rank, e.Step, e.Atom, state)
	case CauseDrift:
		return fmt.Sprintf("guard: rank %d step %d: energy drift %.6g beyond tolerance (%s)",
			e.Rank, e.Step, e.Value, state)
	default:
		return fmt.Sprintf("guard: rank %d step %d: %s value %.6g (%s)",
			e.Rank, e.Step, e.Cause, e.Value, state)
	}
}

// TripError is returned when PolicyAbort stops a run at a guard trip.
type TripError struct {
	Ev Event
}

func (e *TripError) Error() string { return e.Ev.String() }

// Monitor holds the drift window and the trip log for one run attempt.
// Not safe for concurrent use; in parallel runs each rank owns one, and
// identical inputs keep them in lockstep.
type Monitor struct {
	cfg      Config
	window   []float64 // ring buffer of recent total energies
	next     int
	filled   bool
	exact    bool // already degraded to exact kernels
	injected bool // InjectStep consumed
	events   []Event
}

// NewMonitor builds a monitor for one run attempt. exact marks a run that
// already starts on exact kernels: drift/injection still report, but the
// engine knows there is nothing softer to fall back from.
func NewMonitor(cfg Config, exact bool) *Monitor {
	if cfg.DriftWindow <= 0 {
		cfg.DriftWindow = defaultDriftWindow
	}
	return &Monitor{cfg: cfg, window: make([]float64, 0, cfg.DriftWindow), exact: exact}
}

// Enabled reports whether checks are active.
func (m *Monitor) Enabled() bool { return m != nil && m.cfg.Enabled }

// Exact reports whether the run is already on exact kernels.
func (m *Monitor) Exact() bool { return m.exact }

// MarkExact records that the run has degraded to exact kernels; later
// trips will not attempt a second fallback.
func (m *Monitor) MarkExact() { m.exact = true }

// Policy returns the configured trip policy.
func (m *Monitor) Policy() Policy { return m.cfg.Policy }

// Check inspects one completed step: frc is the full (replicated) force
// array, total the total potential+kinetic energy. It returns the trip
// event and true when a guard fired. The drift window is NOT updated
// here — call Observe with the energy the step finally settled on, so a
// recovered step feeds its exact-math energy to the window, not the
// corrupt one.
func (m *Monitor) Check(rank, step int, frc []vec.V, total float64) (Event, bool) {
	if !m.Enabled() {
		return Event{}, false
	}
	if m.cfg.InjectStep > 0 && step == m.cfg.InjectStep && !m.injected && !m.exact {
		m.injected = true
		return Event{Rank: rank, Step: step, Cause: CauseInjected, Value: total, Atom: -1}, true
	}
	for i, f := range frc {
		if !finiteVec(f) {
			return Event{Rank: rank, Step: step, Cause: CauseForceNaN, Value: worstComponent(f), Atom: i}, true
		}
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return Event{Rank: rank, Step: step, Cause: CauseEnergyNaN, Value: total, Atom: -1}, true
	}
	if m.cfg.DriftTol > 0 && m.filled {
		mean := 0.0
		for _, e := range m.window {
			mean += e
		}
		mean /= float64(len(m.window))
		if d := math.Abs(total - mean); d > m.cfg.DriftTol {
			return Event{Rank: rank, Step: step, Cause: CauseDrift, Value: d, Atom: -1}, true
		}
	}
	return Event{}, false
}

// Observe feeds the step's settled total energy into the drift window.
func (m *Monitor) Observe(total float64) {
	if !m.Enabled() || m.cfg.DriftTol <= 0 {
		return
	}
	if len(m.window) < cap(m.window) {
		m.window = append(m.window, total)
	} else {
		m.window[m.next] = total
		m.next = (m.next + 1) % len(m.window)
	}
	m.filled = len(m.window) == cap(m.window)
}

// Record appends a trip to the monitor's log.
func (m *Monitor) Record(ev Event) { m.events = append(m.events, ev) }

// Events returns the trips recorded so far (shared backing array).
func (m *Monitor) Events() []Event { return m.events }

func finiteVec(v vec.V) bool {
	return finite(v.X) && finite(v.Y) && finite(v.Z)
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// worstComponent returns the first non-finite component for reporting.
func worstComponent(v vec.V) float64 {
	for _, x := range []float64{v.X, v.Y, v.Z} {
		if !finite(x) {
			return x
		}
	}
	return v.X
}
