package guard

import (
	"math"
	"strings"
	"testing"

	"repro/internal/vec"
)

func okForces(n int) []vec.V {
	f := make([]vec.V, n)
	for i := range f {
		f[i] = vec.New(float64(i), -1, 0.5)
	}
	return f
}

func TestDisabledMonitorNeverTrips(t *testing.T) {
	m := NewMonitor(Config{}, false)
	bad := okForces(3)
	bad[1].Y = math.NaN()
	if _, ok := m.Check(0, 1, bad, math.Inf(1)); ok {
		t.Error("disabled monitor tripped")
	}
	var nilMon *Monitor
	if nilMon.Enabled() {
		t.Error("nil monitor reports enabled")
	}
}

func TestForceNaNDetection(t *testing.T) {
	m := NewMonitor(Config{Enabled: true}, false)
	frc := okForces(5)
	frc[3].Z = math.Inf(-1)
	ev, ok := m.Check(2, 7, frc, 10)
	if !ok || ev.Cause != CauseForceNaN || ev.Atom != 3 || ev.Rank != 2 || ev.Step != 7 {
		t.Fatalf("got %+v ok=%v", ev, ok)
	}
	if !math.IsInf(ev.Value, -1) {
		t.Errorf("want the offending component as value, got %g", ev.Value)
	}
	if !strings.Contains(ev.String(), "atom 3") {
		t.Errorf("event string %q does not name the atom", ev)
	}
}

func TestEnergyNaNDetection(t *testing.T) {
	m := NewMonitor(Config{Enabled: true}, false)
	ev, ok := m.Check(0, 1, okForces(2), math.NaN())
	if !ok || ev.Cause != CauseEnergyNaN {
		t.Fatalf("got %+v ok=%v", ev, ok)
	}
}

func TestDriftWindow(t *testing.T) {
	m := NewMonitor(Config{Enabled: true, DriftTol: 5, DriftWindow: 4}, false)
	frc := okForces(2)

	// Window not yet filled: no drift verdicts, however wild the value.
	for i, e := range []float64{100, 101, 99, 1e6} {
		if _, ok := m.Check(0, i+1, frc, e); ok {
			t.Fatalf("tripped with unfilled window at step %d", i+1)
		}
		m.Observe(e)
	}

	// Filled window mean is dominated by the 1e6 outlier — feed sane
	// values until the window is all near 100 again.
	m2 := NewMonitor(Config{Enabled: true, DriftTol: 5, DriftWindow: 4}, false)
	for i, e := range []float64{100, 101, 99, 100} {
		m2.Check(0, i+1, frc, e)
		m2.Observe(e)
	}
	if ev, ok := m2.Check(0, 5, frc, 102); ok {
		t.Fatalf("within-tolerance step tripped: %+v", ev)
	}
	ev, ok := m2.Check(0, 6, frc, 120)
	if !ok || ev.Cause != CauseDrift {
		t.Fatalf("drift not caught: %+v ok=%v", ev, ok)
	}
	if ev.Value != 20 {
		t.Errorf("drift delta %g, want 20", ev.Value)
	}

	// DriftTol 0 disables drift checking entirely.
	m3 := NewMonitor(Config{Enabled: true}, false)
	for i := 0; i < 40; i++ {
		m3.Observe(1e12 * float64(i))
		if _, ok := m3.Check(0, i+1, frc, 1e12*float64(i)); ok {
			t.Fatal("drift tripped with DriftTol 0")
		}
	}
}

func TestInjectionConsumeOnce(t *testing.T) {
	m := NewMonitor(Config{Enabled: true, InjectStep: 3}, false)
	frc := okForces(1)
	if _, ok := m.Check(0, 2, frc, 1); ok {
		t.Fatal("injected before InjectStep")
	}
	ev, ok := m.Check(0, 3, frc, 1)
	if !ok || ev.Cause != CauseInjected {
		t.Fatalf("no injection at InjectStep: %+v ok=%v", ev, ok)
	}
	if _, ok := m.Check(0, 3, frc, 1); ok {
		t.Fatal("injection fired twice")
	}

	// A monitor that starts exact never injects: the fallback path it
	// exercises does not exist there.
	me := NewMonitor(Config{Enabled: true, InjectStep: 3}, true)
	if _, ok := me.Check(0, 3, frc, 1); ok {
		t.Fatal("injected on an exact-kernel run")
	}
}

func TestMarkExactAndRecord(t *testing.T) {
	m := NewMonitor(Config{Enabled: true}, false)
	if m.Exact() {
		t.Fatal("fresh monitor claims exact")
	}
	m.MarkExact()
	if !m.Exact() {
		t.Fatal("MarkExact did not stick")
	}
	m.Record(Event{Step: 1, Cause: CauseInjected})
	m.Record(Event{Step: 2, Cause: CauseDrift, Recovered: true})
	evs := m.Events()
	if len(evs) != 2 || evs[1].Step != 2 {
		t.Fatalf("event log %+v", evs)
	}
	if !strings.Contains(evs[1].String(), "recovered") {
		t.Errorf("recovered event string %q", evs[1])
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyFallback.String() != "fallback" || PolicyAbort.String() != "abort" {
		t.Error("policy strings changed")
	}
	if s := Policy(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown policy string %q", s)
	}
}
