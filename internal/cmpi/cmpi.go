// Package cmpi models the CHARMM-MPI (CMPI) communication middleware the
// paper analyzes in §4.2: a portability layer over MPI that uses split
// non-blocking send/receive calls for data movement and implements every
// global synchronization as repeated exchanges of one-byte messages among
// nearest neighbours, repeated p−1 times. On networks with per-packet and
// per-message overheads (TCP/IP on Ethernet) this synchronization style
// destroys scalability — exactly the effect of the paper's Fig. 8.
//
// The collectives here follow the same philosophy the paper attributes to
// portable middleware: simple ring algorithms built on the split primitives
// with explicit synchronization fences, rather than the tuned trees of the
// underlying MPI library.
package cmpi

import "repro/internal/mpi"

const (
	tagSync  = 1 << 18
	tagRing  = tagSync + 1024
	tagChain = tagSync + 2048
)

// Middleware wraps a rank with CMPI-style operations.
type Middleware struct {
	R *mpi.Rank
	// FencesPerOp is how many synchronization fences wrap each collective
	// (CMPI fences before and after by default to keep its internal state
	// machines coherent across nodes).
	FencesPerOp int
}

// New returns a CMPI layer over r with the default double fence.
func New(r *mpi.Rank) *Middleware {
	return &Middleware{R: r, FencesPerOp: 2}
}

// Sync is the CMPI synchronization primitive: p−1 rounds of one-byte
// exchanges with both nearest neighbours on the rank ring. All of its time
// is booked as synchronization, matching the paper's classification.
func (m *Middleware) Sync() {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	t0 := r.Now()
	prev := r.SyncClass
	r.SyncClass = true
	defer func() { r.SyncClass = prev }()
	left := (r.ID - 1 + p) % p
	right := (r.ID + 1) % p
	for round := 0; round < p-1; round++ {
		tag := tagSync + round
		sr := r.Isend(right, tag, 1)
		sl := r.Isend(left, tag, 1)
		r.Recv(left, tag)
		r.Recv(right, tag)
		r.Wait(sr)
		r.Wait(sl)
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("repro_cmpi_syncs_total", "CMPI neighbour-exchange synchronizations completed").Inc()
		reg.Counter("repro_cmpi_sync_seconds_total", "virtual seconds spent inside CMPI Sync").Add(r.Now() - t0)
	}
}

// fence runs the configured number of Sync calls.
func (m *Middleware) fence() {
	for i := 0; i < m.FencesPerOp; i++ {
		m.Sync()
	}
}

// GlobalSum is CMPI's allreduce: a synchronization fence, then a ring pass
// where each rank forwards the full buffer p−1 times, combining at each
// hop (volume (p−1)·bytes per rank — the unsegmented portable ring).
func (m *Middleware) GlobalSum(bytes int, reduceOp float64) {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	m.fence()
	left := (r.ID - 1 + p) % p
	right := (r.ID + 1) % p
	for round := 0; round < p-1; round++ {
		tag := tagRing + round
		sreq := r.Isend(right, tag, bytes)
		r.Recv(left, tag)
		if reduceOp > 0 {
			r.Compute(reduceOp)
		}
		r.Wait(sreq)
	}
	m.fence()
}

// Broadcast is CMPI's chain broadcast: the payload trickles down the rank
// ring 0→1→…→p−1 (latency grows linearly with p).
func (m *Middleware) Broadcast(root, bytes int) {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	m.fence()
	vrank := (r.ID - root + p) % p
	if vrank > 0 {
		r.Recv((r.ID-1+p)%p, tagChain)
	}
	if vrank < p-1 {
		r.Send((r.ID+1)%p, tagChain, bytes)
	}
	m.fence()
}

// Allgatherv circulates the variable-size blocks around the ring (p−1
// rounds; round k moves the block originally owned by (id−k) onward).
func (m *Middleware) Allgatherv(blocks []int) {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	if len(blocks) != p {
		panic("cmpi: Allgatherv needs one block per rank")
	}
	m.fence()
	left := (r.ID - 1 + p) % p
	right := (r.ID + 1) % p
	for round := 0; round < p-1; round++ {
		tag := tagRing + 512 + round
		sendBlock := blocks[(r.ID-round+p)%p]
		sreq := r.Isend(right, tag, sendBlock)
		r.Recv(left, tag)
		r.Wait(sreq)
	}
	m.fence()
}

// Alltoallv posts split sends to every partner at once and then drains the
// matching receives — the unscheduled flood that loses the "firm grip on
// the communication system" the paper describes.
func (m *Middleware) Alltoallv(sizes [][]int) {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	if len(sizes) != p {
		panic("cmpi: Alltoallv needs a p×p matrix")
	}
	m.fence()
	reqs := make([]*mpi.Request, 0, p-1)
	for off := 1; off < p; off++ {
		dst := (r.ID + off) % p
		reqs = append(reqs, r.Isend(dst, tagRing+768+r.ID, sizes[r.ID][dst]))
	}
	for off := 1; off < p; off++ {
		src := (r.ID - off + p) % p
		r.Recv(src, tagRing+768+src)
	}
	for _, q := range reqs {
		r.Wait(q)
	}
	m.fence()
}

// AlltoallvSparse is Alltoallv for mostly-zero size matrices: the flood
// only posts sends to partners the matrix actually addresses and drains
// only sources that address this rank (the matrix is global knowledge,
// so both sides agree). The fences still bracket the exchange — CMPI
// never loosens its grip on the communication system.
func (m *Middleware) AlltoallvSparse(sizes [][]int) {
	r := m.R
	p := r.Size()
	if p == 1 {
		return
	}
	if len(sizes) != p {
		panic("cmpi: AlltoallvSparse needs a p×p matrix")
	}
	m.fence()
	reqs := make([]*mpi.Request, 0, p-1)
	for off := 1; off < p; off++ {
		dst := (r.ID + off) % p
		if sizes[r.ID][dst] > 0 {
			reqs = append(reqs, r.Isend(dst, tagRing+768+r.ID, sizes[r.ID][dst]))
		}
	}
	for off := 1; off < p; off++ {
		src := (r.ID - off + p) % p
		if sizes[src][r.ID] > 0 {
			r.Recv(src, tagRing+768+src)
		}
	}
	for _, q := range reqs {
		r.Wait(q)
	}
	m.fence()
}

// Barrier in CMPI is just Sync.
func (m *Middleware) Barrier() { m.Sync() }
