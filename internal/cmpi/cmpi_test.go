package cmpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func run(t *testing.T, p int, net netmodel.Params, fn func(*Middleware)) []mpi.Accounting {
	t.Helper()
	cfg := cluster.Config{Nodes: p, CPUsPerNode: 1, Net: net, Seed: 1}
	accts, err := mpi.Run(cfg, cluster.PentiumIII1GHz(), func(r *mpi.Rank) {
		fn(New(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	return accts
}

func TestSyncCompletesAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		done := 0
		run(t, p, netmodel.SCoreGigE(), func(m *Middleware) {
			m.Sync()
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d ranks finished sync", p, done)
		}
	}
}

func TestSyncTimeIsAllSync(t *testing.T) {
	accts := run(t, 4, netmodel.TCPGigE(), func(m *Middleware) {
		m.Sync()
	})
	for i, a := range accts {
		if a.Comm > 1e-12 {
			t.Fatalf("rank %d booked %g comm during CMPI sync", i, a.Comm)
		}
		if a.Sync <= 0 {
			t.Fatalf("rank %d booked no sync time", i)
		}
	}
}

func TestSyncCostGrowsWithRanks(t *testing.T) {
	var prev float64
	for _, p := range []int{2, 4, 8} {
		accts := run(t, p, netmodel.TCPGigE(), func(m *Middleware) {
			m.Sync()
		})
		var worst float64
		for _, a := range accts {
			if a.Sync > worst {
				worst = a.Sync
			}
		}
		if worst <= prev {
			t.Fatalf("sync cost did not grow: %g at p=%d after %g", worst, p, prev)
		}
		prev = worst
	}
}

func TestGlobalSumCompletes(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		done := 0
		run(t, p, netmodel.SCoreGigE(), func(m *Middleware) {
			m.GlobalSum(85000, 10e-6)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d finished", p, done)
		}
	}
}

func TestGlobalSumVolumeExceedsMPI(t *testing.T) {
	// The unsegmented ring moves (p−1)·bytes per rank; MPICH's reduce+bcast
	// moves at most ~2·bytes·log p / p per hop chain. CMPI must ship more
	// bytes overall at p=8.
	const bytes = 85000
	cmpiAccts := run(t, 8, netmodel.SCoreGigE(), func(m *Middleware) {
		m.GlobalSum(bytes, 0)
	})
	cfg := cluster.Config{Nodes: 8, CPUsPerNode: 1, Net: netmodel.SCoreGigE(), Seed: 1}
	mpiAccts, err := mpi.Run(cfg, cluster.PentiumIII1GHz(), func(r *mpi.Rank) {
		r.Allreduce(bytes, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var cb, mb int64
	for i := range cmpiAccts {
		cb += cmpiAccts[i].BytesSent
		mb += mpiAccts[i].BytesSent
	}
	if cb <= mb {
		t.Fatalf("CMPI shipped %d bytes, MPI %d — expected CMPI to ship more", cb, mb)
	}
}

func TestBroadcastAndAllgatherv(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		done := 0
		blocks := make([]int, p)
		for i := range blocks {
			blocks[i] = 1000 + i
		}
		run(t, p, netmodel.MyrinetGM(), func(m *Middleware) {
			m.Broadcast(0, 5000)
			m.Allgatherv(blocks)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d finished", p, done)
		}
	}
}

func TestAlltoallvCompletes(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		sizes := make([][]int, p)
		for i := range sizes {
			sizes[i] = make([]int, p)
			for j := range sizes[i] {
				if i != j {
					sizes[i][j] = 5000
				}
			}
		}
		done := 0
		run(t, p, netmodel.TCPGigE(), func(m *Middleware) {
			m.Alltoallv(sizes)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d finished", p, done)
		}
	}
}

func TestCMPISlowerThanMPIOnTCP(t *testing.T) {
	// The paper's headline middleware result: the same communication
	// pattern through CMPI costs more on TCP than through raw MPI.
	const bytes = 85000
	pattern := func(useCMPI bool) float64 {
		cfg := cluster.Config{Nodes: 8, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1}
		var worst float64
		_, err := mpi.Run(cfg, cluster.PentiumIII1GHz(), func(r *mpi.Rank) {
			for i := 0; i < 5; i++ {
				if useCMPI {
					m := New(r)
					m.GlobalSum(bytes, 0)
				} else {
					r.Allreduce(bytes, 0)
				}
			}
			if r.Now() > worst {
				worst = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	cmpiT := pattern(true)
	mpiT := pattern(false)
	if cmpiT <= mpiT {
		t.Fatalf("CMPI (%g s) not slower than MPI (%g s) on TCP at p=8", cmpiT, mpiT)
	}
}

func TestDeterministic(t *testing.T) {
	one := func() []mpi.Accounting {
		return run(t, 4, netmodel.TCPGigE(), func(m *Middleware) {
			m.GlobalSum(50000, 0)
			m.Sync()
			m.Broadcast(0, 20000)
		})
	}
	a, b := one(), one()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d non-deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}
