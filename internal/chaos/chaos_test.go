package chaos

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/pmd"
)

func testHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(Config{
		Seed:        1,
		Steps:       4,
		Nodes:       3,
		CPUsPerNode: 1,
		Net:         netmodel.TCPGigE(),
		Atoms:       120,
		Workers:     []int{1, 2},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSoakHoldsInvariants(t *testing.T) {
	h := testHarness(t)
	reports, failure, err := h.Soak(4)
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatalf("run %d (seed %d) violated %q: %s\nscenario: %s\nminimal:  %s",
			failure.Index, failure.Seed, failure.Err.Name, failure.Err.Detail,
			failure.Scenario.DSL(), failure.Minimal.DSL())
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	for i, r := range reports {
		if r.Index != i || r.Faults < 1 || r.DSL == "" {
			t.Errorf("report %d malformed: %+v", i, r)
		}
	}
}

// TestSoakLocalizedRecovery runs the soak on the domain decomposition
// with localized buddy-restore, which arms the extra recovery-fidelity
// invariant: every faulted run must match the fault-free trajectory
// bitwise because the cluster never shrinks.
func TestSoakLocalizedRecovery(t *testing.T) {
	h, err := NewHarness(Config{
		Seed:        5,
		Steps:       3,
		Nodes:       4,
		CPUsPerNode: 1,
		Net:         netmodel.TCPGigE(),
		Decomp:      pmd.DecompDomain,
		Recovery:    pmd.RecoveryLocal,
		Atoms:       120,
		Workers:     []int{1, 2},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, failure, err := h.Soak(3)
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatalf("run %d (seed %d) violated %q: %s\nscenario: %s\nminimal:  %s",
			failure.Index, failure.Seed, failure.Err.Name, failure.Err.Detail,
			failure.Scenario.DSL(), failure.Minimal.DSL())
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
}

func TestSoakLocalizedNeedsDomain(t *testing.T) {
	_, err := NewHarness(Config{Seed: 1, Recovery: pmd.RecoveryLocal})
	if err == nil {
		t.Fatal("localized recovery on the replicated decomposition was accepted")
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := ScenarioSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at run %d", i)
		}
		seen[s] = true
	}
	if ScenarioSeed(1, 0) == ScenarioSeed(2, 0) {
		t.Error("base seed does not influence the stream")
	}
}

// TestShrinkFindsMinimalReproducer drives the shrinker with a synthetic
// "invariant" — an intentionally broken predicate that fails whenever a
// node-1 straggler is present — and expects the four-fault scenario to
// shrink to exactly that one spec, simplified.
func TestShrinkFindsMinimalReproducer(t *testing.T) {
	sc, err := fault.ParseSpec(
		"link@0:60,bw=8;straggler@5:25,node=1,slow=4;flap@10,node=0,dur=0.5,count=3,period=20;crash@12,rank=2")
	if err != nil {
		t.Fatal(err)
	}
	brokenInvariant := func(c *fault.Scenario) bool {
		for _, f := range c.Faults {
			if f.Kind == fault.KindStraggler && f.Node == 1 {
				return true
			}
		}
		return false
	}
	min := Shrink(sc, brokenInvariant)
	if len(min.Faults) != 1 {
		t.Fatalf("shrunk to %d faults, want 1: %s", len(min.Faults), min.DSL())
	}
	f := min.Faults[0]
	if f.Kind != fault.KindStraggler || f.Node != 1 {
		t.Fatalf("wrong surviving fault: %s", min.DSL())
	}
	// Pass 2 simplifications: the window closes (End -> 0). The node
	// cannot be dropped — the predicate needs node 1 — which shows the
	// shrinker keeps load-bearing fields.
	if f.End != 0 {
		t.Errorf("window not simplified: %s", min.DSL())
	}
	if !brokenInvariant(min) {
		t.Error("shrunk scenario no longer fails the predicate")
	}
	// The original scenario is untouched.
	if len(sc.Faults) != 4 {
		t.Errorf("Shrink mutated its input: %s", sc.DSL())
	}
	// And the reproducer replays through the DSL.
	if _, err := fault.ParseSpec(min.DSL()); err != nil {
		t.Errorf("minimal DSL %q does not parse: %v", min.DSL(), err)
	}
}

// TestShrinkSimplifiesFlap: a repeated flap shrinks to a single
// occurrence when repetition is not load-bearing.
func TestShrinkSimplifiesFlap(t *testing.T) {
	sc, err := fault.ParseSpec("flap@10,node=0,dur=0.5,count=3,period=20;crash@12,rank=1")
	if err != nil {
		t.Fatal(err)
	}
	min := Shrink(sc, func(c *fault.Scenario) bool {
		for _, f := range c.Faults {
			if f.Kind == fault.KindFlap {
				return true
			}
		}
		return false
	})
	if len(min.Faults) != 1 || min.Faults[0].Kind != fault.KindFlap {
		t.Fatalf("shrunk to %s", min.DSL())
	}
	if min.Faults[0].Count != 1 || min.Faults[0].Period != 0 {
		t.Errorf("flap repetition not simplified: %s", min.DSL())
	}
	if !strings.Contains(min.DSL(), "flap@10,node=0,dur=0.5") {
		t.Errorf("unexpected minimal DSL %q", min.DSL())
	}
}

// TestSoakCatchesBrokenInvariant wires a deliberately broken check
// through the full Soak + Shrink pipeline: scenarios whose runs recover a
// crash are declared "failures", and the machinery must shrink the first
// such scenario down to its crash spec alone.
func TestSoakCatchesBrokenInvariant(t *testing.T) {
	h := testHarness(t)

	// Find a soak seed whose scenario contains a crash.
	var sc *fault.Scenario
	for i := 0; i < 50; i++ {
		cand := fault.RandomScenario(ScenarioSeed(1, i), h.Horizon(), 3, 1)
		if len(cand.CrashSpecs()) == 1 && len(cand.Faults) > 1 {
			sc = cand
			break
		}
	}
	if sc == nil {
		t.Fatal("no multi-fault crash scenario in the first 50 seeds")
	}

	brokenCheck := func(c *fault.Scenario) bool {
		res, err := h.run(c, h.cfg.Workers[0], "", 0)
		return err == nil && len(res.Recoveries) > 0
	}
	if !brokenCheck(sc) {
		t.Skip("crash fires after this workload's horizon; scenario recovers nothing")
	}
	min := Shrink(sc, brokenCheck)
	if len(min.Faults) != 1 || min.Faults[0].Kind != fault.KindCrash {
		t.Fatalf("want the lone crash spec, got %q (from %q)", min.DSL(), sc.DSL())
	}
}
