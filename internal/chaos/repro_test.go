package chaos

import (
	"strings"
	"testing"

	"repro/internal/pmd"
)

func TestReproRoundTrip(t *testing.T) {
	cases := []Repro{
		{
			DSL: "crash@12,rank=2", Seed: 42, Procs: 4, CPUs: 1, Net: "tcp",
			Steps: 4, Atoms: 300,
		},
		{
			DSL:   "link@0:60,bw=8;straggler@5:25,node=1,slow=4;crash@12,rank=61",
			Seed:  18446744073709551615, // max uint64 survives the trip
			Procs: 64, CPUs: 2, Net: "myrinet", Steps: 3, Atoms: 600,
			Decomp: pmd.DecompDomain, Recovery: pmd.RecoveryLocal,
		},
	}
	for _, want := range cases {
		line := want.Line()
		if !strings.Contains(line, "-decomp "+want.Decomp.String()) ||
			!strings.Contains(line, "-recovery "+want.Recovery.String()) {
			t.Errorf("repro line drops the decomposition or recovery strategy: %s", line)
		}
		got, err := ParseRepro(line)
		if err != nil {
			t.Fatalf("ParseRepro(%q): %v", line, err)
		}
		if got != want {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestParseReproRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"somethingelse -spec 'x'",
		"faultbench -spec 'unterminated",
		"faultbench -spec",
		"faultbench -bogus 1",
		"faultbench -p notanumber",
		"faultbench -recovery sideways",
	} {
		if _, err := ParseRepro(line); err == nil {
			t.Errorf("ParseRepro(%q) accepted a malformed line", line)
		}
	}
}

// A path-prefixed command (as printed by CI wrappers) still parses.
func TestParseReproPathPrefix(t *testing.T) {
	r, err := ParseRepro("./bin/faultbench -spec 'crash@5,rank=1' -p 8 -decomp domain -recovery local")
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs != 8 || r.Decomp != pmd.DecompDomain || r.Recovery != pmd.RecoveryLocal {
		t.Errorf("parsed %+v", r)
	}
}
