package chaos

import "repro/internal/fault"

// Shrink reduces a failing scenario to a minimal reproducer: the smallest
// scenario for which stillFails keeps returning true. It is a pure
// greedy ddmin-style reducer over the DSL vocabulary — first specs are
// dropped one at a time to a fixed point, then each surviving spec is
// simplified (single flap occurrence, open-ended windows closed to the
// default). stillFails is called on candidate scenarios; Shrink never
// mutates its argument.
func Shrink(sc *fault.Scenario, stillFails func(*fault.Scenario) bool) *fault.Scenario {
	cur := cloneScenario(sc)

	// Pass 1: drop whole specs until no single removal still fails.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Faults); i++ {
			cand := cloneScenario(cur)
			cand.Faults = append(cand.Faults[:i], cand.Faults[i+1:]...)
			if len(cand.Faults) > 0 && stillFails(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}

	// Pass 2: simplify the surviving specs field by field.
	for i := range cur.Faults {
		f := cur.Faults[i]
		if f.Count > 1 {
			cand := cloneScenario(cur)
			cand.Faults[i].Count = 1
			cand.Faults[i].Period = 0
			if stillFails(cand) {
				cur = cand
			}
		}
		if f.End != 0 {
			cand := cloneScenario(cur)
			cand.Faults[i].End = 0
			if stillFails(cand) {
				cur = cand
			}
		}
		if f.Node >= 0 && f.Kind != fault.KindFlap {
			cand := cloneScenario(cur)
			cand.Faults[i].Node = -1
			if stillFails(cand) {
				cur = cand
			}
		}
	}
	return cur
}

func cloneScenario(sc *fault.Scenario) *fault.Scenario {
	out := &fault.Scenario{Name: sc.Name, Seed: sc.Seed, Jitter: sc.Jitter}
	out.Faults = append([]fault.Spec{}, sc.Faults...)
	return out
}
