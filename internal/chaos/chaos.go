// Package chaos is the soak harness over the fault-injection layer: it
// generates seeded random fault scenarios (fault.RandomScenario), runs
// the resilient parallel MD under each one, and asserts the invariants a
// production run must never violate — termination without deadlock,
// finite energies, bitwise replay determinism across host-worker counts,
// and checkpoint/restart equivalence through the durable on-disk path.
// On a violation the failing scenario is shrunk to a minimal DSL
// reproducer (Shrink).
package chaos

import (
	"fmt"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pmd"
	"repro/internal/topol"
)

// Config sizes the soak workload. Zero fields take the defaults noted.
type Config struct {
	Seed        uint64 // base seed; run i uses ScenarioSeed(Seed, i)
	Steps       int    // MD steps per run (default 4, minimum 2)
	Nodes       int    // cluster nodes (default 4, minimum 2 so crashes are recoverable)
	CPUsPerNode int    // default 1
	Net         netmodel.Params
	Middleware  pmd.MiddlewareKind
	Decomp      pmd.DecompKind   // replicated (zero value) or domain decomposition
	Recovery    pmd.RecoveryKind // global rewind (zero value) or localized buddy-restore
	Atoms       int              // solvated-box size (default 300)
	Workers     []int            // host-worker counts cross-checked bitwise (default {1, 4})

	CheckpointEvery int     // checkpoint cadence (default 2, exercising loss windows)
	RestartCost     float64 // virtual seconds per recovery (default 5)

	// Obs, when non-nil, receives soak counters (repro_chaos_*): scenarios
	// checked, injected faults, recoveries, lost virtual seconds and
	// invariant violations by name. Metrics never touch the simulated
	// runs, so the determinism invariants are unaffected.
	Obs *obs.Registry

	Logf func(format string, args ...interface{}) // optional progress logger
}

// InvariantError names the violated soak invariant.
type InvariantError struct {
	Name   string // terminates | finite-energies | recovery-fidelity | worker-determinism | checkpoint-restart
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("chaos: invariant %q violated: %s", e.Name, e.Detail)
}

// RunReport summarizes one passing soak run.
type RunReport struct {
	Index      int
	Seed       uint64
	DSL        string
	Faults     int
	Recoveries int
	Wall       float64
	Lost       float64
}

// Failure describes the first failing soak run, with the scenario shrunk
// to a minimal reproducer for the same invariant.
type Failure struct {
	Index    int
	Seed     uint64
	Scenario *fault.Scenario
	Minimal  *fault.Scenario
	Err      *InvariantError
}

// Harness holds the fixed workload every soak run shares.
type Harness struct {
	cfg     Config
	sys     *topol.System
	mdCfg   md.Config
	cost    cluster.CostModel
	horizon float64              // healthy wall time, sizing scenario windows
	probe   *pmd.ResilientResult // the fault-free run, reference for recovery fidelity
}

// NewHarness builds the shared workload (solvated box, relaxed, PME) and
// probes a healthy run to size the scenario horizon.
func NewHarness(cfg Config) (*Harness, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 4
	}
	if cfg.Steps < 2 {
		return nil, fmt.Errorf("chaos: need Steps >= 2 (checkpoint/restart splits the run), got %d", cfg.Steps)
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("chaos: need Nodes >= 2 (a crash drops a node), got %d", cfg.Nodes)
	}
	if cfg.CPUsPerNode == 0 {
		cfg.CPUsPerNode = 1
	}
	if cfg.Net.Name == "" {
		cfg.Net = netmodel.TCPGigE()
	}
	if cfg.Atoms == 0 {
		cfg.Atoms = 300
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4}
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2
	}
	if cfg.RestartCost == 0 {
		cfg.RestartCost = 5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Recovery == pmd.RecoveryLocal && cfg.Decomp != pmd.DecompDomain {
		return nil, fmt.Errorf("chaos: localized recovery needs the domain decomposition")
	}

	sys, k := topol.NewSolvatedBox(cfg.Atoms, cfg.Seed+1)
	md.Relax(sys, 60)
	mdCfg := md.ClampCutoffs(md.PMEDefaultConfig(), sys.Box)
	mdCfg.PME = md.PMEConfig{Beta: 0.34, K1: k, K2: k, K3: k, Order: 4}
	mdCfg.FF.Beta = mdCfg.PME.Beta
	mdCfg.Temperature = 300
	mdCfg.Seed = cfg.Seed + 1

	h := &Harness{cfg: cfg, sys: sys, mdCfg: mdCfg, cost: cluster.PentiumIII1GHz()}
	probe, err := h.run(nil, cfg.Workers[0], "", 0)
	if err != nil {
		return nil, fmt.Errorf("chaos: healthy probe run failed: %w", err)
	}
	h.horizon = probe.Wall
	h.probe = probe
	return h, nil
}

// Horizon returns the healthy wall time scenarios are sized against.
func (h *Harness) Horizon() float64 { return h.horizon }

func (h *Harness) clusterCfg() cluster.Config {
	return cluster.Config{Nodes: h.cfg.Nodes, CPUsPerNode: h.cfg.CPUsPerNode, Net: h.cfg.Net, Seed: 1}
}

// run executes one resilient run of the shared workload under sc.
func (h *Harness) run(sc *fault.Scenario, workers int, ckptDir string, halt int) (*pmd.ResilientResult, error) {
	return pmd.RunResilient(h.clusterCfg(), h.cost, pmd.ResilientConfig{
		Config: pmd.Config{
			System:      h.sys,
			MD:          h.mdCfg,
			Steps:       h.cfg.Steps,
			Middleware:  h.cfg.Middleware,
			Decomp:      h.cfg.Decomp,
			HostWorkers: workers,
		},
		Scenario:        sc,
		CheckpointEvery: h.cfg.CheckpointEvery,
		RestartCost:     h.cfg.RestartCost,
		CheckpointDir:   ckptDir,
		HaltAfterStep:   halt,
		Recovery:        h.cfg.Recovery,
	})
}

// Check runs the full invariant pipeline for one scenario. It returns a
// report of the primary run, the first violated invariant (nil when all
// hold), and an infrastructure error (temp dirs, persistence) that is
// not a property of the scenario.
func (h *Harness) Check(sc *fault.Scenario) (RunReport, *InvariantError, error) {
	rep := RunReport{Seed: sc.Seed, DSL: sc.DSL(), Faults: len(sc.Faults)}

	// Invariant: the run terminates (no sim deadlock, crashes recover
	// within budget). The watchdog RunResilient arms for crash scenarios
	// turns a would-be deadlock into a typed error caught here.
	base, err := h.run(sc, h.cfg.Workers[0], "", 0)
	if err != nil {
		return rep, &InvariantError{"terminates", err.Error()}, nil
	}
	rep.Recoveries = len(base.Recoveries)
	rep.Wall = base.Wall
	rep.Lost = base.LostTotal()

	// Invariant: every reported energy is finite.
	if len(base.Energies) != h.cfg.Steps {
		return rep, &InvariantError{"finite-energies",
			fmt.Sprintf("got %d energy steps, want %d", len(base.Energies), h.cfg.Steps)}, nil
	}
	for i, e := range base.Energies {
		for _, v := range []float64{e.Potential(), e.Kinetic, e.Total()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return rep, &InvariantError{"finite-energies",
					fmt.Sprintf("step %d: non-finite energy %g", i, v)}, nil
			}
		}
	}

	// Invariant: recovery fidelity — localized buddy-restore keeps the
	// cluster at full size through every fault, so the trajectory must be
	// bitwise identical to the fault-free run no matter what the scenario
	// injected. (Global rewind legitimately re-tiles onto fewer ranks after
	// a crash, which changes the physics partition, so the invariant only
	// applies to the localized strategy.)
	if h.cfg.Recovery == pmd.RecoveryLocal {
		for i := range base.Energies {
			if base.Energies[i] != h.probe.Energies[i] {
				return rep, &InvariantError{"recovery-fidelity",
					fmt.Sprintf("step %d: energies differ from the fault-free run", i)}, nil
			}
		}
		if base.Final == nil || h.probe.Final == nil {
			return rep, &InvariantError{"recovery-fidelity", "missing final state"}, nil
		}
		for i, p := range h.probe.Final.FinalPos {
			if base.Final.FinalPos[i] != p {
				return rep, &InvariantError{"recovery-fidelity",
					fmt.Sprintf("atom %d: final position differs from the fault-free run", i)}, nil
			}
		}
	}

	// Invariant: replay determinism — the identical scenario on other
	// host-worker counts must reproduce energies, wall clock and
	// accounting bitwise.
	for _, w := range h.cfg.Workers[1:] {
		alt, err := h.run(sc, w, "", 0)
		if err != nil {
			return rep, &InvariantError{"worker-determinism",
				fmt.Sprintf("workers=%d failed: %v", w, err)}, nil
		}
		if alt.Wall != base.Wall {
			return rep, &InvariantError{"worker-determinism",
				fmt.Sprintf("workers=%d wall %g != %g", w, alt.Wall, base.Wall)}, nil
		}
		if len(alt.Energies) != len(base.Energies) {
			return rep, &InvariantError{"worker-determinism",
				fmt.Sprintf("workers=%d energy count %d != %d", w, len(alt.Energies), len(base.Energies))}, nil
		}
		for i := range base.Energies {
			if alt.Energies[i] != base.Energies[i] {
				return rep, &InvariantError{"worker-determinism",
					fmt.Sprintf("workers=%d step %d energies differ", w, i)}, nil
			}
		}
		for i := range base.Acct {
			if alt.Acct[i] != base.Acct[i] {
				return rep, &InvariantError{"worker-determinism",
					fmt.Sprintf("workers=%d rank %d accounting differs", w, i)}, nil
			}
		}
	}

	// Invariant: checkpoint/restart equivalence through the durable path.
	// Crash specs are stripped for this leg: a resume shifts the scenario
	// clock by the redone steps, so a crash would interrupt a different
	// step than in the reference and legitimately change the figures.
	// Everything else (windows, flaps) shifts identically.
	if inv, err := h.checkDurable(stripCrashes(sc)); inv != nil || err != nil {
		return rep, inv, err
	}
	return rep, nil, nil
}

// checkDurable kills a run mid-flight at the durable layer's simulated
// kill point, resumes it from disk, and requires the stitched figures to
// match an uninterrupted reference bitwise.
func (h *Harness) checkDurable(sc *fault.Scenario) (*InvariantError, error) {
	dir, err := os.MkdirTemp("", "chaos-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Kill at the newest checkpoint boundary strictly before the end:
	// the resume leg asserts the run comes back from disk, which needs a
	// durable checkpoint to exist at the halt step (halting mid-cadence
	// leaves nothing on disk and the "resume" would be a fresh run). When
	// the cadence puts the first checkpoint at or past the final step
	// there is no interior boundary to kill at, so the leg cannot run.
	halt := (h.cfg.Steps - 1) / h.cfg.CheckpointEvery * h.cfg.CheckpointEvery
	if halt < 1 {
		h.cfg.Logf("checkpoint cadence %d leaves no interior boundary in %d steps; skipping durable leg",
			h.cfg.CheckpointEvery, h.cfg.Steps)
		return nil, nil
	}
	w := h.cfg.Workers[0]
	ref, err := h.run(sc, w, "", 0)
	if err != nil {
		return &InvariantError{"checkpoint-restart", fmt.Sprintf("reference run failed: %v", err)}, nil
	}
	halted, err := h.run(sc, w, dir, halt)
	if err != pmd.ErrHalted {
		return &InvariantError{"checkpoint-restart",
			fmt.Sprintf("halted run: want ErrHalted, got %v", err)}, nil
	}
	resumed, err := h.run(sc, w, dir, 0)
	if err != nil {
		return &InvariantError{"checkpoint-restart", fmt.Sprintf("resume failed: %v", err)}, nil
	}
	if resumed.Resumed == nil {
		return &InvariantError{"checkpoint-restart", "resume did not use the on-disk checkpoint"}, nil
	}
	cut := resumed.Resumed.Step
	if cut > len(halted.Energies) {
		return &InvariantError{"checkpoint-restart",
			fmt.Sprintf("resume step %d beyond halted prefix %d", cut, len(halted.Energies))}, nil
	}
	stitched := append(append([]md.EnergyReport{}, halted.Energies[:cut]...), resumed.Energies...)
	if len(stitched) != len(ref.Energies) {
		return &InvariantError{"checkpoint-restart",
			fmt.Sprintf("stitched %d steps, reference %d", len(stitched), len(ref.Energies))}, nil
	}
	for i := range stitched {
		if stitched[i] != ref.Energies[i] {
			return &InvariantError{"checkpoint-restart",
				fmt.Sprintf("step %d: stitched energies differ from uninterrupted reference", i)}, nil
		}
	}
	for i, p := range ref.Final.FinalPos {
		if resumed.Final.FinalPos[i] != p {
			return &InvariantError{"checkpoint-restart",
				fmt.Sprintf("atom %d: final position differs from uninterrupted reference", i)}, nil
		}
	}
	return nil, nil
}

// Soak generates and checks `runs` random scenarios. It stops at the
// first invariant violation, returning the shrunk failure; the error
// return is reserved for infrastructure problems.
func (h *Harness) Soak(runs int) ([]RunReport, *Failure, error) {
	count := func(name, help string, v float64, labels ...obs.Label) {
		if h.cfg.Obs != nil && v != 0 {
			h.cfg.Obs.Counter(name, help, labels...).Add(v)
		}
	}
	var reports []RunReport
	for i := 0; i < runs; i++ {
		seed := ScenarioSeed(h.cfg.Seed, i)
		sc := fault.RandomScenario(seed, h.horizon, h.cfg.Nodes, h.cfg.CPUsPerNode)
		rep, inv, err := h.Check(sc)
		if err != nil {
			return reports, nil, err
		}
		rep.Index = i
		count("repro_chaos_runs_total", "soak scenarios checked", 1)
		count("repro_chaos_faults_total", "faults injected across soak scenarios", float64(rep.Faults))
		count("repro_chaos_recoveries_total", "crash recoveries across soak scenarios", float64(rep.Recoveries))
		count("repro_chaos_lost_seconds_total", "virtual seconds lost to faults across soak scenarios", rep.Lost)
		if inv != nil {
			count("repro_chaos_violations_total", "invariant violations by name", 1, obs.L("invariant", inv.Name))
			h.cfg.Logf("run %d seed %d FAILED %s — shrinking", i, seed, inv.Name)
			minimal, serr := h.shrinkSameInvariant(sc, inv.Name)
			if serr != nil {
				return reports, nil, serr
			}
			return reports, &Failure{Index: i, Seed: seed, Scenario: sc, Minimal: minimal, Err: inv}, nil
		}
		reports = append(reports, rep)
		h.cfg.Logf("run %d seed %d ok: %d fault(s), %d recover(ies), wall %.3gs",
			i, seed, rep.Faults, rep.Recoveries, rep.Wall)
	}
	return reports, nil, nil
}

func (h *Harness) shrinkSameInvariant(sc *fault.Scenario, name string) (*fault.Scenario, error) {
	var infra error
	min := Shrink(sc, func(cand *fault.Scenario) bool {
		if infra != nil {
			return false
		}
		_, inv, err := h.Check(cand)
		if err != nil {
			infra = err
			return false
		}
		return inv != nil && inv.Name == name
	})
	return min, infra
}

// ScenarioSeed derives run i's scenario seed from the base seed with a
// splitmix64 finalizer, so neighbouring runs get uncorrelated streams.
func ScenarioSeed(base uint64, run int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(run+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// stripCrashes returns sc without its crash specs (same name/seed).
func stripCrashes(sc *fault.Scenario) *fault.Scenario {
	out := &fault.Scenario{Name: sc.Name, Seed: sc.Seed, Jitter: sc.Jitter}
	for _, f := range sc.Faults {
		if f.Kind != fault.KindCrash {
			out.Faults = append(out.Faults, f)
		}
	}
	return out
}
