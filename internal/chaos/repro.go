package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pmd"
)

// Repro is the canonical faultbench reproduction command for a failing
// soak scenario. Both the chaos CLI and the CI soak print failures
// through Line(), and ParseRepro round-trips the result, so a repro line
// pasted from a log always carries every knob that shaped the run —
// including the decomposition and recovery strategy, which change which
// code path a crash exercises.
type Repro struct {
	DSL      string // minimal fault-scenario DSL
	Seed     uint64
	Procs    int
	CPUs     int
	Net      string
	Steps    int
	Atoms    int
	Decomp   pmd.DecompKind
	Recovery pmd.RecoveryKind
}

// Line renders the faultbench invocation that replays the scenario.
func (r Repro) Line() string {
	return fmt.Sprintf("faultbench -spec '%s' -seed %d -p %d -cpus %d -net %s -steps %d -atoms %d -decomp %s -recovery %s",
		r.DSL, r.Seed, r.Procs, r.CPUs, r.Net, r.Steps, r.Atoms, r.Decomp, r.Recovery)
}

// ParseRepro parses a Line()-formatted command back into its fields, so
// tooling can lift a repro out of a CI log without re-tokenizing flags
// by hand. The command name is checked but any path prefix is accepted.
func ParseRepro(line string) (Repro, error) {
	toks, err := splitQuoted(strings.TrimSpace(line))
	if err != nil {
		return Repro{}, err
	}
	if len(toks) == 0 || !strings.HasSuffix(toks[0], "faultbench") {
		return Repro{}, fmt.Errorf("chaos: not a faultbench repro line: %q", line)
	}
	r := Repro{}
	for i := 1; i < len(toks); i += 2 {
		if i+1 >= len(toks) {
			return Repro{}, fmt.Errorf("chaos: flag %q missing its value", toks[i])
		}
		flag, val := toks[i], toks[i+1]
		var err error
		switch flag {
		case "-spec":
			r.DSL = val
		case "-seed":
			r.Seed, err = strconv.ParseUint(val, 10, 64)
		case "-p":
			r.Procs, err = strconv.Atoi(val)
		case "-cpus":
			r.CPUs, err = strconv.Atoi(val)
		case "-net":
			r.Net = val
		case "-steps":
			r.Steps, err = strconv.Atoi(val)
		case "-atoms":
			r.Atoms, err = strconv.Atoi(val)
		case "-decomp":
			r.Decomp, err = pmd.ParseDecomp(val)
		case "-recovery":
			r.Recovery, err = pmd.ParseRecovery(val)
		default:
			return Repro{}, fmt.Errorf("chaos: unknown repro flag %q", flag)
		}
		if err != nil {
			return Repro{}, fmt.Errorf("chaos: repro flag %s=%q: %w", flag, val, err)
		}
	}
	return r, nil
}

// splitQuoted splits on spaces, treating a single-quoted span as one
// token (the DSL contains commas and semicolons but never quotes).
func splitQuoted(s string) ([]string, error) {
	var toks []string
	for len(s) > 0 {
		s = strings.TrimLeft(s, " ")
		if len(s) == 0 {
			break
		}
		if s[0] == '\'' {
			end := strings.IndexByte(s[1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("chaos: unterminated quote in %q", s)
			}
			toks = append(toks, s[1:1+end])
			s = s[end+2:]
			continue
		}
		sp := strings.IndexByte(s, ' ')
		if sp < 0 {
			toks = append(toks, s)
			break
		}
		toks = append(toks, s[:sp])
		s = s[sp+1:]
	}
	return toks, nil
}
