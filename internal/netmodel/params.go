// Package netmodel defines the communication-performance models of the
// interconnects the paper compares: MPICH over TCP/IP on Gigabit Ethernet
// (the reference), SCore on the same Gigabit Ethernet, MPICH-GM on Myrinet,
// and Fast Ethernet (from the companion technical report). Each model is a
// LogGP-style parameter set plus two behavioural features the paper
// identifies as decisive:
//
//   - TCP/IP flow-control stalls that appear once several flows are active
//     (the large throughput variability of Fig. 7), and
//   - interrupt-driven receive processing that serializes on one CPU per
//     node (the dual-processor collapse of Fig. 9a) — SCore and Myrinet use
//     polling/user-level drivers and do not suffer from it.
package netmodel

// Params is the performance model of one network + driver stack.
type Params struct {
	Name string

	Latency float64 // one-way wire+switch latency, seconds

	SendOverhead float64 // host CPU per message on the sender, seconds
	RecvOverhead float64 // host CPU per message on the receiver, seconds

	PerPacketSend float64 // host CPU per packet sent
	PerPacketRecv float64 // host/interrupt CPU per packet received
	PacketSize    int     // bytes per packet (MTU or network packet)

	Bandwidth float64 // effective stream bandwidth, bytes/second

	EagerLimit int // messages ≤ this are sent eagerly; larger use rendezvous

	// InterruptDriven: receive-side packet processing must run on the
	// node's interrupt CPU (CPU 0), serializing all flows into the node.
	InterruptDriven bool

	// TCP-style stalls: when more than StallFlowThreshold flows are active
	// fabric-wide, each message independently stalls with probability
	// StallProb·(flows − StallFlowThreshold), adding an exponentially
	// distributed delay of mean StallMean.
	StallProb          float64
	StallMean          float64
	StallFlowThreshold int
}

// Packets returns the packet count for an m-byte message (minimum 1).
func (p Params) Packets(m int) int {
	if m <= 0 {
		return 1
	}
	return (m + p.PacketSize - 1) / p.PacketSize
}

// TCPGigE models MPICH 1.2 over TCP/IP on Gigabit Ethernet — the paper's
// reference platform: decent bandwidth, high latency and per-message
// overhead, interrupt-driven receives, flow-control instability under
// concurrent flows.
func TCPGigE() Params {
	return Params{
		Name:         "TCP/IP on Ethernet",
		Latency:      60e-6,
		SendOverhead: 40e-6,
		RecvOverhead: 40e-6,

		PerPacketSend: 8.0e-6,
		PerPacketRecv: 22.0e-6,
		PacketSize:    1500,

		Bandwidth:  26e6,
		EagerLimit: 64 * 1024,

		InterruptDriven:    true,
		StallProb:          0.09,
		StallMean:          2.5e-3,
		StallFlowThreshold: 2,
	}
}

// SCoreGigE models the SCore (PM) communication system on the same Gigabit
// Ethernet wire: its own reliable protocol with low latency, small
// overheads and no TCP flow-control pathology.
func SCoreGigE() Params {
	return Params{
		Name:         "SCore on Ethernet",
		Latency:      19e-6,
		SendOverhead: 7e-6,
		RecvOverhead: 7e-6,

		PerPacketSend: 0.7e-6,
		PerPacketRecv: 0.9e-6,
		PacketSize:    1468,

		Bandwidth:  85e6,
		EagerLimit: 64 * 1024,

		InterruptDriven: false,
	}
}

// MyrinetGM models MPICH-GM over Myrinet with its LANai co-processor NIC:
// lowest latency and overhead, highest bandwidth, at ~50% extra machine
// cost (paper §4.1).
func MyrinetGM() Params {
	return Params{
		Name:         "Myrinet",
		Latency:      11e-6,
		SendOverhead: 2.8e-6,
		RecvOverhead: 2.8e-6,

		PerPacketSend: 0.25e-6,
		PerPacketRecv: 0.25e-6,
		PacketSize:    4096,

		Bandwidth:  125e6,
		EagerLimit: 32 * 1024,

		InterruptDriven: false,
	}
}

// FastEthernet models MPICH over TCP/IP on 100 Mbit/s Ethernet, from the
// companion technical report [17]: the same protocol pathologies as
// TCP/GigE with one tenth the bandwidth.
func FastEthernet() Params {
	return Params{
		Name:         "TCP/IP on Fast Ethernet",
		Latency:      70e-6,
		SendOverhead: 32e-6,
		RecvOverhead: 32e-6,

		PerPacketSend: 8.0e-6,
		PerPacketRecv: 22.0e-6,
		PacketSize:    1500,

		Bandwidth:  10.5e6,
		EagerLimit: 64 * 1024,

		InterruptDriven:    true,
		StallProb:          0.045,
		StallMean:          2.5e-3,
		StallFlowThreshold: 2,
	}
}

// ByName returns the model with the given short name: "tcp", "score",
// "myrinet", "fast". It returns ok=false for unknown names.
func ByName(name string) (Params, bool) {
	switch name {
	case "tcp", "tcpip", "ethernet":
		return TCPGigE(), true
	case "score":
		return SCoreGigE(), true
	case "myrinet", "gm":
		return MyrinetGM(), true
	case "fast", "fastethernet":
		return FastEthernet(), true
	}
	return Params{}, false
}

// All returns the three networks of the paper's factor space, reference
// first.
func All() []Params {
	return []Params{TCPGigE(), SCoreGigE(), MyrinetGM()}
}
