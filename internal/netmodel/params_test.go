package netmodel

import "testing"

func TestPackets(t *testing.T) {
	p := TCPGigE()
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {3001, 3},
	}
	for _, c := range cases {
		if got := p.Packets(c.bytes); got != c.want {
			t.Fatalf("Packets(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	gm := MyrinetGM()
	if got := gm.Packets(4097); got != 2 {
		t.Fatalf("GM Packets(4097) = %d", got)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"tcp":     "TCP/IP on Ethernet",
		"tcpip":   "TCP/IP on Ethernet",
		"score":   "SCore on Ethernet",
		"myrinet": "Myrinet",
		"gm":      "Myrinet",
		"fast":    "TCP/IP on Fast Ethernet",
	} {
		p, ok := ByName(name)
		if !ok || p.Name != want {
			t.Fatalf("ByName(%q) = %q, %v", name, p.Name, ok)
		}
	}
	if _, ok := ByName("infiniband"); ok {
		t.Fatal("unknown network resolved")
	}
}

func TestAllReturnsPaperNetworks(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() = %d networks", len(all))
	}
	if all[0].Name != "TCP/IP on Ethernet" {
		t.Fatalf("reference network first, got %q", all[0].Name)
	}
}

// TestParameterOrdering pins the qualitative relations the paper's factor
// analysis depends on; a calibration edit that breaks one of these breaks
// every figure.
func TestParameterOrdering(t *testing.T) {
	tcp, score, myri := TCPGigE(), SCoreGigE(), MyrinetGM()
	if !(myri.Latency < score.Latency && score.Latency < tcp.Latency) {
		t.Fatal("latency ordering violated")
	}
	if !(myri.Bandwidth > score.Bandwidth && score.Bandwidth > tcp.Bandwidth) {
		t.Fatal("bandwidth ordering violated")
	}
	if !(myri.SendOverhead < score.SendOverhead && score.SendOverhead < tcp.SendOverhead) {
		t.Fatal("overhead ordering violated")
	}
	if !tcp.InterruptDriven || score.InterruptDriven || myri.InterruptDriven {
		t.Fatal("interrupt-driven flags wrong")
	}
	if tcp.StallProb <= 0 || score.StallProb != 0 || myri.StallProb != 0 {
		t.Fatal("stall model flags wrong")
	}
	fast := FastEthernet()
	if fast.Bandwidth >= tcp.Bandwidth/2 {
		t.Fatal("Fast Ethernet should be far below GigE bandwidth")
	}
}

func TestAllPositiveParams(t *testing.T) {
	for _, p := range append(All(), FastEthernet()) {
		if p.Latency <= 0 || p.Bandwidth <= 0 || p.PacketSize <= 0 ||
			p.SendOverhead <= 0 || p.RecvOverhead <= 0 || p.EagerLimit <= 0 {
			t.Fatalf("%s has non-positive parameters: %+v", p.Name, p)
		}
	}
}
