package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median %v", s.Median)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev %v want %v", s.StdDev, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Fatalf("single: %+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	if s := Summarize([]float64{9, 1, 5}); s.Median != 5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes where the mean cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e12))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelSpread(t *testing.T) {
	if got := Summarize([]float64{50, 100}).RelSpread(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RelSpread %v", got)
	}
	if got := (Summary{}).RelSpread(); got != 0 {
		t.Fatalf("zero summary spread %v", got)
	}
}
