package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleSummarize() {
	s := stats.Summarize([]float64{10, 20, 60})
	fmt.Printf("mean %.0f, min %.0f, max %.0f, spread %.2f\n", s.Mean, s.Min, s.Max, s.RelSpread())
	// Output:
	// mean 30, min 10, max 60, spread 0.83
}
