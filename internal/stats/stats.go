// Package stats provides the small set of descriptive statistics the
// workload characterization reports (averages with min/max variability
// bars, as in the paper's Fig. 7).
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N        int
	Mean     float64
	Min, Max float64
	StdDev   float64
	Median   float64
}

// Summarize computes a Summary of xs. An empty input returns the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = 0.5 * (sorted[mid-1] + sorted[mid])
	}
	return s
}

// RelSpread returns (max−min)/max, the variability measure the paper uses
// to flag unstable configurations; zero for empty or all-zero samples.
func (s Summary) RelSpread() float64 {
	if s.Max == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Max
}
