package perf

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// synthetic builds a 2-rank, 3-step timeline with rank 1 computing twice
// rank 0's classic share (the imbalance the analyzer must attribute).
func synthetic() (*Timeline, float64, []RankAcct) {
	tl := NewTimeline(2, 3)
	for step := 0; step < 3; step++ {
		// classic: rank0 1s comp, rank1 2s comp; both then wait/sync to 2s.
		tl.Record(0, step, PhaseClassic, Sample{Comp: 1, Sync: 1, Wall: 2})
		tl.Record(1, step, PhaseClassic, Sample{Comp: 2, Wall: 2})
		// pme: balanced 1s comp + 0.5s comm each.
		tl.Record(0, step, PhasePME, Sample{Comp: 1, Comm: 0.5, Wall: 1.5})
		tl.Record(1, step, PhasePME, Sample{Comp: 1, Comm: 0.5, Wall: 1.5})
	}
	// Whole-run accounting: the 3 steps plus 1s of setup compute each.
	acct := []RankAcct{
		{Comp: 1 + 3*(1+1), Comm: 3 * 0.5, Sync: 3 * 1},
		{Comp: 1 + 3*(2+1), Comm: 3 * 0.5, Sync: 0},
	}
	// wall = slowest path: 1 setup + 3*(2+1.5) = 11.5
	return tl, 11.5, acct
}

func TestAnalyzeIdentityAndImbalance(t *testing.T) {
	tl, wall, acct := synthetic()
	p := tl.Analyze(wall, acct, nil)

	if got := p.Attribution.Sum(); math.Abs(got-wall) > 1e-9 {
		t.Fatalf("attribution identity: buckets sum to %g, wall %g", got, wall)
	}
	if p.Steps != 3 || p.Ranks != 2 {
		t.Fatalf("shape: steps=%d ranks=%d", p.Steps, p.Ranks)
	}
	// classic imbalance: max 6 / mean 4.5 (rank totals 3 and 6... mean is
	// (3+6)/2=4.5) → 6/4.5.
	cl := p.Phases[PhaseClassic]
	if math.Abs(cl.Imbalance-6.0/4.5) > 1e-12 {
		t.Fatalf("classic imbalance = %g, want %g", cl.Imbalance, 6.0/4.5)
	}
	pme := p.Phases[PhasePME]
	if math.Abs(pme.Imbalance-1) > 1e-12 {
		t.Fatalf("pme imbalance = %g, want 1", pme.Imbalance)
	}
	// Direct imbalance per classic cell: max 2 − mean 1.5 = 0.5 → 1.5s
	// total, all inside the measured sync (1.5s mean).
	if math.Abs(p.Attribution.ImbalanceSeconds-1.5) > 1e-9 {
		t.Fatalf("imbalance bucket = %g, want 1.5", p.Attribution.ImbalanceSeconds)
	}
	// Critical path: per step max walls 2 + 1.5 → 10.5 over 3 steps.
	if math.Abs(p.CriticalPath.Seconds-10.5) > 1e-9 {
		t.Fatalf("critical path = %g, want 10.5", p.CriticalPath.Seconds)
	}
	// Walls tie in every cell (rank 0 waits out rank 1's excess), and
	// ties go to the lowest rank — so occupancy concentrates on rank 0.
	if p.CriticalPath.Occupancy[0] != 1 || p.CriticalPath.Occupancy[1] != 0 {
		t.Fatalf("occupancy = %v", p.CriticalPath.Occupancy)
	}
	if p.CriticalPath.DominantRank != 0 {
		t.Fatalf("dominant rank = %d", p.CriticalPath.DominantRank)
	}
}

func TestAnalyzeDominant(t *testing.T) {
	cases := []struct {
		att  Attribution
		want string
	}{
		{Attribution{ComputeSeconds: 6, CommSeconds: 4, WallSeconds: 10}, "compute"},
		{Attribution{ComputeSeconds: 3, CommSeconds: 5, WaitSeconds: 2, WallSeconds: 10}, "comm"},
		{Attribution{ComputeSeconds: 3, ImbalanceSeconds: 5, WallSeconds: 10}, "imbalance"},
		{Attribution{ComputeSeconds: 2, RecoverySeconds: 7, WallSeconds: 10}, "recovery"},
		{Attribution{ComputeSeconds: 4, WaitSeconds: 5, WallSeconds: 10}, "wait"},
	}
	for _, c := range cases {
		if got := dominant(c.att); got != c.want {
			t.Errorf("dominant(%+v) = %q, want %q", c.att, got, c.want)
		}
	}
}

func TestRecordOverwriteIsIdempotent(t *testing.T) {
	tl := NewTimeline(1, 2)
	tl.Record(0, 0, PhaseClassic, Sample{Comp: 5, Wall: 5})
	// A resilient rewind re-records the step; the profile must not sum
	// the attempts.
	tl.Record(0, 0, PhaseClassic, Sample{Comp: 1, Wall: 1})
	p := tl.Analyze(1, []RankAcct{{Comp: 1}}, nil)
	if p.Phases[PhaseClassic].MaxComp != 1 {
		t.Fatalf("overwrite failed: max comp %g", p.Phases[PhaseClassic].MaxComp)
	}
}

func TestTimelineBoundSpills(t *testing.T) {
	tl := NewTimeline(1, 1) // bound = 1 step
	tl.Record(0, 0, PhaseClassic, Sample{Comp: 1, Wall: 1})
	tl.Record(0, 5, PhaseClassic, Sample{Comp: 2, Wall: 2}) // beyond the bound
	p := tl.Analyze(3, []RankAcct{{Comp: 3}}, nil)
	if p.TruncatedSamples != 1 {
		t.Fatalf("truncated = %d, want 1", p.TruncatedSamples)
	}
	// The spilled comp still reaches the phase totals.
	if p.Phases[PhaseClassic].MaxComp != 3 {
		t.Fatalf("spilled comp lost: max %g", p.Phases[PhaseClassic].MaxComp)
	}
	// Out-of-range records are dropped, not panics.
	tl.Record(7, 0, PhaseClassic, Sample{})
	tl.Record(0, -1, PhaseClassic, Sample{})
	tl.Record(0, 0, 9, Sample{})
}

func TestCommAggregates(t *testing.T) {
	tl := NewTimeline(3, 1)
	tl.Matrix("alltoallv", [][]int{{0, 10, 0}, {0, 0, 20}, {0, 0, 0}})
	tl.Matrix("alltoallv", [][]int{{0, 10, 0}, {0, 0, 20}, {0, 0, 0}})
	tl.Blocks("allgatherv", []int{5, 5, 5})
	tl.Collective("allreduce", 64)
	tl.NamedMatrix("halo", [][]int{{0, 3, 0}, {3, 0, 0}, {0, 0, 0}})
	p := tl.Analyze(1, nil, nil)

	if len(p.Collectives) != 3 {
		t.Fatalf("collectives: %+v", p.Collectives)
	}
	// Sorted by kind: allgatherv, allreduce, alltoallv.
	if p.Collectives[0].Kind != "allgatherv" || p.Collectives[0].Bytes != 30 {
		t.Fatalf("allgatherv stat: %+v", p.Collectives[0])
	}
	if p.Collectives[1].Kind != "allreduce" || p.Collectives[1].Calls != 1 || p.Collectives[1].Bytes != 64 {
		t.Fatalf("allreduce stat: %+v", p.Collectives[1])
	}
	if p.Collectives[2].Kind != "alltoallv" || p.Collectives[2].Calls != 2 || p.Collectives[2].Bytes != 60 {
		t.Fatalf("alltoallv stat: %+v", p.Collectives[2])
	}
	if p.CommMatrix[0][1] != 25 || p.CommMatrix[1][2] != 45 {
		t.Fatalf("matrix: %v", p.CommMatrix)
	}
	if len(p.NamedMatrices) != 1 || p.NamedMatrices[0].Bytes[0][1] != 3 || p.NamedMatrices[0].Calls != 1 {
		t.Fatalf("named: %+v", p.NamedMatrices)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	tl, wall, acct := synthetic()
	p := tl.Analyze(wall, acct, &RecoveryDetail{ReplaySeconds: 1, Events: 2})
	b1, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip changed bytes:\n%s\n----\n%s", b1, b2)
	}
	if q.Recovery == nil || q.Recovery.Events != 2 {
		t.Fatalf("recovery lost: %+v", q.Recovery)
	}
	if _, err := Parse([]byte(`{"schema":"repro/perf/v0"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRecordObsGauges(t *testing.T) {
	tl, wall, acct := synthetic()
	p := tl.Analyze(wall, acct, nil)
	reg := obs.NewRegistry()
	p.RecordObs(reg)
	got := reg.Value("repro_imbalance_ratio", obs.L("phase", "classic"))
	if math.Abs(got-6.0/4.5) > 1e-12 {
		t.Fatalf("repro_imbalance_ratio{classic} = %g", got)
	}
	if v := reg.Value("repro_attribution_seconds", obs.L("bucket", "compute")); v != p.Attribution.ComputeSeconds {
		t.Fatalf("attribution gauge = %g", v)
	}
}

// TestConcurrentRanks exercises the lock-free per-rank rows plus the
// mutexed collective aggregates under the race detector.
func TestConcurrentRanks(t *testing.T) {
	const ranks, steps = 8, 64
	tl := NewTimeline(ranks, steps)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				tl.Record(r, s, PhaseClassic, Sample{Comp: 1, Wall: 1})
				tl.Record(r, s, PhasePME, Sample{Comp: 1, Wall: 1})
				if r == 0 {
					tl.Collective("allreduce", 8)
				}
			}
		}(r)
	}
	wg.Wait()
	p := tl.Analyze(float64(2*steps), nil, nil)
	if p.Steps != steps {
		t.Fatalf("steps = %d", p.Steps)
	}
	if p.CriticalPath.Seconds != float64(2*steps) {
		t.Fatalf("critical path = %g", p.CriticalPath.Seconds)
	}
}
