package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// RankAcct is one rank's whole-run transport accounting (the engine's
// mpi.Accounting, mirrored to keep the import direction engine → perf).
type RankAcct struct {
	Comp float64
	Comm float64
	Sync float64
	Lost float64
}

// Total is the rank's accounted virtual time.
func (a RankAcct) Total() float64 { return a.Comp + a.Comm + a.Sync + a.Lost }

// RecoveryDetail splits the recovery bucket the way the resilient driver
// accounts lost work.
type RecoveryDetail struct {
	RewindSeconds float64 `json:"rewind_seconds"`
	ReplaySeconds float64 `json:"replay_seconds"`
	ParkSeconds   float64 `json:"park_seconds"`
	Events        int     `json:"events"`
}

// Attribution splits the measured wall clock into explanation buckets.
// The five buckets sum to WallSeconds by construction (see Analyze);
// that identity is what makes the report trustworthy — no time is
// invented and none goes missing.
type Attribution struct {
	ComputeSeconds   float64 `json:"compute_seconds"`
	CommSeconds      float64 `json:"comm_seconds"`
	WaitSeconds      float64 `json:"wait_seconds"`
	ImbalanceSeconds float64 `json:"imbalance_seconds"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`

	// Dominant names the bucket that explains the wall: "compute" when
	// computation is the majority of the wall (the run is compute-bound
	// and parallelism is paying), otherwise the largest non-compute
	// bucket — the bottleneck more ranks cannot fix.
	Dominant string `json:"dominant"`
}

// Sum returns the bucket total (== WallSeconds modulo clamping).
func (a Attribution) Sum() float64 {
	return a.ComputeSeconds + a.CommSeconds + a.WaitSeconds + a.ImbalanceSeconds + a.RecoverySeconds
}

// PhaseStat is the per-phase load-imbalance view across ranks.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	MeanComp float64 `json:"mean_compute_seconds"`
	MaxComp  float64 `json:"max_compute_seconds"`
	MeanWall float64 `json:"mean_wall_seconds"`
	MaxWall  float64 `json:"max_wall_seconds"`
	// Imbalance is max/mean of the per-rank compute totals: 1.0 is a
	// perfectly balanced phase, 2.0 means the slowest rank computes
	// twice the average (half the cluster idles at the collective).
	Imbalance float64 `json:"imbalance_ratio"`
}

// CriticalPath summarizes the longest dependency chain through the
// step × phase grid: every phase ends in a collective, so the slowest
// rank of each cell gates everyone, and the critical path is the chain
// of per-cell maxima.
type CriticalPath struct {
	Seconds        float64 `json:"seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	DominantRank   int     `json:"dominant_rank"`
	// Occupancy[r] is the fraction of grid cells whose slowest rank is
	// r (ties to the lowest rank). A flat profile means the bottleneck
	// moves around; a spike means one rank drags the whole run.
	Occupancy []float64 `json:"occupancy"`
}

// Profile is the versioned attribution document.
type Profile struct {
	Schema           string           `json:"schema"`
	Ranks            int              `json:"ranks"`
	Steps            int              `json:"steps"`
	TruncatedSamples int64            `json:"truncated_samples,omitempty"`
	WallSeconds      float64          `json:"wall_seconds"`
	Attribution      Attribution      `json:"attribution"`
	Phases           []PhaseStat      `json:"phases"`
	CriticalPath     CriticalPath     `json:"critical_path"`
	Collectives      []CollectiveStat `json:"collectives,omitempty"`
	CommMatrix       [][]int64        `json:"comm_matrix,omitempty"`
	NamedMatrices    []NamedMatrix    `json:"named_matrices,omitempty"`
	Recovery         *RecoveryDetail  `json:"recovery,omitempty"`
}

// Analyze builds the attribution profile for a run.
//
// The bucket totals come from the whole-run per-rank accounting (acct),
// not the per-step samples — the accounting also covers the unmeasured
// setup (the step-0 force evaluation velocity Verlet needs), so the
// identity  compute + comm + wait + imbalance + recovery = wall  holds
// for the full wall clock, not just the measured steps. The samples
// supply structure: which phase is imbalanced, and how much of the
// measured synchronization is directly explained by compute imbalance
// (the slowest rank's excess over the mean, per cell) versus residual
// wait at collectives (latency chains, fault windows, stalls).
func (tl *Timeline) Analyze(wall float64, acct []RankAcct, rec *RecoveryDetail) *Profile {
	p := &Profile{
		Schema:           Schema,
		Ranks:            tl.ranks,
		Steps:            tl.steps(),
		TruncatedSamples: tl.truncated(),
		WallSeconds:      wall,
	}

	// Whole-run means across ranks.
	var meanComp, meanComm, meanSync, meanLost float64
	if n := len(acct); n > 0 {
		for _, a := range acct {
			meanComp += a.Comp
			meanComm += a.Comm
			meanSync += a.Sync
			meanLost += a.Lost
		}
		meanComp /= float64(n)
		meanComm /= float64(n)
		meanSync /= float64(n)
		meanLost /= float64(n)
	}

	// Per-phase rank totals and the per-cell imbalance integral.
	steps := p.Steps
	var imbDirect float64
	var compTot, wallTot [NumPhases][]float64
	for ph := 0; ph < NumPhases; ph++ {
		compTot[ph] = make([]float64, tl.ranks)
		wallTot[ph] = make([]float64, tl.ranks)
	}
	occ := make([]int, tl.ranks)
	cells := 0
	var cpSeconds, cpComp, cpComm float64
	for step := 0; step < steps; step++ {
		for ph := 0; ph < NumPhases; ph++ {
			var maxComp, meanCell, maxWall, maxComm float64
			slowest := 0
			for r := 0; r < tl.ranks; r++ {
				s := tl.cells[r][step][ph]
				compTot[ph][r] += s.Comp
				wallTot[ph][r] += s.Wall
				meanCell += s.Comp
				if s.Comp > maxComp {
					maxComp = s.Comp
				}
				if c := s.Comm + s.Sync; c > maxComm {
					maxComm = c
				}
				if s.Wall > maxWall {
					maxWall = s.Wall
					slowest = r
				}
			}
			meanCell /= float64(tl.ranks)
			imbDirect += maxComp - meanCell
			cpSeconds += maxWall
			cpComp += maxComp
			cpComm += maxComm
			occ[slowest]++
			cells++
		}
	}
	// Spilled (truncated) steps still contribute their fold to the
	// imbalance integral at phase granularity.
	for ph := 0; ph < NumPhases; ph++ {
		var maxComp, meanCell float64
		any := false
		for r := 0; r < tl.ranks; r++ {
			s := tl.spill[r][ph]
			if s != (Sample{}) {
				any = true
			}
			meanCell += s.Comp
			if s.Comp > maxComp {
				maxComp = s.Comp
			}
		}
		if any {
			imbDirect += maxComp - meanCell/float64(tl.ranks)
		}
	}

	// Attribution buckets. residual is the wall time the mean rank has
	// no accounting for (scheduler slack; ~0 in the simulated cluster);
	// it lands in the wait bucket so the identity stays exact.
	residual := wall - (meanComp + meanComm + meanSync + meanLost)
	imb := imbDirect
	if imb > meanSync {
		imb = meanSync
	}
	if imb < 0 {
		imb = 0
	}
	wait := meanSync - imb + residual
	if wait < 0 {
		imb += wait
		wait = 0
		if imb < 0 {
			imb = 0
		}
	}
	att := Attribution{
		ComputeSeconds:   meanComp,
		CommSeconds:      meanComm,
		WaitSeconds:      wait,
		ImbalanceSeconds: imb,
		RecoverySeconds:  meanLost,
		WallSeconds:      wall,
	}
	att.Dominant = dominant(att)
	p.Attribution = att

	// Phase stats.
	for ph := 0; ph < NumPhases; ph++ {
		st := PhaseStat{Phase: PhaseNames[ph]}
		for r := 0; r < tl.ranks; r++ {
			c, w := compTot[ph][r]+tl.spill[r][ph].Comp, wallTot[ph][r]+tl.spill[r][ph].Wall
			st.MeanComp += c
			st.MeanWall += w
			if c > st.MaxComp {
				st.MaxComp = c
			}
			if w > st.MaxWall {
				st.MaxWall = w
			}
		}
		st.MeanComp /= float64(tl.ranks)
		st.MeanWall /= float64(tl.ranks)
		if st.MeanComp > 0 {
			st.Imbalance = st.MaxComp / st.MeanComp
		}
		p.Phases = append(p.Phases, st)
	}

	// Critical path.
	cp := CriticalPath{
		Seconds:        cpSeconds,
		ComputeSeconds: cpComp,
		CommSeconds:    cpComm,
		Occupancy:      make([]float64, tl.ranks),
	}
	if cells > 0 {
		best := 0
		for r := 0; r < tl.ranks; r++ {
			cp.Occupancy[r] = float64(occ[r]) / float64(cells)
			if occ[r] > occ[best] {
				best = r
			}
		}
		cp.DominantRank = best
	}
	p.CriticalPath = cp

	// Communication aggregates, deterministically ordered.
	tl.mu.Lock()
	for _, c := range tl.colls {
		p.Collectives = append(p.Collectives, *c)
	}
	var anyPair bool
	for r := 0; r < tl.ranks && !anyPair; r++ {
		for _, b := range tl.mat[r] {
			if b != 0 {
				anyPair = true
				break
			}
		}
	}
	if anyPair {
		p.CommMatrix = make([][]int64, tl.ranks)
		for r := 0; r < tl.ranks; r++ {
			p.CommMatrix[r] = append([]int64(nil), tl.mat[r]...)
		}
	}
	for _, nm := range tl.named {
		cp := NamedMatrix{Name: nm.Name, Calls: nm.Calls, Bytes: make([][]int64, len(nm.Bytes))}
		for r := range nm.Bytes {
			cp.Bytes[r] = append([]int64(nil), nm.Bytes[r]...)
		}
		p.NamedMatrices = append(p.NamedMatrices, cp)
	}
	tl.mu.Unlock()
	sort.Slice(p.Collectives, func(i, j int) bool { return p.Collectives[i].Kind < p.Collectives[j].Kind })
	sort.Slice(p.NamedMatrices, func(i, j int) bool { return p.NamedMatrices[i].Name < p.NamedMatrices[j].Name })

	if rec != nil {
		r := *rec
		p.Recovery = &r
	}
	return p
}

// dominant names the bucket that explains the wall clock.
func dominant(a Attribution) string {
	if a.WallSeconds > 0 && a.ComputeSeconds > 0.5*a.WallSeconds {
		return "compute"
	}
	best, bestV := "compute", a.ComputeSeconds
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"comm", a.CommSeconds},
		{"wait", a.WaitSeconds},
		{"imbalance", a.ImbalanceSeconds},
		{"recovery", a.RecoverySeconds},
	} {
		if c.v > bestV {
			best, bestV = c.name, c.v
		}
	}
	return best
}

// RecordObs publishes the profile's headline numbers as gauges:
// repro_imbalance_ratio{phase}, repro_attribution_seconds{bucket} and
// repro_critical_path_seconds.
func (p *Profile) RecordObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, st := range p.Phases {
		reg.Gauge("repro_imbalance_ratio",
			"max/mean per-rank compute seconds of the phase (1.0 = balanced)",
			obs.L("phase", st.Phase)).Set(st.Imbalance)
	}
	help := "wall-clock attribution bucket of the last profiled run"
	reg.Gauge("repro_attribution_seconds", help, obs.L("bucket", "compute")).Set(p.Attribution.ComputeSeconds)
	reg.Gauge("repro_attribution_seconds", help, obs.L("bucket", "comm")).Set(p.Attribution.CommSeconds)
	reg.Gauge("repro_attribution_seconds", help, obs.L("bucket", "wait")).Set(p.Attribution.WaitSeconds)
	reg.Gauge("repro_attribution_seconds", help, obs.L("bucket", "imbalance")).Set(p.Attribution.ImbalanceSeconds)
	reg.Gauge("repro_attribution_seconds", help, obs.L("bucket", "recovery")).Set(p.Attribution.RecoverySeconds)
	reg.Gauge("repro_critical_path_seconds",
		"sum over step/phase cells of the slowest rank's wall seconds").Set(p.CriticalPath.Seconds)
}

// Encode renders the profile as deterministic, indented JSON with a
// trailing newline — the byte representation every surface serves.
func (p *Profile) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a profile document, rejecting unknown schemas.
func Parse(b []byte) (*Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("perf: bad profile: %w", err)
	}
	if p.Schema != Schema {
		return nil, fmt.Errorf("perf: unsupported profile schema %q (want %q)", p.Schema, Schema)
	}
	return &p, nil
}
