// Package perf is the performance-attribution subsystem: a bounded,
// allocation-disciplined per-step timeline of rank × phase samples plus
// collective byte matrices, and an analyzer that explains a run's wall
// clock the way the source paper explains CHARMM's — but automatically.
// Where the paper decomposes wall time into phases by hand (§3.2), the
// analyzer computes the critical path through the step's collective DAG,
// per-phase load imbalance across ranks, a rank-to-rank communication
// matrix, and an attribution report splitting wall time into compute /
// comm / wait-at-collective / imbalance / recovery buckets that sum to
// the measured wall by construction.
//
// The timeline is fed from the same PhaseSample hooks the printed report
// uses, so the profile and the paper tables always agree; the profile
// serializes as a versioned JSON document (Schema "repro/perf/v1") that
// the run manifest, the obs server's /profilez view and the serve tier's
// /v1/jobs/<id>/profile endpoint all share.
package perf

import (
	"fmt"
	"sync"
)

// Schema identifies the profile JSON document version. Bump on any
// incompatible change to the Profile shape.
const Schema = "repro/perf/v1"

// Phase indices of the paper's classic/PME step split. The timeline is
// sized for exactly these; a third phase would be a schema change.
const (
	PhaseClassic = 0
	PhasePME     = 1
	NumPhases    = 2
)

// PhaseNames maps phase indices to their exposition names.
var PhaseNames = [NumPhases]string{"classic", "pme"}

// maxBoundedSteps caps the per-step sample store regardless of the
// configured step count: beyond it, samples fold into per-rank overflow
// totals and the profile reports how many were truncated. At the cap the
// store is the same order of memory as the engine's own per-step timing
// table, so the bound exists to keep pathological step counts from
// turning the profiler into the biggest allocation in the process.
const maxBoundedSteps = 8192

// Sample is one rank's measured decomposition of one phase of one step.
// It mirrors the engine's PhaseSample (the engine imports this package,
// not the reverse).
type Sample struct {
	Comp  float64
	Comm  float64
	Sync  float64
	Wall  float64
	Bytes int64
}

func (s *Sample) add(o Sample) {
	s.Comp += o.Comp
	s.Comm += o.Comm
	s.Sync += o.Sync
	s.Wall += o.Wall
	s.Bytes += o.Bytes
}

// stepCell holds one step's samples for every phase.
type stepCell [NumPhases]Sample

// CollectiveStat aggregates one collective kind over a run.
type CollectiveStat struct {
	Kind  string `json:"kind"`
	Calls int64  `json:"calls"`
	Bytes int64  `json:"bytes"`
}

// NamedMatrix is a rank-to-rank byte matrix for one named exchange
// pattern (halo, migration, grid assembly, ...), aggregated over the run.
type NamedMatrix struct {
	Name  string    `json:"name"`
	Calls int64     `json:"calls"`
	Bytes [][]int64 `json:"bytes"`
}

// Timeline is the bounded per-step sample store one run feeds. Per-rank
// sample rows are preallocated at construction and written lock-free —
// each rank writes only its own row, the same discipline the engine's
// timing table uses — while the shared collective aggregates take a
// mutex (collectives are recorded once per call, not once per rank).
//
// Recording a step that was already recorded overwrites the cell: a
// resilient rewind replays its steps and the final profile must describe
// the completed trajectory, not the sum of attempts. Steps at or beyond
// the bound fold into per-rank overflow totals and count as truncated.
type Timeline struct {
	ranks  int
	bound  int
	cells  [][]stepCell
	hi     []int // per-rank: highest recorded step + 1 (bounded part)
	spill  []stepCell
	spillN []int64

	mu    sync.Mutex
	colls map[string]*CollectiveStat
	mat   [][]int64
	named map[string]*NamedMatrix
}

// NewTimeline sizes a timeline for a run of the given rank and step
// counts. All per-step storage is allocated here; Record never
// allocates.
func NewTimeline(ranks, steps int) *Timeline {
	if ranks < 1 {
		panic(fmt.Sprintf("perf: non-positive rank count %d", ranks))
	}
	if steps < 0 {
		steps = 0
	}
	bound := steps
	if bound > maxBoundedSteps {
		bound = maxBoundedSteps
	}
	tl := &Timeline{
		ranks:  ranks,
		bound:  bound,
		cells:  make([][]stepCell, ranks),
		hi:     make([]int, ranks),
		spill:  make([]stepCell, ranks),
		spillN: make([]int64, ranks),
		colls:  map[string]*CollectiveStat{},
		named:  map[string]*NamedMatrix{},
		mat:    make([][]int64, ranks),
	}
	for r := 0; r < ranks; r++ {
		tl.cells[r] = make([]stepCell, bound)
		tl.mat[r] = make([]int64, ranks)
	}
	return tl
}

// Ranks returns the rank count the timeline was sized for.
func (tl *Timeline) Ranks() int { return tl.ranks }

// Record stores one rank's sample for one phase of one step. Safe to
// call concurrently from different ranks; a rank must not race itself.
func (tl *Timeline) Record(rank, step, phase int, s Sample) {
	if rank < 0 || rank >= tl.ranks || step < 0 || phase < 0 || phase >= NumPhases {
		return
	}
	if step >= tl.bound {
		// Overflow: fold into the per-rank spill total. Overwrite
		// semantics are lost out here — rewound steps double-count —
		// which is why the profile surfaces the truncation count.
		tl.spill[rank][phase].add(s)
		tl.spillN[rank]++
		return
	}
	tl.cells[rank][step][phase] = s
	if step+1 > tl.hi[rank] {
		tl.hi[rank] = step + 1
	}
}

// Collective records one invocation of a collective with its aggregate
// payload (bytes moved by the slowest participant, or the reduction
// size). Call once per collective, not once per rank.
func (tl *Timeline) Collective(kind string, bytes int64) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.collLocked(kind, 1, bytes)
}

func (tl *Timeline) collLocked(kind string, calls, bytes int64) {
	c := tl.colls[kind]
	if c == nil {
		c = &CollectiveStat{Kind: kind}
		tl.colls[kind] = c
	}
	c.Calls += calls
	c.Bytes += bytes
}

// Matrix records one personalized all-to-all (sizes[src][dst] bytes)
// into the run's aggregate rank-to-rank communication matrix. Call once
// per collective invocation.
func (tl *Timeline) Matrix(kind string, sizes [][]int) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var total int64
	for src := 0; src < len(sizes) && src < tl.ranks; src++ {
		row := sizes[src]
		for dst := 0; dst < len(row) && dst < tl.ranks; dst++ {
			if b := row[dst]; b > 0 {
				tl.mat[src][dst] += int64(b)
				total += int64(b)
			}
		}
	}
	tl.collLocked(kind, 1, total)
}

// Blocks records one all-gather (blocks[src] bytes broadcast by each
// rank to every other) into the aggregate matrix.
func (tl *Timeline) Blocks(kind string, blocks []int) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var total int64
	for src := 0; src < len(blocks) && src < tl.ranks; src++ {
		b := int64(blocks[src])
		if b <= 0 {
			continue
		}
		for dst := 0; dst < tl.ranks; dst++ {
			if dst != src {
				tl.mat[src][dst] += b
				total += b
			}
		}
	}
	tl.collLocked(kind, 1, total)
}

// NamedMatrix additionally aggregates sizes under a decomposition-level
// name (halo, migration) so the profile can attribute bytes to the
// exchange pattern, not just the transport collective that carried it.
func (tl *Timeline) NamedMatrix(name string, sizes [][]int) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	nm := tl.named[name]
	if nm == nil {
		nm = &NamedMatrix{Name: name, Bytes: make([][]int64, tl.ranks)}
		for r := 0; r < tl.ranks; r++ {
			nm.Bytes[r] = make([]int64, tl.ranks)
		}
		tl.named[name] = nm
	}
	nm.Calls++
	for src := 0; src < len(sizes) && src < tl.ranks; src++ {
		row := sizes[src]
		for dst := 0; dst < len(row) && dst < tl.ranks; dst++ {
			if b := row[dst]; b > 0 {
				nm.Bytes[src][dst] += int64(b)
			}
		}
	}
}

// steps returns the number of bounded steps any rank recorded.
func (tl *Timeline) steps() int {
	max := 0
	for _, h := range tl.hi {
		if h > max {
			max = h
		}
	}
	return max
}

// truncated returns the total samples folded past the bound.
func (tl *Timeline) truncated() int64 {
	var n int64
	for _, v := range tl.spillN {
		n += v
	}
	return n
}
