package figures

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/doe"
	"repro/internal/report"
)

// FactorAnalysis runs Jain's allocation-of-variation analysis (§3.1 cites
// Jain [11] for the methodology) over the full factorial design, using the
// total energy-calculation time as the response variable.
func (s *Suite) FactorAnalysis() (*doe.Analysis, error) {
	rows, err := s.Factorial()
	if err != nil {
		return nil, err
	}
	obs := make([]doe.Observation, 0, len(rows))
	for _, r := range rows {
		obs = append(obs, doe.Observation{
			Levels: map[string]string{
				"network":    r.Network,
				"middleware": r.Middleware,
				"cpus/node":  fmt.Sprintf("%d", r.CPUs),
			},
			Y: r.Total,
		})
	}
	return doe.Analyze(obs)
}

// RenderEffects writes the factor-effect analysis: main effects per level
// and the allocation of variation.
func RenderEffects(w io.Writer, a *doe.Analysis) error {
	fmt.Fprintln(w, "Factorial analysis (Jain) — which platform factor matters?")
	fmt.Fprintf(w, "grand mean of the total energy-calculation time: %.3f s\n\n", a.GrandMean)

	var cells [][]string
	for _, e := range a.Effects {
		cells = append(cells, []string{
			e.Factor, e.Level,
			fmt.Sprintf("%+.3f", e.Effect),
			report.Seconds(e.Mean),
			fmt.Sprintf("%d", e.N),
		})
	}
	if err := report.Table(w, []string{"factor", "level", "effect (s)", "mean (s)", "runs"}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nAllocation of variation:")
	factors := make([]string, 0, len(a.MainSS))
	for f := range a.MainSS {
		factors = append(factors, f)
	}
	sort.Slice(factors, func(i, j int) bool { return a.MainSS[factors[i]] > a.MainSS[factors[j]] })
	cells = cells[:0]
	for _, f := range factors {
		cells = append(cells, []string{
			f,
			report.Pct(100 * a.VariationExplained(f)),
			report.Bar(a.VariationExplained(f), 1, 30),
		})
	}
	var interTotal float64
	for _, in := range a.Interact {
		interTotal += in.SumSquares
	}
	if a.SST > 0 {
		cells = append(cells, []string{"two-factor interactions", report.Pct(100 * interTotal / a.SST), ""})
		cells = append(cells, []string{"residual", report.Pct(100 * a.Residual / a.SST), ""})
	}
	if err := report.Table(w, []string{"source", "variation", ""}, cells); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ndominant factor: %s — the paper's conclusion that the software\n", a.DominantFactor())
	fmt.Fprintln(w, "infrastructure matters more than the raw hardware is this number.")
	return nil
}

// CSVEffects writes the factor effects as CSV.
func CSVEffects(w io.Writer, a *doe.Analysis) error {
	var cells [][]string
	for _, e := range a.Effects {
		cells = append(cells, []string{
			csvName(e.Factor), csvName(e.Level),
			fmt.Sprintf("%.6f", e.Effect), fmt.Sprintf("%.6f", e.Mean), fmt.Sprintf("%d", e.N),
		})
	}
	return report.CSV(w, []string{"factor", "level", "effect_s", "mean_s", "runs"}, cells)
}
