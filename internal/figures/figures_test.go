package figures

import (
	"math"
	"strings"
	"testing"

	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/pmd"
)

// quickSuite shares one reduced suite across the tests in this package —
// the cells are cached, so each configuration runs once.
var quickSuite = NewSuite(quickConfig())

func quickConfig() Config {
	c := Quick()
	c.Procs = []int{1, 2, 4}
	// A short, stable workload keeps the suite fast.
	c.MD = md.PMEDefaultConfig()
	c.MD.Temperature = 100
	return c
}

func TestBreakdownPercent(t *testing.T) {
	b := Breakdown{Comp: 2, Comm: 1, Sync: 1}
	c, m, s := b.Percent()
	if c != 50 || m != 25 || s != 25 {
		t.Fatalf("percent = %v %v %v", c, m, s)
	}
	if z, _, _ := (Breakdown{}).Percent(); z != 0 {
		t.Fatal("zero breakdown should give zero percent")
	}
	if b.Total() != 4 {
		t.Fatalf("total %v", b.Total())
	}
}

func TestFig3ShapeF1(t *testing.T) {
	rows, err := quickSuite.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(quickSuite.Cfg.Procs) {
		t.Fatalf("rows = %d", len(rows))
	}
	seq := rows[0]
	if seq.P != 1 {
		t.Fatal("first row should be sequential")
	}
	// F1: sequentially, PME is slightly less than half the total.
	frac := seq.PME / seq.Total()
	if frac < 0.3 || frac > 0.55 {
		t.Fatalf("sequential PME fraction %.2f out of paper range", frac)
	}
	// F1: PME time at 2 processors exceeds the sequential PME time.
	if rows[1].PME <= seq.PME {
		t.Fatalf("PME(2)=%g not above PME(1)=%g", rows[1].PME, seq.PME)
	}
	// Classic part must parallelize.
	if rows[1].Classic >= seq.Classic {
		t.Fatalf("classic did not speed up: %g vs %g", rows[1].Classic, seq.Classic)
	}
}

func TestFig4ShapeF2(t *testing.T) {
	rows, err := quickSuite.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Sequential: 100% computation.
	cc, cm, cs := rows[0].Classic.Percent()
	if cc < 99.9 || cm > 0.1 || cs > 0.1 {
		t.Fatalf("sequential breakdown not pure compute: %v %v %v", cc, cm, cs)
	}
	// Overheads grow with processor count for both phases.
	overhead := func(b Breakdown) float64 {
		_, m, s := b.Percent()
		return m + s
	}
	last := len(rows) - 1
	if overhead(rows[last].Classic) <= overhead(rows[1].Classic) {
		t.Fatalf("classic overhead not growing: %v then %v", overhead(rows[1].Classic), overhead(rows[last].Classic))
	}
	// PME overhead is the dominant problem (paper: >50% already at 2).
	if overhead(rows[1].PME) < 30 {
		t.Fatalf("PME overhead at p=2 only %.1f%%", overhead(rows[1].PME))
	}
}

func TestFig56ShapeF3(t *testing.T) {
	nets, err := quickSuite.Fig56()
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 3 {
		t.Fatalf("networks = %d", len(nets))
	}
	total := func(n NetworkRows, i int) float64 {
		return n.Rows[i].Classic.Total() + n.Rows[i].PME.Total()
	}
	last := len(nets[0].Rows) - 1
	tcp, score, myri := total(nets[0], last), total(nets[1], last), total(nets[2], last)
	// F3: Myrinet fastest; SCore recovers most of the gap on the same wire.
	if !(myri < score && score < tcp) {
		t.Fatalf("network ordering violated: tcp=%g score=%g myrinet=%g", tcp, score, myri)
	}
	if (tcp - score) < (score - myri) {
		t.Fatalf("SCore did not recover most of Myrinet's benefit: tcp=%g score=%g myri=%g", tcp, score, myri)
	}
}

func TestFig7ShapeF4(t *testing.T) {
	rows, err := quickSuite.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	spread := map[string]float64{}
	avg := map[string]float64{}
	for _, r := range rows {
		if r.P != 4 {
			continue
		}
		spread[r.Network] = (r.MaxMBs - r.MinMBs) / r.MaxMBs
		avg[r.Network] = r.AvgMBs
	}
	// F4: TCP slowest and most variable; Myrinet fastest.
	if !(avg["Myrinet"] > avg["SCore on Ethernet"] && avg["SCore on Ethernet"] > avg["TCP/IP on Ethernet"]) {
		t.Fatalf("speed ordering violated: %v", avg)
	}
	if spread["TCP/IP on Ethernet"] <= spread["SCore on Ethernet"] {
		t.Fatalf("TCP variability %v not above SCore %v", spread["TCP/IP on Ethernet"], spread["SCore on Ethernet"])
	}
}

func TestFig8ShapeF5(t *testing.T) {
	rows, err := quickSuite.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig8Row{}
	for _, r := range rows {
		byKey[r.Middleware+string(rune('0'+r.P))] = r
	}
	last := quickSuite.Cfg.Procs[len(quickSuite.Cfg.Procs)-1]
	lk := string(rune('0' + last))
	mpiT := byKey["MPI"+lk].Classic + byKey["MPI"+lk].PME
	cmpiT := byKey["CMPI"+lk].Classic + byKey["CMPI"+lk].PME
	if cmpiT <= mpiT {
		t.Fatalf("F5 violated: CMPI %g not slower than MPI %g at p=%d", cmpiT, mpiT, last)
	}
	// CMPI books more synchronization than MPI at the largest size.
	if byKey["CMPI"+lk].Total.Sync <= byKey["MPI"+lk].Total.Sync {
		t.Fatal("CMPI sync not dominant")
	}
}

func TestFig9ShapeF6(t *testing.T) {
	rows, err := quickSuite.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]float64{}
	for _, r := range rows {
		total[r.Network+"-"+string(rune('0'+r.CPUs))+"-"+string(rune('0'+r.P))] = r.Classic + r.PME
	}
	last := quickSuite.Cfg.Procs[len(quickSuite.Cfg.Procs)-1]
	lk := string(rune('0' + last))
	// F6: dual-processor hurts on TCP...
	if total["TCP/IP on Ethernet-2-"+lk] <= total["TCP/IP on Ethernet-1-"+lk] {
		t.Fatalf("dual TCP (%g) not slower than uni TCP (%g)", total["TCP/IP on Ethernet-2-"+lk], total["TCP/IP on Ethernet-1-"+lk])
	}
	// ...but not (much) on Myrinet.
	if total["Myrinet-2-"+lk] > total["Myrinet-1-"+lk]*1.25 {
		t.Fatalf("dual Myrinet degraded too much: %g vs %g", total["Myrinet-2-"+lk], total["Myrinet-1-"+lk])
	}
}

func TestFactorialCoversAllCells(t *testing.T) {
	rows, err := quickSuite.Factorial()
	if err != nil {
		t.Fatal(err)
	}
	// 3 networks × 2 middlewares × 2 node types = 12 cells (p divisible by 2).
	if len(rows) != 12 {
		t.Fatalf("factorial cells = %d, want 12", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Network + r.Middleware + string(rune('0'+r.CPUs))
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if r.Total <= 0 || math.IsNaN(r.Total) {
			t.Fatalf("bad total in %+v", r)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(quickConfig())
	a, err := s.Run(netmodel.MyrinetGM(), 2, 1, pmd.MiddlewareMPI)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(netmodel.MyrinetGM(), 2, 1, pmd.MiddlewareMPI)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not return the same result pointer")
	}
	if _, err := s.Run(netmodel.MyrinetGM(), 3, 2, pmd.MiddlewareMPI); err == nil {
		t.Fatal("indivisible processor count accepted")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	f3, err := quickSuite.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	f4, _ := quickSuite.Fig4()
	f56, _ := quickSuite.Fig56()
	f7, _ := quickSuite.Fig7()
	f8, _ := quickSuite.Fig8()
	f9, _ := quickSuite.Fig9()
	fact, _ := quickSuite.Factorial()

	checks := []struct {
		name   string
		render func(w *strings.Builder) error
		want   string
	}{
		{"fig3", func(w *strings.Builder) error { return RenderFig3(w, f3) }, "Figure 3"},
		{"fig4", func(w *strings.Builder) error { return RenderFig4(w, f4) }, "Figure 4"},
		{"fig5", func(w *strings.Builder) error { return RenderFig5(w, f56) }, "Figure 5"},
		{"fig6", func(w *strings.Builder) error { return RenderFig6(w, f56) }, "Figure 6"},
		{"fig7", func(w *strings.Builder) error { return RenderFig7(w, f7) }, "Figure 7"},
		{"fig8", func(w *strings.Builder) error { return RenderFig8(w, f8) }, "Figure 8"},
		{"fig9", func(w *strings.Builder) error { return RenderFig9(w, f9) }, "Figure 9"},
		{"factorial", func(w *strings.Builder) error { return RenderFactorial(w, fact) }, "factorial"},
	}
	for _, c := range checks {
		var b strings.Builder
		if err := c.render(&b); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out := b.String()
		if !strings.Contains(out, c.want) || strings.Count(out, "\n") < 3 {
			t.Fatalf("%s output suspicious:\n%s", c.name, out)
		}
	}
}

func TestSystemMatchesPaperScale(t *testing.T) {
	if n := quickSuite.System().N(); n != 3552 {
		t.Fatalf("workload has %d atoms, want 3552", n)
	}
}

func TestFactorAnalysis(t *testing.T) {
	a, err := quickSuite.FactorAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if a.GrandMean <= 0 {
		t.Fatalf("grand mean %v", a.GrandMean)
	}
	// The paper's conclusion: the communication factors (network and
	// middleware) dominate; the node configuration alone does not.
	if d := a.DominantFactor(); d != "network" && d != "middleware" {
		t.Fatalf("dominant factor %q, expected a communication factor", d)
	}
	var b strings.Builder
	if err := RenderEffects(&b, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Allocation of variation") {
		t.Fatalf("render output:\n%s", b.String())
	}
	var c strings.Builder
	if err := CSVEffects(&c, a); err != nil {
		t.Fatal(err)
	}
	if strings.Count(c.String(), "\n") < 5 {
		t.Fatalf("csv too short:\n%s", c.String())
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := quickSuite.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("variants = %d", len(rows))
	}
	base := rows[0].Total
	both := rows[3].Total
	// Software fixes alone must recover a meaningful fraction of the loss.
	if both >= base {
		t.Fatalf("software fixes did not help: %g vs baseline %g", both, base)
	}
	var b strings.Builder
	if err := RenderAblation(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Ablation") {
		t.Fatal("render output missing header")
	}
	var c strings.Builder
	if err := CSVAblation(&c, rows); err != nil {
		t.Fatal(err)
	}
	if strings.Count(c.String(), "\n") != 5 {
		t.Fatalf("csv rows: %q", c.String())
	}
}
