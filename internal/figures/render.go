package figures

import (
	"fmt"
	"io"

	"repro/internal/report"
)

const barWidth = 30

// RenderFig3 writes the Fig. 3 reproduction as a table plus bars.
func RenderFig3(w io.Writer, rows []Fig3Row) error {
	fmt.Fprintln(w, "Figure 3 — wall clock of the total energy calculation")
	fmt.Fprintln(w, "(reference case: MPI middleware, TCP/IP on Ethernet, uni-processor)")
	var max float64
	for _, r := range rows {
		if t := r.Total(); t > max {
			max = t
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic),
			report.Seconds(r.PME),
			report.Seconds(r.Total()),
			report.Bar(r.Total(), max, barWidth),
		})
	}
	return report.Table(w, []string{"procs", "classic (s)", "pme (s)", "total (s)", ""}, cells)
}

// RenderFig4 writes the Fig. 4a/4b percentage breakdowns.
func RenderFig4(w io.Writer, rows []Fig4Row) error {
	fmt.Fprintln(w, "Figure 4 — percentage of computation (#), communication (=),")
	fmt.Fprintln(w, "synchronization (.) in the classic (a) and PME (b) energy calculation")
	var cells [][]string
	for _, r := range rows {
		cc, cm, cs := r.Classic.Percent()
		pc, pm, ps := r.PME.Percent()
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.P),
			report.StackedBar(cc, cm, cs, barWidth),
			fmt.Sprintf("%s/%s/%s", report.Pct(cc), report.Pct(cm), report.Pct(cs)),
			report.StackedBar(pc, pm, ps, barWidth),
			fmt.Sprintf("%s/%s/%s", report.Pct(pc), report.Pct(pm), report.Pct(ps)),
		})
	}
	return report.Table(w, []string{"procs", "classic", "c/c/s", "pme", "c/c/s"}, cells)
}

// RenderFig5 writes the network-sweep wall times.
func RenderFig5(w io.Writer, nets []NetworkRows) error {
	fmt.Fprintln(w, "Figure 5 — wall clock of the total energy calculation per network")
	var max float64
	for _, n := range nets {
		for _, r := range n.Rows {
			if t := r.Classic.Total() + r.PME.Total(); t > max {
				max = t
			}
		}
	}
	var cells [][]string
	for _, n := range nets {
		for _, r := range n.Rows {
			total := r.Classic.Total() + r.PME.Total()
			cells = append(cells, []string{
				n.Network,
				fmt.Sprintf("%d", r.P),
				report.Seconds(r.Classic.Total()),
				report.Seconds(r.PME.Total()),
				report.Seconds(total),
				report.Bar(total, max, barWidth),
			})
		}
	}
	return report.Table(w, []string{"network", "procs", "classic (s)", "pme (s)", "total (s)", ""}, cells)
}

// RenderFig6 writes the per-network percentage breakdowns.
func RenderFig6(w io.Writer, nets []NetworkRows) error {
	fmt.Fprintln(w, "Figure 6 — percentage breakdown per network: classic (a), PME (b)")
	var cells [][]string
	for _, n := range nets {
		for _, r := range n.Rows {
			cc, cm, cs := r.Classic.Percent()
			pc, pm, ps := r.PME.Percent()
			cells = append(cells, []string{
				n.Network,
				fmt.Sprintf("%d", r.P),
				report.StackedBar(cc, cm, cs, barWidth),
				report.StackedBar(pc, pm, ps, barWidth),
				fmt.Sprintf("%s/%s/%s", report.Pct(pc), report.Pct(pm), report.Pct(ps)),
			})
		}
	}
	return report.Table(w, []string{"network", "procs", "classic", "pme", "pme c/c/s"}, cells)
}

// RenderFig7 writes the communication-speed table with variability bars.
func RenderFig7(w io.Writer, rows []Fig7Row) error {
	fmt.Fprintln(w, "Figure 7 — average and variability of the communication speed per node")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network,
			fmt.Sprintf("%d", r.P),
			fmt.Sprintf("%.1f", r.AvgMBs),
			fmt.Sprintf("%.1f", r.MinMBs),
			fmt.Sprintf("%.1f", r.MaxMBs),
			report.Bar(r.AvgMBs, 140, barWidth),
		})
	}
	return report.Table(w, []string{"network", "procs", "avg MB/s", "min", "max", ""}, cells)
}

// RenderFig8 writes the middleware comparison.
func RenderFig8(w io.Writer, rows []Fig8Row) error {
	fmt.Fprintln(w, "Figure 8 — middleware comparison on TCP/IP (a: wall clock, b: breakdown)")
	var max float64
	for _, r := range rows {
		if t := r.Classic + r.PME; t > max {
			max = t
		}
	}
	var cells [][]string
	for _, r := range rows {
		tc, tm, ts := r.Total.Percent()
		cells = append(cells, []string{
			r.Middleware,
			fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic),
			report.Seconds(r.PME),
			report.Seconds(r.Classic + r.PME),
			report.StackedBar(tc, tm, ts, barWidth),
			fmt.Sprintf("%s/%s/%s", report.Pct(tc), report.Pct(tm), report.Pct(ts)),
		})
	}
	return report.Table(w, []string{"middleware", "procs", "classic (s)", "pme (s)", "total (s)", "breakdown", "c/c/s"}, cells)
}

// RenderFig9 writes the uni/dual-processor comparison.
func RenderFig9(w io.Writer, rows []Fig9Row) error {
	fmt.Fprintln(w, "Figure 9 — uni- vs dual-processor nodes (a: TCP/IP, b: Myrinet)")
	var max float64
	for _, r := range rows {
		if t := r.Classic + r.PME; t > max {
			max = t
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network,
			fmt.Sprintf("%d", r.CPUs),
			fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic),
			report.Seconds(r.PME),
			report.Seconds(r.Classic + r.PME),
			report.Bar(r.Classic+r.PME, max, barWidth),
		})
	}
	return report.Table(w, []string{"network", "cpus/node", "procs", "classic (s)", "pme (s)", "total (s)", ""}, cells)
}

// RenderFactorial writes the 12-cell full factorial table.
func RenderFactorial(w io.Writer, rows []FactorialRow) error {
	fmt.Fprintln(w, "Full factorial design (§3.1) — all factor combinations")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Network,
			r.Middleware,
			fmt.Sprintf("%d", r.CPUs),
			fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic),
			report.Seconds(r.PME),
			report.Seconds(r.Total),
		})
	}
	return report.Table(w, []string{"network", "middleware", "cpus/node", "procs", "classic (s)", "pme (s)", "total (s)"}, cells)
}
