package figures

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/pmd"
)

// CellKeyVersion is the format version embedded in every rendered cell
// key. Bump it whenever the rendering below (or the meaning of any field
// that feeds it) changes, so persisted results keyed under the old scheme
// can never be mistaken for results of the new one.
const CellKeyVersion = 2

// CellKey identifies one fully specified experiment cell: the simulated
// platform, the middleware variant and the measured workload. It is the
// single source of truth for run-result identity — the Suite's in-memory
// run cache and any on-disk content-addressed store (internal/serve) key
// results with the same rendered string, so the two can never disagree
// about which configurations are interchangeable.
//
// Deliberately excluded: host-side knobs that do not alter the simulated
// results (worker-pool size, obs wiring, output format). Figure output is
// bitwise identical across those, which is what makes the key safe to
// share between processes.
type CellKey struct {
	Cluster    cluster.Config     // platform: nodes × CPUs, network, stall seed
	Middleware pmd.MiddlewareKind // MPI or CMPI
	Modern     bool               // post-2004 collective algorithms
	Steps      int                // measured MD steps
	FaultSpec  string             // fault-DSL scenario ("" = healthy)
	Decomp     pmd.DecompKind     // replicated-data or spatial domains
}

// String renders the canonical versioned key.
func (k CellKey) String() string {
	return fmt.Sprintf("cell/v%d %s mw=%v modern=%t steps=%d fault=%q decomp=%v",
		CellKeyVersion, k.Cluster.Key(), k.Middleware, k.Modern, k.Steps, k.FaultSpec, k.Decomp)
}
