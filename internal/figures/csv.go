package figures

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// CSVFig3 writes the Fig. 3 data as CSV.
func CSVFig3(w io.Writer, rows []Fig3Row) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.P), f(r.Classic), f(r.PME), f(r.Total()),
		})
	}
	return report.CSV(w, []string{"procs", "classic_s", "pme_s", "total_s"}, cells)
}

// CSVFig4 writes the Fig. 4 data as CSV (seconds, not percent, so the
// percentages are recomputable).
func CSVFig4(w io.Writer, rows []Fig4Row) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.P),
			f(r.Classic.Comp), f(r.Classic.Comm), f(r.Classic.Sync),
			f(r.PME.Comp), f(r.PME.Comm), f(r.PME.Sync),
		})
	}
	return report.CSV(w, []string{"procs",
		"classic_comp_s", "classic_comm_s", "classic_sync_s",
		"pme_comp_s", "pme_comm_s", "pme_sync_s"}, cells)
}

// CSVFig56 writes the network sweep as CSV (serves both Figs. 5 and 6).
func CSVFig56(w io.Writer, nets []NetworkRows) error {
	var cells [][]string
	for _, n := range nets {
		for _, r := range n.Rows {
			cells = append(cells, []string{
				csvName(n.Network), fmt.Sprintf("%d", r.P),
				f(r.Classic.Comp), f(r.Classic.Comm), f(r.Classic.Sync),
				f(r.PME.Comp), f(r.PME.Comm), f(r.PME.Sync),
			})
		}
	}
	return report.CSV(w, []string{"network", "procs",
		"classic_comp_s", "classic_comm_s", "classic_sync_s",
		"pme_comp_s", "pme_comm_s", "pme_sync_s"}, cells)
}

// CSVFig7 writes the communication-speed samples as CSV.
func CSVFig7(w io.Writer, rows []Fig7Row) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			csvName(r.Network), fmt.Sprintf("%d", r.P),
			f(r.AvgMBs), f(r.MinMBs), f(r.MaxMBs),
		})
	}
	return report.CSV(w, []string{"network", "procs", "avg_mbs", "min_mbs", "max_mbs"}, cells)
}

// CSVFig8 writes the middleware comparison as CSV.
func CSVFig8(w io.Writer, rows []Fig8Row) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Middleware, fmt.Sprintf("%d", r.P),
			f(r.Classic), f(r.PME),
			f(r.Total.Comp), f(r.Total.Comm), f(r.Total.Sync),
		})
	}
	return report.CSV(w, []string{"middleware", "procs", "classic_s", "pme_s",
		"comp_s", "comm_s", "sync_s"}, cells)
}

// CSVFig9 writes the node-configuration comparison as CSV.
func CSVFig9(w io.Writer, rows []Fig9Row) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			csvName(r.Network), fmt.Sprintf("%d", r.CPUs), fmt.Sprintf("%d", r.P),
			f(r.Classic), f(r.PME),
		})
	}
	return report.CSV(w, []string{"network", "cpus_per_node", "procs", "classic_s", "pme_s"}, cells)
}

// CSVFactorial writes the factorial table as CSV.
func CSVFactorial(w io.Writer, rows []FactorialRow) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			csvName(r.Network), r.Middleware,
			fmt.Sprintf("%d", r.CPUs), fmt.Sprintf("%d", r.P),
			f(r.Classic), f(r.PME), f(r.Total),
		})
	}
	return report.CSV(w, []string{"network", "middleware", "cpus_per_node", "procs",
		"classic_s", "pme_s", "total_s"}, cells)
}

func f(v float64) string { return fmt.Sprintf("%.6f", v) }

// csvName strips the spaces so CSV fields stay quote-free.
func csvName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		if r == ',' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}
