package figures

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
)

// recoveryRestartCost is the virtual seconds one crash repair charges for
// detection, respawn and state distribution, shared by both strategies so
// the figure isolates the lost-work mechanics.
const recoveryRestartCost = 5

// recoveryCheckpointEvery is the global-rewind strategy's durable cadence
// (the localized strategy resumes from the last completed step and only
// uses the cadence for durability, which this in-memory study skips).
const recoveryCheckpointEvery = 2

// RecoveryRow is one (network, strategy, ranks, crashes) cell of the
// lost-work study: a domain-decomposition run under injected rank
// crashes, with the Lost accounting bucket split by mechanism.
type RecoveryRow struct {
	Network  string
	Strategy string // "global-rewind" or "localized"
	P        int
	Crashes  int
	Wall     float64 // total virtual wall including repairs
	Lost     float64 // total virtual seconds lost across ranks
	Rewind   float64 // discarded by global rewinds
	Replay   float64 // crashed-domain redo from the buddy micro-checkpoint
	Park     float64 // healthy ranks waiting at the next collective
	Bitwise  bool    // trajectory bitwise-identical to the fault-free run
	Err      string  // non-empty: the strategy cannot finish this cell
}

// RecoveryVerdict is the per-cell comparison the acceptance criterion
// reads: localized must lose strictly less work than the global rewind.
type RecoveryVerdict struct {
	Network    string
	P          int
	Crashes    int
	GlobalLost float64
	LocalLost  float64
	LocalWins  bool
	Bitwise    bool   // the localized run matched the fault-free trajectory
	GlobalErr  string // global rewind could not finish (e.g. survivors cannot re-tile)
}

// RecoveryResult bundles the sweep and the verdicts.
type RecoveryResult struct {
	Rows     []RecoveryRow
	Verdicts []RecoveryVerdict
}

// recoveryScenario spreads k crashes over the fault-free run's stepped
// region, each killing a different deterministic rank. Crash times are
// derived from the healthy run's own step boundaries and land mid-step,
// past the first completed step — step 0 is dominated by one-time setup
// (initial list build), and a crash there degenerates every strategy to
// restart-from-scratch, which is not what the study measures.
func recoveryScenario(healthy *pmd.Result, p, k int) (*fault.Scenario, error) {
	t := healthy.Timings[0]
	steps := len(t)
	bounds := make([]float64, steps+1) // bounds[s] = wall when step s-1 completed
	for s := 0; s < steps; s++ {
		bounds[s+1] = bounds[s] + t[s].Classic.Wall + t[s].PME.Wall
	}
	// Per-step timings exclude one-time setup (topology distribution, the
	// initial list build); anchor the boundaries so the last one lands on
	// the run's actual wall clock.
	setup := healthy.Wall - bounds[steps]
	for s := range bounds {
		bounds[s] += setup
	}
	specs := make([]string, k)
	for i := 0; i < k; i++ {
		s := 1 + i*(steps-1)/k // crash inside step s ∈ [1, steps-1]
		at := (bounds[s] + bounds[s+1]) / 2
		specs[i] = fmt.Sprintf("crash@%g,rank=%d", at, (i*7+1)%p)
	}
	return fault.ParseSpec(strings.Join(specs, ";"))
}

// Recovery runs the lost-work study: crash counts × recovery strategy ×
// domain rank counts on all three networks. Every faulted run is scored
// against the fault-free trajectory (bitwise) and its Lost bucket is
// split into rewind/replay/park, showing where each strategy's time goes
// as the cluster grows.
func (s *Suite) Recovery() (*RecoveryResult, error) {
	procs := s.Cfg.RecoveryProcs
	if len(procs) == 0 {
		procs = []int{16, 64, 256}
	}
	crashes := s.Cfg.RecoveryCrashes
	if len(crashes) == 0 {
		crashes = []int{1, 2}
	}
	out := &RecoveryResult{}
	for _, net := range netmodel.All() {
		for _, p := range procs {
			if err := pmd.ValidateDecomp(pmd.DecompDomain, p, s.Cfg.MD.PME); err != nil {
				return nil, err
			}
			healthy, err := s.RunDecomp(net, p, 1, pmd.MiddlewareMPI, pmd.DecompDomain)
			if err != nil {
				return nil, err
			}
			for _, k := range crashes {
				sc, err := recoveryScenario(healthy, p, k)
				if err != nil {
					return nil, err
				}
				verdict := RecoveryVerdict{Network: net.Name, P: p, Crashes: k}
				for _, strat := range []pmd.RecoveryKind{pmd.RecoveryGlobal, pmd.RecoveryLocal} {
					name := "global-rewind"
					if strat == pmd.RecoveryLocal {
						name = "localized"
					}
					row := RecoveryRow{Network: net.Name, Strategy: name, P: p, Crashes: k}
					res, err := pmd.RunResilient(cluster.Config{
						Nodes: p, CPUsPerNode: 1, Net: net, Seed: s.Cfg.ClusterSeed,
					}, s.Cfg.Cost, pmd.ResilientConfig{
						Config: pmd.Config{
							System: s.sys, MD: s.Cfg.MD, Steps: s.Cfg.Steps,
							Middleware: pmd.MiddlewareMPI, Decomp: pmd.DecompDomain,
							HostWorkers: s.workers(),
						},
						Scenario:        sc,
						CheckpointEvery: recoveryCheckpointEvery,
						RestartCost:     recoveryRestartCost,
						Recovery:        strat,
					})
					if err != nil {
						// A strategy that cannot finish the cell (the global
						// rewind's survivors may no longer tile the PME
						// pencil grid) is itself a result.
						row.Err = err.Error()
						out.Rows = append(out.Rows, row)
						if strat == pmd.RecoveryGlobal {
							verdict.GlobalErr = err.Error()
							verdict.LocalWins = true
						}
						continue
					}
					row.Wall = res.Wall
					row.Lost = res.LostTotal()
					row.Rewind = res.Breakdown.Rewind
					row.Replay = res.Breakdown.Replay
					row.Park = res.Breakdown.Park
					row.Bitwise = sameRun(res, healthy)
					out.Rows = append(out.Rows, row)
					if strat == pmd.RecoveryGlobal {
						verdict.GlobalLost = row.Lost
					} else {
						verdict.LocalLost = row.Lost
						verdict.Bitwise = row.Bitwise
						if verdict.GlobalErr == "" {
							verdict.LocalWins = row.Lost < verdict.GlobalLost
						}
					}
				}
				out.Verdicts = append(out.Verdicts, verdict)
			}
		}
	}
	return out, nil
}

// sameRun reports whether a faulted resilient run reproduced the
// fault-free trajectory bit for bit: every per-step energy report and
// every final coordinate.
func sameRun(res *pmd.ResilientResult, healthy *pmd.Result) bool {
	if len(res.Energies) != len(healthy.Energies) || res.Final == nil {
		return false
	}
	for i := range res.Energies {
		if res.Energies[i] != healthy.Energies[i] {
			return false
		}
	}
	if len(res.Final.FinalPos) != len(healthy.FinalPos) {
		return false
	}
	for i := range healthy.FinalPos {
		if res.Final.FinalPos[i] != healthy.FinalPos[i] {
			return false
		}
	}
	return true
}

// RenderRecovery writes the lost-work study: the sweep table and the
// per-cell verdicts.
func RenderRecovery(w io.Writer, c *RecoveryResult) error {
	fmt.Fprintln(w, "Surviving crashes at scale — global checkpoint rewind vs localized buddy-restore")
	var cells [][]string
	for _, r := range c.Rows {
		if r.Err != "" {
			cells = append(cells, []string{
				r.Network, r.Strategy, fmt.Sprintf("%d", r.P), fmt.Sprintf("%d", r.Crashes),
				"—", "—", "—", "—", "—", "cannot finish",
			})
			continue
		}
		bit := "no"
		if r.Bitwise {
			bit = "yes"
		}
		cells = append(cells, []string{
			r.Network, r.Strategy, fmt.Sprintf("%d", r.P), fmt.Sprintf("%d", r.Crashes),
			report.Seconds(r.Lost), report.Seconds(r.Rewind), report.Seconds(r.Replay),
			report.Seconds(r.Park), bit, "",
		})
	}
	if err := report.Table(w, []string{
		"network", "strategy", "procs", "crashes", "lost", "rewind", "replay", "park", "bitwise", "",
	}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nVerdict (localized lost work vs global rewind, same crashes):")
	cells = cells[:0]
	for _, v := range c.Verdicts {
		global := report.Seconds(v.GlobalLost)
		if v.GlobalErr != "" {
			global = "cannot finish"
		}
		wins := "no"
		if v.LocalWins {
			wins = "yes"
		}
		bit := "no"
		if v.Bitwise {
			bit = "yes"
		}
		cells = append(cells, []string{
			v.Network, fmt.Sprintf("%d", v.P), fmt.Sprintf("%d", v.Crashes),
			global, report.Seconds(v.LocalLost), wins, bit,
		})
	}
	if err := report.Table(w, []string{
		"network", "procs", "crashes", "global lost", "localized lost", "localized wins", "bitwise",
	}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nA global rewind discards every rank's work back to the last full-cluster")
	fmt.Fprintln(w, "checkpoint and re-tiles the domain grid over one fewer node — lost work grows")
	fmt.Fprintln(w, "with cluster size exactly when crashes get more frequent, and the shrunken")
	fmt.Fprintln(w, "grid changes the trajectory. The localized repair restores one domain from")
	fmt.Fprintln(w, "its buddy's micro-checkpoint and replays it on re-sent halo messages while")
	fmt.Fprintln(w, "the healthy ranks park at the next collective: the cluster keeps its size,")
	fmt.Fprintln(w, "the trajectory keeps its bits, and the lost work stays bounded by one")
	fmt.Fprintln(w, "domain's replay plus the park.")
	return nil
}

// CSVRecovery writes the sweep as CSV (infeasible cells carry the error).
func CSVRecovery(w io.Writer, c *RecoveryResult) error {
	var cells [][]string
	for _, r := range c.Rows {
		cells = append(cells, []string{
			csvName(r.Network), r.Strategy, fmt.Sprintf("%d", r.P), fmt.Sprintf("%d", r.Crashes),
			f(r.Wall), f(r.Lost), f(r.Rewind), f(r.Replay), f(r.Park),
			fmt.Sprintf("%v", r.Bitwise), csvName(r.Err),
		})
	}
	return report.CSV(w, []string{
		"network", "strategy", "procs", "crashes", "wall_s", "lost_s",
		"rewind_s", "replay_s", "park_s", "bitwise", "error",
	}, cells)
}
