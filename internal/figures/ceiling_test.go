package figures

import (
	"bytes"
	"strings"
	"testing"
)

func ceilingRows(res *CeilingResult, network, decomp string) map[int]CeilingRow {
	out := map[int]CeilingRow{}
	for _, r := range res.Rows {
		if r.Network == network && r.Decomp == decomp {
			out[r.P] = r
		}
	}
	return out
}

// TestCeilingShape is the tentpole's acceptance claim in miniature: on
// Gigabit TCP the replicated strategy has stopped scaling by 8 ranks
// while the domain strategy at the top of the sweep still beats the best
// replicated total anywhere in it.
func TestCeilingShape(t *testing.T) {
	res, err := quickSuite.Ceiling()
	if err != nil {
		t.Fatal(err)
	}
	procs := quickSuite.Cfg.CeilingProcs
	top := procs[len(procs)-1]

	rep := ceilingRows(res, "TCP/IP on Ethernet", "replicated")
	dom := ceilingRows(res, "TCP/IP on Ethernet", "domain")
	repBest := rep[1].Total()
	for _, r := range rep {
		if r.Err == "" && r.Total() < repBest {
			repBest = r.Total()
		}
	}
	// The plateau: going past 8 ranks buys the replicated path nothing.
	if rep[top].Err == "" && rep[top].Total() < rep[8].Total() {
		t.Fatalf("replicated kept scaling past 8: p=8 %g vs p=%d %g",
			rep[8].Total(), top, rep[top].Total())
	}
	// The win: the domain path at the top of the sweep beats the best the
	// replicated path achieves at any rank count.
	if dom[top].Total() >= repBest {
		t.Fatalf("domain at p=%d (%g) does not beat replicated best (%g)",
			top, dom[top].Total(), repBest)
	}

	for _, x := range res.Crossover {
		if x.Network == "TCP/IP on Ethernet" && x.CrossoverP == 0 {
			t.Fatal("no crossover reported on TCP although the domain path wins")
		}
	}
	if res.Effects == nil || res.Effects.MainSS["decomp"] <= 0 {
		t.Fatal("DOE analysis missing the decomposition factor")
	}
}

// TestCeilingRendersUntileableCells: cells the strategy cannot tile carry
// the typed error instead of silently vanishing from the table.
func TestCeilingRendersUntileableCells(t *testing.T) {
	res := &CeilingResult{
		Rows: []CeilingRow{
			{Network: "TCP/IP on Ethernet", Decomp: "replicated", P: 8, Classic: 1, PME: 2},
			{Network: "TCP/IP on Ethernet", Decomp: "replicated", P: 256,
				Err: "pmd: replicated decomposition cannot tile 256 ranks: slab PME assigns whole x-slabs; ranks must not exceed the K1=80 mesh slabs"},
			{Network: "TCP/IP on Ethernet", Decomp: "domain", P: 256, Classic: 0.1, PME: 0.2},
		},
		Crossover: []CeilingCrossover{{
			Network: "TCP/IP on Ethernet", ReplicatedBest: 3, ReplicatedAtP: 8,
			DomainBest: 0.3, DomainAtP: 256, CrossoverP: 256,
		}},
	}
	a, err := quickSuite.FactorAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	res.Effects = a

	var b strings.Builder
	if err := RenderCeiling(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cannot tile") {
		t.Fatalf("untileable cell not marked:\n%s", out)
	}
	if !strings.Contains(out, "p=256") {
		t.Fatalf("crossover verdict missing:\n%s", out)
	}

	var c strings.Builder
	if err := CSVCeiling(&c, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "K1=80") {
		t.Fatalf("csv lost the tiling error:\n%s", c.String())
	}
}

// TestCeilingOutputIdenticalAcrossWorkers: the rendered ceiling bytes are
// identical between the serial schedule and the host-parallel one — the
// determinism contract extended past 8 ranks.
func TestCeilingOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		cfg := quickConfig()
		cfg.Workers = workers
		cfg.CeilingProcs = []int{1, 16}
		s := NewSuite(cfg)
		res, err := s.Ceiling()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := RenderCeiling(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("ceiling bytes differ between serial and host-parallel schedules")
	}
}
