package figures

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perf"
	"repro/internal/pmd"
	"repro/internal/report"
)

// AttributionRow is one (network, decomposition, processors) cell of the
// bottleneck-attribution study: the paper's Table-style phase breakdown
// re-derived by the profiler, with the columns the paper could not
// compute by hand — wait-at-collective, load imbalance, and the per-phase
// max/mean imbalance ratios. An untileable cell carries the typed tiling
// error, exactly as the ceiling study renders it.
type AttributionRow struct {
	Network string
	Decomp  string
	P       int

	Wall      float64 // virtual wall seconds of the whole run
	Compute   float64 // attribution buckets (sum == Wall)
	Comm      float64
	Wait      float64
	Imbalance float64

	ClassicImb float64 // max/mean per-rank compute, classic phase
	PMEImb     float64 // max/mean per-rank compute, PME phase
	Dominant   string  // bucket naming the cell's bottleneck

	Err string // non-empty: the strategy cannot run this cell
}

// AttributionVerdict is the per-network summary line: the dominant
// bottleneck of each decomposition at the largest rank count it tiles.
type AttributionVerdict struct {
	Network string
	Cells   []string // "replicated @ p=8: comm-bound (62% of wall)"
}

// AttributionResult bundles the sweep and the per-network verdicts.
type AttributionResult struct {
	Rows     []AttributionRow
	Verdicts []AttributionVerdict
}

// Attribution sweeps networks × decompositions × the ceiling rank ladder
// and runs the perf analyzer on every cell: where the ceiling study asks
// *whether* the 8-rank wall moves, this one asks *why* — naming, per
// cell, the bucket (compute, comm, wait, imbalance) that owns the wall
// clock. Profiles are derived from the same cached results the other
// figures use, so the study is byte-identical across host worker counts.
func (s *Suite) Attribution() (*AttributionResult, error) {
	procs := s.Cfg.CeilingProcs
	if len(procs) == 0 {
		procs = []int{1, 8, 16, 64, 256, 1024}
	}
	out := &AttributionResult{}
	for _, net := range netmodel.All() {
		verdict := AttributionVerdict{Network: net.Name}
		for _, decomp := range []pmd.DecompKind{pmd.DecompReplicated, pmd.DecompDomain} {
			var last *AttributionRow
			for _, p := range procs {
				row := AttributionRow{Network: net.Name, Decomp: decomp.String(), P: p}
				if err := pmd.ValidateDecomp(decomp, p, s.Cfg.MD.PME); err != nil {
					row.Err = err.Error()
					out.Rows = append(out.Rows, row)
					continue
				}
				res, err := s.RunDecomp(net, p, 1, pmd.MiddlewareMPI, decomp)
				if err != nil {
					return nil, err
				}
				prof := res.Profile(nil)
				att := prof.Attribution
				row.Wall = att.WallSeconds
				row.Compute, row.Comm = att.ComputeSeconds, att.CommSeconds
				row.Wait, row.Imbalance = att.WaitSeconds, att.ImbalanceSeconds
				row.Dominant = att.Dominant
				for _, ph := range prof.Phases {
					switch ph.Phase {
					case "classic":
						row.ClassicImb = ph.Imbalance
					case "pme":
						row.PMEImb = ph.Imbalance
					}
				}
				out.Rows = append(out.Rows, row)
				last = &out.Rows[len(out.Rows)-1]
			}
			if last != nil {
				share := 0.0
				if last.Wall > 0 {
					share = 100 * bucketValue(last) / last.Wall
				}
				verdict.Cells = append(verdict.Cells, fmt.Sprintf(
					"%s @ p=%d: %s-bound (%.0f%% of wall)",
					last.Decomp, last.P, last.Dominant, share))
			}
		}
		out.Verdicts = append(out.Verdicts, verdict)
	}
	return out, nil
}

// bucketValue returns the seconds of the row's dominant bucket.
func bucketValue(r *AttributionRow) float64 {
	switch r.Dominant {
	case "compute":
		return r.Compute
	case "comm":
		return r.Comm
	case "wait":
		return r.Wait
	case "imbalance":
		return r.Imbalance
	}
	return 0
}

// Profiles returns the full analyzer output per tileable cell, keyed in
// row order — the machine-readable companion charmmbench's -profile-out
// serializes.
func (a *AttributionResult) Profiles(s *Suite) (map[string]*perf.Profile, error) {
	out := map[string]*perf.Profile{}
	for _, r := range a.Rows {
		if r.Err != "" {
			continue
		}
		net, ok := netByName(r.Network)
		if !ok {
			return nil, fmt.Errorf("figures: unknown network %q", r.Network)
		}
		dk, err := pmd.ParseDecomp(r.Decomp)
		if err != nil {
			return nil, err
		}
		res, err := s.RunDecomp(net, r.P, 1, pmd.MiddlewareMPI, dk)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("%s/%s/p=%d", r.Network, r.Decomp, r.P)] = res.Profile(nil)
	}
	return out, nil
}

func netByName(name string) (netmodel.Params, bool) {
	for _, net := range netmodel.All() {
		if net.Name == name {
			return net, true
		}
	}
	return netmodel.Params{}, false
}

// RenderAttribution writes the study: the bucket table with imbalance
// columns, then one verdict line per network naming the dominant
// bottleneck of each decomposition at its largest feasible rank count.
func RenderAttribution(w io.Writer, a *AttributionResult) error {
	fmt.Fprintln(w, "Bottleneck attribution — compute / comm / wait / imbalance buckets (sum = wall)")
	var cells [][]string
	for _, r := range a.Rows {
		if r.Err != "" {
			cells = append(cells, []string{
				r.Network, r.Decomp, fmt.Sprintf("%d", r.P),
				"—", "—", "—", "—", "—", "—", "—", "cannot tile",
			})
			continue
		}
		cells = append(cells, []string{
			r.Network, r.Decomp, fmt.Sprintf("%d", r.P),
			report.Seconds(r.Wall), report.Seconds(r.Compute), report.Seconds(r.Comm),
			report.Seconds(r.Wait), report.Seconds(r.Imbalance),
			fmt.Sprintf("%.2f", r.ClassicImb), fmt.Sprintf("%.2f", r.PMEImb),
			r.Dominant,
		})
	}
	if err := report.Table(w, []string{
		"network", "decomp", "procs", "wall", "compute", "comm", "wait", "imbal",
		"classic max/mean", "pme max/mean", "dominant",
	}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nDominant bottleneck at each strategy's deepest feasible rank count:")
	for _, v := range a.Verdicts {
		line := ""
		for i, c := range v.Cells {
			if i > 0 {
				line += "; "
			}
			line += c
		}
		fmt.Fprintf(w, "verdict: %s — %s\n", v.Network, line)
	}
	fmt.Fprintln(w, "\nReading it: the paper's plateau shows up here as the comm and wait buckets")
	fmt.Fprintln(w, "swallowing the wall under the replicated strategy, while the imbalance")
	fmt.Fprintln(w, "columns show the spatial domains trading a little balance for locality —")
	fmt.Fprintln(w, "the buckets, not the totals, say which lever to pull next.")
	return nil
}

// CSVAttribution writes the sweep as CSV (untileable cells carry the
// error text).
func CSVAttribution(w io.Writer, a *AttributionResult) error {
	var cells [][]string
	for _, r := range a.Rows {
		cells = append(cells, []string{
			csvName(r.Network), r.Decomp, fmt.Sprintf("%d", r.P),
			f(r.Wall), f(r.Compute), f(r.Comm), f(r.Wait), f(r.Imbalance),
			f(r.ClassicImb), f(r.PMEImb), r.Dominant, csvName(r.Err),
		})
	}
	return report.CSV(w, []string{
		"network", "decomp", "procs", "wall_s", "compute_s", "comm_s", "wait_s",
		"imbalance_s", "classic_imbalance", "pme_imbalance", "dominant", "error",
	}, cells)
}
