package figures

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/pmd"
)

func baseCellKey() CellKey {
	return CellKey{
		Cluster:    cluster.Config{Nodes: 4, CPUsPerNode: 1, Net: netmodel.TCPGigE(), Seed: 1},
		Middleware: pmd.MiddlewareMPI,
		Steps:      10,
	}
}

// The rendered key is versioned and stable: a change to this golden value
// must come with a CellKeyVersion bump, or on-disk stores and in-memory
// caches keyed under the old scheme would silently collide with the new.
func TestCellKeyGolden(t *testing.T) {
	got := baseCellKey().String()
	if !strings.HasPrefix(got, "cell/v2 ") {
		t.Fatalf("key %q does not carry the v2 version prefix", got)
	}
	want := "cell/v2 " + baseCellKey().Cluster.Key() + ` mw=MPI modern=false steps=10 fault="" decomp=replicated`
	if got != want {
		t.Fatalf("rendered key drifted:\n got  %q\n want %q\n(bump CellKeyVersion if the change is intentional)", got, want)
	}
}

// Every field of the key must be discriminating: two cells differing in
// any single factor must never share a key (a collision would serve one
// configuration's results for another).
func TestCellKeyDiscriminatesEveryField(t *testing.T) {
	variants := map[string]func(*CellKey){
		"nodes":      func(k *CellKey) { k.Cluster.Nodes = 8 },
		"cpus":       func(k *CellKey) { k.Cluster.CPUsPerNode = 2 },
		"seed":       func(k *CellKey) { k.Cluster.Seed = 2 },
		"network":    func(k *CellKey) { k.Cluster.Net = netmodel.MyrinetGM() },
		"middleware": func(k *CellKey) { k.Middleware = pmd.MiddlewareCMPI },
		"modern":     func(k *CellKey) { k.Modern = true },
		"steps":      func(k *CellKey) { k.Steps = 11 },
		"fault":      func(k *CellKey) { k.FaultSpec = "crash rank 1 at 0.5" },
		"decomp":     func(k *CellKey) { k.Decomp = pmd.DecompDomain },
	}
	base := baseCellKey().String()
	seen := map[string]string{"base": base}
	for name, mutate := range variants {
		k := baseCellKey()
		mutate(&k)
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("variant %q collides with %q: key %q", name, prev, s)
		}
		seen[s] = name
	}
}

// A healthy fault spec and the empty string must not collide with specs
// that merely *render* similarly (quoting protects embedded spaces).
func TestCellKeyQuotesFaultSpec(t *testing.T) {
	a := baseCellKey()
	a.FaultSpec = `x" steps=99 fault="`
	b := baseCellKey()
	b.Steps = 99
	if a.String() == b.String() {
		t.Fatalf("fault spec injection collides: %q", a.String())
	}
}
