// Package figures regenerates every figure of the paper's evaluation
// (Figs. 3–9) plus the full-factorial table of §3.1 from simulated runs of
// the parallel MD workload. A Suite caches run results so figures sharing
// the same configuration (3/4, 5/6/7) reuse one run per cell.
package figures

import (
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/pmd"
	"repro/internal/stats"
	"repro/internal/topol"
)

// Breakdown is a comp/comm/sync time split in seconds.
type Breakdown struct {
	Comp, Comm, Sync float64
}

// Total returns the summed time.
func (b Breakdown) Total() float64 { return b.Comp + b.Comm + b.Sync }

// Percent returns the split in percent of the total (0 for an empty total).
func (b Breakdown) Percent() (comp, comm, sync float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return 100 * b.Comp / t, 100 * b.Comm / t, 100 * b.Sync / t
}

func breakdownOf(s pmd.PhaseSample) Breakdown {
	return Breakdown{Comp: s.Comp, Comm: s.Comm, Sync: s.Sync}
}

// Config parameterizes the reproduction suite.
type Config struct {
	Steps       int               // MD steps per measurement (paper: 10)
	Procs       []int             // processor counts (paper: 1, 2, 4, 8)
	SystemSeed  uint64            // synthetic-structure stream
	ClusterSeed uint64            // network stall stream
	Cost        cluster.CostModel //
	MD          md.Config         // PME MD configuration

	// Workers sizes the host worker pool for compute segments: 0 picks
	// GOMAXPROCS, 1 forces the serial schedule, > 1 overlaps segments of
	// different simulated ranks on that many host goroutines. Figure
	// output is bitwise identical across all settings.
	Workers int

	// FaultSpec, when non-empty, is a fault-DSL scenario injected into
	// every run of the suite (see internal/fault). It is part of the run
	// cache key, so faulted and healthy results never mix.
	FaultSpec string

	// Decomp selects the decomposition the paper figures run under
	// (default: replicated data, the strategy the paper measures). The
	// ceiling study always sweeps both and ignores this knob.
	Decomp pmd.DecompKind

	// CeilingProcs are the processor counts of the ceiling study — the
	// sweep past the paper's 8-rank wall where the replicated/slab
	// strategy stops tiling and the spatial decomposition keeps going.
	CeilingProcs []int

	// RecoveryProcs and RecoveryCrashes shape the lost-work study: domain
	// rank counts × injected crash counts, each run under both the global
	// rewind and the localized buddy-restore strategy.
	RecoveryProcs   []int
	RecoveryCrashes []int

	// Obs, when non-nil, is the registry the suite publishes its cache and
	// tape counters into (repro_figures_*). A nil Obs backs the counters
	// with a private registry; Stats() reads whichever registry is active.
	Obs *obs.Registry
}

// Default returns the paper's measurement protocol.
func Default() Config {
	mdc := md.PMEDefaultConfig()
	mdc.Temperature = 300
	return Config{
		Steps:           10,
		Procs:           []int{1, 2, 4, 8},
		CeilingProcs:    []int{1, 8, 16, 64, 256, 1024},
		RecoveryProcs:   []int{16, 64, 256},
		RecoveryCrashes: []int{1, 2},
		SystemSeed:      1,
		ClusterSeed:     1,
		Cost:            cluster.PentiumIII1GHz(),
		MD:              mdc,
	}
}

// Quick returns a reduced protocol for tests: fewer steps and processor
// counts so the suite runs in seconds.
func Quick() Config {
	c := Default()
	c.Steps = 2
	c.Procs = []int{1, 2, 4}
	c.CeilingProcs = []int{1, 8, 16, 64}
	c.RecoveryProcs = []int{16, 64}
	c.RecoveryCrashes = []int{1}
	return c
}

// RunStats counts the suite's simulation work: how often the run cache
// served a figure from memory and how often the physics tape replaced a
// kernel execution with a counter replay.
type RunStats struct {
	Misses      int // unique configurations actually simulated
	Hits        int // cells served from the run cache
	TapeRecords int // runs that recorded a physics tape
	TapeReplays int // runs that replayed one instead of executing kernels
}

// Suite runs and caches the experiment cells. Two layers of memoization
// back it: a content-keyed run cache (platform × middleware × workload ×
// fault scenario — every unique configuration simulates exactly once per
// Suite lifetime) and, below it, per-rank-count physics tapes that let
// cache *misses* sharing a rank count skip the MD kernels and replay
// recorded work counters through the event simulation.
type Suite struct {
	Cfg    Config
	sys    *topol.System
	cache  map[string]*pmd.Result
	tapes  map[int]*pmd.Tape
	faults cluster.FaultModel

	// Registry-backed run counters (the RunStats view reads these).
	mHits, mMisses, mRecords, mReplays *obs.Counter
}

// NewSuite builds the molecular system once, relaxes the strained built
// geometry (so the measured trajectory is stable), and prepares an empty
// result cache. An invalid FaultSpec panics (it is programmer input; the
// cmd binaries validate user specs before building a suite).
func NewSuite(cfg Config) *Suite {
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: cfg.SystemSeed})
	md.Relax(sys, 80)
	s := &Suite{
		Cfg:   cfg,
		sys:   sys,
		cache: map[string]*pmd.Result{},
		tapes: map[int]*pmd.Tape{},
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.mHits = reg.Counter("repro_figures_cache_hits_total", "experiment cells served from the run cache")
	s.mMisses = reg.Counter("repro_figures_cache_misses_total", "unique experiment configurations simulated")
	s.mRecords = reg.Counter("repro_figures_tape_records_total", "runs that recorded a physics tape")
	s.mReplays = reg.Counter("repro_figures_tape_replays_total", "runs that replayed a tape instead of executing kernels")
	if cfg.FaultSpec != "" {
		sc, err := fault.ParseSpec(cfg.FaultSpec)
		if err != nil {
			panic("figures: bad fault spec: " + err.Error())
		}
		inj, err := fault.NewInjector(sc, fault.Options{})
		if err != nil {
			panic("figures: bad fault scenario: " + err.Error())
		}
		s.faults = inj
	}
	return s
}

// System exposes the workload (3552 atoms in the default configuration).
func (s *Suite) System() *topol.System { return s.sys }

// Stats returns the cache and tape counters accumulated so far — a view
// over the registry-backed counters (shared with Config.Obs when set).
func (s *Suite) Stats() RunStats {
	return RunStats{
		Misses:      int(s.mMisses.Value()),
		Hits:        int(s.mHits.Value()),
		TapeRecords: int(s.mRecords.Value()),
		TapeReplays: int(s.mReplays.Value()),
	}
}

// workers resolves the configured pool size (0 = one worker per host CPU).
func (s *Suite) workers() int {
	if s.Cfg.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Cfg.Workers
}

// runCase simulates one fully specified configuration, memoized on its
// content key.
func (s *Suite) runCase(clusterCfg cluster.Config, mw pmd.MiddlewareKind, modern bool, decomp pmd.DecompKind) (*pmd.Result, error) {
	key := CellKey{
		Cluster: clusterCfg, Middleware: mw, Modern: modern,
		Steps: s.Cfg.Steps, FaultSpec: s.Cfg.FaultSpec, Decomp: decomp,
	}.String()
	if r, ok := s.cache[key]; ok {
		s.mHits.Inc()
		return r, nil
	}
	p := clusterCfg.Nodes * clusterCfg.CPUsPerNode
	// Physics tapes are a replicated-path shortcut: the domain path's
	// per-rank work depends on the spatial grid, not the block partition a
	// tape records, so domain cells always execute their kernels.
	var tape *pmd.Tape
	if decomp == pmd.DecompReplicated {
		tape = s.tapes[p]
		if tape == nil {
			tape = pmd.NewTape()
			s.tapes[p] = tape
		}
	}
	wasComplete := tape.Complete()
	res, err := pmd.Run(clusterCfg, s.Cfg.Cost, pmd.Config{
		System: s.sys, MD: s.Cfg.MD, Steps: s.Cfg.Steps,
		Middleware: mw, ModernCollectives: modern,
		Faults:      s.faults,
		Decomp:      decomp,
		Tape:        tape,
		HostWorkers: s.workers(),
	})
	if err != nil {
		return nil, err
	}
	s.mMisses.Inc()
	switch {
	case tape == nil:
	case wasComplete:
		s.mReplays.Inc()
	case tape.Complete():
		s.mRecords.Inc()
	}
	s.cache[key] = res
	return res, nil
}

// Run returns the (cached) result of one experiment cell under the
// suite's configured decomposition. nodes×cpus ranks run `p = nodes·cpus`
// processors; callers pass total processors and CPUs per node.
func (s *Suite) Run(net netmodel.Params, procs, cpusPerNode int, mw pmd.MiddlewareKind) (*pmd.Result, error) {
	return s.RunDecomp(net, procs, cpusPerNode, mw, s.Cfg.Decomp)
}

// RunDecomp is Run with an explicit decomposition — the ceiling study
// sweeps both strategies from one suite and one cache.
func (s *Suite) RunDecomp(net netmodel.Params, procs, cpusPerNode int, mw pmd.MiddlewareKind, decomp pmd.DecompKind) (*pmd.Result, error) {
	if procs%cpusPerNode != 0 {
		return nil, fmt.Errorf("figures: %d processors not divisible by %d CPUs/node", procs, cpusPerNode)
	}
	return s.runCase(cluster.Config{
		Nodes:       procs / cpusPerNode,
		CPUsPerNode: cpusPerNode,
		Net:         net,
		Seed:        s.Cfg.ClusterSeed,
	}, mw, false, decomp)
}

// ---------------------------------------------------------------------------
// Figure 3: wall clock of the total energy calculation, reference case.

// Fig3Row is one processor count of Fig. 3.
type Fig3Row struct {
	P       int
	Classic float64 // seconds over the measured steps
	PME     float64
}

// Total returns classic+PME.
func (r Fig3Row) Total() float64 { return r.Classic + r.PME }

// Fig3 runs the reference case (TCP/IP, MPI, uni-processor).
func (s *Suite) Fig3() ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, p := range s.Cfg.Procs {
		res, err := s.Run(netmodel.TCPGigE(), p, 1, pmd.MiddlewareMPI)
		if err != nil {
			return nil, err
		}
		c, pm := res.PhaseTotals()
		rows = append(rows, Fig3Row{P: p, Classic: c.Wall, PME: pm.Wall})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 4: percentage breakdown for the reference case.

// Fig4Row is one processor count of Fig. 4a/4b.
type Fig4Row struct {
	P       int
	Classic Breakdown
	PME     Breakdown
}

// Fig4 computes the comp/comm/sync percentages of Fig. 4 (same runs as
// Fig. 3).
func (s *Suite) Fig4() ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, p := range s.Cfg.Procs {
		res, err := s.Run(netmodel.TCPGigE(), p, 1, pmd.MiddlewareMPI)
		if err != nil {
			return nil, err
		}
		c, pm := res.PhaseTotals()
		rows = append(rows, Fig4Row{P: p, Classic: breakdownOf(c), PME: breakdownOf(pm)})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figures 5 and 6: the network sweep.

// NetworkRows bundles one network's sweep.
type NetworkRows struct {
	Network string
	Rows    []Fig4Row // wall times recoverable via Breakdown.Total
}

// Fig56 runs the three networks (TCP/IP, SCore, Myrinet) over the
// processor counts; Fig. 5 uses the wall times, Fig. 6 the percentages.
func (s *Suite) Fig56() ([]NetworkRows, error) {
	var out []NetworkRows
	for _, net := range netmodel.All() {
		e := NetworkRows{Network: net.Name}
		for _, p := range s.Cfg.Procs {
			res, err := s.Run(net, p, 1, pmd.MiddlewareMPI)
			if err != nil {
				return nil, err
			}
			c, pm := res.PhaseTotals()
			e.Rows = append(e.Rows, Fig4Row{P: p, Classic: breakdownOf(c), PME: breakdownOf(pm)})
		}
		out = append(out, e)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7: per-node communication speed, average and variability.

// Fig7Row is one (network, processors) cell.
type Fig7Row struct {
	Network string
	P       int
	AvgMBs  float64
	MinMBs  float64
	MaxMBs  float64
}

// Fig7 samples the per-rank per-step communication speed (bytes sent over
// time spent in data transfer) for p ≥ 2.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	var out []Fig7Row
	for _, net := range netmodel.All() {
		for _, p := range s.Cfg.Procs {
			if p < 2 {
				continue
			}
			res, err := s.Run(net, p, 1, pmd.MiddlewareMPI)
			if err != nil {
				return nil, err
			}
			var speeds []float64
			for _, rankSteps := range res.Timings {
				for _, st := range rankSteps {
					bytes := float64(st.Classic.Bytes + st.PME.Bytes)
					tcomm := st.Classic.Comm + st.PME.Comm
					if tcomm > 0 && bytes > 0 {
						speeds = append(speeds, bytes/tcomm/1e6)
					}
				}
			}
			sum := stats.Summarize(speeds)
			out = append(out, Fig7Row{
				Network: net.Name, P: p,
				AvgMBs: sum.Mean, MinMBs: sum.Min, MaxMBs: sum.Max,
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8: MPI vs CMPI middleware on the reference network.

// Fig8Row is one (middleware, processors) cell: phase wall times plus the
// total-energy breakdown of Fig. 8b.
type Fig8Row struct {
	Middleware string
	P          int
	Classic    float64
	PME        float64
	Total      Breakdown
}

// Fig8 compares the middlewares on TCP/IP, uni-processor nodes.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	var out []Fig8Row
	for _, mw := range []pmd.MiddlewareKind{pmd.MiddlewareMPI, pmd.MiddlewareCMPI} {
		for _, p := range s.Cfg.Procs {
			res, err := s.Run(netmodel.TCPGigE(), p, 1, mw)
			if err != nil {
				return nil, err
			}
			c, pm := res.PhaseTotals()
			total := Breakdown{
				Comp: c.Comp + pm.Comp,
				Comm: c.Comm + pm.Comm,
				Sync: c.Sync + pm.Sync,
			}
			out = append(out, Fig8Row{
				Middleware: mw.String(), P: p,
				Classic: c.Wall, PME: pm.Wall, Total: total,
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9: uni- vs dual-processor nodes on TCP/IP and Myrinet.

// Fig9Row is one (network, CPUs-per-node, processors) cell.
type Fig9Row struct {
	Network string
	CPUs    int
	P       int
	Classic float64
	PME     float64
}

// Fig9 sweeps CPUs per node for TCP/IP (9a) and Myrinet (9b). Dual-node
// cells need an even processor count; p=1 reuses the uni-processor cell,
// as on the real machine (one busy CPU on a dual board).
func (s *Suite) Fig9() ([]Fig9Row, error) {
	var out []Fig9Row
	for _, net := range []netmodel.Params{netmodel.TCPGigE(), netmodel.MyrinetGM()} {
		for _, cpus := range []int{1, 2} {
			for _, p := range s.Cfg.Procs {
				useCPUs := cpus
				if p == 1 {
					useCPUs = 1
				}
				if p%useCPUs != 0 {
					continue
				}
				res, err := s.Run(net, p, useCPUs, pmd.MiddlewareMPI)
				if err != nil {
					return nil, err
				}
				c, pm := res.PhaseTotals()
				out = append(out, Fig9Row{
					Network: net.Name, CPUs: cpus, P: p,
					Classic: c.Wall, PME: pm.Wall,
				})
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// The full factorial design of §3.1 (12 cells at a fixed processor count).

// FactorialRow is one cell of the 3×2×2 design.
type FactorialRow struct {
	Network    string
	Middleware string
	CPUs       int
	P          int
	Classic    float64
	PME        float64
	Total      float64
}

// Factorial runs every factor combination at the largest configured
// processor count.
func (s *Suite) Factorial() ([]FactorialRow, error) {
	p := s.Cfg.Procs[len(s.Cfg.Procs)-1]
	var out []FactorialRow
	for _, net := range netmodel.All() {
		for _, mw := range []pmd.MiddlewareKind{pmd.MiddlewareMPI, pmd.MiddlewareCMPI} {
			for _, cpus := range []int{1, 2} {
				if p%cpus != 0 {
					continue
				}
				res, err := s.Run(net, p, cpus, mw)
				if err != nil {
					return nil, err
				}
				c, pm := res.PhaseTotals()
				out = append(out, FactorialRow{
					Network: net.Name, Middleware: mw.String(), CPUs: cpus, P: p,
					Classic: c.Wall, PME: pm.Wall, Total: c.Wall + pm.Wall,
				})
			}
		}
	}
	return out, nil
}
