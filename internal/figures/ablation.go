package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
)

// AblationRow is one variant of the what-if study.
type AblationRow struct {
	Variant string
	P       int
	Classic float64
	PME     float64
	Total   float64
}

// Ablation runs the design-choice ablations DESIGN.md calls out, all on
// the reference platform at the largest processor count:
//
//   - baseline (MPICH-1 collectives, stock TCP stack);
//   - modern collective algorithms (recursive doubling / ring);
//   - a stall-free TCP stack (flow control fixed, everything else equal);
//   - both fixes together.
//
// It quantifies the paper's closing claim that "optimizing the
// communication code ... will add a significant amount of scalability to
// CHARMM at no extra hardware cost".
func (s *Suite) Ablation() ([]AblationRow, error) {
	p := s.Cfg.Procs[len(s.Cfg.Procs)-1]
	noStall := netmodel.TCPGigE()
	noStall.Name = "TCP/IP (no stalls)"
	noStall.StallProb = 0

	variants := []struct {
		name   string
		net    netmodel.Params
		modern bool
	}{
		{"baseline (MPICH-1, stock TCP)", netmodel.TCPGigE(), false},
		{"modern collectives", netmodel.TCPGigE(), true},
		{"stall-free TCP stack", noStall, false},
		{"both fixes", noStall, true},
	}

	var out []AblationRow
	for _, v := range variants {
		res, err := s.runCase(
			cluster.Config{Nodes: p, CPUsPerNode: 1, Net: v.net, Seed: s.Cfg.ClusterSeed},
			pmd.MiddlewareMPI, v.modern, s.Cfg.Decomp,
		)
		if err != nil {
			return nil, err
		}
		c, pm := res.PhaseTotals()
		out = append(out, AblationRow{
			Variant: v.name, P: p,
			Classic: c.Wall, PME: pm.Wall, Total: c.Wall + pm.Wall,
		})
	}
	return out, nil
}

// RenderAblation writes the ablation table.
func RenderAblation(w io.Writer, rows []AblationRow) error {
	fmt.Fprintln(w, "Ablation — software fixes on the reference platform (§5's claim that")
	fmt.Fprintln(w, "better communication software adds scalability at no hardware cost)")
	var max float64
	for _, r := range rows {
		if r.Total > max {
			max = r.Total
		}
	}
	var cells [][]string
	base := rows[0].Total
	for _, r := range rows {
		cells = append(cells, []string{
			r.Variant,
			fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic),
			report.Seconds(r.PME),
			report.Seconds(r.Total),
			fmt.Sprintf("%.2fx", base/r.Total),
			report.Bar(r.Total, max, 30),
		})
	}
	return report.Table(w, []string{"variant", "procs", "classic (s)", "pme (s)", "total (s)", "vs baseline", ""}, cells)
}

// CSVAblation writes the ablation data as CSV.
func CSVAblation(w io.Writer, rows []AblationRow) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			csvName(r.Variant), fmt.Sprintf("%d", r.P),
			f(r.Classic), f(r.PME), f(r.Total),
		})
	}
	return report.CSV(w, []string{"variant", "procs", "classic_s", "pme_s", "total_s"}, cells)
}
