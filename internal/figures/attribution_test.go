package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestAttributionIdentityOverQuickGrid is the acceptance criterion: in
// every tileable cell of the quick ceiling grid, the attribution buckets
// sum to the measured wall within 1%.
func TestAttributionIdentityOverQuickGrid(t *testing.T) {
	res, err := quickSuite.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, r := range res.Rows {
		if r.Err != "" {
			continue
		}
		cells++
		sum := r.Compute + r.Comm + r.Wait + r.Imbalance
		if r.Wall <= 0 {
			t.Fatalf("%s/%s p=%d: non-positive wall %g", r.Network, r.Decomp, r.P, r.Wall)
		}
		if rel := math.Abs(sum-r.Wall) / r.Wall; rel > 0.01 {
			t.Fatalf("%s/%s p=%d: buckets sum to %g, wall %g (rel %.4f)",
				r.Network, r.Decomp, r.P, sum, r.Wall, rel)
		}
		if r.ClassicImb < 1 || r.PMEImb < 1 {
			t.Fatalf("%s/%s p=%d: imbalance ratio below 1: classic %g pme %g",
				r.Network, r.Decomp, r.P, r.ClassicImb, r.PMEImb)
		}
		if r.Dominant == "" {
			t.Fatalf("%s/%s p=%d: no dominant bucket", r.Network, r.Decomp, r.P)
		}
	}
	if cells == 0 {
		t.Fatal("no tileable cells in the quick grid")
	}
	// One verdict per network, each covering both decompositions.
	if len(res.Verdicts) != 3 {
		t.Fatalf("verdicts: %+v", res.Verdicts)
	}
	for _, v := range res.Verdicts {
		if len(v.Cells) != 2 {
			t.Fatalf("network %s verdict cells: %v", v.Network, v.Cells)
		}
		for _, c := range v.Cells {
			if !strings.Contains(c, "-bound") {
				t.Fatalf("verdict cell does not name a bottleneck: %q", c)
			}
		}
	}
}

// TestAttributionExplainsTheCeiling ties the new figure to the paper's
// conclusion: at the top of the quick sweep the replicated strategy's
// wall is no longer majority-compute — the non-compute buckets (comm +
// wait + imbalance) own more of the step than the physics does on
// Gigabit TCP.
func TestAttributionExplainsTheCeiling(t *testing.T) {
	res, err := quickSuite.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	var top *AttributionRow
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.Network == "TCP/IP on Ethernet" && r.Decomp == "replicated" && r.Err == "" {
			if top == nil || r.P > top.P {
				top = r
			}
		}
	}
	if top == nil {
		t.Fatal("no replicated TCP cells")
	}
	if top.Compute > 0.5*top.Wall {
		t.Fatalf("replicated TCP at p=%d is still compute-bound (%.0f%%) — nothing to attribute",
			top.P, 100*top.Compute/top.Wall)
	}
}

// TestAttributionRendersUntileableCells mirrors the ceiling contract:
// cells the strategy cannot tile carry the error, not silence.
func TestAttributionRendersUntileableCells(t *testing.T) {
	res := &AttributionResult{
		Rows: []AttributionRow{
			{Network: "TCP/IP on Ethernet", Decomp: "replicated", P: 8,
				Wall: 3, Compute: 1, Comm: 1, Wait: 0.5, Imbalance: 0.5,
				ClassicImb: 1.2, PMEImb: 1.1, Dominant: "comm"},
			{Network: "TCP/IP on Ethernet", Decomp: "replicated", P: 256,
				Err: "pmd: replicated decomposition cannot tile 256 ranks"},
		},
		Verdicts: []AttributionVerdict{{
			Network: "TCP/IP on Ethernet",
			Cells:   []string{"replicated @ p=8: comm-bound (33% of wall)"},
		}},
	}
	var b strings.Builder
	if err := RenderAttribution(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cannot tile") {
		t.Fatalf("untileable cell not marked:\n%s", out)
	}
	if !strings.Contains(out, "verdict: TCP/IP on Ethernet — replicated @ p=8: comm-bound") {
		t.Fatalf("verdict line missing:\n%s", out)
	}
	var c strings.Builder
	if err := CSVAttribution(&c, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "cannot_tile_256_ranks") {
		t.Fatalf("csv lost the tiling error:\n%s", c.String())
	}
}

// TestAttributionOutputIdenticalAcrossWorkers: rendered attribution
// bytes are identical between the serial schedule, the host-parallel
// one, and the pooled kernels — the acceptance determinism contract.
func TestAttributionOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers, kernelWorkers int) []byte {
		cfg := quickConfig()
		cfg.Workers = workers
		cfg.MD.KernelWorkers = kernelWorkers
		cfg.CeilingProcs = []int{1, 16}
		s := NewSuite(cfg)
		res, err := s.Attribution()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := RenderAttribution(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := render(1, 0)
	for _, c := range [][2]int{{4, 0}, {1, 2}, {4, 2}} {
		if got := render(c[0], c[1]); !bytes.Equal(got, ref) {
			t.Fatalf("attribution bytes differ at workers=%d kernel-workers=%d", c[0], c[1])
		}
	}
}

// TestAttributionProfilesServeEveryTileableCell: the machine-readable
// profile map matches the row set and every profile passes the identity.
func TestAttributionProfilesServeEveryTileableCell(t *testing.T) {
	res, err := quickSuite.Attribution()
	if err != nil {
		t.Fatal(err)
	}
	profs, err := res.Profiles(quickSuite)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range res.Rows {
		if r.Err == "" {
			want++
		}
	}
	if len(profs) != want {
		t.Fatalf("profiles: %d, tileable rows: %d", len(profs), want)
	}
	for key, p := range profs {
		if p.WallSeconds <= 0 {
			t.Fatalf("%s: empty profile", key)
		}
		if rel := math.Abs(p.Attribution.Sum()-p.WallSeconds) / p.WallSeconds; rel > 0.01 {
			t.Fatalf("%s: identity violated (rel %.4f)", key, rel)
		}
	}
}
