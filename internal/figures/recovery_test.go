package figures

import (
	"strings"
	"testing"
)

// TestRecoveryStudySmall runs the lost-work study at the smallest scale
// where the tentpole claim holds (p=16, one crash) and checks the
// acceptance shape: the localized strategy loses strictly less work than
// the global rewind in every feasible cell, and its trajectory matches
// the fault-free run bitwise. (Below ~16 ranks a global rewind on a fast
// network can be legitimately cheaper — discarding 4 ranks' small window
// costs less than one domain's replay — which is exactly the scale story
// the figure tells.)
func TestRecoveryStudySmall(t *testing.T) {
	cfg := quickConfig()
	cfg.RecoveryProcs = []int{16}
	cfg.RecoveryCrashes = []int{1}
	s := NewSuite(cfg)

	res, err := s.Recovery()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != 3 { // one per network
		t.Fatalf("got %d verdicts, want 3", len(res.Verdicts))
	}
	for _, v := range res.Verdicts {
		if v.GlobalErr != "" {
			t.Errorf("%s p=%d: global rewind unexpectedly infeasible: %s", v.Network, v.P, v.GlobalErr)
			continue
		}
		if !v.LocalWins {
			t.Errorf("%s p=%d: localized lost %.4g, global %.4g — localized must win",
				v.Network, v.P, v.LocalLost, v.GlobalLost)
		}
		if !v.Bitwise {
			t.Errorf("%s p=%d: localized trajectory is not bitwise-identical to the fault-free run",
				v.Network, v.P)
		}
	}
	// Lost-work buckets land on the right strategy: rewind time belongs to
	// the global strategy only, replay time to the localized one only.
	for _, r := range res.Rows {
		switch r.Strategy {
		case "global-rewind":
			if r.Replay != 0 {
				t.Errorf("global row %s p=%d books replay time %g", r.Network, r.P, r.Replay)
			}
		case "localized":
			if r.Rewind != 0 {
				t.Errorf("localized row %s p=%d books rewind time %g", r.Network, r.P, r.Rewind)
			}
		}
	}

	var text, csv strings.Builder
	if err := RenderRecovery(&text, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "localized wins") {
		t.Fatalf("render lost the verdict table:\n%s", text.String())
	}
	if err := CSVRecovery(&csv, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "rewind_s,replay_s,park_s") {
		t.Fatalf("csv lost the breakdown columns:\n%s", csv.String())
	}
}
