package figures

import (
	"bytes"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/pmd"
)

// TestRunStatsCountUniqueConfigs: every unique configuration simulates
// exactly once per suite lifetime; repeats are cache hits, and runs
// sharing a rank count share one physics tape (one recording, the rest
// replays).
func TestRunStatsCountUniqueConfigs(t *testing.T) {
	s := NewSuite(quickConfig())
	cells := []struct {
		net netmodel.Params
		p   int
		mw  pmd.MiddlewareKind
	}{
		{netmodel.MyrinetGM(), 2, pmd.MiddlewareMPI},
		{netmodel.TCPGigE(), 2, pmd.MiddlewareMPI},
		{netmodel.MyrinetGM(), 2, pmd.MiddlewareCMPI},
		{netmodel.MyrinetGM(), 4, pmd.MiddlewareMPI},
	}
	for round := 0; round < 3; round++ {
		for _, c := range cells {
			if _, err := s.Run(c.net, c.p, 1, c.mw); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Misses != len(cells) {
		t.Fatalf("misses = %d, want %d (each unique config simulated once)", st.Misses, len(cells))
	}
	if st.Hits != 2*len(cells) {
		t.Fatalf("hits = %d, want %d", st.Hits, 2*len(cells))
	}
	// Two distinct rank counts → two tapes recorded; the two extra p=2
	// cells replayed the p=2 tape.
	if st.TapeRecords != 2 {
		t.Fatalf("tape records = %d, want 2", st.TapeRecords)
	}
	if st.TapeReplays != 2 {
		t.Fatalf("tape replays = %d, want 2", st.TapeReplays)
	}
}

// TestFaultSpecPartitionsCache: a faulted suite must never serve a healthy
// suite's timing (the spec is part of the content key) and its results
// must differ.
func TestFaultSpecPartitionsCache(t *testing.T) {
	healthy := NewSuite(quickConfig())
	cfg := quickConfig()
	cfg.FaultSpec = "straggler@0:1000,node=0,slow=3"
	faulted := NewSuite(cfg)

	a, err := healthy.Run(netmodel.MyrinetGM(), 2, 1, pmd.MiddlewareMPI)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faulted.Run(netmodel.MyrinetGM(), 2, 1, pmd.MiddlewareMPI)
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall == b.Wall {
		t.Fatal("straggler scenario did not change the simulated wall clock")
	}
}

// TestFigureOutputIdenticalAcrossWorkers: the rendered figure bytes —
// the user-visible artifact — are identical between the serial schedule
// and the host-parallel one.
func TestFigureOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		cfg := quickConfig()
		cfg.Workers = workers
		s := NewSuite(cfg)
		rows, err := s.Fig3()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := RenderFig3(&buf, rows); err != nil {
			t.Fatal(err)
		}
		rows8, err := s.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		if err := RenderFig8(&buf, rows8); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("figure bytes differ between serial and host-parallel schedules")
	}
}
