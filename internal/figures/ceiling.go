package figures

import (
	"fmt"
	"io"

	"repro/internal/doe"
	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
)

// CeilingRow is one (network, decomposition, processors) cell of the
// ceiling study: the sweep past the paper's 8-rank wall. A cell the
// decomposition cannot tile carries the typed error text instead of
// timings — the replicated/slab strategy simply has no configuration
// there, which is the point of the figure.
type CeilingRow struct {
	Network string
	Decomp  string
	P       int
	Classic float64 // seconds over the measured steps
	PME     float64
	Err     string // non-empty: the strategy cannot run this cell
}

// Total returns classic+PME (0 for an untileable cell).
func (r CeilingRow) Total() float64 { return r.Classic + r.PME }

// CeilingCrossover is the per-network verdict: where (and whether) the
// spatial decomposition beats the best the replicated strategy can do at
// any rank count.
type CeilingCrossover struct {
	Network        string
	ReplicatedBest float64 // best replicated total over the sweep (s)
	ReplicatedAtP  int     // rank count achieving it
	CrossoverP     int     // smallest p where domain < replicated best; 0 = never
	DomainBest     float64 // best domain total over the sweep (s)
	DomainAtP      int
}

// CeilingResult bundles the sweep, the per-network crossover verdicts and
// the extended factorial analysis (network × decomposition × processors,
// over the cells both strategies can run).
type CeilingResult struct {
	Rows      []CeilingRow
	Crossover []CeilingCrossover
	Effects   *doe.Analysis
}

// Ceiling sweeps both decompositions out to the configured CeilingProcs
// (default 1, 8, 16, 64, 256, 1024) on all three networks with the MPI
// middleware, and answers the question the paper left open: is the 8-rank
// plateau a property of CHARMM-style MD, or of the replicated-data
// strategy? Untileable replicated cells render their tiling error; the
// DOE analysis runs over the processor counts where both strategies have
// results, so the decomposition factor is not confounded with coverage.
func (s *Suite) Ceiling() (*CeilingResult, error) {
	procs := s.Cfg.CeilingProcs
	if len(procs) == 0 {
		procs = []int{1, 8, 16, 64, 256, 1024}
	}
	out := &CeilingResult{}
	var obs []doe.Observation
	bothTile := func(p int) bool {
		return pmd.ValidateDecomp(pmd.DecompReplicated, p, s.Cfg.MD.PME) == nil &&
			pmd.ValidateDecomp(pmd.DecompDomain, p, s.Cfg.MD.PME) == nil
	}
	for _, net := range netmodel.All() {
		cross := CeilingCrossover{Network: net.Name}
		for _, decomp := range []pmd.DecompKind{pmd.DecompReplicated, pmd.DecompDomain} {
			for _, p := range procs {
				row := CeilingRow{Network: net.Name, Decomp: decomp.String(), P: p}
				if err := pmd.ValidateDecomp(decomp, p, s.Cfg.MD.PME); err != nil {
					row.Err = err.Error()
					out.Rows = append(out.Rows, row)
					continue
				}
				res, err := s.RunDecomp(net, p, 1, pmd.MiddlewareMPI, decomp)
				if err != nil {
					return nil, err
				}
				c, pm := res.PhaseTotals()
				row.Classic, row.PME = c.Wall, pm.Wall
				out.Rows = append(out.Rows, row)
				switch decomp {
				case pmd.DecompReplicated:
					if cross.ReplicatedAtP == 0 || row.Total() < cross.ReplicatedBest {
						cross.ReplicatedBest, cross.ReplicatedAtP = row.Total(), p
					}
				case pmd.DecompDomain:
					if cross.DomainAtP == 0 || row.Total() < cross.DomainBest {
						cross.DomainBest, cross.DomainAtP = row.Total(), p
					}
				}
				if bothTile(p) {
					obs = append(obs, doe.Observation{
						Levels: map[string]string{
							"network": net.Name,
							"decomp":  decomp.String(),
							"procs":   fmt.Sprintf("%d", p),
						},
						Y: row.Total(),
					})
				}
			}
		}
		// Crossover: smallest domain rank count that beats the best the
		// replicated strategy achieves anywhere in the sweep.
		for _, r := range out.Rows {
			if r.Network == net.Name && r.Decomp == pmd.DecompDomain.String() &&
				r.Err == "" && cross.ReplicatedAtP > 0 && r.Total() < cross.ReplicatedBest {
				cross.CrossoverP = r.P
				break
			}
		}
		out.Crossover = append(out.Crossover, cross)
	}
	a, err := doe.Analyze(obs)
	if err != nil {
		return nil, err
	}
	out.Effects = a
	return out, nil
}

// RenderCeiling writes the ceiling study: the sweep table, the crossover
// verdicts and the extended factor analysis.
func RenderCeiling(w io.Writer, c *CeilingResult) error {
	fmt.Fprintln(w, "Breaking the 8-rank ceiling — replicated/slab vs spatial domains + 2-D pencil PME")
	var cells [][]string
	for _, r := range c.Rows {
		if r.Err != "" {
			cells = append(cells, []string{
				r.Network, r.Decomp, fmt.Sprintf("%d", r.P), "—", "—", "—", "cannot tile",
			})
			continue
		}
		cells = append(cells, []string{
			r.Network, r.Decomp, fmt.Sprintf("%d", r.P),
			report.Seconds(r.Classic), report.Seconds(r.PME), report.Seconds(r.Total()), "",
		})
	}
	if err := report.Table(w, []string{"network", "decomp", "procs", "classic", "pme", "total", ""}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nCrossover (domain total vs the best replicated total at any rank count):")
	cells = cells[:0]
	for _, x := range c.Crossover {
		verdict := "never"
		if x.CrossoverP > 0 {
			verdict = fmt.Sprintf("p=%d", x.CrossoverP)
		}
		cells = append(cells, []string{
			x.Network,
			fmt.Sprintf("%s @ p=%d", report.Seconds(x.ReplicatedBest), x.ReplicatedAtP),
			fmt.Sprintf("%s @ p=%d", report.Seconds(x.DomainBest), x.DomainAtP),
			verdict,
		})
	}
	if err := report.Table(w, []string{"network", "replicated best", "domain best", "domain wins from"}, cells); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nExtended factorial (network × decomposition × processors, shared cells):")
	if err := RenderEffects(w, c.Effects); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe paper's answer to \"is there any easy parallelism in CHARMM?\" was no —")
	fmt.Fprintln(w, "but the wall it measured belongs to the replicated-data strategy, whose")
	fmt.Fprintln(w, "all-to-all force reduction and slab PME stop paying (and then stop tiling)")
	fmt.Fprintln(w, "past a handful of ranks. Owner-computes domains with halo exchange and a")
	fmt.Fprintln(w, "2-D pencil transpose keep both phases decomposable to O(1000) ranks.")
	return nil
}

// CSVCeiling writes the sweep as CSV (untileable cells carry the error).
func CSVCeiling(w io.Writer, c *CeilingResult) error {
	var cells [][]string
	for _, r := range c.Rows {
		cells = append(cells, []string{
			csvName(r.Network), r.Decomp, fmt.Sprintf("%d", r.P),
			f(r.Classic), f(r.PME), f(r.Total()), csvName(r.Err),
		})
	}
	return report.CSV(w, []string{"network", "decomp", "procs", "classic_s", "pme_s", "total_s", "error"}, cells)
}
