package figures

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/pmd"
	"repro/internal/report"
)

// ScaleLimitRow is one (network, processors) cell of the §5 extrapolation.
type ScaleLimitRow struct {
	Network           string
	P                 int
	ClassicSpeedup    float64
	PMESpeedup        float64
	TotalSpeedup      float64
	ParallelEfficient bool // total efficiency ≥ 50 %
}

// ScaleLimit extends the processor sweep to 16 and 32 ranks and reports
// per-phase speedups — the paper's closing claim is that the classic
// calculation has enough parallelism for 32–64 processor clusters while
// PME stops paying at about a quarter of that unless the interconnect is
// a low-overhead SAN.
func (s *Suite) ScaleLimit() ([]ScaleLimitRow, error) {
	procs := []int{1, 2, 4, 8, 16, 32}
	var out []ScaleLimitRow
	for _, net := range netmodel.All() {
		var cSeq, pSeq float64
		for _, p := range procs {
			res, err := s.Run(net, p, 1, pmd.MiddlewareMPI)
			if err != nil {
				return nil, err
			}
			c, pm := res.PhaseTotals()
			if p == 1 {
				cSeq, pSeq = c.Wall, pm.Wall
			}
			total := c.Wall + pm.Wall
			row := ScaleLimitRow{
				Network:        net.Name,
				P:              p,
				ClassicSpeedup: cSeq / c.Wall,
				PMESpeedup:     pSeq / pm.Wall,
				TotalSpeedup:   (cSeq + pSeq) / total,
			}
			row.ParallelEfficient = row.TotalSpeedup/float64(p) >= 0.5
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderScaleLimit writes the scalability-limit table.
func RenderScaleLimit(w io.Writer, rows []ScaleLimitRow) error {
	fmt.Fprintln(w, "Scalability limit (§5) — per-phase speedups out to 32 processors")
	var cells [][]string
	for _, r := range rows {
		mark := ""
		if r.ParallelEfficient {
			mark = "≥50% efficient"
		}
		cells = append(cells, []string{
			r.Network,
			fmt.Sprintf("%d", r.P),
			fmt.Sprintf("%.2f", r.ClassicSpeedup),
			fmt.Sprintf("%.2f", r.PMESpeedup),
			fmt.Sprintf("%.2f", r.TotalSpeedup),
			mark,
		})
	}
	if err := report.Table(w, []string{"network", "procs", "classic speedup", "pme speedup", "total speedup", ""}, cells); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe paper's conclusion reads off the table: the classic part keeps")
	fmt.Fprintln(w, "scaling on the better networks, PME saturates much earlier, and on")
	fmt.Fprintln(w, "plain TCP/IP there is no configuration where PME parallelism pays.")
	return nil
}

// CSVScaleLimit writes the data as CSV.
func CSVScaleLimit(w io.Writer, rows []ScaleLimitRow) error {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			csvName(r.Network), fmt.Sprintf("%d", r.P),
			f(r.ClassicSpeedup), f(r.PMESpeedup), f(r.TotalSpeedup),
		})
	}
	return report.CSV(w, []string{"network", "procs", "classic_speedup", "pme_speedup", "total_speedup"}, cells)
}
