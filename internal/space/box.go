// Package space provides periodic-boundary geometry and spatial search
// structures (cell lists) for the MD engine.
//
// The simulation cell is orthorhombic, matching the paper's myoglobin setup
// whose PME charge mesh is 80×36×48 (≈1 Å grid spacing).
package space

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Box is an orthorhombic periodic cell with edge lengths L.X, L.Y, L.Z
// centred so that fractional coordinates lie in [0, L).
type Box struct {
	L vec.V
}

// NewBox returns an orthorhombic box with the given edge lengths. All edges
// must be positive.
func NewBox(lx, ly, lz float64) Box {
	if lx <= 0 || ly <= 0 || lz <= 0 {
		panic(fmt.Sprintf("space: non-positive box edges (%g, %g, %g)", lx, ly, lz))
	}
	return Box{L: vec.New(lx, ly, lz)}
}

// Volume returns the box volume in Å³.
func (b Box) Volume() float64 { return b.L.X * b.L.Y * b.L.Z }

// Wrap maps p into the primary cell [0, L)³.
func (b Box) Wrap(p vec.V) vec.V {
	return vec.New(wrap1(p.X, b.L.X), wrap1(p.Y, b.L.Y), wrap1(p.Z, b.L.Z))
}

func wrap1(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// MinImage returns the minimum-image displacement a − b: the shortest
// vector from b to a under periodic boundary conditions.
func (b Box) MinImage(a, p vec.V) vec.V {
	d := a.Sub(p)
	return vec.New(mi1(d.X, b.L.X), mi1(d.Y, b.L.Y), mi1(d.Z, b.L.Z))
}

func mi1(d, l float64) float64 {
	return d - l*math.Round(d/l)
}

// Dist returns the minimum-image distance between a and b.
func (b Box) Dist(a, p vec.V) float64 { return b.MinImage(a, p).Norm() }

// Dist2 returns the squared minimum-image distance between a and b.
func (b Box) Dist2(a, p vec.V) float64 { return b.MinImage(a, p).Norm2() }

// MaxCutoff returns the largest interaction cutoff for which the minimum
// image convention is valid in this box (half the shortest edge).
func (b Box) MaxCutoff() float64 {
	return 0.5 * math.Min(b.L.X, math.Min(b.L.Y, b.L.Z))
}

// Frac returns the fractional coordinates of p in [0, 1)³.
func (b Box) Frac(p vec.V) vec.V {
	w := b.Wrap(p)
	return vec.New(w.X/b.L.X, w.Y/b.L.Y, w.Z/b.L.Z)
}
