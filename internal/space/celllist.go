package space

import (
	"fmt"

	"repro/internal/vec"
)

// Pair is an unordered atom pair (I < J).
type Pair struct {
	I, J int32
}

// CellList bins positions into a regular grid of cells whose edge is at
// least the search cutoff, so that all pairs within the cutoff are found by
// scanning each cell against itself and its 26 (half, by symmetry) periodic
// neighbours.
type CellList struct {
	box        Box
	cutoff     float64
	nx, ny, nz int
	cells      [][]int32 // atom indices per cell
	// Per-cell structure-of-arrays coordinate copies, parallel to cells:
	// the pair scan streams these contiguous batches instead of gathering
	// vec.V positions through the index indirection. Values are the exact
	// binned positions, so distances are bitwise identical to box.Dist2.
	cx, cy, cz [][]float64
	cellOf     []int32 // cell index per atom
	seen       []int32 // visited-cell stamps, reused across Pairs calls
	stamp      int32
}

// NewCellList builds a cell list for the given positions. cutoff must be
// positive and no larger than box.MaxCutoff(). The list's storage is
// reusable: Rebuild rebins new positions without reallocating.
func NewCellList(box Box, cutoff float64, pos []vec.V) *CellList {
	if cutoff <= 0 {
		panic("space: non-positive cutoff")
	}
	if cutoff > box.MaxCutoff() {
		panic(fmt.Sprintf("space: cutoff %g exceeds minimum-image limit %g", cutoff, box.MaxCutoff()))
	}
	cl := &CellList{box: box, cutoff: cutoff}
	// Cells at least `cutoff` wide; at least 1 per dimension. With fewer
	// than 3 cells along a dimension the neighbour stencil would visit a
	// cell twice through periodic wrapping, so the pair scan deduplicates
	// via a visited-cell check instead of relying on geometry alone.
	cl.nx = maxInt(1, int(box.L.X/cutoff))
	cl.ny = maxInt(1, int(box.L.Y/cutoff))
	cl.nz = maxInt(1, int(box.L.Z/cutoff))
	cl.cells = make([][]int32, cl.nx*cl.ny*cl.nz)
	cl.cx = make([][]float64, len(cl.cells))
	cl.cy = make([][]float64, len(cl.cells))
	cl.cz = make([][]float64, len(cl.cells))
	cl.cellOf = make([]int32, len(pos))
	cl.seen = make([]int32, len(cl.cells))
	cl.bin(pos)
	return cl
}

// Rebuild rebins positions into the existing grid, reusing all per-cell
// storage (no steady-state allocation once the cell occupancies have
// reached their high-water marks).
func (cl *CellList) Rebuild(pos []vec.V) {
	for c := range cl.cells {
		cl.cells[c] = cl.cells[c][:0]
		cl.cx[c] = cl.cx[c][:0]
		cl.cy[c] = cl.cy[c][:0]
		cl.cz[c] = cl.cz[c][:0]
	}
	if cap(cl.cellOf) < len(pos) {
		cl.cellOf = make([]int32, len(pos))
	}
	cl.cellOf = cl.cellOf[:len(pos)]
	cl.bin(pos)
}

func (cl *CellList) bin(pos []vec.V) {
	for i, p := range pos {
		c := cl.cellIndex(p)
		cl.cellOf[i] = int32(c)
		cl.cells[c] = append(cl.cells[c], int32(i))
		cl.cx[c] = append(cl.cx[c], p.X)
		cl.cy[c] = append(cl.cy[c], p.Y)
		cl.cz[c] = append(cl.cz[c], p.Z)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (cl *CellList) cellIndex(p vec.V) int {
	f := cl.box.Frac(p)
	ix := int(f.X * float64(cl.nx))
	iy := int(f.Y * float64(cl.ny))
	iz := int(f.Z * float64(cl.nz))
	// Guard against f == 1-ulp rounding up to the cell count.
	if ix == cl.nx {
		ix--
	}
	if iy == cl.ny {
		iy--
	}
	if iz == cl.nz {
		iz--
	}
	return (ix*cl.ny+iy)*cl.nz + iz
}

// NumCells returns the total number of cells.
func (cl *CellList) NumCells() int { return len(cl.cells) }

// Pairs returns all unordered pairs (i<j) whose minimum-image distance is
// at most the cutoff. The work counter, if non-nil, is incremented by the
// number of distance evaluations performed (the quantity the performance
// model charges for neighbour-list construction).
func (cl *CellList) Pairs(pos []vec.V, distEvals *int64) []Pair {
	return cl.PairsAppend(pos, nil, distEvals)
}

// PairsAppend is Pairs appending into dst (reset to dst[:0]), so steady-
// state callers can reuse one pair buffer across rebuilds. Distances come
// from the coordinates binned at construction/Rebuild time (pos must be
// the same array, and is retained in the signature for that contract).
func (cl *CellList) PairsAppend(pos []vec.V, dst []Pair, distEvals *int64) []Pair {
	pairs := dst[:0]
	cut2 := cl.cutoff * cl.cutoff
	lx, ly, lz := cl.box.L.X, cl.box.L.Y, cl.box.L.Z
	var evals int64
	seen := cl.seen // visited marker per home cell, 1-based stamps
	stamp := cl.stamp
	for cx := 0; cx < cl.nx; cx++ {
		for cy := 0; cy < cl.ny; cy++ {
			for cz := 0; cz < cl.nz; cz++ {
				home := (cx*cl.ny+cy)*cl.nz + cz
				own := cl.cells[home]
				ox, oy, oz := cl.cx[home], cl.cy[home], cl.cz[home]
				// Pairs within the home cell, batched over the cell's SoA
				// coordinates (identical distances and pair order as the
				// position-array walk: same mi1 per axis, same sum).
				for a := 0; a < len(own); a++ {
					ax, ay, az := ox[a], oy[a], oz[a]
					for b := a + 1; b < len(own); b++ {
						evals++
						dx := mi1(ax-ox[b], lx)
						dy := mi1(ay-oy[b], ly)
						dz := mi1(az-oz[b], lz)
						if dx*dx+dy*dy+dz*dz <= cut2 {
							pairs = appendOrdered(pairs, own[a], own[b])
						}
					}
				}
				// Pairs against each neighbour cell, visiting each
				// unordered cell pair once.
				stamp++
				seen[home] = stamp
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							nx := mod(cx+dx, cl.nx)
							ny := mod(cy+dy, cl.ny)
							nz := mod(cz+dz, cl.nz)
							nb := (nx*cl.ny+ny)*cl.nz + nz
							if nb <= home || seen[nb] == stamp {
								// Either handled when nb was the home cell,
								// or already scanned this round (possible
								// when a dimension has <3 cells and wrapping
								// aliases two stencil offsets to one cell).
								continue
							}
							seen[nb] = stamp
							other := cl.cells[nb]
							bx, by, bz := cl.cx[nb], cl.cy[nb], cl.cz[nb]
							for a, i := range own {
								ax, ay, az := ox[a], oy[a], oz[a]
								for b, j := range other {
									evals++
									ddx := mi1(ax-bx[b], lx)
									ddy := mi1(ay-by[b], ly)
									ddz := mi1(az-bz[b], lz)
									if ddx*ddx+ddy*ddy+ddz*ddz <= cut2 {
										pairs = appendOrdered(pairs, i, j)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	cl.stamp = stamp
	if distEvals != nil {
		*distEvals += evals
	}
	return pairs
}

func appendOrdered(pairs []Pair, i, j int32) []Pair {
	if i > j {
		i, j = j, i
	}
	return append(pairs, Pair{i, j})
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// BruteForcePairs returns all pairs within cutoff by the O(N²) method.
// It exists as the ground truth for testing cell lists.
func BruteForcePairs(box Box, cutoff float64, pos []vec.V) []Pair {
	var pairs []Pair
	cut2 := cutoff * cutoff
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if box.Dist2(pos[i], pos[j]) <= cut2 {
				pairs = append(pairs, Pair{int32(i), int32(j)})
			}
		}
	}
	return pairs
}
