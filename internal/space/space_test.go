package space

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func TestWrap(t *testing.T) {
	b := NewBox(10, 20, 30)
	cases := []struct{ in, want vec.V }{
		{vec.New(5, 5, 5), vec.New(5, 5, 5)},
		{vec.New(-1, 21, 31), vec.New(9, 1, 1)},
		{vec.New(10, 20, 30), vec.New(0, 0, 0)},
		{vec.New(-10.5, 0, 0), vec.New(9.5, 0, 0)},
	}
	for _, c := range cases {
		got := b.Wrap(c.in)
		if vec.Dist(got, c.want) > 1e-12 {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapInRangeProperty(t *testing.T) {
	b := NewBox(7.3, 11.1, 5.5)
	f := func(x, y, z float64) bool {
		p := vec.New(math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6))
		w := b.Wrap(p)
		return w.X >= 0 && w.X < b.L.X && w.Y >= 0 && w.Y < b.L.Y && w.Z >= 0 && w.Z < b.L.Z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinImage(t *testing.T) {
	b := NewBox(10, 10, 10)
	// Points near opposite faces are close through the boundary.
	a := vec.New(0.5, 5, 5)
	p := vec.New(9.5, 5, 5)
	if d := b.Dist(a, p); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Dist across boundary = %v, want 1", d)
	}
	d := b.MinImage(a, p)
	if math.Abs(d.X-1) > 1e-12 || d.Y != 0 || d.Z != 0 {
		t.Fatalf("MinImage = %v, want (1,0,0)", d)
	}
}

func TestMinImageSymmetry(t *testing.T) {
	b := NewBox(8, 9, 10)
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := vec.New(math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100))
		p := vec.New(math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100))
		d1 := b.MinImage(a, p)
		d2 := b.MinImage(p, a)
		// Antisymmetric, and no component exceeds half the box.
		if vec.Dist(d1, d2.Neg()) > 1e-9 {
			return false
		}
		return math.Abs(d1.X) <= b.L.X/2+1e-9 &&
			math.Abs(d1.Y) <= b.L.Y/2+1e-9 &&
			math.Abs(d1.Z) <= b.L.Z/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinImageInvariantUnderWrapping(t *testing.T) {
	b := NewBox(12, 15, 9)
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		a := vec.New(r.Range(-50, 50), r.Range(-50, 50), r.Range(-50, 50))
		p := vec.New(r.Range(-50, 50), r.Range(-50, 50), r.Range(-50, 50))
		shift := vec.New(b.L.X*float64(r.Intn(7)-3), b.L.Y*float64(r.Intn(7)-3), b.L.Z*float64(r.Intn(7)-3))
		if math.Abs(b.Dist(a, p)-b.Dist(a.Add(shift), p)) > 1e-9 {
			t.Fatalf("distance changed under lattice shift")
		}
	}
}

func TestVolumeAndMaxCutoff(t *testing.T) {
	b := NewBox(80, 36, 48)
	if got := b.Volume(); math.Abs(got-80*36*48) > 1e-9 {
		t.Fatalf("Volume = %v", got)
	}
	if got := b.MaxCutoff(); got != 18 {
		t.Fatalf("MaxCutoff = %v, want 18", got)
	}
}

func TestFrac(t *testing.T) {
	b := NewBox(4, 8, 16)
	f := b.Frac(vec.New(1, 2, 4))
	if vec.Dist(f, vec.New(0.25, 0.25, 0.25)) > 1e-12 {
		t.Fatalf("Frac = %v", f)
	}
	f = b.Frac(vec.New(-1, 10, 16))
	if vec.Dist(f, vec.New(0.75, 0.25, 0)) > 1e-12 {
		t.Fatalf("Frac wrapped = %v", f)
	}
}

func TestNewBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBox with zero edge did not panic")
		}
	}()
	NewBox(0, 1, 1)
}

func canonPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

func samePairs(a, b []Pair) bool {
	a, b = canonPairs(a), canonPairs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPositions(r *rng.Source, n int, b Box) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(r.Range(0, b.L.X), r.Range(0, b.L.Y), r.Range(0, b.L.Z))
	}
	return pos
}

func TestCellListMatchesBruteForce(t *testing.T) {
	r := rng.New(42)
	boxes := []Box{
		NewBox(20, 20, 20),
		NewBox(80, 36, 48),
		NewBox(10.5, 30, 14),
	}
	for _, b := range boxes {
		for _, n := range []int{0, 1, 2, 50, 300} {
			pos := randomPositions(r, n, b)
			cutoff := math.Min(5.0, b.MaxCutoff())
			cl := NewCellList(b, cutoff, pos)
			var evals int64
			got := cl.Pairs(pos, &evals)
			want := BruteForcePairs(b, cutoff, pos)
			if !samePairs(got, want) {
				t.Fatalf("box %v n=%d: cell list %d pairs, brute force %d", b.L, n, len(got), len(want))
			}
			if n >= 50 && evals == 0 {
				t.Fatal("no distance evaluations recorded")
			}
		}
	}
}

func TestCellListSmallBoxAliasing(t *testing.T) {
	// Cutoff large enough that only 2 cells fit per dimension: wrapping
	// aliases stencil offsets, which the visited-cell stamps must absorb
	// without duplicating pairs.
	b := NewBox(10, 10, 10)
	r := rng.New(7)
	pos := randomPositions(r, 120, b)
	cl := NewCellList(b, 4.9, pos)
	got := cl.Pairs(pos, nil)
	want := BruteForcePairs(b, 4.9, pos)
	if !samePairs(got, want) {
		t.Fatalf("aliased cell list: %d pairs vs brute force %d", len(got), len(want))
	}
	// No duplicates.
	set := map[Pair]bool{}
	for _, p := range got {
		if set[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		set[p] = true
	}
}

func TestCellListPairOrdering(t *testing.T) {
	b := NewBox(30, 30, 30)
	r := rng.New(3)
	pos := randomPositions(r, 100, b)
	cl := NewCellList(b, 6, pos)
	for _, p := range cl.Pairs(pos, nil) {
		if p.I >= p.J {
			t.Fatalf("pair not ordered: %v", p)
		}
	}
}

func TestCellListCutoffValidation(t *testing.T) {
	b := NewBox(10, 10, 10)
	for _, bad := range []float64{0, -1, 5.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cutoff %v did not panic", bad)
				}
			}()
			NewCellList(b, bad, nil)
		}()
	}
}

func TestCellListDenseCluster(t *testing.T) {
	// All atoms in one corner: stresses the single-cell path.
	b := NewBox(40, 40, 40)
	r := rng.New(9)
	pos := make([]vec.V, 60)
	for i := range pos {
		pos[i] = vec.New(r.Range(0, 2), r.Range(0, 2), r.Range(0, 2))
	}
	cl := NewCellList(b, 8, pos)
	got := cl.Pairs(pos, nil)
	want := BruteForcePairs(b, 8, pos)
	if !samePairs(got, want) {
		t.Fatalf("dense cluster mismatch: %d vs %d", len(got), len(want))
	}
	if len(got) != 60*59/2 {
		t.Fatalf("expected all pairs within cutoff, got %d", len(got))
	}
}
