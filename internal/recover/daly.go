package recover

import "math"

// MTTFEstimator maintains an online mean-time-to-failure estimate over
// observed crash events: cumulative virtual wall divided by the number
// of failures. With zero failures there is no estimate.
type MTTFEstimator struct {
	failures int
	elapsed  float64
}

// Observe advances the cumulative virtual wall the estimator has
// witnessed. Wall clocks only move forward; a smaller value is ignored.
func (e *MTTFEstimator) Observe(wall float64) {
	if wall > e.elapsed {
		e.elapsed = wall
	}
}

// Fail records one crash at the given cumulative wall.
func (e *MTTFEstimator) Fail(wall float64) {
	e.Observe(wall)
	e.failures++
}

// Failures returns the number of crashes observed.
func (e *MTTFEstimator) Failures() int { return e.failures }

// Estimate returns the current MTTF in virtual seconds; ok is false
// until at least one failure has been observed.
func (e *MTTFEstimator) Estimate() (mttf float64, ok bool) {
	if e.failures == 0 || e.elapsed <= 0 {
		return 0, false
	}
	return e.elapsed / float64(e.failures), true
}

// YoungDaly returns the Young/Daly first-order optimal checkpoint
// interval τ = sqrt(2·C·M) for checkpoint cost C and MTTF M, in the
// same time unit as its inputs.
func YoungDaly(ckptCost, mttf float64) float64 {
	if ckptCost <= 0 || mttf <= 0 {
		return 0
	}
	return math.Sqrt(2 * ckptCost * mttf)
}

// Tuner converts the Young/Daly interval into a durable-checkpoint
// cadence in MD steps. Until the first observed failure it passes the
// configured fixed cadence through untouched; after that it re-derives
// the cadence from the running MTTF estimate and the measured virtual
// cost per step.
type Tuner struct {
	Fixed    int     // configured cadence, the zero-failure fallback
	CkptCost float64 // virtual seconds per durable checkpoint
	MaxSteps int     // cadence ceiling (the run length)

	est      MTTFEstimator
	stepCost float64 // virtual seconds per completed MD step, measured
}

// Progress feeds the tuner the run's cumulative wall and completed step
// count, refreshing the per-step cost estimate.
func (t *Tuner) Progress(wall float64, steps int) {
	t.est.Observe(wall)
	if steps > 0 && wall > 0 {
		t.stepCost = wall / float64(steps)
	}
}

// Fail records one crash at the given cumulative wall.
func (t *Tuner) Fail(wall float64) { t.est.Fail(wall) }

// Estimate exposes the underlying MTTF estimate.
func (t *Tuner) Estimate() (mttf float64, ok bool) { return t.est.Estimate() }

// Tuned reports whether the tuner has ever had grounds to deviate from
// the fixed cadence.
func (t *Tuner) Tuned() bool {
	_, ok := t.est.Estimate()
	return ok && t.CkptCost > 0 && t.stepCost > 0
}

// Interval returns the cadence in steps: the fixed fallback until the
// first failure, then round(τ_opt / stepCost) clamped to [1, MaxSteps].
func (t *Tuner) Interval() (steps int, tuned bool) {
	mttf, ok := t.est.Estimate()
	if !ok || t.CkptCost <= 0 || t.stepCost <= 0 {
		return t.Fixed, false
	}
	opt := YoungDaly(t.CkptCost, mttf)
	n := int(math.Round(opt / t.stepCost))
	if n < 1 {
		n = 1
	}
	if t.MaxSteps > 0 && n > t.MaxSteps {
		n = t.MaxSteps
	}
	return n, true
}
