// Package recover models localized crash recovery for the spatial domain
// decomposition: per-rank in-memory micro-checkpoints mirrored to a
// deterministic buddy rank at every neighbour-list rebuild epoch, plus a
// bounded per-epoch log of the halo messages healthy neighbours re-send
// while a respawned rank replays its domain forward. The package holds
// the bookkeeping and the cost/accounting model; the resilient driver in
// internal/pmd owns the actual restart machinery.
//
// It also hosts the failure-rate-aware checkpoint interval tuner (see
// daly.go): an online MTTF estimate over observed crash events feeding
// the Young/Daly optimal-interval formula.
package recover

// bytesPerCoord mirrors the transport layer's wire size of one vec.V
// (position or velocity).
const bytesPerCoord = 24

// Buddy returns the deterministic mirror rank of domain d on a
// dx×dy×dz domain grid: the next domain along the first subdivided axis
// ring. A buddy is always a distinct, usually halo-adjacent domain (the
// micro-checkpoint transfer rides the existing neighbour links); only a
// 1×1×1 grid maps a domain onto itself.
func Buddy(d, dx, dy, dz int) int {
	ix, iy, iz := d/(dy*dz), (d/dz)%dy, d%dz
	switch {
	case dx > 1:
		ix = (ix + 1) % dx
	case dy > 1:
		iy = (iy + 1) % dy
	case dz > 1:
		iz = (iz + 1) % dz
	}
	return (ix*dy+iy)*dz + iz
}

// MicroCheckpoint is one rank's in-memory snapshot at a rebuild epoch:
// its owned atoms (position + velocity) and the epoch's list origin,
// mirrored to the buddy rank.
type MicroCheckpoint struct {
	Step  int   // local step the epoch began at (-1: attempt start)
	Bytes int64 // mirrored payload (owned atoms × pos+vel)
}

// epochRec is the bookkeeping of one rebuild epoch: every rank's
// micro-checkpoint plus the per-step halo traffic healthy neighbours
// keep for re-sending during a replay.
type epochRec struct {
	step  int     // rebuild step (-1 for the attempt-start epoch)
	micro []int64 // per-rank micro-checkpoint bytes
	halo  []struct {
		step  int
		bytes []int64 // per-rank halo bytes shipped this step
	}
}

// logDepth bounds the in-memory retention: the current epoch plus the
// previous one. Ranks are never more than one step apart (every step
// ends in a collective), so the newest globally completed step is always
// covered by one of the two retained epochs — older message logs and
// micro-checkpoints are garbage the moment the next epoch begins.
const logDepth = 2

// Log is the attempt-wide micro-checkpoint store and halo message log.
// It is bookkeeping over sizes, not payloads: the resilient driver
// restores real state from its per-step history, the Log prices what the
// buddy transfer and the neighbour re-sends would move.
type Log struct {
	p          int
	dx, dy, dz int
	epochs     []epochRec // at most logDepth, oldest first
}

// NewLog sizes a log for p domain ranks on a dx×dy×dz grid.
func NewLog(p, dx, dy, dz int) *Log {
	return &Log{p: p, dx: dx, dy: dy, dz: dz}
}

// Buddy returns rank's mirror under the log's grid.
func (l *Log) Buddy(rank int) int { return Buddy(rank, l.dx, l.dy, l.dz) }

// BeginEpoch records a rebuild at the given local step (-1 for the
// attempt start): every rank takes a micro-checkpoint of its owned atoms
// and mirrors it to its buddy. Epochs older than the previous one are
// dropped — that is the boundedness contract.
func (l *Log) BeginEpoch(step int, owned []int) {
	e := epochRec{step: step, micro: make([]int64, l.p)}
	for r := 0; r < l.p; r++ {
		e.micro[r] = 2 * bytesPerCoord * int64(owned[r])
	}
	l.epochs = append(l.epochs, e)
	if len(l.epochs) > logDepth {
		l.epochs = l.epochs[len(l.epochs)-logDepth:]
	}
}

// LogStep appends one step's halo traffic (each domain ships its owned
// atoms out and receives the partial forces back) to the current epoch's
// message log.
func (l *Log) LogStep(step int, owned []int) {
	if len(l.epochs) == 0 {
		return
	}
	e := &l.epochs[len(l.epochs)-1]
	b := make([]int64, l.p)
	for r := 0; r < l.p; r++ {
		b[r] = 2 * bytesPerCoord * int64(owned[r])
	}
	e.halo = append(e.halo, struct {
		step  int
		bytes []int64
	}{step: step, bytes: b})
}

// Restore finds the newest micro-checkpoint of rank taken at or before
// maxStep — the restore point of a localized recovery. ok is false when
// even the attempt-start epoch is newer than maxStep (no step completed).
func (l *Log) Restore(rank, maxStep int) (MicroCheckpoint, bool) {
	for i := len(l.epochs) - 1; i >= 0; i-- {
		if l.epochs[i].step <= maxStep {
			return MicroCheckpoint{Step: l.epochs[i].step, Bytes: l.epochs[i].micro[rank]}, true
		}
	}
	return MicroCheckpoint{}, false
}

// Resent sums the halo bytes the given neighbour ranks re-send from the
// message log for a replay of the steps in (from, to].
func (l *Log) Resent(neighbours []int, from, to int) int64 {
	var total int64
	for _, e := range l.epochs {
		for _, s := range e.halo {
			if s.step <= from || s.step > to {
				continue
			}
			for _, nb := range neighbours {
				total += s.bytes[nb]
			}
		}
	}
	return total
}

// Event records one localized recovery: the crashed rank's domain was
// restored from its buddy's micro-checkpoint and replayed forward while
// the healthy ranks parked at their next collective.
type Event struct {
	Rank        int // crashed rank (respawned in place, numbering unchanged)
	Buddy       int // rank whose mirrored micro-checkpoint restored the domain
	EpochStep   int // global step index of the restored epoch boundary
	ResumeStep  int // global step the whole cluster resumed from
	ReplaySteps int // steps the respawned rank replayed from the message log

	RestoredBytes int64 // buddy → respawn micro-checkpoint transfer
	ResentBytes   int64 // halo messages neighbours re-sent during the replay

	Detect  float64 // virtual seconds until the watchdog typed the crash
	Restore float64 // respawn + buddy-restore cost
	Replay  float64 // virtual seconds the respawned rank re-executed
	Park    float64 // total healthy-rank park time at the next collective
}

// LostBreakdown splits the Lost accounting bucket by recovery mechanism:
// Rewind is work discarded by a global rewind to the last full-cluster
// checkpoint, Replay is the crashed domain's redo from its buddy
// micro-checkpoint, Park is healthy ranks waiting at the next collective
// for a localized repair to finish.
type LostBreakdown struct {
	Rewind float64
	Replay float64
	Park   float64
}

// Total sums the three components.
func (b LostBreakdown) Total() float64 { return b.Rewind + b.Replay + b.Park }

// Add accumulates o into b.
func (b *LostBreakdown) Add(o LostBreakdown) {
	b.Rewind += o.Rewind
	b.Replay += o.Replay
	b.Park += o.Park
}
