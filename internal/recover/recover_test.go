package recover

import "testing"

func TestBuddyDistinctAndPermutation(t *testing.T) {
	grids := [][3]int{{2, 2, 2}, {4, 2, 2}, {1, 2, 2}, {1, 1, 4}, {4, 4, 4}, {1, 2, 1}}
	for _, g := range grids {
		dx, dy, dz := g[0], g[1], g[2]
		p := dx * dy * dz
		seen := make(map[int]bool)
		for d := 0; d < p; d++ {
			b := Buddy(d, dx, dy, dz)
			if b < 0 || b >= p {
				t.Fatalf("grid %v: Buddy(%d) = %d out of range", g, d, b)
			}
			if b == d {
				t.Errorf("grid %v: Buddy(%d) is itself", g, d)
			}
			if seen[b] {
				t.Errorf("grid %v: buddy %d mirrored twice", g, b)
			}
			seen[b] = true
		}
	}
	if b := Buddy(0, 1, 1, 1); b != 0 {
		t.Errorf("1×1×1 grid: Buddy(0) = %d, want self", b)
	}
}

func TestLogBoundedDepth(t *testing.T) {
	l := NewLog(2, 2, 1, 1)
	owned := []int{10, 20}
	l.BeginEpoch(-1, owned)
	for step := 0; step < 9; step++ {
		if step > 0 && step%3 == 0 {
			l.BeginEpoch(step, owned)
		}
		l.LogStep(step, owned)
	}
	if got := len(l.epochs); got != logDepth {
		t.Fatalf("log kept %d epochs, want %d", got, logDepth)
	}
	// The surviving epochs must be the two newest (steps 3 and 6).
	if l.epochs[0].step != 3 || l.epochs[1].step != 6 {
		t.Fatalf("surviving epochs start at %d,%d; want 3,6", l.epochs[0].step, l.epochs[1].step)
	}
}

func TestLogRestorePicksNewestCoveredEpoch(t *testing.T) {
	l := NewLog(2, 2, 1, 1)
	l.BeginEpoch(-1, []int{5, 7})
	l.LogStep(0, []int{5, 7})
	l.BeginEpoch(1, []int{6, 6})
	l.LogStep(1, []int{6, 6})

	// maxStep 0: the rebuild at step 1 has not globally completed — the
	// mid-migration window. Restore must fall back to the older epoch.
	mc, ok := l.Restore(1, 0)
	if !ok || mc.Step != -1 {
		t.Fatalf("Restore(1, 0) = %+v ok=%v, want the attempt-start epoch", mc, ok)
	}
	if want := int64(2 * bytesPerCoord * 7); mc.Bytes != want {
		t.Errorf("restored bytes = %d, want %d", mc.Bytes, want)
	}

	// maxStep 1: the rebuild epoch is covered and preferred.
	mc, ok = l.Restore(1, 1)
	if !ok || mc.Step != 1 {
		t.Fatalf("Restore(1, 1) = %+v ok=%v, want epoch step 1", mc, ok)
	}
}

func TestLogResentSumsNeighbourHalo(t *testing.T) {
	l := NewLog(3, 3, 1, 1)
	owned := []int{1, 2, 3}
	l.BeginEpoch(-1, owned)
	for step := 0; step < 4; step++ {
		l.LogStep(step, owned)
	}
	// Replay steps (0, 2]: steps 1 and 2, neighbours 0 and 2.
	got := l.Resent([]int{0, 2}, 0, 2)
	want := int64(2 * 2 * bytesPerCoord * (1 + 3))
	if got != want {
		t.Fatalf("Resent = %d, want %d", got, want)
	}
	if l.Resent(nil, 0, 2) != 0 {
		t.Error("Resent with no neighbours should be zero")
	}
}

func TestLostBreakdown(t *testing.T) {
	var b LostBreakdown
	b.Add(LostBreakdown{Rewind: 1, Replay: 2, Park: 3})
	b.Add(LostBreakdown{Park: 4})
	if b.Total() != 10 {
		t.Fatalf("Total = %v, want 10", b.Total())
	}
	if b.Rewind != 1 || b.Replay != 2 || b.Park != 7 {
		t.Fatalf("breakdown = %+v", b)
	}
}
