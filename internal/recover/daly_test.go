package recover

import (
	"math"
	"testing"
)

func TestMTTFEstimator(t *testing.T) {
	var e MTTFEstimator
	if _, ok := e.Estimate(); ok {
		t.Fatal("estimate with zero failures should not be ok")
	}
	e.Observe(100)
	if _, ok := e.Estimate(); ok {
		t.Fatal("progress without failures should not yield an estimate")
	}
	e.Fail(200)
	e.Fail(600)
	mttf, ok := e.Estimate()
	if !ok || mttf != 300 {
		t.Fatalf("Estimate = %v ok=%v, want 300", mttf, ok)
	}
	// Wall clocks only move forward.
	e.Observe(10)
	if mttf, _ := e.Estimate(); mttf != 300 {
		t.Fatalf("backwards Observe changed the estimate to %v", mttf)
	}
}

func TestYoungDaly(t *testing.T) {
	if got, want := YoungDaly(2, 100), math.Sqrt(400); got != want {
		t.Fatalf("YoungDaly(2,100) = %v, want %v", got, want)
	}
	if YoungDaly(0, 100) != 0 || YoungDaly(2, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestTunerFixedFallback(t *testing.T) {
	tu := &Tuner{Fixed: 4, CkptCost: 1, MaxSteps: 100}
	tu.Progress(50, 10)
	steps, tuned := tu.Interval()
	if steps != 4 || tuned {
		t.Fatalf("zero-failure Interval = (%d, %v), want (4, false)", steps, tuned)
	}
	if tu.Tuned() {
		t.Fatal("Tuned should be false before any failure")
	}
}

func TestTunerYoungDalyCadence(t *testing.T) {
	tu := &Tuner{Fixed: 4, CkptCost: 2, MaxSteps: 1000}
	tu.Progress(100, 20) // stepCost = 5
	tu.Fail(100)         // MTTF = 100
	steps, tuned := tu.Interval()
	want := int(math.Round(math.Sqrt(2*2*100) / 5)) // = round(20/5) = 4
	if !tuned || steps != want {
		t.Fatalf("Interval = (%d, %v), want (%d, true)", steps, tuned, want)
	}
	if !tu.Tuned() {
		t.Fatal("Tuned should be true after a failure with cost data")
	}

	// More failures shrink MTTF and the cadence with it, floored at 1.
	for i := 0; i < 200; i++ {
		tu.Fail(100)
	}
	steps, _ = tu.Interval()
	if steps < 1 {
		t.Fatalf("cadence fell below 1: %d", steps)
	}

	// A huge MTTF is clamped to the run length.
	tu2 := &Tuner{Fixed: 4, CkptCost: 1e6, MaxSteps: 8}
	tu2.Progress(10, 10)
	tu2.Fail(10)
	steps, tuned = tu2.Interval()
	if !tuned || steps != 8 {
		t.Fatalf("clamped Interval = (%d, %v), want (8, true)", steps, tuned)
	}
}
