package mpi

// Modern collective algorithms (Thakur/Rabenseifner era, post-2004) used by
// the ablation study: they answer "how much of the paper's scalability
// problem was the MPICH-1 algorithms rather than the network?".

const tagModern = collTagBase + 4096

// AllreduceRecursiveDoubling performs the full-vector recursive-doubling
// allreduce: ⌈log2 p⌉ bidirectional exchanges of the whole payload, with a
// pre/post fold for non-power-of-two sizes.
func (r *Rank) AllreduceRecursiveDoubling(bytes int, reduceOp float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2

	// Fold the remainder: ranks ≥ pow2 send their contribution to their
	// partner below and drop out of the core exchange.
	if r.ID >= pow2 {
		r.Send(r.ID-pow2, tagModern, bytes)
	} else if r.ID < rem {
		r.Recv(r.ID+pow2, tagModern)
		if reduceOp > 0 {
			r.Compute(reduceOp)
		}
	}

	if r.ID < pow2 {
		for mask := 1; mask < pow2; mask <<= 1 {
			partner := r.ID ^ mask
			r.Sendrecv(partner, tagModern+mask, bytes, partner, tagModern+mask)
			if reduceOp > 0 {
				r.Compute(reduceOp)
			}
		}
	}

	// Unfold: partners return the final vector.
	if r.ID >= pow2 {
		r.Recv(r.ID-pow2, tagModern+1<<20)
	} else if r.ID < rem {
		r.Send(r.ID+pow2, tagModern+1<<20, bytes)
	}
}

// AllgathervRing circulates the blocks around the rank ring (p−1 rounds),
// the bandwidth-optimal large-message allgather.
func (r *Rank) AllgathervRing(blockBytes []int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if len(blockBytes) != p {
		panic("mpi: AllgathervRing needs one block size per rank")
	}
	left := (r.ID - 1 + p) % p
	right := (r.ID + 1) % p
	for round := 0; round < p-1; round++ {
		sendBlock := blockBytes[(r.ID-round+p)%p]
		sreq := r.Isend(right, tagModern+2048+round, sendBlock)
		r.Recv(left, tagModern+2048+round)
		r.Wait(sreq)
	}
}
