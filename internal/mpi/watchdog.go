package mpi

import (
	"errors"
	"fmt"
)

// ErrTimeout matches (via errors.Is) every watchdog expiry surfaced by Run.
var ErrTimeout = errors.New("mpi: watchdog timeout")

// ErrCrashed matches (via errors.Is) every injected rank crash surfaced by
// Run.
var ErrCrashed = errors.New("mpi: rank crashed")

// TimeoutError reports a blocking operation whose watchdog gave up: the
// offending rank, the partner it was waiting on, and the virtual times
// involved. Run returns it when a rank aborts this way.
type TimeoutError struct {
	Rank    int     // the rank that gave up waiting
	Partner int     // the rank it was waiting on (-1 if not applicable)
	Op      string  // the blocked operation ("recv-match", "send-rendezvous", ...)
	At      float64 // virtual time the watchdog gave up
	Since   float64 // virtual time the wait began
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: watchdog timeout: rank %d blocked in %s on rank %d since t=%.6f, gave up at t=%.6f",
		e.Rank, e.Op, e.Partner, e.Since, e.At)
}

// Is reports ErrTimeout so callers can errors.Is-match without the fields.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// CrashError reports an injected rank crash: the rank and the virtual time
// the crash took effect (the rank's next scheduling point at or after the
// scheduled crash time).
type CrashError struct {
	Rank int
	At   float64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpi: rank %d crashed at t=%.6f", e.Rank, e.At)
}

// Is reports ErrCrashed so callers can errors.Is-match without the fields.
func (e *CrashError) Is(target error) bool { return target == ErrCrashed }

// Watchdog bounds every blocking wait in the MPI layer with a virtual-time
// timeout and a retry budget. The zero value disables it, restoring the
// MPICH-era behaviour where a lost partner hangs the job until the sim
// deadlock detector fires.
type Watchdog struct {
	Timeout float64 // seconds of virtual time per wait round; <= 0 disables
	Retries int     // additional rounds granted after the first expiry
	Backoff float64 // timeout multiplier applied per round (< 1 treated as 1)
}

// Enabled reports whether the watchdog bounds waits.
func (w Watchdog) Enabled() bool { return w.Timeout > 0 }

// DefaultWatchdog is a generous default for fault scenarios: patient
// enough for severe stragglers, bounded enough that a crashed partner is
// detected in a few hundred virtual seconds.
func DefaultWatchdog() Watchdog {
	return Watchdog{Timeout: 30, Retries: 2, Backoff: 2}
}

// wdState tracks one logical blocking wait across its park rounds.
type wdState struct {
	tries int
	wait  float64
	t0    float64
}

// guardedPark parks the rank once within a wait loop. With the watchdog
// disabled it parks unconditionally; enabled, the park is bounded and the
// retry budget is consumed by expiries. It returns false when the budget
// is spent — the caller aborts (panic with a *TimeoutError, converted to
// a typed error by Run) or, for helper processes that must not unwind,
// abandons the operation quietly.
func (r *Rank) guardedPark(s *wdState) bool {
	wd := r.W.Wd
	if !wd.Enabled() {
		r.P.Park()
		return true
	}
	if s.wait == 0 {
		s.wait = wd.Timeout
		s.t0 = r.Now()
	}
	if r.P.ParkTimeout(s.wait) {
		return true // woken by progress (or an unrelated deposit)
	}
	s.tries++
	if s.tries > wd.Retries {
		return false
	}
	if wd.Backoff > 1 {
		s.wait *= wd.Backoff
	}
	return true
}

// timeout builds the typed abort error for an exhausted wait.
func (s *wdState) timeout(r *Rank, op string, partner int) *TimeoutError {
	return &TimeoutError{Rank: r.ID, Partner: partner, Op: op, At: r.Now(), Since: s.t0}
}

// checkCrash aborts the rank with a *CrashError once an injected crash has
// taken effect. The panic unwinds the rank's function and is converted to
// a typed error by Run; other ranks notice the loss through their
// watchdogs.
func (r *Rank) checkCrash() {
	if r.crashed {
		panic(&CrashError{Rank: r.ID, At: r.Now()})
	}
}
