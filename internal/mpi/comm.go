// Package mpi implements a simulated MPI subset on top of the
// discrete-event cluster model: blocking and non-blocking point-to-point
// messages (eager and rendezvous protocols, NIC occupancy, interrupt-CPU
// serialization, TCP stall injection) and the MPICH-1-era collective
// algorithms the paper's CHARMM runs used (binomial broadcast/reduce,
// reduce+bcast allreduce, linear gather, pairwise all-to-all, dissemination
// barrier).
//
// Every rank accounts its virtual time into the paper's three buckets:
// computation, communication (data transfer) and synchronization (control
// transfer / waiting for partners) — the decomposition of §3.2.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/work"
)

// Accounting is the per-rank time and volume bookkeeping.
type Accounting struct {
	Comp float64 // seconds spent computing
	Comm float64 // seconds in data transfer
	Sync float64 // seconds waiting for partners / control transfer

	BytesSent int64
	BytesRecv int64
}

// Total returns Comp+Comm+Sync.
func (a Accounting) Total() float64 { return a.Comp + a.Comm + a.Sync }

// Sub returns a − b field-wise (for per-phase deltas).
func (a Accounting) Sub(b Accounting) Accounting {
	return Accounting{
		Comp:      a.Comp - b.Comp,
		Comm:      a.Comm - b.Comm,
		Sync:      a.Sync - b.Sync,
		BytesSent: a.BytesSent - b.BytesSent,
		BytesRecv: a.BytesRecv - b.BytesRecv,
	}
}

// Add accumulates b into a.
func (a *Accounting) Add(b Accounting) {
	a.Comp += b.Comp
	a.Comm += b.Comm
	a.Sync += b.Sync
	a.BytesSent += b.BytesSent
	a.BytesRecv += b.BytesRecv
}

// World is one simulated MPI job.
type World struct {
	M      *cluster.Machine
	Cost   cluster.CostModel
	Tracer *trace.Collector // optional event collection
	ranks  []*Rank
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank is one MPI process.
type Rank struct {
	W  *World
	ID int
	P  *sim.Proc

	inbox   []*message
	waiting bool // parked inside a matching loop
	acct    Accounting

	// SyncClass forces all message time into the Sync bucket while true —
	// the CMPI middleware turns it on around its synchronization-by-
	// messages pattern (§4.2 of the paper).
	SyncClass bool
}

// Size returns the world size.
func (r *Rank) Size() int { return r.W.Size() }

// Now returns the rank's current virtual time.
func (r *Rank) Now() float64 { return r.P.Now() }

// Acct returns a snapshot of the rank's accounting.
func (r *Rank) Acct() Accounting { return r.acct }

// Compute advances virtual time by d seconds of computation.
func (r *Rank) Compute(d float64) {
	if d < 0 {
		panic("mpi: negative compute time")
	}
	t0 := r.Now()
	r.acct.Comp += d
	r.P.Advance(d)
	r.traceEvent(trace.KindCompute, "compute", t0)
}

// traceEvent records [t0, now] on the world tracer when one is attached.
func (r *Rank) traceEvent(kind trace.Kind, label string, t0 float64) {
	if r.W.Tracer == nil {
		return
	}
	// Errors cannot occur: now ≥ t0 by construction of virtual time.
	_ = r.W.Tracer.Add(trace.Event{Rank: r.ID, Kind: kind, Label: label, Start: t0, End: r.Now()})
}

// TraceSpan records an arbitrary labelled interval (the parallel MD uses
// it for its phase background lanes).
func (r *Rank) TraceSpan(kind trace.Kind, label string, start, end float64) {
	if r.W.Tracer == nil {
		return
	}
	_ = r.W.Tracer.Add(trace.Event{Rank: r.ID, Kind: kind, Label: label, Start: start, End: end})
}

// ComputeWork charges the CPU time of the counted work through the world's
// cost model.
func (r *Rank) ComputeWork(w work.Counters) {
	r.Compute(r.W.Cost.Seconds(w))
}

// chargeMsg books d seconds of message time into Comm or Sync depending on
// the rank's current classification.
func (r *Rank) chargeMsg(d float64, sync bool) {
	if r.SyncClass || sync {
		r.acct.Sync += d
	} else {
		r.acct.Comm += d
	}
}

// Run spawns one rank process per CPU of the configured machine, runs fn on
// each, and returns the per-rank accounting. A simulated deadlock (or a
// panic escaping fn) is returned as an error.
func Run(cfg cluster.Config, cost cluster.CostModel, fn func(*Rank)) ([]Accounting, error) {
	return RunTraced(cfg, cost, nil, fn)
}

// RunTraced is Run with an optional event collector receiving every
// compute/communication interval of every rank.
func RunTraced(cfg cluster.Config, cost cluster.CostModel, tracer *trace.Collector, fn func(*Rank)) ([]Accounting, error) {
	env := sim.NewEnv()
	m := cluster.New(env, cfg)
	w := &World{M: m, Cost: cost, Tracer: tracer}
	var panics []interface{}
	for i := 0; i < m.Ranks(); i++ {
		r := &Rank{W: w, ID: i}
		w.ranks = append(w.ranks, r)
	}
	for i := 0; i < m.Ranks(); i++ {
		r := w.ranks[i]
		r.P = env.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			defer func() {
				if v := recover(); v != nil {
					panics = append(panics, v)
				}
			}()
			fn(r)
		})
	}
	err := env.Run()
	if err == nil && len(panics) > 0 {
		err = fmt.Errorf("mpi: rank panicked: %v", panics[0])
	}
	accts := make([]Accounting, len(w.ranks))
	for i, r := range w.ranks {
		accts[i] = r.acct
	}
	return accts, err
}

// RunCollect is Run plus a per-rank result value produced by fn.
func RunCollect[T any](cfg cluster.Config, cost cluster.CostModel, fn func(*Rank) T) ([]T, []Accounting, error) {
	out := make([]T, cfg.Nodes*cfg.CPUsPerNode)
	accts, err := Run(cfg, cost, func(r *Rank) {
		out[r.ID] = fn(r)
	})
	return out, accts, err
}
