// Package mpi implements a simulated MPI subset on top of the
// discrete-event cluster model: blocking and non-blocking point-to-point
// messages (eager and rendezvous protocols, NIC occupancy, interrupt-CPU
// serialization, TCP stall injection) and the MPICH-1-era collective
// algorithms the paper's CHARMM runs used (binomial broadcast/reduce,
// reduce+bcast allreduce, linear gather, pairwise all-to-all, dissemination
// barrier).
//
// Every rank accounts its virtual time into the paper's three buckets:
// computation, communication (data transfer) and synchronization (control
// transfer / waiting for partners) — the decomposition of §3.2.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/work"
)

// Accounting is the per-rank time and volume bookkeeping.
type Accounting struct {
	Comp float64 // seconds spent computing
	Comm float64 // seconds in data transfer
	Sync float64 // seconds waiting for partners / control transfer
	Lost float64 // seconds of work discarded by a crash and recomputed

	BytesSent int64
	BytesRecv int64
}

// Total returns Comp+Comm+Sync+Lost.
func (a Accounting) Total() float64 { return a.Comp + a.Comm + a.Sync + a.Lost }

// Sub returns a − b field-wise (for per-phase deltas).
func (a Accounting) Sub(b Accounting) Accounting {
	return Accounting{
		Comp:      a.Comp - b.Comp,
		Comm:      a.Comm - b.Comm,
		Sync:      a.Sync - b.Sync,
		Lost:      a.Lost - b.Lost,
		BytesSent: a.BytesSent - b.BytesSent,
		BytesRecv: a.BytesRecv - b.BytesRecv,
	}
}

// Add accumulates b into a.
func (a *Accounting) Add(b Accounting) {
	a.Comp += b.Comp
	a.Comm += b.Comm
	a.Sync += b.Sync
	a.Lost += b.Lost
	a.BytesSent += b.BytesSent
	a.BytesRecv += b.BytesRecv
}

// World is one simulated MPI job.
type World struct {
	M      *cluster.Machine
	Cost   cluster.CostModel
	Tracer trace.Sink    // optional event collection (flat collector or obs recorder)
	Obs    *obs.Recorder // optional metrics + hierarchical spans
	Wd     Watchdog      // zero value: blocking waits are unbounded
	ranks  []*Rank

	// Registry-backed transport metrics, created once per job when Obs is
	// attached (nil handles otherwise; every hook is nil-gated).
	mMsgBytes *obs.Histogram
	mMsgs     *obs.Counter
	mColl     map[string]*obs.Histogram
}

// collOps are the instrumented collective operations, in the latency
// histograms' op label.
var collOps = []string{"barrier", "allreduce", "allgatherv", "alltoallv"}

// initMetrics creates the world's transport metric handles on the
// recorder's registry.
func (w *World) initMetrics() {
	if w.Obs == nil {
		return
	}
	reg := w.Obs.Registry()
	// Message sizes from 64 B to ~1 GB; collective latencies from 1 µs to
	// ~1000 s of virtual time.
	w.mMsgBytes = reg.Histogram("repro_mpi_message_bytes",
		"point-to-point message payload sizes", obs.ExpBuckets(64, 4, 13))
	w.mMsgs = reg.Counter("repro_mpi_messages_total",
		"point-to-point messages initiated")
	w.mColl = map[string]*obs.Histogram{}
	for _, op := range collOps {
		w.mColl[op] = reg.Histogram("repro_mpi_collective_seconds",
			"per-rank collective latency (virtual seconds)",
			obs.ExpBuckets(1e-6, 10, 10), obs.L("op", op))
	}
}

// observeMsg books one initiated point-to-point message.
func (w *World) observeMsg(bytes int) {
	if w.mMsgs == nil {
		return
	}
	w.mMsgs.Inc()
	w.mMsgBytes.Observe(float64(bytes))
}

// observeColl books one rank's latency through a collective.
func (w *World) observeColl(op string, d float64) {
	if w.mColl == nil {
		return
	}
	w.mColl[op].Observe(d)
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank is one MPI process.
type Rank struct {
	W  *World
	ID int
	P  *sim.Proc

	inbox   []*message
	waiting bool // parked inside a matching loop
	crashed bool // set by an injected crash; next yield aborts the rank
	acct    Accounting

	// SyncClass forces all message time into the Sync bucket while true —
	// the CMPI middleware turns it on around its synchronization-by-
	// messages pattern (§4.2 of the paper).
	SyncClass bool
}

// Size returns the world size.
func (r *Rank) Size() int { return r.W.Size() }

// Now returns the rank's current virtual time.
func (r *Rank) Now() float64 { return r.P.Now() }

// Acct returns a snapshot of the rank's accounting.
func (r *Rank) Acct() Accounting { return r.acct }

// Compute advances virtual time by d seconds of computation. A straggler
// fault in effect on the rank's node at the start of the interval scales
// the whole interval.
func (r *Rank) Compute(d float64) {
	if d < 0 {
		panic("mpi: negative compute time")
	}
	r.checkCrash()
	t0 := r.Now()
	d *= r.W.M.ComputeScaleAt(t0, r.W.M.NodeOf(r.ID).ID)
	r.acct.Comp += d
	r.P.Advance(d)
	r.checkCrash()
	r.traceEvent(trace.KindCompute, "compute", t0)
}

// traceEvent records [t0, now] on the world tracer when one is attached.
func (r *Rank) traceEvent(kind trace.Kind, label string, t0 float64) {
	if r.W.Tracer == nil {
		return
	}
	// Errors cannot occur: now ≥ t0 by construction of virtual time.
	_ = r.W.Tracer.Add(trace.Event{Rank: r.ID, Kind: kind, Label: label, Start: t0, End: r.Now()})
}

// TraceSpan records an arbitrary labelled interval (the parallel MD uses
// it for its phase background lanes).
func (r *Rank) TraceSpan(kind trace.Kind, label string, start, end float64) {
	if r.W.Tracer == nil {
		return
	}
	_ = r.W.Tracer.Add(trace.Event{Rank: r.ID, Kind: kind, Label: label, Start: start, End: end})
}

// Recorder returns the world's observability recorder (nil when the job
// runs without one). Layers above use it to open hierarchical spans that
// the flat trace events nest under.
func (r *Rank) Recorder() *obs.Recorder { return r.W.Obs }

// Metrics returns the registry behind the observability recorder, or nil.
func (r *Rank) Metrics() *obs.Registry {
	if r.W.Obs == nil {
		return nil
	}
	return r.W.Obs.Registry()
}

// ComputeWork charges the CPU time of the counted work through the world's
// cost model.
func (r *Rank) ComputeWork(w work.Counters) {
	r.Compute(r.W.Cost.Seconds(w))
}

// ComputeSeg executes seg — pure computation that touches only rank-local
// state and never the simulator — and charges the cost of the counters seg
// fills, exactly as running seg inline followed by ComputeWork would.
// minWork must be a guaranteed lower bound on the counters seg will produce
// (the zero value is always safe); under host parallelism (Options.
// HostWorkers > 1) the bound lets the scheduler overlap segments of
// different ranks while reproducing the serial event order bit for bit.
// Straggler faults are sampled at the segment start, like Compute.
func (r *Rank) ComputeSeg(minWork work.Counters, seg func(*work.Counters)) {
	r.checkCrash()
	t0 := r.Now()
	scale := r.W.M.ComputeScaleAt(t0, r.W.M.NodeOf(r.ID).ID)
	lb := scale * r.W.Cost.Seconds(minWork)
	d := r.P.Compute(lb, func() float64 {
		var w work.Counters
		seg(&w)
		return scale * r.W.Cost.Seconds(w)
	})
	r.acct.Comp += d
	r.checkCrash()
	r.traceEvent(trace.KindCompute, "compute", t0)
}

// chargeMsg books d seconds of message time into Comm or Sync depending on
// the rank's current classification.
func (r *Rank) chargeMsg(d float64, sync bool) {
	if r.SyncClass || sync {
		r.acct.Sync += d
	} else {
		r.acct.Comm += d
	}
}

// Options configures one simulated job beyond the machine and cost model.
type Options struct {
	Tracer trace.Sink // optional event collection

	// Obs attaches the observability recorder: transport metrics (message
	// sizes, collective latencies) land on its registry and, when Tracer
	// is nil, it also becomes the event sink so spans nest hierarchically.
	Obs *obs.Recorder

	Faults   cluster.FaultModel // optional platform degradation
	Watchdog Watchdog           // zero value: unbounded blocking waits

	// HostWorkers sizes the host worker pool for ComputeSeg closures:
	// > 1 overlaps compute segments of different ranks on that many host
	// goroutines (output stays bitwise-identical to the serial schedule);
	// ≤ 1 runs everything inline on the scheduler thread.
	HostWorkers int
}

// Run spawns one rank process per CPU of the configured machine, runs fn on
// each, and returns the per-rank accounting. A simulated deadlock (or a
// panic escaping fn) is returned as an error.
func Run(cfg cluster.Config, cost cluster.CostModel, fn func(*Rank)) ([]Accounting, error) {
	return RunOpts(cfg, cost, Options{}, fn)
}

// RunTraced is Run with an optional event sink receiving every
// compute/communication interval of every rank.
func RunTraced(cfg cluster.Config, cost cluster.CostModel, tracer trace.Sink, fn func(*Rank)) ([]Accounting, error) {
	return RunOpts(cfg, cost, Options{Tracer: tracer}, fn)
}

// RunOpts is the full-control entry point: tracing, fault injection and
// watchdogs. Configuration problems come back as errors (not panics), and
// injected crashes / watchdog expiries surface as typed errors matching
// ErrCrashed / ErrTimeout. Partial accounting is returned alongside any
// error so overhead bookkeeping survives aborted jobs.
func RunOpts(cfg cluster.Config, cost cluster.CostModel, opts Options, fn func(*Rank)) ([]Accounting, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	env.SetWorkers(opts.HostWorkers)
	m := cluster.New(env, cfg)
	m.Faults = opts.Faults
	w := &World{M: m, Cost: cost, Tracer: opts.Tracer, Obs: opts.Obs, Wd: opts.Watchdog}
	if w.Tracer == nil && opts.Obs != nil {
		w.Tracer = opts.Obs
	}
	w.initMetrics()
	var panics []interface{}
	for i := 0; i < m.Ranks(); i++ {
		r := &Rank{W: w, ID: i}
		w.ranks = append(w.ranks, r)
	}
	for i := 0; i < m.Ranks(); i++ {
		r := w.ranks[i]
		r.P = env.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			defer func() {
				if v := recover(); v != nil {
					panics = append(panics, v)
				}
			}()
			fn(r)
		})
	}
	if opts.Faults != nil {
		opts.Faults.Install(m)
		spawnKillers(env, w, opts.Faults)
	}
	runErr := env.Run()
	err := selectError(runErr, panics)
	accts := make([]Accounting, len(w.ranks))
	for i, r := range w.ranks {
		accts[i] = r.acct
	}
	return accts, err
}

// spawnKillers schedules one killer process per crash in the fault model:
// at the scheduled virtual time it marks the rank crashed and, if the rank
// is parked in a matching loop, wakes it so the abort is prompt.
func spawnKillers(env *sim.Env, w *World, faults cluster.FaultModel) {
	for _, r := range w.ranks {
		t, ok := faults.CrashTime(r.ID)
		if !ok {
			continue
		}
		if t < 0 {
			t = 0
		}
		rk := r
		env.Spawn(fmt.Sprintf("kill rank%d", rk.ID), func(p *sim.Proc) {
			p.Advance(t)
			if rk.P.Done() {
				return
			}
			rk.crashed = true
			if rk.waiting {
				rk.waiting = false
				env.Unpark(rk.P)
			}
		})
	}
}

// selectError merges the simulation outcome with recovered rank panics,
// preferring the most specific diagnosis: an injected crash, then a
// watchdog timeout, then any other panic, then the raw simulation error
// (e.g. deadlock). When a crash caused a residual deadlock among the
// survivors, both facts are reported and errors.Is still matches
// ErrCrashed.
func selectError(runErr error, panics []interface{}) error {
	var crash *CrashError
	var timeout *TimeoutError
	var other interface{}
	for _, v := range panics {
		switch e := v.(type) {
		case *CrashError:
			if crash == nil {
				crash = e
			}
		case *TimeoutError:
			if timeout == nil {
				timeout = e
			}
		default:
			if other == nil {
				other = v
			}
		}
	}
	switch {
	case crash != nil && runErr != nil:
		return fmt.Errorf("%w; %v", crash, runErr)
	case crash != nil:
		return crash
	case timeout != nil && runErr != nil:
		return fmt.Errorf("%w; %v", timeout, runErr)
	case timeout != nil:
		return timeout
	case other != nil:
		return fmt.Errorf("mpi: rank panicked: %v", other)
	default:
		return runErr
	}
}

// RunCollect is Run plus a per-rank result value produced by fn.
func RunCollect[T any](cfg cluster.Config, cost cluster.CostModel, fn func(*Rank) T) ([]T, []Accounting, error) {
	out := make([]T, cfg.Nodes*cfg.CPUsPerNode)
	accts, err := Run(cfg, cost, func(r *Rank) {
		out[r.ID] = fn(r)
	})
	return out, accts, err
}
