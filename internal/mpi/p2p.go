package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// dualInterruptPenalty inflates interrupt-driven receive processing when
// every CPU of a node runs a compute rank (no idle CPU to absorb the
// stack's work): cycles are stolen from computation and the handler
// contends with two hot caches.
const dualInterruptPenalty = 3.0

// message is one in-flight or queued point-to-point message. The record is
// deposited into the receiver's inbox at send initiation so a receiver can
// distinguish "partner has not sent yet" (synchronization time) from
// "transfer in progress" (communication time).
type message struct {
	src, dst, tag int
	bytes         int

	rendezvous bool
	arrived    bool // payload available at the receiver
	recvPosted bool // a receiver has matched this message

	senderRank *Rank // parked rendezvous sender awaiting clear-to-send
	senderPark bool
	cleared    bool // clear-to-send granted by the receiver
}

// Send transmits bytes to dst with the given tag, blocking per the
// underlying protocol: eager sends return once the payload left the NIC;
// rendezvous sends block until the receiver posts.
func (r *Rank) Send(dst, tag, bytes int) {
	if dst == r.ID {
		panic("mpi: send to self")
	}
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	r.checkCrash()
	t0 := r.Now()
	net := r.W.M.Cfg.Net
	dstRank := r.W.ranks[dst]
	msg := &message{src: r.ID, dst: dst, tag: tag, bytes: bytes}

	// Per-message host overhead on the sender.
	r.P.Advance(net.SendOverhead)

	if bytes > net.EagerLimit {
		// Rendezvous: deposit the envelope, park until the receiver posts
		// and the clear-to-send returns, then push the payload.
		msg.rendezvous = true
		msg.senderRank = r
		r.deposit(dstRank, msg)
		var wds wdState
		for !msg.cleared {
			r.checkCrash()
			msg.senderPark = true
			ok := r.guardedPark(&wds)
			msg.senderPark = false
			if !ok {
				panic(wds.timeout(r, "send-rendezvous", dst))
			}
		}
		r.checkCrash()
	} else {
		r.deposit(dstRank, msg)
	}

	r.transferPayload(msg)
	r.acct.BytesSent += int64(bytes)
	r.W.observeMsg(bytes)
	r.chargeMsg(r.Now()-t0, false)
	kind := trace.KindSend
	if r.SyncClass {
		kind = trace.KindSync
	}
	r.traceEvent(kind, "send", t0)
}

// deposit appends the message to the destination inbox and wakes the
// receiver if it is parked in a matching loop. A receiver whose watchdog
// already woke it (flag still set, process queued) just has the flag
// cleared: it will rescan its inbox when it resumes.
func (r *Rank) deposit(dst *Rank, msg *message) {
	dst.inbox = append(dst.inbox, msg)
	if dst.waiting {
		dst.waiting = false
		if dst.P.Parked() {
			r.W.M.Env.Unpark(dst.P)
		}
	}
}

// transferPayload pushes the payload through both NICs and schedules the
// delivery (latency, stall, receive-side packet processing, arrival).
func (r *Rank) transferPayload(msg *message) {
	net := r.W.M.Cfg.Net
	m := r.W.M
	srcNode := m.NodeOf(msg.src)
	dstNode := m.NodeOf(msg.dst)
	pkts := net.Packets(msg.bytes)
	sameNode := srcNode == dstNode

	// Per-packet send processing on the sender CPU.
	r.P.Advance(float64(pkts) * net.PerPacketSend)
	// The payload occupies the sender's transmit engine and the receiver's
	// receive engine for the serialized transfer time (cut-through
	// pipelining: one bandwidth term, not two). Same-node ranks do not
	// traverse the NIC (shared memory / loopback), but an interrupt-driven
	// stack still burns receive CPU below. Link-degradation faults scale
	// the wire terms; the degradation in effect when the transfer starts
	// governs the whole message.
	transfer := float64(msg.bytes) / net.Bandwidth
	bwDiv, latMul := m.LinkScaleAt(r.P.Now(), srcNode.ID, dstNode.ID)
	var stall, latency float64
	switch {
	case !sameNode:
		m.ActiveFlows++
		srcNode.NicTx.Acquire(r.P)
		dstNode.NicRx.Acquire(r.P)
		r.P.Advance(transfer * bwDiv)
		srcNode.NicTx.Release()
		dstNode.NicRx.Release()
		stall = m.StallDelay()
		latency = net.Latency * latMul
	case net.InterruptDriven:
		// TCP loopback between two CPUs of one node runs the whole
		// protocol stack (§4.3): full transfer cost, full latency, and the
		// interrupt work below — there is no shared-memory fast path.
		r.P.Advance(transfer)
		latency = net.Latency
	default:
		// SCore / Myrinet shared-memory drivers handle same-node traffic
		// effectively (paper §4.3).
		r.P.Advance(transfer * 0.3)
		latency = net.Latency * 0.25
	}

	env := m.Env
	env.Spawn(fmt.Sprintf("dlv %d->%d", msg.src, msg.dst), func(p *sim.Proc) {
		p.Advance(latency + stall)
		// Receive-side packet processing: serialized on the interrupt CPU
		// for interrupt-driven stacks, handled by the NIC processor
		// otherwise.
		cost := float64(pkts) * net.PerPacketRecv
		if net.InterruptDriven {
			// The paper's machines were dual-CPU boards: in uni-processor
			// runs the idle second CPU absorbed the interrupt load, while
			// with both CPUs computing the stack steals compute cycles and
			// contends with two processes (§4.3 and [18]). Model the loss
			// as a contention multiplier on the interrupt service time. A
			// straggler fault slows the interrupt CPU like any other core
			// of the node.
			if m.Cfg.CPUsPerNode > 1 {
				cost *= dualInterruptPenalty
			}
			cost *= m.ComputeScaleAt(p.Now(), dstNode.ID)
			dstNode.Intr.Use(p, cost)
		} else {
			p.Advance(cost)
		}
		if !sameNode {
			m.ActiveFlows--
		}
		msg.arrived = true
		dst := r.W.ranks[msg.dst]
		if dst.waiting {
			dst.waiting = false
			if dst.P.Parked() {
				env.Unpark(dst.P)
			}
		}
	})
}

// match scans the inbox for the oldest message from src with tag.
func (r *Rank) match(src, tag int) *message {
	for _, m := range r.inbox {
		if m.src == src && m.tag == tag && !m.recvPosted {
			return m
		}
	}
	return nil
}

// remove deletes a consumed message from the inbox.
func (r *Rank) remove(msg *message) {
	for i, m := range r.inbox {
		if m == msg {
			r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
			return
		}
	}
	panic("mpi: removing message not in inbox")
}

// Recv blocks until a message from src with tag is delivered and returns
// its size. Waiting before the partner has initiated the send is booked as
// synchronization; everything after is communication.
func (r *Rank) Recv(src, tag int) int {
	if src == r.ID {
		panic("mpi: recv from self")
	}
	r.checkCrash()
	net := r.W.M.Cfg.Net
	t0 := r.Now()

	// Phase 1 (sync): wait until the envelope exists.
	var msg *message
	var wds wdState
	for {
		r.checkCrash()
		if msg = r.match(src, tag); msg != nil {
			break
		}
		r.waiting = true
		ok := r.guardedPark(&wds)
		r.waiting = false
		if !ok {
			panic(wds.timeout(r, "recv-match", src))
		}
	}
	tMatch := r.Now()
	msg.recvPosted = true

	// Phase 2 (comm): the transfer.
	if msg.rendezvous && msg.senderRank != nil {
		// Clear-to-send control round trip, then the sender pushes.
		r.P.Advance(2 * net.Latency)
		msg.cleared = true
		if msg.senderPark {
			msg.senderPark = false
			if msg.senderRank.P.Parked() {
				r.W.M.Env.Unpark(msg.senderRank.P)
			}
		}
	}
	wds = wdState{}
	for !msg.arrived {
		r.checkCrash()
		r.waiting = true
		ok := r.guardedPark(&wds)
		r.waiting = false
		if !ok {
			panic(wds.timeout(r, "recv-data", src))
		}
	}
	r.checkCrash()
	r.P.Advance(net.RecvOverhead)
	r.remove(msg)

	r.acct.BytesRecv += int64(msg.bytes)
	r.chargeMsg(tMatch-t0, true)       // waiting for the partner
	r.chargeMsg(r.Now()-tMatch, false) // data transfer
	if tMatch > t0 {
		r.traceEvent(trace.KindSync, "wait", t0)
	}
	kind := trace.KindRecv
	if r.SyncClass {
		kind = trace.KindSync
	}
	r.traceEvent(kind, "recv", tMatch)
	return msg.bytes
}

// Request is a non-blocking operation handle.
type Request struct {
	rank      *Rank
	isSend    bool
	done      bool
	abandoned bool // helper gave up (watchdog) without transferring
	src       int
	dst       int
	tag       int
	bytes     int
	waiter    bool
}

// Isend starts a non-blocking send. The per-message host overhead is
// charged to the caller immediately (it is real CPU time); the transfer
// proceeds in a helper process. Wait blocks until the payload has left.
func (r *Rank) Isend(dst, tag, bytes int) *Request {
	if dst == r.ID {
		panic("mpi: isend to self")
	}
	r.checkCrash()
	req := &Request{rank: r, isSend: true, dst: dst, bytes: bytes}
	t0 := r.Now()
	net := r.W.M.Cfg.Net
	r.P.Advance(net.SendOverhead)
	r.chargeMsg(r.Now()-t0, false)

	dstRank := r.W.ranks[dst]
	msg := &message{src: r.ID, dst: dst, tag: tag, bytes: bytes}
	env := r.W.M.Env
	env.Spawn(fmt.Sprintf("isend %d->%d", r.ID, dst), func(p *sim.Proc) {
		helper := &Rank{W: r.W, ID: r.ID, P: p} // transfer on the sender's node
		if bytes > net.EagerLimit {
			msg.rendezvous = true
			msg.senderRank = helper
			helper.deposit(dstRank, msg)
			// A panic here would kill the whole process (no recover wraps
			// helper goroutines), so an exhausted watchdog abandons the
			// transfer quietly; the receiver's own watchdog reports it.
			var wds wdState
			for !msg.cleared {
				msg.senderPark = true
				ok := helper.guardedPark(&wds)
				msg.senderPark = false
				if !ok {
					req.abandoned = true
					break
				}
			}
		} else {
			helper.deposit(dstRank, msg)
		}
		if !req.abandoned {
			helper.transferPayload(msg)
		}
		req.done = true
		if req.waiter {
			req.waiter = false
			if r.P.Parked() {
				env.Unpark(r.P)
			}
		}
	})
	r.acct.BytesSent += int64(bytes)
	r.W.observeMsg(bytes)
	return req
}

// Irecv posts a non-blocking receive; completion is driven by Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, isSend: false, src: src, tag: tag}
}

// Wait blocks until the request completes. For receives it performs the
// actual matching (equivalent to MPI's progression happening at the wait).
func (r *Rank) Wait(req *Request) int {
	if req.rank != r {
		panic("mpi: waiting on another rank's request")
	}
	if req.isSend {
		r.checkCrash()
		t0 := r.Now()
		var wds wdState
		for !req.done {
			r.checkCrash()
			req.waiter = true
			ok := r.guardedPark(&wds)
			req.waiter = false
			if !ok {
				panic(wds.timeout(r, "wait-send", req.dst))
			}
		}
		r.checkCrash()
		if req.abandoned {
			panic(&TimeoutError{Rank: r.ID, Partner: req.dst, Op: "send-rendezvous", At: r.Now(), Since: t0})
		}
		r.chargeMsg(r.Now()-t0, false)
		return req.bytes
	}
	return r.Recv(req.src, req.tag)
}

// Sendrecv exchanges messages with two (possibly different) partners
// without deadlocking.
func (r *Rank) Sendrecv(dst, sendTag, sendBytes, src, recvTag int) int {
	sreq := r.Isend(dst, sendTag, sendBytes)
	n := r.Recv(src, recvTag)
	r.Wait(sreq)
	return n
}
