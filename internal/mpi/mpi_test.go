package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/netmodel"
	"repro/internal/work"
)

func uniCluster(nodes int, net netmodel.Params) cluster.Config {
	return cluster.Config{Nodes: nodes, CPUsPerNode: 1, Net: net, Seed: 1}
}

func mustRun(t *testing.T, cfg cluster.Config, fn func(*Rank)) []Accounting {
	t.Helper()
	accts, err := Run(cfg, cluster.PentiumIII1GHz(), fn)
	if err != nil {
		t.Fatal(err)
	}
	return accts
}

func TestPingPong(t *testing.T) {
	var times []float64
	mustRun(t, uniCluster(2, netmodel.SCoreGigE()), func(r *Rank) {
		const n = 10
		if r.ID == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, 7, 1024)
				r.Recv(1, 8)
			}
			times = append(times, r.Now())
		} else {
			for i := 0; i < n; i++ {
				r.Recv(0, 7)
				r.Send(0, 8, 1024)
			}
		}
	})
	if len(times) != 1 || times[0] <= 0 {
		t.Fatalf("ping-pong produced times %v", times)
	}
	// Sanity: 20 messages of 1 KB on SCore ≈ 20·(19µs + 14µs + 12µs) plus
	// bandwidth — between 0.5 ms and 2 ms.
	if times[0] < 0.5e-3 || times[0] > 2.5e-3 {
		t.Fatalf("ping-pong round time %g s implausible", times[0])
	}
}

func TestLatencyOrdering(t *testing.T) {
	// One small-message ping-pong per network: lower-latency networks must
	// complete sooner.
	elapsed := map[string]float64{}
	for _, net := range netmodel.All() {
		var tEnd float64
		mustRun(t, uniCluster(2, net), func(r *Rank) {
			if r.ID == 0 {
				for i := 0; i < 20; i++ {
					r.Send(1, 1, 64)
					r.Recv(1, 2)
				}
				tEnd = r.Now()
			} else {
				for i := 0; i < 20; i++ {
					r.Recv(0, 1)
					r.Send(0, 2, 64)
				}
			}
		})
		elapsed[net.Name] = tEnd
	}
	tcp := elapsed["TCP/IP on Ethernet"]
	score := elapsed["SCore on Ethernet"]
	myri := elapsed["Myrinet"]
	if !(myri < score && score < tcp) {
		t.Fatalf("latency ordering violated: tcp=%g score=%g myrinet=%g", tcp, score, myri)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Large transfers: Myrinet > SCore > TCP effective bandwidth.
	speed := map[string]float64{}
	for _, net := range netmodel.All() {
		var tEnd float64
		const bytes = 4 << 20
		mustRun(t, uniCluster(2, net), func(r *Rank) {
			if r.ID == 0 {
				r.Send(1, 1, bytes)
			} else {
				r.Recv(0, 1)
				tEnd = r.Now()
			}
		})
		speed[net.Name] = bytes / tEnd
	}
	if !(speed["Myrinet"] > speed["SCore on Ethernet"] && speed["SCore on Ethernet"] > speed["TCP/IP on Ethernet"]) {
		t.Fatalf("bandwidth ordering violated: %v", speed)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	// Two messages with the same tag from the same sender must match in
	// order (sizes distinguish them).
	var sizes []int
	mustRun(t, uniCluster(2, netmodel.MyrinetGM()), func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 5, 100)
			r.Send(1, 5, 200)
		} else {
			sizes = append(sizes, r.Recv(0, 5), r.Recv(0, 5))
		}
	})
	if sizes[0] != 100 || sizes[1] != 200 {
		t.Fatalf("message order violated: %v", sizes)
	}
}

func TestRendezvousBlocksUntilReceiverPosts(t *testing.T) {
	// A rendezvous-size send must not complete before the receiver posts.
	net := netmodel.TCPGigE()
	var sendDone, recvPosted float64
	mustRun(t, uniCluster(2, net), func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, net.EagerLimit*4)
			sendDone = r.Now()
		} else {
			r.Compute(50e-3) // receiver arrives late
			recvPosted = r.Now()
			r.Recv(0, 1)
		}
	})
	if sendDone < recvPosted {
		t.Fatalf("rendezvous send completed at %g before receiver posted at %g", sendDone, recvPosted)
	}
}

func TestEagerCompletesBeforeReceiverPosts(t *testing.T) {
	net := netmodel.TCPGigE()
	var sendDone, recvPosted float64
	mustRun(t, uniCluster(2, net), func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, 1024)
			sendDone = r.Now()
		} else {
			r.Compute(50e-3)
			recvPosted = r.Now()
			r.Recv(0, 1)
		}
	})
	if sendDone >= recvPosted {
		t.Fatalf("eager send blocked until receiver posted (%g vs %g)", sendDone, recvPosted)
	}
}

func TestSyncVsCommAccounting(t *testing.T) {
	// A receiver waiting long before the sender starts books mostly sync.
	accts := mustRun(t, uniCluster(2, netmodel.SCoreGigE()), func(r *Rank) {
		if r.ID == 0 {
			r.Compute(10e-3)
			r.Send(1, 1, 4096)
		} else {
			r.Recv(0, 1)
		}
	})
	recv := accts[1]
	if recv.Sync < 9e-3 {
		t.Fatalf("receiver sync %g, want ≈10 ms of partner waiting", recv.Sync)
	}
	if recv.Comm <= 0 || recv.Comm > 2e-3 {
		t.Fatalf("receiver comm %g out of range", recv.Comm)
	}
	if recv.BytesRecv != 4096 || accts[0].BytesSent != 4096 {
		t.Fatalf("byte accounting wrong: %+v %+v", accts[0], recv)
	}
}

func TestComputeWorkUsesCostModel(t *testing.T) {
	cost := cluster.PentiumIII1GHz()
	w := work.Counters{PairEvals: 1000000}
	want := cost.Seconds(w)
	accts := mustRun(t, uniCluster(1, netmodel.SCoreGigE()), func(r *Rank) {
		r.ComputeWork(w)
	})
	if math.Abs(accts[0].Comp-want) > 1e-12 {
		t.Fatalf("Comp = %g, want %g", accts[0].Comp, want)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		var after []float64
		mustRun(t, uniCluster(p, netmodel.SCoreGigE()), func(r *Rank) {
			r.Compute(float64(r.ID) * 1e-3) // staggered arrivals
			r.Barrier()
			after = append(after, r.Now())
		})
		slowest := float64(p-1) * 1e-3
		for _, tm := range after {
			if tm < slowest {
				t.Fatalf("p=%d: rank left barrier at %g before slowest arrival %g", p, tm, slowest)
			}
		}
	}
}

func TestBarrierTimeIsSync(t *testing.T) {
	accts := mustRun(t, uniCluster(4, netmodel.TCPGigE()), func(r *Rank) {
		r.Compute(float64(3-r.ID) * 2e-3)
		r.Barrier()
	})
	for i, a := range accts {
		if a.Comm > a.Sync {
			t.Fatalf("rank %d: barrier booked more comm (%g) than sync (%g)", i, a.Comm, a.Sync)
		}
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for root := 0; root < p; root += 2 {
			got := make([]int, p)
			mustRun(t, uniCluster(p, netmodel.MyrinetGM()), func(r *Rank) {
				got[r.ID] = r.Bcast(root, 5000)
			})
			for i, b := range got {
				if b != 5000 {
					t.Fatalf("p=%d root=%d: rank %d got %d bytes", p, root, i, b)
				}
			}
		}
	}
}

func TestReduceAllreduceComplete(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		var finished int
		mustRun(t, uniCluster(p, netmodel.SCoreGigE()), func(r *Rank) {
			r.Allreduce(85000, 0.1e-3)
			finished++
		})
		if finished != p {
			t.Fatalf("p=%d: only %d ranks finished allreduce", p, finished)
		}
	}
}

func TestAllreduceScalesWithRanks(t *testing.T) {
	// Reduce+bcast over more ranks takes longer (same message size).
	var prev float64
	for _, p := range []int{2, 4, 8} {
		var tEnd float64
		mustRun(t, uniCluster(p, netmodel.TCPGigE()), func(r *Rank) {
			r.Allreduce(85000, 0)
			if r.Now() > tEnd {
				tEnd = r.Now()
			}
		})
		if tEnd <= prev {
			t.Fatalf("allreduce time did not grow with p: %g at p=%d after %g", tEnd, p, prev)
		}
		prev = tEnd
	}
}

func TestGatherAllgatherv(t *testing.T) {
	for _, p := range []int{2, 4, 7} {
		blocks := make([]int, p)
		for i := range blocks {
			blocks[i] = 1000 * (i + 1)
		}
		var done int
		mustRun(t, uniCluster(p, netmodel.SCoreGigE()), func(r *Rank) {
			r.Allgatherv(blocks)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d ranks finished allgatherv", p, done)
		}
	}
}

func TestAlltoallvCompletes(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		sizes := make([][]int, p)
		for i := range sizes {
			sizes[i] = make([]int, p)
			for j := range sizes[i] {
				if i != j {
					sizes[i][j] = 10000 + 100*i + j
				}
			}
		}
		var done int
		mustRun(t, uniCluster(p, netmodel.MyrinetGM()), func(r *Rank) {
			r.Alltoallv(sizes)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d ranks finished alltoallv", p, done)
		}
	}
}

func TestIsendOverlapsCompute(t *testing.T) {
	// With a non-blocking send the sender can compute during the transfer;
	// total time must be less than send-then-compute serialization.
	net := netmodel.MyrinetGM()
	const bytes = 2 << 20 // 16 ms at 125 MB/s
	const compute = 15e-3
	var overlapped float64
	mustRun(t, uniCluster(2, net), func(r *Rank) {
		if r.ID == 0 {
			req := r.Isend(1, 1, bytes)
			r.Compute(compute)
			r.Wait(req)
			overlapped = r.Now()
		} else {
			r.Recv(0, 1)
		}
	})
	transfer := float64(bytes) / net.Bandwidth
	serial := transfer + compute
	if overlapped >= serial {
		t.Fatalf("isend did not overlap: %g >= %g", overlapped, serial)
	}
}

func TestDualProcessorSharesNIC(t *testing.T) {
	// Two ranks on one node streaming to two ranks on another node share
	// one NIC: slower than two ranks on separate nodes.
	net := netmodel.SCoreGigE()
	const bytes = 4 << 20
	stream := func(cfg cluster.Config) float64 {
		var tEnd float64
		mustRun(t, cfg, func(r *Rank) {
			p := r.Size()
			if r.ID < p/2 {
				r.Send(r.ID+p/2, 1, bytes)
			} else {
				r.Recv(r.ID-p/2, 1)
				if r.Now() > tEnd {
					tEnd = r.Now()
				}
			}
		})
		return tEnd
	}
	dual := stream(cluster.Config{Nodes: 2, CPUsPerNode: 2, Net: net, Seed: 1})
	uni := stream(cluster.Config{Nodes: 4, CPUsPerNode: 1, Net: net, Seed: 1})
	if dual <= uni*1.5 {
		t.Fatalf("dual-CPU NIC sharing not modelled: dual=%g uni=%g", dual, uni)
	}
}

func TestInterruptSerializationOnTCPDual(t *testing.T) {
	// On TCP, receive interrupt processing serializes per node; on Myrinet
	// it does not. Compare many small messages into a dual node.
	many := func(net netmodel.Params) float64 {
		var tEnd float64
		mustRun(t, cluster.Config{Nodes: 2, CPUsPerNode: 2, Net: net, Seed: 1}, func(r *Rank) {
			const n = 200
			switch r.ID {
			case 0, 1: // senders on node 0
				for i := 0; i < n; i++ {
					r.Send(r.ID+2, 1, 1400)
				}
			default: // receivers share node 1
				for i := 0; i < n; i++ {
					r.Recv(r.ID-2, 1)
				}
				if r.Now() > tEnd {
					tEnd = r.Now()
				}
			}
		})
		return tEnd
	}
	tcp := many(netmodel.TCPGigE())
	myri := many(netmodel.MyrinetGM())
	if tcp < myri*2 {
		t.Fatalf("interrupt serialization invisible: tcp=%g myrinet=%g", tcp, myri)
	}
}

func TestTCPStallVariability(t *testing.T) {
	// With ≥4 concurrent flows, TCP transfers must show spread between the
	// fastest and slowest rank; SCore must stay tight (Fig. 7 behaviour).
	spread := func(net netmodel.Params) float64 {
		cfg := uniCluster(8, net)
		accts := mustRun(t, cfg, func(r *Rank) {
			// All-to-all style traffic for several rounds.
			for round := 0; round < 5; round++ {
				r.AlltoallUniform(60000)
			}
		})
		lo, hi := math.Inf(1), 0.0
		for _, a := range accts {
			speed := float64(a.BytesSent) / a.Comm
			lo = math.Min(lo, speed)
			hi = math.Max(hi, speed)
		}
		return (hi - lo) / hi
	}
	tcp := spread(netmodel.TCPGigE())
	score := spread(netmodel.SCoreGigE())
	if tcp < 2*score {
		t.Fatalf("TCP variability %g not clearly above SCore %g", tcp, score)
	}
}

func TestDeterministicAccounting(t *testing.T) {
	run := func() []Accounting {
		return mustRun(t, uniCluster(4, netmodel.TCPGigE()), func(r *Rank) {
			for i := 0; i < 3; i++ {
				r.Allreduce(85000, 0.05e-3)
				r.Barrier()
			}
		})
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d accounting differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestAccountingConservation(t *testing.T) {
	// Comp+Comm+Sync must equal each rank's elapsed virtual time.
	var elapsed []float64
	accts := mustRun(t, uniCluster(4, netmodel.TCPGigE()), func(r *Rank) {
		r.Compute(1e-3)
		r.Allreduce(85000, 0)
		r.Barrier()
		elapsed = append(elapsed, r.Now())
	})
	// elapsed is in completion order, not rank order; compare totals as a
	// multiset via sums.
	var sumA, sumE float64
	for i := range accts {
		sumA += accts[i].Total()
		sumE += elapsed[i]
	}
	if math.Abs(sumA-sumE) > 1e-9 {
		t.Fatalf("accounting leak: booked %g vs elapsed %g", sumA, sumE)
	}
}

func TestRunPropagatesDeadlock(t *testing.T) {
	_, err := Run(uniCluster(2, netmodel.SCoreGigE()), cluster.PentiumIII1GHz(), func(r *Rank) {
		if r.ID == 0 {
			r.Recv(1, 99) // never sent
		}
	})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := Run(uniCluster(2, netmodel.SCoreGigE()), cluster.PentiumIII1GHz(), func(r *Rank) {
		if r.ID == 0 {
			r.Send(0, 1, 10)
		}
	})
	if err == nil {
		t.Fatal("self send not rejected")
	}
}

func TestAllreduceRecursiveDoubling(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8} {
		done := 0
		mustRun(t, uniCluster(p, netmodel.SCoreGigE()), func(r *Rank) {
			r.AllreduceRecursiveDoubling(85000, 10e-6)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d ranks finished", p, done)
		}
	}
}

func TestModernAllreduceBeatsReduceBcastAtScale(t *testing.T) {
	// Recursive doubling finishes sooner than reduce+bcast for a large
	// vector at p=8 on a high-overhead network.
	worstOf := func(fn func(*Rank)) float64 {
		var worst float64
		mustRun(t, uniCluster(8, netmodel.SCoreGigE()), func(r *Rank) {
			fn(r)
			if r.Now() > worst {
				worst = r.Now()
			}
		})
		return worst
	}
	old := worstOf(func(r *Rank) { r.Allreduce(85000, 0) })
	modern := worstOf(func(r *Rank) { r.AllreduceRecursiveDoubling(85000, 0) })
	if modern >= old {
		t.Fatalf("recursive doubling (%g) not faster than reduce+bcast (%g)", modern, old)
	}
}

func TestAllgathervRing(t *testing.T) {
	for _, p := range []int{2, 4, 7} {
		blocks := make([]int, p)
		for i := range blocks {
			blocks[i] = 5000 + 100*i
		}
		done := 0
		mustRun(t, uniCluster(p, netmodel.MyrinetGM()), func(r *Rank) {
			r.AllgathervRing(blocks)
			done++
		})
		if done != p {
			t.Fatalf("p=%d: %d finished", p, done)
		}
	}
}

func TestRandomTrafficProperty(t *testing.T) {
	// Any sequence of message sizes between two ranks completes, preserves
	// per-tag FIFO order, and conserves bytes.
	f := func(rawSizes []uint16) bool {
		if len(rawSizes) == 0 {
			return true
		}
		if len(rawSizes) > 30 {
			rawSizes = rawSizes[:30]
		}
		sizes := make([]int, len(rawSizes))
		for i, v := range rawSizes {
			sizes[i] = int(v) * 16 // spans eager and rendezvous regimes
		}
		var received []int
		accts, err := Run(uniCluster(2, netmodel.TCPGigE()), cluster.PentiumIII1GHz(), func(r *Rank) {
			if r.ID == 0 {
				for _, sz := range sizes {
					r.Send(1, 9, sz)
				}
			} else {
				for range sizes {
					received = append(received, r.Recv(0, 9))
				}
			}
		})
		if err != nil {
			return false
		}
		var total int64
		for i, sz := range sizes {
			if received[i] != sz {
				return false
			}
			total += int64(sz)
		}
		return accts[0].BytesSent == total && accts[1].BytesRecv == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedTagsProperty(t *testing.T) {
	// Messages on distinct tags can be received in any order relative to
	// each other while each tag stays FIFO.
	var a, b []int
	mustRun(t, uniCluster(2, netmodel.SCoreGigE()), func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 5; i++ {
				r.Send(1, 1, 100+i)
				r.Send(1, 2, 200+i)
			}
		} else {
			// Drain tag 2 first, then tag 1: matching must not block.
			for i := 0; i < 5; i++ {
				b = append(b, r.Recv(0, 2))
			}
			for i := 0; i < 5; i++ {
				a = append(a, r.Recv(0, 1))
			}
		}
	})
	for i := 0; i < 5; i++ {
		if a[i] != 100+i || b[i] != 200+i {
			t.Fatalf("per-tag order broken: %v %v", a, b)
		}
	}
}
