package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netmodel"
)

// stubFaults is a minimal cluster.FaultModel for transport tests.
type stubFaults struct {
	compScale  float64
	compNode   int
	bwDiv      float64
	latMul     float64
	crashRank  int
	crashAt    float64
	crashValid bool
}

func (s *stubFaults) ComputeScale(now float64, node int) float64 {
	if s.compScale > 0 && node == s.compNode {
		return s.compScale
	}
	return 1
}
func (s *stubFaults) LinkScale(now float64, node int) (float64, float64) {
	bw, lat := s.bwDiv, s.latMul
	if bw == 0 {
		bw = 1
	}
	if lat == 0 {
		lat = 1
	}
	return bw, lat
}
func (s *stubFaults) StallBoost(now float64) float64 { return 1 }
func (s *stubFaults) CrashTime(rank int) (float64, bool) {
	if s.crashValid && rank == s.crashRank {
		return s.crashAt, true
	}
	return 0, false
}
func (s *stubFaults) Install(m *cluster.Machine) {}

func TestWatchdogRecvTimeoutTyped(t *testing.T) {
	cfg := uniCluster(2, netmodel.TCPGigE())
	opts := Options{Watchdog: Watchdog{Timeout: 0.5, Retries: 1, Backoff: 2}}
	_, err := RunOpts(cfg, cluster.PentiumIII1GHz(), opts, func(r *Rank) {
		if r.ID == 0 {
			r.Recv(1, 7) // never sent
		}
	})
	if err == nil {
		t.Fatal("abandoned recv reported success")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got: %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error not a *TimeoutError: %v", err)
	}
	if te.Rank != 0 || te.Partner != 1 || te.Op != "recv-match" {
		t.Fatalf("wrong attribution: %+v", te)
	}
	if te.At <= te.Since {
		t.Fatalf("timeout interval empty: %+v", te)
	}
	if strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("watchdog expiry surfaced as deadlock: %v", err)
	}
}

func TestWatchdogRendezvousSendTimeout(t *testing.T) {
	net := netmodel.TCPGigE()
	cfg := uniCluster(2, net)
	opts := Options{Watchdog: Watchdog{Timeout: 0.5, Retries: 0}}
	_, err := RunOpts(cfg, cluster.PentiumIII1GHz(), opts, func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, net.EagerLimit+1) // receiver never posts
		}
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got: %v", err)
	}
	if te.Op != "send-rendezvous" || te.Rank != 0 || te.Partner != 1 {
		t.Fatalf("wrong attribution: %+v", te)
	}
}

func TestWatchdogRetriesSurviveLatePartner(t *testing.T) {
	cfg := uniCluster(2, netmodel.TCPGigE())
	// One round of 0.4 s is too short for a partner arriving at t=1.0, but
	// the backoff schedule (0.4+0.8+1.6) covers it.
	opts := Options{Watchdog: Watchdog{Timeout: 0.4, Retries: 3, Backoff: 2}}
	accts, err := RunOpts(cfg, cluster.PentiumIII1GHz(), opts, func(r *Rank) {
		if r.ID == 0 {
			r.Recv(1, 7)
		} else {
			r.Compute(1.0)
			r.Send(0, 7, 128)
		}
	})
	if err != nil {
		t.Fatalf("late-but-alive partner killed by watchdog: %v", err)
	}
	if accts[0].BytesRecv != 128 {
		t.Fatalf("recv bytes = %d, want 128", accts[0].BytesRecv)
	}
}

func TestInjectedCrashSurfacesTyped(t *testing.T) {
	cfg := uniCluster(2, netmodel.TCPGigE())
	faults := &stubFaults{crashRank: 1, crashAt: 0.5, crashValid: true}
	opts := Options{Faults: faults, Watchdog: Watchdog{Timeout: 0.5, Retries: 1, Backoff: 2}}
	_, err := RunOpts(cfg, cluster.PentiumIII1GHz(), opts, func(r *Rank) {
		for i := 0; i < 100; i++ {
			r.Compute(0.05)
			if r.ID == 0 {
				r.Recv(1, i)
			} else {
				r.Send(0, i, 64)
			}
		}
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error not a *CrashError: %v", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crashed rank = %d, want 1", ce.Rank)
	}
	if ce.At < 0.5 {
		t.Fatalf("crash took effect at t=%g, before its schedule 0.5", ce.At)
	}
}

func TestStragglerScalesCompute(t *testing.T) {
	cfg := uniCluster(2, netmodel.TCPGigE())
	faults := &stubFaults{compScale: 3, compNode: 0}
	opts := Options{Faults: faults}
	accts, err := RunOpts(cfg, cluster.PentiumIII1GHz(), opts, func(r *Rank) {
		r.Compute(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if accts[0].Comp != 3 {
		t.Fatalf("straggler node compute = %g, want 3", accts[0].Comp)
	}
	if accts[1].Comp != 1 {
		t.Fatalf("healthy node compute = %g, want 1", accts[1].Comp)
	}
}

func TestLinkDegradationSlowsTransfer(t *testing.T) {
	net := netmodel.TCPGigE()
	run := func(f cluster.FaultModel) float64 {
		var end float64
		opts := Options{Faults: f}
		_, err := RunOpts(uniCluster(2, net), cluster.PentiumIII1GHz(), opts, func(r *Rank) {
			if r.ID == 0 {
				r.Send(1, 1, 1<<20)
			} else {
				r.Recv(0, 1)
				end = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	healthy := run(nil)
	degraded := run(&stubFaults{bwDiv: 8, latMul: 4})
	if degraded <= healthy {
		t.Fatalf("degraded transfer (%.6f) not slower than healthy (%.6f)", degraded, healthy)
	}
}

func TestRunOptsRejectsBadConfig(t *testing.T) {
	_, err := RunOpts(cluster.Config{Nodes: 0, CPUsPerNode: 1}, cluster.PentiumIII1GHz(), Options{}, func(r *Rank) {})
	if err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	_, err = RunOpts(cluster.Config{Nodes: 2, CPUsPerNode: 3}, cluster.PentiumIII1GHz(), Options{}, func(r *Rank) {})
	if err == nil {
		t.Fatal("3-CPU nodes accepted")
	}
}

func TestModernCollectivesNonPowerOfTwo(t *testing.T) {
	net := netmodel.TCPGigE()
	for _, p := range []int{3, 5, 6, 12} {
		// Recursive-doubling allreduce: must terminate, and globally every
		// sent byte is received.
		accts := mustRun(t, uniCluster(p, net), func(r *Rank) {
			r.AllreduceRecursiveDoubling(4096, 0)
		})
		var sent, recv int64
		for _, a := range accts {
			sent += a.BytesSent
			recv += a.BytesRecv
		}
		if sent == 0 || sent != recv {
			t.Fatalf("p=%d allreduce: sent %d, recv %d bytes", p, sent, recv)
		}

		// Ring allgatherv with distinct block sizes: every rank relays all
		// blocks except its successor's (send side) and its own (recv side).
		blocks := make([]int, p)
		total := 0
		for i := range blocks {
			blocks[i] = 100 * (i + 1)
			total += blocks[i]
		}
		accts = mustRun(t, uniCluster(p, net), func(r *Rank) {
			r.AllgathervRing(blocks)
		})
		for id, a := range accts {
			wantSent := int64(total - blocks[(id+1)%p])
			wantRecv := int64(total - blocks[id])
			if a.BytesSent != wantSent {
				t.Fatalf("p=%d rank %d: sent %d bytes, want %d", p, id, a.BytesSent, wantSent)
			}
			if a.BytesRecv != wantRecv {
				t.Fatalf("p=%d rank %d: recv %d bytes, want %d", p, id, a.BytesRecv, wantRecv)
			}
		}
	}
}

func TestModernAllreduceByteSymmetryPerRank(t *testing.T) {
	// In the pow2 core every exchange is pairwise symmetric; remainder
	// ranks send one extra vector and get one back. So per rank,
	// sent == recv for every rank at any size.
	net := netmodel.TCPGigE()
	for _, p := range []int{3, 5, 6, 12} {
		accts := mustRun(t, uniCluster(p, net), func(r *Rank) {
			r.AllreduceRecursiveDoubling(1024, 0)
		})
		for id, a := range accts {
			if a.BytesSent != a.BytesRecv {
				t.Fatalf("p=%d rank %d: asymmetric bytes sent=%d recv=%d", p, id, a.BytesSent, a.BytesRecv)
			}
		}
	}
}
