package mpi

// Collective operations with the algorithms MPICH 1.2 shipped in the
// paper's era. The data volumes are what matters to the performance model,
// so collectives carry byte counts, not buffers — the MD layer moves the
// actual floats itself and uses these calls to advance virtual time.
// Tags above collTagBase are reserved for collectives.

const (
	collTagBase = 1 << 20
	tagBarrier  = collTagBase + iota
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagAlltoall
)

// Barrier synchronizes all ranks (dissemination algorithm, ⌈log2 p⌉ rounds
// of empty messages). All time inside is synchronization.
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		return
	}
	t0 := r.Now()
	prev := r.SyncClass
	r.SyncClass = true
	for dist := 1; dist < p; dist *= 2 {
		dst := (r.ID + dist) % p
		src := (r.ID - dist + p) % p
		r.Sendrecv(dst, tagBarrier+dist, 0, src, tagBarrier+dist)
	}
	r.SyncClass = prev
	r.W.observeColl("barrier", r.Now()-t0)
}

// Bcast distributes bytes from root along a binomial tree. Returns the
// byte count on every rank.
func (r *Rank) Bcast(root, bytes int) int {
	p := r.Size()
	if p == 1 {
		return bytes
	}
	// Standard MPICH binomial tree on rotated ranks: a rank receives from
	// its parent at its lowest set bit, then forwards to children at the
	// bits below it, highest first.
	vrank := (r.ID - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := (vrank - mask + root + p) % p
			r.Recv(src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			dst := (vrank + mask + root) % p
			r.Send(dst, tagBcast, bytes)
		}
		mask >>= 1
	}
	return bytes
}

// Reduce combines bytes from every rank at root along a binomial tree;
// each hop moves the full payload and costs reduceOp compute on the parent.
// reduceOp is the per-merge CPU time (the caller knows its element count).
func (r *Rank) Reduce(root, bytes int, reduceOp float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	vrank := (r.ID - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			// Send partial result to parent and stop.
			parent := ((vrank &^ mask) + root) % p
			r.Send(parent, tagReduce, bytes)
			return
		}
		// Receive from child (if it exists) and merge.
		child := vrank | mask
		if child < p {
			r.Recv((child+root)%p, tagReduce)
			if reduceOp > 0 {
				r.Compute(reduceOp)
			}
		}
		mask <<= 1
	}
}

// Allreduce is MPICH-1's reduce-to-root plus broadcast — the inefficiency
// the paper's reference platform actually ran.
func (r *Rank) Allreduce(bytes int, reduceOp float64) {
	t0 := r.Now()
	r.Reduce(0, bytes, reduceOp)
	r.Bcast(0, bytes)
	r.W.observeColl("allreduce", r.Now()-t0)
}

// Gather collects per-rank blocks at root (linear algorithm: root receives
// p−1 messages in rank order, as early MPICH did).
func (r *Rank) Gather(root int, myBytes int, allBytes []int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if r.ID == root {
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			r.Recv(src, tagGather)
		}
	} else {
		r.Send(root, tagGather, myBytes)
	}
	_ = allBytes
}

// Allgatherv gathers variable-size blocks to rank 0 and broadcasts the
// concatenation (gather+bcast, the MPICH-1 allgather).
func (r *Rank) Allgatherv(blockBytes []int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if len(blockBytes) != p {
		panic("mpi: Allgatherv needs one block size per rank")
	}
	total := 0
	for _, b := range blockBytes {
		total += b
	}
	t0 := r.Now()
	r.Gather(0, blockBytes[r.ID], blockBytes)
	r.Bcast(0, total)
	r.W.observeColl("allgatherv", r.Now()-t0)
}

// Alltoallv performs personalized all-to-all exchange: rank i sends
// sizes[i][j] bytes to rank j. Pairwise-exchange schedule (p−1 rounds,
// partner = rank XOR-free rotation), the classic MPICH implementation.
func (r *Rank) Alltoallv(sizes [][]int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if len(sizes) != p {
		panic("mpi: Alltoallv needs a p×p size matrix")
	}
	t0 := r.Now()
	for shift := 1; shift < p; shift++ {
		dst := (r.ID + shift) % p
		src := (r.ID - shift + p) % p
		r.Sendrecv(dst, tagAlltoall+shift, sizes[r.ID][dst], src, tagAlltoall+shift)
	}
	r.W.observeColl("alltoallv", r.Now()-t0)
}

// AlltoallvSparse is Alltoallv for mostly-zero size matrices (halo
// exchanges, atom migration, pencil transposes): it walks the same
// pairwise schedule but posts nothing in a round whose send AND receive
// are both empty, so the event count scales with the number of non-zero
// entries instead of p². The skip decision only reads the globally known
// size matrix, so partners always agree: whenever sizes[i][j] > 0, rank i
// posts the send in the round where rank j posts the matching receive.
func (r *Rank) AlltoallvSparse(sizes [][]int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if len(sizes) != p {
		panic("mpi: AlltoallvSparse needs a p×p size matrix")
	}
	t0 := r.Now()
	for shift := 1; shift < p; shift++ {
		dst := (r.ID + shift) % p
		src := (r.ID - shift + p) % p
		sendB := sizes[r.ID][dst]
		recvB := sizes[src][r.ID]
		switch {
		case sendB > 0 && recvB > 0:
			r.Sendrecv(dst, tagAlltoall+shift, sendB, src, tagAlltoall+shift)
		case sendB > 0:
			sreq := r.Isend(dst, tagAlltoall+shift, sendB)
			r.Wait(sreq)
		case recvB > 0:
			r.Recv(src, tagAlltoall+shift)
		}
	}
	r.W.observeColl("alltoallv", r.Now()-t0)
}

// AlltoallUniform is Alltoallv with the same block size to every partner.
func (r *Rank) AlltoallUniform(bytesPerPartner int) {
	p := r.Size()
	if p == 1 {
		return
	}
	for shift := 1; shift < p; shift++ {
		dst := (r.ID + shift) % p
		src := (r.ID - shift + p) % p
		r.Sendrecv(dst, tagAlltoall+shift, bytesPerPartner, src, tagAlltoall+shift)
	}
}
