package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("Intn bucket %d count %d far from uniform", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalScaled(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("scaled mean = %v", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(3)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("exponential mean = %v", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// The child stream must not equal a shifted copy of the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and split child", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(99)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(99)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed draw %d = %d, want %d", i, got, first[i])
		}
	}
}
