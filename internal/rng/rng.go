// Package rng provides a small, fast, deterministic random number generator
// (xoshiro256** seeded via SplitMix64). Every stochastic element of the
// study — synthetic structure generation, initial velocities, network jitter
// — draws from an explicitly seeded Source so that runs are exactly
// reproducible and independent streams never interfere.
package rng

import "math"

// Source is a xoshiro256** generator. The zero value is not valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using SplitMix64, which
// guarantees a well-mixed nonzero state for any seed including 0.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator state from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split returns a new Source whose stream is independent of r's, derived
// from r's state. Use it to hand child components their own streams.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed float64 with mean 0 and standard
// deviation 1, using the Box–Muller transform.
func (r *Source) Normal() float64 {
	// Avoid log(0) by mapping the first draw into (0, 1].
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalScaled returns a normal deviate with the given mean and stddev.
func (r *Source) NormalScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Exponential returns an exponentially distributed float64 with the given
// mean (> 0).
func (r *Source) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
