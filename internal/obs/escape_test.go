package obs

import (
	"strings"
	"sync"
	"testing"
)

// Table-driven 0.0.4 escaping: label values escape backslash, double
// quote and newline; HELP escapes backslash and newline only. Invalid
// UTF-8 bytes must pass through untouched — escaping iterates bytes, and
// a rune loop would rewrite them to U+FFFD, corrupting the series key.
func TestEscapeLabelTable(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"\\\"\n", `\\\"\n`},
		{`\n`, `\\n`},                    // a literal backslash-n, not a newline
		{"tab\tand\rCR", "tab\tand\rCR"}, // only the three 0.0.4 bytes escape
		{"\xff\xfe", "\xff\xfe"},         // invalid UTF-8 passes through
		{"a\xffb\"c", "a\xffb\\\"c"},     // mixed: escape applies around raw bytes
		{"é☃", "é☃"},                     // multi-byte runes untouched
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeHelpTable(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain help", "plain help"},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`quo"te stays`, `quo"te stays`}, // HELP leaves double quotes alone
		{"\xff\n", "\xff\\n"},            // invalid UTF-8 passes through
	}
	for _, c := range cases {
		if got := escapeHelp(c.in); got != c.want {
			t.Errorf("escapeHelp(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Separator-injection regression: under a plain k=v; encoding the label
// sets {a:"x", b:"y"} and {a:"x;b=y"} serialize identically and silently
// merge into one series. The length-prefixed signature must keep them
// distinct.
func TestSignatureSeparatorInjection(t *testing.T) {
	honest := []Label{L("a", "x"), L("b", "y")}
	forged := []Label{L("a", "x;b=y")}
	if signature(honest) == signature(forged) {
		t.Fatalf("signature collision: %q", signature(honest))
	}

	reg := NewRegistry()
	reg.Counter("repro_sig_total", "", honest...).Add(1)
	reg.Counter("repro_sig_total", "", forged...).Add(10)
	if got := reg.Value("repro_sig_total", honest...); got != 1 {
		t.Fatalf("honest series = %g, want 1 (merged with forged?)", got)
	}
	if got := reg.Value("repro_sig_total", forged...); got != 10 {
		t.Fatalf("forged series = %g, want 10", got)
	}

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`repro_sig_total{a="x",b="y"} 1`,
		`repro_sig_total{a="x;b=y"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// signature must be injective for values containing its own metacharacters
// in every position.
func TestSignatureAdversarialPairs(t *testing.T) {
	pairs := [][2][]Label{
		{{L("a", "x"), L("b", "y")}, {L("a", "x;b=y")}},
		{{L("a", "1:b")}, {L("a", "1"), L("b", "")}},
		{{L("k", "v;")}, {L("k", "v"), L("z", "")}},
		{{L("a", "="), L("b", ";")}, {L("a", "=;b=;")}},
		{{L("a", "")}, {L("a", ";")}},
	}
	for _, p := range pairs {
		if signature(p[0]) == signature(p[1]) {
			t.Errorf("signature(%v) == signature(%v) == %q", p[0], p[1], signature(p[0]))
		}
	}
}

// Snapshot and WriteProm racing concurrent writers must be safe (run
// under -race) and must observe internally consistent histograms.
func TestConcurrentSnapshotAndExposition(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := reg.Counter("repro_race_total", "", L("rank", string(rune('0'+n))))
			h := reg.Histogram("repro_race_seconds", "", ExpBuckets(0.001, 4, 6))
			g := reg.Gauge("repro_race_gauge", "")
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(j%7) * 0.01)
				g.Set(float64(j))
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		for _, p := range reg.Snapshot() {
			if p.Type != "histogram" {
				continue
			}
			// Cumulative buckets end at the sample count: a torn
			// histogram snapshot would break this invariant.
			if p.Cum[len(p.Cum)-1] != p.Count {
				t.Fatalf("torn histogram snapshot: +Inf cum %d != count %d",
					p.Cum[len(p.Cum)-1], p.Count)
			}
		}
		var b strings.Builder
		if err := reg.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Degenerate ExpBuckets inputs panic rather than returning an empty or
// non-increasing ladder that Histogram would then reject confusingly.
func TestExpBucketsDegeneratePanics(t *testing.T) {
	cases := []struct {
		name          string
		start, factor float64
		n             int
	}{
		{"n=0", 1, 2, 0},
		{"negative n", 1, 2, -3},
		{"factor=1", 1, 1, 4},
		{"factor<1", 1, 0.5, 4},
		{"start=0", 0, 2, 4},
		{"negative start", -1, 2, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExpBuckets(%g, %g, %d) did not panic", c.start, c.factor, c.n)
				}
			}()
			ExpBuckets(c.start, c.factor, c.n)
		})
	}
}
