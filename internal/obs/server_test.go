package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	for rank := 0; rank < 2; rank++ {
		rl := L("rank", fmt.Sprintf("%d", rank))
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "compute")).Add(2)
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "comm")).Add(1)
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "sync")).Add(1)
	}
	reg.Gauge("repro_run_step", "current MD step").Set(7)

	srv, err := NewServer("127.0.0.1:0", reg, ServeOptions{
		Status: func() []string { return []string{"status: testing"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `repro_phase_seconds_total{bucket="compute",phase="classic",rank="0"} 2`) {
		t.Fatalf("/metrics missing decomposition:\n%s", body)
	}

	code, body = get(t, base+"/runz")
	if code != 200 {
		t.Fatalf("/runz status %d", code)
	}
	for _, want := range []string{"status: testing", "uptime", "classic", "50.0%", "repro_run_step = 7"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/runz missing %q:\n%s", want, body)
		}
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_x_total", "").Add(4)
	m := NewManifest()
	m.Seeds["system"] = 1
	m.Config["steps"] = 10
	m.Attach(reg)

	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != "repro/obs/v1" {
		t.Fatalf("schema = %q", got.Schema)
	}
	if got.Seeds["system"] != 1 || got.NumCPU < 1 || got.GoVersion == "" {
		t.Fatalf("provenance not round-tripped: %+v", got)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Name != "repro_x_total" || got.Metrics[0].Value != 4 {
		t.Fatalf("metrics not round-tripped: %+v", got.Metrics)
	}
}
