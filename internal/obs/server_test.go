package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	for rank := 0; rank < 2; rank++ {
		rl := L("rank", fmt.Sprintf("%d", rank))
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "compute")).Add(2)
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "comm")).Add(1)
		reg.Counter("repro_phase_seconds_total", "", rl, L("phase", "classic"), L("bucket", "sync")).Add(1)
	}
	reg.Gauge("repro_run_step", "current MD step").Set(7)

	srv, err := NewServer("127.0.0.1:0", reg, ServeOptions{
		Status: func() []string { return []string{"status: testing"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `repro_phase_seconds_total{bucket="compute",phase="classic",rank="0"} 2`) {
		t.Fatalf("/metrics missing decomposition:\n%s", body)
	}

	code, body = get(t, base+"/runz")
	if code != 200 {
		t.Fatalf("/runz status %d", code)
	}
	for _, want := range []string{"status: testing", "uptime", "classic", "50.0%", "repro_run_step = 7"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/runz missing %q:\n%s", want, body)
		}
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// Close must wait for an in-flight scrape: a handler blocked mid-response
// when shutdown starts still delivers its full body before Close returns.
func TestServerCloseDrainsInflightScrape(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", reg, ServeOptions{
		Status: func() []string {
			close(entered)
			<-release // hold the scrape open across Close
			return []string{"status: drained"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		code int
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/runz")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{code: resp.StatusCode, body: string(body), err: err}
	}()

	<-entered // the scrape is inside the handler
	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- srv.Close(ctx)
	}()

	select {
	case err := <-closed:
		t.Fatalf("Close returned before the in-flight scrape finished (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// still draining, as it should be
	}
	close(release)

	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("scrape: %v", s.err)
	}
	if s.code != 200 || !strings.Contains(s.body, "status: drained") {
		t.Fatalf("drained scrape got %d %q", s.code, s.body)
	}
}

// An expired drain deadline must not hang Close: remaining connections
// are force-closed and the context error is surfaced.
func TestServerCloseTimeoutForceCloses(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", reg, ServeOptions{
		Status: func() []string {
			close(entered)
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/runz")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Close(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Close with expired deadline = %v, want context.DeadlineExceeded", err)
	}
	<-errc // the scrape goroutine observed the forced close and exited
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_x_total", "").Add(4)
	m := NewManifest()
	m.Seeds["system"] = 1
	m.Config["steps"] = 10
	m.Attach(reg)

	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != "repro/obs/v1" {
		t.Fatalf("schema = %q", got.Schema)
	}
	if got.Seeds["system"] != 1 || got.NumCPU < 1 || got.GoVersion == "" {
		t.Fatalf("provenance not round-tripped: %+v", got)
	}
	if len(got.Metrics) != 1 || got.Metrics[0].Name != "repro_x_total" || got.Metrics[0].Value != 4 {
		t.Fatalf("metrics not round-tripped: %+v", got.Metrics)
	}
}

// /profilez serves the attribution profile when a source is configured,
// 404s when it is not, and maps a source error to 503.
func TestServerProfilez(t *testing.T) {
	reg := NewRegistry()

	srv, err := NewServer("127.0.0.1:0", reg, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+srv.Addr()+"/profilez")
	srv.Close(context.Background())
	if code != 404 {
		t.Fatalf("/profilez without source: status %d, want 404", code)
	}
	if !strings.Contains(body, "no profile source") {
		t.Fatalf("/profilez 404 body %q", body)
	}

	var fail error
	payload := []byte(`{"schema":"repro/perf/v1","ranks":2}` + "\n")
	srv, err = NewServer("127.0.0.1:0", reg, ServeOptions{
		Profile: func() ([]byte, error) { return payload, fail },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/profilez")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/profilez status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/profilez content-type %q", ct)
	}
	if string(body2) != string(payload) {
		t.Fatalf("/profilez body %q, want %q", body2, payload)
	}
	if _, idx := get(t, base+"/"); !strings.Contains(idx, "/profilez") {
		t.Fatalf("index does not mention /profilez")
	}

	fail = fmt.Errorf("profiler not ready")
	code, body = get(t, base+"/profilez")
	if code != 503 {
		t.Fatalf("/profilez with failing source: status %d, want 503", code)
	}
	if !strings.Contains(body, "profiler not ready") {
		t.Fatalf("/profilez 503 body %q", body)
	}
}
