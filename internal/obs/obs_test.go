package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("repro_test_total", "a counter", L("k", "v"))
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	// Same (name, labels) returns the same handle.
	if c2 := reg.Counter("repro_test_total", "a counter", L("k", "v")); c2 != c {
		t.Fatal("re-request returned a different counter")
	}
	// Different labels: a new series.
	if c3 := reg.Counter("repro_test_total", "a counter", L("k", "w")); c3 == c {
		t.Fatal("different labels returned the same series")
	}

	g := reg.Gauge("repro_test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7", got)
	}
	if got := reg.Value("repro_test_gauge"); got != 7 {
		t.Fatalf("Value lookup = %g, want 7", got)
	}
	if got := reg.Value("repro_missing"); got != 0 {
		t.Fatalf("missing metric = %g, want 0", got)
	}
}

func TestNegativeCounterPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("repro_down_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta did not panic")
		}
	}()
	c.Add(-1)
}

func TestTypeRedeclarationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_typed_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("repro_typed_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	reg.Counter("repro bad name", "")
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("repro_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 0.01} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-0.5655) > 1e-12 {
		t.Fatalf("sum = %g, want 0.5655", sum)
	}
	// Cumulative: ≤0.001: 1; ≤0.01: 3 (0.01 lands in its own bound); ≤0.1: 4; +Inf: 5.
	want := []uint64{1, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("repro_conc_total", "")
			h := reg.Histogram("repro_conc_seconds", "", []float64{1, 2})
			g := reg.Gauge("repro_conc_gauge", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1.5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Value("repro_conc_total"); got != 8000 {
		t.Fatalf("concurrent counter = %g, want 8000", got)
	}
	_, _, count := reg.Histogram("repro_conc_seconds", "", []float64{1, 2}).Snapshot()
	if count != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", count)
	}
}

func TestPromExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_b_total", "second family").Add(2)
	reg.Counter("repro_a_total", "first family", L("rank", "1")).Add(1)
	reg.Counter("repro_a_total", "first family", L("rank", "0")).Add(3)
	reg.Gauge("repro_g", "a gauge").Set(-1.5)
	reg.Histogram("repro_h_seconds", "hist", []float64{0.1, 1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Families sorted by name, series sorted by labels.
	if !(strings.Index(out, "repro_a_total") < strings.Index(out, "repro_b_total")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if !(strings.Index(out, `rank="0"`) < strings.Index(out, `rank="1"`)) {
		t.Fatalf("series not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP repro_a_total first family",
		"# TYPE repro_a_total counter",
		`repro_a_total{rank="0"} 3`,
		"# TYPE repro_g gauge",
		"repro_g -1.5",
		`repro_h_seconds_bucket{le="0.1"} 0`,
		`repro_h_seconds_bucket{le="1"} 1`,
		`repro_h_seconds_bucket{le="+Inf"} 1`,
		"repro_h_seconds_sum 0.5",
		"repro_h_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Exposition-format escaping of label values (satellite: quotes,
// backslashes and newlines must round-trip safely).
func TestPromLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_esc_total", `help with \ backslash
and newline`, L("lbl", "quote\" back\\slash\nnewline")).Inc()
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lbl="quote\" back\\slash\nnewline"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP repro_esc_total help with \\ backslash\nand newline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	// Every exposition line must parse as comment or sample: no line may
	// start mid-value because of an unescaped newline.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "repro_") {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("repro_z_total", "", L("a", "2")).Inc()
	reg.Counter("repro_z_total", "", L("a", "1")).Inc()
	reg.Gauge("repro_a_gauge", "").Set(4)
	s1 := reg.Snapshot()
	s2 := reg.Snapshot()
	if len(s1) != 3 || len(s2) != 3 {
		t.Fatalf("snapshot lengths %d/%d, want 3", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Value != s2[i].Value {
			t.Fatalf("snapshot not deterministic: %v vs %v", s1[i], s2[i])
		}
	}
	if s1[0].Name != "repro_a_gauge" {
		t.Fatalf("snapshot not sorted by name: %v", s1[0])
	}
}
