// Package obs is the observability layer of the reproduction: a typed
// metrics registry (counters, gauges, fixed-bucket histograms), a
// hierarchical span recorder that subsumes internal/trace, and the sinks
// that make a run inspectable — Prometheus-style text exposition, a JSON
// run manifest with provenance, and an opt-in net/http introspection
// server.
//
// The paper's methodology *is* observability: it decomposes wall time per
// processor into computation / data transfer / control transfer and
// attributes it to the classic and PME phases. This package makes that
// decomposition a queryable property of every run instead of a one-off
// figure: the simulated MPI transport, the CMPI middleware, the parallel
// and sequential MD engines, the fault injector, the numeric guards and
// the chaos harness all publish into one Registry.
//
// Metric naming scheme (see DESIGN.md §11):
//
//	repro_<area>_<noun>_<unit>[_total]
//
// with the paper's decomposition carried on labels: phase="classic"|"pme"
// and bucket="compute"|"comm"|"sync" on repro_phase_seconds_total, plus a
// rank label on every per-processor series.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series. Values may be
// arbitrary strings; they are escaped at exposition time.
type Label struct {
	K, V string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

var nameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// metricType discriminates the registry's three series kinds.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// atomicFloat is a float64 updated with CAS loops so counters and gauges
// stay race-free without a lock on the hot path.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Counter is a monotonically non-decreasing value.
type Counter struct{ v atomicFloat }

// Add increases the counter by d; negative deltas panic (use a Gauge for
// values that can move both ways).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: negative counter delta %g", d))
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the value by d (either sign).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds; an implicit +Inf bucket always exists.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Snapshot returns the cumulative bucket counts (aligned with Bounds, plus
// the +Inf bucket), the sample sum and the sample count.
func (h *Histogram) Snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.count
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given growth factor — the usual latency/size ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// series is one labelled instance of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64
	series  map[string]*series
	order   []string // insertion-ordered signatures, sorted at exposition
}

// Registry is a set of named metric families. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
// Re-requesting an existing (name, labels) series returns the same
// handle; re-declaring a name with a different type panics — the registry
// is typed, exactly so that a counter can never silently become a gauge.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// signature serializes labels into a stable map key (sorted by key).
// Every field is length-prefixed: separator bytes alone are not injective
// when label VALUES may contain them — {a:"x", b:"y"} and
// {a:"x<sep>b<sep>y"} would collide and silently merge two series.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	for _, l := range ls {
		fmt.Fprintf(&b, "%d:%s=%d:%s;", len(l.K), l.K, len(l.V), l.V)
	}
	return b.String()
}

func validate(name string, labels []Label) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l.K) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l.K, name))
		}
	}
}

// lookup returns (creating on demand) the series for (name, labels),
// checking the type invariant.
func (r *Registry) lookup(name, help string, typ metricType, buckets []float64, labels []Label) *series {
	validate(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s redeclared as %s (was %s)", name, typ, f.typ))
	}
	sig := signature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{
				bounds: append([]float64(nil), f.buckets...),
				counts: make([]uint64, len(f.buckets)+1),
			}
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// Histogram returns the histogram series for (name, labels). The bucket
// bounds are fixed by the first declaration of the family; they must be
// strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing", name))
		}
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket", name))
	}
	return r.lookup(name, help, typeHistogram, buckets, labels).h
}

// Point is one sampled series in a registry snapshot. Histograms carry
// Sum/Count plus the cumulative Buckets aligned with Bounds.
type Point struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Sum    float64           `json:"sum,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Bounds []float64         `json:"bounds,omitempty"`
	Cum    []uint64          `json:"cumulative,omitempty"`
}

// Snapshot returns every series as a Point, sorted by (name, labels) so
// output is deterministic.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)

	var out []Point
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		sigs := append([]string(nil), f.order...)
		r.mu.Unlock()
		sort.Strings(sigs)
		for _, sig := range sigs {
			r.mu.Lock()
			s := f.series[sig]
			r.mu.Unlock()
			p := Point{Name: name, Type: f.typ.String()}
			if len(s.labels) > 0 {
				p.Labels = map[string]string{}
				for _, l := range s.labels {
					p.Labels[l.K] = l.V
				}
			}
			switch f.typ {
			case typeCounter:
				p.Value = s.c.Value()
			case typeGauge:
				p.Value = s.g.Value()
			case typeHistogram:
				p.Cum, p.Sum, p.Count = s.h.Snapshot()
				p.Bounds = s.h.Bounds()
				p.Value = p.Sum
			}
			out = append(out, p)
		}
	}
	return out
}

// Value returns the current value of the counter or gauge series matching
// name and labels exactly, or 0 when the series does not exist. Histograms
// report their sample sum.
func (r *Registry) Value(name string, labels ...Label) float64 {
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		r.mu.Unlock()
		return 0
	}
	s, ok := f.series[signature(labels)]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch {
	case s.c != nil:
		return s.c.Value()
	case s.g != nil:
		return s.g.Value()
	default:
		_, sum, _ := s.h.Snapshot()
		return sum
	}
}
