package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Server is the opt-in live introspection endpoint (-obs-addr on the cmd
// binaries). It serves:
//
//	/metrics      Prometheus text exposition of the registry
//	/runz         live human-readable run state: uptime, status lines,
//	              the per-rank classic/PME × compute/comm/sync table and
//	              every gauge (current step, phase, cache occupancy, …)
//	/debug/pprof  the standard Go profiling endpoints
//
// The server runs on its own goroutine and never blocks the simulation:
// handlers only read registry snapshots.
type Server struct {
	reg     *Registry
	status  func() []string        // optional extra /runz lines
	profile func() ([]byte, error) // optional /profilez payload
	ln      net.Listener
	srv     *http.Server
	start   time.Time
}

// ServeOptions tunes NewServer.
type ServeOptions struct {
	// Status, when non-nil, contributes run-specific lines to /runz
	// (e.g. "figure 5/13" or "step 42/500").
	Status func() []string

	// Profile, when non-nil, serves the run's bottleneck-attribution
	// profile (perf.Profile JSON) at /profilez. Called per request so a
	// live run can serve its latest analysis; an error becomes a 503.
	// When nil, /profilez is a 404.
	Profile func() ([]byte, error)
}

// NewServer binds addr (host:port; an empty host binds all interfaces,
// port 0 picks a free port) and starts serving. Addr() reports the bound
// address; Close shuts the listener down.
func NewServer(addr string, reg *Registry, opts ServeOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, status: opts.Status, profile: opts.Profile, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runz", s.handleRunz)
	mux.HandleFunc("/profilez", s.handleProfilez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully: it stops accepting new
// connections immediately, then waits for in-flight scrapes (/metrics,
// /runz, profile downloads) to complete before returning — a collector
// mid-scrape at exit gets its full exposition instead of a torn read.
// When ctx expires first the remaining connections are force-closed and
// ctx's error is returned. A finished program typically calls
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	srv.Close(ctx)
func (s *Server) Close(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
		return err
	}
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "repro observability endpoints:")
	fmt.Fprintln(w, "  /metrics      Prometheus text exposition")
	fmt.Fprintln(w, "  /runz         live run state")
	fmt.Fprintln(w, "  /profilez     bottleneck-attribution profile (when enabled)")
	fmt.Fprintln(w, "  /debug/pprof  Go profiling")
}

// handleProfilez serves the attribution profile JSON, when configured.
func (s *Server) handleProfilez(w http.ResponseWriter, _ *http.Request) {
	if s.profile == nil {
		http.Error(w, "no profile source configured (run with -profile-out)", http.StatusNotFound)
		return
	}
	buf, err := s.profile()
	if err != nil {
		http.Error(w, fmt.Sprintf("profile unavailable: %v", err), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

// phaseKey identifies one /runz decomposition row.
type phaseKey struct {
	rank  string
	phase string
}

func (s *Server) handleRunz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "uptime %s\n", time.Since(s.start).Round(time.Millisecond))
	if s.status != nil {
		for _, line := range s.status() {
			fmt.Fprintln(w, line)
		}
	}
	points := s.reg.Snapshot()

	// The paper's decomposition, pivoted rank × phase → bucket columns.
	rows := map[phaseKey]map[string]float64{}
	for _, p := range points {
		if p.Name != "repro_phase_seconds_total" {
			continue
		}
		k := phaseKey{rank: p.Labels["rank"], phase: p.Labels["phase"]}
		if rows[k] == nil {
			rows[k] = map[string]float64{}
		}
		rows[k][p.Labels["bucket"]] += p.Value
	}
	if len(rows) > 0 {
		keys := make([]phaseKey, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].rank != keys[j].rank {
				return keys[i].rank < keys[j].rank
			}
			return keys[i].phase < keys[j].phase
		})
		fmt.Fprintf(w, "\n%-6s %-8s %12s %12s %12s %12s %9s\n",
			"rank", "phase", "compute(s)", "comm(s)", "sync(s)", "total(s)", "overhead")
		for _, k := range keys {
			b := rows[k]
			total := b["compute"] + b["comm"] + b["sync"]
			overhead := 0.0
			if total > 0 {
				overhead = 100 * (b["comm"] + b["sync"]) / total
			}
			fmt.Fprintf(w, "%-6s %-8s %12.6f %12.6f %12.6f %12.6f %8.1f%%\n",
				k.rank, k.phase, b["compute"], b["comm"], b["sync"], total, overhead)
		}
	}

	// Every gauge, then every non-decomposition counter, as name{labels}=v.
	var lines []string
	for _, p := range points {
		if p.Name == "repro_phase_seconds_total" || p.Type == "histogram" {
			continue
		}
		var lbl []Label
		for k, v := range p.Labels {
			lbl = append(lbl, L(k, v))
		}
		lines = append(lines, fmt.Sprintf("%s%s = %g", p.Name, formatLabels(lbl), p.Value))
	}
	if len(lines) > 0 {
		fmt.Fprintln(w)
		sort.Strings(lines)
		fmt.Fprintln(w, strings.Join(lines, "\n"))
	}
}
