package obs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/trace"
)

// SpanRecord is one completed interval in the hierarchy. Parent indexes
// Recorder.Spans() (-1 for a root span); Depth is the nesting level at
// which the span opened.
type SpanRecord struct {
	Rank   int
	Kind   trace.Kind
	Label  string
	Start  float64
	End    float64
	Depth  int
	Parent int
	Open   bool // still running (only visible in mid-run snapshots)
}

// Duration returns End − Start.
func (s SpanRecord) Duration() float64 { return s.End - s.Start }

// Span is the handle of an open hierarchical span.
type Span struct {
	r     *Recorder
	id    int // index into Recorder.spans
	rank  int
	ended bool
}

// Recorder is the single sink every simulated layer emits into: the MPI
// transport's compute/send/recv/sync intervals, the CMPI middleware's
// synchronization fences, the parallel engine's step and phase spans, the
// sequential engine's durable/guarded runs, and the fault/guard/chaos
// overlays. It subsumes internal/trace — a *trace.Collector keeps the
// flat interval view (timeline rendering and the Chrome trace-event
// export are preserved as sinks) — and extends it with explicit
// parent/child nesting (Begin/End) and automatic per-(kind, rank) second
// and event counters in a Registry.
//
// All methods are safe for concurrent use. After Close, every Begin, End
// and Add is silently dropped (and counted — see Dropped), so late events
// from an unwinding simulation cannot corrupt a finished recording.
type Recorder struct {
	mu      sync.Mutex
	reg     *Registry
	col     trace.Collector
	spans   []SpanRecord
	open    map[int][]int // rank -> stack of open span ids
	closed  bool
	dropped int
}

// NewRecorder builds a recorder publishing its aggregate counters into
// reg. A nil reg gets a private registry (reachable via Registry()).
func NewRecorder(reg *Registry) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{reg: reg, open: map[int][]int{}}
}

// Registry returns the registry the recorder aggregates into.
func (r *Recorder) Registry() *Registry { return r.reg }

// Collector returns the flat interval view — the preserved
// internal/trace sink with timeline rendering and Chrome export.
func (r *Recorder) Collector() *trace.Collector { return &r.col }

// Dropped returns how many events were discarded after Close.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// account publishes one completed interval into the flat collector and
// the aggregate counters. Caller must not hold r.mu (counter handles are
// internally synchronized; the collector locks itself).
func (r *Recorder) account(rank int, kind trace.Kind, label string, start, end float64) {
	// end ≥ start is guaranteed by the callers (clamped), so Add cannot
	// fail.
	_ = r.col.Add(trace.Event{Rank: rank, Kind: kind, Label: label, Start: start, End: end})
	rl := L("rank", fmt.Sprintf("%d", rank))
	kl := L("kind", string(kind))
	r.reg.Counter("repro_trace_seconds_total",
		"virtual seconds covered by trace intervals, by kind and rank", kl, rl).Add(end - start)
	r.reg.Counter("repro_trace_events_total",
		"trace intervals recorded, by kind and rank", kl, rl).Inc()
}

// Add records a leaf interval (the trace.Sink contract). It nests under
// the rank's innermost open span. Negative intervals are rejected; adds
// after Close are dropped.
func (r *Recorder) Add(e trace.Event) error {
	if e.End < e.Start {
		return fmt.Errorf("obs: negative interval %+v", e)
	}
	r.mu.Lock()
	if r.closed {
		r.dropped++
		r.mu.Unlock()
		return nil
	}
	stack := r.open[e.Rank]
	parent := -1
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	r.spans = append(r.spans, SpanRecord{
		Rank: e.Rank, Kind: e.Kind, Label: e.Label,
		Start: e.Start, End: e.End, Depth: len(stack), Parent: parent,
	})
	r.mu.Unlock()
	r.account(e.Rank, e.Kind, e.Label, e.Start, e.End)
	return nil
}

// Begin opens a hierarchical span on rank at virtual time start. The
// returned handle must be closed with End; spans on one rank nest in
// LIFO order. After Close, Begin returns an inert handle.
func (r *Recorder) Begin(rank int, kind trace.Kind, label string, start float64) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped++
		return &Span{r: r, id: -1, rank: rank, ended: true}
	}
	stack := r.open[rank]
	parent := -1
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	id := len(r.spans)
	r.spans = append(r.spans, SpanRecord{
		Rank: rank, Kind: kind, Label: label,
		Start: start, End: start, Depth: len(stack), Parent: parent, Open: true,
	})
	r.open[rank] = append(stack, id)
	return &Span{r: r, id: id, rank: rank}
}

// End closes the span at virtual time end. Ending a span that is not the
// innermost open one implicitly ends every span nested inside it at the
// same time (out-of-order closes cannot corrupt the hierarchy); ending a
// span twice is a no-op; an end before the span's start is clamped to a
// zero-duration span.
func (s *Span) End(end float64) {
	r := s.r
	r.mu.Lock()
	if s.ended || r.closed || s.id < 0 {
		if r.closed && !s.ended {
			r.dropped++
			s.ended = true
		}
		r.mu.Unlock()
		return
	}
	s.ended = true
	stack := r.open[s.rank]
	at := -1
	for i, id := range stack {
		if id == s.id {
			at = i
			break
		}
	}
	if at < 0 {
		// Already force-closed by an out-of-order ancestor End.
		r.mu.Unlock()
		return
	}
	// Close s and everything opened inside it, innermost first.
	var done []SpanRecord
	for i := len(stack) - 1; i >= at; i-- {
		rec := &r.spans[stack[i]]
		e := end
		if e < rec.Start {
			e = rec.Start
		}
		rec.End = e
		rec.Open = false
		done = append(done, *rec)
	}
	r.open[s.rank] = stack[:at]
	r.mu.Unlock()
	for _, rec := range done {
		r.account(rec.Rank, rec.Kind, rec.Label, rec.Start, rec.End)
	}
}

// Close seals the recorder: still-open spans are discarded and every
// later Begin/End/Add is dropped. Closing twice is a no-op.
func (r *Recorder) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	// Drop unfinished spans rather than inventing end times for them.
	kept := r.spans[:0]
	remap := make([]int, len(r.spans))
	for i := range remap {
		remap[i] = -1
	}
	for i, sp := range r.spans {
		if sp.Open {
			continue
		}
		if sp.Parent >= 0 {
			sp.Parent = remap[sp.Parent]
		}
		remap[i] = len(kept)
		kept = append(kept, sp)
	}
	r.spans = kept
	r.open = map[int][]int{}
}

// Spans returns the recorded spans in recording order (mid-run snapshots
// include still-open spans with Open set; Close discards unfinished
// spans and compacts parent indices).
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// WriteChromeJSON emits the flat interval view in the Chrome trace-event
// array format — the export cmd/tracer always had, preserved as one of
// the recorder's sinks.
func (r *Recorder) WriteChromeJSON(w io.Writer) error { return r.col.WriteChromeJSON(w) }

// RenderTimeline writes the per-rank ASCII gantt of the flat view.
func (r *Recorder) RenderTimeline(w io.Writer, width int) error { return r.col.RenderTimeline(w, width) }

var _ trace.Sink = (*Recorder)(nil)
