package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// escapeLabel escapes a label value for the Prometheus text exposition
// format (0.0.4): backslash, double quote and newline. Iterates bytes,
// not runes — a rune loop rewrites invalid UTF-8 to U+FFFD, corrupting
// values that were never part of the escape set.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only — the
// format leaves double quotes alone outside label position.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...} with keys sorted; extra pairs (used for
// the histogram le label) are appended last.
func formatLabels(labels []Label, extra ...Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	ls = append(ls, extra...)
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.K + `="` + escapeLabel(l.V) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, sorted families, sorted series,
// escaped label values, cumulative histogram buckets with a +Inf bound.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		sigs := append([]string(nil), f.order...)
		help, typ := f.help, f.typ
		r.mu.Unlock()
		sort.Strings(sigs)

		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, sig := range sigs {
			r.mu.Lock()
			s := f.series[sig]
			r.mu.Unlock()
			switch typ {
			case typeCounter, typeGauge:
				var v float64
				if s.c != nil {
					v = s.c.Value()
				} else {
					v = s.g.Value()
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(s.labels), formatValue(v)); err != nil {
					return err
				}
			case typeHistogram:
				cum, sum, count := s.h.Snapshot()
				bounds := s.h.Bounds()
				for i, b := range bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						name, formatLabels(s.labels, L("le", formatValue(b))), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					name, formatLabels(s.labels, L("le", "+Inf")), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.labels), formatValue(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels), count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
