package obs

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Manifest is the JSON run-manifest: enough provenance to tell whether
// two runs are comparable (the regression gate refuses apples-to-oranges
// comparisons on exactly these fields) plus the final registry snapshot —
// the per-phase aggregates included.
type Manifest struct {
	Schema      string `json:"schema"` // "repro/obs/v1"
	GeneratedAt string `json:"generated_at"`
	Command     string `json:"command"` // argv the run was launched with

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	GitDescribe string            `json:"git_describe,omitempty"`
	Build       map[string]string `json:"build,omitempty"` // vcs.* settings from the embedded build info

	Seeds  map[string]uint64      `json:"seeds,omitempty"`
	Config map[string]interface{} `json:"config,omitempty"` // CLI knobs of the run

	Metrics []Point `json:"metrics,omitempty"` // final registry snapshot
}

// GitDescribe runs `git describe --always --dirty` in the current
// directory and returns the trimmed output, or "" when git or the
// repository is unavailable (manifests must work from exported trees).
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// NewManifest builds a manifest for the current process: command line,
// toolchain and host provenance, git describe and the binary's embedded
// VCS build settings.
func NewManifest() *Manifest {
	m := &Manifest{
		Schema:      "repro/obs/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Command:     strings.Join(os.Args, " "),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GitDescribe: GitDescribe(),
		Seeds:       map[string]uint64{},
		Config:      map[string]interface{}{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Build = map[string]string{}
		for _, s := range bi.Settings {
			if strings.HasPrefix(s.Key, "vcs") || s.Key == "-race" {
				m.Build[s.Key] = s.Value
			}
		}
	}
	return m
}

// Attach stores the registry's current snapshot in the manifest.
func (m *Manifest) Attach(reg *Registry) { m.Metrics = reg.Snapshot() }

// WriteFile marshals the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads a manifest written by WriteFile.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
