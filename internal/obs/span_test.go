package obs

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestSpanNesting(t *testing.T) {
	r := NewRecorder(nil)
	step := r.Begin(0, trace.KindPhase, "step 0", 0)
	classic := r.Begin(0, trace.KindPhase, "classic", 0)
	_ = r.Add(trace.Event{Rank: 0, Kind: trace.KindCompute, Label: "compute", Start: 0, End: 1})
	classic.End(1.5)
	pme := r.Begin(0, trace.KindPhase, "pme", 1.5)
	pme.End(2)
	step.End(2)
	r.Close()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byLabel := map[string]SpanRecord{}
	for _, s := range spans {
		byLabel[s.Label] = s
	}
	if byLabel["step 0"].Depth != 0 || byLabel["step 0"].Parent != -1 {
		t.Fatalf("step span not root: %+v", byLabel["step 0"])
	}
	if byLabel["classic"].Depth != 1 {
		t.Fatalf("classic span depth = %d, want 1", byLabel["classic"].Depth)
	}
	if spans[byLabel["classic"].Parent].Label != "step 0" {
		t.Fatalf("classic parent = %+v", spans[byLabel["classic"].Parent])
	}
	if byLabel["compute"].Depth != 2 || spans[byLabel["compute"].Parent].Label != "classic" {
		t.Fatalf("leaf event not nested under classic: %+v", byLabel["compute"])
	}

	// Aggregate counters saw every interval.
	reg := r.Registry()
	if got := reg.Value("repro_trace_events_total", L("kind", "phase"), L("rank", "0")); got != 3 {
		t.Fatalf("phase events = %g, want 3", got)
	}
	if got := reg.Value("repro_trace_seconds_total", L("kind", "compute"), L("rank", "0")); got != 1 {
		t.Fatalf("compute seconds = %g, want 1", got)
	}
}

// Zero-duration spans are legal and recorded.
func TestZeroDurationSpan(t *testing.T) {
	r := NewRecorder(nil)
	s := r.Begin(1, trace.KindSync, "instant", 5)
	s.End(5)
	// End before start clamps to zero duration instead of going negative.
	s2 := r.Begin(1, trace.KindSync, "clamped", 7)
	s2.End(6)
	r.Close()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Duration() != 0 {
			t.Fatalf("span %q duration = %g, want 0", sp.Label, sp.Duration())
		}
	}
	if spans[1].Start != 7 || spans[1].End != 7 {
		t.Fatalf("clamped span = [%g, %g], want [7, 7]", spans[1].Start, spans[1].End)
	}
}

// Out-of-order closes: ending an outer span force-ends its still-open
// children at the same time; the child's own later End is a no-op.
func TestOutOfOrderClose(t *testing.T) {
	r := NewRecorder(nil)
	outer := r.Begin(0, trace.KindPhase, "outer", 0)
	inner := r.Begin(0, trace.KindPhase, "inner", 1)
	outer.End(3) // closes inner implicitly at 3
	inner.End(9) // stale close: must be ignored
	r.Close()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	for _, sp := range spans {
		if sp.End != 3 {
			t.Fatalf("span %q end = %g, want 3", sp.Label, sp.End)
		}
	}
	// Double-End is also a no-op.
	if got := r.Registry().Value("repro_trace_events_total", L("kind", "phase"), L("rank", "0")); got != 2 {
		t.Fatalf("phase events = %g, want 2 (double close must not double count)", got)
	}
}

// Events after Close are dropped, not recorded and not fatal.
func TestEmitAfterClose(t *testing.T) {
	r := NewRecorder(nil)
	open := r.Begin(0, trace.KindCompute, "unfinished", 0)
	r.Close()

	if err := r.Add(trace.Event{Rank: 0, Kind: trace.KindCompute, Label: "late", Start: 1, End: 2}); err != nil {
		t.Fatalf("Add after Close errored: %v", err)
	}
	late := r.Begin(0, trace.KindCompute, "late-span", 1)
	late.End(2)
	open.End(9) // the span Close discarded

	if got := len(r.Spans()); got != 0 {
		t.Fatalf("spans after close = %d, want 0 (unfinished span discarded, late events dropped)", got)
	}
	if r.Dropped() < 2 {
		t.Fatalf("dropped = %d, want >= 2", r.Dropped())
	}
	if got := r.Registry().Value("repro_trace_events_total", L("kind", "compute"), L("rank", "0")); got != 0 {
		t.Fatalf("late events leaked into counters: %g", got)
	}
	if r.Collector().Len() != 0 {
		t.Fatal("late events leaked into the flat collector")
	}
}

func TestRecorderIsTraceSink(t *testing.T) {
	var sink trace.Sink = NewRecorder(nil)
	if err := sink.Add(trace.Event{Rank: 0, Kind: trace.KindSend, Label: "send", Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Add(trace.Event{Rank: 0, Kind: trace.KindSend, Start: 2, End: 1}); err == nil {
		t.Fatal("negative interval accepted")
	}
}

// The Chrome export — the sink cmd/tracer always had — survives through
// the recorder.
func TestRecorderChromeExport(t *testing.T) {
	r := NewRecorder(nil)
	_ = r.Add(trace.Event{Rank: 2, Kind: trace.KindRecv, Label: "recv", Start: 0.5, End: 1})
	var b strings.Builder
	if err := r.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"recv"`, `"cat":"recv"`, `"tid":2`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("chrome export missing %q: %s", want, b.String())
		}
	}
}

func TestCloseTwice(t *testing.T) {
	r := NewRecorder(nil)
	_ = r.Add(trace.Event{Rank: 0, Kind: trace.KindSync, Label: "s", Start: 0, End: 1})
	r.Close()
	r.Close()
	if got := len(r.Spans()); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
}
