package units

import (
	"math"
	"testing"
)

func TestAKMARoundTrip(t *testing.T) {
	for _, fs := range []float64{0, 1, 2, 48.88821, 1000} {
		if got := AKMAToFS(FSToAKMA(fs)); math.Abs(got-fs) > 1e-12*math.Max(1, fs) {
			t.Fatalf("round trip %v -> %v", fs, got)
		}
	}
}

func TestOneAKMAUnit(t *testing.T) {
	if got := FSToAKMA(AKMATimeFS); math.Abs(got-1) > 1e-15 {
		t.Fatalf("FSToAKMA(AKMATimeFS) = %v, want 1", got)
	}
}

func TestKineticTemperature(t *testing.T) {
	// At 300 K, N atoms have <KE> = (3N/2) kT.
	const n = 100
	ke := 1.5 * float64(3*n) / 3 * Boltzmann * 300 // (3N/2) kT with dof = 3N
	got := KineticTemperature(ke, 3*n)
	if math.Abs(got-300) > 1e-9 {
		t.Fatalf("KineticTemperature = %v, want 300", got)
	}
	if KineticTemperature(10, 0) != 0 {
		t.Fatal("zero dof should give temperature 0")
	}
}

func TestThermalVelocity(t *testing.T) {
	// Heavier particles move slower: v ∝ 1/sqrt(m).
	v1 := ThermalVelocity(1, 300)
	v16 := ThermalVelocity(16, 300)
	if math.Abs(v1/v16-4) > 1e-12 {
		t.Fatalf("v(1)/v(16) = %v, want 4", v1/v16)
	}
	if ThermalVelocity(0, 300) != 0 {
		t.Fatal("zero mass should give zero velocity")
	}
	// (1/2) m v² per dof should equal kT/2 in expectation when v = sqrt(kT/m).
	v := ThermalVelocity(12, 250)
	if e := 0.5 * 12 * v * v; math.Abs(e-0.5*Boltzmann*250) > 1e-15 {
		t.Fatalf("energy per dof = %v", e)
	}
}

func TestCoulombConstMagnitude(t *testing.T) {
	// Two unit charges at 1 Å should repel with ≈332 kcal/mol: a sanity
	// anchor that the constant is in AKMA units, not SI.
	if CoulombConst < 331 || CoulombConst > 333 {
		t.Fatalf("CoulombConst = %v out of expected AKMA range", CoulombConst)
	}
}
