// Package units defines the physical constants and unit conventions used
// throughout the MD engine.
//
// The engine works in the AKMA unit system used by CHARMM:
//
//	length   Ångström (Å)
//	energy   kcal/mol
//	mass     atomic mass unit (amu)
//	charge   elementary charge (e)
//	time     AKMA time unit (≈ 48.888 fs), so that the kinetic energy
//	         (1/2) m v² comes out directly in kcal/mol
//
// Simulated wall-clock durations (the performance model) are ordinary
// time.Duration values and have nothing to do with AKMA time.
package units

import "math"

const (
	// CoulombConst is the Coulomb constant in kcal·Å/(mol·e²):
	// E = CoulombConst · q1·q2 / r. This is CHARMM's CCELEC.
	CoulombConst = 332.0716

	// Boltzmann is k_B in kcal/(mol·K).
	Boltzmann = 0.001987191

	// AKMATimeFS is one AKMA time unit expressed in femtoseconds.
	AKMATimeFS = 48.88821

	// DefaultTimestepFS is the MD timestep in femtoseconds used by the
	// paper's measurement runs (standard CHARMM dynamics with SHAKE off).
	DefaultTimestepFS = 1.0
)

// FSToAKMA converts a duration in femtoseconds to AKMA time units.
func FSToAKMA(fs float64) float64 { return fs / AKMATimeFS }

// AKMAToFS converts a duration in AKMA time units to femtoseconds.
func AKMAToFS(akma float64) float64 { return akma * AKMATimeFS }

// KineticTemperature returns the instantaneous temperature in Kelvin for a
// system with the given kinetic energy (kcal/mol) and number of degrees of
// freedom.
func KineticTemperature(kinetic float64, dof int) float64 {
	if dof <= 0 {
		return 0
	}
	return 2 * kinetic / (float64(dof) * Boltzmann)
}

// ThermalVelocity returns the standard deviation of one velocity component
// (Å per AKMA time) for mass m (amu) at temperature T (K), i.e. sqrt(kT/m).
func ThermalVelocity(mass, temperature float64) float64 {
	if mass <= 0 {
		return 0
	}
	return math.Sqrt(Boltzmann * temperature / mass)
}
