package md

import (
	"fmt"
	"io"
	"time"

	"repro/internal/topol"
)

// The neighbour-list skin (ListCutoff − CutOff) is the classic serial
// performance lever: a wide skin makes the pair list longer (more pair
// evaluations per step) but keeps it valid for more steps (fewer O(N)
// cell-list rebuilds); a narrow skin is the reverse. The optimum depends
// on the host, the system density and the integration temperature, so it
// cannot be a constant — TuneSkin measures it.
//
// Physics safety: the skin only controls which pairs are *listed*; the
// kernel re-checks the true cutoff for every pair, so energies and forces
// are identical for every admissible skin. Only the rebuild cadence of
// the work counters and the host wall time change. The *choice* made here
// is wall-clock-measured and therefore host-dependent; determinism is
// restored by recording the chosen skin (run manifest, obs gauge) and
// replaying it with a pinned -skin, which is byte-identical to the tuned
// run by construction.

// TuneOptions configures TuneSkin.
type TuneOptions struct {
	// Candidates are the skin widths (Å) to trial. Empty means the
	// default ladder {0.5, 1, 1.5, 2, 2.5, 3}. Candidates that would push
	// ListCutoff past the box's minimum-image limit are skipped.
	Candidates []float64
	// Window is the number of timed steps per candidate (default 20).
	Window int
	// Log, when non-nil, receives a one-line summary per trial.
	Log io.Writer
}

// SkinTrial is one measured candidate.
type SkinTrial struct {
	Skin      float64 // Å
	MsPerStep float64 // amortized host milliseconds per step over the window
	Rebuilds  int     // neighbour-list rebuilds during the window
	Pairs     int     // pair-list length after the window
}

// SkinTuning is the result of TuneSkin.
type SkinTuning struct {
	Chosen float64     // the argmin skin (ties break toward the narrower skin)
	Window int         // steps per trial actually used
	Trials []SkinTrial // every measured candidate, in candidate order
}

// Apply returns cfg with the chosen skin pinned
// (ListCutoff = CutOff + Chosen).
func (t SkinTuning) Apply(cfg Config) Config {
	cfg.FF.ListCutoff = cfg.FF.CutOff + t.Chosen
	return cfg
}

// TuneSkin measures the amortized step cost of each candidate skin on a
// throwaway engine (sys is not mutated) and picks the fastest. Each trial
// builds a fresh engine from the same initial state, evaluates forces
// once to pay the first list build outside the timed window, then times
// Window steps. If every candidate is inadmissible for the box, the
// configured skin is kept.
func TuneSkin(sys *topol.System, cfg Config, opt TuneOptions) SkinTuning {
	cands := opt.Candidates
	if len(cands) == 0 {
		cands = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	}
	window := opt.Window
	if window <= 0 {
		window = 20
	}
	out := SkinTuning{Chosen: cfg.FF.ListCutoff - cfg.FF.CutOff, Window: window}
	maxCut := sys.Box.MaxCutoff()
	best := -1
	for _, skin := range cands {
		if skin < 0 || cfg.FF.CutOff+skin > maxCut {
			continue
		}
		c := cfg
		c.FF.ListCutoff = c.FF.CutOff + skin
		e := NewEngine(sys, c)
		e.ComputeForces(nil, nil)
		rebuilds := 0
		t0 := time.Now()
		for s := 0; s < window; s++ {
			e.Step(nil, nil)
			if e.ListWasRebuilt() {
				rebuilds++
			}
		}
		ms := time.Since(t0).Seconds() * 1000 / float64(window)
		out.Trials = append(out.Trials, SkinTrial{
			Skin: skin, MsPerStep: ms, Rebuilds: rebuilds, Pairs: e.PairCount(),
		})
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "tune-skin: skin %.1f Å  %.3f ms/step  %d rebuilds  %d pairs\n",
				skin, ms, rebuilds, e.PairCount())
		}
		if best < 0 || ms < out.Trials[best].MsPerStep {
			best = len(out.Trials) - 1
		}
	}
	if best >= 0 {
		out.Chosen = out.Trials[best].Skin
	}
	return out
}
