package md

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vec"
)

// tinyCheckpoint builds a fixed 4-atom, 2-rank checkpoint with
// hand-picked values (no RNG, no engine) for format-level tests.
func tinyCheckpoint() (*Checkpoint, DurableMeta) {
	cp := &Checkpoint{N: 4, TimestepFS: 1.5}
	for i := 0; i < 4; i++ {
		f := float64(i)
		cp.Pos = append(cp.Pos, vec.New(f, f+0.25, f+0.5))
		cp.Vel = append(cp.Vel, vec.New(-f, 0.125*f, 2*f))
		cp.Frc = append(cp.Frc, vec.New(f*f, -0.5, f/3))
		cp.ListOrigin = append(cp.ListOrigin, vec.New(f, f+0.2, f+0.4))
	}
	meta := DurableMeta{
		Step: 42,
		Wall: 12.75,
		RankAcct: [][4]float64{
			{1, 2, 3, 0.5},
			{1.25, 1.75, 3.5, 0},
		},
	}
	return cp, meta
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp, meta := tinyCheckpoint()
	path := filepath.Join(dir, "rt.mdc")
	if err := WriteDurable(path, cp, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Errorf("checkpoint changed across the round trip:\ngot  %+v\nwant %+v", got, cp)
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Errorf("meta changed across the round trip: got %+v want %+v", gotMeta, meta)
	}

	// Without a list origin the optional section is simply absent.
	cp2 := *cp
	cp2.ListOrigin = nil
	path2 := filepath.Join(dir, "rt2.mdc")
	if err := WriteDurable(path2, &cp2, meta); err != nil {
		t.Fatal(err)
	}
	got2, _, err := ReadDurable(path2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.ListOrigin != nil {
		t.Errorf("origin-free checkpoint read back with origin %v", got2.ListOrigin)
	}
}

// TestDurableGoldenFile pins the on-disk encoding byte for byte. If this
// fails because the format deliberately changed, bump durableVersion,
// regenerate with -update-golden, and teach ReadDurable the old version.
func TestDurableGoldenFile(t *testing.T) {
	cp, meta := tinyCheckpoint()
	enc := encodeDurable(cp, meta)
	golden := filepath.Join("testdata", "golden.mdc")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding diverged from golden file (len %d vs %d) — format change without a version bump?",
			len(enc), len(want))
	}
	gcp, gmeta, err := ReadDurable(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gcp, cp) || !reflect.DeepEqual(gmeta, meta) {
		t.Error("golden file decodes to different state")
	}
}

func TestDurableDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cp, meta := tinyCheckpoint()
	path := filepath.Join(dir, "c.mdc")
	if err := WriteDurable(path, cp, meta); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"wrong version", func(b []byte) []byte { b[4] ^= 0xFF; return b }},
		{"header bit flip", func(b []byte) []byte { b[16] ^= 0x01; return b }},
		{"section bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b }},
		{"origin bit flip", func(b []byte) []byte { b[len(b)-8] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-13] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAB) }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := ReadDurable(path)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("want CorruptError, got %v", err)
			}
		})
	}
}

func TestDurableLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	cp, meta := tinyCheckpoint()
	if err := WriteDurable(filepath.Join(dir, "a.mdc"), cp, meta); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("want exactly the checkpoint file, got %d entries", len(entries))
	}
}

func TestRingFallsBackPastCorruption(t *testing.T) {
	ring := &CheckpointRing{Dir: filepath.Join(t.TempDir(), "ring")}
	cp, meta := tinyCheckpoint()
	for _, step := range []int{10, 20, 30} {
		m := meta
		m.Step = step
		if err := ring.Save(cp, m); err != nil {
			t.Fatal(err)
		}
	}

	// Newest valid wins when everything is intact.
	_, m, skipped, err := ring.LoadNewest()
	if err != nil || m.Step != 30 || skipped != 0 {
		t.Fatalf("intact ring: step %d skipped %d err %v", m.Step, skipped, err)
	}

	// A bit flip in the newest file costs one checkpoint, not the run.
	buf, err := os.ReadFile(ring.Path(30))
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(ring.Path(30), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, m, skipped, err = ring.LoadNewest()
	if err != nil || m.Step != 20 || skipped != 1 {
		t.Fatalf("corrupt newest: step %d skipped %d err %v", m.Step, skipped, err)
	}

	// Nothing valid at all is ErrNoCheckpoint.
	for _, step := range []int{10, 20} {
		if err := os.Truncate(ring.Path(step), 3); err != nil {
			t.Fatal(err)
		}
	}
	_, _, skipped, err = ring.LoadNewest()
	if !errors.Is(err, ErrNoCheckpoint) || skipped != 3 {
		t.Fatalf("all corrupt: skipped %d err %v", skipped, err)
	}

	// An absent directory is also just "no checkpoint".
	empty := &CheckpointRing{Dir: filepath.Join(t.TempDir(), "never-created")}
	if _, _, _, err := empty.LoadNewest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("absent dir: want ErrNoCheckpoint, got %v", err)
	}
}

func TestRingPrunesToKeep(t *testing.T) {
	ring := &CheckpointRing{Dir: filepath.Join(t.TempDir(), "ring"), Keep: 2}
	cp, meta := tinyCheckpoint()
	for _, step := range []int{1, 2, 3, 4} {
		m := meta
		m.Step = step
		if err := ring.Save(cp, m); err != nil {
			t.Fatal(err)
		}
	}
	steps, err := ring.steps()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int{3, 4}) {
		t.Errorf("ring holds %v, want [3 4]", steps)
	}
}

func TestProgressRoundTrip(t *testing.T) {
	ring := &CheckpointRing{Dir: filepath.Join(t.TempDir(), "ring")}
	p := Progress{
		Step:            17,
		Wall:            3.25,
		RankAcct:        [][4]float64{{1, 0.5, 0.25, 0}, {2, 1, 0.5, 0.125}},
		ConsumedCrashes: []int{0, 3},
	}
	if err := ring.MarkProgress(p); err != nil {
		t.Fatal(err)
	}
	got, err := ring.ReadProgress()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("progress changed across the round trip: got %+v want %+v", got, p)
	}

	// Any damage degrades to ErrNoProgress, never a bad restart.
	path := filepath.Join(ring.Dir, "progress.mdp")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-2] ^= 0x10
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.ReadProgress(); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("corrupt progress: want ErrNoProgress, got %v", err)
	}
	missing := &CheckpointRing{Dir: t.TempDir()}
	if _, err := missing.ReadProgress(); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("missing progress: want ErrNoProgress, got %v", err)
	}
}

// TestRestartBitwiseIdentical is the sequential restart-equivalence
// property the whole durable layer exists for: run A steps 1..m, durably
// checkpoint at k, restore into a fresh engine, and steps k+1..m must be
// bitwise identical — including across a Verlet-list rebuild boundary,
// which is why the checkpoint carries the list origin.
func TestRestartBitwiseIdentical(t *testing.T) {
	const k, m = 3, 8
	mk := func() *Engine {
		sys := waterBox(27, 12, 7)
		cfg := smallCutoffs(DefaultConfig())
		cfg.Temperature = 250
		cfg.Seed = 7
		return NewEngine(sys, cfg)
	}
	ref := mk()
	ref.ComputeForces(nil, nil)
	var refEnergies []EnergyReport
	var cp *Checkpoint
	dir := t.TempDir()
	ring := &CheckpointRing{Dir: dir}
	for s := 1; s <= m; s++ {
		refEnergies = append(refEnergies, ref.Step(nil, nil))
		if s == k {
			meta := DurableMeta{Step: s, RankAcct: make([][4]float64, 1)}
			if err := ring.Save(ref.Snapshot(), meta); err != nil {
				t.Fatal(err)
			}
		}
	}

	resumed := mk()
	var meta DurableMeta
	var err error
	cp, meta, _, err = ring.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != k {
		t.Fatalf("resumed at step %d, want %d", meta.Step, k)
	}
	if cp.ListOrigin == nil {
		t.Fatal("checkpoint carries no list origin — restart cannot be bitwise")
	}
	if err := resumed.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for s := k + 1; s <= m; s++ {
		rep := resumed.Step(nil, nil)
		if rep != refEnergies[s-1] {
			t.Fatalf("step %d: resumed energies differ from reference\ngot  %+v\nwant %+v",
				s, rep, refEnergies[s-1])
		}
	}
	for i, p := range ref.Pos {
		if resumed.Pos[i] != p {
			t.Fatalf("atom %d: final position differs after restart", i)
		}
	}
}
