package md

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/vec"
)

// Checkpoint is the serializable dynamic state of an Engine: everything
// needed to continue a deterministic trajectory (positions, velocities,
// forces and the step geometry). The topology and configuration are NOT
// stored — restart requires the same System and Config the checkpoint was
// taken with, which the caller owns.
type Checkpoint struct {
	N          int
	TimestepFS float64
	Pos        []vec.V
	Vel        []vec.V
	Frc        []vec.V

	// ListOrigin is the Verlet-list build origin at checkpoint time (nil
	// if no list was built yet). Restoring it makes a restarted
	// trajectory bitwise-identical to the uninterrupted one: the restart
	// reuses the pair list built at these positions instead of rebuilding
	// at the restored positions, which would legitimately reorder
	// floating-point sums.
	ListOrigin []vec.V
}

// Snapshot captures the engine's dynamic state as an in-memory checkpoint
// with its own backing arrays (safe to hold across further integration).
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		N:          e.Sys.N(),
		TimestepFS: e.Cfg.TimestepFS,
		Pos:        make([]vec.V, len(e.Pos)),
		Vel:        make([]vec.V, len(e.Vel)),
		Frc:        make([]vec.V, len(e.Frc)),
	}
	copy(cp.Pos, e.Pos)
	copy(cp.Vel, e.Vel)
	copy(cp.Frc, e.Frc)
	if e.listOrigin != nil {
		cp.ListOrigin = append([]vec.V(nil), e.listOrigin...)
	}
	return cp
}

// Restore rewinds the engine to an in-memory checkpoint. The checkpoint
// must come from an engine over a system with the same atom count and the
// same timestep; anything else is an error, not a silent
// reinterpretation. When the checkpoint carries a list origin the pair
// list is rebuilt at those positions, reproducing the interrupted run's
// list state exactly; otherwise the list is invalidated so the next
// evaluation rebuilds it.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp.N != e.Sys.N() {
		return fmt.Errorf("md: checkpoint has %d atoms, engine has %d", cp.N, e.Sys.N())
	}
	if cp.TimestepFS != e.Cfg.TimestepFS {
		return fmt.Errorf("md: checkpoint timestep %g fs, engine %g fs", cp.TimestepFS, e.Cfg.TimestepFS)
	}
	if len(cp.Pos) != cp.N || len(cp.Vel) != cp.N || len(cp.Frc) != cp.N {
		return fmt.Errorf("md: corrupt checkpoint (array lengths %d/%d/%d for N=%d)",
			len(cp.Pos), len(cp.Vel), len(cp.Frc), cp.N)
	}
	if len(cp.ListOrigin) != 0 && len(cp.ListOrigin) != cp.N {
		return fmt.Errorf("md: corrupt checkpoint (list origin has %d atoms for N=%d)",
			len(cp.ListOrigin), cp.N)
	}
	copy(e.Pos, cp.Pos)
	copy(e.Vel, cp.Vel)
	copy(e.Frc, cp.Frc)
	if len(cp.ListOrigin) == cp.N {
		if e.listOrigin == nil {
			e.listOrigin = make([]vec.V, cp.N)
		}
		copy(e.listOrigin, cp.ListOrigin)
		if e.lister == nil {
			e.lister = e.FF.NewPairLister()
		}
		e.pairs = e.lister.Build(e.listOrigin, nil)
	} else {
		e.listOrigin = nil // force a list rebuild at the next evaluation
	}
	return nil
}

// WriteCheckpoint serializes the engine's dynamic state with encoding/gob.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	cp := e.Snapshot()
	return gob.NewEncoder(w).Encode(cp)
}

// ReadCheckpoint restores the engine's dynamic state from a gob stream
// written by WriteCheckpoint, with the same validation as Restore.
func (e *Engine) ReadCheckpoint(r io.Reader) error {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("md: reading checkpoint: %w", err)
	}
	return e.Restore(&cp)
}
