package md

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/vec"
)

// Checkpoint is the serializable dynamic state of an Engine: everything
// needed to continue a deterministic trajectory (positions, velocities,
// forces and the step geometry). The topology and configuration are NOT
// stored — restart requires the same System and Config the checkpoint was
// taken with, which the caller owns.
type Checkpoint struct {
	N          int
	TimestepFS float64
	Pos        []vec.V
	Vel        []vec.V
	Frc        []vec.V
}

// Snapshot captures the engine's dynamic state as an in-memory checkpoint
// with its own backing arrays (safe to hold across further integration).
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		N:          e.Sys.N(),
		TimestepFS: e.Cfg.TimestepFS,
		Pos:        make([]vec.V, len(e.Pos)),
		Vel:        make([]vec.V, len(e.Vel)),
		Frc:        make([]vec.V, len(e.Frc)),
	}
	copy(cp.Pos, e.Pos)
	copy(cp.Vel, e.Vel)
	copy(cp.Frc, e.Frc)
	return cp
}

// Restore rewinds the engine to an in-memory checkpoint. The checkpoint
// must come from an engine over a system with the same atom count and the
// same timestep; anything else is an error, not a silent
// reinterpretation. The neighbour list is invalidated so the next
// evaluation rebuilds it.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp.N != e.Sys.N() {
		return fmt.Errorf("md: checkpoint has %d atoms, engine has %d", cp.N, e.Sys.N())
	}
	if cp.TimestepFS != e.Cfg.TimestepFS {
		return fmt.Errorf("md: checkpoint timestep %g fs, engine %g fs", cp.TimestepFS, e.Cfg.TimestepFS)
	}
	if len(cp.Pos) != cp.N || len(cp.Vel) != cp.N || len(cp.Frc) != cp.N {
		return fmt.Errorf("md: corrupt checkpoint (array lengths %d/%d/%d for N=%d)",
			len(cp.Pos), len(cp.Vel), len(cp.Frc), cp.N)
	}
	copy(e.Pos, cp.Pos)
	copy(e.Vel, cp.Vel)
	copy(e.Frc, cp.Frc)
	e.listOrigin = nil // force a list rebuild at the next evaluation
	return nil
}

// WriteCheckpoint serializes the engine's dynamic state with encoding/gob.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	cp := e.Snapshot()
	return gob.NewEncoder(w).Encode(cp)
}

// ReadCheckpoint restores the engine's dynamic state from a gob stream
// written by WriteCheckpoint, with the same validation as Restore.
func (e *Engine) ReadCheckpoint(r io.Reader) error {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("md: reading checkpoint: %w", err)
	}
	return e.Restore(&cp)
}
