package md

import (
	"math"
	"runtime"
	"testing"
)

// pooledConfig returns a PME config with KernelWorkers set.
func pooledConfig(workers int) Config {
	cfg := smallCutoffs(PMEDefaultConfig())
	cfg.Temperature = 0
	cfg.PME = PMEConfig{Beta: 0.45, K1: 24, K2: 24, K3: 24, Order: 4}
	cfg.FF.Beta = 0.45
	cfg.KernelWorkers = workers
	return cfg
}

func runSteps(t *testing.T, cfg Config, steps int) ([]EnergyReport, []float64) {
	t.Helper()
	sys := waterBox(27, 12, 11)
	e := NewEngine(sys, cfg)
	reports := e.Run(steps, nil, nil)
	flat := make([]float64, 0, 3*len(e.Pos))
	for _, p := range e.Pos {
		flat = append(flat, p.X, p.Y, p.Z)
	}
	return reports, flat
}

// The determinism contract of the pooled kernels at engine level: the
// whole trajectory is byte-identical at every worker count ≥ 1.
func TestEngineBitwiseStableAcrossKernelWorkers(t *testing.T) {
	const steps = 5
	wantR, wantP := runSteps(t, pooledConfig(1), steps)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0) + 1} {
		r, p := runSteps(t, pooledConfig(workers), steps)
		for i := range r {
			if r[i] != wantR[i] {
				t.Fatalf("workers=%d step %d: report %+v != 1-worker %+v", workers, i, r[i], wantR[i])
			}
		}
		for i := range p {
			if p[i] != wantP[i] {
				t.Fatalf("workers=%d: coordinate %d differs bitwise", workers, i)
			}
		}
	}
}

// KernelWorkers=0 keeps the legacy serial bytes; the pooled reduction is
// a regrouping of the same arithmetic, so it must agree to roundoff.
func TestEnginePooledMatchesSerialToRoundoff(t *testing.T) {
	const steps = 5
	serialR, serialP := runSteps(t, pooledConfig(0), steps)
	pooledR, pooledP := runSteps(t, pooledConfig(2), steps)
	for i := range serialR {
		s, p := serialR[i].Total(), pooledR[i].Total()
		if math.Abs(s-p) > 1e-7*(1+math.Abs(s)) {
			t.Fatalf("step %d: serial total %g vs pooled %g", i, s, p)
		}
	}
	for i := range serialP {
		if math.Abs(serialP[i]-pooledP[i]) > 1e-7 {
			t.Fatalf("coordinate %d: serial %g vs pooled %g", i, serialP[i], pooledP[i])
		}
	}
}

// The tuner must pick an admissible candidate and report a full trial
// table; applying its choice pins ListCutoff = CutOff + Chosen.
func TestTuneSkinPicksAdmissibleCandidate(t *testing.T) {
	sys := waterBox(27, 12, 12)
	cfg := pooledConfig(0)
	tuning := TuneSkin(sys, cfg, TuneOptions{Candidates: []float64{0.5, 1.0, 1.5}, Window: 3})
	if len(tuning.Trials) == 0 {
		t.Fatal("no trials ran")
	}
	found := false
	for _, tr := range tuning.Trials {
		if tr.Skin == tuning.Chosen {
			found = true
		}
		if tr.MsPerStep < 0 || tr.Pairs <= 0 {
			t.Fatalf("implausible trial %+v", tr)
		}
	}
	if !found {
		t.Fatalf("chosen skin %g not among trials %+v", tuning.Chosen, tuning.Trials)
	}
	applied := tuning.Apply(cfg)
	if got := applied.FF.ListCutoff - applied.FF.CutOff; got != tuning.Chosen {
		t.Fatalf("Apply set skin %g, want %g", got, tuning.Chosen)
	}
}

// Candidates that violate the minimum-image bound are skipped; when none
// fit, the configured skin survives unchanged.
func TestTuneSkinSkipsInadmissibleCandidates(t *testing.T) {
	sys := waterBox(27, 12, 13) // max cutoff 6 Å
	cfg := pooledConfig(0)      // CutOff 4.5 Å → skins > 1.5 Å are out
	tuning := TuneSkin(sys, cfg, TuneOptions{Candidates: []float64{5, 9}, Window: 2})
	if len(tuning.Trials) != 0 {
		t.Fatalf("inadmissible candidates ran: %+v", tuning.Trials)
	}
	if want := cfg.FF.ListCutoff - cfg.FF.CutOff; tuning.Chosen != want {
		t.Fatalf("fallback skin %g, want configured %g", tuning.Chosen, want)
	}
}

// Replay guarantee: a tuned run and a run with the skin pinned to the
// tuned value are the same configuration, hence byte-identical physics.
func TestTunedSkinReplayIsBitwiseIdentical(t *testing.T) {
	sys := waterBox(27, 12, 14)
	cfg := pooledConfig(2)
	tuning := TuneSkin(sys, cfg, TuneOptions{Candidates: []float64{0.5, 1.0}, Window: 2})

	tuned := tuning.Apply(cfg)
	pinned := cfg
	pinned.FF.ListCutoff = pinned.FF.CutOff + tuning.Chosen

	ea := NewEngine(waterBox(27, 12, 14), tuned)
	eb := NewEngine(waterBox(27, 12, 14), pinned)
	ra := ea.Run(5, nil, nil)
	rb := eb.Run(5, nil, nil)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("step %d: tuned %+v != pinned %+v", i, ra[i], rb[i])
		}
	}
	for i := range ea.Pos {
		if ea.Pos[i] != eb.Pos[i] {
			t.Fatalf("atom %d: tuned pos != pinned pos", i)
		}
	}
}
