package md

import (
	"math"

	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/work"
)

// LangevinConfig couples the dynamics to a stochastic heat bath (CHARMM's
// LANG dynamics): friction plus matched random kicks.
type LangevinConfig struct {
	// FrictionPS is the friction coefficient γ in 1/ps (CHARMM's FBETA;
	// 5–50 /ps is typical for implicit-solvent work).
	FrictionPS float64
	// Target temperature in Kelvin.
	Target float64
	// Seed for the noise stream.
	Seed uint64
}

// langevinState holds the precomputed Ornstein–Uhlenbeck coefficients.
type langevinState struct {
	c1    float64   // exp(−γ·dt)
	noise []float64 // per-atom noise amplitude sqrt((1−c1²)·kT/m)
	rng   *rng.Source
}

// initLangevin prepares the coefficients; called lazily from StepLangevin
// so plain Engines pay nothing.
func (e *Engine) initLangevin(cfg LangevinConfig) {
	// γ in 1/ps → 1/AKMA: 1 ps = 1000 fs = 1000/48.888 AKMA.
	gammaAKMA := cfg.FrictionPS / (1000.0 / units.AKMATimeFS)
	c1 := math.Exp(-gammaAKMA * e.dtAKMA)
	st := &langevinState{
		c1:    c1,
		noise: make([]float64, e.Sys.N()),
		rng:   rng.New(cfg.Seed ^ 0x6c616e676576),
	}
	amp2 := (1 - c1*c1) * units.Boltzmann * cfg.Target
	for i := range st.noise {
		st.noise[i] = math.Sqrt(amp2 / e.Sys.Mass(i))
	}
	e.langevin = st
}

// StepLangevin advances one step of Langevin dynamics: a velocity-Verlet
// step followed by the exact Ornstein–Uhlenbeck velocity update
// v ← c1·v + σ·ξ (the "BAOAB"-style O-block at the end of the step).
func (e *Engine) StepLangevin(cfg LangevinConfig, w, wPME *work.Counters) EnergyReport {
	if e.langevin == nil {
		e.initLangevin(cfg)
	}
	rep := e.Step(w, wPME)
	st := e.langevin
	for i := range e.Vel {
		e.Vel[i] = e.Vel[i].Scale(st.c1)
		a := st.noise[i]
		e.Vel[i].X += a * st.rng.Normal()
		e.Vel[i].Y += a * st.rng.Normal()
		e.Vel[i].Z += a * st.rng.Normal()
	}
	e.rattleVelocities()
	rep.Kinetic = e.KineticEnergy()
	return rep
}
