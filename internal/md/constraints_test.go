package md

import (
	"math"
	"testing"
)

func constrainedEngine(seed uint64) *Engine {
	sys := waterBox(27, 12, seed)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	cfg.ConstrainHBonds = true
	cfg.TimestepFS = 2.0 // SHAKE permits the long step
	return NewEngine(sys, cfg)
}

func TestConstraintsBuilt(t *testing.T) {
	e := constrainedEngine(1)
	// Every water bond involves a hydrogen: 2 constraints per water.
	if got := e.NumConstraints(); got != 2*27 {
		t.Fatalf("constraints = %d, want %d", got, 2*27)
	}
	if e.DegreesOfFreedom() != 3*81-54 {
		t.Fatalf("dof = %d", e.DegreesOfFreedom())
	}
	// Without the flag: none.
	sys := waterBox(8, 12, 2)
	plain := NewEngine(sys, smallCutoffs(DefaultConfig()))
	if plain.NumConstraints() != 0 {
		t.Fatal("constraints without the flag")
	}
}

func TestShakeMaintainsBondLengths(t *testing.T) {
	e := constrainedEngine(3)
	e.Minimize(100, 0.2)
	e.InitVelocities(250, 5)
	e.ComputeForces(nil, nil)
	for s := 0; s < 50; s++ {
		e.Step(nil, nil)
	}
	const want = 0.9572 // TIP3 O–H
	for _, b := range e.Sys.Bonds {
		d := e.Sys.Box.Dist(e.Pos[b[0]], e.Pos[b[1]])
		if math.Abs(d-want) > 1e-4 {
			t.Fatalf("bond %v drifted to %g Å", b, d)
		}
	}
}

func TestRattleRemovesBondVelocity(t *testing.T) {
	e := constrainedEngine(4)
	e.Minimize(100, 0.2)
	e.InitVelocities(250, 7)
	e.ComputeForces(nil, nil)
	e.Step(nil, nil)
	for _, c := range e.constraints {
		r := e.Sys.Box.MinImage(e.Pos[c.i], e.Pos[c.j])
		vRel := e.Vel[c.i].Sub(e.Vel[c.j])
		if math.Abs(r.Dot(vRel)) > 1e-8 {
			t.Fatalf("residual bond-direction velocity %g", r.Dot(vRel))
		}
	}
}

func TestConstrainedEnergyConservation(t *testing.T) {
	// With SHAKE on the O–H bonds a 2 fs step must still conserve energy.
	e := constrainedEngine(5)
	e.Minimize(300, 0.2)
	e.InitVelocities(150, 9)
	reports := e.Run(200, nil, nil)
	first := reports[5].Total()
	var maxDrift float64
	for _, r := range reports[5:] {
		if d := math.Abs(r.Total() - first); d > maxDrift {
			maxDrift = d
		}
	}
	if maxDrift > 2.5 {
		t.Fatalf("constrained NVE drift %g kcal/mol over 200×2fs steps", maxDrift)
	}
}

func TestThermostatHeatsToTarget(t *testing.T) {
	sys := waterBox(27, 12, 6)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	cfg.Thermostat = &ThermostatConfig{Target: 300, TauFS: 20}
	e := NewEngine(sys, cfg)
	e.Minimize(200, 0.2)
	e.InitVelocities(50, 11)
	e.ComputeForces(nil, nil)
	for s := 0; s < 400; s++ {
		e.Step(nil, nil)
	}
	if tK := e.Temperature(); tK < 200 || tK > 400 {
		t.Fatalf("temperature %g K after heating toward 300 K", tK)
	}
}

func TestThermostatCools(t *testing.T) {
	sys := waterBox(27, 12, 7)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	cfg.Thermostat = &ThermostatConfig{Target: 100, TauFS: 20}
	e := NewEngine(sys, cfg)
	e.Minimize(200, 0.2)
	e.InitVelocities(500, 13)
	hot := e.Temperature()
	e.ComputeForces(nil, nil)
	for s := 0; s < 400; s++ {
		e.Step(nil, nil)
	}
	cold := e.Temperature()
	if cold >= hot || cold > 250 {
		t.Fatalf("thermostat did not cool: %g -> %g K", hot, cold)
	}
}

func TestLangevinWithShake(t *testing.T) {
	// Constraints and the stochastic thermostat must compose: bond lengths
	// stay fixed while the temperature relaxes toward the target.
	e := constrainedEngine(61)
	e.Minimize(200, 0.2)
	e.InitVelocities(50, 63)
	lang := LangevinConfig{FrictionPS: 20, Target: 250, Seed: 11}
	e.ComputeForces(nil, nil)
	for s := 0; s < 300; s++ {
		e.StepLangevin(lang, nil, nil)
	}
	const want = 0.9572
	for _, c := range e.constraints {
		d := e.Sys.Box.Dist(e.Pos[c.i], e.Pos[c.j])
		if math.Abs(d-want) > 1e-4 {
			t.Fatalf("constrained bond drifted to %g under Langevin", d)
		}
	}
	if tK := e.Temperature(); tK < 120 || tK > 420 {
		t.Fatalf("Langevin+SHAKE temperature %g K, want near 250", tK)
	}
}
