package md

import (
	"math"
	"testing"

	"repro/internal/ff"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/vec"
	"repro/internal/work"
)

// waterBox builds a small box of nw waters on a jittered grid.
func waterBox(nw int, l float64, seed uint64) *topol.System {
	s := &topol.System{
		Box:   space.NewBox(l, l, l),
		Types: topol.StandardTypes(),
	}
	r := rng.New(seed)
	side := int(math.Ceil(math.Cbrt(float64(nw))))
	spacing := l / float64(side)
	placed := 0
	for ix := 0; ix < side && placed < nw; ix++ {
		for iy := 0; iy < side && placed < nw; iy++ {
			for iz := 0; iz < side && placed < nw; iz++ {
				base := vec.New(
					(float64(ix)+0.5)*spacing+r.Range(-0.2, 0.2),
					(float64(iy)+0.5)*spacing+r.Range(-0.2, 0.2),
					(float64(iz)+0.5)*spacing+r.Range(-0.2, 0.2),
				)
				res := int32(len(s.Residues))
				s.Residues = append(s.Residues, topol.Residue{Name: "TIP3", First: int32(len(s.Atoms))})
				add := func(name string, typ int32, q float64, p vec.V) int32 {
					i := int32(len(s.Atoms))
					s.Atoms = append(s.Atoms, topol.Atom{Name: name, Type: typ, Charge: q, Residue: res})
					s.Pos = append(s.Pos, s.Box.Wrap(p))
					return i
				}
				ow := add("OW", topol.TypeOW, -0.834, base)
				h1 := add("HW1", topol.TypeHW, 0.417, base.Add(vec.New(0.76, 0.59, 0)))
				h2 := add("HW2", topol.TypeHW, 0.417, base.Add(vec.New(-0.76, 0.59, 0)))
				s.Bonds = append(s.Bonds, [2]int32{ow, h1}, [2]int32{ow, h2})
				s.Residues[res].Last = int32(len(s.Atoms))
				placed++
			}
		}
	}
	s.DeriveConnectivity()
	return s
}

// smallCutoffs shrinks the nonbonded ranges so the 12 Å test boxes satisfy
// the minimum-image constraint (max cutoff = 6 Å).
func smallCutoffs(cfg Config) Config {
	cfg.FF.CutOn, cfg.FF.CutOff, cfg.FF.ListCutoff = 3.5, 4.5, 5.5
	return cfg
}

func TestEngineEnergyDeterministic(t *testing.T) {
	sys := waterBox(27, 12, 1)
	a := NewEngine(sys, smallCutoffs(DefaultConfig()))
	b := NewEngine(sys, smallCutoffs(DefaultConfig()))
	ra := a.Run(5, nil, nil)
	rb := b.Run(5, nil, nil)
	for i := range ra {
		if ra[i].Total() != rb[i].Total() {
			t.Fatalf("step %d: %g != %g", i, ra[i].Total(), rb[i].Total())
		}
	}
}

func TestMinimizeLowersEnergy(t *testing.T) {
	sys := waterBox(27, 12, 2)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	before := e.ComputeForces(nil, nil).Potential()
	after := e.Minimize(150, 0.2)
	if after >= before {
		t.Fatalf("minimization did not lower energy: %g -> %g", before, after)
	}
}

func TestEnergyConservationClassic(t *testing.T) {
	sys := waterBox(27, 12, 3)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	cfg.TimestepFS = 0.5
	e := NewEngine(sys, cfg)
	e.Minimize(300, 0.2)
	e.InitVelocities(150, 7)

	reports := e.Run(400, nil, nil)
	first := reports[5].Total() // skip the very first steps (list settling)
	var maxDrift float64
	for _, r := range reports[5:] {
		if d := math.Abs(r.Total() - first); d > maxDrift {
			maxDrift = d
		}
	}
	// Energy scale: kinetic at 150 K for 81 atoms ≈ 36 kcal/mol. Demand
	// drift well under 5% of that.
	if maxDrift > 1.5 {
		t.Fatalf("NVE energy drift %g kcal/mol over 400 steps", maxDrift)
	}
}

func TestEnergyConservationPME(t *testing.T) {
	sys := waterBox(27, 12, 4)
	cfg := smallCutoffs(PMEDefaultConfig())
	cfg.Temperature = 0
	cfg.TimestepFS = 0.5
	// β large enough that erfc at the 4.5 Å cutoff is ~1e-5 — otherwise the
	// truncation step destroys NVE conservation.
	cfg.PME = PMEConfig{Beta: 0.7, K1: 24, K2: 24, K3: 24, Order: 4}
	cfg.FF.Beta = 0.7
	e := NewEngine(sys, cfg)
	e.Minimize(300, 0.2)
	e.InitVelocities(150, 9)

	reports := e.Run(300, nil, nil)
	first := reports[5].Total()
	var maxDrift float64
	for _, r := range reports[5:] {
		if d := math.Abs(r.Total() - first); d > maxDrift {
			maxDrift = d
		}
	}
	if maxDrift > 2.0 {
		t.Fatalf("PME NVE energy drift %g kcal/mol over 300 steps", maxDrift)
	}
}

func TestVelocityInitialization(t *testing.T) {
	sys := waterBox(64, 16, 5)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 300
	e := NewEngine(sys, cfg)
	// Net momentum removed.
	var p vec.V
	for i, v := range e.Vel {
		p = p.Add(v.Scale(sys.Mass(i)))
	}
	if p.Norm() > 1e-9 {
		t.Fatalf("net momentum %v", p)
	}
	// Temperature in the right ballpark (finite sample).
	if tK := e.Temperature(); tK < 200 || tK > 400 {
		t.Fatalf("initial temperature %g K", tK)
	}
}

func TestListReuseAndRebuild(t *testing.T) {
	sys := waterBox(27, 12, 6)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	e.ComputeForces(nil, nil)
	if !e.ListWasRebuilt() {
		t.Fatal("first evaluation must build the list")
	}
	e.ComputeForces(nil, nil)
	if e.ListWasRebuilt() {
		t.Fatal("static positions must reuse the list")
	}
	// Move one atom beyond half the skin: rebuild required.
	e.Pos[0] = e.Pos[0].Add(vec.New(1.5, 0, 0))
	e.ComputeForces(nil, nil)
	if !e.ListWasRebuilt() {
		t.Fatal("large displacement must rebuild the list")
	}
}

// TestListReuseConsistency verifies that reusing the skin list yields the
// same forces as a fresh build while displacements stay under the skin.
func TestListReuseConsistency(t *testing.T) {
	sys := waterBox(27, 12, 7)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	a := NewEngine(sys, cfg)
	a.ComputeForces(nil, nil)
	// Small displacement, then evaluate with the reused list.
	for i := range a.Pos {
		a.Pos[i] = a.Pos[i].Add(vec.New(0.05, -0.03, 0.02))
	}
	repA := a.ComputeForces(nil, nil)
	if a.ListWasRebuilt() {
		t.Fatal("list should have been reused")
	}
	// Fresh engine at the same positions: fresh list.
	b := NewEngine(sys, cfg)
	copy(b.Pos, a.Pos)
	repB := b.ComputeForces(nil, nil)
	if math.Abs(repA.Potential()-repB.Potential()) > 1e-9 {
		t.Fatalf("reused list energy %g vs fresh %g", repA.Potential(), repB.Potential())
	}
	if d := vec.MaxNormDiff(a.Frc, b.Frc); d > 1e-9 {
		t.Fatalf("force mismatch %g between reused and fresh list", d)
	}
}

func TestWorkCountersSplit(t *testing.T) {
	sys := waterBox(27, 12, 8)
	cfg := smallCutoffs(PMEDefaultConfig())
	cfg.PME = PMEConfig{Beta: 0.45, K1: 24, K2: 24, K3: 24, Order: 4}
	cfg.FF.Beta = 0.45
	e := NewEngine(sys, cfg)
	var wc, wp work.Counters
	e.Run(3, &wc, &wp)
	if wc.PairEvals == 0 || wc.BondTerms == 0 || wc.Integrate == 0 {
		t.Fatalf("classic work missing: %+v", wc)
	}
	if wp.FFTOps == 0 || wp.GridCharges == 0 {
		t.Fatalf("PME work missing: %+v", wp)
	}
	if wc.FFTOps != 0 {
		t.Fatal("FFT work booked to the classic phase")
	}
}

func TestEnergyReportArithmetic(t *testing.T) {
	r := EnergyReport{
		FF:    ff.Energies{Bond: 1, LJ: 2},
		Recip: 3, Self: -1, ExclCorr: -0.5, Background: 0,
		Kinetic: 4,
	}
	if r.Classic() != 3 {
		t.Fatalf("Classic = %g", r.Classic())
	}
	if r.PME() != 1.5 {
		t.Fatalf("PME = %g", r.PME())
	}
	if r.Potential() != 4.5 || r.Total() != 8.5 {
		t.Fatalf("Potential/Total = %g/%g", r.Potential(), r.Total())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	sys := waterBox(8, 10, 9)
	bad := smallCutoffs(DefaultConfig())
	bad.TimestepFS = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero timestep did not panic")
			}
		}()
		NewEngine(sys, bad)
	}()
	bad2 := smallCutoffs(DefaultConfig())
	bad2.UsePME = true // but ElecMode still Shift
	bad2.PME = PMEConfig{Beta: 0.4, K1: 20, K2: 20, K3: 20, Order: 4}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PME+Shift did not panic")
			}
		}()
		NewEngine(sys, bad2)
	}()
}

func TestMyoglobinTenStepsRuns(t *testing.T) {
	// The paper's measurement workload: 10 MD steps of the 3552-atom
	// system with PME. This is the exact computation whose performance is
	// characterized; here we check it executes and produces finite physics.
	if testing.Short() {
		t.Skip("full-system run in -short mode")
	}
	sys := topol.NewMyoglobinSystem(topol.MyoglobinConfig{Seed: 1})
	cfg := PMEDefaultConfig()
	cfg.Temperature = 0 // strained start: heat later
	e := NewEngine(sys, cfg)
	e.Minimize(30, 0.1)
	e.InitVelocities(50, 3)
	var wc, wp work.Counters
	reports := e.Run(10, &wc, &wp)
	for i, r := range reports {
		if math.IsNaN(r.Total()) || math.IsInf(r.Total(), 0) {
			t.Fatalf("step %d: non-finite energy", i)
		}
	}
	if wp.FFTOps == 0 || wc.PairEvals == 0 {
		t.Fatal("missing work counts")
	}
	// Workload sanity: the classic pair work must dominate grid spread ops
	// the way the paper's profile shows (same order of magnitude).
	if wc.PairEvals < 1e6 {
		t.Fatalf("pair evals over 10 steps = %d, implausibly small", wc.PairEvals)
	}
}
