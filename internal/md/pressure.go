package md

import (
	"math"

	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/vec"
)

// AtmPerKcalMolA3 converts kcal/(mol·Å³) to atmospheres.
const AtmPerKcalMolA3 = 68568.4

// Pressure estimates the instantaneous pressure (atm) of the engine's
// current state through the virial route, with the configurational part
// −dU/dV evaluated by central-difference isotropic volume scaling:
//
//	P = (2·K/3 − V·dU/dV) / V   (K = kinetic energy)
//
// Each call costs two full energy evaluations on scaled copies of the
// system; it is a diagnostic, not a per-step quantity.
func (e *Engine) Pressure() float64 {
	const dlnV = 1e-4 // relative volume perturbation
	v0 := e.Sys.Box.Volume()
	uPlus := e.scaledEnergy(1 + dlnV/2)
	uMinus := e.scaledEnergy(1 - dlnV/2)
	dUdV := (uPlus - uMinus) / (v0 * dlnV)
	k := e.KineticEnergy()
	p := (2.0/3.0*k - v0*dUdV) / v0 // kcal/(mol·Å³) ... see below
	// 2K/3V is the ideal term N·kT/V expressed through the kinetic energy.
	return p * AtmPerKcalMolA3
}

// scaledEnergy returns the potential energy of the system under isotropic
// affine scaling of box and coordinates by factor vScale^(1/3).
func (e *Engine) scaledEnergy(vScale float64) float64 {
	lin := math.Cbrt(vScale)
	scaled := &topol.System{
		Box:       space.NewBox(e.Sys.Box.L.X*lin, e.Sys.Box.L.Y*lin, e.Sys.Box.L.Z*lin),
		Types:     e.Sys.Types,
		Atoms:     e.Sys.Atoms,
		Residues:  e.Sys.Residues,
		Bonds:     e.Sys.Bonds,
		Angles:    e.Sys.Angles,
		Dihedrals: e.Sys.Dihedrals,
		Impropers: e.Sys.Impropers,
		Excl:      e.Sys.Excl,
		Pairs14:   e.Sys.Pairs14,
		Pos:       make([]vec.V, len(e.Pos)),
	}
	for i, p := range e.Pos {
		scaled.Pos[i] = p.Scale(lin)
	}
	cfg := e.Cfg
	cfg.Temperature = 0
	cfg = ClampCutoffs(cfg, scaled.Box)
	probe := NewEngine(scaled, cfg)
	return probe.ComputeForces(nil, nil).Potential()
}
