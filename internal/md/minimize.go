package md

import "repro/internal/vec"

// MinimizeCG runs nonlinear conjugate-gradient minimization
// (Polak–Ribière with automatic restart, backtracking line search along
// the search direction) — CHARMM's CONJ method. Returns the final
// potential energy. Generally converges in far fewer force evaluations
// than steepest descent on the same system.
func (e *Engine) MinimizeCG(maxIters int, initialStep float64) float64 {
	n := len(e.Pos)
	rep := e.ComputeForces(nil, nil)
	prev := rep.Potential()

	grad := make([]vec.V, n) // g = −F
	dir := make([]vec.V, n)
	saved := make([]vec.V, n)
	for i := range grad {
		grad[i] = e.Frc[i].Neg()
		dir[i] = e.Frc[i]
	}
	gg := dot(grad, grad)
	step := initialStep

	for iter := 0; iter < maxIters && step > 1e-9; iter++ {
		// Normalize the trial displacement so `step` caps the largest
		// per-atom move.
		var dmax float64
		for _, d := range dir {
			if m := d.Norm(); m > dmax {
				dmax = m
			}
		}
		if dmax == 0 {
			break
		}
		scale := step / dmax

		copy(saved, e.Pos)
		for i := range e.Pos {
			e.Pos[i] = e.Pos[i].Add(dir[i].Scale(scale))
		}
		cur := e.ComputeForces(nil, nil).Potential()
		if cur >= prev {
			// Reject: shrink the step and restart along steepest descent.
			copy(e.Pos, saved)
			e.ComputeForces(nil, nil)
			step *= 0.5
			for i := range grad {
				grad[i] = e.Frc[i].Neg()
				dir[i] = e.Frc[i]
			}
			gg = dot(grad, grad)
			continue
		}
		prev = cur
		step *= 1.15

		// Polak–Ribière update from the new gradient.
		var num float64
		for i := range grad {
			gNew := e.Frc[i].Neg()
			num += gNew.Dot(gNew.Sub(grad[i]))
			grad[i] = gNew
		}
		beta := 0.0
		if gg > 0 {
			beta = num / gg
		}
		if beta < 0 {
			beta = 0 // automatic restart
		}
		gg = dot(grad, grad)
		for i := range dir {
			dir[i] = grad[i].Neg().Add(dir[i].Scale(beta))
		}
	}
	return prev
}

func dot(a, b []vec.V) float64 {
	var s float64
	for i := range a {
		s += a[i].Dot(b[i])
	}
	return s
}
