package md

// Durable checkpoints: a versioned, CRC32C-checksummed on-disk format for
// Checkpoint, written atomically (temp file + rename) and managed as a
// ring of the last K checkpoints per run directory. Loading is
// corruption-aware: the ring scans back from the newest file to the
// newest one that still validates, so a torn write or a flipped bit costs
// one checkpoint interval, never the run.
//
// File layout (all little-endian):
//
//	magic    "MDCP" (4 bytes)
//	version  uint32 (currently 1)
//	hlen     uint32 — header payload length in bytes
//	header   int64 N, float64 timestepFS, int64 step, float64 wall,
//	         int64 ranks, then ranks × 4 float64 (comp, comm, sync, lost),
//	         then int64 originCount (0, or N when a list origin follows)
//	hcrc     uint32 — CRC32C (Castagnoli) of the header payload
//	sections ranks × [atoms of rank r's block × 9 float64
//	         (pos, vel, frc), then uint32 CRC32C of the section bytes],
//	         then, when originCount = N, one section of N × 3 float64
//	         (the Verlet-list origin) with its own uint32 CRC32C
//
// The per-rank sections mirror the parallel engine's block partition, so
// a validation failure names the rank whose state is damaged. The list
// origin travels with the checkpoint so a restarted trajectory reuses the
// interrupted run's pair list and stays bitwise identical to it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/vec"
)

const (
	durableMagic   = "MDCP"
	progressMagic  = "MDPG"
	durableVersion = 1
)

// DefaultKeep is the checkpoint-ring depth when CheckpointRing.Keep is 0.
const DefaultKeep = 3

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint reports a checkpoint directory holding no loadable
// checkpoint (absent, empty, or nothing but corruption).
var ErrNoCheckpoint = errors.New("md: no checkpoint on disk")

// ErrNoProgress reports an absent or unreadable progress mark.
var ErrNoProgress = errors.New("md: no progress mark on disk")

// CorruptError reports a durable checkpoint or progress file that failed
// validation (bad magic, unsupported version, checksum mismatch,
// truncation). The ring treats it as "skip and fall back one".
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("md: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// DurableMeta is the run bookkeeping stored alongside the dynamic state:
// where the run was and what each rank had spent getting there. RankAcct
// holds one (comp, comm, sync, lost) quad of virtual seconds per rank and
// its length fixes the section partition; a sequential run uses one rank
// with a zero quad.
type DurableMeta struct {
	Step     int     // global MD step the checkpoint was taken after
	Wall     float64 // virtual wall clock (scenario time) at the checkpoint
	RankAcct [][4]float64
}

// Progress is the tiny per-step journal dropped next to the ring: enough
// for a restarted process to book the killed process's post-checkpoint
// work as Lost and to avoid re-firing already-recovered crash faults.
type Progress struct {
	Step            int
	Wall            float64
	RankAcct        [][4]float64
	ConsumedCrashes []int // fault-spec indices of crashes already recovered
}

// durableOffsets splits n atoms into ranks nearly equal contiguous blocks
// (same partition as the parallel engine) and returns the start offsets.
func durableOffsets(n, ranks int) []int {
	off := make([]int, ranks+1)
	base, rem := n/ranks, n%ranks
	for i := 0; i < ranks; i++ {
		w := base
		if i < rem {
			w++
		}
		off[i+1] = off[i] + w
	}
	return off
}

type leWriter struct{ buf []byte }

func (w *leWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *leWriter) i64(v int64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
}
func (w *leWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *leWriter) vec(v vec.V) { w.f64(v.X); w.f64(v.Y); w.f64(v.Z) }

type leReader struct {
	buf []byte
	pos int
	err bool
}

func (r *leReader) take(n int) []byte {
	if r.err || r.pos+n > len(r.buf) {
		r.err = true
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}
func (r *leReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *leReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
func (r *leReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func (r *leReader) vec() vec.V {
	return vec.V{X: r.f64(), Y: r.f64(), Z: r.f64()}
}

// encodeDurable serializes cp + meta into the on-disk layout.
func encodeDurable(cp *Checkpoint, meta DurableMeta) []byte {
	ranks := len(meta.RankAcct)
	var h leWriter
	h.i64(int64(cp.N))
	h.f64(cp.TimestepFS)
	h.i64(int64(meta.Step))
	h.f64(meta.Wall)
	h.i64(int64(ranks))
	for _, a := range meta.RankAcct {
		for _, v := range a {
			h.f64(v)
		}
	}
	h.i64(int64(len(cp.ListOrigin)))

	var w leWriter
	w.buf = append(w.buf, durableMagic...)
	w.u32(durableVersion)
	w.u32(uint32(len(h.buf)))
	w.buf = append(w.buf, h.buf...)
	w.u32(crc32.Checksum(h.buf, crcTable))

	off := durableOffsets(cp.N, ranks)
	for r := 0; r < ranks; r++ {
		var s leWriter
		for i := off[r]; i < off[r+1]; i++ {
			s.vec(cp.Pos[i])
			s.vec(cp.Vel[i])
			s.vec(cp.Frc[i])
		}
		w.buf = append(w.buf, s.buf...)
		w.u32(crc32.Checksum(s.buf, crcTable))
	}
	if len(cp.ListOrigin) > 0 {
		var s leWriter
		for _, v := range cp.ListOrigin {
			s.vec(v)
		}
		w.buf = append(w.buf, s.buf...)
		w.u32(crc32.Checksum(s.buf, crcTable))
	}
	return w.buf
}

// WriteDurable writes cp + meta to path atomically: the bytes land in a
// temp file in the same directory, are synced, and replace path with a
// rename, so a crash mid-write never leaves a half-written checkpoint
// under the real name.
func WriteDurable(path string, cp *Checkpoint, meta DurableMeta) error {
	if len(meta.RankAcct) < 1 {
		return fmt.Errorf("md: durable checkpoint needs at least one rank in meta")
	}
	if len(cp.Pos) != cp.N || len(cp.Vel) != cp.N || len(cp.Frc) != cp.N {
		return fmt.Errorf("md: durable checkpoint has inconsistent arrays (%d/%d/%d for N=%d)",
			len(cp.Pos), len(cp.Vel), len(cp.Frc), cp.N)
	}
	if len(cp.ListOrigin) != 0 && len(cp.ListOrigin) != cp.N {
		return fmt.Errorf("md: durable checkpoint list origin has %d atoms for N=%d",
			len(cp.ListOrigin), cp.N)
	}
	return atomicWrite(path, encodeDurable(cp, meta))
}

// ReadDurable loads and fully validates a durable checkpoint. Any
// validation failure is a *CorruptError; IO failures come back as-is.
func ReadDurable(path string) (*Checkpoint, DurableMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, DurableMeta{}, err
	}
	corrupt := func(reason string) (*Checkpoint, DurableMeta, error) {
		return nil, DurableMeta{}, &CorruptError{Path: path, Reason: reason}
	}

	r := &leReader{buf: data}
	if magic := r.take(4); magic == nil || string(magic) != durableMagic {
		return corrupt("bad magic")
	}
	if v := r.u32(); r.err || v != durableVersion {
		return corrupt(fmt.Sprintf("unsupported version %d", r.buf[4:8]))
	}
	hlen := int(r.u32())
	header := r.take(hlen)
	if header == nil {
		return corrupt("truncated header")
	}
	if got, want := crc32.Checksum(header, crcTable), r.u32(); r.err || got != want {
		return corrupt("header checksum mismatch")
	}

	h := &leReader{buf: header}
	n := int(h.i64())
	ts := h.f64()
	step := int(h.i64())
	wall := h.f64()
	ranks := int(h.i64())
	if h.err || n < 0 || ranks < 1 || ranks > 1<<20 || n > 1<<40 {
		return corrupt("implausible header")
	}
	meta := DurableMeta{Step: step, Wall: wall, RankAcct: make([][4]float64, ranks)}
	for i := 0; i < ranks; i++ {
		for j := 0; j < 4; j++ {
			meta.RankAcct[i][j] = h.f64()
		}
	}
	originCount := int(h.i64())
	if h.err || (originCount != 0 && originCount != n) {
		return corrupt("implausible list-origin count")
	}
	if h.pos != len(header) {
		return corrupt("header length mismatch")
	}

	cp := &Checkpoint{
		N:          n,
		TimestepFS: ts,
		Pos:        make([]vec.V, n),
		Vel:        make([]vec.V, n),
		Frc:        make([]vec.V, n),
	}
	off := durableOffsets(n, ranks)
	for rk := 0; rk < ranks; rk++ {
		atoms := off[rk+1] - off[rk]
		section := r.take(atoms * 9 * 8)
		if section == nil {
			return corrupt(fmt.Sprintf("truncated section for rank %d", rk))
		}
		if got, want := crc32.Checksum(section, crcTable), r.u32(); r.err || got != want {
			return corrupt(fmt.Sprintf("checksum mismatch in rank %d section", rk))
		}
		s := &leReader{buf: section}
		for i := off[rk]; i < off[rk+1]; i++ {
			cp.Pos[i] = s.vec()
			cp.Vel[i] = s.vec()
			cp.Frc[i] = s.vec()
		}
	}
	if originCount > 0 {
		section := r.take(originCount * 3 * 8)
		if section == nil {
			return corrupt("truncated list-origin section")
		}
		if got, want := crc32.Checksum(section, crcTable), r.u32(); r.err || got != want {
			return corrupt("checksum mismatch in list-origin section")
		}
		s := &leReader{buf: section}
		cp.ListOrigin = make([]vec.V, originCount)
		for i := range cp.ListOrigin {
			cp.ListOrigin[i] = s.vec()
		}
	}
	if r.pos != len(data) {
		return corrupt(fmt.Sprintf("%d trailing bytes", len(data)-r.pos))
	}
	return cp, meta, nil
}

// atomicWrite lands data at path via temp file + fsync + rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// CheckpointRing manages a directory holding the last Keep durable
// checkpoints of one run plus its progress mark. The zero Keep means
// DefaultKeep. Methods are not safe for concurrent use.
type CheckpointRing struct {
	Dir  string
	Keep int

	// Obs, when non-nil, receives host-time durability metrics:
	// repro_checkpoint_write_seconds / repro_checkpoint_restore_seconds
	// histograms, repro_checkpoint_writes_total and
	// repro_checkpoint_corrupt_skipped_total counters.
	Obs *obs.Registry
}

func (r *CheckpointRing) observe(name, help string, d time.Duration) {
	if r.Obs == nil {
		return
	}
	r.Obs.Histogram(name, help, obs.ExpBuckets(1e-4, 4, 10)).Observe(d.Seconds())
}

func (r *CheckpointRing) keep() int {
	if r.Keep <= 0 {
		return DefaultKeep
	}
	return r.Keep
}

const ckptPrefix, ckptSuffix = "ckpt-", ".mdc"

// Path returns the file name used for the checkpoint at the given step.
func (r *CheckpointRing) Path(step int) string {
	return filepath.Join(r.Dir, fmt.Sprintf("%s%012d%s", ckptPrefix, step, ckptSuffix))
}

func (r *CheckpointRing) progressPath() string {
	return filepath.Join(r.Dir, "progress.mdp")
}

// steps lists the step indices of checkpoint files present, ascending.
func (r *CheckpointRing) steps() ([]int, error) {
	entries, err := os.ReadDir(r.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var steps []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		s, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix))
		if err != nil {
			continue
		}
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps, nil
}

// Save writes the checkpoint for meta.Step and prunes the ring down to
// the newest Keep files.
func (r *CheckpointRing) Save(cp *Checkpoint, meta DurableMeta) error {
	t0 := time.Now()
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	if err := WriteDurable(r.Path(meta.Step), cp, meta); err != nil {
		return err
	}
	r.observe("repro_checkpoint_write_seconds", "durable checkpoint write latency (host seconds)", time.Since(t0))
	if r.Obs != nil {
		r.Obs.Counter("repro_checkpoint_writes_total", "durable checkpoints written").Inc()
	}
	steps, err := r.steps()
	if err != nil {
		return err
	}
	for len(steps) > r.keep() {
		if err := os.Remove(r.Path(steps[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		steps = steps[1:]
	}
	return nil
}

// LoadNewest returns the newest checkpoint in the ring that validates,
// scanning back across corrupt files (skipped counts how many were
// passed over). ErrNoCheckpoint means the directory holds nothing
// loadable at all.
func (r *CheckpointRing) LoadNewest() (cp *Checkpoint, meta DurableMeta, skipped int, err error) {
	t0 := time.Now()
	defer func() {
		if err == nil {
			r.observe("repro_checkpoint_restore_seconds", "durable checkpoint restore latency (host seconds)", time.Since(t0))
		}
		if r.Obs != nil && skipped > 0 {
			r.Obs.Counter("repro_checkpoint_corrupt_skipped_total",
				"corrupt or torn checkpoints scanned past during restore").Add(float64(skipped))
		}
	}()
	steps, err := r.steps()
	if err != nil {
		return nil, DurableMeta{}, 0, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		cp, meta, err = ReadDurable(r.Path(steps[i]))
		if err == nil {
			return cp, meta, skipped, nil
		}
		var ce *CorruptError
		if !errors.As(err, &ce) && !os.IsNotExist(err) {
			return nil, DurableMeta{}, skipped, err
		}
		skipped++
	}
	return nil, DurableMeta{}, skipped, ErrNoCheckpoint
}

// MarkProgress atomically records the per-step journal.
func (r *CheckpointRing) MarkProgress(p Progress) error {
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	var h leWriter
	h.i64(int64(p.Step))
	h.f64(p.Wall)
	h.i64(int64(len(p.RankAcct)))
	for _, a := range p.RankAcct {
		for _, v := range a {
			h.f64(v)
		}
	}
	h.i64(int64(len(p.ConsumedCrashes)))
	for _, c := range p.ConsumedCrashes {
		h.i64(int64(c))
	}
	var w leWriter
	w.buf = append(w.buf, progressMagic...)
	w.u32(durableVersion)
	w.u32(uint32(len(h.buf)))
	w.buf = append(w.buf, h.buf...)
	w.u32(crc32.Checksum(h.buf, crcTable))
	return atomicWrite(r.progressPath(), w.buf)
}

// ReadProgress loads the progress mark; a missing or invalid file is
// ErrNoProgress (a stale or torn mark only costs Lost-accounting
// precision, never the restart).
func (r *CheckpointRing) ReadProgress() (Progress, error) {
	data, err := os.ReadFile(r.progressPath())
	if err != nil {
		return Progress{}, ErrNoProgress
	}
	rd := &leReader{buf: data}
	if magic := rd.take(4); magic == nil || string(magic) != progressMagic {
		return Progress{}, ErrNoProgress
	}
	if v := rd.u32(); rd.err || v != durableVersion {
		return Progress{}, ErrNoProgress
	}
	hlen := int(rd.u32())
	payload := rd.take(hlen)
	if payload == nil {
		return Progress{}, ErrNoProgress
	}
	if got, want := crc32.Checksum(payload, crcTable), rd.u32(); rd.err || got != want {
		return Progress{}, ErrNoProgress
	}
	h := &leReader{buf: payload}
	p := Progress{Step: int(h.i64()), Wall: h.f64()}
	ranks := int(h.i64())
	if h.err || ranks < 0 || ranks > 1<<20 {
		return Progress{}, ErrNoProgress
	}
	p.RankAcct = make([][4]float64, ranks)
	for i := 0; i < ranks; i++ {
		for j := 0; j < 4; j++ {
			p.RankAcct[i][j] = h.f64()
		}
	}
	nc := int(h.i64())
	if h.err || nc < 0 || nc > 1<<20 {
		return Progress{}, ErrNoProgress
	}
	for i := 0; i < nc; i++ {
		p.ConsumedCrashes = append(p.ConsumedCrashes, int(h.i64()))
	}
	if h.err || h.pos != len(payload) {
		return Progress{}, ErrNoProgress
	}
	return p, nil
}
