// Package md implements the sequential molecular dynamics engine: velocity
// Verlet integration, neighbour-list management with a Verlet skin,
// steepest-descent minimization, and the classic/PME energy decomposition
// that the performance study measures.
package md

import (
	"fmt"
	"time"

	"repro/internal/ewald"
	"repro/internal/ff"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/units"
	"repro/internal/vec"
	"repro/internal/work"
)

// PMEConfig selects the particle-mesh-Ewald treatment of long-range
// electrostatics.
type PMEConfig struct {
	Beta       float64 // Ewald splitting parameter (1/Å)
	K1, K2, K3 int     // mesh dimensions
	Order      int     // B-spline interpolation order
}

// PaperPME returns the paper's PME setup: 80×36×48 mesh, order 4.
func PaperPME() PMEConfig {
	return PMEConfig{Beta: 0.34, K1: 80, K2: 36, K3: 48, Order: 4}
}

// Config configures an Engine.
type Config struct {
	FF          ff.Options
	UsePME      bool
	PME         PMEConfig
	TimestepFS  float64 // integration step in femtoseconds
	Temperature float64 // initial velocity temperature (K); 0 = start at rest
	Seed        uint64  // velocity RNG stream

	// ConstrainHBonds applies SHAKE/RATTLE to every bond involving a
	// hydrogen (CHARMM's SHAKE BONH), allowing a 2 fs timestep.
	ConstrainHBonds bool

	// Thermostat couples the system to a heat bath (nil = NVE).
	Thermostat *ThermostatConfig

	// KernelWorkers sizes the deterministic sharded kernel pool shared by
	// the nonbonded, FFT and PME hot loops. 0 (the default) keeps the
	// legacy serial kernels and their exact historical bytes; any value
	// ≥ 1 switches to the sharded path, whose results are byte-identical
	// at every worker count (1, 2, N) but — being a regrouped
	// floating-point reduction — differ from the serial path at roundoff.
	// ExactKernels runs always stay on the serial reference path.
	KernelWorkers int
}

// DefaultConfig is the paper's classic setup (shift truncation, no PME).
func DefaultConfig() Config {
	return Config{
		FF:          ff.DefaultOptions(),
		TimestepFS:  units.DefaultTimestepFS,
		Temperature: 300,
		Seed:        1,
	}
}

// PMEDefaultConfig is the paper's PME setup.
func PMEDefaultConfig() Config {
	c := DefaultConfig()
	c.FF = ff.PMEOptions()
	c.UsePME = true
	c.PME = PaperPME()
	c.FF.Beta = c.PME.Beta
	return c
}

// EnergyReport is the per-evaluation energy decomposition in kcal/mol,
// split the way the paper splits the calculation (§3.2): the classic part
// (bonded + cutoff nonbonded) and the PME part (mesh reciprocal sum and
// its counter-terms).
type EnergyReport struct {
	FF         ff.Energies // classic terms
	Recip      float64     // PME reciprocal energy
	Self       float64     // Ewald self correction
	ExclCorr   float64     // excluded-pair erf correction
	Background float64     // net-charge background correction
	Kinetic    float64
}

// Classic returns the classic-part potential energy.
func (r EnergyReport) Classic() float64 { return r.FF.Total() }

// PME returns the PME-part potential energy.
func (r EnergyReport) PME() float64 { return r.Recip + r.Self + r.ExclCorr + r.Background }

// Potential returns the total potential energy.
func (r EnergyReport) Potential() float64 { return r.Classic() + r.PME() }

// Total returns potential + kinetic.
func (r EnergyReport) Total() float64 { return r.Potential() + r.Kinetic }

// Engine advances one molecular system. It is not safe for concurrent use.
type Engine struct {
	Sys *topol.System
	Cfg Config
	FF  *ff.ForceField

	Pos []vec.V
	Vel []vec.V
	Frc []vec.V

	pme  *ewald.PME
	nbk  *ff.NonbondedKernel // table-driven pair kernel (exact when configured)
	pool *kernels.Pool       // deterministic sharded kernel pool (nil = serial)

	pairs      []space.Pair
	lister     *ff.PairLister // reusable list builder (no steady-state allocs)
	listOrigin []vec.V        // positions at last list build
	listFresh  bool

	constraints []constraint
	refPos      []vec.V // pre-drift positions for SHAKE

	langevin *langevinState // lazily initialized by StepLangevin

	// Host-time phase counters, installed by SetObs (nil otherwise). The
	// sequential engine runs on the host clock, so its §3.2 decomposition
	// is pure compute: classic and PME force-section seconds at rank 0.
	mClassic *obs.Counter
	mPME     *obs.Counter
	mEvals   *obs.Counter

	invMass []float64
	dtAKMA  float64
}

// NewEngine builds an engine over sys with its own copies of the
// coordinate arrays (the input system is not mutated).
func NewEngine(sys *topol.System, cfg Config) *Engine {
	if cfg.TimestepFS <= 0 {
		panic(fmt.Sprintf("md: invalid timestep %g fs", cfg.TimestepFS))
	}
	if cfg.UsePME && cfg.FF.ElecMode != ff.ElecEwaldDirect {
		panic("md: PME requires ff.ElecEwaldDirect for the direct-space sum")
	}
	e := &Engine{
		Sys: sys,
		Cfg: cfg,
		FF:  ff.New(sys, cfg.FF),
		Pos: append([]vec.V(nil), sys.Pos...),
		Vel: make([]vec.V, sys.N()),
		Frc: make([]vec.V, sys.N()),

		invMass: make([]float64, sys.N()),
		dtAKMA:  units.FSToAKMA(cfg.TimestepFS),
	}
	for i := range e.invMass {
		e.invMass[i] = 1 / sys.Mass(i)
	}
	e.nbk = e.FF.NewNonbondedKernel()
	if cfg.UsePME {
		e.pme = ewald.NewPME(sys.Box, cfg.PME.Beta, cfg.PME.K1, cfg.PME.K2, cfg.PME.K3, cfg.PME.Order)
		// The exact-kernels flag also pins PME to the reference complex
		// transform so the whole force evaluation is bit-reproducible.
		e.pme.ExactFFT = cfg.FF.ExactKernels
	}
	if cfg.KernelWorkers > 0 {
		e.pool = kernels.NewPool(cfg.KernelWorkers)
		e.nbk.SetPool(e.pool)
		if e.pme != nil {
			e.pme.SetPool(e.pool)
		}
	}
	e.buildConstraints()
	if len(e.constraints) > 0 {
		e.refPos = make([]vec.V, sys.N())
	}
	if cfg.Temperature > 0 {
		e.InitVelocities(cfg.Temperature, cfg.Seed)
	}
	return e
}

// InitVelocities draws Maxwell–Boltzmann velocities at temperature T and
// removes the net momentum.
func (e *Engine) InitVelocities(tK float64, seed uint64) {
	r := rng.New(seed ^ 0x76656c6f63) // "veloc"
	var p vec.V
	var mass float64
	for i := range e.Vel {
		m := e.Sys.Mass(i)
		sd := units.ThermalVelocity(m, tK)
		e.Vel[i] = vec.New(r.NormalScaled(0, sd), r.NormalScaled(0, sd), r.NormalScaled(0, sd))
		p = p.Add(e.Vel[i].Scale(m))
		mass += m
	}
	drift := p.Scale(1 / mass)
	for i := range e.Vel {
		e.Vel[i] = e.Vel[i].Sub(drift)
	}
}

// skin returns the Verlet-list skin width.
func (e *Engine) skin() float64 { return e.Cfg.FF.ListCutoff - e.Cfg.FF.CutOff }

// listValid reports whether the current neighbour list still covers all
// interactions (no atom moved more than half the skin since the build).
func (e *Engine) listValid() bool {
	if e.listOrigin == nil {
		return false
	}
	limit := e.skin() / 2
	limit2 := limit * limit
	for i := range e.Pos {
		if vec.Dist2(e.Pos[i], e.listOrigin[i]) > limit2 {
			return false
		}
	}
	return true
}

// RefreshList rebuilds the neighbour list unconditionally.
func (e *Engine) RefreshList(w *work.Counters) {
	if e.lister == nil {
		e.lister = e.FF.NewPairLister()
	}
	e.pairs = e.lister.Build(e.Pos, w)
	if e.listOrigin == nil {
		e.listOrigin = make([]vec.V, len(e.Pos))
	}
	copy(e.listOrigin, e.Pos)
	e.listFresh = true
}

// ListWasRebuilt reports whether the last ComputeForces call rebuilt the
// neighbour list.
func (e *Engine) ListWasRebuilt() bool { return e.listFresh }

// PairCount returns the current neighbour-list length.
func (e *Engine) PairCount() int { return len(e.pairs) }

// SetObs installs host-time phase counters into reg: every ComputeForces
// call adds the wall-clock seconds of its classic and PME force sections
// to repro_phase_seconds_total{rank="0",phase,bucket="compute"}. The comm
// and sync series are created at zero so the exposition always carries the
// full §3.2 decomposition for the single host rank. A nil reg detaches.
func (e *Engine) SetObs(reg *obs.Registry) {
	if reg == nil {
		e.mClassic, e.mPME, e.mEvals = nil, nil, nil
		e.pool.SetObs(nil)
		return
	}
	// Parallel-kernel configuration: pool width, shard imbalance, and the
	// neighbour-list skin actually in effect (tuned or configured), so
	// /runz and run manifests show how a result was produced.
	if e.pool != nil {
		e.pool.SetObs(reg)
	} else {
		reg.Gauge("repro_kernel_workers",
			"Configured deterministic kernel pool width (0 = serial legacy kernels).").Set(0)
	}
	reg.Gauge("repro_skin_width_angstrom",
		"Neighbour-list skin width in effect (ListCutoff - CutOff).").Set(e.skin())
	help := "virtual seconds per rank, phase and time class (§3.2 decomposition)"
	rl := obs.L("rank", "0")
	for _, phase := range []string{"classic", "pme"} {
		pl := obs.L("phase", phase)
		c := reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "compute"))
		reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "comm"))
		reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "sync"))
		if phase == "classic" {
			e.mClassic = c
		} else {
			e.mPME = c
		}
	}
	e.mEvals = reg.Counter("repro_md_force_evals_total", "force evaluations performed")
}

// ComputeForces evaluates all forces and energies at the current
// positions, managing the neighbour list. Work is recorded into w
// (classic-phase work) and wPME (PME-phase work) when non-nil.
func (e *Engine) ComputeForces(w, wPME *work.Counters) EnergyReport {
	e.listFresh = false
	var t0 time.Time
	if e.mClassic != nil {
		t0 = time.Now()
	}
	if !e.listValid() {
		e.RefreshList(w)
	}
	vec.Fill(e.Frc, vec.Zero)
	var rep EnergyReport
	rep.FF = e.FF.Bonded(e.Pos, e.Frc, w)
	rep.FF.Add(e.nbk.Compute(e.Pos, e.pairs, e.Frc, w))
	rep.FF.Add(e.FF.Pairs14(e.Pos, e.Frc, w))
	if e.mClassic != nil {
		now := time.Now()
		e.mClassic.Add(now.Sub(t0).Seconds())
		t0 = now
	}
	if e.pme != nil {
		charges := e.FF.Charges()
		rep.Recip = e.pme.Recip(e.Pos, charges, e.Frc, wPME)
		rep.Self = ewald.SelfEnergy(charges, e.Cfg.PME.Beta)
		rep.ExclCorr = ewald.ExclusionCorrection(e.Sys.Box, e.Pos, charges, e.Sys.Excl, e.Cfg.PME.Beta, e.Frc, wPME)
		rep.Background = ewald.BackgroundEnergy(charges, e.Cfg.PME.Beta, e.Sys.Box.Volume())
		if e.mPME != nil {
			e.mPME.Add(time.Since(t0).Seconds())
		}
	}
	if e.mEvals != nil {
		e.mEvals.Inc()
	}
	rep.Kinetic = e.KineticEnergy()
	return rep
}

// KineticEnergy returns ½Σmv² in kcal/mol.
func (e *Engine) KineticEnergy() float64 {
	var ke float64
	for i, v := range e.Vel {
		ke += 0.5 * e.Sys.Mass(i) * v.Norm2()
	}
	return ke
}

// Temperature returns the instantaneous temperature in K, over the
// unconstrained degrees of freedom.
func (e *Engine) Temperature() float64 {
	return units.KineticTemperature(e.KineticEnergy(), e.DegreesOfFreedom())
}

// Step advances one velocity-Verlet step and returns the energies at the
// new positions. Forces must be current on entry (call ComputeForces once
// before the first Step); on exit they are current for the next Step.
func (e *Engine) Step(w, wPME *work.Counters) EnergyReport {
	half := 0.5 * e.dtAKMA
	if e.refPos != nil {
		copy(e.refPos, e.Pos)
	}
	for i := range e.Pos {
		e.Vel[i] = e.Vel[i].Add(e.Frc[i].Scale(half * e.invMass[i]))
		e.Pos[i] = e.Pos[i].Add(e.Vel[i].Scale(e.dtAKMA))
	}
	e.shake(e.refPos)
	rep := e.ComputeForces(w, wPME)
	for i := range e.Vel {
		e.Vel[i] = e.Vel[i].Add(e.Frc[i].Scale(half * e.invMass[i]))
	}
	e.rattleVelocities()
	e.applyThermostat()
	if w != nil {
		w.Integrate += int64(2 * len(e.Pos))
	}
	rep.Kinetic = e.KineticEnergy()
	return rep
}

// Run performs n dynamics steps (after ensuring forces are initialized)
// and returns the per-step reports.
func (e *Engine) Run(n int, w, wPME *work.Counters) []EnergyReport {
	e.ComputeForces(w, wPME)
	reports := make([]EnergyReport, 0, n)
	for s := 0; s < n; s++ {
		reports = append(reports, e.Step(w, wPME))
	}
	return reports
}

// Minimize runs steepest descent with an adaptive step: accepted moves grow
// the step 20%, rejected moves halve it. Returns the final potential
// energy. Velocities are untouched.
func (e *Engine) Minimize(maxSteps int, initialStep float64) float64 {
	step := initialStep
	rep := e.ComputeForces(nil, nil)
	prev := rep.Potential()
	saved := make([]vec.V, len(e.Pos))
	for s := 0; s < maxSteps && step > 1e-8; s++ {
		copy(saved, e.Pos)
		// Normalized steepest-descent move capped at `step` per atom.
		var fmax float64
		for _, f := range e.Frc {
			if n := f.Norm(); n > fmax {
				fmax = n
			}
		}
		if fmax == 0 {
			break
		}
		scale := step / fmax
		for i := range e.Pos {
			e.Pos[i] = e.Pos[i].Add(e.Frc[i].Scale(scale))
		}
		rep = e.ComputeForces(nil, nil)
		if cur := rep.Potential(); cur < prev {
			prev = cur
			step *= 1.2
		} else {
			copy(e.Pos, saved)
			step *= 0.5
			// Forces correspond to rejected positions; restore.
			rep = e.ComputeForces(nil, nil)
		}
	}
	return prev
}

// Wrap maps all positions back into the primary cell (positions drift out
// during dynamics; energies are wrap-invariant, this is cosmetic for
// output).
func (e *Engine) Wrap() {
	for i := range e.Pos {
		e.Pos[i] = e.Sys.Box.Wrap(e.Pos[i])
	}
}
