package md

import (
	"math"

	"repro/internal/vec"
)

// constraint is one fixed-length bond (SHAKE).
type constraint struct {
	i, j   int32
	d2     float64 // target length squared
	invMi  float64
	invMj  float64
	redMas float64 // 1/mi + 1/mj
}

const (
	shakeTol      = 1e-10 // relative tolerance on r² − d²
	shakeMaxIters = 500
)

// buildConstraints collects the bonds to constrain: with ConstrainHBonds,
// every bond involving a hydrogen (CHARMM's SHAKE BONH), at its force-field
// equilibrium length.
func (e *Engine) buildConstraints() {
	if !e.Cfg.ConstrainHBonds {
		return
	}
	isH := func(i int32) bool { return e.Sys.Mass(int(i)) < 1.5 }
	for bi, b := range e.Sys.Bonds {
		if !isH(b[0]) && !isH(b[1]) {
			continue
		}
		r0 := e.FF.BondR0(bi)
		e.constraints = append(e.constraints, constraint{
			i: b[0], j: b[1],
			d2:     r0 * r0,
			invMi:  e.invMass[b[0]],
			invMj:  e.invMass[b[1]],
			redMas: e.invMass[b[0]] + e.invMass[b[1]],
		})
	}
}

// NumConstraints returns the active constraint count.
func (e *Engine) NumConstraints() int { return len(e.constraints) }

// shake iteratively restores the constrained bond lengths after the drift,
// correcting velocities consistently (standard SHAKE with the pre-move
// reference vectors in ref). Panics if the iteration fails to converge,
// which indicates a broken timestep.
func (e *Engine) shake(ref []vec.V) {
	if len(e.constraints) == 0 {
		return
	}
	box := e.Sys.Box
	invDt := 1 / e.dtAKMA
	for iter := 0; iter < shakeMaxIters; iter++ {
		converged := true
		for _, c := range e.constraints {
			s := box.MinImage(e.Pos[c.i], e.Pos[c.j])
			diff := s.Norm2() - c.d2
			if math.Abs(diff) <= shakeTol*c.d2+1e-12 {
				continue
			}
			converged = false
			r := box.MinImage(ref[c.i], ref[c.j])
			denom := 2 * c.redMas * s.Dot(r)
			if denom == 0 {
				continue // degenerate geometry; next sweep retries
			}
			g := diff / denom
			corr := r.Scale(g)
			e.Pos[c.i] = e.Pos[c.i].Sub(corr.Scale(c.invMi))
			e.Pos[c.j] = e.Pos[c.j].Add(corr.Scale(c.invMj))
			// Velocities move with the position correction.
			e.Vel[c.i] = e.Vel[c.i].Sub(corr.Scale(c.invMi * invDt))
			e.Vel[c.j] = e.Vel[c.j].Add(corr.Scale(c.invMj * invDt))
		}
		if converged {
			return
		}
	}
	panic("md: SHAKE did not converge (timestep too large?)")
}

// rattleVelocities removes the velocity components along each constrained
// bond (the RATTLE velocity stage after the final half-kick).
func (e *Engine) rattleVelocities() {
	if len(e.constraints) == 0 {
		return
	}
	box := e.Sys.Box
	for iter := 0; iter < shakeMaxIters; iter++ {
		converged := true
		for _, c := range e.constraints {
			r := box.MinImage(e.Pos[c.i], e.Pos[c.j])
			vRel := e.Vel[c.i].Sub(e.Vel[c.j])
			rv := r.Dot(vRel)
			if math.Abs(rv) <= 1e-10 {
				continue
			}
			converged = false
			k := rv / (c.redMas * r.Norm2())
			corr := r.Scale(k)
			e.Vel[c.i] = e.Vel[c.i].Sub(corr.Scale(c.invMi))
			e.Vel[c.j] = e.Vel[c.j].Add(corr.Scale(c.invMj))
		}
		if converged {
			return
		}
	}
	panic("md: RATTLE did not converge")
}

// DegreesOfFreedom returns 3N minus the number of constraints — the count
// used for temperature.
func (e *Engine) DegreesOfFreedom() int {
	return 3*e.Sys.N() - len(e.constraints)
}
