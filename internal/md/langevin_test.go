package md

import (
	"math"
	"testing"
)

func TestLangevinEquilibratesToTarget(t *testing.T) {
	sys := waterBox(27, 12, 21)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	e.Minimize(200, 0.2)
	e.InitVelocities(50, 31) // start far below target

	lang := LangevinConfig{FrictionPS: 20, Target: 300, Seed: 7}
	e.ComputeForces(nil, nil)
	var avg float64
	const steps = 800
	for s := 0; s < steps; s++ {
		e.StepLangevin(lang, nil, nil)
		if s >= steps/2 {
			avg += e.Temperature()
		}
	}
	avg /= steps / 2
	if avg < 220 || avg > 380 {
		t.Fatalf("Langevin steady-state temperature %g K, want ≈300", avg)
	}
}

func TestLangevinCoolsHotSystem(t *testing.T) {
	sys := waterBox(27, 12, 22)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	e.Minimize(200, 0.2)
	e.InitVelocities(900, 33)
	hot := e.Temperature()
	lang := LangevinConfig{FrictionPS: 30, Target: 100, Seed: 9}
	e.ComputeForces(nil, nil)
	for s := 0; s < 600; s++ {
		e.StepLangevin(lang, nil, nil)
	}
	cold := e.Temperature()
	if cold >= hot/2 {
		t.Fatalf("Langevin did not cool: %g -> %g K", hot, cold)
	}
}

func TestLangevinDeterministic(t *testing.T) {
	run := func() float64 {
		sys := waterBox(8, 12, 23)
		cfg := smallCutoffs(DefaultConfig())
		cfg.Temperature = 100
		e := NewEngine(sys, cfg)
		lang := LangevinConfig{FrictionPS: 10, Target: 200, Seed: 5}
		e.ComputeForces(nil, nil)
		var last float64
		for s := 0; s < 20; s++ {
			last = e.StepLangevin(lang, nil, nil).Total()
		}
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("Langevin not deterministic: %g vs %g", a, b)
	}
}

func TestMinimizeCGLowersEnergy(t *testing.T) {
	sys := waterBox(27, 12, 24)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	before := e.ComputeForces(nil, nil).Potential()
	after := e.MinimizeCG(150, 0.2)
	if after >= before {
		t.Fatalf("CG did not lower energy: %g -> %g", before, after)
	}
}

func TestMinimizeCGBeatsSDAtEqualBudget(t *testing.T) {
	build := func() *Engine {
		sys := waterBox(27, 12, 25)
		cfg := smallCutoffs(DefaultConfig())
		cfg.Temperature = 0
		return NewEngine(sys, cfg)
	}
	const iters = 80
	sd := build().Minimize(iters, 0.2)
	cg := build().MinimizeCG(iters, 0.2)
	// CG should do at least as well; allow a small tolerance for the rare
	// line-search rejection overhead.
	if cg > sd+math.Abs(sd)*0.02 {
		t.Fatalf("CG (%g) notably worse than SD (%g) at equal iterations", cg, sd)
	}
}
