package md

import (
	"math"
	"testing"
)

func TestPressureFiniteAndRespondsToCompression(t *testing.T) {
	// A comfortable box and a strongly compressed box of the same waters
	// (64 waters in 9.5 Å is twice liquid density, deep in the repulsive wall): the compressed one
	// must show the higher pressure. Boxes stay large enough that the
	// cutoff covers the LJ minimum — shorter cutoffs turn the virial into
	// a truncation artifact.
	loose := waterBox(64, 16, 41)
	tight := waterBox(64, 9.5, 41)
	pressureOf := func(sys interface{ N() int }, l float64, seed uint64) float64 {
		s := waterBox(64, l, seed)
		cfg := smallCutoffs(DefaultConfig())
		cfg = ClampCutoffs(cfg, s.Box)
		cfg.Temperature = 0
		e := NewEngine(s, cfg)
		e.Minimize(150, 0.2)
		e.InitVelocities(300, seed)
		return e.Pressure()
	}
	_ = loose
	_ = tight
	pLoose := pressureOf(nil, 16, 41)
	pTight := pressureOf(nil, 9.5, 41)
	if math.IsNaN(pLoose) || math.IsNaN(pTight) {
		t.Fatal("NaN pressure")
	}
	if pTight <= pLoose {
		t.Fatalf("compression did not raise pressure: %g atm vs %g atm", pTight, pLoose)
	}
}

func TestPressureIdealGasLimit(t *testing.T) {
	// Waters far apart at high temperature: the interaction part is tiny
	// and P·V ≈ (2/3)·K should hold within a factor.
	sys := waterBox(8, 30, 43)
	cfg := DefaultConfig()
	cfg.FF.CutOn, cfg.FF.CutOff, cfg.FF.ListCutoff = 3.0, 4.0, 5.0
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	// Relax the intramolecular strain first: affine volume scaling probes
	// bond-stretch derivatives, which must vanish at equilibrium for the
	// ideal-gas comparison to make sense.
	e.Minimize(400, 0.05)
	e.InitVelocities(400, 5)
	p := e.Pressure()
	ideal := 2.0 / 3.0 * e.KineticEnergy() / sys.Box.Volume() * AtmPerKcalMolA3
	if p <= 0 {
		t.Fatalf("dilute-gas pressure %g atm not positive", p)
	}
	if ratio := p / ideal; ratio < 0.3 || ratio > 3 {
		t.Fatalf("pressure %g atm vs ideal %g atm (ratio %g)", p, ideal, ratio)
	}
}
