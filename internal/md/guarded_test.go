package md

import (
	"errors"
	"math"
	"testing"

	"repro/internal/guard"
)

func guardedEngine(seed uint64) *Engine {
	sys := waterBox(27, 12, seed)
	cfg := smallCutoffs(DefaultConfig())
	cfg.Temperature = 250
	cfg.Seed = seed
	e := NewEngine(sys, cfg)
	e.ComputeForces(nil, nil)
	return e
}

// TestGuardedRunWithoutTripsIsByteIdentical: an armed guard that never
// fires must not perturb the trajectory in any way.
func TestGuardedRunWithoutTripsIsByteIdentical(t *testing.T) {
	plain := guardedEngine(3)
	guarded := guardedEngine(3)
	mon := guard.NewMonitor(guard.Config{Enabled: true, DriftTol: 1e6}, false)
	for s := 1; s <= 6; s++ {
		want := plain.Step(nil, nil)
		got, err := guarded.StepGuarded(mon, s, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("step %d: guarded energies differ from unguarded", s)
		}
	}
	for i := range plain.Pos {
		if plain.Pos[i] != guarded.Pos[i] {
			t.Fatalf("atom %d: guarded positions differ", i)
		}
	}
	if len(mon.Events()) != 0 {
		t.Fatalf("unexpected trips: %v", mon.Events())
	}
}

// TestGuardedFallbackRecovers: a seeded trip degrades the engine to exact
// kernels, re-runs the step, records a recovered event and continues with
// finite energies.
func TestGuardedFallbackRecovers(t *testing.T) {
	e := guardedEngine(5)
	if e.Cfg.FF.ExactKernels {
		t.Fatal("test premise: engine must start on tabulated kernels")
	}
	mon := guard.NewMonitor(guard.Config{Enabled: true, InjectStep: 3}, e.Cfg.FF.ExactKernels)
	for s := 1; s <= 5; s++ {
		rep, err := e.StepGuarded(mon, s, nil, nil)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for _, v := range []float64{rep.Potential(), rep.Kinetic, rep.Total()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("step %d: non-finite energy after recovery", s)
			}
		}
	}
	if !e.Cfg.FF.ExactKernels {
		t.Error("engine did not degrade to exact kernels")
	}
	if !mon.Exact() {
		t.Error("monitor does not know about the degradation")
	}
	evs := mon.Events()
	if len(evs) != 1 {
		t.Fatalf("want exactly one trip, got %v", evs)
	}
	if evs[0].Step != 3 || evs[0].Cause != guard.CauseInjected || !evs[0].Recovered {
		t.Errorf("trip event %+v", evs[0])
	}
}

// TestGuardedAbortPolicy: PolicyAbort surfaces the trip as a *TripError
// instead of degrading.
func TestGuardedAbortPolicy(t *testing.T) {
	e := guardedEngine(9)
	mon := guard.NewMonitor(guard.Config{
		Enabled: true, Policy: guard.PolicyAbort, InjectStep: 2,
	}, e.Cfg.FF.ExactKernels)
	if _, err := e.StepGuarded(mon, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, err := e.StepGuarded(mon, 2, nil, nil)
	var te *guard.TripError
	if !errors.As(err, &te) {
		t.Fatalf("want TripError, got %v", err)
	}
	if te.Ev.Recovered {
		t.Error("aborted trip marked recovered")
	}
	if e.Cfg.FF.ExactKernels {
		t.Error("abort policy degraded the kernels anyway")
	}
}

// TestUseExactKernelsIdempotent: calling it twice is safe and the second
// call does not rebuild anything visible.
func TestUseExactKernelsIdempotent(t *testing.T) {
	e := guardedEngine(11)
	e.UseExactKernels()
	if !e.Cfg.FF.ExactKernels {
		t.Fatal("first call did not switch")
	}
	ff1 := e.FF
	e.UseExactKernels()
	if e.FF != ff1 {
		t.Error("second call rebuilt the force field")
	}
	// The engine still steps after degradation.
	rep := e.Step(nil, nil)
	if math.IsNaN(rep.Total()) {
		t.Error("non-finite energy after kernel switch")
	}
}
