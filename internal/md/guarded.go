package md

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/guard"
	"repro/internal/work"
)

// UseExactKernels degrades the engine to the reference (exact) kernels at
// runtime: the tabulated nonbonded kernel is replaced by the reference
// pair loop and PME is pinned to the reference complex FFT. Positions,
// velocities and forces are untouched; the neighbour list is invalidated
// so the next evaluation rebuilds it under the new force field. A no-op
// when the engine is already exact.
func (e *Engine) UseExactKernels() {
	if e.Cfg.FF.ExactKernels {
		return
	}
	e.Cfg.FF.ExactKernels = true
	e.FF = ff.New(e.Sys, e.Cfg.FF)
	e.nbk = e.FF.NewNonbondedKernel()
	if e.pme != nil {
		e.pme.ExactFFT = true
	}
	e.lister = nil
	e.listOrigin = nil
}

// StepGuarded advances one velocity-Verlet step under the numeric
// guardrails. step is the 1-based MD step number (used for event records
// and the injection hook). With the monitor disabled it is exactly Step.
//
// On a guard trip with PolicyFallback the engine rewinds to the pre-step
// state, degrades to exact kernels (UseExactKernels), re-evaluates forces
// and redoes the step on exact math; the trip is recorded as a recovered
// Event and the run continues. With PolicyAbort — or when the engine is
// already exact, so there is nothing softer to fall back from — the trip
// comes back as a *guard.TripError.
func (e *Engine) StepGuarded(m *guard.Monitor, step int, w, wPME *work.Counters) (EnergyReport, error) {
	if !m.Enabled() {
		return e.Step(w, wPME), nil
	}
	pre := e.Snapshot()
	rep := e.Step(w, wPME)
	ev, tripped := m.Check(0, step, e.Frc, rep.Total())
	if !tripped {
		m.Observe(rep.Total())
		return rep, nil
	}
	if m.Policy() == guard.PolicyAbort || m.Exact() {
		m.Record(ev)
		return rep, &guard.TripError{Ev: ev}
	}
	if err := e.Restore(pre); err != nil {
		return rep, fmt.Errorf("md: guard fallback rewind: %w", err)
	}
	e.UseExactKernels()
	m.MarkExact()
	// Forces in the pre-step snapshot came from the degraded kernels;
	// re-evaluate them exactly so the redone step is exact end to end.
	e.ComputeForces(w, wPME)
	rep = e.Step(w, wPME)
	ev.Recovered = true
	m.Record(ev)
	m.Observe(rep.Total())
	return rep, nil
}
