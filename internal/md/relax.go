package md

import (
	"repro/internal/space"
	"repro/internal/topol"
)

// ClampCutoffs shrinks the nonbonded ranges of cfg so they respect the
// minimum-image limit of the given box (needed for systems smaller than
// the default 12 Å list range). Configurations that already fit are
// returned unchanged.
func ClampCutoffs(cfg Config, box space.Box) Config {
	max := box.MaxCutoff()
	if cfg.FF.ListCutoff <= max {
		return cfg
	}
	cfg.FF.ListCutoff = max
	if cfg.FF.CutOff > max-1 {
		cfg.FF.CutOff = max - 1
	}
	if cfg.FF.CutOn > cfg.FF.CutOff-1.5 {
		cfg.FF.CutOn = cfg.FF.CutOff - 1.5
	}
	return cfg
}

// Relax minimizes the system's raw built geometry in place (steepest
// descent under the classic shift force field) and writes the relaxed
// coordinates back into sys.Pos. The synthetic builder produces strained
// serpentine turns; benchmark and dynamics runs call Relax once so the
// measured workload is a physically stable trajectory. Returns the final
// potential energy.
func Relax(sys *topol.System, steps int) float64 {
	cfg := ClampCutoffs(DefaultConfig(), sys.Box)
	cfg.Temperature = 0
	e := NewEngine(sys, cfg)
	final := e.Minimize(steps, 0.1)
	copy(sys.Pos, e.Pos)
	return final
}
