package md

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTripContinuesTrajectory(t *testing.T) {
	build := func() *Engine {
		sys := waterBox(27, 12, 51)
		cfg := smallCutoffs(DefaultConfig())
		cfg.Temperature = 200
		cfg.Seed = 3
		return NewEngine(sys, cfg)
	}

	// Reference: 10 straight steps.
	ref := build()
	refReports := ref.Run(10, nil, nil)

	// Split: 5 steps, checkpoint, restore into a fresh engine, 5 more.
	a := build()
	a.Run(5, nil, nil)
	var buf bytes.Buffer
	if err := a.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Continue without re-evaluating step 0 forces (they were restored):
	// drive the Verlet steps directly.
	var got []EnergyReport
	for s := 0; s < 5; s++ {
		got = append(got, b.Step(nil, nil))
	}
	for s := 0; s < 5; s++ {
		want := refReports[5+s].Total()
		if diff := got[s].Total() - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("restarted step %d: %g vs straight %g", s, got[s].Total(), want)
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	sysA := waterBox(27, 12, 52)
	sysB := waterBox(8, 12, 52)
	cfg := smallCutoffs(DefaultConfig())
	a := NewEngine(sysA, cfg)
	var buf bytes.Buffer
	if err := a.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong atom count.
	b := NewEngine(sysB, cfg)
	if err := b.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("atom-count mismatch accepted")
	}
	// Wrong timestep.
	cfg2 := cfg
	cfg2.TimestepFS = 2
	c := NewEngine(sysA, cfg2)
	if err := c.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("timestep mismatch accepted")
	}
	// Garbage input.
	d := NewEngine(sysA, cfg)
	if err := d.ReadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}
