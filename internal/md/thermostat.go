package md

import "math"

// ThermostatConfig couples the dynamics to a heat bath.
type ThermostatConfig struct {
	// Target temperature in Kelvin.
	Target float64
	// TauFS is the Berendsen coupling time constant in femtoseconds;
	// larger values couple more weakly. Must be ≥ the timestep.
	TauFS float64
}

// applyThermostat rescales the velocities toward the target temperature
// with the Berendsen weak-coupling scheme:
// λ = sqrt(1 + (dt/τ)(T0/T − 1)).
func (e *Engine) applyThermostat() {
	th := e.Cfg.Thermostat
	if th == nil {
		return
	}
	t := e.Temperature()
	if t <= 0 {
		return
	}
	ratio := e.Cfg.TimestepFS / th.TauFS
	if ratio > 1 {
		ratio = 1
	}
	lambda := math.Sqrt(1 + ratio*(th.Target/t-1))
	// Clamp extreme rescales so a cold start cannot overshoot violently.
	if lambda > 1.25 {
		lambda = 1.25
	}
	if lambda < 0.8 {
		lambda = 0.8
	}
	for i := range e.Vel {
		e.Vel[i] = e.Vel[i].Scale(lambda)
	}
}
