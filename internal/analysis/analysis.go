// Package analysis provides the standard trajectory analyses an MD user
// expects next to the engine: radial distribution functions, mean-square
// displacement and velocity autocorrelation.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/space"
	"repro/internal/vec"
)

// RDF computes the radial distribution function g(r) between the atom
// index sets selA and selB over one configuration, with bins of width dr
// up to rmax. Returns the bin centers and g values. Self-pairs (the same
// atom appearing in both selections) are skipped. rmax must respect the
// minimum-image limit of the box.
func RDF(box space.Box, pos []vec.V, selA, selB []int32, rmax, dr float64) (r, g []float64, err error) {
	if dr <= 0 || rmax <= 0 {
		return nil, nil, fmt.Errorf("analysis: RDF needs positive dr and rmax")
	}
	if rmax > box.MaxCutoff() {
		return nil, nil, fmt.Errorf("analysis: rmax %g beyond minimum-image limit %g", rmax, box.MaxCutoff())
	}
	if len(selA) == 0 || len(selB) == 0 {
		return nil, nil, fmt.Errorf("analysis: empty selection")
	}
	nbins := int(rmax / dr)
	counts := make([]float64, nbins)
	pairs := 0
	for _, i := range selA {
		for _, j := range selB {
			if i == j {
				continue
			}
			pairs++
			d := box.Dist(pos[i], pos[j])
			if d >= rmax {
				continue
			}
			// When rmax is not a whole number of bins, distances in the
			// partial last interval [nbins*dr, rmax) have no bin: the
			// histogram's effective range is nbins*dr.
			if b := int(d / dr); b < nbins {
				counts[b]++
			}
		}
	}
	if pairs == 0 {
		return nil, nil, fmt.Errorf("analysis: no distinct pairs in selection")
	}
	// Normalize by the ideal-gas expectation: pairs·(4πr²dr)/V per bin.
	volume := box.Volume()
	r = make([]float64, nbins)
	g = make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		rc := (float64(b) + 0.5) * dr
		r[b] = rc
		shell := 4 * math.Pi * rc * rc * dr
		ideal := float64(pairs) * shell / volume
		if ideal > 0 {
			g[b] = counts[b] / ideal
		}
	}
	return r, g, nil
}

// RDFFrames averages RDF over several configurations.
func RDFFrames(box space.Box, frames [][]vec.V, selA, selB []int32, rmax, dr float64) (r, g []float64, err error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("analysis: no frames")
	}
	for fi, f := range frames {
		rf, gf, err := RDF(box, f, selA, selB, rmax, dr)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: frame %d: %w", fi, err)
		}
		if g == nil {
			r, g = rf, gf
			continue
		}
		for i := range g {
			g[i] += gf[i]
		}
	}
	for i := range g {
		g[i] /= float64(len(frames))
	}
	return r, g, nil
}

// MSD computes the mean-square displacement ⟨|r(t) − r(0)|²⟩ over the
// selected atoms for each frame relative to the first. Positions must be
// unwrapped (the MD engine never wraps during dynamics, so engine
// trajectories qualify).
func MSD(frames [][]vec.V, sel []int32) ([]float64, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("analysis: no frames")
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("analysis: empty selection")
	}
	ref := frames[0]
	out := make([]float64, len(frames))
	for t, f := range frames {
		if len(f) != len(ref) {
			return nil, fmt.Errorf("analysis: frame %d has %d atoms, frame 0 has %d", t, len(f), len(ref))
		}
		var s float64
		for _, i := range sel {
			s += vec.Dist2(f[i], ref[i])
		}
		out[t] = s / float64(len(sel))
	}
	return out, nil
}

// VACF computes the normalized velocity autocorrelation function
// C(t) = ⟨v(0)·v(t)⟩ / ⟨v(0)·v(0)⟩ over the selected atoms.
func VACF(frames [][]vec.V, sel []int32) ([]float64, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("analysis: no frames")
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("analysis: empty selection")
	}
	ref := frames[0]
	var norm float64
	for _, i := range sel {
		norm += ref[i].Dot(ref[i])
	}
	if norm == 0 {
		return nil, fmt.Errorf("analysis: zero initial velocities")
	}
	out := make([]float64, len(frames))
	for t, f := range frames {
		var s float64
		for _, i := range sel {
			s += ref[i].Dot(f[i])
		}
		out[t] = s / norm
	}
	return out, nil
}

// SelectByName returns the indices of atoms whose name matches, given the
// parallel name list (e.g. from a topology).
func SelectByName(names []string, want string) []int32 {
	var out []int32
	for i, n := range names {
		if n == want {
			out = append(out, int32(i))
		}
	}
	return out
}
