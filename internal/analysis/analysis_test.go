package analysis

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/vec"
)

func uniformGas(r *rng.Source, n int, box space.Box) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(r.Range(0, box.L.X), r.Range(0, box.L.Y), r.Range(0, box.L.Z))
	}
	return pos
}

func all(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	box := space.NewBox(30, 30, 30)
	r := rng.New(1)
	// Average over several random configurations for statistics.
	var frames [][]vec.V
	for k := 0; k < 20; k++ {
		frames = append(frames, uniformGas(r, 400, box))
	}
	sel := all(400)
	_, g, err := RDFFrames(box, frames, sel, sel, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the first couple of bins (poor statistics at tiny r), g ≈ 1.
	for b := 4; b < len(g); b++ {
		if g[b] < 0.8 || g[b] > 1.2 {
			t.Fatalf("ideal-gas g(r) bin %d = %g, want ≈1", b, g[b])
		}
	}
}

func TestRDFLatticePeak(t *testing.T) {
	// A simple cubic lattice with spacing 5 Å: g(r) must peak in the bin
	// containing r = 5 and vanish below it (beyond the self-exclusion).
	box := space.NewBox(30, 30, 30)
	var pos []vec.V
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			for z := 0; z < 6; z++ {
				pos = append(pos, vec.New(float64(x)*5, float64(y)*5, float64(z)*5))
			}
		}
	}
	sel := all(len(pos))
	r, g, err := RDF(box, pos, sel, sel, 9, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The first populated bin is the nearest-neighbour shell at r = 5
	// (the second shell at 5·√2 has equal g by shell geometry, so the
	// global argmax is ambiguous — the first shell is not).
	first := -1
	for b := range g {
		if g[b] > 0 {
			first = b
			break
		}
	}
	if first < 0 || math.Abs(r[first]-5.0) > 0.25 {
		t.Fatalf("first shell at r=%v, want ≈5 (g=%v)", r[first], g)
	}
	if g[first] < 2 {
		t.Fatalf("first shell g = %g, expected a strong peak", g[first])
	}
}

func TestRDFValidation(t *testing.T) {
	box := space.NewBox(10, 10, 10)
	pos := []vec.V{{X: 1}, {X: 2}}
	sel := all(2)
	if _, _, err := RDF(box, pos, sel, sel, 20, 0.5); err == nil {
		t.Fatal("rmax beyond minimum image accepted")
	}
	if _, _, err := RDF(box, pos, nil, sel, 4, 0.5); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, _, err := RDF(box, pos, sel, sel, 4, 0); err == nil {
		t.Fatal("zero dr accepted")
	}
	if _, _, err := RDF(box, pos, []int32{0}, []int32{0}, 4, 0.5); err == nil {
		t.Fatal("self-only selection accepted")
	}
}

func TestMSDBallistic(t *testing.T) {
	// Particles moving at constant velocity: MSD(t) = |v|²·t².
	const n = 10
	v := vec.New(0.3, -0.1, 0.2)
	var frames [][]vec.V
	for step := 0; step < 5; step++ {
		f := make([]vec.V, n)
		for i := range f {
			f[i] = vec.New(float64(i), 0, 0).Add(v.Scale(float64(step)))
		}
		frames = append(frames, f)
	}
	msd, err := MSD(frames, all(n))
	if err != nil {
		t.Fatal(err)
	}
	v2 := v.Norm2()
	for tt := range msd {
		want := v2 * float64(tt*tt)
		if math.Abs(msd[tt]-want) > 1e-12 {
			t.Fatalf("MSD(%d) = %g, want %g", tt, msd[tt], want)
		}
	}
}

func TestVACF(t *testing.T) {
	// Constant velocities: C(t) = 1 for all t. Reversed velocities: −1.
	const n = 6
	f0 := make([]vec.V, n)
	for i := range f0 {
		f0[i] = vec.New(1, float64(i), -1)
	}
	rev := make([]vec.V, n)
	for i := range rev {
		rev[i] = f0[i].Neg()
	}
	c, err := VACF([][]vec.V{f0, f0, rev}, all(n))
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 || c[1] != 1 || math.Abs(c[2]+1) > 1e-12 {
		t.Fatalf("VACF = %v", c)
	}
	if _, err := VACF([][]vec.V{make([]vec.V, n)}, all(n)); err == nil {
		t.Fatal("zero velocities accepted")
	}
}

func TestSelectByName(t *testing.T) {
	names := []string{"OW", "HW1", "HW2", "OW"}
	got := SelectByName(names, "OW")
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("SelectByName = %v", got)
	}
	if SelectByName(names, "XX") != nil {
		t.Fatal("phantom selection")
	}
}
