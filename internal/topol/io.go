package topol

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/vec"
)

// WritePDB writes the system as PDB ATOM records (orthorhombic CRYST1
// header plus one record per atom), enough for any molecular viewer to
// display the synthetic structure.
func (s *System) WritePDB(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "CRYST1%9.3f%9.3f%9.3f  90.00  90.00  90.00 P 1           1\n",
		s.Box.L.X, s.Box.L.Y, s.Box.L.Z)
	for i, a := range s.Atoms {
		res := s.Residues[a.Residue]
		p := s.Pos[i]
		// Serial numbers wrap at PDB's column limit; viewers tolerate it.
		fmt.Fprintf(bw, "ATOM  %5d %-4s %-4s %4d    %8.3f%8.3f%8.3f  1.00  0.00          %2s\n",
			(i+1)%100000, clip(a.Name, 4), clip(res.Name, 4), int(a.Residue)%10000+1,
			p.X, p.Y, p.Z, element(s.Types[a.Type].Name))
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// element derives the element symbol from the type name.
func element(typeName string) string {
	if typeName == "" {
		return "X"
	}
	switch typeName[0] {
	case 'C':
		return "C"
	case 'N':
		return "N"
	case 'O':
		return "O"
	case 'H':
		return "H"
	case 'S':
		return "S"
	}
	return "X"
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// WritePSF writes an X-PLOR-style PSF: the topology sections (atoms with
// charges and masses, bonds, angles, dihedrals, impropers) CHARMM tools
// expect.
func (s *System) WritePSF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "PSF")
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "%8d !NTITLE\n", 1)
	fmt.Fprintln(bw, " REMARKS synthetic myoglobin-class workload (repro)")
	fmt.Fprintln(bw)

	fmt.Fprintf(bw, "%8d !NATOM\n", s.N())
	for i, a := range s.Atoms {
		res := s.Residues[a.Residue]
		fmt.Fprintf(bw, "%8d MAIN %-4d %-4s %-4s %-4s %10.6f %13.4f %11d\n",
			i+1, int(a.Residue)+1, clip(res.Name, 4), clip(a.Name, 4),
			clip(s.Types[a.Type].Name, 4), a.Charge, s.Types[a.Type].Mass, 0)
	}
	fmt.Fprintln(bw)

	writeIdx := func(title string, count int, flat []int32, perLine int) {
		fmt.Fprintf(bw, "%8d !%s\n", count, title)
		for i, v := range flat {
			fmt.Fprintf(bw, "%8d", v+1)
			if (i+1)%perLine == 0 {
				fmt.Fprintln(bw)
			}
		}
		if len(flat)%perLine != 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintln(bw)
	}

	flat2 := make([]int32, 0, 2*len(s.Bonds))
	for _, b := range s.Bonds {
		flat2 = append(flat2, b[0], b[1])
	}
	writeIdx("NBOND: bonds", len(s.Bonds), flat2, 8)

	flat3 := make([]int32, 0, 3*len(s.Angles))
	for _, a := range s.Angles {
		flat3 = append(flat3, a[0], a[1], a[2])
	}
	writeIdx("NTHETA: angles", len(s.Angles), flat3, 9)

	flat4 := make([]int32, 0, 4*len(s.Dihedrals))
	for _, d := range s.Dihedrals {
		flat4 = append(flat4, d[0], d[1], d[2], d[3])
	}
	writeIdx("NPHI: dihedrals", len(s.Dihedrals), flat4, 8)

	flatI := make([]int32, 0, 4*len(s.Impropers))
	for _, d := range s.Impropers {
		flatI = append(flatI, d[0], d[1], d[2], d[3])
	}
	writeIdx("NIMPHI: impropers", len(s.Impropers), flatI, 8)

	return bw.Flush()
}

// WriteXYZ writes one XYZ-format frame of the given positions with a
// comment line. Positions default to the system's own when pos is nil.
func (s *System) WriteXYZ(w io.Writer, pos []vec.V, comment string) error {
	if pos == nil {
		pos = s.Pos
	}
	if len(pos) != s.N() {
		return fmt.Errorf("topol: %d positions for %d atoms", len(pos), s.N())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n%s\n", s.N(), comment)
	for i := range pos {
		fmt.Fprintf(bw, "%-2s %14.8f %14.8f %14.8f\n",
			element(s.Types[s.Atoms[i].Type].Name), pos[i].X, pos[i].Y, pos[i].Z)
	}
	return bw.Flush()
}

// XYZReader iterates over the frames of a (possibly multi-frame) XYZ
// stream, as written by WriteXYZ once per frame.
type XYZReader struct {
	sc *bufio.Scanner
}

// NewXYZReader wraps r for frame-by-frame reading.
func NewXYZReader(r io.Reader) *XYZReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return &XYZReader{sc: sc}
}

// Next parses the next frame. It returns io.EOF (wrapped in nothing) once
// the stream is exhausted.
func (xr *XYZReader) Next() (elements []string, pos []vec.V, comment string, err error) {
	sc := xr.sc
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, "", err
		}
		return nil, nil, "", io.EOF
	}
	n, cErr := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if cErr != nil || n < 0 {
		return nil, nil, "", fmt.Errorf("topol: bad XYZ atom count %q", sc.Text())
	}
	if !sc.Scan() {
		return nil, nil, "", fmt.Errorf("topol: XYZ missing comment line")
	}
	comment = sc.Text()
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, nil, "", fmt.Errorf("topol: XYZ truncated at atom %d of %d", i, n)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			return nil, nil, "", fmt.Errorf("topol: malformed XYZ line %q", sc.Text())
		}
		x, ex := strconv.ParseFloat(fields[1], 64)
		y, ey := strconv.ParseFloat(fields[2], 64)
		z, ez := strconv.ParseFloat(fields[3], 64)
		if ex != nil || ey != nil || ez != nil {
			return nil, nil, "", fmt.Errorf("topol: bad coordinates in %q", sc.Text())
		}
		elements = append(elements, fields[0])
		pos = append(pos, vec.New(x, y, z))
	}
	return elements, pos, comment, nil
}

// ReadXYZ parses one XYZ frame, returning the element symbols, positions
// and the comment line.
func ReadXYZ(r io.Reader) (elements []string, pos []vec.V, comment string, err error) {
	el, pos, comment, err := NewXYZReader(r).Next()
	if err == io.EOF {
		return nil, nil, "", fmt.Errorf("topol: empty XYZ input")
	}
	return el, pos, comment, err
}
