package topol

import "sort"

// adjacency builds per-atom sorted neighbour lists from the bond list.
func adjacency(n int, bonds [][2]int32) [][]int32 {
	adj := make([][]int32, n)
	for _, b := range bonds {
		adj[b[0]] = append(adj[b[0]], b[1])
		adj[b[1]] = append(adj[b[1]], b[0])
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, b int) bool { return adj[i][a] < adj[i][b] })
	}
	return adj
}

// DeriveConnectivity fills Angles, Dihedrals, Excl and Pairs14 from the bond
// list, the way CHARMM's structure generation does:
//
//   - an angle (i, j, k) for every pair of distinct neighbours i < k of a
//     center j;
//   - a dihedral (i, j, k, l) for every bond (j, k) and neighbours i of j,
//     l of k, with i ≠ k, l ≠ j, i ≠ l, deduplicated by orientation;
//   - exclusions: 1-2 and 1-3 neighbours;
//   - 1-4 pairs: atoms at graph distance exactly three, not also at a
//     shorter distance through another path.
//
// Impropers are NOT derived; builders add them explicitly at planar centers.
func (s *System) DeriveConnectivity() {
	n := s.N()
	adj := adjacency(n, s.Bonds)

	s.Angles = s.Angles[:0]
	for j := 0; j < n; j++ {
		nb := adj[j]
		for a := 0; a < len(nb); a++ {
			for b := a + 1; b < len(nb); b++ {
				s.Angles = append(s.Angles, [3]int32{nb[a], int32(j), nb[b]})
			}
		}
	}

	s.Dihedrals = s.Dihedrals[:0]
	for _, bond := range s.Bonds {
		j, k := bond[0], bond[1]
		for _, i := range adj[j] {
			if i == k {
				continue
			}
			for _, l := range adj[k] {
				if l == j || l == i {
					continue
				}
				// Canonical orientation: smaller outer atom first when the
				// bond could be traversed both ways; here each bond appears
				// once in s.Bonds so (i,j,k,l) is already unique.
				s.Dihedrals = append(s.Dihedrals, [4]int32{i, j, k, l})
			}
		}
	}

	// Exclusions (1-2, 1-3) and the 1-4 set via a 3-step BFS per atom.
	exclSets := make([][]int32, n)
	var pairs14 [][2]int32
	dist := make([]int8, n)
	for i := range dist {
		dist[i] = -1
	}
	var frontier, next []int32
	for src := 0; src < n; src++ {
		// BFS to depth 3.
		var touched []int32
		dist[src] = 0
		touched = append(touched, int32(src))
		frontier = frontier[:0]
		frontier = append(frontier, int32(src))
		for d := int8(1); d <= 3; d++ {
			next = next[:0]
			for _, u := range frontier {
				for _, v := range adj[u] {
					if dist[v] == -1 {
						dist[v] = d
						touched = append(touched, v)
						next = append(next, v)
					}
				}
			}
			frontier, next = next, frontier
		}
		for _, v := range touched {
			if v == int32(src) {
				continue
			}
			switch dist[v] {
			case 1, 2:
				exclSets[src] = append(exclSets[src], v)
			case 3:
				if v > int32(src) {
					pairs14 = append(pairs14, [2]int32{int32(src), v})
				}
			}
		}
		for _, v := range touched {
			dist[v] = -1
		}
	}
	s.Excl = NewExclusions(exclSets)
	s.Pairs14 = pairs14
}

// BondedDegree returns the number of bonds attached to atom i.
func (s *System) BondedDegree(i int32) int {
	d := 0
	for _, b := range s.Bonds {
		if b[0] == i || b[1] == i {
			d++
		}
	}
	return d
}
