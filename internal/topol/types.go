// Package topol defines molecular topology — atoms, bonded terms, exclusion
// lists — and builds the synthetic molecular systems used by the study,
// foremost a 3552-atom myoglobin-like system matching the paper's workload
// (153-residue α-class protein + CO + 337 waters + sulfate in the 80×36×48 Å
// periodic cell of the PME charge mesh).
package topol

import (
	"fmt"
	"sort"

	"repro/internal/space"
	"repro/internal/vec"
)

// AtomType holds the per-type force-field constants.
type AtomType struct {
	Name     string
	Mass     float64 // amu
	Eps      float64 // LJ well depth, kcal/mol (positive)
	RminHalf float64 // LJ Rmin/2, Å
}

// Type indices into System.Types. The table is fixed at build time.
const (
	TypeC  = iota // carbonyl / backbone carbon
	TypeCT        // aliphatic carbon
	TypeCM        // carbon monoxide carbon
	TypeN         // backbone nitrogen
	TypeO         // carbonyl oxygen
	TypeOH        // hydroxyl oxygen
	TypeOW        // water oxygen
	TypeOS        // sulfate oxygen
	TypeOM        // carbon monoxide oxygen
	TypeH         // polar hydrogen
	TypeHW        // water hydrogen
	TypeHA        // nonpolar hydrogen
	TypeS         // sulfur
	numTypes
)

// StandardTypes returns the fixed atom-type table shared by all systems
// built by this package. Values are CHARMM22-like.
func StandardTypes() []AtomType {
	t := make([]AtomType, numTypes)
	t[TypeC] = AtomType{"C", 12.011, 0.110, 2.000}
	t[TypeCT] = AtomType{"CT", 12.011, 0.080, 2.060}
	t[TypeCM] = AtomType{"CM", 12.011, 0.110, 2.100}
	t[TypeN] = AtomType{"N", 14.007, 0.200, 1.850}
	t[TypeO] = AtomType{"O", 15.999, 0.120, 1.700}
	t[TypeOH] = AtomType{"OH", 15.999, 0.152, 1.770}
	t[TypeOW] = AtomType{"OW", 15.999, 0.152, 1.768}
	t[TypeOS] = AtomType{"OS", 15.999, 0.120, 1.700}
	t[TypeOM] = AtomType{"OM", 15.999, 0.120, 1.700}
	t[TypeH] = AtomType{"H", 1.008, 0.046, 0.225}
	t[TypeHW] = AtomType{"HW", 1.008, 0.046, 0.225}
	t[TypeHA] = AtomType{"HA", 1.008, 0.022, 1.320}
	t[TypeS] = AtomType{"S", 32.060, 0.450, 2.000}
	return t
}

// Atom is one particle of the system.
type Atom struct {
	Name    string
	Type    int32   // index into System.Types
	Charge  float64 // elementary charges
	Residue int32   // index into System.Residues
}

// Residue is a contiguous range of atoms [First, Last).
type Residue struct {
	Name  string
	First int32
	Last  int32
}

// System is a complete molecular topology with coordinates.
type System struct {
	Box      space.Box
	Types    []AtomType
	Atoms    []Atom
	Pos      []vec.V
	Residues []Residue

	Bonds     [][2]int32
	Angles    [][3]int32
	Dihedrals [][4]int32
	Impropers [][4]int32 // center listed first

	Excl    Exclusions // 1-2 and 1-3 neighbours per atom
	Pairs14 [][2]int32 // atoms at bonded distance exactly 3
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Atoms) }

// Mass returns the mass of atom i.
func (s *System) Mass(i int) float64 { return s.Types[s.Atoms[i].Type].Mass }

// TotalCharge returns the net charge of the system.
func (s *System) TotalCharge() float64 {
	var q float64
	for _, a := range s.Atoms {
		q += a.Charge
	}
	return q
}

// TotalMass returns the total mass in amu.
func (s *System) TotalMass() float64 {
	var m float64
	for i := range s.Atoms {
		m += s.Mass(i)
	}
	return m
}

// Validate checks structural invariants and returns the first violation.
func (s *System) Validate() error {
	n := int32(s.N())
	if len(s.Pos) != int(n) {
		return fmt.Errorf("topol: %d atoms but %d positions", n, len(s.Pos))
	}
	for i, a := range s.Atoms {
		if a.Type < 0 || int(a.Type) >= len(s.Types) {
			return fmt.Errorf("topol: atom %d has invalid type %d", i, a.Type)
		}
		if a.Residue < 0 || int(a.Residue) >= len(s.Residues) {
			return fmt.Errorf("topol: atom %d has invalid residue %d", i, a.Residue)
		}
	}
	check := func(kind string, idx []int32) error {
		for _, v := range idx {
			if v < 0 || v >= n {
				return fmt.Errorf("topol: %s references atom %d outside [0,%d)", kind, v, n)
			}
		}
		return nil
	}
	for _, b := range s.Bonds {
		if err := check("bond", b[:]); err != nil {
			return err
		}
		if b[0] == b[1] {
			return fmt.Errorf("topol: self bond on atom %d", b[0])
		}
	}
	for _, a := range s.Angles {
		if err := check("angle", a[:]); err != nil {
			return err
		}
	}
	for _, d := range s.Dihedrals {
		if err := check("dihedral", d[:]); err != nil {
			return err
		}
	}
	for _, im := range s.Impropers {
		if err := check("improper", im[:]); err != nil {
			return err
		}
	}
	for _, p := range s.Pairs14 {
		if err := check("1-4 pair", p[:]); err != nil {
			return err
		}
	}
	return nil
}

// Exclusions stores, for each atom, the sorted set of atoms whose nonbonded
// interaction is excluded (bonded 1-2 and 1-3 neighbours), in CSR layout.
type Exclusions struct {
	idx  []int32 // len n+1
	list []int32
}

// NewExclusions builds the structure from per-atom neighbour sets.
func NewExclusions(sets [][]int32) Exclusions {
	var e Exclusions
	e.idx = make([]int32, len(sets)+1)
	for i, s := range sets {
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		// Deduplicate.
		out := s[:0]
		for j, v := range s {
			if j == 0 || v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		e.idx[i+1] = e.idx[i] + int32(len(out))
		e.list = append(e.list, out...)
	}
	return e
}

// Of returns the sorted excluded-atom list of atom i.
func (e Exclusions) Of(i int) []int32 {
	return e.list[e.idx[i]:e.idx[i+1]]
}

// Excluded reports whether the pair (i, j) is excluded.
func (e Exclusions) Excluded(i, j int32) bool {
	l := e.Of(int(i))
	k := sort.Search(len(l), func(m int) bool { return l[m] >= j })
	return k < len(l) && l[k] == j
}

// Count returns the total number of (directed) exclusion entries.
func (e Exclusions) Count() int { return len(e.list) }
