package topol

import (
	"testing"

	"repro/internal/space"
)

func TestNewWaterBox(t *testing.T) {
	s := NewWaterBox(64, 14, 1)
	if s.N() != 64*3 {
		t.Fatalf("atoms = %d", s.N())
	}
	if len(s.Bonds) != 64*2 || len(s.Angles) != 64 {
		t.Fatalf("bonds/angles = %d/%d", len(s.Bonds), len(s.Angles))
	}
	if q := s.TotalCharge(); q > 1e-9 || q < -1e-9 {
		t.Fatalf("net charge %g", q)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No overlapping molecules.
	cl := space.NewCellList(s.Box, 1.0, s.Pos)
	for _, p := range cl.Pairs(s.Pos, nil) {
		if d := s.Box.Dist(s.Pos[p.I], s.Pos[p.J]); d < 0.5 {
			t.Fatalf("atoms %d,%d overlap at %g Å", p.I, p.J, d)
		}
	}
}

func TestNewWaterBoxDeterministic(t *testing.T) {
	a := NewWaterBox(27, 12, 5)
	b := NewWaterBox(27, 12, 5)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same seed produced different boxes")
		}
	}
}

func TestNewSolvatedBox(t *testing.T) {
	for _, target := range []int{1000, 3552, 8000} {
		sys, k := NewSolvatedBox(target, 2)
		// Atom count within 5% of the target (water granularity).
		if d := float64(sys.N()-target) / float64(target); d > 0.05 || d < -0.05 {
			t.Fatalf("target %d: built %d atoms", target, sys.N())
		}
		if k%4 != 0 || float64(k) < sys.Box.L.X-0.5 {
			t.Fatalf("target %d: mesh %d for box %g", target, k, sys.Box.L.X)
		}
		// Density near liquid water.
		density := float64(sys.N()/3) / sys.Box.Volume()
		if density < 0.025 || density > 0.045 {
			t.Fatalf("density %g waters/Å³", density)
		}
	}
}
