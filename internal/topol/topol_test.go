package topol

import (
	"testing"
	"testing/quick"

	"repro/internal/space"
	"repro/internal/vec"
)

// tinyChain builds a 5-atom linear chain 0-1-2-3-4 for graph tests.
func tinyChain() *System {
	s := &System{
		Box:   space.NewBox(50, 50, 50),
		Types: StandardTypes(),
	}
	res := s.startResidue("CHN")
	for i := 0; i < 5; i++ {
		s.addAtom("A", TypeCT, 0, vec.New(float64(i)*1.5+5, 25, 25), res)
	}
	s.endResidue(res)
	for i := int32(0); i < 4; i++ {
		s.addBond(i, i+1)
	}
	s.DeriveConnectivity()
	return s
}

func TestDeriveConnectivityChain(t *testing.T) {
	s := tinyChain()
	if got := len(s.Angles); got != 3 {
		t.Fatalf("angles = %d, want 3", got)
	}
	if got := len(s.Dihedrals); got != 2 {
		t.Fatalf("dihedrals = %d, want 2", got)
	}
	// Exclusions: 0 excludes 1,2; 2 excludes 0,1,3,4.
	if got := s.Excl.Of(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("excl(0) = %v", got)
	}
	if got := s.Excl.Of(2); len(got) != 4 {
		t.Fatalf("excl(2) = %v", got)
	}
	// 1-4 pairs: (0,3), (1,4).
	if len(s.Pairs14) != 2 {
		t.Fatalf("pairs14 = %v", s.Pairs14)
	}
	want := map[[2]int32]bool{{0, 3}: true, {1, 4}: true}
	for _, p := range s.Pairs14 {
		if !want[p] {
			t.Fatalf("unexpected 1-4 pair %v", p)
		}
	}
}

func TestDeriveConnectivityRing(t *testing.T) {
	// A 4-ring: every atom is 1-2 or 1-3 to every other; no 1-4 pairs.
	s := &System{Box: space.NewBox(20, 20, 20), Types: StandardTypes()}
	res := s.startResidue("RNG")
	pts := []vec.V{{X: 5, Y: 5, Z: 5}, {X: 6.5, Y: 5, Z: 5}, {X: 6.5, Y: 6.5, Z: 5}, {X: 5, Y: 6.5, Z: 5}}
	for _, p := range pts {
		s.addAtom("C", TypeCT, 0, p, res)
	}
	s.endResidue(res)
	s.addBond(0, 1)
	s.addBond(1, 2)
	s.addBond(2, 3)
	s.addBond(3, 0)
	s.DeriveConnectivity()
	if len(s.Pairs14) != 0 {
		t.Fatalf("ring should have no 1-4 pairs, got %v", s.Pairs14)
	}
	if len(s.Angles) != 4 {
		t.Fatalf("ring angles = %d, want 4", len(s.Angles))
	}
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j && !s.Excl.Excluded(i, j) {
				t.Fatalf("ring atoms %d,%d not excluded", i, j)
			}
		}
	}
}

func TestExclusionsSymmetry(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 1})
	n := int32(s.N())
	// Spot check symmetry on a sample (full n² check is too slow).
	for i := int32(0); i < n; i += 37 {
		for _, j := range s.Excl.Of(int(i)) {
			if !s.Excl.Excluded(j, i) {
				t.Fatalf("exclusion asymmetric: %d->%d", i, j)
			}
		}
	}
}

func TestMyoglobinSystemCounts(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 1})
	if s.N() != TotalAtoms {
		t.Fatalf("atoms = %d, want %d", s.N(), TotalAtoms)
	}
	// Residues: 153 protein + 1 CO + 1 sulfate + 337 waters.
	if got, want := len(s.Residues), NumResidues+2+NumWaters; got != want {
		t.Fatalf("residues = %d, want %d", got, want)
	}
	// Count waters and their atoms.
	waters := 0
	for _, r := range s.Residues {
		if r.Name == "TIP3" {
			waters++
			if r.Last-r.First != atomsPerWater {
				t.Fatalf("water with %d atoms", r.Last-r.First)
			}
		}
	}
	if waters != NumWaters {
		t.Fatalf("waters = %d, want %d", waters, NumWaters)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMyoglobinNeutral(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 2})
	if q := s.TotalCharge(); q > 1e-9 || q < -1e-9 {
		t.Fatalf("net charge = %g, want 0", q)
	}
	// Protein residues alone must carry +2.
	var protein float64
	for _, r := range s.Residues {
		if r.Name == "R16" || r.Name == "R17" {
			for i := r.First; i < r.Last; i++ {
				protein += s.Atoms[i].Charge
			}
		}
	}
	if protein < 1.999 || protein > 2.001 {
		t.Fatalf("protein charge = %g, want +2", protein)
	}
}

func TestMyoglobinDeterministic(t *testing.T) {
	a := NewMyoglobinSystem(MyoglobinConfig{Seed: 7})
	b := NewMyoglobinSystem(MyoglobinConfig{Seed: 7})
	if a.N() != b.N() {
		t.Fatal("different sizes")
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("position %d differs between identical seeds", i)
		}
	}
	c := NewMyoglobinSystem(MyoglobinConfig{Seed: 8})
	same := 0
	for i := range a.Pos {
		if a.Pos[i] == c.Pos[i] {
			same++
		}
	}
	// Solute placement is seed-independent; water positions must differ.
	if same == a.N() {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestMyoglobinGeometrySane(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 3})
	// All bonds shorter than 7 Å (turn bonds are strained but bounded) and
	// longer than 0.5 Å.
	for _, b := range s.Bonds {
		d := s.Box.Dist(s.Pos[b[0]], s.Pos[b[1]])
		if d < 0.5 || d > 7.0 {
			t.Fatalf("bond %v has length %g", b, d)
		}
	}
	// No two atoms closer than 0.5 Å (cheap grid check via cell list).
	cl := space.NewCellList(s.Box, 1.0, s.Pos)
	for _, p := range cl.Pairs(s.Pos, nil) {
		if d := s.Box.Dist(s.Pos[p.I], s.Pos[p.J]); d < 0.5 {
			t.Fatalf("atoms %d,%d overlap: %g Å", p.I, p.J, d)
		}
	}
	// All positions inside the primary cell.
	for i, p := range s.Pos {
		if p.X < 0 || p.X >= BoxX || p.Y < 0 || p.Y >= BoxY || p.Z < 0 || p.Z >= BoxZ {
			t.Fatalf("atom %d outside box: %v", i, p)
		}
	}
}

func TestMyoglobinConnectivityScale(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 4})
	// Bonds: protein ≈ 2533+152? Just sanity-check the orders of magnitude
	// and internal consistency rather than exact values.
	if len(s.Bonds) < 3000 || len(s.Bonds) > 4200 {
		t.Fatalf("bond count %d out of expected range", len(s.Bonds))
	}
	if len(s.Angles) < 2500 {
		t.Fatalf("angle count %d too small", len(s.Angles))
	}
	if len(s.Dihedrals) < 2000 {
		t.Fatalf("dihedral count %d too small", len(s.Dihedrals))
	}
	if len(s.Impropers) != NumResidues-1 {
		t.Fatalf("impropers = %d, want %d", len(s.Impropers), NumResidues-1)
	}
	if s.Excl.Count() == 0 || len(s.Pairs14) == 0 {
		t.Fatal("missing exclusions or 1-4 pairs")
	}
	// Every bond is excluded; no 1-4 pair is excluded.
	for _, b := range s.Bonds {
		if !s.Excl.Excluded(b[0], b[1]) {
			t.Fatalf("bond %v not excluded", b)
		}
	}
	for _, p := range s.Pairs14 {
		if s.Excl.Excluded(p[0], p[1]) {
			t.Fatalf("1-4 pair %v is excluded", p)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := tinyChain()
	s.Bonds = append(s.Bonds, [2]int32{0, 99})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range bond")
	}
	s = tinyChain()
	s.Bonds = append(s.Bonds, [2]int32{2, 2})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted self bond")
	}
	s = tinyChain()
	s.Pos = s.Pos[:3]
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted position/atom mismatch")
	}
}

func TestTotalMass(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 5})
	m := s.TotalMass()
	// 3552 atoms averaging ≈7 amu (lots of hydrogens): between 20k and 40k.
	if m < 20000 || m > 40000 {
		t.Fatalf("total mass %g amu implausible", m)
	}
}

func TestBondedDegree(t *testing.T) {
	s := tinyChain()
	if d := s.BondedDegree(0); d != 1 {
		t.Fatalf("degree(0) = %d", d)
	}
	if d := s.BondedDegree(2); d != 2 {
		t.Fatalf("degree(2) = %d", d)
	}
}

func TestRandomChainConnectivityProperty(t *testing.T) {
	// For random linear chains: exclusions are symmetric, 1-4 pairs are
	// disjoint from exclusions, and every bonded pair is excluded.
	f := func(rawN uint8) bool {
		n := int(rawN%40) + 2
		s := &System{Box: space.NewBox(200, 200, 200), Types: StandardTypes()}
		res := s.startResidue("CHN")
		for i := 0; i < n; i++ {
			s.addAtom("A", TypeCT, 0, vec.New(float64(i)*1.5+1, 10, 10), res)
		}
		s.endResidue(res)
		for i := int32(0); i < int32(n-1); i++ {
			s.addBond(i, i+1)
		}
		s.DeriveConnectivity()
		for i := 0; i < n; i++ {
			for _, j := range s.Excl.Of(i) {
				if !s.Excl.Excluded(j, int32(i)) {
					return false
				}
			}
		}
		for _, p := range s.Pairs14 {
			if s.Excl.Excluded(p[0], p[1]) {
				return false
			}
		}
		for _, b := range s.Bonds {
			if !s.Excl.Excluded(b[0], b[1]) {
				return false
			}
		}
		// A linear chain of n atoms has exactly max(0, n−3) 1-4 pairs.
		want := n - 3
		if want < 0 {
			want = 0
		}
		return len(s.Pairs14) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
