package topol

import (
	"math"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/vec"
)

// NewWaterBox builds a cubic box of nw TIP3-like waters on a jittered
// grid with edge length l (Å). Used by tests and by the problem-size
// scaling study.
func NewWaterBox(nw int, l float64, seed uint64) *System {
	s := &System{
		Box:   space.NewBox(l, l, l),
		Types: StandardTypes(),
	}
	r := rng.New(seed ^ 0x776174657262) // "waterb"
	side := int(math.Ceil(math.Cbrt(float64(nw))))
	spacing := l / float64(side)
	placed := 0
	for ix := 0; ix < side && placed < nw; ix++ {
		for iy := 0; iy < side && placed < nw; iy++ {
			for iz := 0; iz < side && placed < nw; iz++ {
				base := vec.New(
					(float64(ix)+0.5)*spacing+r.Range(-0.2, 0.2),
					(float64(iy)+0.5)*spacing+r.Range(-0.2, 0.2),
					(float64(iz)+0.5)*spacing+r.Range(-0.2, 0.2),
				)
				addWater(s, r, base)
				placed++
			}
		}
	}
	s.DeriveConnectivity()
	return s
}

// NewSolvatedBox builds a water box holding approximately natoms atoms at
// liquid-like density (≈0.0334 waters/Å³), returning the system and the
// cubic PME mesh dimension that gives ≈1 Å grid spacing (rounded up to a
// multiple of 4 for FFT efficiency). It parameterizes the problem-size
// scaling study of the paper's §5 discussion ("good scalability for larger
// problems").
func NewSolvatedBox(natoms int, seed uint64) (*System, int) {
	nw := natoms / 3
	if nw < 8 {
		nw = 8
	}
	const density = 0.0334 // waters per Å³
	l := math.Cbrt(float64(nw) / density)
	sys := NewWaterBox(nw, l, seed)
	k := int(math.Ceil(l/4)) * 4
	return sys, k
}
