package topol

import (
	"math"
	"strings"
	"testing"
)

func TestWritePDB(t *testing.T) {
	s := tinyChain()
	var b strings.Builder
	if err := s.WritePDB(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "CRYST1") {
		t.Fatal("missing CRYST1 header")
	}
	if got := strings.Count(out, "\nATOM "); got != s.N() {
		t.Fatalf("ATOM records = %d, want %d", got, s.N())
	}
	if !strings.Contains(out, "END") {
		t.Fatal("missing END")
	}
}

func TestWritePSFSections(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 1})
	var b strings.Builder
	if err := s.WritePSF(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, section := range []string{"!NATOM", "!NBOND", "!NTHETA", "!NPHI", "!NIMPHI"} {
		if !strings.Contains(out, section) {
			t.Fatalf("missing section %s", section)
		}
	}
	// Counts embedded in the headers must match the topology.
	if !strings.Contains(out, "    3552 !NATOM") {
		t.Fatal("NATOM count wrong")
	}
}

func TestXYZRoundTrip(t *testing.T) {
	s := NewMyoglobinSystem(MyoglobinConfig{Seed: 2})
	var b strings.Builder
	if err := s.WriteXYZ(&b, nil, "frame 0"); err != nil {
		t.Fatal(err)
	}
	elements, pos, comment, err := ReadXYZ(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if comment != "frame 0" {
		t.Fatalf("comment %q", comment)
	}
	if len(pos) != s.N() || len(elements) != s.N() {
		t.Fatalf("parsed %d/%d entries", len(pos), len(elements))
	}
	for i := range pos {
		if math.Abs(pos[i].X-s.Pos[i].X) > 1e-7 ||
			math.Abs(pos[i].Y-s.Pos[i].Y) > 1e-7 ||
			math.Abs(pos[i].Z-s.Pos[i].Z) > 1e-7 {
			t.Fatalf("atom %d: %v vs %v", i, pos[i], s.Pos[i])
		}
	}
	// Element sanity: waters contribute O and H.
	seen := map[string]bool{}
	for _, e := range elements {
		seen[e] = true
	}
	for _, want := range []string{"C", "N", "O", "H", "S"} {
		if !seen[want] {
			t.Fatalf("element %s missing", want)
		}
	}
}

func TestWriteXYZValidation(t *testing.T) {
	s := tinyChain()
	var b strings.Builder
	if err := s.WriteXYZ(&b, s.Pos[:2], "bad"); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReadXYZErrors(t *testing.T) {
	cases := []string{
		"",
		"abc\ncomment\n",
		"3\ncomment\nC 1 2 3\n", // truncated
		"1\ncomment\nC 1 2\n",   // malformed line
		"1\ncomment\nC a b c\n", // bad floats
	}
	for _, c := range cases {
		if _, _, _, err := ReadXYZ(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}
