package topol

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/vec"
)

// Paper system dimensions (§2.2): the PME charge mesh is 80×36×48 at ≈1 Å
// spacing, so the periodic cell is 80×36×48 Å; the system totals 3552 atoms.
const (
	BoxX = 80.0
	BoxY = 36.0
	BoxZ = 48.0

	NumResidues   = 153
	NumWaters     = 337
	TotalAtoms    = 3552
	numRes17      = 86 // residues with a 11-atom (polar-tipped) sidechain
	atomsPerWater = 3
)

// MyoglobinConfig controls the synthetic system builder.
type MyoglobinConfig struct {
	Seed uint64 // RNG stream for water placement and orientations
}

// NewMyoglobinSystem builds the paper's molecular workload: a 153-residue
// α-class synthetic protein (2534 atoms), one carbon monoxide (2), 337
// waters (1011) and a sulfate ion (5) — 3552 atoms in the 80×36×48 Å box.
// The protein carries net charge +2 and the sulfate −2, so the cell is
// neutral as PME prefers.
//
// The geometry is a collision-avoiding serpentine fold (ten strands) meant
// to be relaxed by a short minimization before dynamics; the *workload*
// (atom counts, density, bonded-graph size, charge distribution) matches
// the paper's system, which is all the performance study depends on.
func NewMyoglobinSystem(cfg MyoglobinConfig) *System {
	s := &System{
		Box:   space.NewBox(BoxX, BoxY, BoxZ),
		Types: StandardTypes(),
	}
	r := rng.New(cfg.Seed ^ 0x6d796f676c6f62) // "myoglob"

	buildProtein(s)
	buildCO(s, vec.New(14, 18, 40))
	buildSulfate(s, vec.New(66, 18, 40))
	buildWaters(s, r)

	if n := s.N(); n != TotalAtoms {
		panic(fmt.Sprintf("topol: built %d atoms, want %d", n, TotalAtoms))
	}
	s.DeriveConnectivity()
	addProteinImpropers(s)
	if err := s.Validate(); err != nil {
		panic("topol: invalid myoglobin system: " + err.Error())
	}
	return s
}

// addAtom appends an atom and returns its index.
func (s *System) addAtom(name string, typ int32, charge float64, pos vec.V, res int32) int32 {
	i := int32(len(s.Atoms))
	s.Atoms = append(s.Atoms, Atom{Name: name, Type: typ, Charge: charge, Residue: res})
	s.Pos = append(s.Pos, s.Box.Wrap(pos))
	return i
}

func (s *System) addBond(i, j int32) {
	s.Bonds = append(s.Bonds, [2]int32{i, j})
}

// startResidue opens a new residue and returns its index.
func (s *System) startResidue(name string) int32 {
	i := int32(len(s.Residues))
	s.Residues = append(s.Residues, Residue{Name: name, First: int32(len(s.Atoms))})
	return i
}

func (s *System) endResidue(res int32) {
	s.Residues[res].Last = int32(len(s.Atoms))
}

// buildProtein lays the 153-residue chain as a serpentine of ten strands
// (16 residues each, the last with 9) inside the box, sidechains extending
// along ±z away from the neighbouring strand plane.
func buildProtein(s *System) {
	const (
		resPerRow = 16
		caSpacing = 3.8
		x0        = 9.0
		y0        = 8.0
		z0        = 17.0
		rowDY     = 5.0
		layerDZ   = 6.0
	)
	var prevC int32 = -1
	var lastC, lastO int32 = -1, -1
	for i := 0; i < NumResidues; i++ {
		row := i / resPerRow
		col := i % resPerRow
		dir := 1.0
		if row%2 == 1 {
			dir = -1.0 // serpentine: odd rows run backwards
			col = resPerRow - 1 - col
		}
		// Rows walk a serpentine in (y, z) as well, so consecutive rows are
		// always spatially adjacent and every turn bond stays short: five
		// rows per z-layer, odd layers traversing y in reverse.
		layer := row / 5
		yIdx := row % 5
		if layer%2 == 1 {
			yIdx = 4 - yIdx
		}
		ca := vec.New(x0+float64(col)*caSpacing, y0+float64(yIdx)*rowDY, z0+float64(layer)*layerDZ)
		scDir := 1.0
		if layer == 0 {
			scDir = -1.0 // lower layer grows sidechains toward −z
		}

		is17 := i < numRes17
		name := "R16"
		if is17 {
			name = "R17"
		}
		res := s.startResidue(name)

		n := s.addAtom("N", TypeN, -0.47, ca.Add(vec.New(-1.2*dir, 0.5, 0)), res)
		hn := s.addAtom("HN", TypeH, 0.31, ca.Add(vec.New(-1.4*dir, 1.45, 0)), res)
		caI := s.addAtom("CA", TypeCT, 0.07, ca, res)
		ha := s.addAtom("HA", TypeHA, 0.09, ca.Add(vec.New(0, -0.7, -0.7*scDir)), res)
		c := s.addAtom("C", TypeC, 0.51, ca.Add(vec.New(1.3*dir, 0.5, 0)), res)
		o := s.addAtom("O", TypeO, -0.51, ca.Add(vec.New(1.4*dir, 1.7, 0)), res)
		s.addBond(n, hn)
		s.addBond(n, caI)
		s.addBond(caI, ha)
		s.addBond(caI, c)
		s.addBond(c, o)
		if prevC >= 0 {
			s.addBond(prevC, n)
		}
		prevC = c
		lastC, lastO = c, o

		buildSidechain(s, res, caI, ca, scDir, is17)
		s.endResidue(res)
	}
	// Charged termini: +1 on the N-terminal amine, +1 on the C-terminus,
	// giving the protein the paper-consistent net charge of +2 that the
	// sulfate compensates.
	s.Atoms[0].Charge += 0.5 // N of residue 0
	s.Atoms[1].Charge += 0.5 // HN of residue 0
	s.Atoms[lastC].Charge += 0.5
	s.Atoms[lastO].Charge += 0.5
}

// buildSidechain grows the synthetic sidechain below/above the CA.
// 10 atoms for R16 (…CD methyl), 11 for R17 (…CD, OE, HE hydroxyl tip).
func buildSidechain(s *System, res, caI int32, ca vec.V, scDir float64, is17 bool) {
	zig := func(k int) float64 {
		if k%2 == 0 {
			return 0.9
		}
		return -0.9
	}
	cb := s.addAtom("CB", TypeCT, -0.18, ca.Add(vec.New(zig(0), 0, 1.35*scDir)), res)
	s.addBond(caI, cb)
	hb1 := s.addAtom("HB1", TypeHA, 0.09, ca.Add(vec.New(zig(0)+0.9, 0.7, 1.35*scDir)), res)
	hb2 := s.addAtom("HB2", TypeHA, 0.09, ca.Add(vec.New(zig(0)+0.9, -0.7, 1.35*scDir)), res)
	s.addBond(cb, hb1)
	s.addBond(cb, hb2)

	cg := s.addAtom("CG", TypeCT, -0.18, ca.Add(vec.New(zig(1), 0, 2.70*scDir)), res)
	s.addBond(cb, cg)
	hg1 := s.addAtom("HG1", TypeHA, 0.09, ca.Add(vec.New(zig(1)-0.9, 0.7, 2.70*scDir)), res)
	hg2 := s.addAtom("HG2", TypeHA, 0.09, ca.Add(vec.New(zig(1)-0.9, -0.7, 2.70*scDir)), res)
	s.addBond(cg, hg1)
	s.addBond(cg, hg2)

	if is17 {
		cd := s.addAtom("CD", TypeCT, 0.11, ca.Add(vec.New(zig(2), 0, 4.05*scDir)), res)
		s.addBond(cg, cd)
		hd1 := s.addAtom("HD1", TypeHA, 0.09, ca.Add(vec.New(zig(2)+0.9, 0.7, 4.05*scDir)), res)
		hd2 := s.addAtom("HD2", TypeHA, 0.09, ca.Add(vec.New(zig(2)+0.9, -0.7, 4.05*scDir)), res)
		s.addBond(cd, hd1)
		s.addBond(cd, hd2)
		oe := s.addAtom("OE", TypeOH, -0.72, ca.Add(vec.New(zig(3), 0, 5.35*scDir)), res)
		s.addBond(cd, oe)
		he := s.addAtom("HE", TypeH, 0.43, ca.Add(vec.New(zig(3), 0.95, 5.35*scDir)), res)
		s.addBond(oe, he)
	} else {
		cd := s.addAtom("CD", TypeCT, -0.27, ca.Add(vec.New(zig(2), 0, 4.05*scDir)), res)
		s.addBond(cg, cd)
		hd1 := s.addAtom("HD1", TypeHA, 0.09, ca.Add(vec.New(zig(2)+0.9, 0.7, 4.05*scDir)), res)
		hd2 := s.addAtom("HD2", TypeHA, 0.09, ca.Add(vec.New(zig(2)+0.9, -0.7, 4.05*scDir)), res)
		hd3 := s.addAtom("HD3", TypeHA, 0.09, ca.Add(vec.New(zig(2), 0, 5.1*scDir)), res)
		s.addBond(cd, hd1)
		s.addBond(cd, hd2)
		s.addBond(cd, hd3)
	}
}

// buildCO places the carbon monoxide ligand.
func buildCO(s *System, at vec.V) {
	res := s.startResidue("CO")
	c := s.addAtom("C", TypeCM, 0.021, at, res)
	o := s.addAtom("O", TypeOM, -0.021, at.Add(vec.New(1.128, 0, 0)), res)
	s.addBond(c, o)
	s.endResidue(res)
}

// buildSulfate places the SO4²⁻ counter-ion (tetrahedral, S–O 1.49 Å).
func buildSulfate(s *System, at vec.V) {
	res := s.startResidue("SO4")
	sa := s.addAtom("S", TypeS, 2.0, at, res)
	const d = 1.49 / 1.7320508 // component of the S–O bond along each axis
	dirs := []vec.V{
		vec.New(d, d, d), vec.New(d, -d, -d), vec.New(-d, d, -d), vec.New(-d, -d, d),
	}
	for k, dir := range dirs {
		o := s.addAtom(fmt.Sprintf("O%d", k+1), TypeOS, -1.0, at.Add(dir), res)
		s.addBond(sa, o)
	}
	s.endResidue(res)
}

// buildWaters scatters NumWaters TIP3-like waters into free space with a
// minimum-distance rejection against everything placed so far.
func buildWaters(s *System, r *rng.Source) {
	const (
		minDistSolute = 2.7
		minDistWater  = 2.6
		maxAttempts   = 400000
	)
	soluteEnd := len(s.Pos)
	var waterO []vec.V
	placed := 0
	attempts := 0
	for placed < NumWaters {
		attempts++
		if attempts > maxAttempts {
			panic("topol: could not place waters (box too crowded)")
		}
		p := vec.New(r.Range(2, BoxX-2), r.Range(2, BoxY-2), r.Range(2, BoxZ-2))
		ok := true
		for i := 0; i < soluteEnd; i++ {
			if s.Box.Dist2(p, s.Pos[i]) < minDistSolute*minDistSolute {
				ok = false
				break
			}
		}
		if ok {
			for _, w := range waterO {
				if s.Box.Dist2(p, w) < minDistWater*minDistWater {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		waterO = append(waterO, p)
		addWater(s, r, p)
		placed++
	}
}

// addWater appends one water with random orientation at o.
func addWater(s *System, r *rng.Source, o vec.V) {
	res := s.startResidue("TIP3")
	ow := s.addAtom("OW", TypeOW, -0.834, o, res)
	// Two O–H vectors at the TIP3 geometry (0.9572 Å, 104.52°) in a random
	// orientation: pick a random unit vector and a random perpendicular.
	u := randomUnit(r)
	v := perpUnit(r, u)
	const rOH = 0.9572
	const half = 104.52 / 2 * math.Pi / 180
	h1 := o.Add(u.Scale(rOH * math.Cos(half)).Add(v.Scale(rOH * math.Sin(half))))
	h2 := o.Add(u.Scale(rOH * math.Cos(half)).Add(v.Scale(-rOH * math.Sin(half))))
	hw1 := s.addAtom("HW1", TypeHW, 0.417, h1, res)
	hw2 := s.addAtom("HW2", TypeHW, 0.417, h2, res)
	s.addBond(ow, hw1)
	s.addBond(ow, hw2)
	s.endResidue(res)
}

func randomUnit(r *rng.Source) vec.V {
	for {
		v := vec.New(r.Range(-1, 1), r.Range(-1, 1), r.Range(-1, 1))
		if n2 := v.Norm2(); n2 > 0.01 && n2 < 1 {
			return v.Unit()
		}
	}
}

func perpUnit(r *rng.Source, u vec.V) vec.V {
	for {
		w := randomUnit(r)
		p := w.Sub(u.Scale(w.Dot(u)))
		if p.Norm2() > 0.01 {
			return p.Unit()
		}
	}
}

// addProteinImpropers adds planarity impropers at each peptide carbonyl
// carbon: (C; CA, O, N-next). Centers are identified by name over the
// protein residues.
func addProteinImpropers(s *System) {
	for ri := 0; ri < NumResidues-1; ri++ {
		res := s.Residues[ri]
		next := s.Residues[ri+1]
		var c, caI, o, nNext int32 = -1, -1, -1, -1
		for i := res.First; i < res.Last; i++ {
			switch s.Atoms[i].Name {
			case "C":
				c = i
			case "CA":
				caI = i
			case "O":
				o = i
			}
		}
		for i := next.First; i < next.Last; i++ {
			if s.Atoms[i].Name == "N" {
				nNext = i
				break
			}
		}
		if c >= 0 && caI >= 0 && o >= 0 && nNext >= 0 {
			s.Impropers = append(s.Impropers, [4]int32{c, caI, o, nNext})
		}
	}
}
