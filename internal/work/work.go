// Package work defines the operation counters that the MD engine records
// while it computes. The discrete-event performance model converts these
// counts into virtual CPU time on the modelled 1 GHz Pentium III (see
// internal/cluster); keeping the counters in one small package lets every
// compute kernel report work without depending on the machine model.
package work

// Counters tallies the dominant operations of one compute phase. All fields
// are simple counts of kernel-level operations actually executed.
type Counters struct {
	BondTerms     int64 // harmonic bond evaluations
	AngleTerms    int64 // angle evaluations
	DihedralTerms int64 // proper + improper torsion evaluations
	PairEvals     int64 // nonbonded pair interactions computed
	ListDistEvals int64 // distance evaluations during list building
	GridCharges   int64 // PME charge-spread / force-interpolate point ops
	FFTOps        int64 // FFT butterfly flops (analytic count)
	RecipPoints   int64 // reciprocal-space grid points convolved
	Integrate     int64 // per-atom integrator updates
	Other         int64 // miscellaneous per-atom passes (scaling, copies)
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.BondTerms += o.BondTerms
	c.AngleTerms += o.AngleTerms
	c.DihedralTerms += o.DihedralTerms
	c.PairEvals += o.PairEvals
	c.ListDistEvals += o.ListDistEvals
	c.GridCharges += o.GridCharges
	c.FFTOps += o.FFTOps
	c.RecipPoints += o.RecipPoints
	c.Integrate += o.Integrate
	c.Other += o.Other
}

// Sub returns c − o component-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		BondTerms:     c.BondTerms - o.BondTerms,
		AngleTerms:    c.AngleTerms - o.AngleTerms,
		DihedralTerms: c.DihedralTerms - o.DihedralTerms,
		PairEvals:     c.PairEvals - o.PairEvals,
		ListDistEvals: c.ListDistEvals - o.ListDistEvals,
		GridCharges:   c.GridCharges - o.GridCharges,
		FFTOps:        c.FFTOps - o.FFTOps,
		RecipPoints:   c.RecipPoints - o.RecipPoints,
		Integrate:     c.Integrate - o.Integrate,
		Other:         c.Other - o.Other,
	}
}

// IsZero reports whether every counter is zero.
func (c Counters) IsZero() bool {
	return c == Counters{}
}
