package work

import (
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := Counters{BondTerms: 1, PairEvals: 10, FFTOps: 100}
	b := Counters{BondTerms: 2, GridCharges: 5}
	c := a
	c.Add(b)
	if c.BondTerms != 3 || c.PairEvals != 10 || c.GridCharges != 5 || c.FFTOps != 100 {
		t.Fatalf("Add = %+v", c)
	}
	if got := c.Sub(b); got != a {
		t.Fatalf("Sub = %+v, want %+v", got, a)
	}
}

func TestIsZero(t *testing.T) {
	if !(Counters{}).IsZero() {
		t.Fatal("zero counters not zero")
	}
	if (Counters{Other: 1}).IsZero() {
		t.Fatal("nonzero counters reported zero")
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		a := Counters{PairEvals: a1, FFTOps: a2}
		b := Counters{PairEvals: b1, FFTOps: b2}
		c := a
		c.Add(b)
		return c.Sub(b) == a && c.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
