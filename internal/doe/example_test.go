package doe_test

import (
	"fmt"

	"repro/internal/doe"
)

func ExampleAnalyze() {
	obs := []doe.Observation{
		{Levels: map[string]string{"net": "tcp"}, Y: 6},
		{Levels: map[string]string{"net": "tcp"}, Y: 6},
		{Levels: map[string]string{"net": "myrinet"}, Y: 2},
		{Levels: map[string]string{"net": "myrinet"}, Y: 2},
	}
	a, _ := doe.Analyze(obs)
	fmt.Printf("grand mean %.0f, dominant factor %s, variation %.0f%%\n",
		a.GrandMean, a.DominantFactor(), 100*a.VariationExplained("net"))
	// Output:
	// grand mean 4, dominant factor net, variation 100%
}
