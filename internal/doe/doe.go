// Package doe implements the factorial experimental-design analysis of
// Jain ("The Art of Computer Systems Performance Analysis"), the
// methodology the paper's §3.1 follows: response variables, factors and
// levels, main effects, two-factor interactions and the allocation of
// variation. It turns the full-factorial table of runs into the statement
// the paper makes qualitatively — which platform factor actually matters.
package doe

import (
	"fmt"
	"sort"
)

// Observation is one run of the design: a response value under a complete
// assignment of factor levels.
type Observation struct {
	Levels map[string]string // factor name → level name
	Y      float64           // response (e.g. wall-clock seconds)
}

// Effect is the deviation of one factor level's mean response from the
// grand mean.
type Effect struct {
	Factor string
	Level  string
	Effect float64
	Mean   float64
	N      int
}

// Interaction quantifies one two-factor interaction via its sum of
// squares.
type Interaction struct {
	FactorA, FactorB string
	SumSquares       float64
}

// Analysis is the outcome of Analyze.
type Analysis struct {
	GrandMean float64
	Effects   []Effect // sorted by factor, then level
	MainSS    map[string]float64
	Interact  []Interaction // sorted by descending sum of squares
	SST       float64       // total sum of squares
	Residual  float64       // SST − main − two-factor interactions
}

// VariationExplained returns the fraction of the total variation allocated
// to the given factor's main effect (Jain's "allocation of variation").
func (a *Analysis) VariationExplained(factor string) float64 {
	if a.SST == 0 {
		return 0
	}
	return a.MainSS[factor] / a.SST
}

// DominantFactor returns the factor explaining the most variation.
func (a *Analysis) DominantFactor() string {
	best, bestSS := "", -1.0
	for f, ss := range a.MainSS {
		if ss > bestSS || (ss == bestSS && f < best) {
			best, bestSS = f, ss
		}
	}
	return best
}

// Analyze computes grand mean, per-level main effects, two-factor
// interaction sums of squares and the allocation of variation. Every
// observation must assign the same factor set.
func Analyze(obs []Observation) (*Analysis, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("doe: no observations")
	}
	factors := make([]string, 0, len(obs[0].Levels))
	for f := range obs[0].Levels {
		factors = append(factors, f)
	}
	sort.Strings(factors)
	for i, o := range obs {
		if len(o.Levels) != len(factors) {
			return nil, fmt.Errorf("doe: observation %d has %d factors, want %d", i, len(o.Levels), len(factors))
		}
		for _, f := range factors {
			if _, ok := o.Levels[f]; !ok {
				return nil, fmt.Errorf("doe: observation %d missing factor %q", i, f)
			}
		}
	}

	a := &Analysis{MainSS: map[string]float64{}}
	var sum float64
	for _, o := range obs {
		sum += o.Y
	}
	a.GrandMean = sum / float64(len(obs))
	for _, o := range obs {
		d := o.Y - a.GrandMean
		a.SST += d * d
	}

	// Main effects.
	effOf := map[string]map[string]float64{}
	for _, f := range factors {
		byLevel := map[string][]float64{}
		for _, o := range obs {
			l := o.Levels[f]
			byLevel[l] = append(byLevel[l], o.Y)
		}
		levels := make([]string, 0, len(byLevel))
		for l := range byLevel {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		effOf[f] = map[string]float64{}
		var ss float64
		for _, l := range levels {
			ys := byLevel[l]
			var s float64
			for _, y := range ys {
				s += y
			}
			mean := s / float64(len(ys))
			eff := mean - a.GrandMean
			effOf[f][l] = eff
			ss += float64(len(ys)) * eff * eff
			a.Effects = append(a.Effects, Effect{
				Factor: f, Level: l, Effect: eff, Mean: mean, N: len(ys),
			})
		}
		a.MainSS[f] = ss
	}

	// Two-factor interactions: cell mean minus grand mean and both main
	// effects.
	var mainTotal float64
	for _, ss := range a.MainSS {
		mainTotal += ss
	}
	var interTotal float64
	for i := 0; i < len(factors); i++ {
		for j := i + 1; j < len(factors); j++ {
			fa, fb := factors[i], factors[j]
			cells := map[[2]string][]float64{}
			for _, o := range obs {
				k := [2]string{o.Levels[fa], o.Levels[fb]}
				cells[k] = append(cells[k], o.Y)
			}
			var ss float64
			for k, ys := range cells {
				var s float64
				for _, y := range ys {
					s += y
				}
				mean := s / float64(len(ys))
				d := mean - a.GrandMean - effOf[fa][k[0]] - effOf[fb][k[1]]
				ss += float64(len(ys)) * d * d
			}
			a.Interact = append(a.Interact, Interaction{FactorA: fa, FactorB: fb, SumSquares: ss})
			interTotal += ss
		}
	}
	sort.Slice(a.Interact, func(i, j int) bool {
		if a.Interact[i].SumSquares != a.Interact[j].SumSquares {
			return a.Interact[i].SumSquares > a.Interact[j].SumSquares
		}
		return a.Interact[i].FactorA < a.Interact[j].FactorA
	})
	a.Residual = a.SST - mainTotal - interTotal
	if a.Residual < 0 && a.Residual > -1e-9*a.SST {
		a.Residual = 0 // numerical noise
	}
	return a, nil
}
