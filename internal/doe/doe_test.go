package doe

import (
	"math"
	"testing"
)

// cross builds a full factorial from a response function.
func cross(f func(net, mw, cpu string) float64) []Observation {
	var obs []Observation
	for _, net := range []string{"tcp", "score", "myrinet"} {
		for _, mw := range []string{"mpi", "cmpi"} {
			for _, cpu := range []string{"uni", "dual"} {
				obs = append(obs, Observation{
					Levels: map[string]string{"network": net, "middleware": mw, "cpus": cpu},
					Y:      f(net, mw, cpu),
				})
			}
		}
	}
	return obs
}

func TestAdditiveModelRecovered(t *testing.T) {
	netEff := map[string]float64{"tcp": 3, "score": -1, "myrinet": -2}
	mwEff := map[string]float64{"mpi": -1.5, "cmpi": 1.5}
	obs := cross(func(net, mw, cpu string) float64 {
		return 10 + netEff[net] + mwEff[mw]
	})
	a, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.GrandMean-10) > 1e-12 {
		t.Fatalf("grand mean %v", a.GrandMean)
	}
	for _, e := range a.Effects {
		var want float64
		switch e.Factor {
		case "network":
			want = netEff[e.Level]
		case "middleware":
			want = mwEff[e.Level]
		case "cpus":
			want = 0
		}
		if math.Abs(e.Effect-want) > 1e-12 {
			t.Fatalf("effect %s=%s: %v want %v", e.Factor, e.Level, e.Effect, want)
		}
	}
	// Purely additive: interactions and residual vanish.
	for _, in := range a.Interact {
		if in.SumSquares > 1e-18 {
			t.Fatalf("phantom interaction %+v", in)
		}
	}
	if math.Abs(a.Residual) > 1e-9 {
		t.Fatalf("residual %v", a.Residual)
	}
	if a.DominantFactor() != "network" {
		t.Fatalf("dominant = %q", a.DominantFactor())
	}
}

func TestInteractionDetected(t *testing.T) {
	// CMPI only hurts on TCP: a pure network×middleware interaction.
	obs := cross(func(net, mw, cpu string) float64 {
		if net == "tcp" && mw == "cmpi" {
			return 20
		}
		return 10
	})
	a, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Interact[0].FactorA+a.Interact[0].FactorB != "middleware"+"network" {
		t.Fatalf("largest interaction %+v", a.Interact[0])
	}
	if a.Interact[0].SumSquares <= 0 {
		t.Fatal("interaction not detected")
	}
}

func TestVariationSumsToTotal(t *testing.T) {
	obs := cross(func(net, mw, cpu string) float64 {
		base := map[string]float64{"tcp": 6, "score": 3, "myrinet": 2}[net]
		if mw == "cmpi" {
			base *= 1.8
		}
		if cpu == "dual" && net == "tcp" {
			base += 1.5
		}
		return base
	})
	a, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	var main, inter float64
	for _, ss := range a.MainSS {
		main += ss
	}
	for _, in := range a.Interact {
		inter += in.SumSquares
	}
	// For a 3-factor design, SST decomposes into main + 2-way + 3-way
	// (residual here). All parts must be non-negative and add up.
	if a.Residual < -1e-9 {
		t.Fatalf("negative residual %v", a.Residual)
	}
	if math.Abs(main+inter+a.Residual-a.SST) > 1e-9*a.SST {
		t.Fatalf("decomposition broken: %v + %v + %v != %v", main, inter, a.Residual, a.SST)
	}
	if frac := a.VariationExplained("network"); frac <= 0 || frac > 1 {
		t.Fatalf("network variation %v", frac)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty design accepted")
	}
	bad := []Observation{
		{Levels: map[string]string{"a": "x"}, Y: 1},
		{Levels: map[string]string{"b": "y"}, Y: 2},
	}
	if _, err := Analyze(bad); err == nil {
		t.Fatal("inconsistent factors accepted")
	}
}

func TestSingleFactorTwoLevels(t *testing.T) {
	obs := []Observation{
		{Levels: map[string]string{"net": "a"}, Y: 1},
		{Levels: map[string]string{"net": "a"}, Y: 3},
		{Levels: map[string]string{"net": "b"}, Y: 5},
		{Levels: map[string]string{"net": "b"}, Y: 7},
	}
	a, err := Analyze(obs)
	if err != nil {
		t.Fatal(err)
	}
	if a.GrandMean != 4 {
		t.Fatalf("grand mean %v", a.GrandMean)
	}
	// Effects: a → −2, b → +2; SS = 2·4 + 2·4 = 16; SST = 9+1+1+9 = 20.
	if a.MainSS["net"] != 16 || a.SST != 20 {
		t.Fatalf("SS=%v SST=%v", a.MainSS["net"], a.SST)
	}
	if math.Abs(a.VariationExplained("net")-0.8) > 1e-12 {
		t.Fatalf("variation %v", a.VariationExplained("net"))
	}
}
