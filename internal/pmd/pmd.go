// Package pmd is the parallel CHARMM-like molecular dynamics engine — the
// computation whose performance the paper characterizes. It runs the
// replicated-data atom decomposition CHARMM used on message-passing
// machines:
//
//   - every rank holds a full coordinate replica;
//   - bonded terms, the nonbonded pair list and the 1-4 list are block-
//     partitioned; partial forces are combined with a global force
//     reduction; positions propagate with an all-gather (the paper's
//     "all-to-all collective" in the classic energy calculation);
//   - PME runs slab-decomposed: per-rank charge spreading, a personalized
//     all-to-all grid assembly, distributed 3-D FFTs with all-to-all
//     transposes (the "all-to-all personalized communication" of Fig. 2),
//     a gather of the convolved potential and local force interpolation.
//
// Every rank executes its real share of the physics (the results are
// verified against the sequential engine) while virtual time is charged
// through the cluster cost model and the simulated MPI/CMPI transports.
package pmd

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cmpi"
	"repro/internal/guard"
	"repro/internal/md"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/topol"
	"repro/internal/trace"
	"repro/internal/vec"
)

// MiddlewareKind selects the communication middleware factor of the
// paper's experimental design (§3.1).
type MiddlewareKind int

const (
	// MiddlewareMPI uses raw MPI calls: blocking point-to-point plus the
	// library's tree collectives and MPI barriers.
	MiddlewareMPI MiddlewareKind = iota
	// MiddlewareCMPI routes everything through the CHARMM-MPI portability
	// layer (split non-blocking calls, ring collectives, synchronization
	// by repeated 1-byte neighbour exchanges).
	MiddlewareCMPI
)

func (m MiddlewareKind) String() string {
	if m == MiddlewareCMPI {
		return "CMPI"
	}
	return "MPI"
}

// Config configures a parallel run.
type Config struct {
	System     *topol.System // shared read-only topology
	MD         md.Config     // must enable PME (the paper's measured mode)
	Steps      int
	Middleware MiddlewareKind

	// Decomp selects the work decomposition. The zero value is the
	// paper's replicated-data decomposition with slab PME; DecompDomain
	// runs the spatial domain decomposition with 2-D pencil PME (the
	// scaling-study path that breaks the 8-rank ceiling). Run validates
	// the rank count against the decomposition's tiling constraints and
	// returns a *DecompError when it cannot tile.
	Decomp DecompKind

	// ModernCollectives replaces the MPICH-1-era algorithms with the
	// post-2004 ones (recursive-doubling allreduce, ring allgather) — the
	// ablation that asks how much of the scalability loss was library
	// algorithms rather than network hardware. MPI middleware only.
	ModernCollectives bool

	// Tracer, when non-nil, receives every compute/communication interval
	// of every rank plus classic/PME phase spans for timeline rendering.
	// Any trace.Sink works: a *trace.Collector for the flat view, or an
	// *obs.Recorder for the hierarchical one.
	Tracer trace.Sink

	// Obs, when non-nil, receives hierarchical step spans and live metrics
	// (current step, guard trips, per-rank transport counters). When Tracer
	// is nil the recorder also doubles as the event sink.
	Obs *obs.Recorder

	// Init, when non-nil, starts the run from a checkpoint instead of the
	// system's build-time state (same atom count and timestep required).
	Init *md.Checkpoint

	// Faults, when non-nil, degrades the simulated platform.
	Faults cluster.FaultModel

	// Watchdog bounds blocking waits in the transport; the zero value
	// leaves waits unbounded (a lost partner becomes a sim deadlock).
	Watchdog mpi.Watchdog

	// Tape, when non-nil, memoizes the physics across runs of the same
	// workload and rank count: an empty tape records this run's per-segment
	// work counters, a completed tape replays them instead of executing the
	// MD kernels (the simulated timings still come out of the full event
	// simulation). Ignored when Init or a step hook needs real physics, or
	// when the tape was recorded for a different rank or step count.
	Tape *Tape

	// HostWorkers > 1 executes compute segments of different ranks
	// concurrently on that many host goroutines; results are bitwise
	// identical to the serial schedule (see internal/sim). ≤ 1 runs
	// everything inline.
	HostWorkers int

	// Guard enables the numeric guardrails (internal/guard): per-step
	// NaN/Inf checks on the combined forces and total energy plus an
	// energy-drift monitor. Checks run on replicated data (bitwise
	// identical on every rank) and cost no virtual time, so a guarded
	// run with no trips produces byte-identical figures. A trip ends the
	// attempt with a *guard.TripError; RunResilient turns that into a
	// rewind-and-degrade to exact kernels when the policy allows.
	Guard guard.Config

	// OnStep, when non-nil, runs on rank 0 after every completed step
	// with the global step index, the step's classic/PME timing split
	// and its energy report. Unlike Init or Guard it does not disable
	// the physics tape: a replayed run substitutes the taped energies
	// before the hook fires, so a memoized run streams the same
	// telemetry a real one does. Under RunResilient the index is global
	// across attempts, and steps replayed after a rewind re-fire —
	// consumers that need each step once must filter monotonically.
	OnStep func(step int, timing StepTiming, energy md.EnergyReport)

	// Perf, when non-nil, receives every rank's per-step phase samples
	// plus the collective byte matrices (recorded once per collective,
	// from rank 0's view) for bottleneck attribution. See Result.Profile.
	Perf *perf.Timeline

	// onStep, when non-nil, runs on every rank at the end of every
	// completed step (after the step barrier, before the next step). The
	// resilient driver hooks its checkpoint recorder here.
	onStep func(w *worker, step int)

	// perfBase is the global-step offset the resilient driver applies to
	// Perf samples and OnStep indices of resumed attempts.
	perfBase int
}

// PhaseSample is the measured decomposition of one phase of one step on
// one rank.
type PhaseSample struct {
	Comp  float64
	Comm  float64
	Sync  float64
	Wall  float64 // elapsed virtual time of the phase
	Bytes int64   // bytes sent during the phase
}

// Add accumulates o into s.
func (s *PhaseSample) Add(o PhaseSample) {
	s.Comp += o.Comp
	s.Comm += o.Comm
	s.Sync += o.Sync
	s.Wall += o.Wall
	s.Bytes += o.Bytes
}

// StepTiming is the per-step classic/PME split of §3.2.
type StepTiming struct {
	Classic PhaseSample
	PME     PhaseSample
}

// Result is the outcome of one parallel run.
type Result struct {
	P        int               // ranks
	Timings  [][]StepTiming    // [rank][step]
	Energies []md.EnergyReport // per step (identical on all ranks; rank 0's copy)
	FinalPos []vec.V           // rank 0 replica after the run
	Wall     float64           // virtual wall clock of the whole run
	Acct     []mpi.Accounting  // per-rank transport accounting

	// GuardEvents are the guard trips recorded during the run (rank 0's
	// log; verdicts are identical on every rank). A trip also surfaces as
	// a *guard.TripError from Run.
	GuardEvents []guard.Event
}

// RecordObs publishes the run's measured decomposition into reg as
// counters: repro_phase_seconds_total{rank,phase,bucket} (§3.2's
// computation/communication/synchronization split per phase per rank),
// repro_phase_bytes_total{rank,phase}, repro_run_wall_seconds,
// repro_run_steps_total and repro_run_ranks. The per-rank sums equal the
// run's reported wall decomposition exactly — the counters are built from
// the same PhaseSamples the Result reports.
func (r *Result) RecordObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for rank := range r.Timings {
		var tot [2]PhaseSample
		for _, st := range r.Timings[rank] {
			tot[0].Add(st.Classic)
			tot[1].Add(st.PME)
		}
		rl := obs.L("rank", fmt.Sprintf("%d", rank))
		for i, phase := range []string{"classic", "pme"} {
			pl := obs.L("phase", phase)
			help := "virtual seconds per rank, phase and time class (§3.2 decomposition)"
			reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "compute")).Add(tot[i].Comp)
			reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "comm")).Add(tot[i].Comm)
			reg.Counter("repro_phase_seconds_total", help, rl, pl, obs.L("bucket", "sync")).Add(tot[i].Sync)
			reg.Counter("repro_phase_wall_seconds_total",
				"virtual wall seconds per rank and phase", rl, pl).Add(tot[i].Wall)
			reg.Counter("repro_phase_bytes_total",
				"bytes sent per rank and phase", rl, pl).Add(float64(tot[i].Bytes))
		}
		if rank < len(r.Acct) {
			a := r.Acct[rank]
			reg.Counter("repro_mpi_bytes_sent_total", "transport bytes sent per rank", rl).Add(float64(a.BytesSent))
			reg.Counter("repro_mpi_bytes_recv_total", "transport bytes received per rank", rl).Add(float64(a.BytesRecv))
		}
	}
	reg.Gauge("repro_run_ranks", "ranks in the last recorded run").Set(float64(r.P))
	reg.Counter("repro_run_wall_seconds_total", "virtual wall clock of recorded runs").Add(r.Wall)
	steps := 0
	if len(r.Timings) > 0 {
		steps = len(r.Timings[0])
	}
	reg.Counter("repro_run_steps_total", "MD steps completed in recorded runs").Add(float64(steps))
}

// PhaseTotals sums a phase over steps and returns the per-rank maxima the
// paper plots: the wall time of the slowest rank and its breakdown.
func (r *Result) PhaseTotals() (classic, pme PhaseSample) {
	for rank := range r.Timings {
		var c, p PhaseSample
		for _, st := range r.Timings[rank] {
			c.Add(st.Classic)
			p.Add(st.PME)
		}
		if c.Wall > classic.Wall {
			classic = c
		}
		if p.Wall > pme.Wall {
			pme = p
		}
	}
	return classic, pme
}

// blockPartition splits n items into p nearly equal contiguous blocks and
// returns the start offsets (length p+1).
func blockPartition(n, p int) []int {
	if p < 1 {
		panic("pmd: non-positive partition")
	}
	off := make([]int, p+1)
	base, rem := n/p, n%p
	for i := 0; i < p; i++ {
		w := base
		if i < rem {
			w++
		}
		off[i+1] = off[i] + w
	}
	return off
}

// comms is the middleware abstraction the engine drives; both the raw MPI
// collectives and the CMPI layer satisfy it.
type comms interface {
	Allreduce(bytes int, reduceOp float64)
	Allgatherv(blocks []int)
	Alltoallv(sizes [][]int)
	// AlltoallvSparse is a personalized all-to-all over a mostly-zero
	// size matrix (halo exchanges, migration, pencil transposes): pairs
	// that move no bytes in either direction skip their exchange round
	// entirely, so the event count scales with the neighbourhood size
	// rather than p². The dense Alltoallv keeps the replicated path's
	// published event sequence byte-stable.
	AlltoallvSparse(sizes [][]int)
	Barrier()
}

type mpiComms struct{ r *mpi.Rank }

func (c mpiComms) Allreduce(bytes int, reduceOp float64) { c.r.Allreduce(bytes, reduceOp) }
func (c mpiComms) Allgatherv(blocks []int)               { c.r.Allgatherv(blocks) }
func (c mpiComms) Alltoallv(sizes [][]int)               { c.r.Alltoallv(sizes) }
func (c mpiComms) AlltoallvSparse(sizes [][]int)         { c.r.AlltoallvSparse(sizes) }
func (c mpiComms) Barrier()                              { c.r.Barrier() }

// mpiModernComms swaps in the post-2004 collective algorithms.
type mpiModernComms struct{ r *mpi.Rank }

func (c mpiModernComms) Allreduce(bytes int, reduceOp float64) {
	c.r.AllreduceRecursiveDoubling(bytes, reduceOp)
}
func (c mpiModernComms) Allgatherv(blocks []int)       { c.r.AllgathervRing(blocks) }
func (c mpiModernComms) Alltoallv(sizes [][]int)       { c.r.Alltoallv(sizes) }
func (c mpiModernComms) AlltoallvSparse(sizes [][]int) { c.r.AlltoallvSparse(sizes) }
func (c mpiModernComms) Barrier()                      { c.r.Barrier() }

type cmpiComms struct{ m *cmpi.Middleware }

func (c cmpiComms) Allreduce(bytes int, reduceOp float64) { c.m.GlobalSum(bytes, reduceOp) }
func (c cmpiComms) Allgatherv(blocks []int)               { c.m.Allgatherv(blocks) }
func (c cmpiComms) Alltoallv(sizes [][]int)               { c.m.Alltoallv(sizes) }
func (c cmpiComms) AlltoallvSparse(sizes [][]int)         { c.m.AlltoallvSparse(sizes) }
func (c cmpiComms) Barrier()                              { c.m.Barrier() }

// Run executes the parallel MD under the given cluster configuration.
func Run(clusterCfg cluster.Config, cost cluster.CostModel, cfg Config) (*Result, error) {
	res, _, err := runAttempt(clusterCfg, cost, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runAttempt executes one simulation attempt and returns the (possibly
// partial) result and per-rank accounting even when the attempt aborts
// with a crash or timeout — the resilient driver needs both to account
// for the lost work.
func runAttempt(clusterCfg cluster.Config, cost cluster.CostModel, cfg Config) (*Result, []mpi.Accounting, error) {
	if cfg.System == nil {
		return nil, nil, fmt.Errorf("pmd: nil system")
	}
	if !cfg.MD.UsePME {
		return nil, nil, fmt.Errorf("pmd: the measured workload requires PME (cfg.MD.UsePME)")
	}
	if cfg.Steps < 1 {
		return nil, nil, fmt.Errorf("pmd: need at least one step")
	}
	if err := clusterCfg.Validate(); err != nil {
		return nil, nil, err
	}
	p := clusterCfg.Nodes * clusterCfg.CPUsPerNode
	if err := ValidateDecomp(cfg.Decomp, p, cfg.MD.PME); err != nil {
		return nil, nil, err
	}

	// Tape eligibility: checkpoint starts, step hooks and numeric guards
	// need the physics actually executed, and a completed tape only fits
	// the rank/step shape it was recorded for. The domain path's
	// collective sizes follow the (dynamic) atom ownership, so it always
	// runs the real physics.
	tape := cfg.Tape
	if cfg.Init != nil || cfg.onStep != nil || cfg.Guard.Enabled || cfg.Decomp == DecompDomain {
		tape = nil
	}
	if tape.Complete() && (tape.p != p || tape.steps != cfg.Steps) {
		tape = nil
	}
	replaying := tape.Complete()
	if tape != nil && !replaying {
		tape.begin(p, cfg.Steps)
	}

	// The initial state comes from the sequential engine so trajectories
	// are directly comparable; every rank starts from an identical copy.
	// A replayed run serves energies and positions from the tape and
	// needs no physics state at all.
	var seed *md.Engine
	if !replaying {
		seed = md.NewEngine(cfg.System, cfg.MD)
		if cfg.Init != nil {
			if err := seed.Restore(cfg.Init); err != nil {
				return nil, nil, err
			}
		}
	}

	sh := newShared(p, cfg, seed)
	res := &Result{
		P:        p,
		Timings:  make([][]StepTiming, p),
		Energies: make([]md.EnergyReport, 0, cfg.Steps),
	}

	opts := mpi.Options{
		Tracer: cfg.Tracer, Obs: cfg.Obs, Faults: cfg.Faults,
		Watchdog: cfg.Watchdog, HostWorkers: cfg.HostWorkers,
	}
	accts, err := mpi.RunOpts(clusterCfg, cost, opts, func(r *mpi.Rank) {
		w := newWorker(r, cfg, sh, seed, tape)
		w.run(res)
	})
	res.Acct = accts
	if tape != nil && !replaying {
		if err != nil {
			tape.reset()
		} else {
			tape.finish(res.Energies, res.FinalPos)
		}
	}
	if err == nil && sh.guardTrip != nil {
		// Every rank reached the same verdict and broke the step loop at
		// the same step; the simulation itself completed cleanly, so the
		// trip surfaces as a typed error around the partial result.
		err = &guard.TripError{Ev: *sh.guardTrip}
	}
	return res, accts, err
}
