package pmd

import (
	"sync"

	"repro/internal/ewald"
	"repro/internal/ff"
	"repro/internal/fft"
	"repro/internal/md"
	"repro/internal/space"
	"repro/internal/topol"
	"repro/internal/vec"
	"repro/internal/work"
)

// canonical is the domain decomposition's shared physics evaluator.
//
// The determinism contract requires the domain path to produce energies
// and forces byte-identical to the replicated path at the same rank count
// (the halo-exchange property test pins this). Replaying replicated-data
// arithmetic atom-by-atom inside every domain rank would both waste host
// work (p full evaluations per step) and make bit-equality hostage to the
// order halo fragments arrive in. Instead, each step's physics is
// evaluated exactly once per run, in the canonical replicated order —
// partitions by rank count p, partial results merged rank-ascending —
// and every domain rank serves its values from the resulting immutable
// snapshot. The domain ranks' own segments and collectives then charge
// the virtual time of the spatial pipeline (halo exchange, owner-computes
// terms, pencil FFTs) without touching the numbers.
//
// Concurrency: the first rank to need step s runs the evaluation inside
// its drift segment's once; the per-step barrier in kick keeps all ranks
// within one step of each other, so an evaluation never runs concurrently
// with another (the scratch buffers below are safely reused) and finished
// snapshots are immutable when read.
type canonical struct {
	cfg Config
	p   int
	sys *topol.System

	ffield *ff.ForceField
	nbk    *ff.NonbondedKernel
	pme    *ewald.PME
	sh     *shared
	geo    *domainGeometry

	charges []float64
	invMass []float64
	dtAKMA  float64

	seedPos, seedVel []vec.V

	// Replicated-equivalent partitions at rank count p.
	atomOff, bondOff, angOff []int
	dihOff, imprOff, p14Off  []int
	yOff                     []int

	plan2d *fft.Plan2D
	plan1d *fft.Plan

	// Scratch reused across evaluations (never concurrent, see above).
	line        []complex128
	scratchGrid []complex128 // one rank's spread contribution
	fullGrid    []complex128 // assembled grid / spectrum / potential
	partial     []vec.V
	eRecipPart  []float64

	mu     sync.Mutex
	states map[int]*canonState
}

// canonState is one step's immutable physics snapshot. Step -1 is the
// initial force evaluation of velocity Verlet. All slices are freshly
// allocated per step (or inherited unchanged from the previous step) so
// a rank still reading step s races with nothing while another rank's
// drift segment evaluates step s+1.
type canonState struct {
	step int
	once sync.Once
	prev *canonState // cleared after evaluation

	pos, vel, frcTotal []vec.V
	rep                md.EnergyReport

	listGen    int
	listOrigin []vec.V
	pairs      []space.Pair
	pairOff    []int
	rebuilt    bool
	distEvals  int64 // full list-search cost when rebuilt

	// Spatial view of this step: ownership epoch (fixed between list
	// rebuilds) and, on a rebuild, the atom-migration size matrix from
	// the previous epoch's owners to the new ones.
	epoch     *epochData
	migration [][]int
}

func newCanonical(p int, cfg Config, sh *shared, seedEngine *md.Engine) *canonical {
	sys := cfg.System
	n := sys.N()
	pmeCfg := cfg.MD.PME
	c := &canonical{
		cfg:     cfg,
		p:       p,
		sys:     sys,
		ffield:  seedEngine.FF,
		sh:      sh,
		dtAKMA:  dtAKMA(cfg.MD),
		seedPos: append([]vec.V(nil), seedEngine.Pos...),
		seedVel: append([]vec.V(nil), seedEngine.Vel...),
		states:  map[int]*canonState{},
	}
	c.nbk = c.ffield.NewNonbondedKernel()
	c.charges = c.ffield.Charges()
	c.invMass = make([]float64, n)
	for i := range c.invMass {
		c.invMass[i] = 1 / sys.Mass(i)
	}
	c.atomOff = blockPartition(n, p)
	c.bondOff = blockPartition(len(sys.Bonds), p)
	c.angOff = blockPartition(len(sys.Angles), p)
	c.dihOff = blockPartition(len(sys.Dihedrals), p)
	c.imprOff = blockPartition(len(sys.Impropers), p)
	c.p14Off = blockPartition(len(sys.Pairs14), p)
	c.yOff = blockPartition(pmeCfg.K2, p)
	c.pme = ewald.NewPME(sys.Box, pmeCfg.Beta, pmeCfg.K1, pmeCfg.K2, pmeCfg.K3, pmeCfg.Order)
	c.plan2d = fft.NewPlan2D(pmeCfg.K2, pmeCfg.K3)
	c.plan1d = fft.NewPlan(pmeCfg.K1)
	if sh.pool != nil {
		c.nbk.SetPool(sh.pool)
		c.pme.SetPool(sh.pool)
	}
	g := pmeCfg.K1 * pmeCfg.K2 * pmeCfg.K3
	c.line = make([]complex128, pmeCfg.K1)
	c.scratchGrid = make([]complex128, g)
	c.fullGrid = make([]complex128, g)
	c.partial = make([]vec.V, n)
	c.eRecipPart = make([]float64, p)
	c.geo = newDomainGeometry(p, cfg)
	return c
}

// state returns step's snapshot, evaluating it exactly once across all
// ranks. step -1 is the initial evaluation; step s > -1 requires step
// s-1 to have been evaluated (guaranteed by the per-step barrier).
func (c *canonical) state(step int) *canonState {
	c.mu.Lock()
	st, ok := c.states[step]
	if !ok {
		st = &canonState{step: step}
		if step > -1 {
			st.prev = c.states[step-1]
		}
		c.states[step] = st
		delete(c.states, step-2) // ranks never lag more than one step
	}
	c.mu.Unlock()
	st.once.Do(func() {
		if st.step == -1 {
			c.evalInit(st)
		} else {
			c.evalStep(st)
		}
		st.prev = nil
	})
	return st
}

// evalInit mirrors the replicated worker's construction + initial
// computeForces: seed state from the sequential engine (optionally
// restored from a checkpoint, rebuilding the pair list at the
// checkpointed origin so the restarted trajectory stays bitwise
// identical), then one force evaluation.
func (c *canonical) evalInit(st *canonState) {
	n := c.sys.N()
	st.pos = append([]vec.V(nil), c.seedPos...)
	st.vel = append([]vec.V(nil), c.seedVel...)
	st.listOrigin = make([]vec.V, n)
	st.listGen = -1
	if init := c.cfg.Init; init != nil && len(init.ListOrigin) == n {
		copy(st.listOrigin, init.ListOrigin)
		st.listGen = 0
		st.pairs, _ = c.sh.sharedList(0, c.ffield, st.listOrigin)
		st.pairOff = blockPartition(len(st.pairs), c.p)
	}
	c.forceEval(st)
}

// evalStep advances prev by one velocity-Verlet step: half-kick + drift,
// force evaluation (with neighbour-list management), second half-kick and
// the kinetic energy — all in the replicated path's arithmetic order.
func (c *canonical) evalStep(st *canonState) {
	prev := st.prev
	half := 0.5 * c.dtAKMA
	st.pos = append([]vec.V(nil), prev.pos...)
	st.vel = append([]vec.V(nil), prev.vel...)
	for i := range st.pos {
		st.vel[i] = st.vel[i].Add(prev.frcTotal[i].Scale(half * c.invMass[i]))
		st.pos[i] = st.pos[i].Add(st.vel[i].Scale(c.dtAKMA))
	}
	st.listGen = prev.listGen
	st.listOrigin = prev.listOrigin
	st.pairs = prev.pairs
	st.pairOff = prev.pairOff
	st.epoch = prev.epoch

	c.forceEval(st)

	for i := range st.vel {
		st.vel[i] = st.vel[i].Add(st.frcTotal[i].Scale(half * c.invMass[i]))
	}
	// Kinetic energy: per-rank block sums merged rank-ascending, exactly
	// like the replicated kick + barrier combine.
	var kinTotal float64
	for rk := 0; rk < c.p; rk++ {
		var kin float64
		for i := c.atomOff[rk]; i < c.atomOff[rk+1]; i++ {
			kin += 0.5 * c.sys.Mass(i) * st.vel[i].Norm2()
		}
		kinTotal += kin
	}
	st.rep.Kinetic = kinTotal
}

// listValid mirrors worker.listValid over the snapshot.
func (c *canonical) listValid(st *canonState) bool {
	if st.listGen < 0 {
		return false
	}
	limit := (c.cfg.MD.FF.ListCutoff - c.cfg.MD.FF.CutOff) / 2
	limit2 := limit * limit
	for i := range st.pos {
		if vec.Dist2(st.pos[i], st.listOrigin[i]) > limit2 {
			return false
		}
	}
	return true
}

// forceEval reproduces computeForces' arithmetic serially: the same
// per-rank partitions evaluated rank 0..p-1 into a zeroed scratch, the
// same rank-ascending merges. The scratch reuse is bitwise safe: every
// accumulator starts at +0.0 and x + (−x) rounds to +0.0, so no merge
// input ever differs from the replicated path's per-rank arrays.
func (c *canonical) forceEval(st *canonState) {
	sys := c.sys
	n := sys.N()
	pmeCfg := c.cfg.MD.PME
	k1, k2, k3 := pmeCfg.K1, pmeCfg.K2, pmeCfg.K3
	planeLen := k2 * k3

	// Neighbour-list management; a rebuild starts a new ownership epoch.
	if !c.listValid(st) {
		st.listGen++
		st.pairs, st.distEvals = c.sh.sharedList(st.listGen, c.ffield, st.pos)
		st.listOrigin = append([]vec.V(nil), st.pos...)
		st.pairOff = blockPartition(len(st.pairs), c.p)
		st.rebuilt = true
		oldEpoch := st.epoch
		st.epoch = c.geo.buildEpoch(c, st)
		if oldEpoch != nil {
			st.migration = c.geo.migrationSizes(oldEpoch, st.epoch)
		}
	}
	if st.epoch == nil {
		// Checkpoint restore with a still-valid list: the epoch follows
		// the checkpointed list origin, as it did in the interrupted run.
		st.epoch = c.geo.buildEpoch(c, st)
	}

	// Classic terms: per-rank partials merged rank-ascending.
	st.frcTotal = make([]vec.V, n)
	var eAll ff.Energies
	for rk := 0; rk < c.p; rk++ {
		var wc work.Counters
		var e ff.Energies
		vec.Fill(c.partial, vec.Zero)
		e.Bond = c.ffield.BondsRange(st.pos, c.partial, &wc, c.bondOff[rk], c.bondOff[rk+1])
		e.Angle = c.ffield.AnglesRange(st.pos, c.partial, &wc, c.angOff[rk], c.angOff[rk+1])
		e.Dihedral = c.ffield.DihedralsRange(st.pos, c.partial, &wc, c.dihOff[rk], c.dihOff[rk+1])
		e.Improper = c.ffield.ImpropersRange(st.pos, c.partial, &wc, c.imprOff[rk], c.imprOff[rk+1])
		e.Add(c.nbk.Compute(st.pos, st.pairs[st.pairOff[rk]:st.pairOff[rk+1]], c.partial, &wc))
		e.Add(c.ffield.Pairs14Range(st.pos, c.partial, &wc, c.p14Off[rk], c.p14Off[rk+1]))
		vec.AddTo(st.frcTotal, c.partial)
		eAll.Add(e)
	}
	st.rep = md.EnergyReport{FF: eAll}

	// PME reciprocal sum. Grid assembly point p sums rank contributions
	// rk-ascending — the same per-point order as the replicated slab
	// assembly (including the zero adds of non-contributing ranks).
	for i := range c.fullGrid {
		c.fullGrid[i] = 0
	}
	for rk := 0; rk < c.p; rk++ {
		for i := range c.scratchGrid {
			c.scratchGrid[i] = 0
		}
		c.pme.Spread(st.pos, c.charges, c.atomOff[rk], c.atomOff[rk+1], c.scratchGrid)
		for i := range c.fullGrid {
			c.fullGrid[i] += c.scratchGrid[i]
		}
	}
	for x := 0; x < k1; x++ {
		c.plan2d.Forward(c.fullGrid[x*planeLen : (x+1)*planeLen])
	}
	// Spectrum lines in the replicated y-block order; per-rank eRecip
	// subtotals are kept apart and merged rank-ascending below.
	for rk := 0; rk < c.p; rk++ {
		var eR float64
		for y := c.yOff[rk]; y < c.yOff[rk+1]; y++ {
			for z := 0; z < k3; z++ {
				for x := 0; x < k1; x++ {
					c.line[x] = c.fullGrid[(x*k2+y)*k3+z]
				}
				c.plan1d.Forward(c.line)
				for m1 := 0; m1 < k1; m1++ {
					eC, cC := c.pme.Psi(m1, y, z)
					v := c.line[m1]
					eR += eC * (real(v)*real(v) + imag(v)*imag(v))
					c.line[m1] = v * complex(cC, 0)
				}
				c.plan1d.Inverse(c.line)
				for x := 0; x < k1; x++ {
					c.fullGrid[(x*k2+y)*k3+z] = c.line[x]
				}
			}
		}
		c.eRecipPart[rk] = eR
	}
	for x := 0; x < k1; x++ {
		c.plan2d.Inverse(c.fullGrid[x*planeLen : (x+1)*planeLen])
	}
	// Interpolation + exclusion correction per rank block, merged in the
	// replicated order: forces rank-ascending on top of the classic sum,
	// then the Recip/ExclCorr scalars rank-ascending.
	for rk := 0; rk < c.p; rk++ {
		var wc work.Counters
		vec.Fill(c.partial, vec.Zero)
		c.pme.Interpolate(c.fullGrid, st.pos, c.charges, c.atomOff[rk], c.atomOff[rk+1], c.partial)
		eExcl := ewald.ExclusionCorrectionRange(sys.Box, st.pos, c.charges, sys.Excl,
			c.pme.Beta, c.atomOff[rk], c.atomOff[rk+1], c.partial, &wc)
		vec.AddTo(st.frcTotal, c.partial)
		st.rep.Recip += c.eRecipPart[rk]
		st.rep.ExclCorr += eExcl
	}
	st.rep.Self = ewald.SelfEnergy(c.charges, c.pme.Beta)
	st.rep.Background = ewald.BackgroundEnergy(c.charges, c.pme.Beta, sys.Box.Volume())
}
