package pmd

import (
	"repro/internal/ewald"
	"repro/internal/ff"
	"repro/internal/md"
	"repro/internal/vec"
	"repro/internal/work"
)

// listValid mirrors the sequential engine's Verlet-skin check; every rank
// holds an identical replica, so all ranks reach the same decision. It is
// also evaluated on the scheduler thread to pick the classic segment's
// work lower bound — it reads only this rank's replica, which no compute
// closure touches between the drift segment and the classic segment.
func (w *worker) listValid() bool {
	if w.listGen < 0 {
		return false
	}
	limit := (w.cfg.MD.FF.ListCutoff - w.cfg.MD.FF.CutOff) / 2
	limit2 := limit * limit
	for i := range w.pos {
		if vec.Dist2(w.pos[i], w.listOrigin[i]) > limit2 {
			return false
		}
	}
	return true
}

// computeForces evaluates the classic and PME phases, producing the new
// total forces and the step energies. When st is non-nil, it closes the
// classic phase sample using tr (opened by the caller at phase start) and
// fills the PME sample for the distributed reciprocal computation.
//
// The physics is split into six compute segments (one per cost charge of
// the original straight-line version, so the event sequence is unchanged),
// each declaring an exact-where-possible work lower bound so the host-
// parallel scheduler can overlap segments of different ranks. Everything
// between segments — publishing shared slots, force combines, transpose
// packing — is zero-cost bookkeeping and stays inline on the scheduler
// thread.
func (w *worker) computeForces(st *StepTiming, tr phaseTracker) md.EnergyReport {
	sys := w.cfg.System
	n := sys.N()
	me := w.me()
	aLo, aHi := w.myAtoms()
	pmeCfg := w.cfg.MD.PME
	k1, k2, k3 := pmeCfg.K1, pmeCfg.K2, pmeCfg.K3
	planeLen := k2 * k3
	myYW := w.myYW()
	o3 := int64(pmeCfg.Order * pmeCfg.Order * pmeCfg.Order)
	var rep md.EnergyReport
	var charges []float64
	if w.replay == nil {
		charges = w.ff.Charges()
	}

	// ---------------- Classic phase (continued) -------------------------

	// Exact bound for everything unconditionally evaluated over this
	// rank's partitions. The neighbour-list rebuild and the nonbonded
	// exclusion checks only add work on top; the current pair-list range
	// is part of the bound only when the list provably survives this step
	// (a rebuild repartitions the pair list, so the old range is no bound).
	var minC work.Counters
	if w.replay == nil {
		minC = work.Counters{
			BondTerms:     int64(w.bondOff[me+1] - w.bondOff[me]),
			AngleTerms:    int64(w.angOff[me+1] - w.angOff[me]),
			DihedralTerms: int64(w.dihOff[me+1]-w.dihOff[me]) + int64(w.imprOff[me+1]-w.imprOff[me]),
			PairEvals:     int64(w.p14Off[me+1] - w.p14Off[me]),
		}
		if w.listValid() {
			minC.PairEvals += int64(w.pairOff[me+1] - w.pairOff[me])
		}
	}

	var e ff.Energies
	w.seg(minC, func(wc *work.Counters) {
		// Neighbour-list management: all replicas are identical, so the
		// build is shared across ranks (constructed once per generation)
		// while each rank still charges its 1/p share of the distributed
		// search work, exactly like CHARMM's parallel list builder.
		if !w.listValid() {
			w.listGen++
			pairs, distEvals := w.sh.sharedList(w.listGen, w.ff, w.pos)
			w.pairs = pairs
			wc.ListDistEvals += distEvals / int64(w.p)
			copy(w.listOrigin, w.pos)
			w.pairOff = blockPartition(len(w.pairs), w.p)
		}

		// Partial classic forces and energies over this rank's partitions.
		vec.Fill(w.partial, vec.Zero)
		e.Bond = w.ff.BondsRange(w.pos, w.partial, wc, w.bondOff[me], w.bondOff[me+1])
		e.Angle = w.ff.AnglesRange(w.pos, w.partial, wc, w.angOff[me], w.angOff[me+1])
		e.Dihedral = w.ff.DihedralsRange(w.pos, w.partial, wc, w.dihOff[me], w.dihOff[me+1])
		e.Improper = w.ff.ImpropersRange(w.pos, w.partial, wc, w.imprOff[me], w.imprOff[me+1])
		e.Add(w.nbk.Compute(w.pos, w.pairs[w.pairOff[me]:w.pairOff[me+1]], w.partial, wc))
		e.Add(w.ff.Pairs14Range(w.pos, w.partial, wc, w.p14Off[me], w.p14Off[me+1]))
	})

	w.inline(func() {
		w.sh.classicFrc[me] = w.partial
		w.sh.energy[me].FF = e
	})

	// Global force combine (the classic "all-to-all collective"), followed
	// by the separate energy/virial-array sum CHARMM performs per step.
	reduceOp := float64(3*n) * 1e-9 // one add per force component, ~1 ns each
	w.c.Allreduce(bytesPerCoord*n, reduceOp)
	w.c.Allreduce(2048, 0)
	w.inline(func() {
		vec.Fill(w.frcTotal, vec.Zero)
		var eAll ff.Energies
		for rk := 0; rk < w.p; rk++ {
			vec.AddTo(w.frcTotal, w.sh.classicFrc[rk])
			eAll.Add(w.sh.energy[rk].FF)
		}
		rep.FF = eAll
	})

	if st != nil {
		st.Classic = tr.sample()
	}

	// ---------------- PME phase -----------------------------------------
	trP := w.beginPhase()
	nOwn := int64(aHi - aLo)

	// Spread own atoms onto the full local accumulation grid.
	w.seg(work.Counters{GridCharges: nOwn * o3}, func(wp *work.Counters) {
		for i := range w.localGrid {
			w.localGrid[i] = 0
		}
		w.pme.Spread(w.pos, charges, aLo, aHi, w.localGrid)
		wp.GridCharges += nOwn * o3
	})
	w.inline(func() { w.sh.grids[me] = w.localGrid })

	// Grid assembly: personalized all-to-all, then sum incoming slab
	// pieces into the owned x-slab, and forward 2-D FFTs over the owned
	// planes. Both counts are exact, so the bound is exact.
	w.c.Alltoallv(w.sizesGrid)
	var minP2 work.Counters
	if w.replay == nil {
		minP2 = work.Counters{
			RecipPoints: int64(w.p-1) * int64(len(w.slab)),
			FFTOps:      int64(w.myXW()) * w.plan2d.Ops(),
		}
	}
	w.seg(minP2, func(wp *work.Counters) {
		slabOff := w.xOff[me] * planeLen
		for i := range w.slab {
			w.slab[i] = 0
		}
		for rk := 0; rk < w.p; rk++ {
			src := w.sh.grids[rk]
			for i := range w.slab {
				w.slab[i] += src[slabOff+i]
			}
		}
		wp.RecipPoints += int64(w.p-1) * int64(len(w.slab))
		for x := 0; x < w.myXW(); x++ {
			w.plan2d.Forward(w.slab[x*planeLen : (x+1)*planeLen])
		}
		wp.FFTOps += int64(w.myXW()) * w.plan2d.Ops()
	})

	// Forward transpose: ship (myX × yW(dst) × K3) blocks.
	w.inline(func() {
		for dst := 0; dst < w.p; dst++ {
			yLo, yHi := w.yOff[dst], w.yOff[dst+1]
			block := w.packF[dst]
			bi := 0
			for x := 0; x < w.myXW(); x++ {
				for y := yLo; y < yHi; y++ {
					copy(block[bi:bi+k3], w.slab[(x*k2+y)*k3:(x*k2+y)*k3+k3])
					bi += k3
				}
			}
			w.sh.tblocksF[me][dst] = block
		}
	})
	w.c.Alltoallv(w.sizesTF)

	// Unpack into the transposed layout, then 1-D FFTs along x, influence
	// multiply on the owned spectrum lines, inverse 1-D FFTs.
	var minP3 work.Counters
	if w.replay == nil {
		minP3 = work.Counters{
			Other:       int64(k1 * myYW * k3),
			FFTOps:      2 * int64(myYW*k3) * w.plan1d.Ops(),
			RecipPoints: int64(k1 * myYW * k3),
		}
	}
	var eRecip float64
	w.seg(minP3, func(wp *work.Counters) {
		for src := 0; src < w.p; src++ {
			block := w.sh.tblocksF[src][me]
			xw := w.xOff[src+1] - w.xOff[src]
			bi := 0
			for xx := 0; xx < xw; xx++ {
				x := w.xOff[src] + xx
				for yy := 0; yy < myYW; yy++ {
					copy(w.xlines[(x*myYW+yy)*k3:(x*myYW+yy)*k3+k3], block[bi:bi+k3])
					bi += k3
				}
			}
		}
		wp.Other += int64(k1 * myYW * k3)

		for yy := 0; yy < myYW; yy++ {
			for z := 0; z < k3; z++ {
				for x := 0; x < k1; x++ {
					w.line[x] = w.xlines[(x*myYW+yy)*k3+z]
				}
				w.plan1d.Forward(w.line)
				m2 := w.yOff[me] + yy
				for m1 := 0; m1 < k1; m1++ {
					eC, cC := w.pme.Psi(m1, m2, z)
					v := w.line[m1]
					eRecip += eC * (real(v)*real(v) + imag(v)*imag(v))
					w.line[m1] = v * complex(cC, 0)
				}
				w.plan1d.Inverse(w.line)
				for x := 0; x < k1; x++ {
					w.xlines[(x*myYW+yy)*k3+z] = w.line[x]
				}
			}
		}
		wp.FFTOps += 2 * int64(myYW*k3) * w.plan1d.Ops()
		wp.RecipPoints += int64(k1 * myYW * k3)
	})

	// Backward transpose: return (xW(dst) × myY × K3) blocks.
	w.inline(func() {
		for dst := 0; dst < w.p; dst++ {
			xLo, xHi := w.xOff[dst], w.xOff[dst+1]
			block := w.packB[dst]
			bi := 0
			for x := xLo; x < xHi; x++ {
				for yy := 0; yy < myYW; yy++ {
					copy(block[bi:bi+k3], w.xlines[(x*myYW+yy)*k3:(x*myYW+yy)*k3+k3])
					bi += k3
				}
			}
			w.sh.tblocksB[me][dst] = block
		}
	})
	w.c.Alltoallv(w.sizesTB)

	// Unpack, then inverse 2-D FFTs complete the convolution on the owned
	// planes.
	var minP4 work.Counters
	if w.replay == nil {
		minP4 = work.Counters{
			Other:  int64(w.myXW() * k2 * k3),
			FFTOps: int64(w.myXW()) * w.plan2d.Ops(),
		}
	}
	w.seg(minP4, func(wp *work.Counters) {
		for src := 0; src < w.p; src++ {
			block := w.sh.tblocksB[src][me]
			yLo, yHi := w.yOff[src], w.yOff[src+1]
			bi := 0
			for xx := 0; xx < w.myXW(); xx++ {
				for y := yLo; y < yHi; y++ {
					copy(w.slab[(xx*k2+y)*k3:(xx*k2+y)*k3+k3], block[bi:bi+k3])
					bi += k3
				}
			}
		}
		wp.Other += int64(w.myXW() * k2 * k3)
		for x := 0; x < w.myXW(); x++ {
			w.plan2d.Inverse(w.slab[x*planeLen : (x+1)*planeLen])
		}
		wp.FFTOps += int64(w.myXW()) * w.plan2d.Ops()
	})

	// Gather the convolved potential so every rank can interpolate the
	// forces of its own atoms.
	w.inline(func() { w.sh.convSlabs[me] = w.slab })
	w.c.Allgatherv(w.blocksConv)

	// Assemble the full potential grid, interpolate PME forces for the
	// owned atoms, add the excluded-pair correction for the owned
	// exclusion rows (the correction's pair evaluations only add on top
	// of the exact assembly + interpolation bound).
	var minP5 work.Counters
	if w.replay == nil {
		minP5 = work.Counters{
			Other:       int64(len(w.convFull)),
			GridCharges: nOwn * o3,
		}
	}
	var eExcl float64
	w.seg(minP5, func(wp *work.Counters) {
		for rk := 0; rk < w.p; rk++ {
			copy(w.convFull[w.xOff[rk]*planeLen:w.xOff[rk+1]*planeLen], w.sh.convSlabs[rk])
		}
		wp.Other += int64(len(w.convFull))
		vec.Fill(w.partial, vec.Zero)
		w.pme.Interpolate(w.convFull, w.pos, charges, aLo, aHi, w.partial)
		wp.GridCharges += nOwn * o3
		eExcl = ewald.ExclusionCorrectionRange(sys.Box, w.pos, charges, sys.Excl, w.pme.Beta, aLo, aHi, w.partial, wp)
	})

	w.inline(func() {
		w.sh.pmeFrc[me] = w.partial
		w.sh.energy[me].Recip = eRecip
		w.sh.energy[me].ExclCorr = eExcl
	})

	// Combine PME forces and energies.
	w.c.Allreduce(bytesPerCoord*n+64, reduceOp)
	w.inline(func() {
		for rk := 0; rk < w.p; rk++ {
			vec.AddTo(w.frcTotal, w.sh.pmeFrc[rk])
			rep.Recip += w.sh.energy[rk].Recip
			rep.ExclCorr += w.sh.energy[rk].ExclCorr
		}
		rep.Self = ewald.SelfEnergy(charges, w.pme.Beta)
		rep.Background = ewald.BackgroundEnergy(charges, w.pme.Beta, sys.Box.Volume())
	})

	if st != nil {
		st.PME = trP.sample()
	}
	return rep
}
