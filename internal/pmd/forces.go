package pmd

import (
	"repro/internal/ewald"
	"repro/internal/ff"
	"repro/internal/md"
	"repro/internal/vec"
	"repro/internal/work"
)

// listValid mirrors the sequential engine's Verlet-skin check; every rank
// holds an identical replica, so all ranks reach the same decision.
func (w *worker) listValid() bool {
	if w.listOrigin == nil {
		return false
	}
	limit := (w.cfg.MD.FF.ListCutoff - w.cfg.MD.FF.CutOff) / 2
	limit2 := limit * limit
	for i := range w.pos {
		if vec.Dist2(w.pos[i], w.listOrigin[i]) > limit2 {
			return false
		}
	}
	return true
}

// computeForces evaluates the classic and PME phases, producing the new
// total forces and the step energies. When st is non-nil, it closes the
// classic phase sample using tr (opened by the caller at phase start) and
// fills the PME sample for the distributed reciprocal computation.
func (w *worker) computeForces(st *StepTiming, tr phaseTracker) md.EnergyReport {
	sys := w.cfg.System
	n := sys.N()
	me := w.me()
	charges := w.ff.Charges()
	aLo, aHi := w.myAtoms()
	var rep md.EnergyReport

	// ---------------- Classic phase (continued) -------------------------
	var wc work.Counters

	// Neighbour-list management: each rank executes the full build (the
	// replicas are identical) but the parallel list construction of
	// CHARMM distributes the search work, so only 1/p of it is charged.
	if !w.listValid() {
		var wl work.Counters
		w.pairs = w.ff.BuildPairs(w.pos, &wl)
		wc.ListDistEvals += wl.ListDistEvals / int64(w.p)
		if w.listOrigin == nil {
			w.listOrigin = make([]vec.V, n)
		}
		copy(w.listOrigin, w.pos)
		w.pairOff = blockPartition(len(w.pairs), w.p)
	}

	// Partial classic forces and energies over this rank's partitions.
	vec.Fill(w.partial, vec.Zero)
	var e ff.Energies
	e.Bond = w.ff.BondsRange(w.pos, w.partial, &wc, w.bondOff[me], w.bondOff[me+1])
	e.Angle = w.ff.AnglesRange(w.pos, w.partial, &wc, w.angOff[me], w.angOff[me+1])
	e.Dihedral = w.ff.DihedralsRange(w.pos, w.partial, &wc, w.dihOff[me], w.dihOff[me+1])
	e.Improper = w.ff.ImpropersRange(w.pos, w.partial, &wc, w.imprOff[me], w.imprOff[me+1])
	e.Add(w.ff.Nonbonded(w.pos, w.pairs[w.pairOff[me]:w.pairOff[me+1]], w.partial, &wc))
	e.Add(w.ff.Pairs14Range(w.pos, w.partial, &wc, w.p14Off[me], w.p14Off[me+1]))
	w.r.ComputeWork(wc)

	w.sh.classicFrc[me] = w.partial
	w.sh.energy[me].FF = e

	// Global force combine (the classic "all-to-all collective"), followed
	// by the separate energy/virial-array sum CHARMM performs per step.
	reduceOp := float64(3*n) * 1e-9 // one add per force component, ~1 ns each
	w.c.Allreduce(bytesPerCoord*n, reduceOp)
	w.c.Allreduce(2048, 0)
	vec.Fill(w.frcTotal, vec.Zero)
	var eAll ff.Energies
	for rk := 0; rk < w.p; rk++ {
		vec.AddTo(w.frcTotal, w.sh.classicFrc[rk])
		eAll.Add(w.sh.energy[rk].FF)
	}
	rep.FF = eAll

	if st != nil {
		st.Classic = tr.sample()
	}

	// ---------------- PME phase -----------------------------------------
	trP := w.beginPhase()
	var wp work.Counters
	o3 := int64(w.pme.Order * w.pme.Order * w.pme.Order)
	k1, k2, k3 := w.pme.K1, w.pme.K2, w.pme.K3
	planeLen := k2 * k3

	// Spread own atoms onto the full local accumulation grid.
	for i := range w.localGrid {
		w.localGrid[i] = 0
	}
	w.pme.Spread(w.pos, charges, aLo, aHi, w.localGrid)
	wp.GridCharges += int64(aHi-aLo) * o3
	w.sh.grids[me] = w.localGrid
	w.r.ComputeWork(wp)
	wp = work.Counters{}

	// Grid assembly: personalized all-to-all, then sum incoming slab
	// pieces into the owned x-slab.
	sizes := make([][]int, w.p)
	for i := range sizes {
		sizes[i] = make([]int, w.p)
		for j := range sizes[i] {
			if i != j {
				sizes[i][j] = bytesPerRealPoint * (w.xOff[j+1] - w.xOff[j]) * planeLen
			}
		}
	}
	w.c.Alltoallv(sizes)
	slabOff := w.xOff[me] * planeLen
	for i := range w.slab {
		w.slab[i] = 0
	}
	for rk := 0; rk < w.p; rk++ {
		src := w.sh.grids[rk]
		for i := range w.slab {
			w.slab[i] += src[slabOff+i]
		}
	}
	wp.RecipPoints += int64(w.p-1) * int64(len(w.slab))

	// Forward 2-D FFTs over the owned planes.
	for x := 0; x < w.myXW(); x++ {
		w.plan2d.Forward(w.slab[x*planeLen : (x+1)*planeLen])
	}
	wp.FFTOps += int64(w.myXW()) * w.plan2d.Ops()
	w.r.ComputeWork(wp)
	wp = work.Counters{}

	// Forward transpose: ship (myX × yW(dst) × K3) blocks.
	for dst := 0; dst < w.p; dst++ {
		yLo, yHi := w.yOff[dst], w.yOff[dst+1]
		block := make([]complex128, w.myXW()*(yHi-yLo)*k3)
		bi := 0
		for x := 0; x < w.myXW(); x++ {
			for y := yLo; y < yHi; y++ {
				copy(block[bi:bi+k3], w.slab[(x*k2+y)*k3:(x*k2+y)*k3+k3])
				bi += k3
			}
		}
		w.sh.tblocksF[me][dst] = block
	}
	sizesT := make([][]int, w.p)
	for i := range sizesT {
		sizesT[i] = make([]int, w.p)
		for j := range sizesT[i] {
			if i != j {
				sizesT[i][j] = bytesPerPoint * (w.xOff[i+1] - w.xOff[i]) * (w.yOff[j+1] - w.yOff[j]) * k3
			}
		}
	}
	w.c.Alltoallv(sizesT)
	myYW := w.myYW()
	for src := 0; src < w.p; src++ {
		block := w.sh.tblocksF[src][me]
		xw := w.xOff[src+1] - w.xOff[src]
		bi := 0
		for xx := 0; xx < xw; xx++ {
			x := w.xOff[src] + xx
			for yy := 0; yy < myYW; yy++ {
				copy(w.xlines[(x*myYW+yy)*k3:(x*myYW+yy)*k3+k3], block[bi:bi+k3])
				bi += k3
			}
		}
	}
	wp.Other += int64(k1 * myYW * k3)

	// 1-D FFTs along x, influence multiply on the owned spectrum lines,
	// inverse 1-D FFTs.
	var eRecip float64
	for yy := 0; yy < myYW; yy++ {
		for z := 0; z < k3; z++ {
			for x := 0; x < k1; x++ {
				w.line[x] = w.xlines[(x*myYW+yy)*k3+z]
			}
			w.plan1d.Forward(w.line)
			m2 := w.yOff[me] + yy
			for m1 := 0; m1 < k1; m1++ {
				eC, cC := w.pme.Psi(m1, m2, z)
				v := w.line[m1]
				eRecip += eC * (real(v)*real(v) + imag(v)*imag(v))
				w.line[m1] = v * complex(cC, 0)
			}
			w.plan1d.Inverse(w.line)
			for x := 0; x < k1; x++ {
				w.xlines[(x*myYW+yy)*k3+z] = w.line[x]
			}
		}
	}
	wp.FFTOps += 2 * int64(myYW*k3) * w.plan1d.Ops()
	wp.RecipPoints += int64(k1 * myYW * k3)
	w.r.ComputeWork(wp)
	wp = work.Counters{}

	// Backward transpose: return (xW(dst) × myY × K3) blocks.
	for dst := 0; dst < w.p; dst++ {
		xLo, xHi := w.xOff[dst], w.xOff[dst+1]
		block := make([]complex128, (xHi-xLo)*myYW*k3)
		bi := 0
		for x := xLo; x < xHi; x++ {
			for yy := 0; yy < myYW; yy++ {
				copy(block[bi:bi+k3], w.xlines[(x*myYW+yy)*k3:(x*myYW+yy)*k3+k3])
				bi += k3
			}
		}
		w.sh.tblocksB[me][dst] = block
	}
	sizesB := make([][]int, w.p)
	for i := range sizesB {
		sizesB[i] = make([]int, w.p)
		for j := range sizesB[i] {
			if i != j {
				sizesB[i][j] = bytesPerPoint * (w.xOff[j+1] - w.xOff[j]) * (w.yOff[i+1] - w.yOff[i]) * k3
			}
		}
	}
	w.c.Alltoallv(sizesB)
	for src := 0; src < w.p; src++ {
		block := w.sh.tblocksB[src][me]
		yLo, yHi := w.yOff[src], w.yOff[src+1]
		bi := 0
		for xx := 0; xx < w.myXW(); xx++ {
			for y := yLo; y < yHi; y++ {
				copy(w.slab[(xx*k2+y)*k3:(xx*k2+y)*k3+k3], block[bi:bi+k3])
				bi += k3
			}
		}
	}
	wp.Other += int64(w.myXW() * k2 * k3)

	// Inverse 2-D FFTs complete the convolution on the owned planes.
	for x := 0; x < w.myXW(); x++ {
		w.plan2d.Inverse(w.slab[x*planeLen : (x+1)*planeLen])
	}
	wp.FFTOps += int64(w.myXW()) * w.plan2d.Ops()
	w.r.ComputeWork(wp)
	wp = work.Counters{}

	// Gather the convolved potential so every rank can interpolate the
	// forces of its own atoms.
	w.sh.convSlabs[me] = w.slab
	blocksConv := make([]int, w.p)
	for i := 0; i < w.p; i++ {
		blocksConv[i] = bytesPerRealPoint * (w.xOff[i+1] - w.xOff[i]) * planeLen
	}
	w.c.Allgatherv(blocksConv)
	for rk := 0; rk < w.p; rk++ {
		copy(w.convFull[w.xOff[rk]*planeLen:w.xOff[rk+1]*planeLen], w.sh.convSlabs[rk])
	}
	wp.Other += int64(len(w.convFull))

	// Interpolate PME forces for the owned atoms; add the excluded-pair
	// correction for the owned exclusion rows.
	vec.Fill(w.partial, vec.Zero)
	w.pme.Interpolate(w.convFull, w.pos, charges, aLo, aHi, w.partial)
	wp.GridCharges += int64(aHi-aLo) * o3
	eExcl := ewald.ExclusionCorrectionRange(sys.Box, w.pos, charges, sys.Excl, w.pme.Beta, aLo, aHi, w.partial, &wp)
	w.r.ComputeWork(wp)

	w.sh.pmeFrc[me] = w.partial
	w.sh.energy[me].Recip = eRecip
	w.sh.energy[me].ExclCorr = eExcl

	// Combine PME forces and energies.
	w.c.Allreduce(bytesPerCoord*n+64, reduceOp)
	for rk := 0; rk < w.p; rk++ {
		vec.AddTo(w.frcTotal, w.sh.pmeFrc[rk])
		rep.Recip += w.sh.energy[rk].Recip
		rep.ExclCorr += w.sh.energy[rk].ExclCorr
	}
	rep.Self = ewald.SelfEnergy(charges, w.pme.Beta)
	rep.Background = ewald.BackgroundEnergy(charges, w.pme.Beta, sys.Box.Volume())

	if st != nil {
		st.PME = trP.sample()
	}
	return rep
}
