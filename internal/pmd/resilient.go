package pmd

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/md"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/vec"
)

// ResilientConfig configures a fault-tolerant parallel run: a base Config
// plus a fault scenario and the checkpoint-restart policy.
type ResilientConfig struct {
	Config

	// Scenario is the fault script; nil runs healthy (RunResilient then
	// degenerates to Run plus accounting plumbing).
	Scenario *fault.Scenario

	// CheckpointEvery takes a snapshot every k completed steps; 0 means
	// the default of 1, negative values are a *ConfigError. Larger values
	// lose more work per crash.
	CheckpointEvery int

	// RestartCost is the virtual time charged per recovery (failure
	// detection, job relaunch, checkpoint distribution).
	RestartCost float64

	// MaxRestarts bounds crash-recovery attempts; 0 means one per crash
	// spec in the scenario.
	MaxRestarts int

	// CheckpointDir, when non-empty, persists checkpoints durably: a ring
	// of the last KeepCheckpoints checksummed checkpoint files plus a
	// per-step progress journal (see internal/md durable format). If the
	// directory already holds a valid checkpoint the run RESUMES from the
	// newest one that validates, booking the killed process's
	// post-checkpoint work as Lost; corrupt newer files are skipped.
	CheckpointDir string

	// KeepCheckpoints is the on-disk ring depth; 0 means md.DefaultKeep,
	// negative values are a *ConfigError.
	KeepCheckpoints int

	// HaltAfterStep > 0 simulates a kill -9 for tests and examples: the
	// run stops right after that global step completes (persistence is
	// current up to it, nothing later reaches disk) and RunResilient
	// returns the partial result with ErrHalted. Requires CheckpointDir.
	HaltAfterStep int

	// Preempt, when non-nil, is polled once per globally completed step
	// on the scheduler thread (it must not block). The first time it
	// returns true the run latches the NEXT step boundary as the
	// preemption point: every rank checkpoints there, the checkpoint is
	// persisted to CheckpointDir, and RunResilient returns the completed
	// prefix with ErrPreempted. A later invocation with the same
	// CheckpointDir resumes from that checkpoint with zero lost work —
	// this is the graceful-preemption hook the serve layer uses to yield
	// a long run to waiting tenants. Requires CheckpointDir.
	Preempt func() bool
}

// ConfigError reports an invalid ResilientConfig field.
type ConfigError struct {
	Field string
	Msg   string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("pmd: invalid %s: %s", e.Field, e.Msg) }

// ErrHalted marks a run stopped at the configured HaltAfterStep kill
// point. The result returned alongside it holds the completed prefix; a
// follow-up RunResilient with the same CheckpointDir resumes from disk.
var ErrHalted = errors.New("pmd: run halted at the simulated kill point")

// ErrPreempted marks a run stopped at a Preempt-requested checkpoint
// boundary. Unlike ErrHalted (a simulated crash that loses the work past
// the last periodic checkpoint), a preempted run checkpoints the exact
// boundary it stops at: resuming with the same CheckpointDir loses
// nothing. The result alongside holds the completed prefix.
var ErrPreempted = errors.New("pmd: run preempted at a checkpoint boundary")

// RecoveryEvent records one crash-and-rewind cycle.
type RecoveryEvent struct {
	CrashedRank int     // rank id (pre-restart numbering) that crashed
	DetectedAt  float64 // virtual time into the failed attempt when it died
	RewindStep  int     // global step index execution resumed from
	Lost        float64 // virtual seconds of work discarded across ranks
	Checkpoint  *md.Checkpoint
}

// ResumeInfo describes a restart from a durable on-disk checkpoint.
type ResumeInfo struct {
	Step               int     // global step count the run resumed from
	SkippedCheckpoints int     // corrupt newer checkpoints passed over
	LostOnDisk         float64 // killed process's work past the checkpoint (virtual s)
}

// ResilientResult is the outcome of a fault-tolerant run.
type ResilientResult struct {
	Final      *Result           // the completing attempt
	Energies   []md.EnergyReport // merged across attempts, one per MD step
	Wall       float64           // total virtual time including failed attempts and restarts
	Ranks      int               // surviving rank count
	Acct       []mpi.Accounting  // per surviving rank, merged across attempts
	Recoveries []RecoveryEvent

	// GuardTrips are the numeric-guard events of the whole run (recovered
	// trips that were healed by the exact-kernel fallback included).
	GuardTrips []guard.Event

	// Resumed is set when the run restarted from an on-disk checkpoint.
	Resumed *ResumeInfo
}

// LostTotal sums the Lost bucket over ranks.
func (r *ResilientResult) LostTotal() float64 {
	var s float64
	for _, a := range r.Acct {
		s += a.Lost
	}
	return s
}

// ckptEntry is one rank's recorded state at a checkpoint step.
type ckptEntry struct {
	step   int
	acct   mpi.Accounting
	vel    []vec.V // owned atom block
	pos    []vec.V // rank 0 only: full replica
	frc    []vec.V // rank 0 only: combined forces
	origin []vec.V // rank 0 only: Verlet-list origin (replicated on all ranks)
}

// recorder collects per-rank checkpoint entries during an attempt and,
// when a durable ring is attached, persists each globally completed
// checkpoint (plus a per-step progress journal) to disk. The sim engine
// runs onStep hooks strictly one rank at a time on the scheduler thread,
// so plain field writes are safe. Full in-memory history is kept because
// ranks can be one checkpoint apart when a crash interrupts a collective:
// the rewind uses the newest step every rank (including the crashed one)
// has recorded.
type recorder struct {
	every int
	p     int
	hist  [][]ckptEntry

	// Durable persistence; ring == nil keeps everything in memory only.
	ring       *md.CheckpointRing
	atomOff    []int
	timestepFS float64
	baseStep   int              // globally completed steps before this attempt
	baseWall   float64          // scenario clock at attempt start
	carried    []mpi.Accounting // global cumulative accounting per rank before this attempt
	consumed   []int            // crash spec indices already recovered
	haltAfter  int              // global step to stop at (simulated kill); 0 = never
	halted     bool
	preempt    func() bool // polled at globally consistent step boundaries
	preemptAt  int         // global step every rank stops after; 0 = none latched
	preempted  bool
	nowMax     float64
	acct       []mpi.Accounting // current attempt accounting, refreshed every onStep
	seen       map[int]int      // local step -> ranks that completed it
	persistErr error
}

func (rec *recorder) onStep(w *worker, step int) {
	me := w.me()
	global := rec.baseStep + step + 1
	// A preemption boundary forces a checkpoint regardless of cadence:
	// preemptAt was latched before any rank started this step (see below),
	// so every rank agrees on the forced entry.
	ckptStep := (step+1)%rec.every == 0 || (rec.preemptAt > 0 && global == rec.preemptAt)
	if ckptStep {
		lo, hi := w.myAtoms()
		e := ckptEntry{
			step: step,
			acct: w.r.Acct(),
			vel:  append([]vec.V(nil), w.vel[lo:hi]...),
		}
		if me == 0 {
			e.pos = append([]vec.V(nil), w.pos...)
			e.frc = append([]vec.V(nil), w.frcTotal...)
			if w.listGen >= 0 {
				e.origin = append([]vec.V(nil), w.listOrigin...)
			}
		}
		rec.hist[me] = append(rec.hist[me], e)
	}
	// The halt step itself still persists: every rank completes it (each
	// sets only its own stop flag), so its checkpoint must reach disk
	// before the simulated kill — that is the state the restart resumes.
	if rec.ring != nil && (rec.haltAfter == 0 || global <= rec.haltAfter) {
		rec.acct[me] = w.r.Acct()
		if now := w.r.Now(); now > rec.nowMax {
			rec.nowMax = now
		}
		rec.seen[step]++
		if rec.seen[step] == rec.p {
			// Collective ordering guarantees every rank finished this step
			// before any rank reaches the next one, so the state gathered
			// across ranks is globally consistent here.
			delete(rec.seen, step)
			rec.persist(step, ckptStep)
			if rec.preempt != nil && rec.preemptAt == 0 && rec.preempt() {
				// Latch the stop point one boundary ahead: the other ranks
				// already passed their stop check for this step, so the next
				// boundary is the earliest one all ranks still observe. No
				// rank has started the next step yet (same ordering as the
				// persist above), so they all see the latched value.
				rec.preemptAt = global + 1
			}
		}
	}
	if rec.haltAfter > 0 && global >= rec.haltAfter {
		rec.halted = true
		w.stop = true
	}
	if rec.preemptAt > 0 && global >= rec.preemptAt {
		rec.preempted = true
		w.stop = true
	}
}

// persist writes the progress journal for the just-completed step and,
// on checkpoint steps, the durable checkpoint itself. Persistence errors
// are remembered (first one wins) and surfaced after the attempt.
func (rec *recorder) persist(localStep int, ckptStep bool) {
	if rec.persistErr != nil {
		return
	}
	global := rec.baseStep + localStep + 1
	wall := rec.baseWall + rec.nowMax
	quads := make([][4]float64, rec.p)
	for i := 0; i < rec.p; i++ {
		a := rec.carried[i]
		a.Add(rec.acct[i])
		quads[i] = [4]float64{a.Comp, a.Comm, a.Sync, a.Lost}
	}
	if ckptStep {
		idx := len(rec.hist[0]) - 1
		cp := rec.assemble(idx, rec.atomOff, rec.timestepFS)
		meta := md.DurableMeta{Step: global, Wall: wall, RankAcct: quads}
		if err := rec.ring.Save(cp, meta); err != nil {
			rec.persistErr = err
			return
		}
	}
	prog := md.Progress{Step: global, Wall: wall, RankAcct: quads, ConsumedCrashes: rec.consumed}
	if err := rec.ring.MarkProgress(prog); err != nil {
		rec.persistErr = err
	}
}

// rewindIndex returns the index into each rank's history of the newest
// checkpoint all ranks share, or -1 when some rank has none.
func (rec *recorder) rewindIndex() int {
	idx := -1
	for i, h := range rec.hist {
		n := len(h) - 1
		if i == 0 || n < idx {
			idx = n
		}
	}
	return idx
}

// assemble builds the global checkpoint at history index idx: positions
// and forces from rank 0's replica (consistent after the step's gather and
// reduction), velocities from the per-rank owned blocks (velocities are
// never gathered during a run, so no single replica holds them all).
func (rec *recorder) assemble(idx int, atomOff []int, timestepFS float64) *md.Checkpoint {
	root := rec.hist[0][idx]
	n := len(root.pos)
	cp := &md.Checkpoint{
		N:          n,
		TimestepFS: timestepFS,
		Pos:        append([]vec.V(nil), root.pos...),
		Vel:        make([]vec.V, n),
		Frc:        append([]vec.V(nil), root.frc...),
	}
	for rk := range rec.hist {
		copy(cp.Vel[atomOff[rk]:atomOff[rk+1]], rec.hist[rk][idx].vel)
	}
	if root.origin != nil {
		cp.ListOrigin = append([]vec.V(nil), root.origin...)
	}
	return cp
}

// validate checks the resilience knobs and applies defaults in place.
func (rcfg *ResilientConfig) validate() error {
	switch {
	case rcfg.CheckpointEvery < 0:
		return &ConfigError{"CheckpointEvery",
			fmt.Sprintf("must be >= 0 (0 means the default of 1), got %d", rcfg.CheckpointEvery)}
	case rcfg.KeepCheckpoints < 0:
		return &ConfigError{"KeepCheckpoints",
			fmt.Sprintf("must be >= 0 (0 means the default of %d), got %d", md.DefaultKeep, rcfg.KeepCheckpoints)}
	case rcfg.RestartCost < 0:
		return &ConfigError{"RestartCost", fmt.Sprintf("must be >= 0, got %g", rcfg.RestartCost)}
	case rcfg.MaxRestarts < 0:
		return &ConfigError{"MaxRestarts", fmt.Sprintf("must be >= 0, got %d", rcfg.MaxRestarts)}
	case rcfg.HaltAfterStep < 0:
		return &ConfigError{"HaltAfterStep", fmt.Sprintf("must be >= 0, got %d", rcfg.HaltAfterStep)}
	case rcfg.HaltAfterStep > 0 && rcfg.CheckpointDir == "":
		return &ConfigError{"HaltAfterStep", "simulated kill needs CheckpointDir to resume from"}
	case rcfg.Preempt != nil && rcfg.CheckpointDir == "":
		return &ConfigError{"Preempt", "graceful preemption needs CheckpointDir to park the run in"}
	}
	if rcfg.CheckpointEvery == 0 {
		rcfg.CheckpointEvery = 1
	}
	return nil
}

func quadToAcct(q [4]float64) mpi.Accounting {
	return mpi.Accounting{Comp: q[0], Comm: q[1], Sync: q[2], Lost: q[3]}
}

// RunResilient executes the parallel MD under fault injection with
// checkpoint-restart recovery. On an injected rank crash it drops the
// crashed rank's whole node, rewinds to the newest globally consistent
// checkpoint and re-runs the remaining steps on the survivors; the
// discarded virtual time lands in the Lost accounting bucket. On a
// numeric guard trip with guard.PolicyFallback it rewinds the same way
// and continues on exact kernels. With CheckpointDir set, checkpoints
// also persist to disk and a later invocation resumes a killed run from
// the newest valid file. Other errors (including watchdog timeouts with
// no crash behind them) are returned as-is.
func RunResilient(clusterCfg cluster.Config, cost cluster.CostModel, rcfg ResilientConfig) (*ResilientResult, error) {
	if err := clusterCfg.Validate(); err != nil {
		return nil, err
	}
	if err := rcfg.validate(); err != nil {
		return nil, err
	}
	var crashSpecs int
	if rcfg.Scenario != nil {
		crashSpecs = len(rcfg.Scenario.CrashSpecs())
	}
	maxRestarts := rcfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = crashSpecs
	}
	wd := rcfg.Watchdog
	if !wd.Enabled() && crashSpecs > 0 {
		// Crash detection relies on bounded waits: without a watchdog the
		// survivors would park forever and the run would end in a sim
		// deadlock instead of a recoverable typed error.
		wd = mpi.DefaultWatchdog()
	}

	// Resilience metrics (nil-gated: a run without an obs recorder pays
	// nothing). Counters accumulate across attempts of this invocation.
	var reg *obs.Registry
	if rcfg.Obs != nil {
		reg = rcfg.Obs.Registry()
	}
	obsCount := func(name, help string, v float64) {
		if reg != nil {
			reg.Counter(name, help).Add(v)
		}
	}

	out := &ResilientResult{}
	curCfg := clusterCfg
	totalSteps := rcfg.Steps
	stepsDone := 0
	offset := 0.0
	init := rcfg.Init
	exact := rcfg.MD.FF.ExactKernels
	var consumed []int
	var carried []mpi.Accounting
	restarts := 0

	var ring *md.CheckpointRing
	if rcfg.CheckpointDir != "" {
		ring = &md.CheckpointRing{Dir: rcfg.CheckpointDir, Keep: rcfg.KeepCheckpoints, Obs: reg}
		cp, meta, skipped, err := ring.LoadNewest()
		switch {
		case err == nil:
			// Resume a killed run: the checkpoint fixes the dynamic state
			// and the surviving rank count; the progress journal, when it
			// reaches past the checkpoint, fixes what the killed process
			// had additionally spent — that delta is Lost.
			if len(meta.RankAcct)%clusterCfg.CPUsPerNode != 0 {
				return nil, fmt.Errorf("pmd: checkpoint has %d ranks, not a multiple of %d CPUs/node",
					len(meta.RankAcct), clusterCfg.CPUsPerNode)
			}
			if meta.Step >= totalSteps {
				return nil, fmt.Errorf("pmd: checkpoint already at step %d of a %d-step run", meta.Step, totalSteps)
			}
			curCfg.Nodes = len(meta.RankAcct) / clusterCfg.CPUsPerNode
			stepsDone = meta.Step
			init = cp
			carried = make([]mpi.Accounting, len(meta.RankAcct))
			for i, q := range meta.RankAcct {
				carried[i] = quadToAcct(q)
			}
			resumeWall := meta.Wall
			var lostOnDisk float64
			if prog, perr := ring.ReadProgress(); perr == nil &&
				prog.Step >= meta.Step && len(prog.RankAcct) == len(meta.RankAcct) {
				consumed = prog.ConsumedCrashes
				resumeWall = prog.Wall
				for i, q := range prog.RankAcct {
					if lost := quadToAcct(q).Total() - carried[i].Total(); lost > 0 {
						carried[i].Lost += lost
						lostOnDisk += lost
					}
				}
			}
			out.Wall = resumeWall + rcfg.RestartCost
			offset = out.Wall
			out.Resumed = &ResumeInfo{Step: stepsDone, SkippedCheckpoints: skipped, LostOnDisk: lostOnDisk}
		case errors.Is(err, md.ErrNoCheckpoint):
			// Fresh run; the ring fills as steps complete.
		default:
			return nil, err
		}
	}

	for {
		var inj *fault.Injector
		if rcfg.Scenario != nil {
			var err error
			inj, err = fault.NewInjector(rcfg.Scenario, fault.Options{Offset: offset, ConsumedCrashes: consumed})
			if err != nil {
				return nil, err
			}
		}
		p := curCfg.Nodes * curCfg.CPUsPerNode
		base := carried
		if base == nil {
			base = make([]mpi.Accounting, p)
		}
		rec := &recorder{
			every: rcfg.CheckpointEvery, p: p, hist: make([][]ckptEntry, p),
			ring: ring, atomOff: blockPartition(rcfg.System.N(), p),
			timestepFS: rcfg.MD.TimestepFS,
			baseStep:   stepsDone, baseWall: offset, carried: base,
			consumed: consumed, haltAfter: rcfg.HaltAfterStep,
			preempt: rcfg.Preempt,
			acct:    make([]mpi.Accounting, p), seen: map[int]int{},
		}

		attempt := rcfg.Config
		attempt.Steps = totalSteps - stepsDone
		attempt.Init = init
		attempt.Watchdog = wd
		attempt.onStep = rec.onStep
		if exact {
			attempt.MD.FF.ExactKernels = true
		}
		if inj != nil {
			attempt.Faults = inj
		}

		res, accts, err := runAttempt(curCfg, cost, attempt)
		if rec.persistErr != nil {
			return nil, fmt.Errorf("pmd: durable checkpoint: %w", rec.persistErr)
		}
		if err == nil {
			if carried == nil {
				out.Acct = accts
			} else {
				out.Acct = carried
				for i := range accts {
					out.Acct[i].Add(accts[i])
				}
			}
			out.Final = res
			out.Ranks = p
			out.Energies = append(out.Energies, res.Energies...)
			out.Wall += res.Wall
			out.GuardTrips = append(out.GuardTrips, res.GuardEvents...)
			if rec.halted {
				return out, ErrHalted
			}
			// Preemption at the final boundary is indistinguishable from
			// finishing — only an actually shortened run reports it.
			if rec.preempted && stepsDone+len(res.Energies) < totalSteps {
				obsCount("repro_preemptions_total", "graceful checkpoint preemptions", 1)
				return out, ErrPreempted
			}
			return out, nil
		}

		// The failed attempt ran until the last rank stopped accruing
		// time; for a crash this is a lower bound refined below.
		detected := 0.0
		for _, a := range accts {
			if t := a.Total(); t > detected {
				detected = t
			}
		}

		var te *guard.TripError
		var ce *mpi.CrashError
		switch {
		case errors.As(err, &te):
			if rcfg.Guard.Policy != guard.PolicyFallback || exact {
				return nil, err
			}
			// Degrade to exact kernels: rewind to the newest checkpoint
			// and redo from there on exact math. The exact flag is sticky,
			// so this branch runs at most once.
			exact = true
			ev := te.Ev
			ev.Recovered = true
			out.GuardTrips = append(out.GuardTrips, ev)

			idx := rec.rewindIndex()
			var cp *md.Checkpoint
			keep := 0
			if idx >= 0 {
				cp = rec.assemble(idx, rec.atomOff, rcfg.MD.TimestepFS)
				keep = rec.hist[0][idx].step + 1
			}
			if carried == nil {
				carried = make([]mpi.Accounting, p)
			}
			for i := 0; i < p; i++ {
				var keptAcct mpi.Accounting
				if idx >= 0 {
					keptAcct = rec.hist[i][idx].acct
				}
				carried[i].Add(keptAcct)
				carried[i].Lost += accts[i].Total() - keptAcct.Total()
			}
			if keep > 0 {
				out.Energies = append(out.Energies, res.Energies[:keep]...)
			}
			stepsDone += keep
			if cp != nil {
				init = cp
			}
			out.Wall += detected + rcfg.RestartCost
			offset += detected + rcfg.RestartCost
			obsCount("repro_guard_fallbacks_total", "guard trips healed by the exact-kernel fallback", 1)

		case errors.As(err, &ce):
			restarts++
			if restarts > maxRestarts {
				return nil, fmt.Errorf("pmd: restart budget (%d) exhausted: %w", maxRestarts, ce)
			}
			crashedNode := ce.Rank / curCfg.CPUsPerNode
			if curCfg.Nodes < 2 {
				return nil, fmt.Errorf("pmd: no surviving nodes after %w", ce)
			}
			if ce.At > detected {
				detected = ce.At
			}

			// Rewind point: the newest checkpoint every rank recorded.
			idx := rec.rewindIndex()
			var cp *md.Checkpoint
			keep := 0
			if idx >= 0 {
				cp = rec.assemble(idx, rec.atomOff, rcfg.MD.TimestepFS)
				keep = rec.hist[0][idx].step + 1
			}

			// Merge kept state and book lost time, dropping the crashed
			// node's ranks and renumbering the survivors.
			if carried == nil {
				carried = make([]mpi.Accounting, p)
			}
			survivors := make([]mpi.Accounting, 0, p-curCfg.CPUsPerNode)
			var lost float64
			for i := 0; i < p; i++ {
				var keptAcct mpi.Accounting
				if idx >= 0 {
					keptAcct = rec.hist[i][idx].acct
				}
				li := accts[i].Total() - keptAcct.Total()
				lost += li
				if i/curCfg.CPUsPerNode == crashedNode {
					continue
				}
				a := carried[i]
				a.Add(keptAcct)
				a.Lost += li
				survivors = append(survivors, a)
			}
			carried = survivors

			if keep > 0 {
				out.Energies = append(out.Energies, res.Energies[:keep]...)
			}
			out.Recoveries = append(out.Recoveries, RecoveryEvent{
				CrashedRank: ce.Rank,
				DetectedAt:  detected,
				RewindStep:  stepsDone + keep,
				Lost:        lost,
				Checkpoint:  cp,
			})
			obsCount("repro_recoveries_total", "crash-and-rewind recovery cycles", 1)
			obsCount("repro_recovery_lost_seconds_total", "virtual seconds discarded by crash rewinds", lost)
			if inj != nil {
				if spec, ok := inj.CrashSpecAt(ce.Rank); ok {
					consumed = append(consumed, spec)
				}
			}

			stepsDone += keep
			if cp != nil {
				init = cp
			}
			out.Wall += detected + rcfg.RestartCost
			offset += detected + rcfg.RestartCost
			curCfg.Nodes--

		default:
			return nil, err
		}
	}
}
