package pmd

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/md"
	"repro/internal/mpi"
	"repro/internal/vec"
)

// ResilientConfig configures a fault-tolerant parallel run: a base Config
// plus a fault scenario and the checkpoint-restart policy.
type ResilientConfig struct {
	Config

	// Scenario is the fault script; nil runs healthy (RunResilient then
	// degenerates to Run plus accounting plumbing).
	Scenario *fault.Scenario

	// CheckpointEvery takes an in-memory snapshot every k completed steps
	// (default 1). Larger values lose more work per crash.
	CheckpointEvery int

	// RestartCost is the virtual time charged per recovery (failure
	// detection, job relaunch, checkpoint distribution).
	RestartCost float64

	// MaxRestarts bounds recovery attempts; 0 means one per crash spec in
	// the scenario.
	MaxRestarts int
}

// RecoveryEvent records one crash-and-rewind cycle.
type RecoveryEvent struct {
	CrashedRank int     // rank id (pre-restart numbering) that crashed
	DetectedAt  float64 // virtual time into the failed attempt when it died
	RewindStep  int     // global step index execution resumed from
	Lost        float64 // virtual seconds of work discarded across ranks
	Checkpoint  *md.Checkpoint
}

// ResilientResult is the outcome of a fault-tolerant run.
type ResilientResult struct {
	Final      *Result           // the completing attempt
	Energies   []md.EnergyReport // merged across attempts, one per MD step
	Wall       float64           // total virtual time including failed attempts and restarts
	Ranks      int               // surviving rank count
	Acct       []mpi.Accounting  // per surviving rank, merged across attempts
	Recoveries []RecoveryEvent
}

// LostTotal sums the Lost bucket over ranks.
func (r *ResilientResult) LostTotal() float64 {
	var s float64
	for _, a := range r.Acct {
		s += a.Lost
	}
	return s
}

// ckptEntry is one rank's recorded state at a checkpoint step.
type ckptEntry struct {
	step int
	acct mpi.Accounting
	vel  []vec.V // owned atom block
	pos  []vec.V // rank 0 only: full replica
	frc  []vec.V // rank 0 only: combined forces
}

// recorder collects per-rank checkpoint entries during an attempt. The
// sim engine runs rank processes strictly one at a time, so plain slice
// writes are safe. Full history is kept because ranks can be one
// checkpoint apart when a crash interrupts a collective: the rewind uses
// the newest step every rank (including the crashed one) has recorded.
type recorder struct {
	every int
	hist  [][]ckptEntry
}

func (rec *recorder) onStep(w *worker, step int) {
	if (step+1)%rec.every != 0 {
		return
	}
	lo, hi := w.myAtoms()
	e := ckptEntry{
		step: step,
		acct: w.r.Acct(),
		vel:  append([]vec.V(nil), w.vel[lo:hi]...),
	}
	if w.me() == 0 {
		e.pos = append([]vec.V(nil), w.pos...)
		e.frc = append([]vec.V(nil), w.frcTotal...)
	}
	rec.hist[w.me()] = append(rec.hist[w.me()], e)
}

// rewindIndex returns the index into each rank's history of the newest
// checkpoint all ranks share, or -1 when some rank has none.
func (rec *recorder) rewindIndex() int {
	idx := -1
	for i, h := range rec.hist {
		n := len(h) - 1
		if i == 0 || n < idx {
			idx = n
		}
	}
	return idx
}

// assemble builds the global checkpoint at history index idx: positions
// and forces from rank 0's replica (consistent after the step's gather and
// reduction), velocities from the per-rank owned blocks (velocities are
// never gathered during a run, so no single replica holds them all).
func (rec *recorder) assemble(idx int, atomOff []int, timestepFS float64) *md.Checkpoint {
	root := rec.hist[0][idx]
	n := len(root.pos)
	cp := &md.Checkpoint{
		N:          n,
		TimestepFS: timestepFS,
		Pos:        append([]vec.V(nil), root.pos...),
		Vel:        make([]vec.V, n),
		Frc:        append([]vec.V(nil), root.frc...),
	}
	for rk := range rec.hist {
		copy(cp.Vel[atomOff[rk]:atomOff[rk+1]], rec.hist[rk][idx].vel)
	}
	return cp
}

// RunResilient executes the parallel MD under fault injection with
// checkpoint-restart recovery. On an injected rank crash it drops the
// crashed rank's whole node, rewinds to the newest globally consistent
// in-memory checkpoint and re-runs the remaining steps on the survivors;
// the discarded virtual time lands in the Lost accounting bucket. Other
// errors (including watchdog timeouts with no crash behind them) are
// returned as-is.
func RunResilient(clusterCfg cluster.Config, cost cluster.CostModel, rcfg ResilientConfig) (*ResilientResult, error) {
	if err := clusterCfg.Validate(); err != nil {
		return nil, err
	}
	if rcfg.CheckpointEvery < 1 {
		rcfg.CheckpointEvery = 1
	}
	var crashSpecs int
	if rcfg.Scenario != nil {
		crashSpecs = len(rcfg.Scenario.CrashSpecs())
	}
	maxRestarts := rcfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = crashSpecs
	}
	wd := rcfg.Watchdog
	if !wd.Enabled() && crashSpecs > 0 {
		// Crash detection relies on bounded waits: without a watchdog the
		// survivors would park forever and the run would end in a sim
		// deadlock instead of a recoverable typed error.
		wd = mpi.DefaultWatchdog()
	}

	out := &ResilientResult{}
	curCfg := clusterCfg
	totalSteps := rcfg.Steps
	stepsDone := 0
	offset := 0.0
	init := rcfg.Init
	var consumed []int
	var carried []mpi.Accounting
	restarts := 0

	for {
		var inj *fault.Injector
		if rcfg.Scenario != nil {
			var err error
			inj, err = fault.NewInjector(rcfg.Scenario, fault.Options{Offset: offset, ConsumedCrashes: consumed})
			if err != nil {
				return nil, err
			}
		}
		p := curCfg.Nodes * curCfg.CPUsPerNode
		rec := &recorder{every: rcfg.CheckpointEvery, hist: make([][]ckptEntry, p)}

		attempt := rcfg.Config
		attempt.Steps = totalSteps - stepsDone
		attempt.Init = init
		attempt.Watchdog = wd
		attempt.onStep = rec.onStep
		if inj != nil {
			attempt.Faults = inj
		}

		res, accts, err := runAttempt(curCfg, cost, attempt)
		if err == nil {
			if carried == nil {
				out.Acct = accts
			} else {
				out.Acct = carried
				for i := range accts {
					out.Acct[i].Add(accts[i])
				}
			}
			out.Final = res
			out.Ranks = p
			out.Energies = append(out.Energies, res.Energies...)
			out.Wall += res.Wall
			return out, nil
		}

		var ce *mpi.CrashError
		if !errors.As(err, &ce) {
			return nil, err
		}
		restarts++
		if restarts > maxRestarts {
			return nil, fmt.Errorf("pmd: restart budget (%d) exhausted: %w", maxRestarts, ce)
		}
		crashedNode := ce.Rank / curCfg.CPUsPerNode
		if curCfg.Nodes < 2 {
			return nil, fmt.Errorf("pmd: no surviving nodes after %w", ce)
		}

		// The failed attempt ran until the last rank stopped accruing
		// time; the crash instant is a lower bound when survivors died
		// waiting without fully accounted watchdog rounds.
		detected := ce.At
		for _, a := range accts {
			if t := a.Total(); t > detected {
				detected = t
			}
		}

		// Rewind point: the newest checkpoint every rank recorded.
		idx := rec.rewindIndex()
		var cp *md.Checkpoint
		keep := 0
		if idx >= 0 {
			n := rcfg.System.N()
			cp = rec.assemble(idx, blockPartition(n, p), rcfg.MD.TimestepFS)
			keep = rec.hist[0][idx].step + 1
		}

		// Merge kept state and book lost time, dropping the crashed node's
		// ranks and renumbering the survivors.
		if carried == nil {
			carried = make([]mpi.Accounting, p)
		}
		survivors := make([]mpi.Accounting, 0, p-curCfg.CPUsPerNode)
		var lost float64
		for i := 0; i < p; i++ {
			var keptAcct mpi.Accounting
			if idx >= 0 {
				keptAcct = rec.hist[i][idx].acct
			}
			li := accts[i].Total() - keptAcct.Total()
			lost += li
			if i/curCfg.CPUsPerNode == crashedNode {
				continue
			}
			a := carried[i]
			a.Add(keptAcct)
			a.Lost += li
			survivors = append(survivors, a)
		}
		carried = survivors

		if keep > 0 {
			out.Energies = append(out.Energies, res.Energies[:keep]...)
		}
		out.Recoveries = append(out.Recoveries, RecoveryEvent{
			CrashedRank: ce.Rank,
			DetectedAt:  detected,
			RewindStep:  stepsDone + keep,
			Lost:        lost,
			Checkpoint:  cp,
		})
		if inj != nil {
			if spec, ok := inj.CrashSpecAt(ce.Rank); ok {
				consumed = append(consumed, spec)
			}
		}

		stepsDone += keep
		if cp != nil {
			init = cp
		}
		out.Wall += detected + rcfg.RestartCost
		offset += detected + rcfg.RestartCost
		curCfg.Nodes--
	}
}
